# Developer entry points. `make bench` regenerates the perf-anchor JSON
# (see README "Observability" and the committed BENCH_XXXX.json snapshots);
# `make bench-smoke` is the CI-sized variant.

GO    ?= go
OUT   ?= bench.json
CPUS  ?= 1,2,4

.PHONY: build vet test race bench bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full perf anchor: sweeps GOMAXPROCS over $(CPUS) and writes $(OUT).
# To commit a new trajectory point: make bench OUT=BENCH_XXXX.json
# (next number in sequence), then record the delta in CHANGES.md.
bench:
	$(GO) run ./cmd/benchjson -cpu $(CPUS) -out $(OUT)

# CI-sized smoke: small fixtures, single repetition, one GOMAXPROCS value.
# Proves the harness runs and the JSON schema stays parseable.
bench-smoke:
	$(GO) run ./cmd/benchjson -quick -cpu 1 -out $(OUT)
