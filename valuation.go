package comfedsv

import (
	"context"
	"sync/atomic"
	"time"

	"comfedsv/internal/mc"
	"comfedsv/internal/shapley"
	"comfedsv/internal/utility"
)

// Valuation is one valuation job's staged execution over a TrainedRun: the
// post-training pipeline decomposed into the schedulable stage graph the
// comfedsvd scheduler runs on its shared worker pool —
//
//	Prepare        final-model metrics, FedSV, observation-plan setup
//	ObserveShard×S disjoint Monte-Carlo permutation slices evaluate their
//	               prefix cells (safe to run concurrently)
//	Complete       deterministic serial-order merge into the utility
//	               matrix, then the ALS completion solve
//	Extract        Shapley extraction and report assembly
//
// Run drives the stages serially; Value/ValueCtx and ValueRun/ValueRunCtx
// are thin wrappers over it. The report is byte-identical (under JSON
// encoding) for every shard count, shard execution order, and shard
// concurrency: cell values are deterministic memoized functions of the
// trace, and the merge step records observations in the serial pipeline's
// order no matter how they were computed.
//
// Each Valuation owns a fresh Session over the run's shared evaluator, so
// concurrent Valuations over one TrainedRun amortize test-loss evaluations
// while UtilityCalls stays the exact per-job bill. The stage methods other
// than ObserveShard must be called in order, each after the previous stage
// (and, for Complete, every shard) finished; out-of-order calls fail loudly.
type Valuation struct {
	tr      *TrainedRun
	session *utility.Session
	opts    Options

	report   *Report
	mcPlan   *shapley.MonteCarloPlan
	exact    *shapley.ExactPlan
	shards   int
	observed atomic.Int64
}

// NewValuation returns a staged valuation of the run under the
// valuation-relevant options (Rank, MonteCarloSamples, Seed, Parallelism,
// Shards, OnProgress — validated exactly as the inline path validates
// them).
func NewValuation(tr *TrainedRun, opts Options) *Valuation {
	return &Valuation{tr: tr, session: tr.eval.NewSession(), opts: opts}
}

func (v *Valuation) emit(p Progress) {
	if v.opts.OnProgress != nil {
		v.opts.OnProgress(p)
	}
}

// emitTime reports one finished stage execution's wall clock through
// Options.OnStageTime. Purely observational: the clock never feeds back
// into the computed values, so timing cannot perturb a report.
func (v *Valuation) emitTime(stage string, shard int, start time.Time) {
	if v.opts.OnStageTime != nil {
		v.opts.OnStageTime(StageTiming{Stage: stage, Shard: shard, Duration: time.Since(start)})
	}
}

// Prepare computes the final-model metrics and the FedSV baseline, then
// builds the ComFedSV observation plan. It returns the number of
// observation shards to schedule (always 1 for the exact pipeline — its
// observation region has no permutation structure to shard).
func (v *Valuation) Prepare(ctx context.Context) (int, error) {
	loss, acc := v.tr.finalMetrics()
	v.report = &Report{FinalTestLoss: loss, FinalAccuracy: acc}

	v.emit(Progress{Stage: StageFedSV, Done: 0, Total: 1})
	fedsvStart := time.Now()
	fedsv, err := shapley.FedSVCtx(ctx, v.session)
	if err != nil {
		return 0, stageErr(ctx, "fedsv", err)
	}
	v.report.FedSV = fedsv
	v.emitTime(StageFedSV, -1, fedsvStart)
	v.emit(Progress{Stage: StageFedSV, Done: 1, Total: 1})

	mcCfg := mc.DefaultConfig(v.opts.Rank)
	mcCfg.Workers = v.opts.Parallelism
	if v.opts.MonteCarloSamples > 0 {
		plan, err := shapley.NewMonteCarloPlan(ctx, v.session, shapley.MonteCarloConfig{
			Samples:    v.opts.MonteCarloSamples,
			Completion: mcCfg,
			Seed:       v.opts.Seed + 1,
			Workers:    v.opts.Parallelism,
			Shards:     v.opts.Shards,
		})
		if err != nil {
			return 0, stageErr(ctx, "valuation", err)
		}
		v.mcPlan = plan
		v.shards = plan.Shards()
	} else {
		plan, err := shapley.NewExactPlan(v.session, mcCfg)
		if err != nil {
			return 0, stageErr(ctx, "valuation", err)
		}
		v.exact = plan
		v.shards = 1
	}
	v.emit(Progress{Stage: StageObserve, Done: 0, Total: v.shards})
	return v.shards, nil
}

// Shards returns the observation shard count decided by Prepare.
func (v *Valuation) Shards() int { return v.shards }

// ObserveShard evaluates one observation shard's utility cells through the
// session. Distinct shards are safe to run concurrently; each uses up to
// Options.Parallelism goroutines of its own.
func (v *Valuation) ObserveShard(ctx context.Context, shard int) error {
	start := time.Now()
	var err error
	if v.mcPlan != nil {
		err = v.mcPlan.ObserveShard(ctx, shard)
	} else {
		err = v.exact.Observe(ctx)
	}
	if err != nil {
		return stageErr(ctx, "valuation", err)
	}
	v.emitTime(StageObserve, shard, start)
	v.emit(Progress{Stage: StageObserve, Done: int(v.observed.Add(1)), Total: v.shards})
	return nil
}

// Complete merges the shard observations in deterministic serial order and
// solves the matrix-completion problem.
func (v *Valuation) Complete(ctx context.Context) error {
	v.emit(Progress{Stage: StageComplete, Done: 0, Total: 1})
	start := time.Now()
	if v.mcPlan != nil {
		if err := v.mcPlan.Merge(ctx); err != nil {
			return stageErr(ctx, "valuation", err)
		}
		if err := v.mcPlan.Complete(ctx); err != nil {
			return stageErr(ctx, "valuation", err)
		}
	} else {
		if err := v.exact.Complete(ctx); err != nil {
			return stageErr(ctx, "valuation", err)
		}
	}
	v.emitTime(StageComplete, -1, start)
	v.emit(Progress{Stage: StageComplete, Done: 1, Total: 1})
	return nil
}

// Extract computes the ComFedSV values from the completed factorization
// and assembles the final report.
func (v *Valuation) Extract(ctx context.Context) (*Report, error) {
	v.emit(Progress{Stage: StageShapley, Done: 0, Total: 1})
	start := time.Now()
	if v.mcPlan != nil {
		res, err := v.mcPlan.Extract(ctx)
		if err != nil {
			return nil, stageErr(ctx, "valuation", err)
		}
		v.report.ComFedSV = res.Values
		v.report.ObservedDensity = res.Store.Density()
		v.report.CompletionRMSE = res.Completion.TrainRMSE
	} else {
		res, err := v.exact.Extract(ctx)
		if err != nil {
			return nil, stageErr(ctx, "valuation", err)
		}
		v.report.ComFedSV = res.Values
		v.report.ObservedDensity = res.Store.Density()
		v.report.CompletionRMSE = res.Completion.TrainRMSE
	}
	// The session counts the distinct cells *this* valuation requested —
	// what a standalone evaluator would have paid — so run-backed reports
	// stay byte-identical to inline ones.
	v.report.UtilityCalls = v.session.Calls()
	v.emitTime(StageShapley, -1, start)
	v.emit(Progress{Stage: StageShapley, Done: 1, Total: 1})
	return v.report, nil
}

// Stats returns the session's hit/miss ledger: how many of this
// valuation's distinct utility cells were amortized by the run's shared
// cache versus freshly evaluated.
func (v *Valuation) Stats() EvalStats {
	return EvalStats{Hits: v.session.Hits(), Misses: v.session.Misses()}
}

// Run drives every stage serially: prepare, each observation shard in
// order, complete, extract. It is the one-goroutine execution of the same
// graph the comfedsvd scheduler interleaves across its pool.
func (v *Valuation) Run(ctx context.Context) (*Report, error) {
	shards, err := v.Prepare(ctx)
	if err != nil {
		return nil, err
	}
	for shard := 0; shard < shards; shard++ {
		if err := v.ObserveShard(ctx, shard); err != nil {
			return nil, err
		}
	}
	if err := v.Complete(ctx); err != nil {
		return nil, err
	}
	return v.Extract(ctx)
}
