package comfedsv

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"comfedsv/internal/mc"
	"comfedsv/internal/shapley"
	"comfedsv/internal/utility"
)

// Valuation is one valuation job's staged execution over a TrainedRun: the
// post-training pipeline decomposed into the schedulable stage graph the
// comfedsvd scheduler runs on its shared worker pool —
//
//	Prepare        final-model metrics, FedSV, observation-plan setup
//	ObserveShard×S disjoint Monte-Carlo permutation slices evaluate their
//	               prefix cells (safe to run concurrently)
//	Complete       deterministic serial-order merge into the utility
//	               matrix, then the ALS completion solve; in adaptive
//	               (tolerance-driven) mode it is the wave checkpoint and
//	               may return additional observation shards to schedule
//	Extract        Shapley extraction and report assembly
//
// Run drives the stages serially; Value/ValueCtx and ValueRun/ValueRunCtx
// are thin wrappers over it. The report is byte-identical (under JSON
// encoding) for every shard count, shard execution order, and shard
// concurrency: cell values are deterministic memoized functions of the
// trace, and the merge step records observations in the serial pipeline's
// order no matter how they were computed.
//
// Each Valuation owns a fresh Session over the run's shared evaluator, so
// concurrent Valuations over one TrainedRun amortize test-loss evaluations
// while UtilityCalls stays the exact per-job bill. The stage methods other
// than ObserveShard must be called in order, each after the previous stage
// (and, for Complete, every shard) finished; out-of-order calls fail loudly.
type Valuation struct {
	tr      *TrainedRun
	session *utility.Session
	opts    Options

	report   *Report
	mcPlan   *shapley.MonteCarloPlan
	adaptive *shapley.AdaptivePlan
	exact    *shapley.ExactPlan
	shards   int
	observed atomic.Int64
}

// NewValuation returns a staged valuation of the run under the
// valuation-relevant options (Rank, MonteCarloSamples, Seed, Parallelism,
// Shards, OnProgress — validated exactly as the inline path validates
// them).
func NewValuation(tr *TrainedRun, opts Options) *Valuation {
	return &Valuation{tr: tr, session: tr.eval.NewSession(), opts: opts}
}

func (v *Valuation) emit(p Progress) {
	if v.opts.OnProgress != nil {
		v.opts.OnProgress(p)
	}
}

// emitTime reports one finished stage execution's wall clock through
// Options.OnStageTime. Purely observational: the clock never feeds back
// into the computed values, so timing cannot perturb a report.
func (v *Valuation) emitTime(stage string, shard int, start time.Time) {
	if v.opts.OnStageTime != nil {
		v.opts.OnStageTime(StageTiming{Stage: stage, Shard: shard, Duration: time.Since(start)})
	}
}

// valuationBudget resolves the Monte-Carlo permutation budget and the
// valuation mode from the options: fixed budget (MonteCarloSamples, no
// tolerance), adaptive (Tolerance plus a budget via MonteCarloSamples or
// MaxPermutations), or exact (neither). Contradictory combinations fail
// loudly here, before any training-trace work is spent.
func valuationBudget(opts Options) (budget int, adaptive bool, err error) {
	if opts.MaxPermutations < 0 {
		return 0, false, fmt.Errorf("comfedsv: negative MaxPermutations %d", opts.MaxPermutations)
	}
	if opts.Tolerance != 0 && (math.IsNaN(opts.Tolerance) || math.IsInf(opts.Tolerance, 0) || opts.Tolerance < 0) {
		return 0, false, fmt.Errorf("comfedsv: tolerance must be positive and finite, got %v", opts.Tolerance)
	}
	if opts.Tolerance == 0 {
		if opts.MaxPermutations > 0 {
			return 0, false, errors.New("comfedsv: MaxPermutations requires Tolerance; fixed-budget runs use MonteCarloSamples")
		}
		return opts.MonteCarloSamples, false, nil
	}
	budget = opts.MonteCarloSamples
	if opts.MaxPermutations > 0 {
		if budget > 0 && budget != opts.MaxPermutations {
			return 0, false, fmt.Errorf("comfedsv: MonteCarloSamples (%d) and MaxPermutations (%d) disagree", budget, opts.MaxPermutations)
		}
		budget = opts.MaxPermutations
	}
	if budget <= 0 {
		return 0, false, errors.New("comfedsv: Tolerance requires a positive permutation budget (MonteCarloSamples or MaxPermutations)")
	}
	return budget, true, nil
}

// Prepare computes the final-model metrics and the FedSV baseline, then
// builds the ComFedSV observation plan. It returns the number of
// observation shards to schedule (always 1 for the exact pipeline — its
// observation region has no permutation structure to shard; the first
// wave's count for an adaptive plan, whose Complete may schedule more).
func (v *Valuation) Prepare(ctx context.Context) (int, error) {
	budget, adaptive, err := valuationBudget(v.opts)
	if err != nil {
		return 0, err
	}

	loss, acc := v.tr.finalMetrics()
	v.report = &Report{FinalTestLoss: loss, FinalAccuracy: acc}

	v.emit(Progress{Stage: StageFedSV, Done: 0, Total: 1})
	fedsvStart := time.Now()
	fedsv, err := v.fedSV(ctx)
	if err != nil {
		return 0, stageErr(ctx, "fedsv", err)
	}
	v.report.FedSV = fedsv
	v.emitTime(StageFedSV, -1, fedsvStart)
	v.emit(Progress{Stage: StageFedSV, Done: 1, Total: 1})

	mcCfg := mc.DefaultConfig(v.opts.Rank)
	mcCfg.Workers = v.opts.Parallelism
	switch {
	case adaptive:
		plan, err := shapley.NewAdaptivePlan(ctx, v.session, shapley.AdaptiveConfig{
			MonteCarloConfig: shapley.MonteCarloConfig{
				Samples:    budget,
				Completion: mcCfg,
				Seed:       v.opts.Seed + 1,
				Workers:    v.opts.Parallelism,
				Shards:     v.opts.Shards,
			},
			Tolerance: v.opts.Tolerance,
		})
		if err != nil {
			return 0, stageErr(ctx, "valuation", err)
		}
		v.adaptive = plan
		v.shards = plan.Shards()
	case budget > 0:
		plan, err := shapley.NewMonteCarloPlan(ctx, v.session, shapley.MonteCarloConfig{
			Samples:    budget,
			Completion: mcCfg,
			Seed:       v.opts.Seed + 1,
			Workers:    v.opts.Parallelism,
			Shards:     v.opts.Shards,
		})
		if err != nil {
			return 0, stageErr(ctx, "valuation", err)
		}
		v.mcPlan = plan
		v.shards = plan.Shards()
	default:
		plan, err := shapley.NewExactPlan(v.session, mcCfg)
		if err != nil {
			return 0, stageErr(ctx, "valuation", err)
		}
		v.exact = plan
		v.shards = 1
	}
	v.emit(Progress{Stage: StageObserve, Done: 0, Total: v.shards})
	return v.shards, nil
}

// fedSV computes the FedSV baseline: exact per-round enumeration (Wang et
// al., Definition 2) when every round's selection fits, otherwise the
// paper's sampled-permutation estimator (Section VII-D), so a round that
// selects more than 20 clients — e.g. a full-participation warm-up round in
// a large federation — degrades the baseline to an estimate instead of
// failing the job. The sample count follows the paper's O(T·K²·log K)
// utility-call cost (⌈K·ln K⌉+1 permutations per round) and the estimator
// is seeded from the job seed, so the baseline — like everything else in
// the report — is a pure function of the options.
func (v *Valuation) fedSV(ctx context.Context) ([]float64, error) {
	maxSel := 0
	for _, rd := range v.session.Run().Rounds {
		if len(rd.Selected) > maxSel {
			maxSel = len(rd.Selected)
		}
	}
	if maxSel <= 20 {
		return shapley.FedSVCtx(ctx, v.session)
	}
	samples := int(math.Ceil(float64(maxSel)*math.Log(float64(maxSel)))) + 1
	return shapley.FedSVMonteCarloCtx(ctx, v.session, samples, v.opts.Seed+2)
}

// Shards returns the observation shard count decided by Prepare.
func (v *Valuation) Shards() int { return v.shards }

// ObserveShard evaluates one observation shard's utility cells through the
// session. Distinct shards are safe to run concurrently; each uses up to
// Options.Parallelism goroutines of its own.
func (v *Valuation) ObserveShard(ctx context.Context, shard int) error {
	start := time.Now()
	var err error
	switch {
	case v.adaptive != nil:
		err = v.adaptive.ObserveShard(ctx, shard)
	case v.mcPlan != nil:
		err = v.mcPlan.ObserveShard(ctx, shard)
	default:
		err = v.exact.Observe(ctx)
	}
	if err != nil {
		return stageErr(ctx, "valuation", err)
	}
	v.emitTime(StageObserve, shard, start)
	v.emit(Progress{Stage: StageObserve, Done: int(v.observed.Add(1)), Total: v.shards})
	return nil
}

// TrainedRun returns the run this valuation values against — the handle
// the comfedsvd scheduler uses to persist an inline job's trace so crash
// recovery can resume without retraining.
func (v *Valuation) TrainedRun() *TrainedRun { return v.tr }

// ShardDigest returns the content hash of an observed shard's evaluated
// cells — the token the comfedsvd journal records so crash recovery can
// verify a re-executed shard re-derived identical observations. Exact
// pipelines (no permutation structure to shard) and unobserved shards
// return "".
func (v *Valuation) ShardDigest(shard int) string {
	switch {
	case v.adaptive != nil:
		return v.adaptive.ShardDigest(shard)
	case v.mcPlan != nil:
		return v.mcPlan.ShardDigest(shard)
	default:
		return ""
	}
}

// ObservationBudget returns the job's resolved permutation budget — the
// sample count a worker-side ShardObserver must be built with so its
// plan matches this valuation's. Exact pipelines (no permutation
// structure) return 0; call it after Prepare.
func (v *Valuation) ObservationBudget() int {
	switch {
	case v.adaptive != nil:
		return v.adaptive.Budget()
	case v.mcPlan != nil:
		return v.mcPlan.Budget()
	default:
		return 0
	}
}

// ShardSlice returns the half-open permutation slice [lo, hi) owned by a
// scheduled observation shard — the coordinates a lease ships to a remote
// worker. ok is false for exact pipelines and shards the plan has not
// scheduled (adaptive waves schedule shards as they advance).
func (v *Valuation) ShardSlice(shard int) (lo, hi int, ok bool) {
	if shard < 0 || shard >= v.shards {
		return 0, 0, false
	}
	switch {
	case v.adaptive != nil:
		lo, hi = v.adaptive.ShardSlice(shard)
	case v.mcPlan != nil:
		lo, hi = v.mcPlan.ShardSlice(shard)
	default:
		return 0, 0, false
	}
	return lo, hi, true
}

// ImportShard installs a remotely evaluated shard's observations as if
// ObserveShard had run locally: the slice coordinates must match the
// shard's planned range and the content digest must verify, so a corrupt
// or mis-addressed result fails loudly instead of perturbing the report.
// After a successful import, ShardDigest(shard) returns the imported
// digest and the merge consumes the cells exactly as local ones.
func (v *Valuation) ImportShard(shard int, obs *ShardObservations) error {
	var err error
	switch {
	case v.adaptive != nil:
		err = v.adaptive.ImportShard(shard, obs)
	case v.mcPlan != nil:
		err = v.mcPlan.ImportShard(shard, obs)
	default:
		return errors.New("comfedsv: exact pipelines have no observation shards to import")
	}
	if err != nil {
		return err
	}
	v.emit(Progress{Stage: StageObserve, Done: int(v.observed.Add(1)), Total: v.shards})
	return nil
}

// Complete merges the shard observations in deterministic serial order and
// solves the matrix-completion problem. In adaptive mode it is the wave
// checkpoint: it returns the number of additional observation shards the
// caller must schedule before calling Complete again (their indices
// continue where the previous wave's left off), or 0 when the estimates
// converged and Extract may run. Fixed-budget and exact pipelines always
// return 0 — one Complete finishes them.
func (v *Valuation) Complete(ctx context.Context) (int, error) {
	v.emit(Progress{Stage: StageComplete, Done: 0, Total: 1})
	start := time.Now()
	more := 0
	switch {
	case v.adaptive != nil:
		m, err := v.adaptive.Advance(ctx)
		if err != nil {
			return 0, stageErr(ctx, "valuation", err)
		}
		more = m
	case v.mcPlan != nil:
		if err := v.mcPlan.Merge(ctx); err != nil {
			return 0, stageErr(ctx, "valuation", err)
		}
		if err := v.mcPlan.Complete(ctx); err != nil {
			return 0, stageErr(ctx, "valuation", err)
		}
	default:
		if err := v.exact.Complete(ctx); err != nil {
			return 0, stageErr(ctx, "valuation", err)
		}
	}
	v.emitTime(StageComplete, -1, start)
	v.emit(Progress{Stage: StageComplete, Done: 1, Total: 1})
	if more > 0 {
		v.shards += more
		v.emit(Progress{Stage: StageObserve, Done: int(v.observed.Load()), Total: v.shards})
	}
	return more, nil
}

// Extract computes the ComFedSV values from the completed factorization
// and assembles the final report.
func (v *Valuation) Extract(ctx context.Context) (*Report, error) {
	v.emit(Progress{Stage: StageShapley, Done: 0, Total: 1})
	start := time.Now()
	if v.adaptive != nil {
		res, err := v.adaptive.Extract(ctx)
		if err != nil {
			return nil, stageErr(ctx, "valuation", err)
		}
		v.report.ComFedSV = res.Values
		v.report.ObservedDensity = res.Store.Density()
		v.report.CompletionRMSE = res.Completion.TrainRMSE
		v.report.ObservationsUsed = v.adaptive.Used()
		v.report.ObservationsBudget = v.adaptive.Budget()
	} else if v.mcPlan != nil {
		res, err := v.mcPlan.Extract(ctx)
		if err != nil {
			return nil, stageErr(ctx, "valuation", err)
		}
		v.report.ComFedSV = res.Values
		v.report.ObservedDensity = res.Store.Density()
		v.report.CompletionRMSE = res.Completion.TrainRMSE
	} else {
		res, err := v.exact.Extract(ctx)
		if err != nil {
			return nil, stageErr(ctx, "valuation", err)
		}
		v.report.ComFedSV = res.Values
		v.report.ObservedDensity = res.Store.Density()
		v.report.CompletionRMSE = res.Completion.TrainRMSE
	}
	// The session counts the distinct cells *this* valuation requested —
	// what a standalone evaluator would have paid — so run-backed reports
	// stay byte-identical to inline ones.
	v.report.UtilityCalls = v.session.Calls()
	v.emitTime(StageShapley, -1, start)
	v.emit(Progress{Stage: StageShapley, Done: 1, Total: 1})
	return v.report, nil
}

// Stats returns the session's hit/miss ledger: how many of this
// valuation's distinct utility cells were amortized by the run's shared
// cache versus freshly evaluated.
func (v *Valuation) Stats() EvalStats {
	return EvalStats{Hits: v.session.Hits(), Misses: v.session.Misses()}
}

// Run drives every stage serially: prepare, each observation shard in
// order, complete, extract — looping observe→complete while an adaptive
// plan keeps scheduling waves. It is the one-goroutine execution of the
// same graph the comfedsvd scheduler interleaves across its pool.
func (v *Valuation) Run(ctx context.Context) (*Report, error) {
	pending, err := v.Prepare(ctx)
	if err != nil {
		return nil, err
	}
	next := 0
	for pending > 0 {
		for i := 0; i < pending; i++ {
			if err := v.ObserveShard(ctx, next+i); err != nil {
				return nil, err
			}
		}
		next += pending
		pending, err = v.Complete(ctx)
		if err != nil {
			return nil, err
		}
	}
	return v.Extract(ctx)
}
