package comfedsv_test

import (
	"fmt"

	"comfedsv"
)

// ExampleValue values three data owners on a toy two-class task. Client 2
// holds mislabeled data, so both metrics rank it last.
func ExampleValue() {
	// Feature pattern: class 0 near (-1,-1), class 1 near (+1,+1).
	good := func(y int, jitter float64) []float64 {
		s := float64(2*y - 1)
		return []float64{s + jitter, s - jitter}
	}
	clientA := comfedsv.Client{
		X: [][]float64{good(0, 0.1), good(1, 0.1), good(0, -0.2), good(1, 0.2), good(0, 0.3), good(1, -0.1)},
		Y: []int{0, 1, 0, 1, 0, 1},
	}
	clientB := comfedsv.Client{
		X: [][]float64{good(0, 0.2), good(1, -0.2), good(0, 0.1), good(1, 0.1), good(0, -0.1), good(1, 0.3)},
		Y: []int{0, 1, 0, 1, 0, 1},
	}
	mislabeled := comfedsv.Client{
		X: [][]float64{good(0, 0.1), good(1, 0.2), good(0, -0.1), good(1, 0.1), good(0, 0.2), good(1, -0.3)},
		Y: []int{1, 0, 1, 0, 1, 0}, // all labels flipped
	}
	test := comfedsv.Client{
		X: [][]float64{good(0, 0.15), good(1, -0.15), good(0, -0.25), good(1, 0.25)},
		Y: []int{0, 1, 0, 1},
	}

	opts := comfedsv.DefaultOptions(2)
	opts.Rounds = 8
	opts.ClientsPerRound = 2
	opts.LearningRate = 0.5
	opts.Rank = 2

	report, err := comfedsv.Value([]comfedsv.Client{clientA, clientB, mislabeled}, test, opts)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	worst := 0
	for i, v := range report.ComFedSV {
		if v < report.ComFedSV[worst] {
			worst = i
		}
	}
	fmt.Printf("lowest-valued client: %d\n", worst)
	// Output:
	// lowest-valued client: 2
}
