module comfedsv

go 1.24
