package comfedsv

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"testing"
)

// TestReportByteIdenticalAcrossParallelism is the end-to-end determinism
// guarantee of the parallel hot path: the same seed and submission must
// serialize to the byte-identical job report (the service's wire and
// on-disk format) for every Parallelism setting.
func TestReportByteIdenticalAcrossParallelism(t *testing.T) {
	clients, test := makeClients(t, 6, 20, 40, 301)
	base := DefaultOptions(10)
	base.Rounds = 5
	base.ClientsPerRound = 2
	base.Model = MLP
	base.HiddenUnits = 6
	base.LearningRate = 0.1
	base.MonteCarloSamples = 25

	encode := func(parallelism int) []byte {
		opts := base
		opts.Parallelism = parallelism
		rep, err := ValueCtx(context.Background(), clients, test, opts)
		if err != nil {
			t.Fatalf("parallelism=%d: %v", parallelism, err)
		}
		body, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("parallelism=%d: %v", parallelism, err)
		}
		return body
	}

	want := encode(1)
	for _, p := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		if got := encode(p); !bytes.Equal(want, got) {
			t.Fatalf("parallelism=%d report differs from parallelism=1:\n%s\nvs\n%s", p, got, want)
		}
	}

	// The exact (non-sampled) pipeline must hold the same guarantee.
	base.MonteCarloSamples = 0
	want = encode(1)
	if got := encode(3); !bytes.Equal(want, got) {
		t.Fatalf("exact pipeline: parallelism=3 report differs from parallelism=1:\n%s\nvs\n%s", got, want)
	}
}

// TestRunBackedReportByteIdenticalAcrossParallelism is the shared-run
// determinism guarantee: valuing against a precomputed TrainedRun must
// serialize to the byte-identical report as the inline train-and-value
// path, for every Parallelism setting, even though every valuation after
// the first is served almost entirely from the shared evaluator cache.
func TestRunBackedReportByteIdenticalAcrossParallelism(t *testing.T) {
	clients, test := makeClients(t, 6, 20, 40, 307)
	base := DefaultOptions(10)
	base.Rounds = 5
	base.ClientsPerRound = 2
	base.Model = MLP
	base.HiddenUnits = 6
	base.LearningRate = 0.1
	base.MonteCarloSamples = 25

	inline := func(parallelism int) []byte {
		opts := base
		opts.Parallelism = parallelism
		rep, err := ValueCtx(context.Background(), clients, test, opts)
		if err != nil {
			t.Fatalf("inline parallelism=%d: %v", parallelism, err)
		}
		body, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	tr, err := TrainCtx(context.Background(), clients, test, base)
	if err != nil {
		t.Fatal(err)
	}
	shared := func(parallelism int) ([]byte, EvalStats) {
		opts := base
		opts.Parallelism = parallelism
		rep, stats, err := ValueRunCtx(context.Background(), tr, opts)
		if err != nil {
			t.Fatalf("run-backed parallelism=%d: %v", parallelism, err)
		}
		body, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return body, stats
	}

	want := inline(1)
	for i, p := range []int{1, 4, 8} {
		got, stats := shared(p)
		if !bytes.Equal(want, got) {
			t.Fatalf("run-backed parallelism=%d report differs from inline parallelism=1:\n%s\nvs\n%s", p, got, want)
		}
		if stats.Hits+stats.Misses == 0 {
			t.Fatalf("run-backed parallelism=%d recorded no cache traffic", p)
		}
		// Every valuation after the first must be answered entirely from
		// the shared cache — and still produce the identical bytes.
		if i > 0 && stats.Misses != 0 {
			t.Fatalf("run-backed parallelism=%d paid %d fresh evaluations on a warm cache", p, stats.Misses)
		}
	}

	// The exact (non-sampled) pipeline must hold the same guarantee, with
	// a different valuation setting sharing the same trace.
	exact := base
	exact.MonteCarloSamples = 0
	rep, err := ValueCtx(context.Background(), clients, test, exact)
	if err != nil {
		t.Fatal(err)
	}
	wantExactBody, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 4, 8} {
		o := exact
		o.Parallelism = p
		got, _, err := ValueRunCtx(context.Background(), tr, o)
		if err != nil {
			t.Fatalf("exact run-backed parallelism=%d: %v", p, err)
		}
		body, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantExactBody, body) {
			t.Fatalf("exact run-backed parallelism=%d report differs from inline:\n%s\nvs\n%s", p, body, wantExactBody)
		}
	}
}
