package comfedsv

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"testing"
)

// TestReportByteIdenticalAcrossParallelism is the end-to-end determinism
// guarantee of the parallel hot path: the same seed and submission must
// serialize to the byte-identical job report (the service's wire and
// on-disk format) for every Parallelism setting.
func TestReportByteIdenticalAcrossParallelism(t *testing.T) {
	clients, test := makeClients(t, 6, 20, 40, 301)
	base := DefaultOptions(10)
	base.Rounds = 5
	base.ClientsPerRound = 2
	base.Model = MLP
	base.HiddenUnits = 6
	base.LearningRate = 0.1
	base.MonteCarloSamples = 25

	encode := func(parallelism int) []byte {
		opts := base
		opts.Parallelism = parallelism
		rep, err := ValueCtx(context.Background(), clients, test, opts)
		if err != nil {
			t.Fatalf("parallelism=%d: %v", parallelism, err)
		}
		body, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("parallelism=%d: %v", parallelism, err)
		}
		return body
	}

	want := encode(1)
	for _, p := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		if got := encode(p); !bytes.Equal(want, got) {
			t.Fatalf("parallelism=%d report differs from parallelism=1:\n%s\nvs\n%s", p, got, want)
		}
	}

	// The exact (non-sampled) pipeline must hold the same guarantee.
	base.MonteCarloSamples = 0
	want = encode(1)
	if got := encode(3); !bytes.Equal(want, got) {
		t.Fatalf("exact pipeline: parallelism=3 report differs from parallelism=1:\n%s\nvs\n%s", got, want)
	}
}
