package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRelativeDifference(t *testing.T) {
	cases := []struct {
		a, b, want float64
	}{
		{1, 1, 0},
		{0, 0, 0},
		{2, 1, 0.5},
		{1, 2, 0.5},
		{-1, 1, 2},
		{0, 5, 1},
	}
	for _, tc := range cases {
		if got := RelativeDifference(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("RelativeDifference(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestRelativeDifferenceSymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		return RelativeDifference(a, b) == RelativeDifference(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	cases := []struct {
		x, want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{2.5, 0.5},
		{4, 1},
		{10, 1},
	}
	for _, tc := range cases {
		if got := e.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("ECDF(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if e.Len() != 4 {
		t.Fatalf("Len = %d, want 4", e.Len())
	}
}

func TestECDFMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		e := NewECDF(clean)
		prev := -1.0
		for _, x := range []float64{-10, -1, 0, 0.5, 1, 10} {
			v := e.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2})
	if got := e.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %v", got)
	}
	if got := e.Quantile(1); got != 3 {
		t.Fatalf("Quantile(1) = %v", got)
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(1) != 0 {
		t.Fatal("empty ECDF must be 0 everywhere")
	}
	if !math.IsNaN(e.Quantile(0.5)) {
		t.Fatal("empty quantile must be NaN")
	}
}

func TestRanksSimple(t *testing.T) {
	r := Ranks([]float64{10, 30, 20})
	want := []float64{1, 3, 2}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
}

func TestRanksTies(t *testing.T) {
	r := Ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
}

func TestSpearmanPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{10, 20, 30, 40, 50}
	if got := Spearman(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Spearman = %v, want 1", got)
	}
}

func TestSpearmanReversed(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{5, 4, 3, 2, 1}
	if got := Spearman(a, b); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Spearman = %v, want -1", got)
	}
}

func TestSpearmanMonotoneInvariance(t *testing.T) {
	// Property: Spearman is invariant to strictly monotone transforms.
	f := func(xs []float64) bool {
		if len(xs) < 3 {
			return true
		}
		a := make([]float64, 0, len(xs))
		seen := map[float64]bool{}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || seen[x] {
				continue
			}
			seen[x] = true
			a = append(a, math.Mod(x, 1e6))
		}
		if len(a) < 3 {
			return true
		}
		b := make([]float64, len(a))
		for i, x := range a {
			b[i] = math.Atan(x) * 3 // strictly increasing
		}
		return math.Abs(Spearman(a, b)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSpearmanConstantIsZero(t *testing.T) {
	if got := Spearman([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("constant input Spearman = %v, want 0", got)
	}
}

func TestSpearmanLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Spearman([]float64{1}, []float64{1, 2})
}

func TestSpearmanRange(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n < 2 {
			return true
		}
		a, b := make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) {
				return true
			}
			a[i], b[i] = xs[i], ys[i]
		}
		rho := Spearman(a, b)
		return rho >= -1-1e-9 && rho <= 1+1e-9 && !math.IsNaN(rho)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []int
		want float64
	}{
		{[]int{1, 2, 3}, []int{1, 2, 3}, 1},
		{[]int{1, 2}, []int{3, 4}, 0},
		{[]int{1, 2, 3}, []int{2, 3, 4}, 0.5},
		{nil, nil, 1},
		{[]int{1}, nil, 0},
		{[]int{1, 1, 2}, []int{1, 2}, 1}, // duplicates ignored
	}
	for _, tc := range cases {
		if got := Jaccard(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("Jaccard(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJaccardProperties(t *testing.T) {
	// Property: symmetric, in [0,1], 1 iff equal sets.
	f := func(a, b []int8) bool {
		as := make([]int, len(a))
		bs := make([]int, len(b))
		for i, x := range a {
			as[i] = int(x)
		}
		for i, x := range b {
			bs[i] = int(x)
		}
		j1 := Jaccard(as, bs)
		j2 := Jaccard(bs, as)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBottomK(t *testing.T) {
	v := []float64{5, 1, 4, 2, 3}
	got := BottomK(v, 2)
	want := []int{1, 3}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("BottomK = %v, want %v", got, want)
	}
}

func TestBottomKTiesDeterministic(t *testing.T) {
	v := []float64{1, 1, 1, 1}
	got := BottomK(v, 2)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("tie-broken BottomK = %v, want [0 1]", got)
	}
}

func TestTopK(t *testing.T) {
	v := []float64{5, 1, 4, 2, 3}
	got := TopK(v, 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("TopK = %v, want [0 2]", got)
	}
}

func TestTopBottomComplement(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		seen := map[float64]bool{}
		for _, x := range xs {
			// Distinct finite values only: with ties both TopK and BottomK
			// prefer low indices, so complementarity holds only tie-free.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && !seen[x] {
				seen[x] = true
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		k := len(clean) / 2
		bottom := BottomK(clean, k)
		top := TopK(clean, len(clean)-k)
		all := append(append([]int(nil), bottom...), top...)
		sort.Ints(all)
		for i, x := range all {
			if x != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBottomKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BottomK([]float64{1}, 2)
}
