// Package metrics implements the evaluation statistics the paper reports:
// the relative valuation difference (Eq. 7), empirical CDFs (Fig. 5),
// Spearman's rank correlation (Fig. 6), and the Jaccard coefficient
// (Fig. 7).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// RelativeDifference returns |a−b| / max{a,b} (Eq. 7), the paper's measure
// of how differently two clients with identical data are valued. The paper
// applies it to non-negative valuations; for robustness we use
// max{|a|,|b|} as the denominator and return 0 when both are zero.
func RelativeDifference(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// ECDF is an empirical cumulative distribution function over samples.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the samples (copied, then sorted).
func NewECDF(samples []float64) *ECDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns P(X ≤ x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// Count of samples ≤ x via binary search for the first element > x.
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the q-th empirical quantile for q in [0,1].
func (e *ECDF) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v out of [0,1]", q))
	}
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	idx := int(q * float64(len(e.sorted)-1))
	return e.sorted[idx]
}

// Len returns the number of samples.
func (e *ECDF) Len() int { return len(e.sorted) }

// Ranks returns the fractional ranks of the values: the smallest value has
// rank 1; ties receive the average of the ranks they span (the standard
// treatment for Spearman's ρ).
func Ranks(values []float64) []float64 {
	n := len(values)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && values[idx[j+1]] == values[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns Spearman's rank correlation ρ between a and b, the
// statistic of the noisy-data detection experiment (Fig. 6). It returns 0
// if either input is constant (undefined correlation).
func Spearman(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: spearman length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) < 2 {
		return 0
	}
	return pearson(Ranks(a), Ranks(b))
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// Jaccard returns |a ∩ b| / |a ∪ b| for integer sets given as slices
// (duplicates ignored), the statistic of the noisy-label detection
// experiment (Fig. 7). The Jaccard coefficient of two empty sets is 1.
func Jaccard(a, b []int) float64 {
	sa := toSet(a)
	sb := toSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for x := range sa {
		if sb[x] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return float64(inter) / float64(union)
}

func toSet(xs []int) map[int]bool {
	s := make(map[int]bool, len(xs))
	for _, x := range xs {
		s[x] = true
	}
	return s
}

// BottomK returns the indices of the k smallest values (the paper's "set of
// k clients with the lowest evaluations"). Ties are broken by index for
// determinism.
func BottomK(values []float64, k int) []int {
	if k < 0 || k > len(values) {
		panic(fmt.Sprintf("metrics: bottom-%d of %d values", k, len(values)))
	}
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if values[idx[a]] != values[idx[b]] {
			return values[idx[a]] < values[idx[b]]
		}
		return idx[a] < idx[b]
	})
	out := append([]int(nil), idx[:k]...)
	sort.Ints(out)
	return out
}

// TopK returns the indices of the k largest values, sorted ascending.
func TopK(values []float64, k int) []int {
	if k < 0 || k > len(values) {
		panic(fmt.Sprintf("metrics: top-%d of %d values", k, len(values)))
	}
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if values[idx[a]] != values[idx[b]] {
			return values[idx[a]] > values[idx[b]]
		}
		return idx[a] < idx[b]
	})
	out := append([]int(nil), idx[:k]...)
	sort.Ints(out)
	return out
}
