package fl

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

func TestTrainRunCtxCancelMidRound(t *testing.T) {
	clients, test, m := scenario(t, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cfg := DefaultConfig(50, 2)
	cfg.Progress = func(done, total int) {
		if total != 50 {
			t.Errorf("progress total = %d, want 50", total)
		}
		if done == 3 {
			cancel()
		}
	}
	run, err := TrainRunCtx(ctx, cfg, m, clients, test)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if run != nil {
		t.Fatal("cancelled run should be nil, not a partial trace")
	}
}

func TestTrainRunCtxPreCancelled(t *testing.T) {
	clients, test, m := scenario(t, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TrainRunCtx(ctx, DefaultConfig(5, 2), m, clients, test); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestTrainRunCtxMatchesTrainRun checks that context plumbing and the
// progress hook leave the recorded trace bit-identical.
func TestTrainRunCtxMatchesTrainRun(t *testing.T) {
	clients, test, m := scenario(t, 5)
	cfg := DefaultConfig(6, 2)
	want, err := TrainRun(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}

	clients2, test2, m2 := scenario(t, 5)
	cfg2 := DefaultConfig(6, 2)
	var rounds []int
	cfg2.Progress = func(done, total int) { rounds = append(rounds, done) }
	got, err := TrainRunCtx(context.Background(), cfg2, m2, clients2, test2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rounds, []int{1, 2, 3, 4, 5, 6}) {
		t.Fatalf("progress callbacks = %v, want 1..6", rounds)
	}
	if !reflect.DeepEqual(want.Final, got.Final) {
		t.Fatal("TrainRunCtx trace diverges from TrainRun")
	}
	for tr := range want.Rounds {
		if !reflect.DeepEqual(want.Rounds[tr].Locals, got.Rounds[tr].Locals) {
			t.Fatalf("round %d locals diverge", tr)
		}
	}
}
