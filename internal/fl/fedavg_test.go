package fl

import (
	"math"
	"testing"

	"comfedsv/internal/dataset"
	"comfedsv/internal/model"
	"comfedsv/internal/rng"
)

func scenario(t *testing.T, clients int) ([]*dataset.Dataset, *dataset.Dataset, model.Model) {
	t.Helper()
	full := dataset.GenerateImages(dataset.MNISTLikeConfig(17), clients*30+60)
	g := rng.New(18)
	train, test := dataset.TrainTestSplit(full, float64(60)/float64(full.Len()), g)
	parts := dataset.PartitionIID(train, clients, g)
	return parts, test, model.NewMLP(full.Dim(), 8, full.NumClasses)
}

func TestTrainRunShape(t *testing.T) {
	clients, test, m := scenario(t, 5)
	cfg := DefaultConfig(7, 2)
	run, err := TrainRun(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Rounds) != 7 {
		t.Fatalf("recorded %d rounds, want 7", len(run.Rounds))
	}
	if run.NumClients() != 5 {
		t.Fatalf("NumClients = %d, want 5", run.NumClients())
	}
	for tr, rd := range run.Rounds {
		if len(rd.Locals) != 5 {
			t.Fatalf("round %d has %d locals, want 5", tr, len(rd.Locals))
		}
		for i, l := range rd.Locals {
			if len(l) != m.NumParams() {
				t.Fatalf("round %d client %d params %d, want %d", tr, i, len(l), m.NumParams())
			}
		}
	}
	if len(run.Final) != m.NumParams() {
		t.Fatal("final model missing")
	}
}

func TestForceFullFirstRound(t *testing.T) {
	clients, test, m := scenario(t, 5)
	cfg := DefaultConfig(3, 2)
	run, err := TrainRun(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Rounds[0].Selected) != 5 {
		t.Fatalf("round 0 selected %v, want all 5 clients", run.Rounds[0].Selected)
	}
	for tr := 1; tr < 3; tr++ {
		if len(run.Rounds[tr].Selected) != 2 {
			t.Fatalf("round %d selected %d clients, want 2", tr, len(run.Rounds[tr].Selected))
		}
	}
}

func TestNoForceFullFirstRound(t *testing.T) {
	clients, test, m := scenario(t, 5)
	cfg := DefaultConfig(3, 2)
	cfg.ForceFullFirstRound = false
	run, err := TrainRun(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Rounds[0].Selected) != 2 {
		t.Fatalf("round 0 selected %d clients, want 2", len(run.Rounds[0].Selected))
	}
}

func TestTestLossDecreases(t *testing.T) {
	clients, test, m := scenario(t, 5)
	cfg := DefaultConfig(25, 3)
	cfg.LearningRate = 0.1
	run, err := TrainRun(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	first := run.Rounds[0].TestLoss
	last := m.Loss(run.Final, test)
	if last >= first {
		t.Fatalf("training did not reduce test loss: %v → %v", first, last)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	clients, test, m := scenario(t, 4)
	cfg := DefaultConfig(5, 2)
	a, err := TrainRun(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainRun(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Final {
		if a.Final[i] != b.Final[i] {
			t.Fatal("same seed must reproduce the same run")
		}
	}
	for tr := range a.Rounds {
		for i, s := range a.Rounds[tr].Selected {
			if b.Rounds[tr].Selected[i] != s {
				t.Fatal("selection must be deterministic")
			}
		}
	}
}

func TestIdenticalClientsGetIdenticalLocals(t *testing.T) {
	clients, test, m := scenario(t, 4)
	clients[3] = clients[0].Clone() // duplicate data
	cfg := DefaultConfig(4, 2)
	run, err := TrainRun(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	for tr, rd := range run.Rounds {
		for i := range rd.Locals[0] {
			if rd.Locals[0][i] != rd.Locals[3][i] {
				t.Fatalf("round %d: identical data must yield identical local models", tr)
			}
		}
	}
}

func TestUtilityDefinition(t *testing.T) {
	clients, test, m := scenario(t, 4)
	cfg := DefaultConfig(3, 2)
	run, err := TrainRun(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	// U_t({i}) must equal ℓ(w^t) − ℓ(w_i^{t+1}).
	got := run.Utility(1, []int{2})
	want := run.Rounds[1].TestLoss - m.Loss(run.Rounds[1].Locals[2], test)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Utility = %v, want %v", got, want)
	}
	// Averaging definition for pairs.
	avg := make([]float64, m.NumParams())
	for i := range avg {
		avg[i] = (run.Rounds[1].Locals[0][i] + run.Rounds[1].Locals[1][i]) / 2
	}
	got2 := run.Utility(1, []int{0, 1})
	want2 := run.Rounds[1].TestLoss - m.Loss(avg, test)
	if math.Abs(got2-want2) > 1e-12 {
		t.Fatalf("pair Utility = %v, want %v", got2, want2)
	}
}

func TestUtilityEmptyPanics(t *testing.T) {
	clients, test, m := scenario(t, 4)
	run, err := TrainRun(DefaultConfig(2, 2), m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	run.Utility(0, nil)
}

func TestAggregationUsesOnlySelected(t *testing.T) {
	clients, test, m := scenario(t, 4)
	cfg := DefaultConfig(2, 2)
	run, err := TrainRun(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	// Global at round 1 must equal the mean of round 0's selected locals.
	sel := run.Rounds[0].Selected
	mean := make([]float64, m.NumParams())
	for _, c := range sel {
		for i, v := range run.Rounds[0].Locals[c] {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(len(sel))
	}
	for i := range mean {
		if math.Abs(run.Rounds[1].Global[i]-mean[i]) > 1e-12 {
			t.Fatal("global model must be the mean of the selected locals")
		}
	}
}

func TestLearningRateDecay(t *testing.T) {
	clients, test, m := scenario(t, 4)
	cfg := DefaultConfig(5, 2)
	cfg.LRDecay = 0.5
	run, err := TrainRun(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	for tr := 1; tr < len(run.Rounds); tr++ {
		if run.Rounds[tr].LearningRate >= run.Rounds[tr-1].LearningRate {
			t.Fatal("learning rate must be non-increasing")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	clients, test, m := scenario(t, 4)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero rounds", func(c *Config) { c.Rounds = 0 }},
		{"zero per-round", func(c *Config) { c.ClientsPerRound = 0 }},
		{"per-round too large", func(c *Config) { c.ClientsPerRound = 9 }},
		{"bad lr", func(c *Config) { c.LearningRate = 0 }},
		{"zero local steps", func(c *Config) { c.LocalSteps = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(3, 2)
			tc.mut(&cfg)
			if _, err := TrainRun(cfg, m, clients, test); err == nil {
				t.Fatal("expected config error")
			}
		})
	}
}

func TestEmptyClientRejected(t *testing.T) {
	clients, test, m := scenario(t, 4)
	clients[2] = &dataset.Dataset{NumClasses: clients[0].NumClasses}
	if _, err := TrainRun(DefaultConfig(2, 2), m, clients, test); err == nil {
		t.Fatal("expected error for empty client")
	}
}

func TestNoClientsRejected(t *testing.T) {
	_, test, m := scenario(t, 2)
	if _, err := TrainRun(DefaultConfig(2, 1), m, nil, test); err == nil {
		t.Fatal("expected error for no clients")
	}
}

func TestMultipleLocalSteps(t *testing.T) {
	clients, test, m := scenario(t, 4)
	cfg := DefaultConfig(2, 2)
	cfg.LocalSteps = 3
	run, err := TrainRun(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	// Three local steps must move farther than one (same start, same lr).
	cfg1 := DefaultConfig(2, 2)
	run1, err := TrainRun(cfg1, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	var d3, d1 float64
	for i := range run.Rounds[0].Locals[0] {
		a := run.Rounds[0].Locals[0][i] - run.Rounds[0].Global[i]
		b := run1.Rounds[0].Locals[0][i] - run1.Rounds[0].Global[i]
		d3 += a * a
		d1 += b * b
	}
	if d3 <= d1 {
		t.Fatalf("3 local steps moved less than 1: %v vs %v", d3, d1)
	}
}

func TestStochasticBatchesDiffer(t *testing.T) {
	clients, test, m := scenario(t, 4)
	full := DefaultConfig(2, 2)
	run1, err := TrainRun(full, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	batched := DefaultConfig(2, 2)
	batched.BatchSize = 5
	run2, err := TrainRun(batched, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range run1.Rounds[0].Locals[0] {
		if run1.Rounds[0].Locals[0][i] != run2.Rounds[0].Locals[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("mini-batch updates should differ from full-batch updates")
	}
}

func TestStochasticTrainingStillConverges(t *testing.T) {
	clients, test, m := scenario(t, 5)
	cfg := DefaultConfig(25, 3)
	cfg.LearningRate = 0.1
	cfg.BatchSize = 8
	cfg.LocalSteps = 2
	run, err := TrainRun(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	if last := m.Loss(run.Final, test); last >= run.Rounds[0].TestLoss {
		t.Fatalf("stochastic training did not reduce loss: %v → %v", run.Rounds[0].TestLoss, last)
	}
}

func TestWeightedAggregation(t *testing.T) {
	clients, test, m := scenario(t, 3)
	// Give client 0 much more data so the weighting is visible.
	clients[0] = dataset.Concat(clients[0], clients[0], clients[0])
	cfg := DefaultConfig(1, 3)
	cfg.WeightedAggregation = true
	run, err := TrainRun(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute the weighted mean manually.
	total := 0
	for _, c := range clients {
		total += c.Len()
	}
	want := make([]float64, m.NumParams())
	for i, c := range clients {
		w := float64(c.Len()) / float64(total)
		for j, v := range run.Rounds[0].Locals[i] {
			want[j] += w * v
		}
	}
	for j := range want {
		if math.Abs(run.Final[j]-want[j]) > 1e-12 {
			t.Fatal("weighted aggregation mismatch")
		}
	}
}

func TestDropoutKeepsAtLeastOneReporter(t *testing.T) {
	clients, test, m := scenario(t, 5)
	cfg := DefaultConfig(20, 3)
	cfg.DropoutRate = 0.9 // aggressive: most selections fail
	run, err := TrainRun(cfg, m, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	for tr, rd := range run.Rounds {
		if len(rd.Selected) == 0 {
			t.Fatalf("round %d has no reporters", tr)
		}
	}
}

func TestDropoutValidation(t *testing.T) {
	clients, test, m := scenario(t, 3)
	cfg := DefaultConfig(2, 2)
	cfg.DropoutRate = 1.0
	if _, err := TrainRun(cfg, m, clients, test); err == nil {
		t.Fatal("expected error for dropout rate 1.0")
	}
	cfg = DefaultConfig(2, 2)
	cfg.BatchSize = -1
	if _, err := TrainRun(cfg, m, clients, test); err == nil {
		t.Fatal("expected error for negative batch size")
	}
}
