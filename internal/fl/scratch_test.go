package fl

import (
	"testing"

	"comfedsv/internal/dataset"
	"comfedsv/internal/mat"
	"comfedsv/internal/model"
	"comfedsv/internal/rng"
)

// trainedScenario trains a small run for the scratch tests and benchmarks.
func trainedScenario(tb testing.TB, clients, rounds int) *Run {
	tb.Helper()
	full := dataset.GenerateImages(dataset.MNISTLikeConfig(17), clients*30+60)
	g := rng.New(18)
	train, test := dataset.TrainTestSplit(full, float64(60)/float64(full.Len()), g)
	parts := dataset.PartitionIID(train, clients, g)
	m := model.NewMLP(full.Dim(), 8, full.NumClasses)
	run, err := TrainRun(DefaultConfig(rounds, 2), m, parts, test)
	if err != nil {
		tb.Fatal(err)
	}
	return run
}

func TestUtilityIntoBitIdentical(t *testing.T) {
	run := trainedScenario(t, 5, 3)
	var sc UtilityScratch
	sets := [][]int{{0}, {1, 3}, {0, 2, 4}, {0, 1, 2, 3, 4}, {4, 2}}
	for ti := range run.Rounds {
		for _, s := range sets {
			want := run.Utility(ti, s)
			got := run.UtilityInto(&sc, ti, s)
			if got != want {
				t.Fatalf("round %d set %v: UtilityInto %v != Utility %v (must be bit-identical)", ti, s, got, want)
			}
		}
	}
}

func TestUtilityIntoEmptyPanics(t *testing.T) {
	run := trainedScenario(t, 3, 2)
	var sc UtilityScratch
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty coalition")
		}
	}()
	run.UtilityInto(&sc, 0, nil)
}

func TestAggregateIntoZeroAllocs(t *testing.T) {
	run := trainedScenario(t, 5, 2)
	var sc UtilityScratch
	s := []int{0, 2, 4}
	// Warm the scratch so its buffers reach model size.
	run.AggregateInto(&sc, 0, s)
	allocs := testing.AllocsPerRun(50, func() {
		run.AggregateInto(&sc, 1, s)
	})
	if allocs != 0 {
		t.Fatalf("AggregateInto allocated %v times per run, want 0", allocs)
	}
}

// BenchmarkAggregate compares the allocating and scratch-backed
// aggregation paths; run with -benchmem to see the 0 allocs/op of the
// Into variant.
func BenchmarkAggregate(b *testing.B) {
	run := trainedScenario(b, 8, 2)
	s := []int{0, 2, 4, 6}
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rd := &run.Rounds[0]
			vecs := make([][]float64, len(s))
			for j, c := range s {
				vecs[j] = rd.Locals[c]
			}
			sinkVec = mat.MeanVecs(vecs)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		var sc UtilityScratch
		run.AggregateInto(&sc, 0, s) // grow buffers once
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinkVec = run.AggregateInto(&sc, 0, s)
		}
	})
}

var sinkVec []float64
