// Package fl implements the horizontal federated-learning substrate: the
// FedAvg algorithm (McMahan et al. 2017) exactly as described in Section III
// of the paper, with uniform client selection and full per-round recording
// of every client's local update — the information the utility matrix and
// both Shapley metrics are computed from.
package fl

import (
	"context"
	"fmt"

	"comfedsv/internal/dataset"
	"comfedsv/internal/mat"
	"comfedsv/internal/model"
	"comfedsv/internal/rng"
)

// Config controls one federated training run.
type Config struct {
	// Rounds is the number of FedAvg rounds T.
	Rounds int
	// ClientsPerRound is the selection size K = |I_t|.
	ClientsPerRound int
	// LearningRate is the initial learning rate η₁.
	LearningRate float64
	// LRDecay, if positive, sets η_t = LearningRate / (1 + LRDecay·t),
	// matching the non-increasing schedules required by Propositions 1–2.
	// Zero keeps the rate constant.
	LRDecay float64
	// LocalSteps is the number of local gradient steps per round (the paper
	// presents one deterministic step; its analysis generalizes).
	LocalSteps int
	// BatchSize, if positive, makes local updates stochastic: each local
	// step uses a uniformly sampled mini-batch of this size instead of the
	// client's full dataset — the "arbitrary number of stochastic local
	// updates" generalization the paper notes after Eq. 4.
	BatchSize int
	// WeightedAggregation aggregates selected locals weighted by local
	// dataset size (the original FedAvg weighting) instead of uniformly.
	// The paper uses uniform averaging (Eq. 4), so this defaults to false.
	WeightedAggregation bool
	// DropoutRate, if positive, is the per-round probability that a
	// selected client fails to report; the server then aggregates the
	// remaining locals (at least one reporter is always kept). This is a
	// failure-injection knob for robustness testing, not part of the
	// paper's protocol.
	DropoutRate float64
	// ForceFullFirstRound selects every client in round 0, implementing the
	// Everyone-Being-Heard assumption (Assumption 1 / Algorithm 1).
	ForceFullFirstRound bool
	// Seed drives client selection and parameter initialization.
	Seed int64
	// Progress, if non-nil, is called from the training goroutine after
	// every completed round with the number of completed rounds and the
	// total round count. Implementations must be cheap; they run on the
	// training hot path.
	Progress func(done, total int)
}

// DefaultConfig mirrors the small-scale setup used throughout the paper's
// experiments: T rounds, K selected clients, one local step.
func DefaultConfig(rounds, clientsPerRound int) Config {
	return Config{
		Rounds:              rounds,
		ClientsPerRound:     clientsPerRound,
		LearningRate:        0.5,
		LRDecay:             0.01,
		LocalSteps:          1,
		ForceFullFirstRound: true,
		Seed:                1,
	}
}

// Round records everything observable about one FedAvg round.
type Round struct {
	// Global is the global model w^t broadcast at the start of the round.
	Global []float64
	// Locals[i] is client i's updated local model w_i^{t+1}. Every client
	// computes an update (Assumption 1: everyone is willing to participate);
	// only the selected ones are aggregated.
	Locals [][]float64
	// Selected is the subset I_t aggregated into the next global model.
	Selected []int
	// TestLoss is ℓ(w^t; D_c), the reference point of the per-round utility
	// u_t(w) = ℓ(w^t; D_c) − ℓ(w; D_c) (Eq. 6).
	TestLoss float64
	// LearningRate is η_t.
	LearningRate float64
}

// Run is a completed federated training trace.
type Run struct {
	Model   model.Model
	Test    *dataset.Dataset
	Clients []*dataset.Dataset
	Rounds  []Round
	// Final is the global model after the last round.
	Final []float64
}

// NumClients returns the number of participating clients N.
func (r *Run) NumClients() int { return len(r.Clients) }

// Utility evaluates the paper's per-round utility U_t(S) = u_t(w_S^{t+1})
// where w_S^{t+1} is the average of the locals of S (Section V). It panics
// if S is empty; the empty coalition's utility is 0 by convention and is
// handled by callers.
func (r *Run) Utility(t int, s []int) float64 {
	if len(s) == 0 {
		panic("fl: utility of empty coalition")
	}
	rd := &r.Rounds[t]
	vecs := make([][]float64, len(s))
	for i, c := range s {
		vecs[i] = rd.Locals[c]
	}
	wS := mat.MeanVecs(vecs)
	return rd.TestLoss - r.Model.Loss(wS, r.Test)
}

// UtilityScratch holds the reusable buffers of allocation-free utility
// evaluation: the local-model pointer slice and the aggregate vector that
// Run.Utility otherwise rebuilds on every call. A scratch may be reused
// across calls on one goroutine; it is not safe for concurrent use — pool
// scratches per worker instead.
type UtilityScratch struct {
	vecs [][]float64
	mean []float64
}

// AggregateInto computes the uniform FedAvg aggregate w_S^{t+1} — the
// element-wise mean of the locals of S — into the scratch and returns the
// aggregate vector, owned by sc and valid until its next use. The
// accumulation order matches mat.MeanVecs exactly, so the aggregate is
// bit-identical to the one Utility computes; after the scratch's buffers
// have grown to the model size, the aggregation performs zero
// allocations. It panics if S is empty.
func (r *Run) AggregateInto(sc *UtilityScratch, t int, s []int) []float64 {
	if len(s) == 0 {
		panic("fl: utility of empty coalition")
	}
	rd := &r.Rounds[t]
	sc.vecs = sc.vecs[:0]
	for _, c := range s {
		sc.vecs = append(sc.vecs, rd.Locals[c])
	}
	sc.mean = mat.MeanVecsInto(sc.mean, sc.vecs)
	return sc.mean
}

// UtilityInto is Utility with caller-provided scratch: same value, bit for
// bit, without the per-call slice allocations of the aggregation step. It
// is the memoized evaluator's hot path — the cache-miss cost reduces to
// the irreducible test-loss evaluation.
func (r *Run) UtilityInto(sc *UtilityScratch, t int, s []int) float64 {
	wS := r.AggregateInto(sc, t, s)
	return r.Rounds[t].TestLoss - r.Model.Loss(wS, r.Test)
}

// TrainRun executes FedAvg and records the full trace. Every client
// computes its local update in every round (needed by the ground-truth
// utility matrix); only the selected subset is aggregated, so the global
// trajectory is identical to a run that skipped unselected clients.
func TrainRun(cfg Config, m model.Model, clients []*dataset.Dataset, test *dataset.Dataset) (*Run, error) {
	return TrainRunCtx(context.Background(), cfg, m, clients, test)
}

// TrainRunCtx is TrainRun with cooperative cancellation: the context is
// checked at every round boundary, so a cancelled run returns ctx.Err()
// without a partially recorded round. The trace produced under a context
// that is never cancelled is identical to TrainRun's.
func TrainRunCtx(ctx context.Context, cfg Config, m model.Model, clients []*dataset.Dataset, test *dataset.Dataset) (*Run, error) {
	if err := validate(cfg, clients); err != nil {
		return nil, err
	}
	g := rng.New(cfg.Seed)
	selRNG := g.Split(1)
	batchRNG := g.Split(3)
	dropRNG := g.Split(4)
	w := m.InitParams(g.Split(2))

	run := &Run{Model: m, Test: test, Clients: clients, Rounds: make([]Round, 0, cfg.Rounds)}
	n := len(clients)

	for t := 0; t < cfg.Rounds; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lr := cfg.LearningRate
		if cfg.LRDecay > 0 {
			lr = cfg.LearningRate / (1 + cfg.LRDecay*float64(t))
		}
		rd := Round{
			Global:       mat.CopyVec(w),
			Locals:       make([][]float64, n),
			TestLoss:     m.Loss(w, test),
			LearningRate: lr,
		}
		// Local updates for every client.
		for i, d := range clients {
			local := mat.CopyVec(w)
			for step := 0; step < cfg.LocalSteps; step++ {
				batch := d
				if cfg.BatchSize > 0 && cfg.BatchSize < d.Len() {
					batch = d.Subset(batchRNG.SampleWithoutReplacement(d.Len(), cfg.BatchSize))
				}
				grad := m.Gradient(local, batch)
				mat.Axpy(-lr, grad, local)
			}
			rd.Locals[i] = local
		}
		// Client selection.
		if t == 0 && cfg.ForceFullFirstRound {
			rd.Selected = make([]int, n)
			for i := range rd.Selected {
				rd.Selected[i] = i
			}
		} else {
			rd.Selected = selRNG.SampleWithoutReplacement(n, cfg.ClientsPerRound)
		}
		// Failure injection: selected clients may fail to report.
		reporters := rd.Selected
		if cfg.DropoutRate > 0 {
			kept := reporters[:0:0]
			for _, c := range reporters {
				if !dropRNG.Bernoulli(cfg.DropoutRate) {
					kept = append(kept, c)
				}
			}
			if len(kept) == 0 {
				kept = []int{reporters[dropRNG.Intn(len(reporters))]}
			}
			reporters = kept
		}
		// Aggregate the reporting locals into the next global model.
		if cfg.WeightedAggregation {
			total := 0
			for _, c := range reporters {
				total += clients[c].Len()
			}
			next := make([]float64, len(w))
			for _, c := range reporters {
				mat.Axpy(float64(clients[c].Len())/float64(total), rd.Locals[c], next)
			}
			w = next
		} else {
			vecs := make([][]float64, len(reporters))
			for i, c := range reporters {
				vecs[i] = rd.Locals[c]
			}
			w = mat.MeanVecs(vecs)
		}
		rd.Selected = reporters
		run.Rounds = append(run.Rounds, rd)
		if cfg.Progress != nil {
			cfg.Progress(t+1, cfg.Rounds)
		}
	}
	run.Final = mat.CopyVec(w)
	return run, nil
}

func validate(cfg Config, clients []*dataset.Dataset) error {
	if cfg.Rounds <= 0 {
		return fmt.Errorf("fl: rounds must be positive, got %d", cfg.Rounds)
	}
	if len(clients) == 0 {
		return fmt.Errorf("fl: no clients")
	}
	if cfg.ClientsPerRound <= 0 || cfg.ClientsPerRound > len(clients) {
		return fmt.Errorf("fl: clients per round %d out of range [1,%d]", cfg.ClientsPerRound, len(clients))
	}
	if cfg.LearningRate <= 0 {
		return fmt.Errorf("fl: learning rate must be positive, got %v", cfg.LearningRate)
	}
	if cfg.LocalSteps <= 0 {
		return fmt.Errorf("fl: local steps must be positive, got %d", cfg.LocalSteps)
	}
	if cfg.BatchSize < 0 {
		return fmt.Errorf("fl: negative batch size %d", cfg.BatchSize)
	}
	if cfg.DropoutRate < 0 || cfg.DropoutRate >= 1 {
		return fmt.Errorf("fl: dropout rate %v out of [0,1)", cfg.DropoutRate)
	}
	for i, d := range clients {
		if d.Len() == 0 {
			return fmt.Errorf("fl: client %d has no data", i)
		}
	}
	return nil
}
