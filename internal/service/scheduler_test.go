package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"comfedsv"
	"comfedsv/internal/persist"
)

// taskLog records scripted-task executions in order.
type taskLog struct {
	mu     sync.Mutex
	events []string
}

func (l *taskLog) add(event string) {
	l.mu.Lock()
	l.events = append(l.events, event)
	l.mu.Unlock()
}

func (l *taskLog) index(event string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, e := range l.events {
		if e == event {
			return i
		}
	}
	return -1
}

// fakeValuation is a scripted stage graph: it records every stage
// execution into a shared log and can block inside Prepare or a given
// observe shard until released.
type fakeValuation struct {
	name        string
	shards      int
	log         *taskLog
	prepareGate <-chan struct{} // if non-nil, Prepare blocks until closed
	observeGate map[int]<-chan struct{}

	// extractStarted, if non-nil, is closed when Extract begins;
	// extractGate, if non-nil, blocks Extract (deliberately ignoring the
	// context — simulating an extraction that finishes despite a racing
	// cancel) until closed.
	extractStarted chan struct{}
	extractGate    <-chan struct{}

	// waves scripts adaptive behavior: the i-th Complete call returns
	// waves[i] additional observation shards (calls past the end, or a nil
	// slice, return 0 — the plan is done).
	waves     []int
	completes int
}

func (f *fakeValuation) Prepare(ctx context.Context) (int, error) {
	if f.prepareGate != nil {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-f.prepareGate:
		}
	}
	f.log.add(f.name + ":prepare")
	return f.shards, nil
}

func (f *fakeValuation) ObserveShard(ctx context.Context, shard int) error {
	if gate := f.observeGate[shard]; gate != nil {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-gate:
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	f.log.add(fmt.Sprintf("%s:observe%d", f.name, shard))
	return nil
}

func (f *fakeValuation) Complete(ctx context.Context) (int, error) {
	f.log.add(f.name + ":complete")
	more := 0
	if f.completes < len(f.waves) {
		more = f.waves[f.completes]
	}
	f.completes++
	return more, nil
}

func (f *fakeValuation) Extract(ctx context.Context) (*comfedsv.Report, error) {
	if f.extractStarted != nil {
		close(f.extractStarted)
	}
	if f.extractGate != nil {
		<-f.extractGate
	}
	f.log.add(f.name + ":extract")
	return &comfedsv.Report{FedSV: []float64{1}, ComFedSV: []float64{1}}, nil
}

func (f *fakeValuation) Stats() *comfedsv.EvalStats { return nil }

// scriptManager wires a manager whose submissions consume the given fake
// valuations in order.
func scriptManager(t *testing.T, workers int, fakes ...stagedValuation) *Manager {
	t.Helper()
	var mu sync.Mutex
	next := 0
	cfg := Config{Workers: workers}
	cfg.buildValuation = func(Request, comfedsv.Options) stagedValuation {
		mu.Lock()
		defer mu.Unlock()
		f := fakes[next]
		next++
		return f
	}
	return newManager(t, cfg)
}

// TestSchedulerFairnessSmallJobInterleaves is the head-of-line-blocking
// regression test of the stage-graph scheduler: with ONE worker, a large
// job A (4 observation shards) submitted before a small job B (1 shard)
// must not run to completion first — the round-robin ring interleaves B's
// tasks between A's shards, so B's first shard runs (and B finishes)
// before A's observation stage even ends.
func TestSchedulerFairnessSmallJobInterleaves(t *testing.T) {
	log := &taskLog{}
	gate := make(chan struct{})
	a := &fakeValuation{name: "A", shards: 4, log: log, prepareGate: gate}
	b := &fakeValuation{name: "B", shards: 1, log: log}
	m := scriptManager(t, 1, a, b)

	idA, err := m.Submit(tinyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the lone worker owns A's prepare task, so B enters the
	// ring ahead of A's shard fan-out.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, _ := m.Status(idA); st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("A never started")
		}
		time.Sleep(time.Millisecond)
	}
	idB, err := m.Submit(tinyRequest(2))
	if err != nil {
		t.Fatal(err)
	}
	close(gate)

	if st := waitTerminal(t, m, idB); st.State != StateDone {
		t.Fatalf("B finished %s (%s)", st.State, st.Error)
	}
	if st := waitTerminal(t, m, idA); st.State != StateDone {
		t.Fatalf("A finished %s (%s)", st.State, st.Error)
	}

	// B's first shard ran before A's observation stage finished, and B
	// completed outright before A's extraction — the old worker-per-job
	// engine would have run all of A first.
	if bObs, aLast := log.index("B:observe0"), log.index("A:observe3"); bObs < 0 || aLast < 0 || bObs > aLast {
		t.Fatalf("B's first shard at %d, A's last shard at %d; want B interleaved before A finishes observing\nlog: %v", bObs, aLast, log.events)
	}
	if bExt, aExt := log.index("B:extract"), log.index("A:extract"); bExt > aExt {
		t.Fatalf("B extracted at %d, after A at %d; small job starved\nlog: %v", bExt, aExt, log.events)
	}

	st, err := m.Status(idA)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 || st.ShardsDone != 4 {
		t.Fatalf("A shard accounting %d/%d, want 4/4", st.ShardsDone, st.Shards)
	}
}

// bareManager builds a Manager with no workers, for deterministic direct
// tests of the scheduling primitives.
func bareManager() *Manager {
	m := &Manager{
		jobs:      make(map[string]*job),
		runs:      make(map[string]*runEntry),
		tasksDone: make(map[string]int64),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// TestPopTaskRoundRobinOrdering pins the ordering contract of
// popTaskLocked, the replacement for the job-FIFO popEligibleLocked: jobs
// surrender one task per turn and rotate to the back of the ring.
func TestPopTaskRoundRobinOrdering(t *testing.T) {
	m := bareManager()
	mkJob := func(id string) *job {
		j := &job{id: id, state: StateQueued}
		m.jobs[id] = j
		return j
	}
	mkTask := func(j *job, stage string) *task {
		return &task{j: j, stage: stage, shard: -1}
	}
	jA, jB, jC := mkJob("A"), mkJob("B"), mkJob("C")

	m.mu.Lock()
	defer m.mu.Unlock()
	m.enqueueLocked(jA, mkTask(jA, "a1"), mkTask(jA, "a2"), mkTask(jA, "a3"))
	m.enqueueLocked(jB, mkTask(jB, "b1"))
	m.enqueueLocked(jC, mkTask(jC, "c1"), mkTask(jC, "c2"))

	var got []string
	for {
		tk := m.popTaskLocked()
		if tk == nil {
			break
		}
		got = append(got, tk.stage)
	}
	want := []string{"a1", "b1", "c1", "a2", "c2", "a3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("pop order %v, want round-robin %v", got, want)
	}
	if jA.inRing || jB.inRing || jC.inRing {
		t.Fatal("drained jobs still marked in ring")
	}

	// A job whose tasks are enqueued mid-stream joins at the back.
	m.enqueueLocked(jA, mkTask(jA, "a4"))
	m.enqueueLocked(jB, mkTask(jB, "b2"))
	if tk := m.popTaskLocked(); tk.stage != "a4" {
		t.Fatalf("pop after re-enqueue = %s, want a4", tk.stage)
	}
	if tk := m.popTaskLocked(); tk.stage != "b2" {
		t.Fatal("re-enqueued jobs lost ring order")
	}
}

// TestPopTaskSkipsJobsOnTrainingRuns pins the eligibility rule: a queued
// job referencing a run still in training keeps its ring slot but is
// skipped in place, so later jobs run; once the run leaves the training
// state the job pops normally.
func TestPopTaskSkipsJobsOnTrainingRuns(t *testing.T) {
	m := bareManager()
	e := &runEntry{id: "run-x", state: RunTraining, done: make(chan struct{})}
	m.runs["run-x"] = e

	jWaiting := &job{id: "W", state: StateQueued, runID: "run-x"}
	jInline := &job{id: "I", state: StateQueued}
	m.jobs["W"] = jWaiting
	m.jobs["I"] = jInline

	m.mu.Lock()
	defer m.mu.Unlock()
	m.enqueueLocked(jWaiting, &task{j: jWaiting, stage: "w1", shard: -1})
	m.enqueueLocked(jInline, &task{j: jInline, stage: "i1", shard: -1})

	if tk := m.popTaskLocked(); tk == nil || tk.stage != "i1" {
		t.Fatalf("pop with training run = %+v, want the inline job's task", tk)
	}
	if tk := m.popTaskLocked(); tk != nil {
		t.Fatalf("pop returned %s while the only remaining job waits on training", tk.stage)
	}
	if !jWaiting.inRing {
		t.Fatal("waiting job lost its ring slot")
	}

	e.state = RunReady
	if tk := m.popTaskLocked(); tk == nil || tk.stage != "w1" {
		t.Fatalf("pop after training = %+v, want the waiting job's task", tk)
	}

	// A *running* job's tasks are never skipped: the run reference only
	// gates the first task.
	jRunning := &job{id: "R", state: StateRunning, runID: "run-y"}
	m.jobs["R"] = jRunning
	m.runs["run-y"] = &runEntry{id: "run-y", state: RunTraining, done: make(chan struct{})}
	m.enqueueLocked(jRunning, &task{j: jRunning, stage: "r1", shard: -1})
	if tk := m.popTaskLocked(); tk == nil || tk.stage != "r1" {
		t.Fatalf("pop of running job = %+v, want its task regardless of run state", tk)
	}
}

// TestCancelDrainsQueuedShards pins the cancellation contract of the
// staged scheduler: cancelling a job mid-observation drains its queued
// shard tasks (they never execute) and the job fails with ErrCancelled
// once the in-flight shard observes the cancellation.
func TestCancelDrainsQueuedShards(t *testing.T) {
	log := &taskLog{}
	gate := make(chan struct{})
	defer close(gate)
	a := &fakeValuation{
		name:        "A",
		shards:      6,
		log:         log,
		observeGate: map[int]<-chan struct{}{0: gate},
	}
	m := scriptManager(t, 1, a)
	id, err := m.Submit(tinyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until shard 0 is in flight (prepare logged, worker blocked).
	deadline := time.Now().Add(5 * time.Second)
	for log.index("A:prepare") < 0 {
		if time.Now().After(deadline) {
			t.Fatal("prepare never ran")
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateFailed || st.Error != ErrCancelled.Error() {
		t.Fatalf("cancelled job: state %s error %q", st.State, st.Error)
	}
	// No shard ever executed: shard 0 was cancelled while blocked, shards
	// 1..5 were drained from the queue.
	for i := 0; i < 6; i++ {
		if log.index(fmt.Sprintf("A:observe%d", i)) >= 0 {
			t.Fatalf("shard %d executed after cancellation\nlog: %v", i, log.events)
		}
	}
	if st.ShardsDone != 0 {
		t.Fatalf("cancelled job reports %d shards done, want 0", st.ShardsDone)
	}
}

// TestTaskFailureDrainsSiblingShards pins failure isolation: one shard
// failing cancels the job and drains its siblings, without disturbing an
// unrelated concurrent job.
func TestTaskFailureDrainsSiblingShards(t *testing.T) {
	log := &taskLog{}
	gate := make(chan struct{})
	boom := &failingShardValuation{fake: fakeValuation{name: "F", shards: 4, log: log, observeGate: map[int]<-chan struct{}{0: gate}}, failShard: 0}
	ok := &fakeValuation{name: "OK", shards: 1, log: log}
	m := scriptManager(t, 2, boom, ok)
	idF, err := m.Submit(tinyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	idOK, err := m.Submit(tinyRequest(2))
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	if st := waitTerminal(t, m, idF); st.State != StateFailed || st.Error != "boom" {
		t.Fatalf("failing job: state %s error %q, want failed with \"boom\"", st.State, st.Error)
	}
	if st := waitTerminal(t, m, idOK); st.State != StateDone {
		t.Fatalf("sibling job finished %s (%s)", st.State, st.Error)
	}
	if log.index("F:complete") >= 0 || log.index("F:extract") >= 0 {
		t.Fatalf("failed job advanced past observation\nlog: %v", log.events)
	}
}

type failingShardValuation struct {
	fake      fakeValuation
	failShard int
}

func (f *failingShardValuation) Prepare(ctx context.Context) (int, error) {
	return f.fake.Prepare(ctx)
}

func (f *failingShardValuation) ObserveShard(ctx context.Context, shard int) error {
	if shard == f.failShard {
		if gate := f.fake.observeGate[shard]; gate != nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-gate:
			}
		}
		return errors.New("boom")
	}
	return f.fake.ObserveShard(ctx, shard)
}

func (f *failingShardValuation) Complete(ctx context.Context) (int, error) {
	return f.fake.Complete(ctx)
}

func (f *failingShardValuation) Extract(ctx context.Context) (*comfedsv.Report, error) {
	return f.fake.Extract(ctx)
}

func (f *failingShardValuation) Stats() *comfedsv.EvalStats { return nil }

// TestCancelRacingExtractionCompletesDone pins the cancel-vs-completion
// race: when Cancel lands while the extraction task is in flight and the
// extraction still succeeds (its report may already be persisted), the job
// completes done — failing it would strand an on-disk report that a
// restart resurrects as a done job the caller was told was cancelled.
func TestCancelRacingExtractionCompletesDone(t *testing.T) {
	dir := t.TempDir()
	store, err := persist.NewJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	log := &taskLog{}
	gate := make(chan struct{})
	started := make(chan struct{})
	a := &fakeValuation{name: "A", shards: 1, log: log, extractStarted: started, extractGate: gate}
	var mu sync.Mutex
	next := 0
	fakes := []stagedValuation{a}
	cfg := Config{Workers: 1, Store: store}
	cfg.buildValuation = func(Request, comfedsv.Options) stagedValuation {
		mu.Lock()
		defer mu.Unlock()
		f := fakes[next]
		next++
		return f
	}
	m := newManager(t, cfg)
	id, err := m.Submit(tinyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	<-started // extraction is in flight on the worker
	if err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	close(gate) // extraction finishes despite the cancel
	st := waitTerminal(t, m, id)
	if st.State != StateDone {
		t.Fatalf("job ended %s (%s), want done: the extraction won the race", st.State, st.Error)
	}
	if _, err := m.Report(id); err != nil {
		t.Fatalf("report of completed job: %v", err)
	}
	if !store.HasJobReport(id) {
		t.Fatal("completed job's report missing from the store")
	}
}

// TestMixedLoadSmallJobFinishesFirst is the acceptance test for the
// tentpole on the REAL pipeline: with one worker, a large Monte-Carlo job
// submitted first and a small job submitted behind it, the small job
// completes before the large one finishes — time-to-first-completion under
// mixed load is no longer the large job's full runtime.
func TestMixedLoadSmallJobFinishesFirst(t *testing.T) {
	m := newManager(t, Config{Workers: 1})

	big := tinyRequest(41)
	big.Options.Rounds = 6
	big.Options.MonteCarloSamples = 400
	big.Options.Shards = 8
	small := tinyRequest(42)

	idBig, err := m.Submit(big)
	if err != nil {
		t.Fatal(err)
	}
	idSmall, err := m.Submit(small)
	if err != nil {
		t.Fatal(err)
	}
	stSmall := waitTerminal(t, m, idSmall)
	if stSmall.State != StateDone {
		t.Fatalf("small job finished %s (%s)", stSmall.State, stSmall.Error)
	}
	stBig := waitTerminal(t, m, idBig)
	if stBig.State != StateDone {
		t.Fatalf("big job finished %s (%s)", stBig.State, stBig.Error)
	}
	if !stSmall.FinishedAt.Before(*stBig.FinishedAt) {
		t.Fatalf("small job finished at %v, after the big job at %v: head-of-line blocking is back",
			stSmall.FinishedAt, stBig.FinishedAt)
	}
	if stBig.Shards != 8 || stBig.ShardsDone != 8 {
		t.Fatalf("big job shard accounting %d/%d, want 8/8", stBig.ShardsDone, stBig.Shards)
	}

	// Determinism across the scheduler: the sharded big job's report is
	// byte-identical to the direct single-threaded call.
	rep, err := m.Report(idBig)
	if err != nil {
		t.Fatal(err)
	}
	req := tinyRequest(41)
	req.Options.Rounds = 6
	req.Options.MonteCarloSamples = 400
	want, err := comfedsv.Value(req.Clients, req.Test, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	gotB, _ := json.Marshal(rep)
	wantB, _ := json.Marshal(want)
	if !bytes.Equal(gotB, wantB) {
		t.Fatalf("sharded scheduled report differs from direct call:\n%s\nvs\n%s", gotB, wantB)
	}
}

// TestJobTTLEvictsTerminalJobs pins the -job-ttl contract: terminal jobs
// older than the TTL vanish from memory and from the store; fresh jobs
// survive.
func TestJobTTLEvictsTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	store, err := persist.NewJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := newManager(t, Config{
		Workers: 1,
		Store:   store,
		JobTTL:  50 * time.Millisecond,
		Value: func(context.Context, []comfedsv.Client, comfedsv.Client, comfedsv.Options) (*comfedsv.Report, error) {
			return &comfedsv.Report{FedSV: []float64{1}, ComFedSV: []float64{1}}, nil
		},
	})
	id, err := m.Submit(tinyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m, id); st.State != StateDone {
		t.Fatalf("job finished %s (%s)", st.State, st.Error)
	}
	if !store.HasJobReport(id) {
		t.Fatal("report not persisted before eviction")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := m.Status(id); errors.Is(err, ErrNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal job never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if store.HasJobReport(id) {
		t.Fatal("eviction left the persisted report behind")
	}
	if m.Metrics().JobsEvicted == 0 {
		t.Fatal("eviction counter did not move")
	}
}

// TestDeleteJobLifecycle pins the DELETE surface: active jobs are refused
// with ErrJobActive, terminal jobs are removed from memory and disk, and
// unknown jobs are ErrNotFound.
func TestDeleteJobLifecycle(t *testing.T) {
	dir := t.TempDir()
	store, err := persist.NewJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	m := newManager(t, Config{Workers: 1, Store: store, Value: blockingValue(release)})

	if err := m.DeleteJob("job-doesnotexist"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete unknown job: %v, want ErrNotFound", err)
	}

	id, err := m.Submit(tinyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, _ := m.Status(id); st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.DeleteJob(id); !errors.Is(err, ErrJobActive) {
		t.Fatalf("delete running job: %v, want ErrJobActive", err)
	}
	close(release)
	if st := waitTerminal(t, m, id); st.State != StateDone {
		t.Fatalf("job finished %s (%s)", st.State, st.Error)
	}
	if !store.HasJobReport(id) {
		t.Fatal("report not persisted")
	}
	if err := m.DeleteJob(id); err != nil {
		t.Fatalf("delete terminal job: %v", err)
	}
	if _, err := m.Status(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("status after delete: %v, want ErrNotFound", err)
	}
	if store.HasJobReport(id) {
		t.Fatal("delete left the persisted report behind")
	}
	if err := m.DeleteJob(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second delete: %v, want ErrNotFound", err)
	}
	if len(m.List()) != 0 {
		t.Fatalf("deleted job still listed: %+v", m.List())
	}
}

// TestMetricsCounters spot-checks the Metrics snapshot after a sharded job.
func TestMetricsCounters(t *testing.T) {
	log := &taskLog{}
	m := scriptManager(t, 2, &fakeValuation{name: "A", shards: 3, log: log})
	id, err := m.Submit(tinyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m, id); st.State != StateDone {
		t.Fatalf("job finished %s (%s)", st.State, st.Error)
	}
	got := m.Metrics()
	if got.Jobs[StateDone] != 1 {
		t.Fatalf("done jobs = %d, want 1", got.Jobs[StateDone])
	}
	if got.ShardTasksExecuted != 3 {
		t.Fatalf("shard tasks executed = %d, want 3", got.ShardTasksExecuted)
	}
	want := map[string]int64{taskPrepare: 1, taskObserve: 3, taskComplete: 1, taskShapley: 1}
	for stage, n := range want {
		if got.TasksExecuted[stage] != n {
			t.Fatalf("tasks executed[%s] = %d, want %d (all: %v)", stage, got.TasksExecuted[stage], n, got.TasksExecuted)
		}
	}
	if got.QueuedJobs != 0 || got.InflightTasks != 0 || got.ReadyTasks != 0 {
		t.Fatalf("idle manager reports queued=%d inflight=%d ready=%d", got.QueuedJobs, got.InflightTasks, got.ReadyTasks)
	}
}
