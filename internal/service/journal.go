package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"comfedsv"
	"comfedsv/internal/faultinject"
	"comfedsv/internal/persist"
)

// journalRequest is the submit record's payload: the full effective job
// request — datasets or run reference plus the options after daemon
// defaults were applied. Journaling the *effective* options (not the
// submitted ones) pins the recovery contract: a daemon restarted with
// different default flags re-executes the job exactly as the original
// daemon would have, so the resumed report is byte-identical.
type journalRequest struct {
	RunID   string            `json:"run_id,omitempty"`
	Clients []comfedsv.Client `json:"clients,omitempty"`
	Test    comfedsv.Client   `json:"test,omitempty"`
	Options comfedsv.Options  `json:"options"`
}

// appendJournal durably records one journal entry for a job. Journaling
// is best-effort — a disk hiccup must not fail a job whose computation
// is healthy — with one exception: a simulated crash
// (faultinject.ErrCrash) is returned to the caller so the task fails
// like the process died, which is exactly what the chaos suites are
// simulating. Callers must not hold m.mu (Append fsyncs).
func (m *Manager) appendJournal(j *job, rec persist.JournalRecord) error {
	jr := j.journal
	if jr == nil {
		return nil
	}
	rec.Time = m.clock.Now()
	err := jr.Append(rec)
	if err == nil {
		return nil
	}
	if errors.Is(err, faultinject.ErrCrash) {
		return err
	}
	m.logJob("journal append failed", j, "error", err.Error())
	return nil
}

// sealJournal finishes a terminal job's journal according to how the
// job ended. Idempotent: the terminal transition stashes the journal
// exactly once. Callers must not hold m.mu.
//
//	simulated crash    freeze the file as the dying process left it —
//	                   restart resumes the job from it
//	done               close; a successfully persisted report already
//	                   removed the file, a persistence failure leaves it
//	                   so a restart recomputes the report
//	user cancel        remove; the user does not want a restart to
//	                   resurrect the job
//	shutdown cancel    keep untouched; restart resumes the job
//	fatal failure      append a fail record so the failure — not a
//	                   silent re-run — survives the restart
func (m *Manager) sealJournal(j *job) {
	m.mu.Lock()
	jr := j.sealJ
	j.sealJ = nil
	state := j.state
	jerr := j.err
	userCancel := j.userCancelled
	m.mu.Unlock()
	if jr == nil {
		return
	}
	defer jr.Close()
	switch {
	case errors.Is(jerr, faultinject.ErrCrash):
	case state == StateDone:
	case userCancel:
		if m.cfg.Store != nil {
			if err := m.cfg.Store.RemoveJournal(j.id); err != nil {
				m.logJob("journal remove failed", j, "error", err.Error())
			}
		}
	case errors.Is(jerr, ErrCancelled):
	default:
		msg := "unknown failure"
		if jerr != nil {
			msg = jerr.Error()
		}
		if err := jr.Append(persist.JournalRecord{Type: persist.RecFail, Time: m.clock.Now(), Error: msg}); err != nil {
			m.logJob("journal fail record failed", j, "error", err.Error())
		}
	}
}

// recoverJournals replays the journals a previous process left behind,
// re-registering their jobs: a journal whose report already exists is
// stale bookkeeping and is removed; an empty journal is a process that
// died before its first fsync and is forgotten; a corrupt journal is
// quarantined (renamed *.journal.corrupt) and its job registered as
// failed with the reason — startup never aborts on one damaged file; a
// journal ending in a fail record re-registers the failure; everything
// else is an in-flight job, re-queued for deterministic re-execution
// from its journaled request. Called from NewManager before the worker
// pool starts, so no locking is needed.
func (m *Manager) recoverJournals() error {
	ids, err := m.cfg.Store.ListJournals()
	if err != nil {
		return fmt.Errorf("service: scanning journals: %w", err)
	}
	for _, id := range ids {
		if _, exists := m.jobs[id]; exists {
			// The report landed before the crash; the journal is stale.
			m.cfg.Store.RemoveJournal(id)
			continue
		}
		recs, rerr := m.cfg.Store.ReadJournal(id)
		if rerr != nil {
			m.quarantineJob(id, rerr)
			continue
		}
		if len(recs) == 0 {
			m.cfg.Store.RemoveJournal(id)
			continue
		}
		var req journalRequest
		if derr := json.Unmarshal(recs[0].Request, &req); derr != nil {
			m.quarantineJob(id, fmt.Errorf("%w: undecodable submit record: %v", persist.ErrCorruptJournal, derr))
			continue
		}
		m.resumeJob(id, req, recs)
	}
	return nil
}

// quarantineJob renames a damaged journal out of the replay path and
// registers its job as failed with a clear reason.
func (m *Manager) quarantineJob(id string, cause error) {
	dst, qerr := m.cfg.Store.QuarantineJournal(id, m.cfg.FaultHook)
	if qerr != nil {
		m.logRun("journal quarantine failed", id, "error", qerr.Error())
		dst = "(rename failed)"
	}
	now := m.clock.Now()
	j := &job{
		id:        id,
		state:     StateFailed,
		err:       fmt.Errorf("service: job journal corrupt, quarantined to %s: %w", dst, cause),
		submitted: now,
		finished:  now,
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.logJob("job quarantined", j, "error", cause.Error())
}

// resumeJob re-registers one journaled job from its decoded submit
// record plus the task records that made it to disk before the crash.
func (m *Manager) resumeJob(id string, req journalRequest, recs []persist.JournalRecord) {
	now := m.clock.Now()
	submitted := recs[0].Time
	if submitted.IsZero() {
		submitted = now
	}

	var failRec *persist.JournalRecord
	digests := make(map[int]string)
	for i := range recs[1:] {
		rec := &recs[1+i]
		switch rec.Type {
		case persist.RecFail:
			failRec = rec
		case persist.RecTask:
			if rec.Stage == taskObserve && rec.Digest != "" {
				digests[rec.Shard] = rec.Digest
			}
		}
	}

	if failRec != nil {
		// The failure itself is the durable outcome; the journal stays
		// so the next restart re-registers it identically.
		j := &job{
			id:        id,
			state:     StateFailed,
			err:       fmt.Errorf("service: recovered failed job: %s", failRec.Error),
			runID:     req.RunID,
			submitted: submitted,
			finished:  now,
		}
		m.jobs[id] = j
		m.order = append(m.order, id)
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:          id,
		req:         Request{RunID: req.RunID, Clients: req.Clients, Test: req.Test, Options: req.Options},
		runID:       req.RunID,
		state:       StateQueued,
		ctx:         ctx,
		cancel:      cancel,
		submitted:   submitted,
		recovered:   true,
		wantDigests: digests,
	}
	j.opts = m.instrumentOptions(j, req.Options)

	if req.RunID != "" {
		e, ok := m.runs[req.RunID]
		if !ok {
			cancel()
			j.state = StateFailed
			j.err = fmt.Errorf("service: cannot resume job: shared run %s no longer exists", req.RunID)
			j.finished = now
			m.jobs[id] = j
			m.order = append(m.order, id)
			return
		}
		e.refs++
	}

	if jr, jerr := m.cfg.Store.OpenJournal(id, m.cfg.FaultHook); jerr == nil {
		j.journal = jr
	} else {
		m.logJob("journal reopen failed", j, "error", jerr.Error())
	}
	j.val = m.newValuation(j)
	m.queued++ // recovered work is never turned away, even past QueueDepth
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.enqueueLocked(j, m.prepareTask(j))
	m.jobsRecovered++
	m.logJob("job recovered", j, "journaled_shards", len(digests))
}

// instrumentOptions wires the manager's progress and stage-timing hooks
// into a job's effective options — shared by Submit and journal
// recovery so a resumed job reports progress exactly like a fresh one.
func (m *Manager) instrumentOptions(j *job, opts comfedsv.Options) comfedsv.Options {
	prev := opts.OnProgress
	opts.OnProgress = func(p comfedsv.Progress) {
		m.mu.Lock()
		j.progress = p
		m.mu.Unlock()
		if prev != nil {
			prev(p)
		}
	}
	prevTime := opts.OnStageTime
	opts.OnStageTime = func(st comfedsv.StageTiming) {
		// valHist's keys are fixed at construction, so this lookup is
		// lock-free; unknown stages are dropped rather than racing a map
		// write on the hot path.
		if h, ok := m.valHist[st.Stage]; ok {
			h.ObserveDuration(st.Duration)
		}
		if prevTime != nil {
			prevTime(st)
		}
	}
	return opts
}

// openSubmitJournal creates a fresh job's journal and fsyncs its submit
// record — the full effective request — before the job's first task can
// run. Best-effort: a store that cannot journal degrades the job to
// non-recoverable instead of rejecting it. The returned error is only
// non-nil for a simulated crash, which Submit surfaces as a job failure.
func (m *Manager) openSubmitJournal(j *job) error {
	jr, err := m.cfg.Store.OpenJournal(j.id, m.cfg.FaultHook)
	if err != nil {
		m.logJob("journal open failed", j, "error", err.Error())
		return nil
	}
	payload, err := json.Marshal(journalRequest{
		RunID:   j.req.RunID,
		Clients: j.req.Clients,
		Test:    j.req.Test,
		Options: j.opts,
	})
	if err != nil {
		jr.Close()
		m.logJob("journal submit encode failed", j, "error", err.Error())
		return nil
	}
	aerr := jr.Append(persist.JournalRecord{Type: persist.RecSubmit, Time: m.clock.Now(), Request: payload})
	if errors.Is(aerr, faultinject.ErrCrash) {
		j.journal = jr // sealJournal closes it; the crash freezes the file
		return aerr
	}
	if aerr != nil {
		jr.Close()
		m.logJob("journal submit append failed", j, "error", aerr.Error())
		return nil
	}
	j.journal = jr
	return nil
}
