package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"comfedsv"
	"comfedsv/internal/persist"
)

// tinySpec is the training half of tinyRequest: registering it and then
// submitting tinyRequest's options against the resulting run ID must
// reproduce the inline job byte for byte.
func tinySpec(seed int64) RunSpec {
	req := tinyRequest(seed)
	return RunSpec{Clients: req.Clients, Test: req.Test, Options: req.Options}
}

func waitRunTerminal(t *testing.T, m *Manager, id string) RunStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.RunStatus(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != RunTraining {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("run %s still training", id)
	return RunStatus{}
}

func TestRunIDContentAddressing(t *testing.T) {
	base := tinySpec(5)
	id := RunIDForSpec(base)
	if !persist.ValidJobID(id) || !strings.HasPrefix(id, "run-") {
		t.Fatalf("run id %q is not a valid store key", id)
	}
	if got := RunIDForSpec(tinySpec(5)); got != id {
		t.Fatalf("equal specs hash to %q and %q", id, got)
	}

	// Valuation-only knobs must not change the identity: that is what lets
	// jobs with different rank / sampling budgets share one trace.
	valuation := tinySpec(5)
	valuation.Options.Rank = 9
	valuation.Options.MonteCarloSamples = 123
	valuation.Options.Parallelism = 7
	if got := RunIDForSpec(valuation); got != id {
		t.Fatalf("valuation-only options changed the run id %q -> %q", id, got)
	}

	// HiddenUnits is dead for logistic regression.
	hidden := tinySpec(5)
	hidden.Options.HiddenUnits = 99
	if got := RunIDForSpec(hidden); got != id {
		t.Fatalf("dead hidden-units field changed the run id %q -> %q", id, got)
	}

	// For MLP the pipeline treats HiddenUnits <= 0 as 16; the identity
	// must agree, and a genuinely different width must differ.
	mlpDefault := tinySpec(5)
	mlpDefault.Options.Model = comfedsv.MLP
	mlpDefault.Options.HiddenUnits = 0
	mlpSixteen := tinySpec(5)
	mlpSixteen.Options.Model = comfedsv.MLP
	mlpSixteen.Options.HiddenUnits = 16
	if RunIDForSpec(mlpDefault) != RunIDForSpec(mlpSixteen) {
		t.Fatal("mlp hidden=0 and hidden=16 are the same training problem but hash differently")
	}
	mlpWide := tinySpec(5)
	mlpWide.Options.Model = comfedsv.MLP
	mlpWide.Options.HiddenUnits = 32
	if RunIDForSpec(mlpWide) == RunIDForSpec(mlpSixteen) {
		t.Fatal("different mlp widths produced the same run id")
	}

	// Training-relevant changes must change it.
	seeded := tinySpec(5)
	seeded.Options.Seed = 6
	if got := RunIDForSpec(seeded); got == id {
		t.Fatal("different training seed produced the same run id")
	}
	data := tinySpec(5)
	data.Clients[0].X[0][0] += 1e-9
	if got := RunIDForSpec(data); got == id {
		t.Fatal("different client data produced the same run id")
	}
}

func TestRunBackedJobByteIdenticalToInline(t *testing.T) {
	m := newManager(t, Config{Workers: 2})
	spec := tinySpec(7)
	st, created, err := m.CreateRun(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !created || st.State != RunTraining {
		t.Fatalf("CreateRun = %+v created=%v, want a fresh training run", st, created)
	}
	// Re-registering is an idempotent dedup, not a second training.
	st2, created2, err := m.CreateRun(tinySpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if created2 || st2.ID != st.ID {
		t.Fatalf("duplicate CreateRun = %+v created=%v, want existing id %s", st2, created2, st.ID)
	}
	if got := waitRunTerminal(t, m, st.ID); got.State != RunReady {
		t.Fatalf("run finished %s (%s), want ready", got.State, got.Error)
	}

	req := tinyRequest(7)
	runJob, err := m.Submit(Request{RunID: st.ID, Options: req.Options})
	if err != nil {
		t.Fatal(err)
	}
	inlineJob, err := m.Submit(tinyRequest(7))
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, m, runJob); s.State != StateDone {
		t.Fatalf("run-backed job finished %s (%s)", s.State, s.Error)
	}
	if s := waitTerminal(t, m, inlineJob); s.State != StateDone {
		t.Fatalf("inline job finished %s (%s)", s.State, s.Error)
	}
	got, err := m.Report(runJob)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Report(inlineJob)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("run-backed report differs from inline:\n%s\nvs\n%s", gotJSON, wantJSON)
	}
}

func TestRunBackedJobsShareEvaluatorCache(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	st, _, err := m.CreateRun(tinySpec(9))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitRunTerminal(t, m, st.ID); got.State != RunReady {
		t.Fatalf("run finished %s (%s)", got.State, got.Error)
	}

	opts := tinyRequest(9).Options
	first, err := m.Submit(Request{RunID: st.ID, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	fs := waitTerminal(t, m, first)
	if fs.State != StateDone {
		t.Fatalf("first job finished %s (%s)", fs.State, fs.Error)
	}
	if fs.RunID != st.ID {
		t.Fatalf("first job run id %q, want %q", fs.RunID, st.ID)
	}
	if fs.CacheStats == nil || fs.CacheStats.Misses == 0 || fs.CacheStats.Hits != 0 {
		t.Fatalf("first job over a cold run: cache stats %+v, want all misses", fs.CacheStats)
	}

	second, err := m.Submit(Request{RunID: st.ID, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	ss := waitTerminal(t, m, second)
	if ss.State != StateDone {
		t.Fatalf("second job finished %s (%s)", ss.State, ss.Error)
	}
	if ss.CacheStats == nil || ss.CacheStats.Hits == 0 || ss.CacheStats.Misses != 0 {
		t.Fatalf("second job over a warm run: cache stats %+v, want all hits", ss.CacheStats)
	}
	// Identical jobs pay identical per-job utility-call counts even though
	// the second one computed nothing.
	rep1, err := m.Report(first)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := m.Report(second)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.UtilityCalls != rep2.UtilityCalls {
		t.Fatalf("utility calls diverge: %d vs %d", rep1.UtilityCalls, rep2.UtilityCalls)
	}
	if ss.CacheStats.Hits != rep2.UtilityCalls {
		t.Fatalf("second job hits %d, want its full call count %d", ss.CacheStats.Hits, rep2.UtilityCalls)
	}

	rs, err := m.RunStatus(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rs.CacheHits == 0 || rs.CacheMisses == 0 {
		t.Fatalf("run counters %+v, want nonzero hits and misses after two jobs", rs)
	}
	if rs.ActiveJobs != 0 {
		t.Fatalf("run still pinned by %d jobs after both finished", rs.ActiveJobs)
	}
	if rs.NumClients != 4 || rs.Rounds != 4 {
		t.Fatalf("run metadata %+v, want 4 clients over 4 rounds", rs)
	}
}

func TestSubmitUnknownOrConflictingRun(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	if _, err := m.Submit(Request{RunID: "run-doesnotexist", Options: tinyRequest(1).Options}); !errors.Is(err, ErrRunNotFound) {
		t.Fatalf("unknown run: %v, want ErrRunNotFound", err)
	}
	st, _, err := m.CreateRun(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	req := tinyRequest(1)
	req.RunID = st.ID
	if _, err := m.Submit(req); err == nil {
		t.Fatal("request with both run_id and inline clients must be rejected")
	}
	testOnly := Request{RunID: st.ID, Test: tinyRequest(1).Test, Options: tinyRequest(1).Options}
	if _, err := m.Submit(testOnly); err == nil {
		t.Fatal("request with both run_id and an inline test set must be rejected")
	}
	if rs, _ := m.RunStatus(st.ID); rs.ActiveJobs != 0 {
		t.Fatalf("rejected submissions leaked %d run references", rs.ActiveJobs)
	}
}

func TestDeleteRunLifecycle(t *testing.T) {
	if err := (&Manager{runs: map[string]*runEntry{}}).DeleteRun("run-none"); !errors.Is(err, ErrRunNotFound) {
		t.Fatalf("delete unknown: %v, want ErrRunNotFound", err)
	}

	trainRelease := make(chan struct{})
	valueRelease := make(chan struct{})
	m := newManager(t, Config{
		Workers: 1,
		Train: func(ctx context.Context, clients []comfedsv.Client, test comfedsv.Client, opts comfedsv.Options) (*comfedsv.TrainedRun, error) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-trainRelease:
			}
			return comfedsv.TrainCtx(ctx, clients, test, opts)
		},
		ValueRun: func(ctx context.Context, tr *comfedsv.TrainedRun, opts comfedsv.Options) (*comfedsv.Report, comfedsv.EvalStats, error) {
			select {
			case <-ctx.Done():
				return nil, comfedsv.EvalStats{}, ctx.Err()
			case <-valueRelease:
			}
			return comfedsv.ValueRunCtx(ctx, tr, opts)
		},
	})

	st, _, err := m.CreateRun(tinySpec(3))
	if err != nil {
		t.Fatal(err)
	}
	// Still training: deletion refused.
	if err := m.DeleteRun(st.ID); !errors.Is(err, ErrRunBusy) {
		t.Fatalf("delete while training: %v, want ErrRunBusy", err)
	}
	close(trainRelease)
	if got := waitRunTerminal(t, m, st.ID); got.State != RunReady {
		t.Fatalf("run finished %s (%s)", got.State, got.Error)
	}

	// Referenced by a queued-then-running job: deletion refused until the
	// job is terminal.
	id, err := m.Submit(Request{RunID: st.ID, Options: tinyRequest(3).Options})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteRun(st.ID); !errors.Is(err, ErrRunBusy) {
		t.Fatalf("delete while referenced: %v, want ErrRunBusy", err)
	}
	close(valueRelease)
	if s := waitTerminal(t, m, id); s.State != StateDone {
		t.Fatalf("job finished %s (%s)", s.State, s.Error)
	}
	if err := m.DeleteRun(st.ID); err != nil {
		t.Fatalf("delete after jobs drained: %v", err)
	}
	if _, err := m.RunStatus(st.ID); !errors.Is(err, ErrRunNotFound) {
		t.Fatalf("status after delete: %v, want ErrRunNotFound", err)
	}
	if _, err := m.Submit(Request{RunID: st.ID, Options: tinyRequest(3).Options}); !errors.Is(err, ErrRunNotFound) {
		t.Fatalf("submit against deleted run: %v, want ErrRunNotFound", err)
	}
}

// TestCancelRunBackedJobKeepsRunUsable cancels a job mid-valuation and
// then proves the shared run and its evaluator still serve later jobs
// correctly.
func TestCancelRunBackedJobKeepsRunUsable(t *testing.T) {
	release := make(chan struct{})
	m := newManager(t, Config{
		Workers: 1,
		ValueRun: func(ctx context.Context, tr *comfedsv.TrainedRun, opts comfedsv.Options) (*comfedsv.Report, comfedsv.EvalStats, error) {
			select {
			case <-ctx.Done():
				return nil, comfedsv.EvalStats{}, ctx.Err()
			case <-release:
			}
			return comfedsv.ValueRunCtx(ctx, tr, opts)
		},
	})
	st, _, err := m.CreateRun(tinySpec(11))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitRunTerminal(t, m, st.ID); got.State != RunReady {
		t.Fatalf("run finished %s (%s)", got.State, got.Error)
	}

	victim, err := m.Submit(Request{RunID: st.ID, Options: tinyRequest(11).Options})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s, _ := m.Status(victim); s.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Cancel(victim); err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, m, victim); s.State != StateFailed || s.Error != ErrCancelled.Error() {
		t.Fatalf("cancelled job: state %s error %q", s.State, s.Error)
	}
	rs, err := m.RunStatus(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rs.State != RunReady || rs.ActiveJobs != 0 {
		t.Fatalf("run after cancelled job: %+v, want ready with no references", rs)
	}

	// A subsequent job over the same run must produce the inline result.
	close(release)
	next, err := m.Submit(Request{RunID: st.ID, Options: tinyRequest(11).Options})
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, m, next); s.State != StateDone {
		t.Fatalf("follow-up job finished %s (%s)", s.State, s.Error)
	}
	got, err := m.Report(next)
	if err != nil {
		t.Fatal(err)
	}
	req := tinyRequest(11)
	want, err := comfedsv.Value(req.Clients, req.Test, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.FedSV, want.FedSV) || !reflect.DeepEqual(got.ComFedSV, want.ComFedSV) {
		t.Fatal("run survived a cancelled job but no longer matches the inline result")
	}
}

// TestJobOnTrainingRunStaysQueuedWithoutStarvingWorkers pins the
// scheduler's eligibility rule: a job referencing a still-training run
// stays queued (no worker parks on it), so a single-worker pool keeps
// serving unrelated jobs during a long training; the parked job runs once
// training completes, and can be cancelled while it waits.
func TestJobOnTrainingRunStaysQueuedWithoutStarvingWorkers(t *testing.T) {
	trainRelease := make(chan struct{})
	m := newManager(t, Config{
		Workers: 1,
		Train: func(ctx context.Context, clients []comfedsv.Client, test comfedsv.Client, opts comfedsv.Options) (*comfedsv.TrainedRun, error) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-trainRelease:
			}
			return comfedsv.TrainCtx(ctx, clients, test, opts)
		},
	})
	st, _, err := m.CreateRun(tinySpec(13))
	if err != nil {
		t.Fatal(err)
	}
	waiting, err := m.Submit(Request{RunID: st.ID, Options: tinyRequest(13).Options})
	if err != nil {
		t.Fatal(err)
	}
	cancelled, err := m.Submit(Request{RunID: st.ID, Options: tinyRequest(13).Options})
	if err != nil {
		t.Fatal(err)
	}

	// The lone worker must not be parked on the waiting jobs: an inline
	// job submitted behind them completes while the training is blocked.
	inline, err := m.Submit(tinyRequest(13))
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, m, inline); s.State != StateDone {
		t.Fatalf("inline job behind a training-blocked job finished %s (%s)", s.State, s.Error)
	}
	if s, _ := m.Status(waiting); s.State != StateQueued {
		t.Fatalf("run-backed job is %s during training, want queued", s.State)
	}

	// Cancelling one of the parked jobs must not disturb the training or
	// the other job.
	if err := m.Cancel(cancelled); err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, m, cancelled); s.State != StateFailed || s.Error != ErrCancelled.Error() {
		t.Fatalf("cancelled parked job: state %s error %q", s.State, s.Error)
	}
	if rs, _ := m.RunStatus(st.ID); rs.State != RunTraining {
		t.Fatalf("cancelling a parked job disturbed the training (state %s)", rs.State)
	}

	close(trainRelease)
	if got := waitRunTerminal(t, m, st.ID); got.State != RunReady {
		t.Fatalf("run finished %s (%s)", got.State, got.Error)
	}
	if s := waitTerminal(t, m, waiting); s.State != StateDone {
		t.Fatalf("parked job after training finished %s (%s)", s.State, s.Error)
	}
}

func TestJobAgainstFailedRunFails(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	bad := tinySpec(1)
	bad.Options.NumClasses = 0 // training rejects it
	st, _, err := m.CreateRun(bad)
	if err != nil {
		t.Fatal(err)
	}
	rs := waitRunTerminal(t, m, st.ID)
	if rs.State != RunFailed || rs.Error == "" {
		t.Fatalf("invalid spec: run state %s error %q, want failed with message", rs.State, rs.Error)
	}

	// Jobs referencing the failed run fail with its reason, and the run
	// can be deleted afterwards.
	id, err := m.Submit(Request{RunID: st.ID, Options: tinyRequest(1).Options})
	if err != nil {
		t.Fatal(err)
	}
	s := waitTerminal(t, m, id)
	if s.State != StateFailed || !strings.Contains(s.Error, st.ID) {
		t.Fatalf("job on failed run: state %s error %q, want failure naming the run", s.State, s.Error)
	}
	if err := m.DeleteRun(st.ID); err != nil {
		t.Fatalf("deleting a failed run: %v", err)
	}
}

// TestFailedRunRetriesOnReRegister pins the no-tombstone rule: a spec
// whose training failed once is retried by the next CreateRun of the same
// spec instead of dedup-ing onto the dead entry forever.
func TestFailedRunRetriesOnReRegister(t *testing.T) {
	var failFirst atomic.Bool
	failFirst.Store(true)
	m := newManager(t, Config{
		Workers: 1,
		Train: func(ctx context.Context, clients []comfedsv.Client, test comfedsv.Client, opts comfedsv.Options) (*comfedsv.TrainedRun, error) {
			if failFirst.Swap(false) {
				return nil, errors.New("transient failure")
			}
			return comfedsv.TrainCtx(ctx, clients, test, opts)
		},
	})
	st, created, err := m.CreateRun(tinySpec(17))
	if err != nil || !created {
		t.Fatalf("first CreateRun: created=%v err=%v", created, err)
	}
	if rs := waitRunTerminal(t, m, st.ID); rs.State != RunFailed {
		t.Fatalf("first training finished %s, want failed", rs.State)
	}

	st2, created2, err := m.CreateRun(tinySpec(17))
	if err != nil {
		t.Fatal(err)
	}
	if !created2 || st2.ID != st.ID || st2.State != RunTraining {
		t.Fatalf("re-register of failed spec = %+v created=%v, want a retry under the same id", st2, created2)
	}
	if rs := waitRunTerminal(t, m, st.ID); rs.State != RunReady {
		t.Fatalf("retried training finished %s (%s), want ready", rs.State, rs.Error)
	}
	if runs := m.Runs(); len(runs) != 1 {
		t.Fatalf("retry duplicated the registry entry: %d runs listed", len(runs))
	}
	id, err := m.Submit(Request{RunID: st.ID, Options: tinyRequest(17).Options})
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, m, id); s.State != StateDone {
		t.Fatalf("job on retried run finished %s (%s)", s.State, s.Error)
	}
}

func TestRunPanicFailsRunNotProcess(t *testing.T) {
	m := newManager(t, Config{
		Workers: 1,
		Train: func(context.Context, []comfedsv.Client, comfedsv.Client, comfedsv.Options) (*comfedsv.TrainedRun, error) {
			panic("poisoned spec")
		},
	})
	st, _, err := m.CreateRun(tinySpec(2))
	if err != nil {
		t.Fatal(err)
	}
	rs := waitRunTerminal(t, m, st.ID)
	if rs.State != RunFailed || !strings.HasPrefix(rs.Error, "service: run training panicked: poisoned spec") {
		t.Fatalf("panicking training: state %s error %q", rs.State, rs.Error)
	}
	if !strings.Contains(rs.Error, "goroutine") {
		t.Fatalf("training panic error lacks a stack trace: %q", rs.Error)
	}
}

func TestRunPersistsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	runStore, err := persist.NewRunStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1 := newManager(t, Config{Workers: 1, RunStore: runStore})
	st, _, err := m1.CreateRun(tinySpec(15))
	if err != nil {
		t.Fatal(err)
	}
	rs := waitRunTerminal(t, m1, st.ID)
	if rs.State != RunReady || !rs.Persisted {
		t.Fatalf("run %+v, want ready and persisted", rs)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// A fresh manager over the same store recovers the run and serves
	// run-backed jobs from the lazily loaded trace.
	runStore2, err := persist.NewRunStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2 := newManager(t, Config{Workers: 1, RunStore: runStore2})
	rs2, err := m2.RunStatus(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.State != RunReady || !rs2.Persisted {
		t.Fatalf("recovered run %+v, want ready and persisted", rs2)
	}
	// Registering the same spec again after restart is a dedup, not a
	// retraining: the content address survives the process.
	if _, created, err := m2.CreateRun(tinySpec(15)); err != nil || created {
		t.Fatalf("CreateRun after recovery: created=%v err=%v, want dedup", created, err)
	}

	id, err := m2.Submit(Request{RunID: st.ID, Options: tinyRequest(15).Options})
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, m2, id); s.State != StateDone {
		t.Fatalf("job on recovered run finished %s (%s)", s.State, s.Error)
	}
	got, err := m2.Report(id)
	if err != nil {
		t.Fatal(err)
	}
	req := tinyRequest(15)
	want, err := comfedsv.Value(req.Clients, req.Test, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.FedSV, want.FedSV) || !reflect.DeepEqual(got.ComFedSV, want.ComFedSV) {
		t.Fatal("report from recovered run diverges from inline computation")
	}
	if err := m2.DeleteRun(st.ID); err != nil {
		t.Fatal(err)
	}
	if runStore2.HasRun(st.ID) {
		t.Fatal("DeleteRun left the trace on disk")
	}
}

func TestCorruptRecoveredRunFailsJobs(t *testing.T) {
	dir := t.TempDir()
	runStore, err := persist.NewRunStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "run-corrupt.run.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := newManager(t, Config{Workers: 1, RunStore: runStore})
	rs, err := m.RunStatus("run-corrupt")
	if err != nil {
		t.Fatal(err)
	}
	if rs.State != RunReady {
		t.Fatalf("recovered run state %s, want ready until first load", rs.State)
	}
	id, err := m.Submit(Request{RunID: "run-corrupt", Options: tinyRequest(1).Options})
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, m, id); s.State != StateFailed || s.Error == "" {
		t.Fatalf("job on corrupt run: state %s error %q, want failure with message", s.State, s.Error)
	}
	if rs, _ := m.RunStatus("run-corrupt"); rs.State != RunFailed {
		t.Fatalf("corrupt run state %s after failed load, want failed", rs.State)
	}
}
