package service

import (
	"context"
	"errors"
	"math"
	"os"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"comfedsv"
	"comfedsv/internal/persist"
)

// tinyRequest builds a small deterministic 2-class valuation job: four
// clients with linearly separable 2-D data, exact (non-Monte-Carlo)
// pipeline, few rounds — fast enough to run many times per test.
func tinyRequest(seed int64) Request {
	mk := func(off float64) comfedsv.Client {
		var c comfedsv.Client
		for i := 0; i < 8; i++ {
			x := off + float64(i)*0.3
			label := 0
			if x > 1 {
				label = 1
			}
			c.X = append(c.X, []float64{x, 1 - x})
			c.Y = append(c.Y, label)
		}
		return c
	}
	clients := []comfedsv.Client{mk(-0.4), mk(0.1), mk(0.6), mk(1.1)}
	opts := comfedsv.DefaultOptions(2)
	opts.Rounds = 4
	opts.ClientsPerRound = 2
	opts.Seed = seed
	return Request{Clients: clients, Test: mk(0.25), Options: opts}
}

func waitTerminal(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return Status{}
}

func newManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m
}

func TestManagerEndToEndMatchesDirectCall(t *testing.T) {
	m := newManager(t, Config{Workers: 2})
	req := tinyRequest(7)
	id, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", st.State, st.Error)
	}
	if st.StartedAt == nil || st.FinishedAt == nil {
		t.Fatal("terminal job missing timestamps")
	}
	if st.Progress.Stage != comfedsv.StageShapley || st.Progress.Done != 1 {
		t.Fatalf("final progress %+v, want shapley stage complete", st.Progress)
	}
	if st.Shards != 1 || st.ShardsDone != 1 {
		t.Fatalf("shard accounting %d/%d, want 1/1 for the exact pipeline", st.ShardsDone, st.Shards)
	}
	got, err := m.Report(id)
	if err != nil {
		t.Fatal(err)
	}
	want, err := comfedsv.Value(req.Clients, req.Test, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.FedSV, want.FedSV) || !reflect.DeepEqual(got.ComFedSV, want.ComFedSV) {
		t.Fatalf("service report diverges from direct call:\n service: %+v\n direct:  %+v", got, want)
	}
	if math.IsNaN(got.FinalTestLoss) {
		t.Fatal("NaN final test loss")
	}
}

func TestManagerConcurrentJobs(t *testing.T) {
	m := newManager(t, Config{Workers: 4})
	want, err := comfedsv.Value(tinyRequest(3).Clients, tinyRequest(3).Test, tinyRequest(3).Options)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 6; i++ {
		id, err := m.Submit(tinyRequest(3))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if st := waitTerminal(t, m, id); st.State != StateDone {
			t.Fatalf("job %s finished %s (%s)", id, st.State, st.Error)
		}
		rep, err := m.Report(id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep.ComFedSV, want.ComFedSV) {
			t.Fatal("concurrent jobs with equal seeds diverged")
		}
	}
}

// blockingValue parks jobs until released, making queue pressure and
// cancellation deterministic.
func blockingValue(release <-chan struct{}) func(context.Context, []comfedsv.Client, comfedsv.Client, comfedsv.Options) (*comfedsv.Report, error) {
	return func(ctx context.Context, _ []comfedsv.Client, _ comfedsv.Client, _ comfedsv.Options) (*comfedsv.Report, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return &comfedsv.Report{FedSV: []float64{1}, ComFedSV: []float64{1}}, nil
		}
	}
}

func TestManagerQueueFull(t *testing.T) {
	release := make(chan struct{})
	m := newManager(t, Config{Workers: 1, QueueDepth: 1, Value: blockingValue(release)})
	first, err := m.Submit(tinyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker owns the first job, so the queue slot is free.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, _ := m.Status(first); st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Submit(tinyRequest(2)); err != nil {
		t.Fatal("second submission should occupy the queue slot, got", err)
	}
	if _, err := m.Submit(tinyRequest(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submission: err = %v, want ErrQueueFull", err)
	}
	close(release)
}

func TestManagerCancelRunning(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	m := newManager(t, Config{Workers: 1, Value: blockingValue(release)})
	id, err := m.Submit(tinyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, _ := m.Status(id); st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateFailed || st.Error != ErrCancelled.Error() {
		t.Fatalf("cancelled job: state %s error %q", st.State, st.Error)
	}
	if _, err := m.Report(id); !errors.Is(err, ErrFailed) {
		t.Fatalf("report of cancelled job: %v, want ErrFailed", err)
	}
}

func TestManagerCancelQueued(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	m := newManager(t, Config{Workers: 1, QueueDepth: 4, Value: blockingValue(release)})
	blocker, err := m.Submit(tinyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, _ := m.Status(blocker); st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := m.Submit(tinyRequest(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	st, err := m.Status(queued)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || st.Error != ErrCancelled.Error() {
		t.Fatalf("cancelled queued job: state %s error %q", st.State, st.Error)
	}
}

func TestManagerUnknownJob(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	if _, err := m.Status("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Status: %v, want ErrNotFound", err)
	}
	if _, err := m.Report("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Report: %v, want ErrNotFound", err)
	}
	if err := m.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel: %v, want ErrNotFound", err)
	}
}

func TestManagerFailedJobSurfacesError(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	req := tinyRequest(1)
	req.Options.NumClasses = 0 // invalid: pipeline rejects it
	id, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("invalid job: state %s error %q, want failed with message", st.State, st.Error)
	}
}

func TestManagerPersistsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	store, err := persist.NewJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1 := newManager(t, Config{Workers: 1, Store: store})
	req := tinyRequest(9)
	id, err := m1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m1, id); st.State != StateDone {
		t.Fatalf("job finished %s (%s)", st.State, st.Error)
	}
	want, err := m1.Report(id)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// A fresh manager over the same store sees the job as done and serves
	// the identical report from disk.
	store2, err := persist.NewJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2 := newManager(t, Config{Workers: 1, Store: store2})
	st, err := m2.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("recovered job state %s, want done", st.State)
	}
	got, err := m2.Report(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.FedSV, want.FedSV) || !reflect.DeepEqual(got.ComFedSV, want.ComFedSV) {
		t.Fatal("recovered report diverges from original")
	}
}

func TestManagerRecoversPanickingJob(t *testing.T) {
	m := newManager(t, Config{
		Workers: 1,
		Value: func(context.Context, []comfedsv.Client, comfedsv.Client, comfedsv.Options) (*comfedsv.Report, error) {
			panic("poisoned job")
		},
	})
	id, err := m.Submit(tinyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateFailed || !strings.HasPrefix(st.Error, "service: job panicked: poisoned job") {
		t.Fatalf("panicking job: state %s error %q", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "goroutine") {
		t.Fatalf("panic error lacks a stack trace: %q", st.Error)
	}
	// The worker survived: a healthy job still runs.
	m2 := newManager(t, Config{Workers: 1})
	id2, err := m2.Submit(tinyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m2, id2); st.State != StateDone {
		t.Fatalf("follow-up job finished %s (%s)", st.State, st.Error)
	}
}

func TestManagerTooManyClientsFailsJobNotProcess(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	req := tinyRequest(1)
	// 21 clients: round 0 selects everyone (Everyone-Being-Heard), which
	// exact FedSV cannot enumerate — must fail the job, not panic.
	base := req.Clients[0]
	req.Clients = nil
	for i := 0; i < 21; i++ {
		req.Clients = append(req.Clients, base)
	}
	id, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("oversized job: state %s error %q, want failed with message", st.State, st.Error)
	}
}

func TestManagerCancelQueuedFreesSlot(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	m := newManager(t, Config{Workers: 1, QueueDepth: 1, Value: blockingValue(release)})
	blocker, err := m.Submit(tinyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, _ := m.Status(blocker); st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := m.Submit(tinyRequest(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(tinyRequest(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue should be full, got %v", err)
	}
	if err := m.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(tinyRequest(3)); err != nil {
		t.Fatalf("cancelling the queued job must free its slot, got %v", err)
	}
}

func TestManagerShutdownAbortsBacklogOnDeadline(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	m, err := NewManager(Config{Workers: 1, QueueDepth: 8, Value: blockingValue(release)})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		id, err := m.Submit(tinyRequest(int64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = m.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown: %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Shutdown took %v; backlog was not aborted", elapsed)
	}
	for _, id := range ids {
		st, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if !st.State.Terminal() {
			t.Fatalf("job %s still %s after aborted shutdown", id, st.State)
		}
	}
}

func TestManagerKeepsReportWhenPersistFails(t *testing.T) {
	dir := t.TempDir()
	store, err := persist.NewJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := newManager(t, Config{Workers: 1, Store: store})
	// Break the store after the manager scanned it: report computation
	// must still succeed and stay resident, with the persist error as a
	// warning.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	id, err := m.Submit(tinyRequest(4))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateDone {
		t.Fatalf("job finished %s (%s), want done despite persist failure", st.State, st.Error)
	}
	if st.Error == "" {
		t.Fatal("done job should carry the persistence warning")
	}
	if _, err := m.Report(id); err != nil {
		t.Fatalf("report must stay resident, got %v", err)
	}
}

func TestManagerShutdownDrainsQueuedJobs(t *testing.T) {
	m, err := NewManager(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := m.Submit(tinyRequest(int64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		st, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("job %s state %s after drain, want done", id, st.State)
		}
	}
	if _, err := m.Submit(tinyRequest(1)); !errors.Is(err, ErrShutdown) {
		t.Fatalf("submit after shutdown: %v, want ErrShutdown", err)
	}
}

// TestDefaultParallelismFairShare pins the fair-share rule: jobs that leave
// Options.Parallelism at 0 get GOMAXPROCS/Workers (at least 1), and an
// explicit per-job setting wins over the manager default.
func TestDefaultParallelismFairShare(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	capture := func(ctx context.Context, clients []comfedsv.Client, test comfedsv.Client, opts comfedsv.Options) (*comfedsv.Report, error) {
		mu.Lock()
		seen = append(seen, opts.Parallelism)
		mu.Unlock()
		return &comfedsv.Report{}, nil
	}

	m := newManager(t, Config{Workers: 1, Value: capture})
	wantShare := runtime.GOMAXPROCS(0) / 1
	if m.DefaultParallelism() != wantShare {
		t.Fatalf("DefaultParallelism = %d, want %d", m.DefaultParallelism(), wantShare)
	}
	id, err := m.Submit(tinyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, id)

	req := tinyRequest(2)
	req.Options.Parallelism = 7
	id, err = m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, id)

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0] != wantShare || seen[1] != 7 {
		t.Fatalf("pipeline saw parallelism %v, want [%d 7]", seen, wantShare)
	}
}
