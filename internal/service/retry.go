package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"
)

// Clock abstracts the scheduler's time source for retry backoff and
// deadlines. Production managers run on the real clock; chaos suites
// substitute faultinject.ManualClock (which satisfies this structurally)
// so backoff and deadline behavior is tested instantly and without
// flaking on scheduler jitter. The clock never feeds into a report —
// only into when work runs.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// realClock is the production Clock.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Deadline errors. A task timeout is transient — the retry ladder gets
// another shot at it; a job deadline is fatal — the job's total time is
// up regardless of which task was unlucky.
var (
	ErrTaskTimeout = errors.New("service: task deadline exceeded")
	ErrJobDeadline = errors.New("service: job deadline exceeded")
)

// transientErr marks an error chain as retryable.
type transientErr struct{ err error }

func (e *transientErr) Error() string   { return e.err.Error() }
func (e *transientErr) Unwrap() error   { return e.err }
func (e *transientErr) Transient() bool { return true }

// MarkTransient wraps err so IsTransient reports it retryable.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient classifies a task failure: retryable if any error in the
// chain exposes Transient() true (the structural contract shared with
// internal/faultinject), never retryable for context cancellation —
// a cancelled job must fail, not loop. The default for an unmarked
// error is fatal: retrying work whose failure mode is unknown risks
// repeating a side effect, and the pipeline marks its genuinely
// transient failures explicitly.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	for e := err; e != nil; e = errors.Unwrap(e) {
		if m, ok := e.(interface{ Transient() bool }); ok {
			return m.Transient()
		}
	}
	return false
}

// retryDelay computes the backoff before a task's next attempt:
// exponential in the attempt number from Config.RetryBaseDelay, plus a
// deterministic jitter seeded from the task's identity (job ID, stage,
// shard, attempt). Seeded jitter keeps the herd-avoidance property of
// randomized backoff while the chaos suites — and any two runs of the
// same schedule — see identical delays.
func (m *Manager) retryDelay(j *job, stage string, shard, attempt int) time.Duration {
	base := m.cfg.RetryBaseDelay
	shift := attempt
	if shift > 16 {
		shift = 16
	}
	d := base << uint(shift)
	const maxDelay = 30 * time.Second
	if d > maxDelay {
		d = maxDelay
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s/%d/%d", j.id, stage, shard, attempt)
	jitter := time.Duration(h.Sum64() % uint64(base))
	return d + jitter
}

// SubmitRetryAfter estimates how long a rejected submitter should wait
// before retrying, derived from queue pressure and the retry ladder's
// base backoff instead of a hardcoded constant: the fuller the queue
// (and the more retries are sleeping out backoffs), the longer the
// suggested wait, clamped to [1s, 30s]. The API layer adds per-request
// jitter on top so a saturated deployment's rejected clients don't all
// come back in the same second.
func (m *Manager) SubmitRetryAfter() time.Duration {
	m.mu.Lock()
	pressure := m.queued + m.pendingRetries
	m.mu.Unlock()
	d := m.cfg.RetryBaseDelay * time.Duration(pressure)
	const minDelay, maxDelay = time.Second, 30 * time.Second
	if d < minDelay {
		return minDelay
	}
	if d > maxDelay {
		return maxDelay
	}
	return d
}

// retryAfter re-enqueues a transiently failed task after its backoff.
// It runs on its own goroutine (tracked by the worker WaitGroup so
// Shutdown waits for scheduled retries); the job's pendingRetries count
// keeps the pool from declaring the job — or itself — finished while a
// retry is in flight. Cancellation short-circuits the sleep.
func (m *Manager) retryAfter(t *task, delay time.Duration) {
	defer m.wg.Done()
	j := t.j
	select {
	case <-m.clock.After(delay):
	case <-j.ctx.Done():
	}

	m.mu.Lock()
	j.pendingRetries--
	m.pendingRetries--
	if j.state.Terminal() {
		m.cond.Broadcast()
		m.mu.Unlock()
		return
	}
	if j.failed != nil || j.ctx.Err() != nil {
		// The job died while this retry slept; participate in the same
		// finalization protocol as a draining in-flight task.
		if j.failed == nil {
			j.failed = j.ctx.Err()
		}
		seal := false
		if j.inflight == 0 && j.pendingRetries == 0 {
			m.finalizeFailedLocked(j)
			seal = true
		}
		m.cond.Broadcast()
		m.mu.Unlock()
		if seal {
			m.sealJournal(j)
		}
		return
	}
	m.logJob("task retrying", j, "stage", t.stage, "shard", t.shard, "attempt", t.attempt)
	m.enqueueLocked(j, t)
	m.mu.Unlock()
}

// jobWatchdog fails a job that outlives Config.JobTimeout. Started at
// the job's queued→running transition; exits as soon as the job's
// context dies (every terminal transition cancels it).
func (m *Manager) jobWatchdog(j *job) {
	defer m.wg.Done()
	select {
	case <-j.ctx.Done():
		return
	case <-m.clock.After(m.cfg.JobTimeout):
	}

	m.mu.Lock()
	seal := false
	if !j.state.Terminal() {
		if j.failed == nil {
			j.failed = fmt.Errorf("%w: ran longer than %v", ErrJobDeadline, m.cfg.JobTimeout)
		}
		j.cancel()
		m.drainLocked(j)
		if j.inflight == 0 && j.pendingRetries == 0 {
			m.finalizeFailedLocked(j)
			seal = true
		}
		m.cond.Broadcast()
	}
	m.mu.Unlock()
	if seal {
		m.sealJournal(j)
	}
}

// finalizeFailedLocked retires a job whose last in-flight work has
// drained after a failure was recorded: complete if the extraction
// stage won its race with the failure (a persisted report must not be
// stranded), fail otherwise. Callers hold m.mu and have verified
// inflight and pendingRetries are both zero.
func (m *Manager) finalizeFailedLocked(j *job) {
	if j.report != nil {
		m.completeJobLocked(j)
		return
	}
	ferr := j.failed
	if errors.Is(ferr, context.Canceled) {
		ferr = ErrCancelled
	}
	m.failLocked(j, ferr)
}
