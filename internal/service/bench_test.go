package service

import (
	"context"
	"testing"
	"time"

	"comfedsv"
)

// benchRequest builds a deterministic valuation request scaled by client
// count, Monte-Carlo samples, and rounds (0 samples = the exact pipeline).
// More clients means more distinct permutation-prefix columns, so the
// observation and completion stages grow with every knob.
func benchRequest(seed int64, clients, samples, rounds, shards int) Request {
	mk := func(off float64, points int) comfedsv.Client {
		var c comfedsv.Client
		for i := 0; i < points; i++ {
			x := off + float64(i)*0.17
			label := 0
			if x > 1 {
				label = 1
			}
			c.X = append(c.X, []float64{x, 1 - x})
			c.Y = append(c.Y, label)
		}
		return c
	}
	var cs []comfedsv.Client
	for i := 0; i < clients; i++ {
		cs = append(cs, mk(-0.5+float64(i)*0.2, 24))
	}
	opts := comfedsv.DefaultOptions(2)
	opts.Rounds = rounds
	opts.ClientsPerRound = 3
	opts.Seed = seed
	opts.MonteCarloSamples = samples
	opts.Shards = shards
	return Request{Clients: cs, Test: mk(0.25, 32), Options: opts}
}

// BenchmarkMixedLoadSmallJobLatency measures time-to-first-completion
// under mixed load — the quantity the stage-graph scheduler exists to fix.
// One worker, a large sharded Monte-Carlo job submitted first, a small
// exact job submitted behind it; the metric is how long the small job
// waits for its report. On the old worker-per-job engine this was the big
// job's full runtime; with per-job round-robin over stage tasks it is
// bounded by the small job's own work plus one interleaved big-job task
// per turn.
//
//	go test -bench MixedLoad -benchtime 5x ./internal/service
func BenchmarkMixedLoadSmallJobLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := NewManager(Config{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		bigStart := time.Now()
		idBig, err := m.Submit(benchRequest(61, 12, 800, 10, 8))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		smallStart := time.Now()
		idSmall, err := m.Submit(benchRequest(62, 4, 0, 4, 1))
		if err != nil {
			b.Fatal(err)
		}
		waitDone := func(id string) Status {
			for {
				st, err := m.Status(id)
				if err != nil {
					b.Fatal(err)
				}
				if st.State.Terminal() {
					if st.State != StateDone {
						b.Fatalf("job finished %s (%s)", st.State, st.Error)
					}
					return st
				}
				time.Sleep(500 * time.Microsecond)
			}
		}
		waitDone(idSmall)
		smallLatency := time.Since(smallStart)
		b.StopTimer()
		waitDone(idBig)
		bigLatency := time.Since(bigStart)
		b.ReportMetric(smallLatency.Seconds(), "small-job-s")
		b.ReportMetric(bigLatency.Seconds(), "big-job-s")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := m.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}
		cancel()
		b.StartTimer()
	}
}

// BenchmarkShardedJobThroughput runs one large Monte-Carlo job through the
// scheduler at different shard counts on a multi-worker pool; on a
// multicore host higher shard counts let the observation stage occupy
// several workers at once.
func BenchmarkShardedJobThroughput(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(map[int]string{1: "shards=1", 4: "shards=4"}[shards], func(b *testing.B) {
			m, err := NewManager(Config{Workers: 4, DefaultParallelism: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				m.Shutdown(ctx)
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id, err := m.Submit(benchRequest(63, 12, 400, 8, shards))
				if err != nil {
					b.Fatal(err)
				}
				for {
					st, err := m.Status(id)
					if err != nil {
						b.Fatal(err)
					}
					if st.State.Terminal() {
						if st.State != StateDone {
							b.Fatalf("job finished %s (%s)", st.State, st.Error)
						}
						break
					}
					time.Sleep(500 * time.Microsecond)
				}
			}
		})
	}
}
