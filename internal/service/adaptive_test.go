package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"comfedsv"
)

// indexAfter returns the position of the first occurrence of event
// strictly after position from, or -1 — index() for repeated events like
// the adaptive pipeline's multiple completes.
func (l *taskLog) indexAfter(event string, from int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := from + 1; i < len(l.events); i++ {
		if l.events[i] == event {
			return i
		}
	}
	return -1
}

// TestSchedulerAdaptiveWaves pins the stage-graph extension for adaptive
// pipelines: a Complete that returns more shards fans them out as fresh
// observe tasks (indices continuing past the previous wave's), the last of
// which enqueues the next Complete, looping until Complete returns 0 and
// extraction runs.
func TestSchedulerAdaptiveWaves(t *testing.T) {
	log := &taskLog{}
	f := &fakeValuation{name: "A", shards: 2, log: log, waves: []int{2, 1}}
	m := scriptManager(t, 2, f)
	id, err := m.Submit(tinyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateDone {
		t.Fatalf("job state %s (%s), want done", st.State, st.Error)
	}
	if st.Shards != 5 || st.ShardsDone != 5 {
		t.Fatalf("shards %d/%d, want 5/5 (2 + wave of 2 + wave of 1)", st.ShardsDone, st.Shards)
	}
	// Stage ordering: every wave's shards run strictly between the
	// completes that scheduled and consumed them.
	order := []string{"A:prepare", "A:complete", "A:complete", "A:complete", "A:extract"}
	last := -1
	for _, ev := range order {
		idx := log.indexAfter(ev, last)
		if idx < 0 {
			t.Fatalf("missing %q after position %d\nlog: %v", ev, last, log.events)
		}
		last = idx
	}
	for shard, window := range map[int][2]string{
		0: {"A:prepare", "A:complete"},
		2: {"A:complete", "A:extract"},
		4: {"A:complete", "A:extract"},
	} {
		s := log.index(fmt.Sprintf("A:observe%d", shard))
		if s < 0 {
			t.Fatalf("shard %d never ran\nlog: %v", shard, log.events)
		}
		if s < log.index(window[0]) {
			t.Fatalf("shard %d ran before %s\nlog: %v", shard, window[0], log.events)
		}
	}
	if got := m.Metrics().TasksExecuted[taskComplete]; got != 3 {
		t.Fatalf("complete tasks executed = %d, want 3", got)
	}
}

// TestAdaptiveJobEndToEnd runs a real tolerance job through the manager:
// the report and status must expose the early-stop savings, the skipped
// permutations must land in the metrics counter, and the report bytes must
// be identical across shard and parallelism settings (the determinism
// invariant at the service layer).
func TestAdaptiveJobEndToEnd(t *testing.T) {
	submit := func(m *Manager, shards, parallelism int) (*comfedsv.Report, Status) {
		req := tinyRequest(7)
		req.Options.MonteCarloSamples = 40
		req.Options.Tolerance = 100 // converges at the second wave bound
		req.Options.Shards = shards
		req.Options.Parallelism = parallelism
		id, err := m.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		st := waitTerminal(t, m, id)
		if st.State != StateDone {
			t.Fatalf("job state %s (%s), want done", st.State, st.Error)
		}
		rep, err := m.Report(id)
		if err != nil {
			t.Fatal(err)
		}
		return rep, st
	}

	m := newManager(t, Config{Workers: 2})
	base, st := submit(m, 1, 1)
	if base.ObservationsBudget != 40 {
		t.Fatalf("observations budget %d, want 40", base.ObservationsBudget)
	}
	if base.ObservationsUsed <= 0 || base.ObservationsUsed >= base.ObservationsBudget {
		t.Fatalf("observations used %d, want an early stop within budget 40", base.ObservationsUsed)
	}
	if st.ObservationsUsed != base.ObservationsUsed || st.ObservationsBudget != base.ObservationsBudget {
		t.Fatalf("status savings %d/%d disagree with report %d/%d",
			st.ObservationsUsed, st.ObservationsBudget, base.ObservationsUsed, base.ObservationsBudget)
	}
	skipped := int64(base.ObservationsBudget - base.ObservationsUsed)
	if got := m.Metrics().ObservationsSkipped; got != skipped {
		t.Fatalf("ObservationsSkipped = %d, want %d", got, skipped)
	}

	baseBody, _ := json.Marshal(base)
	for _, tc := range []struct{ shards, parallelism int }{{2, 1}, {8, 1}, {1, 4}, {8, 4}} {
		rep, _ := submit(m, tc.shards, tc.parallelism)
		body, _ := json.Marshal(rep)
		if !bytes.Equal(body, baseBody) {
			t.Fatalf("shards=%d parallelism=%d adaptive report diverges:\n%s\nvs\n%s",
				tc.shards, tc.parallelism, body, baseBody)
		}
	}
	if got, want := m.Metrics().ObservationsSkipped, skipped*5; got != want {
		t.Fatalf("ObservationsSkipped after 5 jobs = %d, want %d", got, want)
	}
}

// TestAdaptiveJobCancelMidWave pins cancellation between waves: a job
// cancelled while a later wave's shard is blocked fails with ErrCancelled
// and never reaches extraction.
func TestAdaptiveJobCancelMidWave(t *testing.T) {
	log := &taskLog{}
	gate := make(chan struct{})
	defer close(gate)
	f := &fakeValuation{
		name:        "A",
		shards:      2,
		log:         log,
		waves:       []int{1},
		observeGate: map[int]<-chan struct{}{2: gate},
	}
	m := scriptManager(t, 2, f)
	id, err := m.Submit(tinyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the second wave's gated shard is in flight: the first
	// complete has run and shard 2 is blocked on the gate.
	deadline := time.Now().Add(5 * time.Second)
	for log.index("A:complete") < 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if log.index("A:complete") < 0 {
		t.Fatalf("first wave never completed\nlog: %v", log.events)
	}
	if err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateFailed || st.Error != ErrCancelled.Error() {
		t.Fatalf("state %s error %q, want failed/%q", st.State, st.Error, ErrCancelled)
	}
	if log.index("A:extract") >= 0 {
		t.Fatalf("cancelled job reached extraction\nlog: %v", log.events)
	}
}
