package service

import (
	"errors"

	"comfedsv"
	"comfedsv/internal/faultinject"
	"comfedsv/internal/utility"
)

// The persistent utility-cell cache: every shared run may carry a
// `<runID>.cells` sidecar in the RunStore — an append-only log of
// evaluated utility cells. A run's evaluator is warm-started from the
// sidecar when the trace becomes available (freshly trained or recovered
// from disk), newly evaluated cells are flushed back at the merge-wave
// and job-completion boundaries, and remote workers ship their deltas
// home with each shard completion. Cells are pure functions of the
// training trace, so a warm cache returns exactly the values a cold one
// would recompute — reports stay byte-identical; only the wall-clock
// changes.
//
// The cache is strictly an optimization, so every failure path degrades
// rather than fails: an unreadable or unverifiable sidecar is
// quarantined and the run proceeds cold; an append failure is logged and
// the job continues. The one exception mirrors appendJournal: a
// simulated crash (faultinject.ErrCrash) is surfaced so the task dies
// like the process did — the seam the sidecar chaos sweep drives.

// Cell-cache flush-boundary stage names, recorded in faultinject points.
const (
	cellStageMerge   = "merge"   // completeTask, after a merge wave
	cellStageExtract = "extract" // extractTask, before the report persists
	cellStageWorker  = "worker"  // remoteObserve, absorbing a worker delta
)

// cellCacheEnabled reports whether the persistent cell cache is active.
func (m *Manager) cellCacheEnabled() bool {
	return m.cfg.RunStore != nil && !m.cfg.DisableCellCache
}

// preloadCells warm-starts a run's evaluator from its sidecar. Called
// without m.mu held, by the goroutine that owns the trace's publication
// (trainRun, or runTrained's loadOnce) — so no job can be evaluating
// against tr yet, but the path is safe either way: Preload only installs
// absent cells. Every failure degrades to a cold cache: a damaged
// sidecar is quarantined (batches that verified before the damage stay
// installed — they are known-good) and the run proceeds.
func (m *Manager) preloadCells(id string, tr *comfedsv.TrainedRun) {
	if !m.cellCacheEnabled() || tr == nil {
		return
	}
	batches, err := m.cfg.RunStore.ReadCells(id)
	if err != nil {
		m.quarantineCells(id, err)
		return
	}
	added := 0
	for _, b := range batches {
		n, perr := tr.PreloadCells(b)
		if perr != nil {
			m.quarantineCells(id, perr)
			break
		}
		added += n
	}
	if added == 0 {
		return
	}
	m.mu.Lock()
	m.cellsPreloaded += int64(added)
	m.mu.Unlock()
	m.logRun("cell cache preloaded", id, "cells", added, "batches", len(batches))
}

// quarantineCells renames a damaged sidecar out of the preload path and
// counts the corruption. The run continues cold — a broken cache must
// never fail a run or a job.
func (m *Manager) quarantineCells(id string, cause error) {
	dst, qerr := m.cfg.RunStore.QuarantineCells(id)
	if qerr != nil {
		dst = "(rename failed: " + qerr.Error() + ")"
	}
	m.mu.Lock()
	m.cellsCorrupt++
	m.mu.Unlock()
	m.logRun("cell cache corrupt, quarantined", id, "quarantine", dst, "error", cause.Error())
}

// jobTrainedRun returns the shared TrainedRun a run-backed job values
// against, nil when the pipeline has none to expose (scripted tests,
// monolithic hooks, or a stage before Prepare resolved the run).
func jobTrainedRun(j *job) *comfedsv.TrainedRun {
	tc, ok := j.val.(traceCarrier)
	if !ok {
		return nil
	}
	return tc.TrainedRun()
}

// flushCells drains the cells a run-backed job's evaluator newly
// computed and appends them durably to the run's sidecar. Best-effort
// like appendJournal — a disk hiccup is logged and the job continues —
// except for faultinject.ErrCrash, which is returned so the task fails
// like process death. Callers must not hold m.mu (AppendCells fsyncs).
func (m *Manager) flushCells(j *job, stage string) error {
	if j.runID == "" || !m.cellCacheEnabled() {
		return nil
	}
	tr := jobTrainedRun(j)
	if tr == nil {
		return nil
	}
	b := tr.ExportNewCells()
	if b == nil {
		return nil
	}
	if err := m.cfg.RunStore.AppendCells(j.runID, b, stage, m.cfg.FaultHook); err != nil {
		if errors.Is(err, faultinject.ErrCrash) {
			return err
		}
		m.logJob("cell cache append failed", j, "stage", stage, "error", err.Error())
		return nil
	}
	m.mu.Lock()
	m.cellsPersisted += int64(len(b.Cells))
	m.mu.Unlock()
	return nil
}

// absorbCells installs a remote worker's cell delta into the job's run
// evaluator and, when it contributed anything new, appends the batch to
// the sidecar so the warmth survives a restart. The batch is verified
// here (digest plus per-cell bounds against the actual run) — dispatch
// carried it opaquely. A bad batch is dropped with a log line, never
// quarantining the sidecar it never touched; an append failure is
// best-effort except for a simulated crash, mirroring flushCells.
func (m *Manager) absorbCells(j *job, b *utility.CellBatch) error {
	if b == nil || j.runID == "" || !m.cellCacheEnabled() {
		return nil
	}
	tr := jobTrainedRun(j)
	if tr == nil {
		return nil
	}
	added, err := tr.PreloadCells(b)
	if err != nil {
		m.logJob("worker cell batch rejected", j, "error", err.Error())
		return nil
	}
	if added == 0 {
		// Everything in the batch is already cached locally (durable, or
		// pending a flush of its own); appending would only bloat the
		// sidecar with duplicates.
		return nil
	}
	m.mu.Lock()
	m.cellsPreloaded += int64(added)
	m.mu.Unlock()
	if err := m.cfg.RunStore.AppendCells(j.runID, b, cellStageWorker, m.cfg.FaultHook); err != nil {
		if errors.Is(err, faultinject.ErrCrash) {
			return err
		}
		m.logJob("cell cache append failed", j, "stage", cellStageWorker, "error", err.Error())
		return nil
	}
	m.mu.Lock()
	m.cellsPersisted += int64(len(b.Cells))
	m.mu.Unlock()
	return nil
}
