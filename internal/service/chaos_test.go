package service

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"comfedsv"
	"comfedsv/internal/faultinject"
	"comfedsv/internal/persist"
)

// reportBytes reads a job's persisted report file verbatim — the
// byte-identity oracle of the crash-recovery suites.
func reportBytes(t *testing.T, dir, id string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, id+".report.json"))
	if err != nil {
		t.Fatalf("reading persisted report: %v", err)
	}
	return b
}

// runToCompletion submits req on a fresh store-backed manager with no
// faults and returns the persisted report bytes.
func runToCompletion(t *testing.T, req Request) []byte {
	t.Helper()
	dir := t.TempDir()
	store, err := persist.NewJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := newManager(t, Config{Workers: 2, Store: store})
	id, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m, id); st.State != StateDone {
		t.Fatalf("baseline job finished %s (%s)", st.State, st.Error)
	}
	return reportBytes(t, dir, id)
}

// crashEverywhere sweeps every journal hook point of req's execution: for
// n = 1, 2, ... it runs the job with a simulated process death at the nth
// journal point, abandons the dead manager, recovers a fresh one over the
// same store, and requires the finished report to be byte-identical to an
// uninterrupted run. The sweep ends at the first n no crash fires for —
// the job ran out of journal points, i.e. every point was covered.
func crashEverywhere(t *testing.T, req Request, want []byte) {
	t.Helper()
	const maxPoints = 120
	for n := 1; ; n++ {
		if n > maxPoints {
			t.Fatalf("journal point sweep did not terminate within %d points", maxPoints)
		}
		dir := t.TempDir()
		store, err := persist.NewJobStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		var fired atomic.Bool
		hook := faultinject.CrashAtJournalOp(n)
		wrapped := func(p faultinject.Point) error {
			ferr := hook(p)
			if errors.Is(ferr, faultinject.ErrCrash) {
				fired.Store(true)
			}
			return ferr
		}
		m1, err := NewManager(Config{Workers: 2, Store: store, FaultHook: wrapped})
		if err != nil {
			t.Fatal(err)
		}
		id, err := m1.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		st := waitTerminal(t, m1, id)
		shutdown(t, m1)

		if !fired.Load() {
			// n is past the job's last journal point: the uninterrupted run
			// must be done and correct, and the sweep is complete.
			if st.State != StateDone {
				t.Fatalf("fault-free run finished %s (%s)", st.State, st.Error)
			}
			if got := reportBytes(t, dir, id); !bytes.Equal(got, want) {
				t.Fatalf("point %d: fault-free report diverges from baseline", n)
			}
			t.Logf("swept %d journal crash points", n-1)
			return
		}
		if st.State != StateFailed || !strings.Contains(st.Error, "simulated crash") {
			t.Fatalf("point %d: crashed job state %s error %q, want failed with simulated crash", n, st.State, st.Error)
		}

		// "Restart the daemon": a fresh manager over the frozen store.
		store2, err := persist.NewJobStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := NewManager(Config{Workers: 2, Store: store2})
		if err != nil {
			t.Fatalf("point %d: restart after crash: %v", n, err)
		}
		finalID := id
		if _, serr := m2.Status(id); errors.Is(serr, ErrNotFound) {
			// The process died before the submit record was durable: the
			// job is correctly forgotten, and the client resubmits.
			finalID, err = m2.Submit(req)
			if err != nil {
				t.Fatal(err)
			}
		}
		if st := waitTerminal(t, m2, finalID); st.State != StateDone {
			t.Fatalf("point %d: resumed job finished %s (%s)", n, st.State, st.Error)
		}
		if got := reportBytes(t, dir, finalID); !bytes.Equal(got, want) {
			t.Fatalf("point %d: resumed report is not byte-identical to the uninterrupted run", n)
		}
		if store2.HasJournal(finalID) {
			t.Fatalf("point %d: finished job's journal not removed", n)
		}
		shutdown(t, m2)
	}
}

func shutdown(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestCrashAtEveryJournalPointResumesByteIdentical is the tentpole
// acceptance test: a job interrupted by simulated process death at every
// single journal hook point — before and after each fsync — resumes on
// restart and produces a report byte-identical to an uninterrupted run.
func TestCrashAtEveryJournalPointResumesByteIdentical(t *testing.T) {
	req := tinyRequest(17)
	req.Options.MonteCarloSamples = 64
	req.Options.Shards = 2
	crashEverywhere(t, req, runToCompletion(t, req))
}

// TestCrashMidAdaptiveWaveResumesByteIdentical sweeps the same crash
// points over an adaptive (tolerance-driven) job, whose completion stage
// schedules further observation waves: a crash can land between waves and
// the resumed job must replay the identical wave structure.
func TestCrashMidAdaptiveWaveResumesByteIdentical(t *testing.T) {
	req := tinyRequest(23)
	req.Options.MonteCarloSamples = 48
	req.Options.Tolerance = 1e-6 // tight: force several waves before the budget
	req.Options.Shards = 2
	crashEverywhere(t, req, runToCompletion(t, req))
}

// TestTransientShardFailuresRetriedLeaveReportUnchanged pins the retry
// contract: two injected transient failures of the same observation shard
// are retried with deterministic backoff and the finished report is
// byte-identical to a fault-free run, with the retries visible in the job
// status and the manager metrics.
func TestTransientShardFailuresRetriedLeaveReportUnchanged(t *testing.T) {
	req := tinyRequest(31)
	req.Options.MonteCarloSamples = 64
	req.Options.Shards = 2
	want := runToCompletion(t, req)

	dir := t.TempDir()
	store, err := persist.NewJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := newManager(t, Config{
		Workers:        2,
		Store:          store,
		MaxTaskRetries: 3,
		RetryBaseDelay: time.Millisecond,
		FaultHook: faultinject.Chain(
			faultinject.FailNth(taskObserve, 1),
			faultinject.FailNth(taskObserve, 1),
		),
	})
	id, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateDone {
		t.Fatalf("job finished %s (%s), want done after retries", st.State, st.Error)
	}
	if st.Retries != 2 {
		t.Fatalf("status reports %d retries, want 2", st.Retries)
	}
	if !strings.Contains(st.LastError, "faultinject") {
		t.Fatalf("status last_error %q does not record the transient failure", st.LastError)
	}
	if got := reportBytes(t, dir, id); !bytes.Equal(got, want) {
		t.Fatal("report after transient retries differs from fault-free run")
	}
	if n := m.Metrics().TaskRetries[taskObserve]; n != 2 {
		t.Fatalf("metrics count %d observe retries, want 2", n)
	}
}

// TestTransientFailureExhaustsRetryBudget pins the other side: a stage
// that keeps failing transiently fails its job once the budget is spent.
func TestTransientFailureExhaustsRetryBudget(t *testing.T) {
	m := newManager(t, Config{
		Workers:        1,
		MaxTaskRetries: 2,
		RetryBaseDelay: time.Millisecond,
		FaultHook: func(p faultinject.Point) error {
			if p.Op == faultinject.OpTask && p.Stage == taskObserve {
				return faultinject.Transient(errors.New("injected: shard host unreachable"))
			}
			return nil
		},
	})
	id, err := m.Submit(tinyRequest(5))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateFailed || !strings.Contains(st.Error, "shard host unreachable") {
		t.Fatalf("exhausted job: state %s error %q", st.State, st.Error)
	}
	if st.Retries != 2 {
		t.Fatalf("exhausted job retried %d times, want 2 (the budget)", st.Retries)
	}
}

// TestFatalFailureIsNotRetried pins the classifier default: an unmarked
// error is fatal and must not consume retry budget.
func TestFatalFailureIsNotRetried(t *testing.T) {
	m := newManager(t, Config{
		Workers:        1,
		MaxTaskRetries: 3,
		RetryBaseDelay: time.Millisecond,
		FaultHook:      faultinject.FailNthFatal(taskObserve, 1),
	})
	id, err := m.Submit(tinyRequest(5))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateFailed {
		t.Fatalf("fatally failed job state %s", st.State)
	}
	if st.Retries != 0 {
		t.Fatalf("fatal failure consumed %d retries, want 0", st.Retries)
	}
}

// TestPanicFailsOnlyItsJob pins panic isolation on the real pipeline: an
// injected panic in one job's stage fails that job with the goroutine
// stack in its error, while a sibling job in the same manager completes.
func TestPanicFailsOnlyItsJob(t *testing.T) {
	m := newManager(t, Config{
		Workers:   1,
		FaultHook: faultinject.PanicNth(taskPrepare, 1),
	})
	idDoomed, err := m.Submit(tinyRequest(7))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, idDoomed)
	if st.State != StateFailed || !strings.Contains(st.Error, "service: job panicked") {
		t.Fatalf("panicked job: state %s error %q", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "goroutine") {
		t.Fatalf("panic error carries no stack: %q", st.Error)
	}
	idHealthy, err := m.Submit(tinyRequest(7))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m, idHealthy); st.State != StateDone {
		t.Fatalf("sibling job after a panic finished %s (%s)", st.State, st.Error)
	}
}

// TestTaskTimeoutRetriesTransiently pins the per-task deadline: a hung
// task execution is cut off at Config.TaskTimeout, classified transient,
// and the retry succeeds.
func TestTaskTimeoutRetriesTransiently(t *testing.T) {
	var calls atomic.Int32
	m := newManager(t, Config{
		Workers:        1,
		TaskTimeout:    20 * time.Millisecond,
		MaxTaskRetries: 2,
		RetryBaseDelay: time.Millisecond,
		Value: func(ctx context.Context, _ []comfedsv.Client, _ comfedsv.Client, _ comfedsv.Options) (*comfedsv.Report, error) {
			if calls.Add(1) == 1 {
				<-ctx.Done() // first attempt hangs until the deadline fires
				return nil, ctx.Err()
			}
			return &comfedsv.Report{}, nil
		},
	})
	id, err := m.Submit(tinyRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateDone {
		t.Fatalf("job finished %s (%s), want done after timeout retry", st.State, st.Error)
	}
	if st.Retries != 1 || !strings.Contains(st.LastError, "task deadline exceeded") {
		t.Fatalf("retries=%d last_error=%q, want 1 timeout retry", st.Retries, st.LastError)
	}
}

// TestJobDeadlineFailsOverdueJob pins the whole-job deadline on a manual
// clock: a job that runs past Config.JobTimeout fails with ErrJobDeadline
// the instant the clock says so — no real time passes.
func TestJobDeadlineFailsOverdueJob(t *testing.T) {
	clk := faultinject.NewManualClock(time.Unix(1700000000, 0))
	m := newManager(t, Config{
		Workers:    1,
		JobTimeout: time.Minute,
		Clock:      clk,
		Value: func(ctx context.Context, _ []comfedsv.Client, _ comfedsv.Client, _ comfedsv.Options) (*comfedsv.Report, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	id, err := m.Submit(tinyRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the watchdog to park on the clock, then expire the job.
	deadline := time.Now().Add(10 * time.Second)
	for clk.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job watchdog never armed")
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(2 * time.Minute)
	st := waitTerminal(t, m, id)
	if st.State != StateFailed || !strings.Contains(st.Error, "job deadline exceeded") {
		t.Fatalf("overdue job: state %s error %q", st.State, st.Error)
	}
}

// TestRetryBackoffWaitsOnClock pins that a scheduled retry really waits
// out its backoff: on a manual clock the retried task does not re-execute
// until the clock advances past the deterministic delay.
func TestRetryBackoffWaitsOnClock(t *testing.T) {
	clk := faultinject.NewManualClock(time.Unix(1700000000, 0))
	m := newManager(t, Config{
		Workers:        1,
		MaxTaskRetries: 1,
		RetryBaseDelay: 100 * time.Millisecond,
		Clock:          clk,
		FaultHook:      faultinject.FailNth(taskObserve, 1),
	})
	id, err := m.Submit(tinyRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	// The retry parks on the clock; until it advances the job stays
	// running with the retry recorded.
	deadline := time.Now().Add(10 * time.Second)
	for clk.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("retry never parked on the clock")
		}
		time.Sleep(time.Millisecond)
	}
	st, err := m.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State.Terminal() {
		t.Fatalf("job reached %s before the backoff elapsed", st.State)
	}
	if st.Retries != 1 {
		t.Fatalf("status reports %d retries while parked, want 1", st.Retries)
	}
	clk.Advance(time.Second) // > base<<1 + jitter(<base)
	if st := waitTerminal(t, m, id); st.State != StateDone {
		t.Fatalf("job after backoff finished %s (%s)", st.State, st.Error)
	}
}

// TestCorruptJournalQuarantinedAtStartup pins the corrupt-journal
// contract: startup never aborts on a damaged journal — the file is
// renamed out of the replay path and the job registers as failed with a
// clear reason.
func TestCorruptJournalQuarantinedAtStartup(t *testing.T) {
	dir := t.TempDir()
	const id = "job-deadbeefdeadbeefdeadbeef"
	if err := os.WriteFile(filepath.Join(dir, id+".journal"), []byte("this is not a journal record\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := persist.NewJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := newManager(t, Config{Workers: 1, Store: store})
	st, err := m.Status(id)
	if err != nil {
		t.Fatalf("quarantined job not registered: %v", err)
	}
	if st.State != StateFailed || !strings.Contains(st.Error, "quarantined") {
		t.Fatalf("quarantined job: state %s error %q", st.State, st.Error)
	}
	if store.HasJournal(id) {
		t.Fatal("corrupt journal still in the replay path")
	}
	if _, err := os.Stat(filepath.Join(dir, id+".journal.corrupt")); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// A healthy job still runs on the same manager.
	hid, err := m.Submit(tinyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m, hid); st.State != StateDone {
		t.Fatalf("job after quarantine finished %s (%s)", st.State, st.Error)
	}
}

// TestTornJournalTailResumesJob pins torn-write handling end to end: a
// journal whose final record was half-written (the classic crash artifact)
// is not corrupt — the tail is dropped and the job resumes from the last
// durable record.
func TestTornJournalTailResumesJob(t *testing.T) {
	req := tinyRequest(13)
	want := runToCompletion(t, req)

	dir := t.TempDir()
	store, err := persist.NewJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Crash after the prepare record is durable, then tear the tail by
	// appending half a record with no newline.
	m1, err := NewManager(Config{
		Workers:   1,
		Store:     store,
		FaultHook: faultinject.CrashNth(faultinject.OpJournalBefore, taskObserve, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := m1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m1, id); st.State != StateFailed {
		t.Fatalf("crashed job state %s (%s)", st.State, st.Error)
	}
	shutdown(t, m1)
	f, err := os.OpenFile(filepath.Join(dir, id+".journal"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"task","stage":"obse`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	store2, err := persist.NewJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewManager(Config{Workers: 1, Store: store2})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, m2)
	if st := waitTerminal(t, m2, id); st.State != StateDone {
		t.Fatalf("torn-tail job finished %s (%s)", st.State, st.Error)
	}
	if got := reportBytes(t, dir, id); !bytes.Equal(got, want) {
		t.Fatal("torn-tail resumed report diverges from baseline")
	}
	if m2.Metrics().JobsRecovered != 1 {
		t.Fatalf("jobs_recovered = %d, want 1", m2.Metrics().JobsRecovered)
	}
}

// TestUserCancelRemovesJournalShutdownKeepsIt pins the two cancellation
// flavors: an explicit Cancel must not resurrect on restart (journal
// removed); a shutdown abort must (journal kept, job resumes).
func TestUserCancelRemovesJournalShutdownKeepsIt(t *testing.T) {
	gate := make(chan struct{})
	blocked := make(chan struct{}, 2)
	blockingValue := func(ctx context.Context, _ []comfedsv.Client, _ comfedsv.Client, _ comfedsv.Options) (*comfedsv.Report, error) {
		blocked <- struct{}{}
		select {
		case <-gate:
			return &comfedsv.Report{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	// User cancel: journal gone.
	dirA := t.TempDir()
	storeA, err := persist.NewJobStore(dirA)
	if err != nil {
		t.Fatal(err)
	}
	mA := newManager(t, Config{Workers: 1, Store: storeA, Value: blockingValue})
	idA, err := mA.Submit(tinyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	<-blocked
	if err := mA.Cancel(idA); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, mA, idA); st.State != StateFailed {
		t.Fatalf("cancelled job state %s", st.State)
	}
	if storeA.HasJournal(idA) {
		t.Fatal("user-cancelled job's journal survived; a restart would resurrect it")
	}

	// Shutdown abort: journal kept, restart resumes.
	dirB := t.TempDir()
	storeB, err := persist.NewJobStore(dirB)
	if err != nil {
		t.Fatal(err)
	}
	mB, err := NewManager(Config{Workers: 1, Store: storeB, Value: blockingValue})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := mB.Submit(tinyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	<-blocked
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	mB.Shutdown(expired) // aborts the running job
	if !storeB.HasJournal(idB) {
		t.Fatal("shutdown-aborted job's journal was removed; restart cannot resume it")
	}
	close(gate)
	storeB2, err := persist.NewJobStore(dirB)
	if err != nil {
		t.Fatal(err)
	}
	mB2 := newManager(t, Config{Workers: 1, Store: storeB2, Value: func(context.Context, []comfedsv.Client, comfedsv.Client, comfedsv.Options) (*comfedsv.Report, error) {
		return &comfedsv.Report{}, nil
	}})
	if st := waitTerminal(t, mB2, idB); st.State != StateDone {
		t.Fatalf("resumed job after shutdown finished %s (%s)", st.State, st.Error)
	}
	if mB2.Metrics().JobsRecovered != 1 {
		t.Fatalf("jobs_recovered = %d, want 1", mB2.Metrics().JobsRecovered)
	}
}

// TestQueueFullRejectionIsCounted pins the rejection metric feeding
// comfedsvd_jobs_rejected_total.
func TestQueueFullRejectionIsCounted(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{}, 1)
	m := newManager(t, Config{
		Workers:    1,
		QueueDepth: 1,
		Value: func(ctx context.Context, _ []comfedsv.Client, _ comfedsv.Client, _ comfedsv.Options) (*comfedsv.Report, error) {
			started <- struct{}{}
			select {
			case <-gate:
			case <-ctx.Done():
			}
			return &comfedsv.Report{}, nil
		},
	})
	if _, err := m.Submit(tinyRequest(1)); err != nil {
		t.Fatal(err)
	}
	<-started // first job occupies the worker, freeing its queue slot
	if _, err := m.Submit(tinyRequest(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(tinyRequest(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submission: %v, want ErrQueueFull", err)
	}
	if n := m.Metrics().JobsRejected; n != 1 {
		t.Fatalf("jobs_rejected = %d, want 1", n)
	}
}

// TestQuarantineCrashResurrectionReQuarantines pins the durability fix in
// the quarantine path: the directory sync after the rename is what makes a
// quarantine stick. A crash in the window between the rename and the dir
// sync (faultinject.OpQuarantine) can lose the directory update and
// resurrect the corrupt journal under its original name; the next startup
// must simply quarantine it again — idempotently, without aborting, and
// without replaying the damaged file.
func TestQuarantineCrashResurrectionReQuarantines(t *testing.T) {
	dir := t.TempDir()
	const id = "job-cafecafecafecafecafecafe"
	journalPath := filepath.Join(dir, id+".journal")
	if err := os.WriteFile(journalPath, []byte("this is not a journal record\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := persist.NewJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// First startup crashes in the quarantine window. The manager itself
	// survives — a quarantine failure is logged, the job still registers
	// as failed — but the rename never became durable.
	m1, err := NewManager(Config{
		Workers:   1,
		Store:     store,
		FaultHook: faultinject.CrashNth(faultinject.OpQuarantine, "quarantine", 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st, serr := m1.Status(id); serr != nil || st.State != StateFailed {
		t.Fatalf("quarantined job after crashed quarantine: %+v, %v", st, serr)
	}
	// Abandon m1 (the simulated dead process) and roll the rename back,
	// modeling the lost directory update.
	if err := os.Rename(filepath.Join(dir, id+".journal.corrupt"), journalPath); err != nil {
		t.Fatal(err)
	}

	store2, err := persist.NewJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2 := newManager(t, Config{Workers: 1, Store: store2})
	st, err := m2.Status(id)
	if err != nil {
		t.Fatalf("resurrected journal not re-quarantined: %v", err)
	}
	if st.State != StateFailed || !strings.Contains(st.Error, "quarantined") {
		t.Fatalf("re-quarantined job: state %s error %q", st.State, st.Error)
	}
	if store2.HasJournal(id) {
		t.Fatal("resurrected corrupt journal still in the replay path")
	}
	if _, err := os.Stat(filepath.Join(dir, id+".journal.corrupt")); err != nil {
		t.Fatalf("quarantine file missing after re-quarantine: %v", err)
	}
	// A healthy job still runs on the recovered manager.
	hid, err := m2.Submit(tinyRequest(5))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m2, hid); st.State != StateDone {
		t.Fatalf("job after re-quarantine finished %s (%s)", st.State, st.Error)
	}
}
