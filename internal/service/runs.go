package service

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"time"

	"comfedsv"
)

// RunState is a shared training run's lifecycle phase.
type RunState string

// Run lifecycle: CreateRun registers a run in RunTraining; the training
// goroutine moves it to RunReady or RunFailed. Runs recovered from a
// RunStore start in RunReady (the trace is loaded lazily on first use).
const (
	RunTraining RunState = "training"
	RunReady    RunState = "ready"
	RunFailed   RunState = "failed"
)

// Errors returned by the run-registry methods.
var (
	ErrRunNotFound = errors.New("service: no such run")
	ErrRunBusy     = errors.New("service: run is referenced by active jobs")
)

// RunSpec describes one shared training run: the federated datasets plus
// the training half of the valuation options. Only the training-relevant
// Options fields (NumClasses, Rounds, ClientsPerRound, LearningRate,
// Model, HiddenUnits, Seed) participate in the run's identity — jobs that
// differ only in valuation settings (Rank, MonteCarloSamples,
// Parallelism) map to the same run and share its trace and evaluator
// cache. Seed is training-relevant: it drives client selection and
// initialization, so different seeds are different traces.
type RunSpec struct {
	Clients []comfedsv.Client
	Test    comfedsv.Client
	Options comfedsv.Options
}

// RunIDForSpec derives the content-addressed run ID: a versioned SHA-256
// over a canonical binary encoding of the datasets and the training
// fields. Equal specs always collide onto one ID — that is the mechanism
// by which N submissions of the same training problem train exactly once —
// and the encoding is independent of JSON quirks (NaN payloads, float
// formatting), so any byte-identical dataset hashes identically.
func RunIDForSpec(spec RunSpec) string {
	h := sha256.New()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeF64 := func(f float64) { writeU64(math.Float64bits(f)) }
	writeClient := func(c comfedsv.Client) {
		writeU64(uint64(len(c.X)))
		for _, row := range c.X {
			writeU64(uint64(len(row)))
			for _, v := range row {
				writeF64(v)
			}
		}
		writeU64(uint64(len(c.Y)))
		for _, y := range c.Y {
			writeU64(uint64(int64(y)))
		}
	}

	const specVersion = 1
	writeU64(specVersion)
	writeU64(uint64(len(spec.Clients)))
	for _, c := range spec.Clients {
		writeClient(c)
	}
	writeClient(spec.Test)

	o := spec.Options
	writeU64(uint64(o.NumClasses))
	writeU64(uint64(o.Rounds))
	writeU64(uint64(o.ClientsPerRound))
	writeF64(o.LearningRate)
	writeU64(uint64(o.Model))
	// HiddenUnits only shapes MLP training; ignoring it otherwise lets
	// logreg specs that differ in a dead field share a run. For MLP,
	// apply the same <=0 -> 16 fallback the training pipeline applies, so
	// specs the pipeline treats identically hash identically.
	hidden := 0
	if o.Model == comfedsv.MLP {
		hidden = o.HiddenUnits
		if hidden <= 0 {
			hidden = 16
		}
	}
	writeU64(uint64(hidden))
	writeU64(uint64(o.Seed))

	return "run-" + hex.EncodeToString(h.Sum(nil)[:16])
}

// runEntry is the registry's record of one shared run. All fields are
// guarded by Manager.mu except: done is closed exactly once by the owner
// of the terminal transition; tr's evaluator counters are atomics; and the
// lazy-load fields are guarded by loadOnce's happens-before edge.
type runEntry struct {
	id    string
	state RunState
	err   error // failure reason (RunFailed) or persistence warning (RunReady)
	tr    *comfedsv.TrainedRun
	// done is closed when training completes (ready or failed); jobs
	// referencing a still-training run wait on it. Recovered entries are
	// constructed with done already closed.
	done chan struct{}
	// refs counts jobs submitted against this run that have not reached a
	// terminal state; DeleteRun refuses while refs > 0.
	refs int

	created   time.Time
	trained   time.Time
	persisted bool

	numClients int
	rounds     int

	cancelTrain context.CancelFunc // non-nil while training

	// Lazy disk load for recovered entries: loadOnce publishes loadTr and
	// loadErr to every waiter.
	loadOnce sync.Once
	loadTr   *comfedsv.TrainedRun
	loadErr  error
}

// RunStatus is a point-in-time snapshot of a shared run, safe to retain
// and serialize.
type RunStatus struct {
	ID    string   `json:"id"`
	State RunState `json:"state"`
	// Error is the failure reason for failed runs; on a ready run it is a
	// non-fatal warning (the trace trained but could not be persisted).
	Error string `json:"error,omitempty"`

	CreatedAt time.Time  `json:"created_at"`
	TrainedAt *time.Time `json:"trained_at,omitempty"`

	// NumClients and Rounds describe the trace; they are 0 for recovered
	// runs whose trace has not been loaded from disk yet.
	NumClients int `json:"num_clients,omitempty"`
	Rounds     int `json:"rounds,omitempty"`

	// ActiveJobs counts non-terminal jobs referencing this run; DELETE is
	// refused while it is nonzero.
	ActiveJobs int `json:"active_jobs"`

	// CacheHits and CacheMisses are the shared evaluator's cumulative
	// ledger across every job that valued against this run: misses are
	// distinct test-loss evaluations paid for, hits are lookups amortized
	// by the shared memo table.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`

	// Persisted reports whether the trace is on disk and will survive a
	// restart.
	Persisted bool `json:"persisted"`
}

// CreateRun registers (and, if new, trains) the shared run for the given
// spec. The run ID is content-addressed, so concurrent and repeated
// submissions of the same spec converge on one registry entry and the
// training runs exactly once; subsequent calls return the existing run's
// status with created == false. Re-registering a spec whose previous
// training failed retries the training (a transient failure must not
// tombstone the content address), unless jobs still reference the failed
// entry. Training happens asynchronously on its own goroutine — poll
// RunStatus or submit a job referencing the ID (jobs stay queued until
// the run leaves the training state).
func (m *Manager) CreateRun(spec RunSpec) (RunStatus, bool, error) {
	id := RunIDForSpec(spec)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return RunStatus{}, false, ErrShutdown
	}
	if e, ok := m.runs[id]; ok {
		// Retry a dead entry nobody references; anything else dedups.
		if !(e.state == RunFailed && e.refs == 0) {
			st := m.runStatusLocked(e)
			m.mu.Unlock()
			return st, false, nil
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &runEntry{
		id:          id,
		state:       RunTraining,
		done:        make(chan struct{}),
		created:     time.Now(),
		cancelTrain: cancel,
	}
	if _, retry := m.runs[id]; !retry {
		m.runOrder = append(m.runOrder, id)
	}
	m.runs[id] = e
	m.runWG.Add(1)
	st := m.runStatusLocked(e)
	m.mu.Unlock()
	m.logRun("run registered", id, "clients", len(spec.Clients))
	go m.trainRun(ctx, e, spec)
	return st, true, nil
}

// logRun emits one run-lifecycle record when a logger is configured.
// Callers must not hold m.mu.
func (m *Manager) logRun(msg, id string, args ...any) {
	if m.cfg.Logger == nil {
		return
	}
	fields := make([]any, 0, len(args)+2)
	fields = append(fields, "run_id", id)
	fields = append(fields, args...)
	m.cfg.Logger.Info(msg, fields...)
}

// trainRun executes one shared run's training and publishes the result.
func (m *Manager) trainRun(ctx context.Context, e *runEntry, spec RunSpec) {
	defer m.runWG.Done()
	// Shared-run trainings feed the same train-stage latency histogram as
	// inline-job trainings (the hook only observes; run identity ignores
	// it, and Options is this goroutine's copy of the spec).
	prevTime := spec.Options.OnStageTime
	spec.Options.OnStageTime = func(st comfedsv.StageTiming) {
		if h, ok := m.valHist[st.Stage]; ok {
			h.ObserveDuration(st.Duration)
		}
		if prevTime != nil {
			prevTime(st)
		}
	}
	tr, err := m.train(ctx, spec)
	// Like job reports, a persistence failure must not discard a
	// successfully trained run: it stays usable in memory with the store
	// error recorded as a warning.
	var warn error
	if err == nil && m.cfg.RunStore != nil {
		if serr := m.cfg.RunStore.SaveRun(e.id, tr.Run()); serr != nil {
			warn = fmt.Errorf("service: persisting run: %w", serr)
		}
	}
	if err == nil {
		// Warm-start from the cell sidecar a previous process (or a
		// retried training of the same content address) left behind —
		// before the run is published, so the first job already hits.
		m.preloadCells(e.id, tr)
	}

	m.mu.Lock()
	e.cancelTrain = nil
	if err != nil {
		if errors.Is(err, context.Canceled) {
			err = ErrCancelled
		}
		e.state = RunFailed
		e.err = err
	} else {
		e.state = RunReady
		e.tr = tr
		e.err = warn
		e.persisted = m.cfg.RunStore != nil && warn == nil
		e.numClients = tr.NumClients()
		e.rounds = tr.NumRounds()
		e.trained = time.Now()
	}
	close(e.done)
	// Queued jobs referencing this run just became eligible; wake the pool.
	m.cond.Broadcast()
	m.mu.Unlock()
	if err != nil {
		m.logRun("run training failed", e.id, "error", err.Error())
	} else {
		m.logRun("run ready", e.id, "train_ms", e.trained.Sub(e.created).Milliseconds(), "rounds", e.rounds)
	}
}

// train runs one training, converting a panic into a run failure so one
// poisoned spec cannot take down the daemon.
func (m *Manager) train(ctx context.Context, spec RunSpec) (tr *comfedsv.TrainedRun, err error) {
	defer func() {
		if r := recover(); r != nil {
			tr, err = nil, fmt.Errorf("service: run training panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return m.cfg.Train(ctx, spec.Clients, spec.Test, spec.Options)
}

// runTrained returns the entry's TrainedRun once training has completed,
// lazily loading recovered entries from the RunStore. Callers must have
// observed <-e.done first.
func (m *Manager) runTrained(e *runEntry) (*comfedsv.TrainedRun, error) {
	m.mu.Lock()
	if e.state == RunFailed {
		err := e.err
		m.mu.Unlock()
		return nil, err
	}
	if e.tr != nil {
		tr := e.tr
		m.mu.Unlock()
		return tr, nil
	}
	m.mu.Unlock()

	// Ready but not resident: a run recovered from a previous process.
	// Load from disk outside the lock; loadOnce collapses concurrent
	// loaders onto one read.
	e.loadOnce.Do(func() {
		if m.cfg.RunStore == nil {
			e.loadErr = fmt.Errorf("service: run %s trace not resident and no run store configured", e.id)
			return
		}
		run, err := m.cfg.RunStore.LoadRun(e.id)
		if err != nil {
			e.loadErr = err
			return
		}
		e.loadTr = comfedsv.NewTrainedRun(run)
		// Recovered run, fresh evaluator: warm-start it from the sidecar
		// inside the once, before any waiter can evaluate against it.
		m.preloadCells(e.id, e.loadTr)
	})

	m.mu.Lock()
	defer m.mu.Unlock()
	if e.loadErr != nil {
		// A corrupt or unreadable trace poisons the run for everyone;
		// record it so the status surfaces the reason.
		e.state = RunFailed
		e.err = e.loadErr
		return nil, e.loadErr
	}
	if e.tr == nil {
		e.tr = e.loadTr
		e.numClients = e.tr.NumClients()
		e.rounds = e.tr.NumRounds()
	}
	return e.tr, nil
}

// RunStatus returns a snapshot of the shared run.
func (m *Manager) RunStatus(id string) (RunStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.runs[id]
	if !ok {
		return RunStatus{}, ErrRunNotFound
	}
	return m.runStatusLocked(e), nil
}

// Runs returns snapshots of every registered run in registration order
// (runs recovered from the store come first).
func (m *Manager) Runs() []RunStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]RunStatus, 0, len(m.runOrder))
	for _, id := range m.runOrder {
		out = append(out, m.runStatusLocked(m.runs[id]))
	}
	return out
}

// RunCounts returns the number of runs in each state.
func (m *Manager) RunCounts() map[RunState]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	counts := make(map[RunState]int, 3)
	for _, e := range m.runs {
		counts[e.state]++
	}
	return counts
}

// DeleteRun removes a run from the registry and, if persisted, from disk.
// It fails with ErrRunBusy while the run is still training or while any
// non-terminal job references it — deleting a trace out from under a
// valuation would poison it.
func (m *Manager) DeleteRun(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.runs[id]
	if !ok {
		return ErrRunNotFound
	}
	if e.state == RunTraining {
		return fmt.Errorf("%w: %s is still training", ErrRunBusy, id)
	}
	if e.refs > 0 {
		return fmt.Errorf("%w: %s (%d active jobs)", ErrRunBusy, id, e.refs)
	}
	if m.cfg.RunStore != nil {
		if err := m.cfg.RunStore.DeleteRun(id); err != nil {
			return err
		}
	}
	delete(m.runs, id)
	for i, rid := range m.runOrder {
		if rid == id {
			m.runOrder = append(m.runOrder[:i], m.runOrder[i+1:]...)
			break
		}
	}
	return nil
}

// runStatusLocked snapshots an entry. Callers hold m.mu; the evaluator
// counters are atomics, so reading them here is safe even while jobs are
// hammering the cache.
func (m *Manager) runStatusLocked(e *runEntry) RunStatus {
	st := RunStatus{
		ID:         e.id,
		State:      e.state,
		CreatedAt:  e.created,
		NumClients: e.numClients,
		Rounds:     e.rounds,
		ActiveJobs: e.refs,
		Persisted:  e.persisted,
	}
	if e.err != nil {
		st.Error = e.err.Error()
	}
	if !e.trained.IsZero() {
		t := e.trained
		st.TrainedAt = &t
	}
	if e.tr != nil {
		cs := e.tr.CacheStats()
		st.CacheHits = cs.Hits
		st.CacheMisses = cs.Misses
	}
	return st
}

// releaseRunLocked drops a terminal job's reference on its shared run.
// Callers hold m.mu. Idempotent per job: each job releases at most once.
func (m *Manager) releaseRunLocked(j *job) {
	if j.runID == "" || j.runReleased {
		return
	}
	j.runReleased = true
	if e, ok := m.runs[j.runID]; ok {
		e.refs--
	}
}
