package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"comfedsv"
	"comfedsv/internal/faultinject"
	"comfedsv/internal/persist"
	"comfedsv/internal/utility"
)

// cellRequest is a run-backed Monte-Carlo valuation against tinySpec(seed)
// with the given observation sharding — the job shape whose cells the
// persistent cache warm-starts.
func cellRequest(seed int64, shards, parallelism int) Request {
	req := tinyRequest(seed)
	req.Options.MonteCarloSamples = 64
	req.Options.Shards = shards
	req.Options.Parallelism = parallelism
	return Request{RunID: RunIDForSpec(tinySpec(seed)), Options: req.Options}
}

// cellStores opens job and run stores over the given directories.
func cellStores(t *testing.T, jobDir, runDir string) (*persist.JobStore, *persist.RunStore) {
	t.Helper()
	jobs, err := persist.NewJobStore(jobDir)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := persist.NewRunStore(runDir)
	if err != nil {
		t.Fatal(err)
	}
	return jobs, runs
}

// wideSpec is tinySpec with six clients: 63 coalitions per round instead
// of 15, so a 48-permutation adaptive budget cannot cover the cell space
// in its first wave and later waves flush genuinely new cells.
func wideSpec(seed int64) RunSpec {
	mk := func(off float64) comfedsv.Client {
		var c comfedsv.Client
		for i := 0; i < 8; i++ {
			x := off + float64(i)*0.3
			label := 0
			if x > 1 {
				label = 1
			}
			c.X = append(c.X, []float64{x, 1 - x})
			c.Y = append(c.Y, label)
		}
		return c
	}
	clients := []comfedsv.Client{mk(-0.4), mk(-0.15), mk(0.1), mk(0.35), mk(0.6), mk(1.1)}
	opts := comfedsv.DefaultOptions(2)
	opts.Rounds = 4
	opts.ClientsPerRound = 3
	opts.Seed = seed
	return RunSpec{Clients: clients, Test: mk(0.25), Options: opts}
}

// runCellJob registers spec's run on m (a no-op dedup when the run was
// recovered from the store), submits req, waits for it, and returns the
// persisted report bytes.
func runCellJob(t *testing.T, m *Manager, jobDir string, spec RunSpec, req Request) []byte {
	t.Helper()
	st, _, err := m.CreateRun(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := waitRunTerminal(t, m, st.ID); got.State != RunReady {
		t.Fatalf("run finished %s (%s), want ready", got.State, got.Error)
	}
	id, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, m, id); s.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", s.State, s.Error)
	}
	return reportBytes(t, jobDir, id)
}

// runMisses returns the shared run's distinct-evaluation count from the
// manager's metrics snapshot.
func runMisses(t *testing.T, m *Manager, runID string) int {
	t.Helper()
	for _, rc := range m.Metrics().RunCaches {
		if rc.ID == runID {
			return rc.Misses
		}
	}
	t.Fatalf("run %s missing from metrics", runID)
	return 0
}

// TestWarmCacheByteIdenticalAcrossRestart is the tentpole acceptance test
// at the service layer: a run-backed job on a fresh daemon writes its
// evaluated cells to the run's sidecar; a restarted daemon over the same
// stores preloads them, serves the identical job entirely from warm cells
// (zero paid evaluations), and produces a byte-identical report — swept
// over the shard/parallelism matrix.
func TestWarmCacheByteIdenticalAcrossRestart(t *testing.T) {
	const seed = 61
	for _, combo := range []struct{ shards, par int }{
		{1, 1}, {1, 4}, {2, 1}, {2, 4}, {8, 1}, {8, 4},
	} {
		combo := combo
		t.Run(fmt.Sprintf("shards=%d_par=%d", combo.shards, combo.par), func(t *testing.T) {
			req := cellRequest(seed, combo.shards, combo.par)
			jobDir, runDir := t.TempDir(), t.TempDir()
			jobs1, runs1 := cellStores(t, jobDir, runDir)

			m1 := newManager(t, Config{Workers: 2, Store: jobs1, RunStore: runs1})
			cold := runCellJob(t, m1, jobDir, tinySpec(seed), req)
			met1 := m1.Metrics()
			if met1.CellsPersisted == 0 {
				t.Fatal("cold job persisted no cells")
			}
			if met1.CellsPreloaded != 0 || met1.CellsCorrupt != 0 {
				t.Fatalf("cold manager preloaded=%d corrupt=%d, want 0/0", met1.CellsPreloaded, met1.CellsCorrupt)
			}
			if !runs1.HasCells(req.RunID) {
				t.Fatal("no cell sidecar on disk after the cold job")
			}
			shutdown(t, m1)

			// "Restart the daemon": fresh stores, fresh manager, same disk.
			jobs2, runs2 := cellStores(t, jobDir, runDir)
			m2 := newManager(t, Config{Workers: 2, Store: jobs2, RunStore: runs2})
			warm := runCellJob(t, m2, jobDir, tinySpec(seed), req)
			if !bytes.Equal(cold, warm) {
				t.Fatalf("warm report is not byte-identical to cold:\n%s\nvs\n%s", warm, cold)
			}
			met2 := m2.Metrics()
			if met2.CellsPreloaded == 0 {
				t.Fatal("restarted manager preloaded no cells from the sidecar")
			}
			if met2.CellsWarmHits == 0 {
				t.Fatal("warm job recorded no warm hits")
			}
			// The identical job re-evaluates nothing: every cell the cold
			// job paid for is served from the preloaded cache.
			if miss := runMisses(t, m2, req.RunID); miss != 0 {
				t.Fatalf("warm job paid %d evaluations, want 0 (hit rate below 100%%)", miss)
			}
		})
	}
}

// TestWarmCacheSharedAcrossJobsSameDaemon pins the cheaper half of the
// contract: within one daemon the second job over the same run is served
// by the shared evaluator, and flushes append nothing new to the sidecar.
func TestWarmCacheSharedAcrossJobsSameDaemon(t *testing.T) {
	const seed = 63
	req := cellRequest(seed, 2, 2)
	jobDir, runDir := t.TempDir(), t.TempDir()
	jobs, runs := cellStores(t, jobDir, runDir)
	m := newManager(t, Config{Workers: 2, Store: jobs, RunStore: runs})

	first := runCellJob(t, m, jobDir, tinySpec(seed), req)
	persisted := m.Metrics().CellsPersisted
	if persisted == 0 {
		t.Fatal("first job persisted no cells")
	}
	second := runCellJob(t, m, jobDir, tinySpec(seed), req)
	if !bytes.Equal(first, second) {
		t.Fatal("second job over the same run is not byte-identical")
	}
	if after := m.Metrics().CellsPersisted; after != persisted {
		t.Fatalf("second identical job persisted %d more cells, want 0", after-persisted)
	}
}

// TestDisableCellCacheKnob checks the Config escape hatch: with the cache
// disabled nothing is written or preloaded, and the report bytes match an
// enabled daemon's exactly — the cache is invisible in outputs.
func TestDisableCellCacheKnob(t *testing.T) {
	const seed = 65
	req := cellRequest(seed, 2, 2)

	onDir, onRuns := t.TempDir(), t.TempDir()
	onJobs, onStore := cellStores(t, onDir, onRuns)
	mOn := newManager(t, Config{Workers: 2, Store: onJobs, RunStore: onStore})
	want := runCellJob(t, mOn, onDir, tinySpec(seed), req)

	jobDir, runDir := t.TempDir(), t.TempDir()
	jobs, runs := cellStores(t, jobDir, runDir)
	m1 := newManager(t, Config{Workers: 2, Store: jobs, RunStore: runs, DisableCellCache: true})
	got := runCellJob(t, m1, jobDir, tinySpec(seed), req)
	if !bytes.Equal(want, got) {
		t.Fatal("disabling the cell cache changed the report bytes")
	}
	if met := m1.Metrics(); met.CellsPersisted != 0 || met.CellsPreloaded != 0 {
		t.Fatalf("disabled cache still moved cells: persisted=%d preloaded=%d", met.CellsPersisted, met.CellsPreloaded)
	}
	if runs.HasCells(req.RunID) {
		t.Fatal("disabled cache still wrote a sidecar")
	}
	shutdown(t, m1)

	jobs2, runs2 := cellStores(t, jobDir, runDir)
	m2 := newManager(t, Config{Workers: 2, Store: jobs2, RunStore: runs2, DisableCellCache: true})
	again := runCellJob(t, m2, jobDir, tinySpec(seed), req)
	if !bytes.Equal(want, again) {
		t.Fatal("disabled-cache restart changed the report bytes")
	}
	if met := m2.Metrics(); met.CellsPreloaded != 0 || met.CellsWarmHits != 0 {
		t.Fatalf("disabled cache warm-started anyway: preloaded=%d hits=%d", met.CellsPreloaded, met.CellsWarmHits)
	}
}

// TestCorruptSidecarQuarantinedJobRunsCold injects both corruption shapes
// — an unparseable line and a well-formed batch with a wrong digest — and
// requires the same degradation either way: the sidecar is quarantined,
// the counter ticks, and the job completes byte-identically cold. A
// damaged cache must never fail a job.
func TestCorruptSidecarQuarantinedJobRunsCold(t *testing.T) {
	const seed = 67
	req := cellRequest(seed, 2, 2)

	corruptions := []struct {
		name string
		line func(t *testing.T) []byte
	}{
		{"unparseable-line", func(t *testing.T) []byte {
			return []byte("{definitely not json\n")
		}},
		{"digest-mismatch", func(t *testing.T) []byte {
			b := &utility.CellBatch{N: 4, Cells: []utility.SnapshotCell{{Round: 0, Mask: 0b1, Value: 0.5}}}
			b.Stamp()
			b.Digest = strings.Repeat("0", 16)
			raw, err := json.Marshal(b)
			if err != nil {
				t.Fatal(err)
			}
			return append(raw, '\n')
		}},
	}
	for _, tc := range corruptions {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			jobDir, runDir := t.TempDir(), t.TempDir()
			jobs1, runs1 := cellStores(t, jobDir, runDir)
			m1 := newManager(t, Config{Workers: 2, Store: jobs1, RunStore: runs1})
			want := runCellJob(t, m1, jobDir, tinySpec(seed), req)
			shutdown(t, m1)

			// Damage the sidecar with a complete (newline-terminated) bad line.
			side := filepath.Join(runDir, req.RunID+".cells")
			f, err := os.OpenFile(side, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tc.line(t)); err != nil {
				t.Fatal(err)
			}
			f.Close()

			jobs2, runs2 := cellStores(t, jobDir, runDir)
			m2 := newManager(t, Config{Workers: 2, Store: jobs2, RunStore: runs2})
			got := runCellJob(t, m2, jobDir, tinySpec(seed), req)
			if !bytes.Equal(want, got) {
				t.Fatal("job over a corrupt sidecar is not byte-identical to the clean run")
			}
			met := m2.Metrics()
			if met.CellsCorrupt == 0 {
				t.Fatal("corrupt sidecar not counted")
			}
			if _, err := os.Stat(side + ".corrupt"); err != nil {
				t.Fatalf("quarantined sidecar missing: %v", err)
			}
			if tc.name == "digest-mismatch" {
				// A bad digest is caught at preload time: the valid batches
				// before it install fine, so the job runs fully warm and has
				// nothing new to flush.
				if met.CellsPreloaded == 0 {
					t.Fatal("valid batches before the corrupt one were not preloaded")
				}
			} else {
				// An unparseable line poisons the whole read: the job runs
				// cold and its flushes start a clean sidecar a third daemon
				// warm-starts from as if nothing happened.
				if met.CellsPreloaded != 0 {
					t.Fatalf("unreadable sidecar still preloaded %d cells", met.CellsPreloaded)
				}
				if !runs2.HasCells(req.RunID) {
					t.Fatal("no fresh sidecar after the recovering job")
				}
				shutdown(t, m2)
				jobs3, runs3 := cellStores(t, jobDir, runDir)
				m3 := newManager(t, Config{Workers: 2, Store: jobs3, RunStore: runs3})
				again := runCellJob(t, m3, jobDir, tinySpec(seed), req)
				if !bytes.Equal(want, again) {
					t.Fatal("post-quarantine warm start is not byte-identical")
				}
				if m3.Metrics().CellsPreloaded == 0 {
					t.Fatal("fresh sidecar after quarantine did not warm-start the next daemon")
				}
			}
		})
	}
}

// TestCellFlushCrashEverywhereResumesByteIdentical sweeps simulated
// process death across every sidecar-append point the job actually
// executes — before and after each fsync — and requires the restarted
// daemon to finish the job byte-identically. The sweep is exhaustive by
// construction: it ends at the first point no crash fires for, so every
// append of this job shape (however the flush boundaries fall) is
// covered.
func TestCellFlushCrashEverywhereResumesByteIdentical(t *testing.T) {
	const seed = 69
	spec := wideSpec(seed)
	opts := spec.Options
	opts.MonteCarloSamples = 48
	opts.Tolerance = 1e-9 // never converges: the full budget runs in doubling waves
	opts.Shards = 2
	req := Request{RunID: RunIDForSpec(spec), Options: opts}

	baseJobDir, baseRunDir := t.TempDir(), t.TempDir()
	baseJobs, baseRuns := cellStores(t, baseJobDir, baseRunDir)
	mb := newManager(t, Config{Workers: 2, Store: baseJobs, RunStore: baseRuns})
	want := runCellJob(t, mb, baseJobDir, spec, req)
	shutdown(t, mb)

	const maxPoints = 60
	for n := 1; ; n++ {
		if n > maxPoints {
			t.Fatalf("cell crash-point sweep did not terminate within %d points", maxPoints)
		}
		jobDir, runDir := t.TempDir(), t.TempDir()
		jobs1, runs1 := cellStores(t, jobDir, runDir)
		var count atomic.Int64
		var fired atomic.Bool
		hook := func(p faultinject.Point) error {
			if p.Op != faultinject.OpCellsBefore && p.Op != faultinject.OpCellsAfter {
				return nil
			}
			if count.Add(1) == int64(n) {
				fired.Store(true)
				return faultinject.ErrCrash
			}
			return nil
		}
		m1, err := NewManager(Config{Workers: 2, Store: jobs1, RunStore: runs1, FaultHook: hook})
		if err != nil {
			t.Fatal(err)
		}
		st, _, err := m1.CreateRun(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := waitRunTerminal(t, m1, st.ID); got.State != RunReady {
			t.Fatalf("point %d: run finished %s (%s)", n, got.State, got.Error)
		}
		id, err := m1.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		jst := waitTerminal(t, m1, id)
		shutdown(t, m1)

		if !fired.Load() {
			if jst.State != StateDone {
				t.Fatalf("fault-free run finished %s (%s)", jst.State, jst.Error)
			}
			if got := reportBytes(t, jobDir, id); !bytes.Equal(got, want) {
				t.Fatalf("point %d: fault-free report diverges from baseline", n)
			}
			t.Logf("swept %d cell-flush crash points", n-1)
			return
		}
		if jst.State != StateFailed || !strings.Contains(jst.Error, "simulated crash") {
			t.Fatalf("point %d: crashed job state %s error %q", n, jst.State, jst.Error)
		}

		// Restart over the frozen disk: the journaled job resumes, the
		// sidecar's durable prefix (possibly including the batch whose
		// post-fsync hook crashed) warm-starts it.
		jobs2, runs2 := cellStores(t, jobDir, runDir)
		m2, err := NewManager(Config{Workers: 2, Store: jobs2, RunStore: runs2})
		if err != nil {
			t.Fatalf("point %d: restart: %v", n, err)
		}
		finalID := id
		if _, serr := m2.Status(id); errors.Is(serr, ErrNotFound) {
			finalID, err = m2.Submit(req)
			if err != nil {
				t.Fatal(err)
			}
		}
		if s := waitTerminal(t, m2, finalID); s.State != StateDone {
			t.Fatalf("point %d: resumed job finished %s (%s)", n, s.State, s.Error)
		}
		if got := reportBytes(t, jobDir, finalID); !bytes.Equal(got, want) {
			t.Fatalf("point %d: resumed report is not byte-identical", n)
		}
		shutdown(t, m2)
	}
}
