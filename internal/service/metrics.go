package service

import "comfedsv/internal/telemetry"

// Metrics is a point-in-time snapshot of the manager's operational
// counters, the data source of the daemon's /v1/metrics endpoint. All
// fields are plain values safe to retain and render after the lock is
// released.
type Metrics struct {
	// Jobs counts jobs by lifecycle state; Runs counts shared runs.
	Jobs map[State]int
	Runs map[RunState]int
	// QueuedJobs is the number of jobs waiting to start (the quantity
	// bounded by Config.QueueDepth).
	QueuedJobs int
	// ReadyTasks is the number of stage tasks currently eligible to run;
	// InflightTasks is the number executing on workers right now.
	ReadyTasks    int
	InflightTasks int
	// TasksExecuted counts completed stage tasks by stage name (prepare,
	// observe, complete, shapley) over the manager's lifetime, including
	// failed executions.
	TasksExecuted map[string]int64
	// ShardTasksExecuted is TasksExecuted's observe entry: the number of
	// observation shard tasks the scheduler has run.
	ShardTasksExecuted int64
	// JobsEvicted counts terminal jobs removed by the TTL janitor.
	JobsEvicted int64
	// TaskRetries counts transient task failures re-executed via the
	// backoff ladder, by stage name.
	TaskRetries map[string]int64
	// JobsRecovered counts jobs resumed from crash journals at startup;
	// JobsRejected counts submissions turned away by the queue bound.
	JobsRecovered int64
	JobsRejected  int64
	// ObservationsSkipped counts budgeted permutations that adaptive
	// (tolerance-driven) jobs never had to sample because their estimates
	// converged early, summed over every finished adaptive job — the
	// daemon-lifetime early-stop savings.
	ObservationsSkipped int64
	// RunCaches holds the per-run utility-cache ledgers in registration
	// order: misses are distinct test-loss evaluations paid for, hits are
	// lookups amortized by the shared memo table.
	RunCaches []RunCacheMetric

	// Persistent cell-cache counters. CellsPreloaded counts cells
	// warm-started into run evaluators (from sidecars at trace load and
	// from worker deltas); CellsPersisted counts cells durably appended
	// to sidecars; CellsWarmHits counts cache hits served by a preloaded
	// cell — evaluations some earlier process or worker paid for;
	// CellsCorrupt counts sidecars quarantined as damaged.
	CellsPreloaded int64
	CellsPersisted int64
	CellsWarmHits  int64
	CellsCorrupt   int64

	// TaskLatency holds per-stage latency histograms of scheduler task
	// executions, keyed by stage name (prepare, observe, complete,
	// shapley). Each observation is one task's wall-clock execution time.
	TaskLatency map[string]telemetry.HistogramSnapshot
	// ValuationStageLatency holds latency histograms of the comfedsv
	// pipeline stages (train, fedsv, observe, complete, shapley) as
	// reported by the library's stage-timing hook — a finer split than
	// TaskLatency (train and fedsv both live inside the prepare task).
	ValuationStageLatency map[string]telemetry.HistogramSnapshot
	// JobDuration is the submit→finish latency histogram of done jobs;
	// JobQueueWait is the submit→start wait of every job that started.
	JobDuration  telemetry.HistogramSnapshot
	JobQueueWait telemetry.HistogramSnapshot
}

// RunCacheMetric is one shared run's cumulative cache ledger.
type RunCacheMetric struct {
	ID     string
	Hits   int
	Misses int
}

// Metrics snapshots the manager's counters.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := Metrics{
		Jobs:                  make(map[State]int, 4),
		Runs:                  make(map[RunState]int, 3),
		QueuedJobs:            m.queued,
		InflightTasks:         m.inflight,
		TasksExecuted:         make(map[string]int64, len(m.tasksDone)),
		JobsEvicted:           m.jobsEvicted,
		TaskRetries:           make(map[string]int64, len(m.taskRetries)),
		JobsRecovered:         m.jobsRecovered,
		JobsRejected:          m.jobsRejected,
		ObservationsSkipped:   m.obsSkipped,
		CellsPreloaded:        m.cellsPreloaded,
		CellsPersisted:        m.cellsPersisted,
		CellsCorrupt:          m.cellsCorrupt,
		TaskLatency:           make(map[string]telemetry.HistogramSnapshot, len(m.taskHist)),
		ValuationStageLatency: make(map[string]telemetry.HistogramSnapshot, len(m.valHist)),
		JobDuration:           m.jobHist.Snapshot(),
		JobQueueWait:          m.waitHist.Snapshot(),
	}
	for stage, h := range m.taskHist {
		snap.TaskLatency[stage] = h.Snapshot()
	}
	for stage, h := range m.valHist {
		snap.ValuationStageLatency[stage] = h.Snapshot()
	}
	for _, j := range m.jobs {
		snap.Jobs[j.state]++
	}
	for _, j := range m.ring {
		snap.ReadyTasks += len(j.ready)
	}
	for stage, n := range m.tasksDone {
		snap.TasksExecuted[stage] = n
	}
	for stage, n := range m.taskRetries {
		snap.TaskRetries[stage] = n
	}
	snap.ShardTasksExecuted = m.tasksDone[taskObserve]
	for _, id := range m.runOrder {
		e := m.runs[id]
		snap.Runs[e.state]++
		rc := RunCacheMetric{ID: id}
		if e.tr != nil {
			cs := e.tr.CacheStats()
			rc.Hits = cs.Hits
			rc.Misses = cs.Misses
			_, warm := e.tr.CellCacheStats()
			snap.CellsWarmHits += int64(warm)
		}
		snap.RunCaches = append(snap.RunCaches, rc)
	}
	return snap
}
