package service

import (
	"context"
	"fmt"

	"comfedsv"
	"comfedsv/internal/dispatch"
	"comfedsv/internal/persist"
)

// stagedValuation is the scheduler's view of one job's pipeline: the stage
// graph it turns into tasks. Prepare does the serial setup (training or
// shared-run resolution, FedSV, observation planning) and returns how many
// observation shards to schedule; ObserveShard calls for distinct shards
// may run concurrently; Complete merges and solves — and, for adaptive
// (tolerance-driven) pipelines, may return further observation shards to
// schedule before the next Complete, their indices continuing where the
// previous wave's left off; Extract produces the report once Complete
// returned 0. Stats returns the shared-cache ledger, nil for pipelines
// that don't value against a shared cache (inline jobs).
type stagedValuation interface {
	Prepare(ctx context.Context) (shards int, err error)
	ObserveShard(ctx context.Context, shard int) error
	Complete(ctx context.Context) (moreShards int, err error)
	Extract(ctx context.Context) (*comfedsv.Report, error)
	Stats() *comfedsv.EvalStats
}

// shardDigester is optionally implemented by pipelines whose observation
// shards can hash their evaluated cells — the content token the journal
// records and crash recovery verifies re-executed shards against.
// Scripted test pipelines and legacy monolithic hooks simply lack it.
type shardDigester interface {
	ShardDigest(shard int) string
}

// traceCarrier is optionally implemented by pipelines that can expose
// their trained run after Prepare, letting the scheduler persist an
// inline job's trace so crash recovery resumes without retraining.
type traceCarrier interface {
	TrainedRun() *comfedsv.TrainedRun
}

// remoteShardable is optionally implemented by pipelines whose
// observation shards can be leased to remote workers: the shard's
// permutation slice plus the plan identity (budget, with the seed coming
// from the job options) let a worker rebuild an identical plan from the
// shared run store, and ImportShard installs the digest-verified result
// as if the shard had run locally.
type remoteShardable interface {
	ObservationBudget() int
	ShardSlice(shard int) (lo, hi int, ok bool)
	ImportShard(shard int, obs *comfedsv.ShardObservations) error
}

// newValuation picks the staged pipeline for a submission: the real
// comfedsv Valuation (inline or run-backed), a legacy monolithic hook, or
// the test script. It is cheap — all heavy work happens inside the
// returned stages, on workers, under the job's context.
func (m *Manager) newValuation(j *job) stagedValuation {
	if m.cfg.buildValuation != nil {
		return m.cfg.buildValuation(j.req, j.opts)
	}
	if j.runID == "" {
		if m.cfg.Value != nil {
			return &monoValuation{run: func(ctx context.Context) (*comfedsv.Report, *comfedsv.EvalStats, error) {
				rep, err := m.cfg.Value(ctx, j.req.Clients, j.req.Test, j.opts)
				return rep, nil, err
			}}
		}
		return &pipelineValuation{build: func(ctx context.Context) (*comfedsv.Valuation, bool, error) {
			// A recovered job resumes from its persisted trace when the
			// crash happened after the prepare checkpoint; otherwise it
			// retrains, which — training being a seeded deterministic
			// function of the journaled request — rebuilds the identical
			// trace.
			if j.recovered && m.cfg.Store != nil {
				if run, lerr := m.cfg.Store.LoadJobRun(j.id); lerr == nil {
					return comfedsv.NewValuation(comfedsv.NewTrainedRun(run), j.opts), false, nil
				}
			}
			tr, err := comfedsv.TrainCtx(ctx, j.req.Clients, j.req.Test, j.opts)
			if err != nil {
				return nil, false, err
			}
			// The trace is private to this job, so the session's ledger is
			// not a shared-cache split worth surfacing.
			return comfedsv.NewValuation(tr, j.opts), false, nil
		}}
	}
	resolve := func(ctx context.Context) (*comfedsv.TrainedRun, error) {
		// The entry is pinned by the submit-time refcount. It may still be
		// training — the scheduler keeps the job ineligible while it is,
		// but a recovered or racing entry can reach here early, so wait on
		// the completion channel (a cancelled job stops waiting).
		m.mu.Lock()
		e := m.runs[j.runID]
		m.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-e.done:
		}
		tr, err := m.runTrained(e)
		if err != nil {
			return nil, fmt.Errorf("service: run %s: %w", j.runID, err)
		}
		return tr, nil
	}
	if m.cfg.ValueRun != nil {
		return &monoValuation{run: func(ctx context.Context) (*comfedsv.Report, *comfedsv.EvalStats, error) {
			tr, err := resolve(ctx)
			if err != nil {
				return nil, nil, err
			}
			rep, stats, err := m.cfg.ValueRun(ctx, tr, j.opts)
			if err != nil {
				return nil, nil, err
			}
			return rep, &stats, nil
		}}
	}
	return &pipelineValuation{build: func(ctx context.Context) (*comfedsv.Valuation, bool, error) {
		tr, err := resolve(ctx)
		if err != nil {
			return nil, false, err
		}
		return comfedsv.NewValuation(tr, j.opts), true, nil
	}}
}

// pipelineValuation adapts the staged comfedsv.Valuation — plus the work
// of obtaining its TrainedRun (inline training or shared-run resolution),
// which belongs on a worker, not in Submit — to the scheduler's stage
// interface.
type pipelineValuation struct {
	build  func(ctx context.Context) (*comfedsv.Valuation, bool, error)
	v      *comfedsv.Valuation
	shared bool
}

func (p *pipelineValuation) Prepare(ctx context.Context) (int, error) {
	v, shared, err := p.build(ctx)
	if err != nil {
		return 0, err
	}
	p.v, p.shared = v, shared
	return v.Prepare(ctx)
}

func (p *pipelineValuation) ObserveShard(ctx context.Context, shard int) error {
	return p.v.ObserveShard(ctx, shard)
}

func (p *pipelineValuation) Complete(ctx context.Context) (int, error) { return p.v.Complete(ctx) }

func (p *pipelineValuation) Extract(ctx context.Context) (*comfedsv.Report, error) {
	return p.v.Extract(ctx)
}

func (p *pipelineValuation) Stats() *comfedsv.EvalStats {
	if !p.shared {
		return nil
	}
	s := p.v.Stats()
	return &s
}

func (p *pipelineValuation) ShardDigest(shard int) string { return p.v.ShardDigest(shard) }

func (p *pipelineValuation) TrainedRun() *comfedsv.TrainedRun { return p.v.TrainedRun() }

func (p *pipelineValuation) ObservationBudget() int { return p.v.ObservationBudget() }

func (p *pipelineValuation) ShardSlice(shard int) (int, int, bool) { return p.v.ShardSlice(shard) }

func (p *pipelineValuation) ImportShard(shard int, obs *comfedsv.ShardObservations) error {
	return p.v.ImportShard(shard, obs)
}

// monoValuation runs a whole legacy Config.Value / Config.ValueRun hook as
// a single observation task, so substituted pipelines keep working on the
// staged scheduler: a one-shard graph whose observe stage is the entire
// valuation.
type monoValuation struct {
	run   func(ctx context.Context) (*comfedsv.Report, *comfedsv.EvalStats, error)
	rep   *comfedsv.Report
	stats *comfedsv.EvalStats
}

func (mv *monoValuation) Prepare(context.Context) (int, error) { return 1, nil }

func (mv *monoValuation) ObserveShard(ctx context.Context, _ int) error {
	rep, stats, err := mv.run(ctx)
	if err != nil {
		return err
	}
	mv.rep, mv.stats = rep, stats
	return nil
}

func (mv *monoValuation) Complete(context.Context) (int, error) { return 0, nil }

func (mv *monoValuation) Extract(context.Context) (*comfedsv.Report, error) { return mv.rep, nil }

func (mv *monoValuation) Stats() *comfedsv.EvalStats { return mv.stats }

// prepareTask is a job's first stage: build the pipeline (training inline
// jobs, resolving shared runs) and plan the observation shards. Before the
// journal checkpoint it persists an inline job's trace, so a crash after
// this point resumes by loading the trace instead of retraining. Its done
// hook fans the shard tasks out.
func (m *Manager) prepareTask(j *job) *task {
	return &task{
		j:     j,
		stage: taskPrepare,
		shard: -1,
		run: func(ctx context.Context) error {
			shards, err := j.val.Prepare(ctx)
			if err != nil {
				return err
			}
			if j.journal != nil && j.runID == "" {
				if tc, ok := j.val.(traceCarrier); ok {
					// Best-effort: an unsaved trace only costs a recovery
					// a deterministic retraining, never correctness.
					if serr := m.cfg.Store.SaveJobRun(j.id, tc.TrainedRun().Run()); serr != nil {
						m.logJob("trace persist failed", j, "error", serr.Error())
					}
				}
			}
			if jerr := m.appendJournal(j, persist.JournalRecord{Type: persist.RecTask, Stage: taskPrepare, Shards: shards}); jerr != nil {
				return jerr
			}
			m.mu.Lock()
			j.shardsTotal = shards
			j.shardsLeft = shards
			m.mu.Unlock()
			return nil
		},
		done: func() {
			tasks := make([]*task, j.shardsTotal)
			for i := range tasks {
				tasks[i] = m.observeTask(j, i)
			}
			m.enqueueLocked(j, tasks...)
		},
	}
}

// observeTask evaluates one observation shard, journals its content
// digest, and — on a recovered job — verifies the re-executed shard
// re-derived exactly the observations the journal recorded, turning any
// determinism violation into a loud failure instead of a silently
// different report. The last shard to finish enqueues the
// merge+completion stage.
func (m *Manager) observeTask(j *job, shard int) *task {
	t := &task{
		j:     j,
		stage: taskObserve,
		shard: shard,
	}
	t.run = func(ctx context.Context) error {
		if t.remote {
			if err := m.remoteObserve(ctx, j, shard); err != nil {
				return err
			}
		} else if err := j.val.ObserveShard(ctx, shard); err != nil {
			return err
		}
		var digest string
		if d, ok := j.val.(shardDigester); ok {
			digest = d.ShardDigest(shard)
		}
		if want, ok := j.wantDigests[shard]; ok && digest != "" && digest != want {
			return fmt.Errorf("service: recovered shard %d re-derived digest %s but the journal recorded %s: determinism violation", shard, digest, want)
		}
		return m.appendJournal(j, persist.JournalRecord{Type: persist.RecTask, Stage: taskObserve, Shard: shard, Digest: digest})
	}
	t.done = func() {
		j.shardsDone++
		j.shardsLeft--
		if j.shardsLeft == 0 {
			m.enqueueLocked(j, m.completeTask(j))
		}
	}
	return t
}

// remoteObserve executes one observation shard through the dispatch
// coordinator: the shard's permutation slice is leased to a remote
// worker, which rebuilds the job's plan from the shared run store and
// returns digest-verified observations that ImportShard installs as if
// the shard had run locally. On a recovered job the journaled shard
// digest is pinned in the coordinator first, so the worker's result is
// compared against it at the wire — the HTTP-layer half of the
// determinism contract. Lost leases and worker failures return transient
// errors; the retry ladder re-executes the task, re-evaluating remote
// eligibility.
func (m *Manager) remoteObserve(ctx context.Context, j *job, shard int) error {
	rv, ok := j.val.(remoteShardable)
	if !ok {
		return fmt.Errorf("service: shard %d claimed remote but the pipeline is not remotable", shard)
	}
	lo, hi, ok := rv.ShardSlice(shard)
	if !ok {
		return fmt.Errorf("service: shard %d has no leasable permutation slice", shard)
	}
	task := dispatch.Task{
		JobID:  j.id,
		RunID:  j.runID,
		Shard:  shard,
		Lo:     lo,
		Hi:     hi,
		Budget: rv.ObservationBudget(),
		Seed:   j.opts.Seed,
	}
	if want, ok := j.wantDigests[shard]; ok {
		if err := m.cfg.Dispatcher.VerifyDigest(task, want); err != nil {
			return err
		}
	}
	obs, cells, err := m.cfg.Dispatcher.Execute(ctx, task)
	if err != nil {
		return err
	}
	if err := rv.ImportShard(shard, obs); err != nil {
		return err
	}
	// The worker's cache delta rides the completion: warm the shared
	// evaluator and persist the batch so the warmth survives a restart.
	return m.absorbCells(j, cells)
}

// completeTask merges the shards in deterministic serial order and runs
// the matrix-completion solve. An adaptive pipeline's Complete may demand
// another wave of observation shards; the done hook then fans those out —
// indices continuing past the shards already run — and the last of them
// enqueues the next completeTask, looping until Complete returns 0 and
// the extraction stage runs.
func (m *Manager) completeTask(j *job) *task {
	var more int
	return &task{
		j:     j,
		stage: taskComplete,
		shard: -1,
		run: func(ctx context.Context) error {
			n, err := j.val.Complete(ctx)
			if err != nil {
				return err
			}
			if jerr := m.appendJournal(j, persist.JournalRecord{Type: persist.RecTask, Stage: taskComplete, Shards: n}); jerr != nil {
				return jerr
			}
			// Merge-wave flush: every cell the wave's shards evaluated is
			// durable before the next wave (or the extraction) runs, so a
			// crash between waves warm-starts the recovery.
			if ferr := m.flushCells(j, cellStageMerge); ferr != nil {
				return ferr
			}
			more = n
			return nil
		},
		done: func() {
			if more == 0 {
				m.enqueueLocked(j, m.extractTask(j))
				return
			}
			start := j.shardsTotal
			j.shardsTotal += more
			j.shardsLeft += more
			tasks := make([]*task, more)
			for i := range tasks {
				tasks[i] = m.observeTask(j, start+i)
			}
			m.enqueueLocked(j, tasks...)
		},
	}
}

// extractTask produces the report, persists it, and finalizes the job. A
// persistence failure must not discard a successfully computed report: the
// job completes with the report resident in memory and the store error
// recorded as a warning on its status.
func (m *Manager) extractTask(j *job) *task {
	return &task{
		j:     j,
		stage: taskShapley,
		shard: -1,
		run: func(ctx context.Context) error {
			rep, err := j.val.Extract(ctx)
			if err != nil {
				return err
			}
			// Job-completion flush, before the report persists: a crash
			// here leaves the journal, and the re-run starts warm.
			if ferr := m.flushCells(j, cellStageExtract); ferr != nil {
				return ferr
			}
			var persistErr error
			if m.cfg.Store != nil {
				if serr := m.cfg.Store.SaveJobReport(j.id, rep); serr != nil {
					persistErr = fmt.Errorf("service: persisting report: %w", serr)
				}
			}
			if persistErr == nil && j.journal != nil {
				// The persisted report alone implies done on recovery, so
				// the journal is spent: checkpoint for the record, then
				// remove it. If the report could not be persisted the
				// journal stays — a restart recomputes the report a
				// warning said would not survive.
				if jerr := m.appendJournal(j, persist.JournalRecord{Type: persist.RecTask, Stage: taskShapley}); jerr != nil {
					return jerr
				}
				if rerr := m.cfg.Store.RemoveJournal(j.id); rerr != nil {
					m.logJob("journal remove failed", j, "error", rerr.Error())
				}
			}
			m.mu.Lock()
			j.report = rep
			j.persistErr = persistErr
			j.cacheStats = j.val.Stats()
			if rep.ObservationsBudget > rep.ObservationsUsed {
				m.obsSkipped += int64(rep.ObservationsBudget - rep.ObservationsUsed)
			}
			m.mu.Unlock()
			return nil
		},
		done: func() {
			m.completeJobLocked(j)
		},
	}
}
