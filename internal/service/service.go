// Package service turns the one-shot comfedsv valuation pipeline into a
// long-running job engine: a Manager owns a bounded worker pool that
// executes submitted valuation requests asynchronously, tracks per-job
// state and progress, supports cancellation through context.Context, and
// mirrors finished reports into a disk-backed persist.JobStore so
// completed work survives restarts. The HTTP layer in internal/api and the
// comfedsvd daemon are thin shells around this package.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"comfedsv"
	"comfedsv/internal/persist"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle: Submit puts a job in StateQueued; a worker moves it to
// StateRunning; it finishes in StateDone or StateFailed (cancellation is a
// failure with ErrCancelled).
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Request is one valuation job submission. Exactly one of two forms is
// valid: inline training (Clients + Test set, RunID empty) trains a
// private trace for this job alone; run-backed (RunID set, Clients/Test
// empty) values against a shared run registered with CreateRun, reusing
// its trace and evaluator cache. Options carries the valuation settings in
// both forms; in the run-backed form its training fields are ignored.
type Request struct {
	RunID   string
	Clients []comfedsv.Client
	Test    comfedsv.Client
	Options comfedsv.Options
}

// Status is a point-in-time snapshot of a job, safe to retain and
// serialize.
type Status struct {
	ID       string            `json:"id"`
	State    State             `json:"state"`
	Progress comfedsv.Progress `json:"progress"`
	// Error is the failure reason for failed jobs. On a done job it is a
	// non-fatal warning (the report computed but could not be persisted,
	// so it will not survive a restart).
	Error string `json:"error,omitempty"`

	// RunID is the shared training run this job values against; empty for
	// jobs with inline training.
	RunID string `json:"run_id,omitempty"`
	// CacheStats, on a done run-backed job, splits the job's distinct
	// utility cells into shared-cache hits (amortized by earlier jobs over
	// the same run) and fresh test-loss evaluations.
	CacheStats *comfedsv.EvalStats `json:"cache_stats,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// Errors returned by Manager methods.
var (
	ErrNotFound  = errors.New("service: no such job")
	ErrNotDone   = errors.New("service: job is not done")
	ErrFailed    = errors.New("service: job failed")
	ErrQueueFull = errors.New("service: job queue is full")
	ErrShutdown  = errors.New("service: manager is shut down")
	ErrCancelled = errors.New("service: job cancelled")
)

// Config sizes and wires a Manager. The zero value is usable: GOMAXPROCS
// workers, a 64-deep queue, no persistence.
type Config struct {
	// Workers is the number of concurrent valuation workers; 0 means
	// GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of jobs waiting to run; 0 means 64.
	// Submissions beyond the bound fail fast with ErrQueueFull.
	QueueDepth int
	// Store, if non-nil, receives every finished report, and its existing
	// reports are exposed as done jobs at startup.
	Store *persist.JobStore
	// RunStore, if non-nil, persists shared training runs; its existing
	// runs are exposed as ready runs at startup (traces load lazily from
	// disk on first use).
	RunStore *persist.RunStore
	// DefaultParallelism is the Options.Parallelism applied to submissions
	// that leave it 0: the per-job CPU budget for the valuation hot path.
	// 0 means a fair share of the machine across the worker pool —
	// GOMAXPROCS divided by Workers, at least 1 — so a fully busy pool
	// does not oversubscribe the host; a job that wants the whole machine
	// can ask for it explicitly in its options.
	DefaultParallelism int
	// Value runs one valuation. Nil means comfedsv.ValueCtx; tests and
	// custom pipelines may substitute their own.
	Value func(ctx context.Context, clients []comfedsv.Client, test comfedsv.Client, opts comfedsv.Options) (*comfedsv.Report, error)
	// Train trains one shared run for the registry. Nil means
	// comfedsv.TrainCtx.
	Train func(ctx context.Context, clients []comfedsv.Client, test comfedsv.Client, opts comfedsv.Options) (*comfedsv.TrainedRun, error)
	// ValueRun runs one valuation against a shared run. Nil means
	// comfedsv.ValueRunCtx.
	ValueRun func(ctx context.Context, tr *comfedsv.TrainedRun, opts comfedsv.Options) (*comfedsv.Report, comfedsv.EvalStats, error)
}

type job struct {
	id       string
	req      Request
	state    State
	progress comfedsv.Progress
	err      error
	report   *comfedsv.Report

	// runID mirrors req.RunID but survives the terminal-state release of
	// the request payload; runReleased guards the run's refcount against
	// double release. cacheStats is recorded when a run-backed valuation
	// completes.
	runID       string
	runReleased bool
	cacheStats  *comfedsv.EvalStats

	cancel context.CancelFunc // non-nil while running

	submitted time.Time
	started   time.Time
	finished  time.Time
}

// Manager executes valuation jobs on a bounded worker pool. The pending
// queue is a slice guarded by mu (not a channel) so that cancelling a
// queued job frees its slot immediately and an expired Shutdown can abort
// the backlog instead of draining it.
type Manager struct {
	cfg   Config
	wg    sync.WaitGroup // valuation workers
	runWG sync.WaitGroup // shared-run training goroutines

	mu       sync.Mutex
	cond     *sync.Cond // signaled on enqueue, close, and abort
	pending  []*job     // FIFO of queued jobs
	jobs     map[string]*job
	order    []string
	runs     map[string]*runEntry
	runOrder []string
	closed   bool
	aborted  bool
}

// NewManager starts a manager and its worker pool. If cfg.Store holds
// reports from a previous process, they appear immediately as done jobs
// whose reports are loaded lazily from disk.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.DefaultParallelism <= 0 {
		cfg.DefaultParallelism = runtime.GOMAXPROCS(0) / cfg.Workers
		if cfg.DefaultParallelism < 1 {
			cfg.DefaultParallelism = 1
		}
	}
	if cfg.Value == nil {
		cfg.Value = comfedsv.ValueCtx
	}
	if cfg.Train == nil {
		cfg.Train = comfedsv.TrainCtx
	}
	if cfg.ValueRun == nil {
		cfg.ValueRun = comfedsv.ValueRunCtx
	}
	m := &Manager{
		cfg:  cfg,
		jobs: make(map[string]*job),
		runs: make(map[string]*runEntry),
	}
	m.cond = sync.NewCond(&m.mu)
	if cfg.RunStore != nil {
		ids, err := cfg.RunStore.ListRuns()
		if err != nil {
			return nil, fmt.Errorf("service: scanning run store: %w", err)
		}
		for _, id := range ids {
			done := make(chan struct{})
			close(done)
			e := &runEntry{id: id, state: RunReady, done: done, persisted: true}
			// The original timestamps are gone with the old process; the
			// trace file's mtime is the best available stand-in.
			if mtime, err := cfg.RunStore.ModTime(id); err == nil {
				e.created = mtime
				e.trained = mtime
			}
			m.runs[id] = e
			m.runOrder = append(m.runOrder, id)
		}
	}
	if cfg.Store != nil {
		ids, err := cfg.Store.ListJobReports()
		if err != nil {
			return nil, fmt.Errorf("service: scanning job store: %w", err)
		}
		for _, id := range ids {
			j := &job{id: id, state: StateDone}
			// The original timestamps are gone with the old process; the
			// report file's mtime is the best available stand-in.
			if mtime, err := cfg.Store.ReportModTime(id); err == nil {
				j.submitted = mtime
				j.finished = mtime
			}
			m.jobs[id] = j
			m.order = append(m.order, id)
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Workers returns the worker-pool size.
func (m *Manager) Workers() int { return m.cfg.Workers }

// DefaultParallelism returns the per-job parallelism applied to submissions
// that don't set their own.
func (m *Manager) DefaultParallelism() int { return m.cfg.DefaultParallelism }

// Submit validates run references and queue capacity — the pipeline itself
// rejects otherwise malformed requests when the job runs — and returns the
// new job's ID, or ErrQueueFull / ErrShutdown / ErrRunNotFound. A
// run-backed submission pins its run (DeleteRun refuses until the job is
// terminal); a job may reference a run that is still training and will
// wait for it.
func (m *Manager) Submit(req Request) (string, error) {
	j := &job{
		id:        newJobID(),
		req:       req,
		runID:     req.RunID,
		state:     StateQueued,
		submitted: time.Now(),
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return "", ErrShutdown
	}
	if len(m.pending) >= m.cfg.QueueDepth {
		return "", ErrQueueFull
	}
	if req.RunID != "" {
		if len(req.Clients) > 0 || len(req.Test.X) > 0 || len(req.Test.Y) > 0 {
			return "", errors.New("service: request has both run_id and inline clients/test")
		}
		e, ok := m.runs[req.RunID]
		if !ok {
			return "", fmt.Errorf("%w: %s", ErrRunNotFound, req.RunID)
		}
		e.refs++
	}
	m.pending = append(m.pending, j)
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.cond.Signal()
	return j.id, nil
}

// Status returns a snapshot of the job.
func (m *Manager) Status(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return j.snapshot(), nil
}

// List returns snapshots of every known job in submission order (jobs
// recovered from the store come first).
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].snapshot())
	}
	return out
}

// Counts returns the number of jobs in each state.
func (m *Manager) Counts() map[State]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	counts := make(map[State]int, 4)
	for _, j := range m.jobs {
		counts[j.state]++
	}
	return counts
}

// Report returns the finished report of a done job, loading it from the
// store when the report is not resident (a job recovered from a previous
// process). It returns ErrNotDone while the job is queued or running and
// ErrFailed (wrapping the job's failure error) for terminally failed jobs,
// so callers can distinguish retry-later from never.
func (m *Manager) Report(id string) (*comfedsv.Report, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	switch {
	case j.state == StateDone && j.report != nil:
		rep := j.report
		m.mu.Unlock()
		return rep, nil
	case j.state == StateFailed:
		err := j.err
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %w", ErrFailed, err)
	case j.state != StateDone:
		m.mu.Unlock()
		return nil, ErrNotDone
	}
	m.mu.Unlock()

	// Done but not resident: recover from disk outside the lock.
	if m.cfg.Store == nil {
		return nil, fmt.Errorf("service: job %s report not resident and no store configured", id)
	}
	var rep comfedsv.Report
	if err := m.cfg.Store.LoadJobReport(id, &rep); err != nil {
		return nil, err
	}
	m.mu.Lock()
	j.report = &rep
	m.mu.Unlock()
	return &rep, nil
}

// Cancel stops a job: a queued job fails immediately with ErrCancelled, a
// running job has its context cancelled (it fails once the pipeline
// observes the cancellation at the next round boundary). Cancelling a
// terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return ErrNotFound
	}
	switch j.state {
	case StateQueued:
		m.failLocked(j, ErrCancelled)
		for i, p := range m.pending {
			if p == j {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				break
			}
		}
	case StateRunning:
		j.cancel()
	}
	return nil
}

// failLocked moves a non-terminal job to StateFailed, releases its
// request payload (client datasets can be large; only the report matters
// after a terminal state), and drops its shared-run reference. Callers
// hold m.mu.
func (m *Manager) failLocked(j *job, err error) {
	j.state = StateFailed
	j.err = err
	j.finished = time.Now()
	j.req = Request{}
	m.releaseRunLocked(j)
}

// Shutdown stops accepting submissions and run registrations, drains
// queued jobs (including ones waiting for a run still in training), and
// waits for workers and training goroutines to finish. If the context
// expires first, the remaining backlog is failed with ErrCancelled,
// running jobs and in-flight trainings are cancelled, and Shutdown returns
// the context's error once both pools exit.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		m.cond.Broadcast()
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		m.runWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		m.aborted = true
		for _, j := range m.pending {
			m.failLocked(j, ErrCancelled)
		}
		m.pending = nil
		for _, j := range m.jobs {
			if j.state == StateRunning {
				j.cancel()
			}
		}
		for _, e := range m.runs {
			if e.state == RunTraining && e.cancelTrain != nil {
				e.cancelTrain()
			}
		}
		m.cond.Broadcast()
		m.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		j := m.popEligibleLocked()
		for j == nil {
			if len(m.pending) == 0 && (m.closed || m.aborted) {
				m.mu.Unlock()
				return
			}
			// Nothing runnable: either the queue is empty, or every queued
			// job references a run still in training (its completion
			// broadcasts). Either way the worker must not spin or park on
			// one job — other submissions stay servable.
			m.cond.Wait()
			j = m.popEligibleLocked()
		}
		m.mu.Unlock()
		m.runJob(j)
	}
}

// popEligibleLocked removes and returns the first queued job that can make
// progress right now. Jobs referencing a run that is still training are
// skipped — they stay queued (not parked on a worker) so the pool keeps
// serving unrelated jobs during a long training; trainRun's completion
// broadcast re-examines them. During an abort everything is eligible: the
// runJob preamble fails aborted jobs immediately. Callers hold m.mu.
func (m *Manager) popEligibleLocked() *job {
	for i, j := range m.pending {
		if j.runID != "" && !m.aborted {
			if e, ok := m.runs[j.runID]; ok && e.state == RunTraining {
				continue
			}
		}
		m.pending = append(m.pending[:i], m.pending[i+1:]...)
		return j
	}
	return nil
}

func (m *Manager) runJob(j *job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	m.mu.Lock()
	if j.state != StateQueued {
		m.mu.Unlock()
		return
	}
	if m.aborted {
		m.failLocked(j, ErrCancelled)
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	m.mu.Unlock()

	rep, err := m.value(ctx, j)
	// A persistence failure must not discard a successfully computed
	// report: the job completes with the report resident in memory and the
	// store error recorded as a warning on its status.
	var persistErr error
	if err == nil && m.cfg.Store != nil {
		if serr := m.cfg.Store.SaveJobReport(j.id, rep); serr != nil {
			persistErr = fmt.Errorf("service: persisting report: %w", serr)
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	j.cancel = nil
	if err != nil {
		if errors.Is(err, context.Canceled) {
			err = ErrCancelled
		}
		m.failLocked(j, err)
		return
	}
	j.state = StateDone
	j.report = rep
	j.err = persistErr
	j.finished = time.Now()
	j.req = Request{}
	m.releaseRunLocked(j)
}

// value runs one valuation, converting a panic in the pipeline (or in a
// substituted Config.Value / Config.ValueRun) into a job failure: one
// poisoned job must not take down the daemon and every other job with it.
func (m *Manager) value(ctx context.Context, j *job) (rep *comfedsv.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, fmt.Errorf("service: job panicked: %v", r)
		}
	}()
	opts := j.req.Options
	if opts.Parallelism == 0 {
		opts.Parallelism = m.cfg.DefaultParallelism
	}
	prev := opts.OnProgress
	opts.OnProgress = func(p comfedsv.Progress) {
		m.mu.Lock()
		j.progress = p
		m.mu.Unlock()
		if prev != nil {
			prev(p)
		}
	}
	if j.runID == "" {
		return m.cfg.Value(ctx, j.req.Clients, j.req.Test, opts)
	}

	// Run-backed job: wait for the shared run (it may still be training —
	// a cancelled job stops waiting immediately), then value against its
	// trace and shared cache.
	m.mu.Lock()
	e := m.runs[j.runID] // pinned by the submit-time refcount
	m.mu.Unlock()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-e.done:
	}
	tr, err := m.runTrained(e)
	if err != nil {
		return nil, fmt.Errorf("service: run %s: %w", j.runID, err)
	}
	rep, stats, err := m.cfg.ValueRun(ctx, tr, opts)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	j.cacheStats = &stats
	m.mu.Unlock()
	return rep, nil
}

// snapshot must be called with m.mu held.
func (j *job) snapshot() Status {
	s := Status{
		ID:          j.id,
		State:       j.state,
		Progress:    j.progress,
		RunID:       j.runID,
		SubmittedAt: j.submitted,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	if j.cacheStats != nil {
		cs := *j.cacheStats
		s.CacheStats = &cs
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	return s
}

func newJobID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: crypto/rand failed: %v", err))
	}
	return "job-" + hex.EncodeToString(b[:])
}
