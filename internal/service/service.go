// Package service turns the one-shot comfedsv valuation pipeline into a
// long-running job engine. A Manager decomposes every submitted job into a
// staged task graph — prepare (training or shared-run resolution, FedSV,
// observation planning), N observation shards, merge+completion, Shapley
// extraction — and schedules the tasks of all jobs on one shared worker
// pool with per-job round-robin fairness, so one large valuation no longer
// monopolizes a worker for its whole lifetime while small jobs starve
// behind it. The Manager tracks per-job state and per-stage progress,
// supports cancellation through context.Context (draining a cancelled
// job's queued shards immediately), and mirrors finished reports into a
// disk-backed persist.JobStore so completed work survives restarts. The
// HTTP layer in internal/api and the comfedsvd daemon are thin shells
// around this package.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"comfedsv"
	"comfedsv/internal/dispatch"
	"comfedsv/internal/faultinject"
	"comfedsv/internal/persist"
	"comfedsv/internal/telemetry"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle: Submit puts a job in StateQueued; the scheduler moves it
// to StateRunning when its first task starts; it finishes in StateDone or
// StateFailed (cancellation is a failure with ErrCancelled).
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Request is one valuation job submission. Exactly one of two forms is
// valid: inline training (Clients + Test set, RunID empty) trains a
// private trace for this job alone; run-backed (RunID set, Clients/Test
// empty) values against a shared run registered with CreateRun, reusing
// its trace and evaluator cache. Options carries the valuation settings in
// both forms; in the run-backed form its training fields are ignored.
type Request struct {
	RunID   string
	Clients []comfedsv.Client
	Test    comfedsv.Client
	Options comfedsv.Options
}

// Status is a point-in-time snapshot of a job, safe to retain and
// serialize.
type Status struct {
	ID       string            `json:"id"`
	State    State             `json:"state"`
	Progress comfedsv.Progress `json:"progress"`
	// Error is the failure reason for failed jobs. On a done job it is a
	// non-fatal warning (the report computed but could not be persisted,
	// so it will not survive a restart).
	Error string `json:"error,omitempty"`

	// Retries counts transient task failures this job recovered from via
	// re-execution; LastError is the most recent such failure. A done job
	// with nonzero Retries weathered real faults on the way.
	Retries   int    `json:"retries,omitempty"`
	LastError string `json:"last_error,omitempty"`

	// Shards and ShardsDone describe the observation stage's task
	// decomposition: how many shard tasks the scheduler fans this job's
	// Monte-Carlo observation work out into, and how many have completed.
	// Both are 0 until the prepare stage has planned the job. An adaptive
	// job's Shards grows wave by wave as its Complete schedules more.
	Shards     int `json:"shards,omitempty"`
	ShardsDone int `json:"shards_done,omitempty"`

	// ObservationsUsed and ObservationsBudget, on a done adaptive
	// (tolerance-driven) job, report the early-stop savings: how many
	// sampled permutations the run merged before its estimates converged,
	// against the fixed budget it was capped at. Both are 0 (omitted) for
	// fixed-budget and exact jobs.
	ObservationsUsed   int `json:"observations_used,omitempty"`
	ObservationsBudget int `json:"observations_budget,omitempty"`

	// RunID is the shared training run this job values against; empty for
	// jobs with inline training.
	RunID string `json:"run_id,omitempty"`
	// CacheStats, on a done run-backed job, splits the job's distinct
	// utility cells into shared-cache hits (amortized by earlier jobs over
	// the same run) and fresh test-loss evaluations.
	CacheStats *comfedsv.EvalStats `json:"cache_stats,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	// StageSeconds is the job's cumulative wall-clock execution time by
	// scheduler stage (prepare / observe / complete / shapley), summed
	// across the stage's tasks — observe is the total over all shards, not
	// elapsed time, so with parallel shards it can exceed finished−started.
	// Empty until the first task finishes.
	StageSeconds map[string]float64 `json:"stage_seconds,omitempty"`
}

// Errors returned by Manager methods.
var (
	ErrNotFound  = errors.New("service: no such job")
	ErrNotDone   = errors.New("service: job is not done")
	ErrFailed    = errors.New("service: job failed")
	ErrJobActive = errors.New("service: job is not terminal")
	ErrQueueFull = errors.New("service: job queue is full")
	ErrShutdown  = errors.New("service: manager is shut down")
	ErrCancelled = errors.New("service: job cancelled")
)

// Config sizes and wires a Manager. The zero value is usable: GOMAXPROCS
// workers, a 64-deep queue, no persistence.
type Config struct {
	// Workers is the number of concurrent task workers; 0 means
	// GOMAXPROCS. A worker runs one stage task at a time — not one whole
	// job — so K jobs × N shards interleave across the pool.
	Workers int
	// QueueDepth bounds the number of jobs waiting to start; 0 means 64.
	// Submissions beyond the bound fail fast with ErrQueueFull. Stage
	// tasks of jobs already started are not counted against it.
	QueueDepth int
	// Store, if non-nil, receives every finished report, and its existing
	// reports are exposed as done jobs at startup.
	Store *persist.JobStore
	// RunStore, if non-nil, persists shared training runs; its existing
	// runs are exposed as ready runs at startup (traces load lazily from
	// disk on first use).
	RunStore *persist.RunStore
	// DisableCellCache turns off the persistent run-scoped utility-cell
	// cache. When a RunStore is configured (and this is false), every
	// shared run carries a `<runID>.cells` sidecar: newly evaluated
	// utility cells are flushed to it at merge-wave and job-completion
	// boundaries, and a run's evaluator is warm-started from it when the
	// trace is trained or recovered — so a second job over the same run,
	// even in a fresh process or on a remote worker, skips the test-loss
	// evaluations the first job already paid for. Cells are pure functions
	// of the trace, so warmth never changes a byte of any report; the knob
	// exists for A/B comparison and for tests that need a guaranteed cold
	// cache.
	DisableCellCache bool
	// DefaultParallelism is the Options.Parallelism applied to submissions
	// that leave it 0: the per-task CPU budget for the valuation hot path.
	// 0 means a fair share of the machine across the worker pool —
	// GOMAXPROCS divided by Workers, at least 1 — so a fully busy pool
	// does not oversubscribe the host; a job that wants the whole machine
	// can ask for it explicitly in its options.
	DefaultParallelism int
	// DefaultShards is the Options.Shards applied to submissions that
	// leave it 0: how many observation shard tasks one job's Monte-Carlo
	// stage is split into. 0 means 1 (no sharding). Sharding changes
	// scheduling only, never a byte of any report.
	DefaultShards int
	// DefaultTolerance, if positive, is the Options.Tolerance applied to
	// Monte-Carlo submissions that leave it 0: every such job runs the
	// adaptive (tolerance-driven) pipeline with its sample count as the
	// permutation budget, stopping early once the per-client estimates
	// stabilize. 0 keeps fixed-budget valuation for jobs that don't ask
	// for a tolerance. Exact-pipeline submissions (no samples) are never
	// switched.
	DefaultTolerance float64
	// JobTTL, if positive, evicts terminal jobs — from memory and, when a
	// Store is configured, from disk — once they have been finished for at
	// least this long. 0 keeps jobs forever.
	JobTTL time.Duration
	// Value, if non-nil, replaces the staged pipeline for inline jobs with
	// a single monolithic task — the substitution hook tests and custom
	// pipelines use. Nil (the default) runs the staged comfedsv pipeline.
	Value func(ctx context.Context, clients []comfedsv.Client, test comfedsv.Client, opts comfedsv.Options) (*comfedsv.Report, error)
	// Train trains one shared run for the registry. Nil means
	// comfedsv.TrainCtx.
	Train func(ctx context.Context, clients []comfedsv.Client, test comfedsv.Client, opts comfedsv.Options) (*comfedsv.TrainedRun, error)
	// ValueRun, if non-nil, replaces the staged pipeline for run-backed
	// jobs with a single monolithic task. Nil runs the staged pipeline.
	ValueRun func(ctx context.Context, tr *comfedsv.TrainedRun, opts comfedsv.Options) (*comfedsv.Report, comfedsv.EvalStats, error)
	// Logger, if non-nil, receives structured job and run lifecycle events
	// (submit/start/finish/fail/evict transitions with job and run IDs).
	// Nil disables lifecycle logging. The logger only observes; it never
	// affects scheduling or reports.
	Logger *slog.Logger

	// MaxTaskRetries is how many times a transiently failed stage task
	// (one whose error chain exposes Transient() true, or a task
	// timeout) is re-executed before the failure becomes fatal to its
	// job. 0 disables retries. Re-execution is safe because every stage
	// is a deterministic function of the job's request: a retried shard
	// re-derives exactly the observations the failed attempt would have.
	MaxTaskRetries int
	// RetryBaseDelay is the first retry's backoff; attempt k waits
	// base<<k plus a jitter seeded from the task's identity, so the
	// schedule is deterministic for the chaos suites while retries of
	// unrelated tasks still spread out. 0 means 50ms.
	RetryBaseDelay time.Duration
	// TaskTimeout, if positive, bounds each stage-task execution; an
	// expired task fails transiently and enters the retry ladder.
	TaskTimeout time.Duration
	// JobTimeout, if positive, bounds a job's running time (started→
	// finished); expiry fails the job fatally with ErrJobDeadline.
	JobTimeout time.Duration
	// Clock substitutes the scheduler's time source for retry backoff
	// and deadlines. Nil means the real clock. Chaos suites inject
	// faultinject.ManualClock to test backoff and deadlines instantly.
	Clock Clock
	// FaultHook, if non-nil, is consulted at every task execution and
	// journal append — the deterministic fault-injection seam. Faults it
	// returns become task failures (or panics, or simulated crashes);
	// nil, the production setting, costs nothing.
	FaultHook faultinject.Hook

	// Dispatcher, if non-nil, lets the scheduler lease observation-shard
	// tasks to remote worker processes instead of running them on the
	// local pool — the one knob behind which local and distributed
	// execution coexist. A shard is leased only when it is remotable
	// (run-backed job with a persisted trace workers can hydrate, a
	// leasable permutation slice) and a live worker is registered;
	// otherwise it runs locally. A lease lost to a dead or expired worker
	// fails transiently and rides the retry ladder, which re-evaluates
	// eligibility — so a dying worker fleet degrades to local execution,
	// never to a stuck or differing job.
	Dispatcher *dispatch.Coordinator

	// buildValuation, if non-nil, replaces the whole staged pipeline —
	// in-package tests use it to script task graphs with controlled
	// timing. It must be cheap and infallible; the returned valuation's
	// stages carry the real work.
	buildValuation func(req Request, opts comfedsv.Options) stagedValuation
}

type job struct {
	id       string
	req      Request
	opts     comfedsv.Options // effective options: defaults applied, progress hooked
	state    State
	progress comfedsv.Progress
	err      error
	report   *comfedsv.Report

	// runID mirrors req.RunID but survives the terminal-state release of
	// the request payload; runReleased guards the run's refcount against
	// double release. cacheStats is recorded when a shared-cache valuation
	// completes.
	runID       string
	runReleased bool
	cacheStats  *comfedsv.EvalStats

	// stageNanos accumulates wall-clock execution time by stage name
	// across the job's tasks (shard durations sum into one observe entry).
	// Guarded by Manager.mu; retained after the terminal state so status
	// keeps reporting where the job's time went.
	stageNanos map[string]int64

	// Scheduler state. ctx spans the job's whole execution; cancel is
	// called on Cancel, failure, completion, and abort. ready holds the
	// stage tasks eligible to run now (FIFO within the job); inflight
	// counts tasks currently executing on workers. failed records the
	// first task failure — the job finalizes once the last in-flight task
	// drains. val is the staged pipeline, built at submit, released on
	// completion.
	ctx        context.Context
	cancel     context.CancelFunc
	ready      []*task
	inflight   int
	inRing     bool
	failed     error
	val        stagedValuation
	persistErr error

	// Crash-safety state. journal is the job's append-only task journal
	// (nil without a Store); sealJ hands it off to sealJournal exactly
	// once at the terminal transition. recovered marks a job rebuilt
	// from a journal; wantDigests holds the journaled observation-shard
	// content hashes a recovered job verifies its re-executed shards
	// against. pendingRetries counts transiently failed tasks sleeping
	// out their backoff; retries/lastErr feed the status fields.
	// userCancelled distinguishes an explicit Cancel (journal removed —
	// a restart must not resurrect the job) from a shutdown cancellation
	// (journal kept — a restart resumes the job).
	journal        *persist.Journal
	sealJ          *persist.Journal
	recovered      bool
	userCancelled  bool
	wantDigests    map[int]string
	pendingRetries int
	retries        int
	lastErr        string

	shardsTotal int
	shardsDone  int
	shardsLeft  int

	submitted time.Time
	started   time.Time
	finished  time.Time
}

// task is one schedulable unit of a job's stage graph. run executes
// outside the manager lock with the job's context; done advances the stage
// graph (enqueue successors or finalize the job) and is called under the
// manager lock after run returns nil.
type task struct {
	j     *job
	stage string
	shard int // observation shard index; -1 for non-shard stages
	// attempt counts prior executions of this task; the retry ladder
	// re-enqueues the same task with attempt incremented.
	attempt int
	// remote marks an observation shard claimed for lease-based execution
	// on a remote worker. It is decided anew at every claim (a retry of a
	// lost lease may run locally if the worker fleet emptied) and makes
	// the pool spawn a tracked waiter goroutine instead of parking a pool
	// worker on the lease.
	remote bool
	run    func(ctx context.Context) error
	done   func()
}

// Task stage names, used by the metrics counters and the fairness tests.
const (
	taskPrepare  = "prepare"
	taskObserve  = "observe"
	taskComplete = "complete"
	taskShapley  = "shapley"
)

// Manager executes valuation jobs as staged task graphs on a bounded
// worker pool. Scheduling state is a ring of jobs with ready tasks,
// guarded by mu (not a channel): the pool pops tasks round-robin across
// jobs — one task per turn — so a 1000-shard job and a 1-shard job
// submitted behind it interleave instead of the big job holding the head
// of a FIFO, and cancelling a job can drain its queued tasks immediately.
type Manager struct {
	cfg   Config
	wg    sync.WaitGroup // task workers + TTL janitor
	runWG sync.WaitGroup // shared-run training goroutines

	mu       sync.Mutex
	cond     *sync.Cond // signaled on task enqueue, task completion, close, and abort
	ring     []*job     // round-robin ring of jobs with ready tasks
	queued   int        // jobs in StateQueued (bounded by QueueDepth)
	inflight int        // tasks currently executing across all jobs
	jobs     map[string]*job
	order    []string
	runs     map[string]*runEntry
	runOrder []string
	closed   bool
	aborted  bool

	tasksDone   map[string]int64 // executed task counts by stage name
	jobsEvicted int64
	obsSkipped  int64 // budgeted-but-unsampled permutations of done adaptive jobs
	janitorStop chan struct{}

	// Cell-cache counters (guarded by mu): cells warm-started into run
	// evaluators from sidecars and worker deltas, cells durably appended
	// to sidecars, and sidecars quarantined as corrupt.
	cellsPreloaded int64
	cellsPersisted int64
	cellsCorrupt   int64

	// Fault-tolerance state. pendingRetries counts tasks sleeping out a
	// retry backoff across all jobs — workers must not exit while one is
	// pending. taskRetries counts retries by stage; jobsRecovered counts
	// jobs resumed from journals at startup; jobsRejected counts
	// submissions turned away by the queue bound.
	pendingRetries int
	taskRetries    map[string]int64
	jobsRecovered  int64
	jobsRejected   int64
	clock          Clock

	// Latency telemetry. taskHist holds per-stage task-execution
	// histograms (map writes guarded by mu; the histograms themselves are
	// atomic). valHist holds per-pipeline-stage histograms fed by the
	// comfedsv.Options.OnStageTime hook — its keys are fixed at
	// construction and the map is never written afterwards, so the hook
	// reads it without the lock. jobHist tracks submit→finish of done
	// jobs; waitHist tracks submit→start queue wait.
	taskHist map[string]*telemetry.Histogram
	valHist  map[string]*telemetry.Histogram
	jobHist  *telemetry.Histogram
	waitHist *telemetry.Histogram
}

// NewManager starts a manager and its worker pool. If cfg.Store holds
// reports from a previous process, they appear immediately as done jobs
// whose reports are loaded lazily from disk.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.DefaultParallelism <= 0 {
		cfg.DefaultParallelism = runtime.GOMAXPROCS(0) / cfg.Workers
		if cfg.DefaultParallelism < 1 {
			cfg.DefaultParallelism = 1
		}
	}
	if cfg.DefaultShards <= 0 {
		cfg.DefaultShards = 1
	}
	if cfg.Train == nil {
		cfg.Train = comfedsv.TrainCtx
	}
	if cfg.RetryBaseDelay <= 0 {
		cfg.RetryBaseDelay = 50 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	m := &Manager{
		cfg:         cfg,
		clock:       cfg.Clock,
		jobs:        make(map[string]*job),
		runs:        make(map[string]*runEntry),
		tasksDone:   make(map[string]int64),
		taskRetries: make(map[string]int64),
		janitorStop: make(chan struct{}),
		taskHist:    make(map[string]*telemetry.Histogram, 4),
		valHist:     make(map[string]*telemetry.Histogram, 5),
		jobHist:     telemetry.NewHistogram(),
		waitHist:    telemetry.NewHistogram(),
	}
	for _, stage := range []string{taskPrepare, taskObserve, taskComplete, taskShapley} {
		m.taskHist[stage] = telemetry.NewHistogram()
	}
	for _, stage := range []string{comfedsv.StageTrain, comfedsv.StageFedSV, comfedsv.StageObserve, comfedsv.StageComplete, comfedsv.StageShapley} {
		m.valHist[stage] = telemetry.NewHistogram()
	}
	m.cond = sync.NewCond(&m.mu)
	if cfg.RunStore != nil {
		ids, err := cfg.RunStore.ListRuns()
		if err != nil {
			return nil, fmt.Errorf("service: scanning run store: %w", err)
		}
		for _, id := range ids {
			done := make(chan struct{})
			close(done)
			e := &runEntry{id: id, state: RunReady, done: done, persisted: true}
			// The original timestamps are gone with the old process; the
			// trace file's mtime is the best available stand-in.
			if mtime, err := cfg.RunStore.ModTime(id); err == nil {
				e.created = mtime
				e.trained = mtime
			}
			m.runs[id] = e
			m.runOrder = append(m.runOrder, id)
		}
	}
	if cfg.Store != nil {
		ids, err := cfg.Store.ListJobReports()
		if err != nil {
			return nil, fmt.Errorf("service: scanning job store: %w", err)
		}
		for _, id := range ids {
			j := &job{id: id, state: StateDone}
			// The original timestamps are gone with the old process; the
			// report file's mtime is the best available stand-in.
			if mtime, err := cfg.Store.ReportModTime(id); err == nil {
				j.submitted = mtime
				j.finished = mtime
			}
			m.jobs[id] = j
			m.order = append(m.order, id)
		}
		// Replay the journals of jobs a previous process left in flight —
		// before the worker pool starts, so recovery needs no locking and
		// recovered jobs are queued ahead of fresh submissions.
		if err := m.recoverJournals(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	if cfg.JobTTL > 0 {
		m.wg.Add(1)
		go m.janitor(cfg.JobTTL)
	}
	return m, nil
}

// Workers returns the worker-pool size.
func (m *Manager) Workers() int { return m.cfg.Workers }

// DefaultParallelism returns the per-task parallelism applied to
// submissions that don't set their own.
func (m *Manager) DefaultParallelism() int { return m.cfg.DefaultParallelism }

// DefaultShards returns the observation shard count applied to submissions
// that don't set their own.
func (m *Manager) DefaultShards() int { return m.cfg.DefaultShards }

// Submit validates run references and queue capacity — the pipeline itself
// rejects otherwise malformed requests when the job runs — and returns the
// new job's ID, or ErrQueueFull / ErrShutdown / ErrRunNotFound. A
// run-backed submission pins its run (DeleteRun refuses until the job is
// terminal); a job may reference a run that is still training and will
// wait for it without parking a worker.
func (m *Manager) Submit(req Request) (string, error) {
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:        newJobID(),
		req:       req,
		runID:     req.RunID,
		state:     StateQueued,
		ctx:       ctx,
		cancel:    cancel,
		submitted: time.Now(),
	}
	opts := req.Options
	if opts.Parallelism == 0 {
		opts.Parallelism = m.cfg.DefaultParallelism
	}
	if opts.Shards == 0 {
		opts.Shards = m.cfg.DefaultShards
	}
	// A daemon-wide default tolerance switches Monte-Carlo jobs that did
	// not pick a mode themselves to adaptive valuation; jobs that set
	// their own tolerance, ask for an explicit budget via MaxPermutations,
	// or run the exact pipeline are left alone.
	if m.cfg.DefaultTolerance > 0 && opts.Tolerance == 0 && opts.MaxPermutations == 0 && opts.MonteCarloSamples > 0 {
		opts.Tolerance = m.cfg.DefaultTolerance
	}
	j.opts = m.instrumentOptions(j, opts)

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		return "", ErrShutdown
	}
	if m.queued >= m.cfg.QueueDepth {
		m.jobsRejected++
		m.mu.Unlock()
		cancel()
		return "", ErrQueueFull
	}
	if req.RunID != "" {
		if len(req.Clients) > 0 || len(req.Test.X) > 0 || len(req.Test.Y) > 0 {
			m.mu.Unlock()
			cancel()
			return "", errors.New("service: request has both run_id and inline clients/test")
		}
		e, ok := m.runs[req.RunID]
		if !ok {
			m.mu.Unlock()
			cancel()
			return "", fmt.Errorf("%w: %s", ErrRunNotFound, req.RunID)
		}
		e.refs++
	}
	j.val = m.newValuation(j)
	m.queued++
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.mu.Unlock()

	// The submit record must be durable before the first task can run —
	// a crash at any later point can then always re-derive the job. The
	// fsync happens outside the lock; the job is visible (queued) but has
	// no ready task until the journal is attached.
	var crashErr error
	if m.cfg.Store != nil {
		crashErr = m.openSubmitJournal(j)
	}

	m.mu.Lock()
	switch {
	case crashErr != nil:
		// Simulated process death during the submit append: the job dies
		// the way the process would have, never having run a task.
		if !j.state.Terminal() {
			j.failed = crashErr
			m.failLocked(j, crashErr)
		}
		m.mu.Unlock()
		m.sealJournal(j)
	case j.state.Terminal():
		// Cancelled in the submit window; nothing to schedule.
		m.mu.Unlock()
		m.sealJournal(j)
	default:
		m.enqueueLocked(j, m.prepareTask(j))
		m.mu.Unlock()
	}
	m.logJob("job submitted", j, "shards_requested", opts.Shards, "parallelism", opts.Parallelism)
	return j.id, nil
}

// logJob emits one job-lifecycle record when a logger is configured. The
// attrs always include the job ID and, for run-backed jobs, the run ID.
// Lifecycle transitions are rare next to task executions (the per-task hot
// path never logs), so the terminal-state call sites tolerate holding m.mu
// for the one-line write.
func (m *Manager) logJob(msg string, j *job, args ...any) {
	if m.cfg.Logger == nil {
		return
	}
	fields := make([]any, 0, len(args)+4)
	fields = append(fields, "job_id", j.id)
	if j.runID != "" {
		fields = append(fields, "run_id", j.runID)
	}
	fields = append(fields, args...)
	m.cfg.Logger.Info(msg, fields...)
}

// Status returns a snapshot of the job.
func (m *Manager) Status(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return j.snapshot(), nil
}

// List returns snapshots of every known job in submission order (jobs
// recovered from the store come first).
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].snapshot())
	}
	return out
}

// Counts returns the number of jobs in each state.
func (m *Manager) Counts() map[State]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	counts := make(map[State]int, 4)
	for _, j := range m.jobs {
		counts[j.state]++
	}
	return counts
}

// Report returns the finished report of a done job, loading it from the
// store when the report is not resident (a job recovered from a previous
// process). It returns ErrNotDone while the job is queued or running and
// ErrFailed (wrapping the job's failure error) for terminally failed jobs,
// so callers can distinguish retry-later from never.
func (m *Manager) Report(id string) (*comfedsv.Report, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	switch {
	case j.state == StateDone && j.report != nil:
		rep := j.report
		m.mu.Unlock()
		return rep, nil
	case j.state == StateFailed:
		err := j.err
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %w", ErrFailed, err)
	case j.state != StateDone:
		m.mu.Unlock()
		return nil, ErrNotDone
	}
	m.mu.Unlock()

	// Done but not resident: recover from disk outside the lock.
	if m.cfg.Store == nil {
		return nil, fmt.Errorf("service: job %s report not resident and no store configured", id)
	}
	var rep comfedsv.Report
	if err := m.cfg.Store.LoadJobReport(id, &rep); err != nil {
		return nil, err
	}
	m.mu.Lock()
	j.report = &rep
	m.mu.Unlock()
	return &rep, nil
}

// Cancel stops a job: a queued job fails immediately with ErrCancelled; a
// running job has its context cancelled and its remaining queued stage
// tasks drained from the scheduler, then fails once its in-flight tasks
// observe the cancellation. Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrNotFound
	}
	seal := false
	switch j.state {
	case StateQueued:
		j.userCancelled = true
		m.drainLocked(j)
		m.failLocked(j, ErrCancelled)
		seal = true
	case StateRunning:
		j.userCancelled = true
		j.cancel()
		m.drainLocked(j)
		if j.failed == nil {
			j.failed = ErrCancelled
		}
		if j.inflight == 0 && j.pendingRetries == 0 {
			m.failLocked(j, j.failed)
			seal = true
		}
	}
	m.mu.Unlock()
	if seal {
		m.sealJournal(j)
	}
	return nil
}

// DeleteJob removes a terminal job from the manager and, when a Store is
// configured, deletes its persisted artifacts. Deleting a queued or
// running job fails with ErrJobActive — cancel it first.
func (m *Manager) DeleteJob(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrNotFound
	}
	if !j.state.Terminal() {
		state := j.state
		m.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrJobActive, id, state)
	}
	m.mu.Unlock()

	// The disk deletion happens outside the lock (the evictExpired
	// pattern): a slow store must not stall the scheduler and every API
	// read behind the manager mutex. Terminal states are final, so the
	// only thing the re-check below guards against is a concurrent
	// delete or TTL eviction of the same job.
	if m.cfg.Store != nil {
		if err := m.cfg.Store.DeleteJob(id); err != nil {
			return err
		}
	}
	m.mu.Lock()
	if _, ok := m.jobs[id]; ok {
		m.removeJobLocked(id)
	}
	m.mu.Unlock()
	return nil
}

// removeJobLocked drops a job from the registry maps. Callers hold m.mu
// and have already established the job is terminal.
func (m *Manager) removeJobLocked(id string) {
	delete(m.jobs, id)
	for i, jid := range m.order {
		if jid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// enqueueLocked appends stage tasks to a job's ready list and places the
// job in the fairness ring if absent. Callers hold m.mu.
func (m *Manager) enqueueLocked(j *job, tasks ...*task) {
	j.ready = append(j.ready, tasks...)
	if !j.inRing && len(j.ready) > 0 {
		m.ring = append(m.ring, j)
		j.inRing = true
	}
	m.cond.Broadcast()
}

// drainLocked removes a job's queued tasks from the scheduler (its
// in-flight tasks keep running until they observe cancellation). Callers
// hold m.mu.
func (m *Manager) drainLocked(j *job) {
	j.ready = nil
	if j.inRing {
		for i, r := range m.ring {
			if r == j {
				m.ring = append(m.ring[:i], m.ring[i+1:]...)
				break
			}
		}
		j.inRing = false
	}
}

// popTaskLocked removes and returns the next runnable stage task under the
// per-job round-robin policy — the replacement for the old job-FIFO
// popEligibleLocked. The first eligible job in the ring surrenders its
// front task and rotates to the back (if it still has ready tasks), so K
// jobs take turns task by task instead of the head job monopolizing the
// pool. Queued jobs referencing a run that is still training are skipped
// in place — they stay scheduled (not parked on a worker) so the pool
// keeps serving unrelated jobs during a long training; trainRun's
// completion broadcast re-examines them. During an abort everything is
// eligible: the job contexts are cancelled, so popped tasks fail fast.
// Callers hold m.mu.
func (m *Manager) popTaskLocked() *task {
	for i := 0; i < len(m.ring); i++ {
		j := m.ring[i]
		if j.runID != "" && j.state == StateQueued && !m.aborted {
			if e, ok := m.runs[j.runID]; ok && e.state == RunTraining {
				continue
			}
		}
		t := j.ready[0]
		j.ready = j.ready[1:]
		m.ring = append(m.ring[:i], m.ring[i+1:]...)
		if len(j.ready) > 0 {
			m.ring = append(m.ring, j)
		} else {
			j.inRing = false
		}
		return t
	}
	return nil
}

// claimLocked accounts a popped task as running: the job's first task
// moves it to StateRunning. It reports whether this claim performed that
// queued→running transition, so the caller can record the queue wait and
// log the start outside the lock. Callers hold m.mu.
func (m *Manager) claimLocked(t *task) (startedNow bool) {
	j := t.j
	if j.state == StateQueued {
		j.state = StateRunning
		j.started = time.Now()
		m.queued--
		startedNow = true
	}
	j.inflight++
	m.inflight++
	return startedNow
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		t := m.popTaskLocked()
		for t == nil {
			// Pending retries count as outstanding work: their tasks
			// re-enqueue after the backoff, so the pool must stay alive.
			if (m.closed || m.aborted) && len(m.ring) == 0 && m.inflight == 0 && m.pendingRetries == 0 {
				m.mu.Unlock()
				return
			}
			m.cond.Wait()
			t = m.popTaskLocked()
		}
		startedNow := m.claimLocked(t)
		t.remote = m.remoteEligibleLocked(t)
		m.mu.Unlock()
		if startedNow {
			// started and submitted are written once, before this point,
			// so reading them without the lock is safe.
			wait := t.j.started.Sub(t.j.submitted)
			m.waitHist.ObserveDuration(wait)
			m.logJob("job started", t.j, "queue_wait_ms", wait.Milliseconds())
			if m.cfg.JobTimeout > 0 {
				m.wg.Add(1)
				go m.jobWatchdog(t.j)
			}
		}
		if t.remote {
			// A leased shard waits on a remote worker, not on CPU: parking
			// a pool worker for the round-trip would let a slow fleet
			// starve local jobs. The wait moves to a tracked goroutine and
			// this worker immediately serves the next task; inflight
			// accounting (already claimed) keeps shutdown correct.
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				start := time.Now()
				err := m.execute(t)
				m.taskDone(t, err, time.Since(start))
			}()
			continue
		}
		start := time.Now()
		err := m.execute(t)
		m.taskDone(t, err, time.Since(start))
	}
}

// remoteEligibleLocked decides whether a claimed task runs as a remote
// lease: an observation shard of a run-backed job whose trace is
// persisted in the shared run store (workers hydrate by content-addressed
// run ID), whose pipeline exposes a leasable permutation slice, with at
// least one live worker registered. Decided at claim time so a retry
// after a lost lease re-evaluates — an emptied fleet degrades the shard
// to local execution. Callers hold m.mu.
func (m *Manager) remoteEligibleLocked(t *task) bool {
	d := m.cfg.Dispatcher
	if d == nil || t.stage != taskObserve || t.j.runID == "" {
		return false
	}
	e, ok := m.runs[t.j.runID]
	if !ok || !e.persisted {
		return false
	}
	rv, ok := t.j.val.(remoteShardable)
	if !ok || rv.ObservationBudget() <= 0 {
		return false
	}
	if _, _, ok := rv.ShardSlice(t.shard); !ok {
		return false
	}
	return d.HasLiveWorkers()
}

// execute runs one stage task, converting a panic in the pipeline (or in a
// substituted Config.Value / Config.ValueRun) into a task failure with the
// goroutine stack in the job error: one poisoned job must not take down
// the daemon and every other job with it. The fault hook is consulted
// first — its faults become task failures, panics, or simulated crashes —
// and a positive Config.TaskTimeout bounds the execution, an expiry
// failing the task transiently so the retry ladder gets another shot.
func (m *Manager) execute(t *task) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	if err := t.j.ctx.Err(); err != nil {
		return err
	}
	if hook := m.cfg.FaultHook; hook != nil {
		ferr := hook(faultinject.Point{Op: faultinject.OpTask, Stage: t.stage, Shard: t.shard, Attempt: t.attempt, JobID: t.j.id})
		if ferr != nil {
			var pe *faultinject.PanicError
			if errors.As(ferr, &pe) {
				panic(pe.Msg)
			}
			return ferr
		}
	}

	ctx := t.j.ctx
	if d := m.cfg.TaskTimeout; d > 0 {
		tctx, cancel := context.WithCancelCause(ctx)
		finished := make(chan struct{})
		defer close(finished)
		defer cancel(nil)
		go func() {
			select {
			case <-m.clock.After(d):
				cancel(ErrTaskTimeout)
			case <-finished:
			}
		}()
		ctx = tctx
	}
	err = t.run(ctx)
	if err != nil && errors.Is(context.Cause(ctx), ErrTaskTimeout) && t.j.ctx.Err() == nil {
		err = MarkTransient(fmt.Errorf("%w: %s task exceeded %v", ErrTaskTimeout, t.stage, m.cfg.TaskTimeout))
	}
	return err
}

// taskDone retires an executed task. A transient failure within the
// retry budget schedules a backoff re-execution instead of failing the
// job; any other failure cancels the job and drains its remaining tasks,
// and the job finalizes once its last in-flight task (and last pending
// retry) returns. On success the task's done hook advances the stage
// graph. dur is the task's wall-clock execution time, recorded into the
// stage's latency histogram and the job's per-stage duration map.
func (m *Manager) taskDone(t *task, err error, dur time.Duration) {
	m.mu.Lock()
	j := t.j
	j.inflight--
	m.inflight--
	m.tasksDone[t.stage]++
	m.taskHistLocked(t.stage).ObserveDuration(dur)
	if j.stageNanos == nil {
		j.stageNanos = make(map[string]int64, 4)
	}
	j.stageNanos[t.stage] += dur.Nanoseconds()

	if err != nil && j.failed == nil && j.ctx.Err() == nil &&
		IsTransient(err) && t.attempt < m.cfg.MaxTaskRetries {
		// Transient failure with retry budget left: the task re-executes
		// after a deterministic backoff. Re-execution is safe — every
		// stage is a pure function of the job's request.
		t.attempt++
		j.retries++
		j.lastErr = err.Error()
		m.taskRetries[t.stage]++
		j.pendingRetries++
		m.pendingRetries++
		delay := m.retryDelay(j, t.stage, t.shard, t.attempt)
		m.wg.Add(1)
		go m.retryAfter(t, delay)
		m.logJob("task failed transiently", j,
			"stage", t.stage, "shard", t.shard, "attempt", t.attempt,
			"backoff_ms", delay.Milliseconds(), "error", err.Error())
		m.cond.Broadcast()
		m.mu.Unlock()
		return
	}

	if err != nil && j.failed == nil {
		j.failed = err
		j.cancel()
		m.drainLocked(j)
	}
	if j.failed != nil {
		seal := false
		if j.inflight == 0 && j.pendingRetries == 0 && !j.state.Terminal() {
			// If the extraction stage produced (and possibly persisted)
			// the report before the failure was observed, the failure
			// lost the race: complete the job — failing it here would
			// strand a persisted report that a restart resurrects as a
			// done job the caller was told failed.
			m.finalizeFailedLocked(j)
			seal = true
		}
		m.cond.Broadcast()
		m.mu.Unlock()
		if seal {
			m.sealJournal(j)
		}
		return
	}
	if t.done != nil {
		t.done()
	}
	seal := j.state.Terminal()
	m.cond.Broadcast()
	m.mu.Unlock()
	if seal {
		m.sealJournal(j)
	}
}

// taskHistLocked returns the latency histogram for a stage, creating it
// for stage names outside the standard pipeline (scripted test graphs).
// Callers hold m.mu.
func (m *Manager) taskHistLocked(stage string) *telemetry.Histogram {
	h, ok := m.taskHist[stage]
	if !ok {
		h = telemetry.NewHistogram()
		m.taskHist[stage] = h
	}
	return h
}

// failLocked moves a non-terminal job to StateFailed, releases its request
// payload and pipeline (client datasets can be large; only the report
// matters after a terminal state), and drops its shared-run reference.
// Callers hold m.mu and guarantee the job has no in-flight tasks — task
// closures read j.req without the lock, so the payload must not be cleared
// under a live task.
func (m *Manager) failLocked(j *job, err error) {
	if j.state == StateQueued {
		m.queued--
	}
	j.cancel()
	j.state = StateFailed
	j.err = err
	j.finished = time.Now()
	j.req = Request{}
	j.val = nil
	j.ready = nil
	j.sealJ, j.journal = j.journal, nil
	m.releaseRunLocked(j)
	m.logJob("job failed", j, "error", err.Error(), "duration_ms", j.finished.Sub(j.submitted).Milliseconds())
}

// completeJobLocked moves a job to StateDone after its extraction task
// stashed the report. Callers hold m.mu.
func (m *Manager) completeJobLocked(j *job) {
	j.cancel()
	j.state = StateDone
	j.err = j.persistErr
	j.finished = time.Now()
	j.req = Request{}
	j.val = nil
	j.sealJ, j.journal = j.journal, nil
	m.releaseRunLocked(j)
	dur := j.finished.Sub(j.submitted)
	m.jobHist.ObserveDuration(dur)
	m.logJob("job done", j, "duration_ms", dur.Milliseconds(), "shards", j.shardsTotal)
}

// Shutdown stops accepting submissions and run registrations, drains
// queued jobs (including ones waiting for a run still in training), and
// waits for workers and training goroutines to finish. If the context
// expires first, the remaining backlog is failed with ErrCancelled,
// running jobs and in-flight trainings are cancelled, and Shutdown returns
// the context's error once both pools exit.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.janitorStop)
		m.cond.Broadcast()
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		m.runWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		m.aborted = true
		var sealed []*job
		for _, j := range m.jobs {
			switch j.state {
			case StateQueued:
				m.drainLocked(j)
				m.failLocked(j, ErrCancelled)
				sealed = append(sealed, j)
			case StateRunning:
				j.cancel()
				m.drainLocked(j)
				if j.failed == nil {
					j.failed = ErrCancelled
				}
				if j.inflight == 0 && j.pendingRetries == 0 {
					m.failLocked(j, j.failed)
					sealed = append(sealed, j)
				}
			}
		}
		for _, e := range m.runs {
			if e.state == RunTraining && e.cancelTrain != nil {
				e.cancelTrain()
			}
		}
		m.cond.Broadcast()
		m.mu.Unlock()
		// Shutdown cancellations keep journals on disk — these jobs
		// resume when the next process replays them.
		for _, j := range sealed {
			m.sealJournal(j)
		}
		<-done
		return ctx.Err()
	}
}

// janitor periodically evicts terminal jobs older than the TTL.
func (m *Manager) janitor(ttl time.Duration) {
	defer m.wg.Done()
	interval := ttl / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-ticker.C:
			m.evictExpired(ttl)
		}
	}
}

// evictExpired removes terminal jobs that finished before the TTL cutoff,
// deleting their persisted artifacts best-effort (a job whose report
// cannot be deleted stays registered and is retried next sweep, so the
// in-memory view never claims an eviction disk still contradicts).
func (m *Manager) evictExpired(ttl time.Duration) {
	cutoff := time.Now().Add(-ttl)
	m.mu.Lock()
	var expired []string
	for id, j := range m.jobs {
		if j.state.Terminal() && !j.finished.IsZero() && j.finished.Before(cutoff) {
			expired = append(expired, id)
		}
	}
	m.mu.Unlock()

	for _, id := range expired {
		if m.cfg.Store != nil {
			if err := m.cfg.Store.DeleteJob(id); err != nil {
				continue
			}
		}
		m.mu.Lock()
		j, ok := m.jobs[id]
		if ok && j.state.Terminal() {
			m.removeJobLocked(id)
			m.jobsEvicted++
		} else {
			j = nil
		}
		m.mu.Unlock()
		if j != nil {
			m.logJob("job evicted", j, "ttl", ttl.String())
		}
	}
}

// snapshot must be called with m.mu held.
func (j *job) snapshot() Status {
	s := Status{
		ID:          j.id,
		State:       j.state,
		Progress:    j.progress,
		Shards:      j.shardsTotal,
		ShardsDone:  j.shardsDone,
		RunID:       j.runID,
		SubmittedAt: j.submitted,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	s.Retries = j.retries
	s.LastError = j.lastErr
	if j.cacheStats != nil {
		cs := *j.cacheStats
		s.CacheStats = &cs
	}
	if j.report != nil {
		s.ObservationsUsed = j.report.ObservationsUsed
		s.ObservationsBudget = j.report.ObservationsBudget
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	if len(j.stageNanos) > 0 {
		s.StageSeconds = make(map[string]float64, len(j.stageNanos))
		for stage, nanos := range j.stageNanos {
			s.StageSeconds[stage] = float64(nanos) / 1e9
		}
	}
	return s
}

func newJobID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: crypto/rand failed: %v", err))
	}
	return "job-" + hex.EncodeToString(b[:])
}
