package service

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"

	"comfedsv"
)

// TestConcurrentCreateRunTrainsExactlyOnce hammers the registry's
// in-flight dedup (run with -race): many goroutines registering the same
// spec concurrently must converge on one run ID and exactly one training.
func TestConcurrentCreateRunTrainsExactlyOnce(t *testing.T) {
	var trainings atomic.Int64
	m := newManager(t, Config{
		Workers: 2,
		Train: func(ctx context.Context, clients []comfedsv.Client, test comfedsv.Client, opts comfedsv.Options) (*comfedsv.TrainedRun, error) {
			trainings.Add(1)
			return comfedsv.TrainCtx(ctx, clients, test, opts)
		},
	})

	const goroutines = 16
	ids := make([]string, goroutines)
	var start, wg sync.WaitGroup
	start.Add(1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			start.Wait() // release all registrations at once
			st, _, err := m.CreateRun(tinySpec(21))
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			ids[g] = st.ID
		}(g)
	}
	start.Done()
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		if ids[g] != ids[0] {
			t.Fatalf("goroutine %d got run %q, goroutine 0 got %q", g, ids[g], ids[0])
		}
	}
	if got := waitRunTerminal(t, m, ids[0]); got.State != RunReady {
		t.Fatalf("run finished %s (%s)", got.State, got.Error)
	}
	if n := trainings.Load(); n != 1 {
		t.Fatalf("spec trained %d times, want exactly once", n)
	}
}

// TestConcurrentJobsShareOneRun hammers one shared run and its evaluator
// from many concurrent real valuations (run with -race): no torn cache
// state, every report byte-identical, and the whole batch pays the
// utility-call bill once.
func TestConcurrentJobsShareOneRun(t *testing.T) {
	m := newManager(t, Config{Workers: 4})
	st, _, err := m.CreateRun(tinySpec(23))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitRunTerminal(t, m, st.ID); got.State != RunReady {
		t.Fatalf("run finished %s (%s)", got.State, got.Error)
	}

	opts := tinyRequest(23).Options
	opts.Parallelism = 2 // fan out inside each job too
	const jobs = 8
	ids := make([]string, jobs)
	for i := range ids {
		id, err := m.Submit(Request{RunID: st.ID, Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	var first []byte
	totalMisses := 0
	for i, id := range ids {
		if s := waitTerminal(t, m, id); s.State != StateDone {
			t.Fatalf("job %d finished %s (%s)", i, s.State, s.Error)
		}
		rep, err := m.Report(id)
		if err != nil {
			t.Fatal(err)
		}
		body, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = body
		} else if !bytes.Equal(body, first) {
			t.Fatalf("job %d report differs from job 0:\n%s\nvs\n%s", i, body, first)
		}
		s, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if s.CacheStats == nil {
			t.Fatalf("job %d missing cache stats", i)
		}
		if s.CacheStats.Hits+s.CacheStats.Misses != rep.UtilityCalls {
			t.Fatalf("job %d ledger %+v does not sum to its %d utility calls", i, s.CacheStats, rep.UtilityCalls)
		}
		totalMisses += s.CacheStats.Misses
	}
	// The shared cache means the batch's distinct evaluations equal one
	// job's, no matter how the concurrent first requests interleaved.
	var one comfedsv.Report
	if err := json.Unmarshal(first, &one); err != nil {
		t.Fatal(err)
	}
	if totalMisses != one.UtilityCalls {
		t.Fatalf("batch paid %d evaluations, want exactly one job's bill of %d", totalMisses, one.UtilityCalls)
	}
	rs, err := m.RunStatus(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rs.CacheMisses != one.UtilityCalls {
		t.Fatalf("run counter says %d misses, want %d", rs.CacheMisses, one.UtilityCalls)
	}
}

// TestConcurrentShardedJobsShareOneRun is the -race hammer for the staged
// scheduler's hottest interleaving: several Monte-Carlo jobs, each split
// into concurrent observation shards, all hammering ONE shared run's
// evaluator at once. Every report must be byte-identical to the direct
// inline call, and the shard fan-out must show up in the task counters.
func TestConcurrentShardedJobsShareOneRun(t *testing.T) {
	m := newManager(t, Config{Workers: 4})
	spec := tinySpec(27)
	st, _, err := m.CreateRun(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := waitRunTerminal(t, m, st.ID); got.State != RunReady {
		t.Fatalf("run finished %s (%s)", got.State, got.Error)
	}

	opts := tinyRequest(27).Options
	opts.MonteCarloSamples = 40
	opts.Shards = 4
	opts.Parallelism = 2
	const jobs = 6
	ids := make([]string, jobs)
	for i := range ids {
		id, err := m.Submit(Request{RunID: st.ID, Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	req := tinyRequest(27)
	req.Options.MonteCarloSamples = 40
	want, err := comfedsv.Value(req.Clients, req.Test, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	wantBody, _ := json.Marshal(want)
	for i, id := range ids {
		if s := waitTerminal(t, m, id); s.State != StateDone {
			t.Fatalf("job %d finished %s (%s)", i, s.State, s.Error)
		}
		rep, err := m.Report(id)
		if err != nil {
			t.Fatal(err)
		}
		body, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, wantBody) {
			t.Fatalf("job %d sharded report differs from direct call:\n%s\nvs\n%s", i, body, wantBody)
		}
		s, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if s.Shards != 4 || s.ShardsDone != 4 {
			t.Fatalf("job %d shard accounting %d/%d, want 4/4", i, s.ShardsDone, s.Shards)
		}
		if s.CacheStats == nil || s.CacheStats.Hits+s.CacheStats.Misses != rep.UtilityCalls {
			t.Fatalf("job %d ledger %+v does not sum to its %d utility calls", i, s.CacheStats, rep.UtilityCalls)
		}
	}
	if got := m.Metrics().ShardTasksExecuted; got != jobs*4 {
		t.Fatalf("shard tasks executed = %d, want %d", got, jobs*4)
	}
}

// TestSnapshotReadsRaceFreeUnderLoad is the targeted torn-read check for
// the Manager's snapshot paths (run with -race): Status, List, Counts,
// Report, RunStatus, and Runs are hammered while jobs run, stream
// progress updates, finish, and get cancelled — any unsynchronized read
// of job progress/state or run counters shows up as a race report.
func TestSnapshotReadsRaceFreeUnderLoad(t *testing.T) {
	m := newManager(t, Config{Workers: 4})
	st, _, err := m.CreateRun(tinySpec(25))
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 6
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		var id string
		var err error
		if i%2 == 0 {
			id, err = m.Submit(Request{RunID: st.ID, Options: tinyRequest(25).Options})
		} else {
			id, err = m.Submit(tinyRequest(25))
		}
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.List()
				m.Counts()
				m.Runs()
				m.RunCounts()
				for _, id := range ids {
					m.Status(id)
					m.Report(id)
				}
				m.RunStatus(st.ID)
			}
		}()
	}
	// One goroutine cancels the last job mid-flight to race the terminal
	// transition against the snapshot readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Cancel(ids[len(ids)-1])
	}()

	for _, id := range ids[:len(ids)-1] {
		if s := waitTerminal(t, m, id); s.State != StateDone {
			t.Fatalf("job finished %s (%s)", s.State, s.Error)
		}
	}
	waitTerminal(t, m, ids[len(ids)-1])
	close(stop)
	wg.Wait()
}
