package service

import (
	"context"
	"log/slog"
	"sync"
	"testing"

	"comfedsv"
)

// TestStatusStageSeconds: a finished job's status reports where its wall
// clock went, with one entry per executed pipeline stage.
func TestStatusStageSeconds(t *testing.T) {
	m := newManager(t, Config{Workers: 2})
	req := tinyRequest(11)
	req.Options.MonteCarloSamples = 40
	req.Options.Shards = 2
	id, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, id)
	if st.State != StateDone {
		t.Fatalf("job finished %s (%s)", st.State, st.Error)
	}
	for _, stage := range []string{taskPrepare, taskObserve, taskComplete, taskShapley} {
		if _, ok := st.StageSeconds[stage]; !ok {
			t.Fatalf("StageSeconds missing %q: %v", stage, st.StageSeconds)
		}
		if st.StageSeconds[stage] < 0 {
			t.Fatalf("negative stage duration: %v", st.StageSeconds)
		}
	}
	if st.StartedAt == nil || st.FinishedAt == nil || st.SubmittedAt.IsZero() {
		t.Fatalf("missing lifecycle timestamps: %+v", st)
	}
}

// TestMetricsLatencyHistograms: after jobs complete, the metrics snapshot
// carries consistent per-stage task histograms, the finer valuation-stage
// histograms, and job duration/queue-wait histograms.
func TestMetricsLatencyHistograms(t *testing.T) {
	m := newManager(t, Config{Workers: 2})
	req := tinyRequest(12)
	req.Options.MonteCarloSamples = 40
	req.Options.Shards = 3
	id, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m, id); st.State != StateDone {
		t.Fatalf("job finished %s (%s)", st.State, st.Error)
	}

	snap := m.Metrics()
	if got := snap.TaskLatency[taskObserve].Count; got != 3 {
		t.Fatalf("observe task observations = %d, want 3 (one per shard)", got)
	}
	for _, stage := range []string{taskPrepare, taskComplete, taskShapley} {
		if got := snap.TaskLatency[stage].Count; got != 1 {
			t.Fatalf("%s task observations = %d, want 1", stage, got)
		}
	}
	// The library-stage split: training and FedSV happen inside the
	// prepare task but get their own histograms via the timing hook.
	for _, stage := range []string{comfedsv.StageTrain, comfedsv.StageFedSV, comfedsv.StageObserve, comfedsv.StageComplete, comfedsv.StageShapley} {
		if got := snap.ValuationStageLatency[stage].Count; got == 0 {
			t.Fatalf("valuation stage %q has no observations", stage)
		}
	}
	if snap.JobDuration.Count != 1 || snap.JobQueueWait.Count != 1 {
		t.Fatalf("job histograms: duration=%d wait=%d, want 1/1", snap.JobDuration.Count, snap.JobQueueWait.Count)
	}
	// Internal consistency of every exported snapshot.
	for stage, s := range snap.TaskLatency {
		cum := s.Cumulative()
		if cum[len(cum)-1] != s.Count {
			t.Fatalf("stage %q: +Inf bucket %d != count %d", stage, cum[len(cum)-1], s.Count)
		}
	}
}

// recordingHandler captures slog records for assertions.
type recordingHandler struct {
	mu      sync.Mutex
	records []slog.Record
}

func (h *recordingHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h *recordingHandler) Handle(_ context.Context, r slog.Record) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.records = append(h.records, r.Clone())
	return nil
}
func (h *recordingHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *recordingHandler) WithGroup(string) slog.Handler      { return h }

// find returns the attrs of the first record with the given message that
// carries the given job_id, or nil.
func (h *recordingHandler) find(msg, jobID string) map[string]any {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, r := range h.records {
		if r.Message != msg {
			continue
		}
		attrs := make(map[string]any)
		r.Attrs(func(a slog.Attr) bool {
			attrs[a.Key] = a.Value.Any()
			return true
		})
		if attrs["job_id"] == jobID {
			return attrs
		}
	}
	return nil
}

// TestLifecycleLogging: a configured Config.Logger sees the job's
// submit/start/finish transitions, each tagged with the job ID.
func TestLifecycleLogging(t *testing.T) {
	h := &recordingHandler{}
	m := newManager(t, Config{Workers: 1, Logger: slog.New(h)})
	id, err := m.Submit(tinyRequest(13))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m, id); st.State != StateDone {
		t.Fatalf("job finished %s (%s)", st.State, st.Error)
	}
	for _, msg := range []string{"job submitted", "job started", "job done"} {
		if h.find(msg, id) == nil {
			t.Fatalf("no %q record for job %s", msg, id)
		}
	}
	if attrs := h.find("job done", id); attrs["duration_ms"] == nil {
		t.Fatalf("job done record missing duration_ms: %v", attrs)
	}
}

// TestLifecycleLoggingFailure: a cancelled job logs a failure record with
// the reason.
func TestLifecycleLoggingFailure(t *testing.T) {
	h := &recordingHandler{}
	release := make(chan struct{})
	m := newManager(t, Config{Workers: 1, Logger: slog.New(h), Value: blockingValue(release)})
	defer close(release)
	if _, err := m.Submit(tinyRequest(14)); err != nil {
		t.Fatal(err)
	}
	blocked, err := m.Submit(tinyRequest(15))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(blocked); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m, blocked); st.State != StateFailed {
		t.Fatalf("cancelled job finished %s", st.State)
	}
	attrs := h.find("job failed", blocked)
	if attrs == nil {
		t.Fatalf("no \"job failed\" record for job %s", blocked)
	}
	if attrs["error"] == nil {
		t.Fatalf("job failed record missing error: %v", attrs)
	}
}
