package utility

import (
	"context"
	"sync"
	"testing"
)

// TestSessionMatchesFreshEvaluator pins the accounting contract shared-run
// jobs depend on: a Session over a warm shared evaluator returns the same
// values as a fresh evaluator AND reports the same Calls count (the
// distinct cells it requested), with the warm cells attributed to hits.
func TestSessionMatchesFreshEvaluator(t *testing.T) {
	run := tinyRun(t, 5, 4, 2)
	shared := NewEvaluator(run)

	var cells []Cell
	for round := 0; round < 4; round++ {
		for mask := uint64(1); mask < 1<<5; mask++ {
			cells = append(cells, Cell{Round: round, Subset: FromMask(5, mask)})
		}
	}
	// Duplicates and the empty set exercise the per-session dedup.
	cells = append(cells, cells[5], cells[40], Cell{Round: 2, Subset: NewSet(5)})

	fresh := NewEvaluator(run)
	want := make([]float64, len(cells))
	for i, c := range cells {
		want[i] = fresh.Utility(c.Round, c.Subset)
	}

	// First session: the shared cache is cold, so every distinct cell is a
	// miss.
	s1 := shared.NewSession()
	for i, c := range cells {
		if got := s1.Utility(c.Round, c.Subset); got != want[i] {
			t.Fatalf("session 1 cell %d: %v, fresh evaluator %v", i, got, want[i])
		}
	}
	if s1.Calls() != fresh.Calls() {
		t.Fatalf("session 1 Calls = %d, fresh evaluator made %d", s1.Calls(), fresh.Calls())
	}
	if s1.Hits() != 0 || s1.Misses() != s1.Calls() {
		t.Fatalf("cold session: hits %d misses %d calls %d, want all misses", s1.Hits(), s1.Misses(), s1.Calls())
	}

	// Second session over the same evaluator: identical values, identical
	// Calls, but now every cell is a hit and the shared evaluator pays for
	// nothing new.
	before := shared.Calls()
	s2 := shared.NewSession()
	for i, c := range cells {
		if got := s2.Utility(c.Round, c.Subset); got != want[i] {
			t.Fatalf("session 2 cell %d: %v, fresh evaluator %v", i, got, want[i])
		}
	}
	if s2.Calls() != s1.Calls() {
		t.Fatalf("session 2 Calls = %d, session 1 made %d", s2.Calls(), s1.Calls())
	}
	if s2.Misses() != 0 || s2.Hits() != s2.Calls() {
		t.Fatalf("warm session: hits %d misses %d calls %d, want all hits", s2.Hits(), s2.Misses(), s2.Calls())
	}
	if shared.Calls() != before {
		t.Fatalf("warm session grew the shared evaluation count %d -> %d", before, shared.Calls())
	}
	if shared.Hits() == 0 {
		t.Fatal("shared evaluator recorded no hits after a warm session")
	}
}

// TestSessionBatchMatchesSerial checks Session.UtilityBatchCtx against
// one-by-one evaluation for several worker counts.
func TestSessionBatchMatchesSerial(t *testing.T) {
	run := tinyRun(t, 5, 3, 2)
	fresh := NewEvaluator(run)

	var cells []Cell
	for round := 0; round < 3; round++ {
		for mask := uint64(1); mask < 1<<5; mask++ {
			cells = append(cells, Cell{Round: round, Subset: FromMask(5, mask)})
		}
	}
	cells = append(cells, cells[7], Cell{Round: 0, Subset: NewSet(5)})
	want := make([]float64, len(cells))
	for i, c := range cells {
		want[i] = fresh.Utility(c.Round, c.Subset)
	}

	shared := NewEvaluator(run)
	for _, workers := range []int{0, 1, 4, 64} {
		s := shared.NewSession()
		got, err := s.UtilityBatchCtx(context.Background(), cells, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d cell %d: batch %v, serial %v", workers, i, got[i], want[i])
			}
		}
		if s.Calls() != fresh.Calls() {
			t.Fatalf("workers=%d: session Calls = %d, fresh evaluator made %d", workers, s.Calls(), fresh.Calls())
		}
	}
}

// TestSessionsConcurrent hammers one shared evaluator from many concurrent
// sessions (run with -race): the model for N valuation jobs sharing one
// run. Every session must see serial-identical values and report the exact
// per-session distinct-cell count, and the shared evaluator must evaluate
// each cell at most once.
func TestSessionsConcurrent(t *testing.T) {
	run := tinyRun(t, 6, 3, 2)
	shared := NewEvaluator(run)
	serial := NewEvaluator(run)

	var cells []Cell
	for round := 0; round < 3; round++ {
		for mask := uint64(1); mask < 1<<6; mask++ {
			cells = append(cells, Cell{Round: round, Subset: FromMask(6, mask)})
		}
	}
	want := make([]float64, len(cells))
	for i, c := range cells {
		want[i] = serial.Utility(c.Round, c.Subset)
	}

	const sessions = 8
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := shared.NewSession()
			// Each session additionally fans out internally, like the
			// Monte-Carlo observation stage does.
			got, err := s.UtilityBatchCtx(context.Background(), cells, 4)
			if err != nil {
				t.Errorf("session %d: %v", g, err)
				return
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("session %d cell %d: %v, want %v", g, i, got[i], want[i])
					return
				}
			}
			if s.Calls() != len(cells) {
				t.Errorf("session %d Calls = %d, want %d", g, s.Calls(), len(cells))
			}
			if s.Hits()+s.Misses() != s.Calls() {
				t.Errorf("session %d ledger hits %d + misses %d != calls %d", g, s.Hits(), s.Misses(), s.Calls())
			}
		}(g)
	}
	wg.Wait()

	if shared.Calls() != len(cells) {
		t.Fatalf("shared evaluator Calls = %d, want exactly %d (each cell evaluated once)", shared.Calls(), len(cells))
	}
}
