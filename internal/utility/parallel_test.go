package utility

import (
	"math"
	"testing"
)

func TestParallelFullMatrixMatchesSerial(t *testing.T) {
	run := tinyRun(t, 5, 4, 2)
	serial := FullMatrix(NewEvaluator(run))
	for _, workers := range []int{1, 2, 4, 0} {
		parallel := ParallelFullMatrix(run, workers)
		r1, c1 := serial.Dims()
		r2, c2 := parallel.Dims()
		if r1 != r2 || c1 != c2 {
			t.Fatalf("shape mismatch %dx%d vs %dx%d", r1, c1, r2, c2)
		}
		for i := 0; i < r1; i++ {
			for j := 0; j < c1; j++ {
				if serial.At(i, j) != parallel.At(i, j) {
					t.Fatalf("workers=%d: cell (%d,%d) differs: %v vs %v",
						workers, i, j, serial.At(i, j), parallel.At(i, j))
				}
			}
		}
	}
}

func TestEvaluateBatch(t *testing.T) {
	run := tinyRun(t, 4, 3, 2)
	e := NewEvaluator(run)
	cells := []Cell{
		{Round: 0, Subset: FromMembers(4, []int{0})},
		{Round: 1, Subset: FromMembers(4, []int{1, 2})},
		{Round: 2, Subset: NewSet(4)}, // empty → 0
		{Round: 2, Subset: FromMembers(4, []int{0, 1, 2, 3})},
	}
	got := EvaluateBatch(run, cells, 3)
	if len(got) != len(cells) {
		t.Fatalf("got %d results, want %d", len(got), len(cells))
	}
	for i, c := range cells {
		want := e.Utility(c.Round, c.Subset)
		if math.Abs(got[i]-want) > 1e-15 {
			t.Fatalf("cell %d: %v, want %v", i, got[i], want)
		}
	}
}

func TestEvaluateBatchEmptyInput(t *testing.T) {
	run := tinyRun(t, 3, 2, 2)
	if got := EvaluateBatch(run, nil, 2); len(got) != 0 {
		t.Fatalf("expected empty result, got %v", got)
	}
}
