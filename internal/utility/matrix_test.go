package utility

import (
	"math"
	"testing"

	"comfedsv/internal/dataset"
	"comfedsv/internal/fl"
	"comfedsv/internal/model"
	"comfedsv/internal/rng"
)

func tinyRun(t *testing.T, clients, rounds, perRound int) *fl.Run {
	t.Helper()
	full := dataset.GenerateImages(dataset.MNISTLikeConfig(23), clients*20+40)
	g := rng.New(24)
	train, test := dataset.TrainTestSplit(full, float64(40)/float64(full.Len()), g)
	parts := dataset.PartitionIID(train, clients, g)
	m := model.NewMLP(full.Dim(), 6, full.NumClasses)
	cfg := fl.DefaultConfig(rounds, perRound)
	run, err := fl.TrainRun(cfg, m, parts, test)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestEvaluatorMemoizes(t *testing.T) {
	run := tinyRun(t, 4, 3, 2)
	e := NewEvaluator(run)
	s := FromMembers(4, []int{0, 2})
	v1 := e.Utility(1, s)
	calls := e.Calls()
	v2 := e.Utility(1, s)
	if v1 != v2 {
		t.Fatal("memoized value changed")
	}
	if e.Calls() != calls {
		t.Fatal("second evaluation must hit the cache")
	}
}

func TestEvaluatorEmptySetZero(t *testing.T) {
	run := tinyRun(t, 4, 2, 2)
	e := NewEvaluator(run)
	if got := e.Utility(0, NewSet(4)); got != 0 {
		t.Fatalf("empty-set utility %v, want 0", got)
	}
	if e.Calls() != 0 {
		t.Fatal("empty set must not cost a call")
	}
}

func TestEvaluatorMatchesRun(t *testing.T) {
	run := tinyRun(t, 4, 3, 2)
	e := NewEvaluator(run)
	s := FromMembers(4, []int{1, 3})
	if got, want := e.Utility(2, s), run.Utility(2, []int{1, 3}); math.Abs(got-want) > 1e-15 {
		t.Fatalf("evaluator %v != run %v", got, want)
	}
}

func TestStoreColumns(t *testing.T) {
	st := NewStore(3, 5)
	a := FromMembers(5, []int{0})
	b := FromMembers(5, []int{0, 1})
	ca := st.ColumnOf(a)
	cb := st.ColumnOf(b)
	if ca == cb {
		t.Fatal("distinct subsets must get distinct columns")
	}
	if got := st.ColumnOf(a); got != ca {
		t.Fatal("repeated registration must return the same column")
	}
	if !st.ColumnSet(ca).Equal(a) {
		t.Fatal("ColumnSet must invert ColumnOf")
	}
	if st.NumColumns() != 2 {
		t.Fatalf("NumColumns = %d, want 2", st.NumColumns())
	}
	if _, ok := st.HasColumn(FromMembers(5, []int{4})); ok {
		t.Fatal("HasColumn must not register")
	}
}

func TestStoreObserveDedup(t *testing.T) {
	st := NewStore(3, 5)
	s := FromMembers(5, []int{0, 1})
	st.Observe(0, s, 1.5)
	st.Observe(0, s, 2.5) // duplicate: ignored
	st.Observe(1, s, 3.5)
	if st.NumObserved() != 2 {
		t.Fatalf("observed %d entries, want 2", st.NumObserved())
	}
	obs := st.Observations()
	if obs[0].Val != 1.5 {
		t.Fatalf("first value wins, got %v", obs[0].Val)
	}
}

func TestStoreObserveBadRoundPanics(t *testing.T) {
	st := NewStore(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	st.Observe(2, FromMembers(3, []int{0}), 1)
}

func TestStoreUniverseMismatchPanics(t *testing.T) {
	st := NewStore(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	st.ColumnOf(FromMembers(4, []int{0}))
}

func TestStoreDensity(t *testing.T) {
	st := NewStore(2, 3)
	st.Observe(0, FromMembers(3, []int{0}), 1)
	st.Observe(1, FromMembers(3, []int{1}), 1)
	// 2 observations over 2 rounds × 2 columns.
	if got := st.Density(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Density = %v, want 0.5", got)
	}
}

func TestFullMatrixShapeAndValues(t *testing.T) {
	run := tinyRun(t, 4, 3, 2)
	e := NewEvaluator(run)
	u := FullMatrix(e)
	rows, cols := u.Dims()
	if rows != 3 || cols != 16 {
		t.Fatalf("full matrix %dx%d, want 3x16", rows, cols)
	}
	// Column 0 (empty set) must be zero.
	for r := 0; r < rows; r++ {
		if u.At(r, 0) != 0 {
			t.Fatal("empty-set column must be zero")
		}
	}
	// Spot-check a single-client column.
	want := e.Utility(1, FromMask(4, 0b0100))
	if got := u.At(1, 0b0100); math.Abs(got-want) > 1e-15 {
		t.Fatalf("cell = %v, want %v", got, want)
	}
}

func TestObserveSelectedCoversSubsetsOfSelection(t *testing.T) {
	run := tinyRun(t, 5, 4, 2)
	e := NewEvaluator(run)
	st := NewStore(4, 5)
	ObserveSelected(e, st)
	// Round 0 is full (5 clients): 31 subsets. Rounds 1–3: 3 subsets each.
	want := 31 + 3*3
	if st.NumObserved() != want {
		t.Fatalf("observed %d entries, want %d", st.NumObserved(), want)
	}
	// Every observation must be a subset of its round's selection.
	for _, o := range st.Observations() {
		sel := FromMembers(5, run.Rounds[o.Row].Selected)
		if !st.ColumnSet(o.Col).SubsetOf(sel) {
			t.Fatalf("observation at round %d is not within the selection", o.Row)
		}
	}
}

func TestDuplicateClientsShareColumnsValues(t *testing.T) {
	// With duplicated client data, U_t(S∪{i}) == U_t(S∪{j}) exactly.
	full := dataset.GenerateImages(dataset.MNISTLikeConfig(29), 140)
	g := rng.New(30)
	train, test := dataset.TrainTestSplit(full, 40.0/140, g)
	parts := dataset.PartitionIID(train, 4, g)
	parts[3] = parts[0].Clone()
	m := model.NewMLP(full.Dim(), 6, full.NumClasses)
	run, err := fl.TrainRun(fl.DefaultConfig(3, 2), m, parts, test)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEvaluator(run)
	for tr := 0; tr < 3; tr++ {
		a := e.Utility(tr, FromMembers(4, []int{0, 1}))
		b := e.Utility(tr, FromMembers(4, []int{3, 1}))
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("round %d: symmetric subsets valued differently: %v vs %v", tr, a, b)
		}
	}
}
