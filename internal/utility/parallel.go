package utility

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"comfedsv/internal/fl"
	"comfedsv/internal/mat"
)

// forEachIndex runs fn(i) for every i in [0, n) across at most workers
// goroutines (≤ 0 means GOMAXPROCS, and the pool never exceeds n — the
// worker-clamp rule every fan-out in this package shares). Once ctx is
// cancelled no further indices are started; the caller decides whether
// that matters by checking ctx.Err afterwards. fn must be safe to call
// concurrently for distinct indices.
func forEachIndex(ctx context.Context, n, workers int, fn func(int)) {
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ParallelFullMatrix materializes the complete utility matrix like
// FullMatrix but distributes rounds across workers goroutines (0 means
// GOMAXPROCS). Cells are independent — the run is read-only and the models
// are pure functions of their parameters — so the result is bit-identical
// to the serial version.
func ParallelFullMatrix(run *fl.Run, workers int) *mat.Dense {
	n := run.NumClients()
	if n > 20 {
		panic(fmt.Sprintf("utility: full matrix for %d clients is infeasible", n))
	}
	t := len(run.Rounds)
	cols := 1 << uint(n)
	u := mat.NewDense(t, cols)
	forEachIndex(context.Background(), t, workers, func(round int) {
		row := u.Row(round)
		members := make([]int, 0, n)
		for mask := uint64(1); mask < uint64(cols); mask++ {
			members = members[:0]
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					members = append(members, i)
				}
			}
			row[mask] = run.Utility(round, members)
		}
	})
	return u
}

// EvaluateBatch computes the utilities of the given (round, subset) cells
// concurrently and returns them in input order. Like ParallelFullMatrix it
// bypasses the Evaluator cache entirely; use it for large one-shot batches
// where memoization would not pay off.
func EvaluateBatch(run *fl.Run, cells []Cell, workers int) []float64 {
	out := make([]float64, len(cells))
	forEachIndex(context.Background(), len(cells), workers, func(i int) {
		c := cells[i]
		if c.Subset.IsEmpty() {
			return // out[i] stays 0, the empty coalition's utility
		}
		out[i] = run.Utility(c.Round, c.Subset.Members())
	})
	return out
}

// Cell addresses one utility-matrix entry.
type Cell struct {
	Round  int
	Subset Set
}
