package utility

import (
	"fmt"
	"runtime"
	"sync"

	"comfedsv/internal/fl"
	"comfedsv/internal/mat"
)

// ParallelFullMatrix materializes the complete utility matrix like
// FullMatrix but distributes rounds across workers goroutines (0 means
// GOMAXPROCS). Cells are independent — the run is read-only and the models
// are pure functions of their parameters — so the result is bit-identical
// to the serial version.
func ParallelFullMatrix(run *fl.Run, workers int) *mat.Dense {
	n := run.NumClients()
	if n > 20 {
		panic(fmt.Sprintf("utility: full matrix for %d clients is infeasible", n))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	t := len(run.Rounds)
	cols := 1 << uint(n)
	u := mat.NewDense(t, cols)

	rounds := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := range rounds {
				row := u.Row(round)
				members := make([]int, 0, n)
				for mask := uint64(1); mask < uint64(cols); mask++ {
					members = members[:0]
					for i := 0; i < n; i++ {
						if mask&(1<<uint(i)) != 0 {
							members = append(members, i)
						}
					}
					row[mask] = run.Utility(round, members)
				}
			}
		}()
	}
	for round := 0; round < t; round++ {
		rounds <- round
	}
	close(rounds)
	wg.Wait()
	return u
}

// EvaluateBatch computes the utilities of the given (round, subset) cells
// concurrently and returns them in input order. Like ParallelFullMatrix it
// bypasses the Evaluator cache entirely; use it for large one-shot batches
// where memoization would not pay off.
func EvaluateBatch(run *fl.Run, cells []Cell, workers int) []float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]float64, len(cells))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				c := cells[i]
				if c.Subset.IsEmpty() {
					out[i] = 0
					continue
				}
				out[i] = run.Utility(c.Round, c.Subset.Members())
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Cell addresses one utility-matrix entry.
type Cell struct {
	Round  int
	Subset Set
}
