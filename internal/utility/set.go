// Package utility implements the paper's utility matrix U ∈ R^{T×2^N}
// (Section VI-A): subset encoding for arbitrary client counts, a memoized
// evaluator for the per-round subset utility U_t(S), a sparse store of
// observed entries feeding the matrix-completion problem (9)/(13), and full
// materialization for small N (ground truth, Fig. 2 spectra).
package utility

import (
	"fmt"
	"math/bits"
)

// Set is a fixed-universe bitset over clients {0, …, n-1}. It is the column
// index type of the utility matrix and supports client counts beyond 64
// (the noisy-label experiment uses N = 100).
type Set struct {
	words []uint64
	n     int
}

// NewSet returns an empty set over a universe of n clients.
func NewSet(n int) Set {
	if n < 0 {
		panic(fmt.Sprintf("utility: negative universe %d", n))
	}
	return Set{words: make([]uint64, (n+63)/64), n: n}
}

// FromMembers returns the set over universe n containing the given members.
func FromMembers(n int, members []int) Set {
	s := NewSet(n)
	for _, m := range members {
		s.Add(m)
	}
	return s
}

// Universe returns the size of the universe n.
func (s Set) Universe() int { return s.n }

// Add inserts client i.
func (s Set) Add(i int) {
	s.checkIndex(i)
	s.words[i/64] |= 1 << (uint(i) % 64)
}

// Remove deletes client i.
func (s Set) Remove(i int) {
	s.checkIndex(i)
	s.words[i/64] &^= 1 << (uint(i) % 64)
}

// Contains reports whether client i is a member.
func (s Set) Contains(i int) bool {
	s.checkIndex(i)
	return s.words[i/64]&(1<<(uint(i)%64)) != 0
}

func (s Set) checkIndex(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("utility: client %d out of universe %d", i, s.n))
	}
}

// Len returns the cardinality |S|.
func (s Set) Len() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// IsEmpty reports whether S = ∅.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Members returns the sorted member list.
func (s Set) Members() []int {
	return s.AppendMembers(make([]int, 0, s.Len()))
}

// AppendMembers appends the members of S to buf in ascending order and
// returns the extended slice — the allocation-free counterpart of Members
// for callers that reuse a scratch buffer. Word-order iteration with
// trailing-zero extraction already yields ascending indices, so no sort is
// needed.
func (s Set) AppendMembers(buf []int) []int {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			buf = append(buf, wi*64+b)
			w &= w - 1
		}
	}
	return buf
}

// Clone returns an independent copy.
func (s Set) Clone() Set {
	out := Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(out.words, s.words)
	return out
}

// With returns a copy of S with client i added.
func (s Set) With(i int) Set {
	out := s.Clone()
	out.Add(i)
	return out
}

// SubsetOf reports whether every member of s is in t.
func (s Set) SubsetOf(t Set) bool {
	if s.n != t.n {
		panic("utility: subset check across universes")
	}
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain the same members of the same universe.
func (s Set) Equal(t Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string usable as a map key. Two sets over the same
// universe have equal keys iff they are equal.
func (s Set) Key() string {
	b := make([]byte, 8*len(s.words))
	for i, w := range s.words {
		for j := 0; j < 8; j++ {
			b[8*i+j] = byte(w >> (8 * uint(j)))
		}
	}
	return string(b)
}

// setKey is a comparable, allocation-free identifier of a Set within one
// fixed universe: for n ≤ 64 the single bitmask word identifies the set and
// str stays empty; larger universes fall back to the Key() string. Two sets
// over the same universe have equal setKeys iff they are equal, which is
// the invariant the evaluator cache and the Store's column index rely on.
type setKey struct {
	mask uint64
	str  string
}

// cacheKey returns the setKey of s. It does not allocate for n ≤ 64 — the
// memoized-evaluator hot path, where the seed's per-lookup Key() string
// materialization dominated small-coalition lookups.
func (s Set) cacheKey() setKey {
	if len(s.words) <= 1 {
		return setKey{mask: s.Mask()}
	}
	return setKey{str: s.Key()}
}

// String renders the member list, e.g. "{0,3,7}".
func (s Set) String() string {
	ms := s.Members()
	out := "{"
	for i, m := range ms {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprint(m)
	}
	return out + "}"
}

// Mask returns the bitmask of the set for universes of at most 64 clients.
// It panics for larger universes.
func (s Set) Mask() uint64 {
	if s.n > 64 {
		panic("utility: mask of universe larger than 64")
	}
	if len(s.words) == 0 {
		return 0
	}
	return s.words[0]
}

// FromMask returns the set over universe n (≤64) described by mask.
func FromMask(n int, mask uint64) Set {
	if n > 64 {
		panic("utility: mask universe larger than 64")
	}
	s := NewSet(n)
	if len(s.words) > 0 {
		s.words[0] = mask
	}
	if n < 64 && mask>>uint(n) != 0 {
		panic(fmt.Sprintf("utility: mask %#x exceeds universe %d", mask, n))
	}
	return s
}

// FullSet returns {0, …, n-1}.
func FullSet(n int) Set {
	s := NewSet(n)
	for i := 0; i < n; i++ {
		s.Add(i)
	}
	return s
}
