package utility

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"comfedsv/internal/fl"
	"comfedsv/internal/mat"
)

// Evaluator computes per-round subset utilities U_t(S) over a completed
// FedAvg run, memoizing results. Calls counts the number of *distinct*
// underlying test-loss evaluations, which is the cost model the paper uses
// in the time-complexity comparison (Section VII-D / Fig. 8).
//
// An Evaluator is safe for concurrent use and built for it: the memo table
// is sharded across evalShards lock stripes keyed by a hash of the cell, so
// a worker pool hammering the cache contends only on colliding stripes, and
// an in-flight table deduplicates concurrent first requests for the same
// cell — the expensive test-loss evaluation runs exactly once per distinct
// cell no matter how many goroutines race for it, making Calls an exact
// count of the Section VII-D cost model.
type Evaluator struct {
	run       *fl.Run
	calls     atomic.Int64
	hits      atomic.Int64
	preloaded atomic.Int64
	warmHits  atomic.Int64
	scratch   sync.Pool
	shards    [evalShards]evalShard
}

// evalShards is the number of lock stripes. 64 keeps the per-stripe maps
// small and the collision probability low for any realistic worker count;
// the array of that many mutex-guarded maps costs a few kilobytes.
const evalShards = 64

type evalShard struct {
	mu       sync.Mutex
	cache    map[cellKey]float64
	inflight map[cellKey]chan struct{}
	// pending lists the cells this stripe evaluated (not preloaded) since
	// the last ExportNew drain — the delta the persistent cell cache and
	// the dispatch path ship.
	pending []cellKey
	// preloaded marks cells installed by Preload rather than evaluated
	// here, so lookups served by a warm start are attributable.
	preloaded map[cellKey]struct{}
}

// evalScratch is the per-goroutine reusable state of one cache-miss
// evaluation: the member buffer and the fl aggregation scratch. Pooled so
// concurrent misses on different cells each get their own.
type evalScratch struct {
	members []int
	fl      fl.UtilityScratch
}

type cellKey struct {
	t   int
	set setKey
}

// shard hashes the cell onto a lock stripe (FNV-style mixing over the
// round, the mask word, and any overflow string bytes).
func (ck cellKey) shard() uint64 {
	h := (uint64(ck.t)+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9 ^ ck.set.mask*0x94d049bb133111eb
	h ^= h >> 31
	for i := 0; i < len(ck.set.str); i++ {
		h = (h ^ uint64(ck.set.str[i])) * 1099511628211
	}
	return h % evalShards
}

// NewEvaluator wraps a completed run.
func NewEvaluator(run *fl.Run) *Evaluator {
	e := &Evaluator{run: run}
	e.scratch.New = func() any { return new(evalScratch) }
	for i := range e.shards {
		e.shards[i].cache = make(map[cellKey]float64)
		e.shards[i].inflight = make(map[cellKey]chan struct{})
	}
	return e
}

// Run returns the underlying federated run.
func (e *Evaluator) Run() *fl.Run { return e.run }

// Calls returns the number of distinct utility evaluations performed — the
// cache-miss count under the Section VII-D cost model.
func (e *Evaluator) Calls() int { return int(e.calls.Load()) }

// Hits returns the number of lookups served from the memo table (or by
// waiting on another goroutine's in-flight evaluation) instead of paying
// for a test-loss evaluation. Together with Calls it is the cache
// hit/miss ledger a shared evaluator exposes per training run.
func (e *Evaluator) Hits() int { return int(e.hits.Load()) }

// Preloaded returns the number of cells installed by Preload — memoized
// values inherited from a previous process or another worker rather than
// evaluated here.
func (e *Evaluator) Preloaded() int { return int(e.preloaded.Load()) }

// WarmHits returns the number of lookups served by preloaded cells — the
// evaluations a warm start actually avoided (each avoided test-loss call
// counts once per lookup, like Hits).
func (e *Evaluator) WarmHits() int { return int(e.warmHits.Load()) }

// Preload installs a batch of previously evaluated cells into the memo
// table without counting them as Calls, so a warm-started evaluator's
// distinct-evaluation ledger still reflects only the work this process
// performed. The batch's digest, universe, and every cell's coordinates
// are validated before anything is installed — a bad batch changes
// nothing and returns an error so the caller can quarantine its source.
// Cells already cached (evaluated or preloaded) are skipped; the count of
// newly installed cells is returned. Preloaded cells are never re-exported
// by ExportNew.
func (e *Evaluator) Preload(b *CellBatch) (int, error) {
	if b == nil || len(b.Cells) == 0 {
		return 0, nil
	}
	n := e.run.NumClients()
	if b.N != n {
		return 0, fmt.Errorf("utility: cell batch universe %d, run universe %d", b.N, n)
	}
	if err := b.Verify(); err != nil {
		return 0, err
	}
	rounds := len(e.run.Rounds)
	keys := make([]cellKey, len(b.Cells))
	for i := range b.Cells {
		c := &b.Cells[i]
		if c.Round < 0 || c.Round >= rounds {
			return 0, fmt.Errorf("utility: cell round %d outside run of %d rounds", c.Round, rounds)
		}
		ck, err := cellKeyOf(n, c)
		if err != nil {
			return 0, err
		}
		keys[i] = ck
	}
	added := 0
	for i, ck := range keys {
		sh := &e.shards[ck.shard()]
		sh.mu.Lock()
		if _, ok := sh.cache[ck]; !ok {
			sh.cache[ck] = b.Cells[i].Value
			if sh.preloaded == nil {
				sh.preloaded = make(map[cellKey]struct{})
			}
			sh.preloaded[ck] = struct{}{}
			added++
		}
		sh.mu.Unlock()
	}
	e.preloaded.Add(int64(added))
	return added, nil
}

// ExportNew drains and returns the cells evaluated since the last drain —
// misses this evaluator actually paid for, excluding preloaded ones — as
// a canonical stamped batch, or nil if nothing new was evaluated. It is
// the producer half of the persistent cell cache: the service flushes
// drains to the run's sidecar, workers ship them with shard completions.
// Safe for concurrent use with evaluations; a cell evaluated concurrently
// with the drain lands in the next batch.
func (e *Evaluator) ExportNew() *CellBatch {
	n := e.run.NumClients()
	var cells []SnapshotCell
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for _, ck := range sh.pending {
			mask, key := snapshotKey(ck)
			cells = append(cells, SnapshotCell{Round: ck.t, Mask: mask, Key: key, Value: sh.cache[ck]})
		}
		sh.pending = nil
		sh.mu.Unlock()
	}
	if len(cells) == 0 {
		return nil
	}
	b := &CellBatch{N: n, Cells: cells}
	b.Stamp()
	return b
}

// Utility returns U_t(S). The empty coalition has utility 0 by convention.
func (e *Evaluator) Utility(t int, s Set) float64 {
	if s.IsEmpty() {
		return 0
	}
	v, _ := e.utility(t, s, cellKey{t: t, set: s.cacheKey()})
	return v
}

// utility is the cache-aware core of Utility. It additionally reports
// whether this call performed the underlying test-loss evaluation (a cache
// miss) — the signal per-job Sessions use to split their lookup counts into
// hits and misses against the shared table. Callers pass the precomputed
// cellKey so Sessions can reuse it for their own bookkeeping.
func (e *Evaluator) utility(t int, s Set, ck cellKey) (float64, bool) {
	sh := &e.shards[ck.shard()]
	sh.mu.Lock()
	for {
		if v, ok := sh.cache[ck]; ok {
			if _, warm := sh.preloaded[ck]; warm {
				e.warmHits.Add(1)
			}
			sh.mu.Unlock()
			e.hits.Add(1)
			return v, false
		}
		done, ok := sh.inflight[ck]
		if !ok {
			break
		}
		// Another goroutine is evaluating this cell; wait for it rather
		// than duplicating the expensive test-loss call.
		sh.mu.Unlock()
		<-done
		sh.mu.Lock()
	}
	done := make(chan struct{})
	sh.inflight[ck] = done
	sh.mu.Unlock()

	// If the evaluation panics (it cannot for the cells the pipelines
	// produce, but a shared evaluator must not let one poisoned caller
	// strand every waiter), unregister the claim before unwinding.
	completed := false
	defer func() {
		if !completed {
			sh.mu.Lock()
			delete(sh.inflight, ck)
			sh.mu.Unlock()
			close(done)
		}
	}()
	sc := e.scratch.Get().(*evalScratch)
	sc.members = s.AppendMembers(sc.members[:0])
	v := e.run.UtilityInto(&sc.fl, t, sc.members)
	e.scratch.Put(sc)

	sh.mu.Lock()
	sh.cache[ck] = v
	sh.pending = append(sh.pending, ck)
	delete(sh.inflight, ck)
	sh.mu.Unlock()
	e.calls.Add(1)
	completed = true
	close(done)
	return v, true
}

// UtilityBatchCtx evaluates the given cells concurrently on a bounded
// worker pool sharing this evaluator's cache and returns the utilities in
// input order. workers ≤ 0 means GOMAXPROCS; the pool never exceeds the
// number of cells. Duplicate and already-cached cells cost one cache hit;
// concurrent first requests for the same cell are deduplicated by the
// in-flight table. Cancellation is checked before each evaluation.
func (e *Evaluator) UtilityBatchCtx(ctx context.Context, cells []Cell, workers int) ([]float64, error) {
	out := make([]float64, len(cells))
	forEachIndex(ctx, len(cells), workers, func(i int) {
		out[i] = e.Utility(cells[i].Round, cells[i].Subset)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Observation is one observed entry of the utility matrix, with its column
// resolved to a dense index by a Store.
type Observation struct {
	Row int     // training round t
	Col int     // column index assigned by the Store
	Val float64 // U_t(S)
}

// Store collects observed utility-matrix entries and assigns stable dense
// column indices to subsets, producing the sparse input of the reduced
// matrix-completion problem (13).
type Store struct {
	T       int
	n       int
	cols    map[setKey]int
	colSets []Set
	obs     []Observation
	seen    map[cellKey]bool
}

// NewStore returns an empty store for a T-round run over n clients.
func NewStore(t, n int) *Store {
	return &Store{T: t, n: n, cols: make(map[setKey]int), seen: make(map[cellKey]bool)}
}

// ColumnOf returns the dense column index for subset s, registering it on
// first use.
func (st *Store) ColumnOf(s Set) int {
	if s.Universe() != st.n {
		panic(fmt.Sprintf("utility: subset universe %d, store universe %d", s.Universe(), st.n))
	}
	k := s.cacheKey()
	if c, ok := st.cols[k]; ok {
		return c
	}
	c := len(st.colSets)
	st.cols[k] = c
	st.colSets = append(st.colSets, s.Clone())
	return c
}

// HasColumn reports whether s has been registered, without registering it.
func (st *Store) HasColumn(s Set) (int, bool) {
	c, ok := st.cols[s.cacheKey()]
	return c, ok
}

// ColumnSet returns the subset of the given column index.
func (st *Store) ColumnSet(col int) Set { return st.colSets[col] }

// NumColumns returns how many distinct subsets have been registered.
func (st *Store) NumColumns() int { return len(st.colSets) }

// Observe records U_{t,S} = val. Duplicate (t,S) pairs are ignored (the
// first value wins; the evaluator is deterministic so they are equal).
func (st *Store) Observe(t int, s Set, val float64) {
	if t < 0 || t >= st.T {
		panic(fmt.Sprintf("utility: round %d out of [0,%d)", t, st.T))
	}
	ck := cellKey{t: t, set: s.cacheKey()}
	if st.seen[ck] {
		return
	}
	st.seen[ck] = true
	st.obs = append(st.obs, Observation{Row: t, Col: st.ColumnOf(s), Val: val})
}

// Observations returns the recorded entries (shared slice; do not mutate).
func (st *Store) Observations() []Observation { return st.obs }

// NumObserved returns the number of recorded entries.
func (st *Store) NumObserved() int { return len(st.obs) }

// Density returns the fraction of the T×NumColumns grid that is observed.
func (st *Store) Density() float64 {
	total := st.T * st.NumColumns()
	if total == 0 {
		return 0
	}
	return float64(len(st.obs)) / float64(total)
}

// FullMatrix materializes the complete utility matrix U ∈ R^{T×2^N} for a
// small-N run (N ≤ 20), evaluating every nonempty subset in every round.
// Column index is the subset bitmask; column 0 (empty set) is all zeros.
// This is the ground-truth object of Example 2 / Fig. 2 and of the paper's
// "ground-truth" baseline metric.
func FullMatrix(e Source) *mat.Dense {
	n := e.Run().NumClients()
	if n > 20 {
		panic(fmt.Sprintf("utility: full matrix for %d clients is infeasible", n))
	}
	t := len(e.Run().Rounds)
	cols := 1 << uint(n)
	u := mat.NewDense(t, cols)
	for round := 0; round < t; round++ {
		row := u.Row(round)
		for mask := uint64(1); mask < uint64(cols); mask++ {
			row[mask] = e.Utility(round, FromMask(n, mask))
		}
	}
	return u
}

// ObserveSelected records the utilities of every subset of the selected
// clients in every round — the "observed" region {U_{t,S} : S ⊆ I_t} that
// the exact (non-sampled) formulation (9) uses. Only feasible for small
// selection sizes.
func ObserveSelected(e Source, st *Store) {
	if err := ObserveSelectedCtx(context.Background(), e, st); err != nil {
		// The background context never cancels, so this is the
		// infeasible-selection error — panic to preserve the historical
		// ObserveSelected contract.
		panic(err)
	}
}

// ObserveSelectedCtx is ObserveSelected with cooperative cancellation,
// checked before every utility evaluation (a single round costs up to
// 2^|I_t| of them). Unlike ObserveSelected it returns an error instead of
// panicking for infeasible selection sizes.
func ObserveSelectedCtx(ctx context.Context, e Source, st *Store) error {
	for t, rd := range e.Run().Rounds {
		sel := rd.Selected
		k := len(sel)
		if k > 20 {
			return fmt.Errorf("utility: 2^%d subsets per round is infeasible", k)
		}
		for mask := uint64(1); mask < 1<<uint(k); mask++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			s := NewSet(e.Run().NumClients())
			for b := 0; b < k; b++ {
				if mask&(1<<uint(b)) != 0 {
					s.Add(sel[b])
				}
			}
			st.Observe(t, s, e.Utility(t, s))
		}
	}
	return nil
}
