package utility

import (
	"context"
	"sync"
	"sync/atomic"

	"comfedsv/internal/fl"
)

// Source is the utility oracle every valuation pipeline consumes: a
// memoized view of one completed FedAvg run. *Evaluator is the canonical
// implementation; *Session layers per-job accounting over a shared
// Evaluator so several valuation jobs can reuse one memo table while each
// still reports the utility-call count it would have paid alone.
type Source interface {
	// Run returns the underlying federated run.
	Run() *fl.Run
	// Utility returns U_t(S); the empty coalition has utility 0.
	Utility(t int, s Set) float64
	// UtilityBatchCtx evaluates cells concurrently on a bounded pool and
	// returns the utilities in input order.
	UtilityBatchCtx(ctx context.Context, cells []Cell, workers int) ([]float64, error)
	// Calls returns the number of distinct utility cells this source has
	// been asked for — the Section VII-D cost a standalone evaluator would
	// have paid.
	Calls() int
}

var (
	_ Source = (*Evaluator)(nil)
	_ Source = (*Session)(nil)
)

// Session is one valuation job's view of a shared Evaluator. All lookups
// hit the shared memo table (so concurrent jobs over the same run amortize
// test-loss evaluations), but the session separately tracks the distinct
// cells *it* requested: Calls reports exactly what a fresh evaluator would
// have reported for the same pipeline, which keeps run-backed job reports
// byte-identical to their inline-training equivalents. Hits and Misses
// split those distinct cells by whether the shared table already held them.
//
// A Session is safe for concurrent use by the goroutines of the one job it
// belongs to; distinct jobs must use distinct sessions.
type Session struct {
	e        *Evaluator
	distinct atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64
	shards   [evalShards]sessionShard
}

type sessionShard struct {
	mu   sync.Mutex
	seen map[cellKey]struct{}
}

// NewSession returns a fresh per-job view of the evaluator.
func (e *Evaluator) NewSession() *Session {
	s := &Session{e: e}
	for i := range s.shards {
		s.shards[i].seen = make(map[cellKey]struct{})
	}
	return s
}

// Run returns the underlying federated run.
func (s *Session) Run() *fl.Run { return s.e.run }

// Calls returns the number of distinct cells this session requested. It
// equals Hits()+Misses() and matches the Calls a standalone Evaluator
// would report for the same request sequence.
func (s *Session) Calls() int { return int(s.distinct.Load()) }

// Hits returns how many of this session's distinct cells were already in
// the shared memo table (paid for by an earlier job or an earlier stage of
// a concurrent one).
func (s *Session) Hits() int { return int(s.hits.Load()) }

// Misses returns how many of this session's distinct cells required a
// fresh test-loss evaluation.
func (s *Session) Misses() int { return int(s.misses.Load()) }

// Utility returns U_t(S) through the shared cache, recording the cell in
// this session's ledger on first request. When two session goroutines race
// on the same previously-unseen cell the hit/miss attribution of that one
// cell may go either way (the total Calls count is always exact); the
// pipelines request each distinct cell from one goroutine, so in practice
// the split is exact too.
func (s *Session) Utility(t int, set Set) float64 {
	if set.IsEmpty() {
		return 0
	}
	ck := cellKey{t: t, set: set.cacheKey()}
	sh := &s.shards[ck.shard()]
	sh.mu.Lock()
	_, dup := sh.seen[ck]
	if !dup {
		sh.seen[ck] = struct{}{}
	}
	sh.mu.Unlock()
	v, computed := s.e.utility(t, set, ck)
	if !dup {
		s.distinct.Add(1)
		if computed {
			s.misses.Add(1)
		} else {
			s.hits.Add(1)
		}
	}
	return v
}

// UtilityBatchCtx evaluates the given cells concurrently through the
// shared cache, with this session's accounting. Semantics match
// Evaluator.UtilityBatchCtx.
func (s *Session) UtilityBatchCtx(ctx context.Context, cells []Cell, workers int) ([]float64, error) {
	out := make([]float64, len(cells))
	forEachIndex(ctx, len(cells), workers, func(i int) {
		out[i] = s.Utility(cells[i].Round, cells[i].Subset)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
