package utility

import (
	"strings"
	"testing"
)

func TestCellBatchStampVerify(t *testing.T) {
	b := &CellBatch{N: 4, Cells: []SnapshotCell{
		{Round: 1, Mask: 0b101, Value: 0.25},
		{Round: 0, Mask: 0b11, Value: -0.5},
		{Round: 1, Mask: 0b10, Value: 1.75},
	}}
	b.Stamp()
	if err := b.Verify(); err != nil {
		t.Fatalf("freshly stamped batch must verify: %v", err)
	}
	// Canonical order: (round, mask).
	want := []struct {
		round int
		mask  uint64
	}{{0, 0b11}, {1, 0b10}, {1, 0b101}}
	for i, w := range want {
		if b.Cells[i].Round != w.round || b.Cells[i].Mask != w.mask {
			t.Fatalf("cell %d = (%d,%#x), want (%d,%#x)", i, b.Cells[i].Round, b.Cells[i].Mask, w.round, w.mask)
		}
	}
	// Stamping is idempotent.
	d := b.Digest
	b.Stamp()
	if b.Digest != d {
		t.Fatal("restamping a canonical batch changed the digest")
	}
}

func TestCellBatchVerifyCatchesTampering(t *testing.T) {
	b := &CellBatch{N: 4, Cells: []SnapshotCell{
		{Round: 0, Mask: 0b1, Value: 1},
		{Round: 0, Mask: 0b10, Value: 2},
	}}
	b.Stamp()
	mutations := []func(*CellBatch){
		func(b *CellBatch) { b.Cells[0].Value = 3 },
		func(b *CellBatch) { b.Cells[1].Round = 5 },
		func(b *CellBatch) { b.Cells[0].Mask = 0b100 },
		func(b *CellBatch) { b.Cells[0], b.Cells[1] = b.Cells[1], b.Cells[0] },
		func(b *CellBatch) { b.Digest = strings.Repeat("0", 16) },
	}
	for i, mutate := range mutations {
		c := &CellBatch{N: b.N, Cells: append([]SnapshotCell(nil), b.Cells...), Digest: b.Digest}
		mutate(c)
		if err := c.Verify(); err == nil {
			t.Fatalf("mutation %d went undetected", i)
		}
	}
}

func TestExportPreloadRoundTrip(t *testing.T) {
	run := tinyRun(t, 4, 3, 2)
	src := NewEvaluator(run)
	sets := []Set{
		FromMembers(4, []int{0}),
		FromMembers(4, []int{1, 3}),
		FromMembers(4, []int{0, 1, 2, 3}),
	}
	want := make(map[int][]float64, len(run.Rounds))
	for ti := range run.Rounds {
		for _, s := range sets {
			want[ti] = append(want[ti], src.Utility(ti, s))
		}
	}
	batch := src.ExportNew()
	if batch == nil {
		t.Fatal("ExportNew returned nil after fresh evaluations")
	}
	if got, wantN := len(batch.Cells), len(sets)*len(run.Rounds); got != wantN {
		t.Fatalf("exported %d cells, want %d", got, wantN)
	}
	if err := batch.Verify(); err != nil {
		t.Fatalf("exported batch does not verify: %v", err)
	}
	// Drained cells are not exported again.
	if again := src.ExportNew(); again != nil {
		t.Fatalf("second ExportNew re-exported %d cells, want nil", len(again.Cells))
	}

	dst := NewEvaluator(run)
	added, err := dst.Preload(batch)
	if err != nil {
		t.Fatal(err)
	}
	if added != len(batch.Cells) {
		t.Fatalf("preload added %d cells, want %d", added, len(batch.Cells))
	}
	if dst.Preloaded() != added {
		t.Fatalf("Preloaded() = %d, want %d", dst.Preloaded(), added)
	}
	for ti := range run.Rounds {
		for si, s := range sets {
			if got := dst.Utility(ti, s); got != want[ti][si] {
				t.Fatalf("round %d set %d: warm value %v != cold value %v (must be bit-identical)", ti, si, got, want[ti][si])
			}
		}
	}
	if dst.Calls() != 0 {
		t.Fatalf("warm evaluator paid %d calls, want 0", dst.Calls())
	}
	if got, wantN := dst.WarmHits(), len(sets)*len(run.Rounds); got != wantN {
		t.Fatalf("WarmHits = %d, want %d", got, wantN)
	}
	// Preloaded cells never count as new work: nothing to re-export.
	if exp := dst.ExportNew(); exp != nil {
		t.Fatalf("warm evaluator re-exported %d preloaded cells, want nil", len(exp.Cells))
	}
}

func TestPreloadIdempotentAndPartial(t *testing.T) {
	run := tinyRun(t, 4, 2, 2)
	src := NewEvaluator(run)
	a := FromMembers(4, []int{0, 1})
	bSet := FromMembers(4, []int{2, 3})
	src.Utility(0, a)
	src.Utility(0, bSet)
	batch := src.ExportNew()

	dst := NewEvaluator(run)
	dst.Utility(0, a) // dst already knows one of the two cells
	added, err := dst.Preload(batch)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Fatalf("preload over a half-warm evaluator added %d, want 1", added)
	}
	// Preloading the same batch again adds nothing.
	added, err = dst.Preload(batch)
	if err != nil || added != 0 {
		t.Fatalf("re-preload added %d, err %v; want 0, nil", added, err)
	}
}

func TestPreloadRejectsBadBatches(t *testing.T) {
	run := tinyRun(t, 4, 2, 2)
	good := func() *CellBatch {
		b := &CellBatch{N: 4, Cells: []SnapshotCell{{Round: 0, Mask: 0b11, Value: 0.5}}}
		b.Stamp()
		return b
	}
	cases := []struct {
		name  string
		batch *CellBatch
	}{
		{"wrong-universe", func() *CellBatch { b := good(); b.N = 5; b.Stamp(); return b }()},
		{"bad-digest", func() *CellBatch { b := good(); b.Digest = "dead"; return b }()},
		{"out-of-range-round", func() *CellBatch {
			b := &CellBatch{N: 4, Cells: []SnapshotCell{{Round: 99, Mask: 0b1, Value: 1}}}
			b.Stamp()
			return b
		}()},
		{"empty-coalition", func() *CellBatch {
			b := &CellBatch{N: 4, Cells: []SnapshotCell{{Round: 0, Mask: 0, Value: 1}}}
			b.Stamp()
			return b
		}()},
		{"mask-beyond-universe", func() *CellBatch {
			b := &CellBatch{N: 4, Cells: []SnapshotCell{{Round: 0, Mask: 1 << 10, Value: 1}}}
			b.Stamp()
			return b
		}()},
		{"overflow-key-in-small-universe", func() *CellBatch {
			b := &CellBatch{N: 4, Cells: []SnapshotCell{{Round: 0, Key: "0100000000000000", Value: 1}}}
			b.Stamp()
			return b
		}()},
	}
	for _, tc := range cases {
		e := NewEvaluator(run)
		added, err := e.Preload(tc.batch)
		if err == nil {
			t.Fatalf("%s: preload accepted a bad batch", tc.name)
		}
		if added != 0 || e.Preloaded() != 0 {
			t.Fatalf("%s: rejected batch still installed cells (added %d, preloaded %d)", tc.name, added, e.Preloaded())
		}
	}
}

// TestPreloadAtomicOnMixedBatch pins the all-or-nothing contract: a batch
// with one invalid cell among valid ones installs nothing.
func TestPreloadAtomicOnMixedBatch(t *testing.T) {
	run := tinyRun(t, 4, 2, 2)
	b := &CellBatch{N: 4, Cells: []SnapshotCell{
		{Round: 0, Mask: 0b1, Value: 0.5},
		{Round: 0, Mask: 0, Value: 0.25}, // invalid: empty coalition
		{Round: 1, Mask: 0b11, Value: 0.125},
	}}
	b.Stamp()
	e := NewEvaluator(run)
	if _, err := e.Preload(b); err == nil {
		t.Fatal("mixed batch must be rejected")
	}
	if e.Preloaded() != 0 {
		t.Fatalf("mixed batch installed %d cells, want 0", e.Preloaded())
	}
	// The evaluator still works cold after the rejection.
	e.Utility(0, FromMembers(4, []int{0}))
	if e.Calls() != 1 {
		t.Fatalf("post-rejection evaluation paid %d calls, want 1", e.Calls())
	}
}

func TestPreloadNilAndEmpty(t *testing.T) {
	run := tinyRun(t, 4, 2, 2)
	e := NewEvaluator(run)
	if added, err := e.Preload(nil); added != 0 || err != nil {
		t.Fatalf("Preload(nil) = (%d, %v), want (0, nil)", added, err)
	}
	empty := &CellBatch{N: 4}
	empty.Stamp()
	if added, err := e.Preload(empty); added != 0 || err != nil {
		t.Fatalf("Preload(empty) = (%d, %v), want (0, nil)", added, err)
	}
	if e.ExportNew() != nil {
		t.Fatal("empty evaluator exported a batch")
	}
}
