package utility

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// SnapshotCell is one memoized utility-matrix entry in durable wire form:
// the round, the coalition, and the evaluated value U_t(S). The coalition
// is carried as the raw bitmask for universes of at most 64 clients and as
// the lowercase-hex encoding of Set.Key's little-endian word bytes for
// larger ones — within one evaluator the universe is fixed, so a batch
// never mixes the two encodings.
type SnapshotCell struct {
	Round int     `json:"round"`
	Mask  uint64  `json:"mask,omitempty"`
	Key   string  `json:"key,omitempty"`
	Value float64 `json:"value"`
}

// CellBatch is a canonical batch of memoized cells — the unit the
// cell-cache sidecar appends and the dispatch path ships between workers
// and the coordinator. Cells are sorted by (round, coalition) and Digest
// is an FNV-1a content hash over coordinates and raw IEEE-754 value bits,
// mirroring the shapley.ShardObservations wire conventions, so an import
// can verify a batch is exactly what its producer evaluated before
// trusting a byte of it.
type CellBatch struct {
	// N is the client universe size the cells were evaluated over; a
	// preload checks it against the evaluator's run so a mis-addressed
	// batch fails loudly.
	N      int            `json:"n"`
	Cells  []SnapshotCell `json:"cells"`
	Digest string         `json:"digest"`
}

// keyBytes returns the coalition identity bytes a cell contributes to the
// content digest: the mask as 8 little-endian bytes for small universes
// (identical to Set.Key of a one-word set) or the decoded key bytes
// otherwise. Invalid hex keys hash their raw string bytes — Verify still
// works (Stamp hashed the same bytes) and validation rejects the cell
// separately.
func (c *SnapshotCell) keyBytes(buf []byte) []byte {
	if c.Key == "" {
		buf = binary.LittleEndian.AppendUint64(buf[:0], c.Mask)
		return buf
	}
	raw, err := hex.DecodeString(c.Key)
	if err != nil {
		return []byte(c.Key)
	}
	return raw
}

// digest computes the canonical content hash over the batch's cells in
// their current order.
func (b *CellBatch) digest() string {
	h := fnv.New64a()
	var buf [8]byte
	var kb []byte
	for i := range b.Cells {
		c := &b.Cells[i]
		binary.LittleEndian.PutUint64(buf[:], uint64(c.Round))
		h.Write(buf[:])
		kb = c.keyBytes(kb)
		h.Write(kb)
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(c.Value))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// sort orders the cells canonically: by round, then by coalition (mask for
// small universes, key string otherwise — hex encoding preserves byte
// order, so the comparison is deterministic either way).
func (b *CellBatch) sort() {
	sort.Slice(b.Cells, func(i, j int) bool {
		a, c := &b.Cells[i], &b.Cells[j]
		if a.Round != c.Round {
			return a.Round < c.Round
		}
		if a.Mask != c.Mask {
			return a.Mask < c.Mask
		}
		return a.Key < c.Key
	})
}

// Stamp sorts the cells canonically and stamps the content digest — for
// producers and for tests that fabricate batches by hand.
func (b *CellBatch) Stamp() {
	b.sort()
	b.Digest = b.digest()
}

// Verify recomputes the content digest and checks it against the stamped
// one, catching disk or wire corruption, reordering, and tampering in one
// pass.
func (b *CellBatch) Verify() error {
	if got := b.digest(); got != b.Digest {
		return fmt.Errorf("utility: cell batch digest mismatch: recomputed %s, stamped %s", got, b.Digest)
	}
	return nil
}

// snapshotKey converts a memo-table key to its wire encoding.
func snapshotKey(ck cellKey) (mask uint64, key string) {
	if ck.set.str == "" {
		return ck.set.mask, ""
	}
	return 0, hex.EncodeToString([]byte(ck.set.str))
}

// cellKeyOf validates a wire cell against a universe of n clients and
// converts it back to the memo-table key. It rejects empty coalitions
// (never cached — the empty set's utility is 0 by convention), masks with
// bits beyond the universe, and keys of the wrong length or encoding.
func cellKeyOf(n int, c *SnapshotCell) (cellKey, error) {
	if n <= 64 {
		if c.Key != "" {
			return cellKey{}, fmt.Errorf("utility: cell carries an overflow key in a %d-client universe", n)
		}
		if c.Mask == 0 {
			return cellKey{}, fmt.Errorf("utility: cell for the empty coalition")
		}
		if n < 64 && c.Mask>>uint(n) != 0 {
			return cellKey{}, fmt.Errorf("utility: cell mask %#x exceeds universe %d", c.Mask, n)
		}
		return cellKey{t: c.Round, set: setKey{mask: c.Mask}}, nil
	}
	if c.Mask != 0 {
		return cellKey{}, fmt.Errorf("utility: cell carries a bitmask in a %d-client universe", n)
	}
	raw, err := hex.DecodeString(c.Key)
	if err != nil {
		return cellKey{}, fmt.Errorf("utility: bad cell key: %w", err)
	}
	if len(raw) != 8*((n+63)/64) {
		return cellKey{}, fmt.Errorf("utility: cell key is %d bytes, want %d for universe %d", len(raw), 8*((n+63)/64), n)
	}
	empty := true
	for _, by := range raw {
		if by != 0 {
			empty = false
			break
		}
	}
	if empty {
		return cellKey{}, fmt.Errorf("utility: cell for the empty coalition")
	}
	// Bits beyond the universe live in the last word; reject them so a
	// corrupted key cannot alias a valid coalition.
	if n%64 != 0 {
		last := binary.LittleEndian.Uint64(raw[len(raw)-8:])
		if last>>uint(n%64) != 0 {
			return cellKey{}, fmt.Errorf("utility: cell key has bits beyond universe %d", n)
		}
	}
	return cellKey{t: c.Round, set: setKey{str: string(raw)}}, nil
}
