package utility

import (
	"sync"
	"testing"
)

// TestEvaluatorConcurrent hammers one Evaluator from many goroutines over
// an overlapping cell set; run with -race. Concurrent first evaluations of
// a cell must agree with the serial result, and Calls must never exceed the
// number of distinct cells.
func TestEvaluatorConcurrent(t *testing.T) {
	run := tinyRun(t, 5, 4, 2)
	serial := NewEvaluator(run)
	e := NewEvaluator(run)

	type cell struct {
		t    int
		mask uint64
	}
	var cells []cell
	for round := 0; round < 4; round++ {
		for mask := uint64(1); mask < 1<<5; mask++ {
			cells = append(cells, cell{round, mask})
		}
	}
	want := make([]float64, len(cells))
	for i, c := range cells {
		want[i] = serial.Utility(c.t, FromMask(5, c.mask))
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i := range cells {
					// Stagger start points so goroutines race on
					// different cells at any instant.
					j := (i + g*len(cells)/goroutines) % len(cells)
					c := cells[j]
					if got := e.Utility(c.t, FromMask(5, c.mask)); got != want[j] {
						t.Errorf("round %d mask %#x: concurrent %v, serial %v", c.t, c.mask, got, want[j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if e.Calls() > len(cells) {
		t.Fatalf("Calls = %d, want at most %d distinct evaluations", e.Calls(), len(cells))
	}
	if e.Calls() != serial.Calls() {
		t.Fatalf("Calls = %d, serial made %d", e.Calls(), serial.Calls())
	}
}
