package utility

import (
	"context"
	"sync"
	"testing"
)

// TestEvaluatorConcurrent hammers one Evaluator from many goroutines over
// an overlapping cell set; run with -race. Concurrent first evaluations of
// a cell must agree with the serial result, and Calls must never exceed the
// number of distinct cells.
func TestEvaluatorConcurrent(t *testing.T) {
	run := tinyRun(t, 5, 4, 2)
	serial := NewEvaluator(run)
	e := NewEvaluator(run)

	type cell struct {
		t    int
		mask uint64
	}
	var cells []cell
	for round := 0; round < 4; round++ {
		for mask := uint64(1); mask < 1<<5; mask++ {
			cells = append(cells, cell{round, mask})
		}
	}
	want := make([]float64, len(cells))
	for i, c := range cells {
		want[i] = serial.Utility(c.t, FromMask(5, c.mask))
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i := range cells {
					// Stagger start points so goroutines race on
					// different cells at any instant.
					j := (i + g*len(cells)/goroutines) % len(cells)
					c := cells[j]
					if got := e.Utility(c.t, FromMask(5, c.mask)); got != want[j] {
						t.Errorf("round %d mask %#x: concurrent %v, serial %v", c.t, c.mask, got, want[j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if e.Calls() > len(cells) {
		t.Fatalf("Calls = %d, want at most %d distinct evaluations", e.Calls(), len(cells))
	}
	if e.Calls() != serial.Calls() {
		t.Fatalf("Calls = %d, serial made %d", e.Calls(), serial.Calls())
	}
}

// TestEvaluatorInflightDedup pins the sharded cache's singleflight
// behavior: when many goroutines request the same distinct cells at once,
// each cell's test-loss evaluation runs exactly once — Calls equals the
// distinct-cell count, not merely bounds it.
func TestEvaluatorInflightDedup(t *testing.T) {
	run := tinyRun(t, 6, 3, 2)
	e := NewEvaluator(run)

	var cells []Cell
	for round := 0; round < 3; round++ {
		for mask := uint64(1); mask < 1<<6; mask++ {
			cells = append(cells, Cell{Round: round, Subset: FromMask(6, mask)})
		}
	}

	const goroutines = 16
	var start, wg sync.WaitGroup
	start.Add(1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start.Wait() // release every goroutine at once to maximize races
			for _, c := range cells {
				e.Utility(c.Round, c.Subset)
			}
		}()
	}
	start.Done()
	wg.Wait()

	if e.Calls() != len(cells) {
		t.Fatalf("Calls = %d, want exactly %d distinct evaluations", e.Calls(), len(cells))
	}
}

// TestUtilityBatchMatchesSerial checks UtilityBatchCtx against one-by-one
// evaluation for several worker counts, including duplicate cells in the
// batch.
func TestUtilityBatchMatchesSerial(t *testing.T) {
	run := tinyRun(t, 5, 4, 2)
	serial := NewEvaluator(run)

	var cells []Cell
	for round := 0; round < 4; round++ {
		for mask := uint64(1); mask < 1<<5; mask++ {
			cells = append(cells, Cell{Round: round, Subset: FromMask(5, mask)})
		}
	}
	// Duplicates and an empty subset must round-trip too.
	cells = append(cells, cells[3], cells[17], Cell{Round: 1, Subset: NewSet(5)})

	want := make([]float64, len(cells))
	for i, c := range cells {
		want[i] = serial.Utility(c.Round, c.Subset)
	}

	for _, workers := range []int{0, 1, 4, 64} {
		e := NewEvaluator(run)
		got, err := e.UtilityBatchCtx(context.Background(), cells, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d cell %d: batch %v, serial %v", workers, i, got[i], want[i])
			}
		}
		if e.Calls() != serial.Calls() {
			t.Fatalf("workers=%d: Calls = %d, serial made %d", workers, e.Calls(), serial.Calls())
		}
	}
}

// TestUtilityBatchCancellation verifies a cancelled context aborts the
// batch with the context's error.
func TestUtilityBatchCancellation(t *testing.T) {
	run := tinyRun(t, 5, 3, 2)
	e := NewEvaluator(run)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var cells []Cell
	for mask := uint64(1); mask < 1<<5; mask++ {
		cells = append(cells, Cell{Round: 0, Subset: FromMask(5, mask)})
	}
	if _, err := e.UtilityBatchCtx(ctx, cells, 2); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
