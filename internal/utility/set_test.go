package utility

import (
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(100)
	if !s.IsEmpty() || s.Len() != 0 {
		t.Fatal("fresh set must be empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(99)
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	for _, m := range []int{0, 63, 64, 99} {
		if !s.Contains(m) {
			t.Fatalf("missing member %d", m)
		}
	}
	if s.Contains(1) {
		t.Fatal("spurious member 1")
	}
	s.Remove(63)
	if s.Contains(63) || s.Len() != 3 {
		t.Fatal("Remove failed")
	}
}

func TestSetMembersSorted(t *testing.T) {
	s := FromMembers(70, []int{65, 3, 40})
	ms := s.Members()
	want := []int{3, 40, 65}
	if len(ms) != 3 {
		t.Fatalf("Members = %v", ms)
	}
	for i := range want {
		if ms[i] != want[i] {
			t.Fatalf("Members = %v, want %v", ms, want)
		}
	}
}

func TestSetOutOfRangePanics(t *testing.T) {
	s := NewSet(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Add(10)
}

func TestSetCloneAndWith(t *testing.T) {
	s := FromMembers(10, []int{1, 2})
	w := s.With(5)
	if s.Contains(5) {
		t.Fatal("With must not mutate the receiver")
	}
	if !w.Contains(5) || !w.Contains(1) {
		t.Fatal("With must add to a copy")
	}
}

func TestSubsetOf(t *testing.T) {
	a := FromMembers(70, []int{1, 65})
	b := FromMembers(70, []int{1, 2, 65})
	if !a.SubsetOf(b) {
		t.Fatal("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Fatal("b ⊄ a expected")
	}
	if !a.SubsetOf(a) {
		t.Fatal("a ⊆ a expected")
	}
}

func TestKeyUniqueness(t *testing.T) {
	// Property: keys are equal iff sets are equal.
	f := func(xs, ys []uint8) bool {
		a := NewSet(200)
		b := NewSet(200)
		for _, x := range xs {
			a.Add(int(x) % 200)
		}
		for _, y := range ys {
			b.Add(int(y) % 200)
		}
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskRoundTrip(t *testing.T) {
	for mask := uint64(0); mask < 64; mask++ {
		s := FromMask(6, mask)
		if s.Mask() != mask {
			t.Fatalf("mask %d round-tripped to %d", mask, s.Mask())
		}
	}
}

func TestFromMaskTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromMask(3, 0x10)
}

func TestFullSet(t *testing.T) {
	s := FullSet(130)
	if s.Len() != 130 {
		t.Fatalf("FullSet len %d", s.Len())
	}
}

func TestString(t *testing.T) {
	s := FromMembers(10, []int{3, 0, 7})
	if got := s.String(); got != "{0,3,7}" {
		t.Fatalf("String = %q", got)
	}
}
