package faultinject

import (
	"sync"
	"time"
)

// ManualClock is a deterministic clock for retry/backoff and deadline
// tests: time only moves when the test calls Advance, so a chaos suite
// exercising exponential backoff or a per-job deadline runs instantly
// and never flakes on scheduler jitter. It satisfies the service
// package's Clock contract (Now + After) structurally.
type ManualClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []waiter
}

type waiter struct {
	at time.Time
	ch chan time.Time
}

// NewManualClock returns a clock frozen at the given instant.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now returns the clock's current instant.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that receives the clock's time once Advance
// has moved it at least d past the current instant. A non-positive d
// fires on the next Advance call (never synchronously), keeping wake
// order deterministic.
func (c *ManualClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	c.waiters = append(c.waiters, waiter{at: c.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward and fires every waiter whose deadline
// has been reached, in registration order.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	var due []chan time.Time
	rest := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(now) {
			due = append(due, w.ch)
		} else {
			rest = append(rest, w)
		}
	}
	c.waiters = rest
	c.mu.Unlock()
	for _, ch := range due {
		ch <- now
	}
}

// Waiters returns how many After channels have not fired yet — the
// synchronization handle tests use to know a backoff sleep was entered
// before advancing the clock.
func (c *ManualClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
