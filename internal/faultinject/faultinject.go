// Package faultinject provides deterministic fault schedules for chaos
// testing the comfedsvd job engine. It is dependency-free (standard
// library only) so every layer — persist, service, api — can thread a
// Hook through its execution points without import cycles.
//
// A Hook is consulted at instrumented points (task executions, journal
// appends) and decides, deterministically, what fault to inject there:
// a transient error (retried by the scheduler), a panic (exercising the
// panic-isolation path), a simulated process crash (freezing on-disk
// state exactly as a dying daemon would), or injected latency. Faults
// are scheduled by match count or by a seeded pseudo-random schedule,
// never by wall clock or real randomness, so a chaos test that fails
// replays identically from its seed.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Instrumented operation names used by the job engine's hook points.
const (
	// OpTask is consulted immediately before a scheduler stage task
	// executes. Stage is the task's stage name (prepare, observe,
	// complete, shapley), Shard its observation shard index (-1 for
	// non-shard stages), Attempt its 0-based retry attempt.
	OpTask = "task"
	// OpJournalBefore is consulted before a journal record is appended
	// (an injected crash here loses the record); OpJournalAfter after the
	// record is durably on disk (a crash here keeps it). Stage carries
	// the pipeline stage for task records (prepare, observe, complete,
	// shapley) and the record type otherwise (submit, fail); Shard is the
	// task record's shard.
	OpJournalBefore = "journal.before"
	OpJournalAfter  = "journal.after"
	// OpCellsBefore is consulted before a cell-cache batch is appended to
	// a run's sidecar (an injected crash here loses the batch);
	// OpCellsAfter after the batch is durably on disk (a crash here keeps
	// it). Stage is the flush boundary the producer names (e.g. "merge",
	// "extract", or "worker"); Shard is -1; JobID carries the run ID.
	OpCellsBefore = "cells.before"
	OpCellsAfter  = "cells.after"
	// OpQuarantine is consulted between a journal quarantine's rename and
	// the directory sync that makes it durable — an injected crash here
	// models losing the directory update, the window in which a crashed
	// daemon can resurrect a quarantined journal. Stage is "quarantine".
	OpQuarantine = "store.quarantine"
)

// Point identifies one instrumented step of the job engine.
type Point struct {
	// Op is one of the Op* constants.
	Op string
	// Stage is the task stage or journal record type at this point.
	Stage string
	// Shard is the observation shard index, -1 for non-shard points.
	Shard int
	// Attempt is the task's 0-based retry attempt; 0 for journal points.
	Attempt int
	// JobID is the owning job, when known.
	JobID string
}

func (p Point) String() string {
	return fmt.Sprintf("%s/%s shard=%d attempt=%d job=%s", p.Op, p.Stage, p.Shard, p.Attempt, p.JobID)
}

// Hook inspects an instrumented point and returns the fault to inject
// there: nil for none, ErrCrash (via Crash) to simulate process death, a
// *PanicError to make the harness panic at the point, or any other error
// to fail the step with it (wrap with Transient to make the scheduler
// retry it). Hooks must be safe for concurrent use; every constructor in
// this package returns one that is.
type Hook func(Point) error

// ErrCrash is the simulated-process-death sentinel. A journal that
// receives it stops accepting appends (its on-disk state freezes exactly
// as a dying process would leave it) and the scheduler fails the job
// without writing a failure record — the in-memory manager is then
// abandoned by the test and a fresh one recovers from the frozen disk.
var ErrCrash = errors.New("faultinject: simulated crash")

// PanicError instructs the harness to panic with Msg at the matched
// point, exercising the scheduler's panic-isolation path. It is returned
// by hooks, not thrown by them, so the panic happens inside the
// instrumented frame where the production recover lives.
type PanicError struct{ Msg string }

func (e *PanicError) Error() string { return "faultinject: injected panic: " + e.Msg }

// transientError marks an injected failure as retryable via the
// structural Transient() contract the scheduler's classifier checks.
type transientError struct{ err error }

func (t *transientError) Error() string   { return t.err.Error() }
func (t *transientError) Unwrap() error   { return t.err }
func (t *transientError) Transient() bool { return true }

// Transient wraps err so the scheduler treats the injected failure as
// retryable. A nil err yields a generic transient fault.
func Transient(err error) error {
	if err == nil {
		err = errors.New("faultinject: injected transient fault")
	}
	return &transientError{err: err}
}

// Chain composes hooks: the first non-nil fault wins. Later hooks are
// not consulted once one fires, so their match counters only advance on
// points the earlier hooks let through.
func Chain(hooks ...Hook) Hook {
	return func(p Point) error {
		for _, h := range hooks {
			if h == nil {
				continue
			}
			if err := h(p); err != nil {
				return err
			}
		}
		return nil
	}
}

// matcher selects the points a rule applies to. Zero fields match
// everything of the hook's op.
type matcher struct {
	op    string
	stage string
	shard int // -2 matches any shard
}

func (m matcher) matches(p Point) bool {
	if m.op != "" && p.Op != m.op {
		return false
	}
	if m.stage != "" && p.Stage != m.stage {
		return false
	}
	if m.shard != -2 && p.Shard != m.shard {
		return false
	}
	return true
}

// counted returns a hook that fires fault on the nth (1-based) matching
// point and never again. Each call owns its own counter, so two rules
// built from the same arguments count independently.
func counted(m matcher, n int, fault func(Point) error) Hook {
	var mu sync.Mutex
	seen := 0
	return func(p Point) error {
		if !m.matches(p) {
			return nil
		}
		mu.Lock()
		seen++
		hit := seen == n
		mu.Unlock()
		if hit {
			return fault(p)
		}
		return nil
	}
}

// FailNth fails the nth (1-based) execution of the given task stage with
// a transient error, so the scheduler's retry path runs. An empty stage
// matches every task point.
func FailNth(stage string, n int) Hook {
	return counted(matcher{op: OpTask, stage: stage, shard: -2}, n, func(p Point) error {
		return Transient(fmt.Errorf("faultinject: injected failure at %s", p))
	})
}

// FailNthFatal fails the nth matching task execution with a permanent
// (non-retryable) error.
func FailNthFatal(stage string, n int) Hook {
	return counted(matcher{op: OpTask, stage: stage, shard: -2}, n, func(p Point) error {
		return fmt.Errorf("faultinject: injected fatal failure at %s", p)
	})
}

// PanicNth makes the nth (1-based) execution of the given task stage
// panic, exercising the scheduler's panic isolation. An empty stage
// matches every task point.
func PanicNth(stage string, n int) Hook {
	return counted(matcher{op: OpTask, stage: stage, shard: -2}, n, func(p Point) error {
		return &PanicError{Msg: p.String()}
	})
}

// CrashNth simulates process death at the nth (1-based) matching point
// of the given op ("" matches every op) and stage ("" matches every
// stage). Use with OpJournalBefore / OpJournalAfter to freeze the
// journal just before or just after a specific append.
func CrashNth(op, stage string, n int) Hook {
	return counted(matcher{op: op, stage: stage, shard: -2}, n, func(Point) error {
		return ErrCrash
	})
}

// CrashAtJournalOp simulates process death at the nth (1-based) journal
// hook point of either kind, in arrival order — the enumeration knob the
// crash-everywhere determinism suites sweep.
func CrashAtJournalOp(n int) Hook {
	var mu sync.Mutex
	seen := 0
	return func(p Point) error {
		if p.Op != OpJournalBefore && p.Op != OpJournalAfter {
			return nil
		}
		mu.Lock()
		seen++
		hit := seen == n
		mu.Unlock()
		if hit {
			return ErrCrash
		}
		return nil
	}
}

// Latency sleeps d at every matching task-stage point ("" matches every
// stage) — slow-path injection for deadline and timeout suites. The
// sleep uses the real clock; pair it with small durations.
func Latency(stage string, d time.Duration) Hook {
	m := matcher{op: OpTask, stage: stage, shard: -2}
	return func(p Point) error {
		if m.matches(p) {
			time.Sleep(d)
		}
		return nil
	}
}

// Seeded returns a hook that fails matching task points pseudo-randomly
// with the given rate, deterministically from seed: the same seed and
// the same sequence of matching points inject the same faults. Failures
// are transient. The generator is a splitmix64 stream, advanced once per
// matching point under a mutex, so schedules are stable for serial
// arrival orders (the chaos suites serialize the jobs they sweep).
func Seeded(stage string, rate float64, seed int64) Hook {
	m := matcher{op: OpTask, stage: stage, shard: -2}
	var mu sync.Mutex
	state := uint64(seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	return func(p Point) error {
		if !m.matches(p) {
			return nil
		}
		mu.Lock()
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		mu.Unlock()
		// 53 high bits → uniform float in [0, 1).
		if float64(z>>11)/(1<<53) < rate {
			return Transient(fmt.Errorf("faultinject: seeded failure at %s", p))
		}
		return nil
	}
}

// Notify invokes fn at every matching point (op "" matches all) and
// never injects a fault — the observation seam chaos tests use to learn
// that a crash point was reached or to count executions.
func Notify(op, stage string, fn func(Point)) Hook {
	m := matcher{op: op, stage: stage, shard: -2}
	return func(p Point) error {
		if m.matches(p) {
			fn(p)
		}
		return nil
	}
}
