package faultinject

import (
	"errors"
	"testing"
	"time"
)

func taskPoint(stage string, shard int) Point {
	return Point{Op: OpTask, Stage: stage, Shard: shard}
}

func TestFailNthFiresExactlyOnce(t *testing.T) {
	h := FailNth("observe", 2)
	if err := h(taskPoint("observe", 0)); err != nil {
		t.Fatalf("first match must pass, got %v", err)
	}
	if err := h(taskPoint("prepare", -1)); err != nil {
		t.Fatalf("non-matching stage must pass, got %v", err)
	}
	err := h(taskPoint("observe", 1))
	if err == nil {
		t.Fatal("second match must fail")
	}
	if !isTransient(err) {
		t.Fatalf("FailNth fault must be transient, got %v", err)
	}
	if err := h(taskPoint("observe", 2)); err != nil {
		t.Fatalf("rule must not fire twice, got %v", err)
	}
}

func TestFailNthFatalIsNotTransient(t *testing.T) {
	h := FailNthFatal("", 1)
	err := h(taskPoint("complete", -1))
	if err == nil || isTransient(err) {
		t.Fatalf("fatal fault must be a permanent error, got %v", err)
	}
}

func TestPanicNthReturnsPanicError(t *testing.T) {
	h := PanicNth("shapley", 1)
	err := h(taskPoint("shapley", -1))
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
}

func TestCrashNthMatchesOpAndStage(t *testing.T) {
	h := CrashNth(OpJournalBefore, "task", 1)
	if err := h(Point{Op: OpJournalAfter, Stage: "task"}); err != nil {
		t.Fatalf("wrong op must pass, got %v", err)
	}
	if err := h(Point{Op: OpJournalBefore, Stage: "submit"}); err != nil {
		t.Fatalf("wrong stage must pass, got %v", err)
	}
	if err := h(Point{Op: OpJournalBefore, Stage: "task"}); !errors.Is(err, ErrCrash) {
		t.Fatalf("want ErrCrash, got %v", err)
	}
}

func TestCrashAtJournalOpCountsBothKinds(t *testing.T) {
	h := CrashAtJournalOp(3)
	pts := []Point{
		{Op: OpJournalBefore, Stage: "submit"},
		{Op: OpJournalAfter, Stage: "submit"},
		{Op: OpJournalBefore, Stage: "task"},
	}
	if err := h(taskPoint("prepare", -1)); err != nil {
		t.Fatalf("task points must not count, got %v", err)
	}
	for i, p := range pts[:2] {
		if err := h(p); err != nil {
			t.Fatalf("point %d must pass, got %v", i, err)
		}
	}
	if err := h(pts[2]); !errors.Is(err, ErrCrash) {
		t.Fatalf("third journal op must crash, got %v", err)
	}
}

func TestChainFirstFaultWins(t *testing.T) {
	h := Chain(nil, FailNth("observe", 1), PanicNth("observe", 1))
	err := h(taskPoint("observe", 0))
	if err == nil || !isTransient(err) {
		t.Fatalf("chain must surface the first hook's fault, got %v", err)
	}
	// The panic rule was never consulted for the faulted point, so its
	// counter fires on the next one.
	var pe *PanicError
	if err := h(taskPoint("observe", 1)); !errors.As(err, &pe) {
		t.Fatalf("second hook must fire next, got %v", err)
	}
}

func TestSeededIsDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		h := Seeded("observe", 0.5, seed)
		out := make([]bool, 64)
		for i := range out {
			out[i] = h(taskPoint("observe", i)) != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at point %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
	fired := 0
	for _, hit := range a {
		if hit {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("rate 0.5 fired %d/%d times", fired, len(a))
	}
}

func TestTransientWrapping(t *testing.T) {
	base := errors.New("boom")
	err := Transient(base)
	if !isTransient(err) {
		t.Fatal("Transient(err) must be transient")
	}
	if !errors.Is(err, base) {
		t.Fatal("Transient must preserve the wrapped error")
	}
	if !isTransient(Transient(nil)) {
		t.Fatal("Transient(nil) must still mark a fault")
	}
}

func TestNotifyObservesWithoutFaulting(t *testing.T) {
	var got []Point
	h := Notify(OpJournalAfter, "", func(p Point) { got = append(got, p) })
	if err := h(Point{Op: OpJournalAfter, Stage: "task", Shard: 3}); err != nil {
		t.Fatalf("notify must not fault, got %v", err)
	}
	if err := h(taskPoint("observe", 0)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Shard != 3 {
		t.Fatalf("notify saw %v, want the single journal point", got)
	}
}

func TestManualClock(t *testing.T) {
	start := time.Unix(1000, 0)
	c := NewManualClock(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", c.Now(), start)
	}
	ch1 := c.After(10 * time.Millisecond)
	ch2 := c.After(30 * time.Millisecond)
	if c.Waiters() != 2 {
		t.Fatalf("waiters = %d, want 2", c.Waiters())
	}
	select {
	case <-ch1:
		t.Fatal("timer fired before Advance")
	default:
	}
	c.Advance(10 * time.Millisecond)
	select {
	case <-ch1:
	default:
		t.Fatal("10ms timer must fire after Advance(10ms)")
	}
	select {
	case <-ch2:
		t.Fatal("30ms timer fired early")
	default:
	}
	c.Advance(20 * time.Millisecond)
	select {
	case ts := <-ch2:
		if !ts.Equal(start.Add(30 * time.Millisecond)) {
			t.Fatalf("fire time %v, want start+30ms", ts)
		}
	default:
		t.Fatal("30ms timer must fire after 30ms total")
	}
	if c.Waiters() != 0 {
		t.Fatalf("waiters = %d, want 0", c.Waiters())
	}
}

// isTransient mirrors the scheduler's classifier: an error chain exposing
// Transient() true is retryable.
func isTransient(err error) bool {
	for e := err; e != nil; e = errors.Unwrap(e) {
		if m, ok := e.(interface{ Transient() bool }); ok {
			return m.Transient()
		}
	}
	return false
}
