package api

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"comfedsv"
	"comfedsv/internal/faultinject"
	"comfedsv/internal/persist"
	"comfedsv/internal/service"
)

// crashableDaemon is testDaemon with the manager exposed, so a test can
// abandon a "crashed" daemon and start a fresh one over the same store.
func crashableDaemon(t *testing.T, cfg service.Config) (*httptest.Server, *service.Manager) {
	t.Helper()
	mgr, err := service.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mgr).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
	})
	return ts, mgr
}

// shardedJob builds a Monte-Carlo submission body with the given shard
// count; everything else is pinned so reports are comparable across
// shard counts and daemon restarts.
func shardedJob(t *testing.T, shards int) []byte {
	t.Helper()
	_, clients, test, _ := tinyJob(37)
	body := map[string]any{
		"test": map[string]any{"x": test.X, "y": test.Y},
		"options": map[string]any{
			"num_classes":         2,
			"rounds":              4,
			"clients_per_round":   2,
			"seed":                37,
			"monte_carlo_samples": 30,
			"shards":              shards,
			"parallelism":         2,
		},
	}
	var cs []map[string]any
	for _, c := range clients {
		cs = append(cs, map[string]any{"x": c.X, "y": c.Y})
	}
	body["clients"] = cs
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// submitOnly POSTs a job and returns its ID without waiting.
func submitOnly(t *testing.T, base string, payload []byte) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	return sub.ID
}

// pollUntil polls a job's status until pred holds, failing on timeout.
func pollUntil(t *testing.T, base, id string, pred func(service.Status) bool) service.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st service.Status
		if code := getJSON(t, base+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET status: %d", code)
		}
		if pred(st) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never reached")
	return service.Status{}
}

// TestDaemonKillAndRestartResumesByteIdentical is the satellite e2e: a
// daemon killed mid-wave by fault injection, restarted over the same
// store directory, resumes the interrupted job and serves a report
// byte-identical to an uninterrupted daemon's — for 1, 2, and 8 shards.
func TestDaemonKillAndRestartResumesByteIdentical(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		payload := shardedJob(t, shards)

		// Uninterrupted baseline.
		tsBase, _ := crashableDaemon(t, service.Config{Workers: 3})
		baseID := submitAndWait(t, tsBase.URL, payload)
		code, want := getBody(t, tsBase.URL+"/v1/jobs/"+baseID+"/report")
		if code != http.StatusOK {
			t.Fatalf("shards=%d baseline report: %d", shards, code)
		}

		// The daemon that dies mid-wave: simulated process death right
		// after the first observation shard's journal record is durable.
		dir := t.TempDir()
		store, err := persist.NewJobStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		tsCrash, _ := crashableDaemon(t, service.Config{
			Workers:   3,
			Store:     store,
			FaultHook: faultinject.CrashNth(faultinject.OpJournalAfter, "observe", 1),
		})
		id := submitOnly(t, tsCrash.URL, payload)
		st := pollUntil(t, tsCrash.URL, id, func(st service.Status) bool { return st.State.Terminal() })
		if st.State != service.StateFailed || !strings.Contains(st.Error, "simulated crash") {
			t.Fatalf("shards=%d crashed job: state %s error %q", shards, st.State, st.Error)
		}
		tsCrash.Close()

		// Restart on the same directory: the job resumes without being
		// resubmitted and finishes with the identical report.
		store2, err := persist.NewJobStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		tsNew, _ := crashableDaemon(t, service.Config{Workers: 3, Store: store2})
		st = pollUntil(t, tsNew.URL, id, func(st service.Status) bool { return st.State.Terminal() })
		if st.State != service.StateDone {
			t.Fatalf("shards=%d resumed job finished %s (%s)", shards, st.State, st.Error)
		}
		code, got := getBody(t, tsNew.URL+"/v1/jobs/"+id+"/report")
		if code != http.StatusOK {
			t.Fatalf("shards=%d resumed report: %d", shards, code)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("shards=%d resumed report differs from uninterrupted daemon:\n%s\nvs\n%s", shards, got, want)
		}

		resp, err := http.Get(tsNew.URL + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		text, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(text), "comfedsvd_jobs_recovered_total 1") {
			t.Fatalf("shards=%d restarted daemon metrics missing recovery count:\n%s", shards, text)
		}
	}
}

// TestDaemonQueueFullReturns429WithRetryAfter pins the backpressure
// contract: a full queue answers 429 Too Many Requests with a Retry-After
// hint (not 503, which now means shutdown), and the rejection shows up in
// /v1/metrics.
func TestDaemonQueueFullReturns429WithRetryAfter(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{}, 1)
	ts, _ := crashableDaemon(t, service.Config{
		Workers:    1,
		QueueDepth: 1,
		Value: func(ctx context.Context, _ []comfedsv.Client, _ comfedsv.Client, _ comfedsv.Options) (*comfedsv.Report, error) {
			started <- struct{}{}
			select {
			case <-gate:
			case <-ctx.Done():
			}
			return &comfedsv.Report{}, nil
		},
	})
	raw, _, _, _ := tinyJob(1)
	submitOnly(t, ts.URL, raw) // occupies the worker
	<-started
	submitOnly(t, ts.URL, raw) // fills the queue

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue submission: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response missing Retry-After header")
	}
	if !strings.Contains(string(body), "queue is full") {
		t.Fatalf("429 body %q does not explain the rejection", body)
	}

	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(text), "comfedsvd_jobs_rejected_total 1") {
		t.Fatalf("metrics missing rejection count:\n%s", text)
	}
}

// TestDaemonRetriesSurfaceInStatusAndMetrics pins the operator view of
// the retry ladder: a transiently failing shard shows up as retries and
// last_error in the job's status JSON and as a labelled counter in
// /v1/metrics.
func TestDaemonRetriesSurfaceInStatusAndMetrics(t *testing.T) {
	ts, _ := crashableDaemon(t, service.Config{
		Workers:        2,
		MaxTaskRetries: 3,
		RetryBaseDelay: time.Millisecond,
		FaultHook:      faultinject.FailNth("observe", 1),
	})
	id := submitAndWait(t, ts.URL, shardedJob(t, 2))
	var st service.Status
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
		t.Fatalf("GET status: %d", code)
	}
	if st.Retries != 1 || !strings.Contains(st.LastError, "faultinject") {
		t.Fatalf("status retries=%d last_error=%q, want the injected retry visible", st.Retries, st.LastError)
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), `comfedsvd_task_retries_total{stage="observe"} 1`) {
		t.Fatalf("metrics missing retry counter:\n%s", text)
	}
}
