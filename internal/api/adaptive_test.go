package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"comfedsv/internal/service"
)

// adaptiveJob builds a tolerance-mode submission over the tinyJob fixture:
// budget 40 cuts into waves [16, 32, 40] and the loose tolerance stops the
// run at the second wave bound.
func adaptiveJob(t *testing.T, extra map[string]any) []byte {
	t.Helper()
	_, clients, test, _ := tinyJob(47)
	options := map[string]any{
		"num_classes":         2,
		"rounds":              4,
		"clients_per_round":   2,
		"seed":                47,
		"monte_carlo_samples": 40,
		"tolerance":           100,
	}
	for k, v := range extra {
		options[k] = v
	}
	body := map[string]any{
		"test":    map[string]any{"x": test.X, "y": test.Y},
		"options": options,
	}
	var cs []map[string]any
	for _, c := range clients {
		cs = append(cs, map[string]any{"x": c.X, "y": c.Y})
	}
	body["clients"] = cs
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestDaemonAdaptiveEndToEnd is the HTTP-layer acceptance test for
// tolerance mode: a "tolerance" job stops early, the status and report
// both expose observations_used/observations_budget, the report bytes are
// identical across shard and parallelism settings, and the skipped
// permutations land in the Prometheus counter.
func TestDaemonAdaptiveEndToEnd(t *testing.T) {
	ts := testDaemon(t, service.Config{Workers: 3})

	submit := func(extra map[string]any) (service.Status, []byte) {
		id := submitAndWait(t, ts.URL, adaptiveJob(t, extra))
		var st service.Status
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET status: %d", code)
		}
		code, rep := getBody(t, ts.URL+"/v1/jobs/"+id+"/report")
		if code != http.StatusOK {
			t.Fatalf("GET report: %d", code)
		}
		return st, rep
	}

	st, want := submit(nil)
	if st.ObservationsBudget != 40 {
		t.Fatalf("status observations_budget %d, want 40", st.ObservationsBudget)
	}
	if st.ObservationsUsed <= 0 || st.ObservationsUsed >= st.ObservationsBudget {
		t.Fatalf("status observations_used %d, want an early stop within budget 40", st.ObservationsUsed)
	}
	var rep struct {
		ObservationsUsed   int `json:"observations_used"`
		ObservationsBudget int `json:"observations_budget"`
	}
	if err := json.Unmarshal(want, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.ObservationsUsed != st.ObservationsUsed || rep.ObservationsBudget != st.ObservationsBudget {
		t.Fatalf("report savings %d/%d disagree with status %d/%d",
			rep.ObservationsUsed, rep.ObservationsBudget, st.ObservationsUsed, st.ObservationsBudget)
	}

	// Determinism across scheduling knobs, including the max_permutations
	// budget alias: not a byte of the report may move.
	for _, extra := range []map[string]any{
		{"shards": 2},
		{"shards": 8, "parallelism": 4},
		{"shards": 1, "parallelism": 4},
		{"max_permutations": 40},
	} {
		if _, got := submit(extra); !bytes.Equal(want, got) {
			t.Fatalf("adaptive report with %v differs:\n%s\nvs\n%s", extra, got, want)
		}
	}

	// Five identical adaptive jobs ran; each skipped budget-used
	// permutations, and the counter sums them daemon-wide.
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	skipped := 5 * (st.ObservationsBudget - st.ObservationsUsed)
	line := fmt.Sprintf("comfedsvd_observations_skipped_total %d", skipped)
	if !strings.Contains(string(text), line) {
		t.Fatalf("metrics output missing %q:\n%s", line, text)
	}
}

// TestDaemonAdaptiveValidation pins the 400 matrix for the new knobs: the
// malformed and contradictory combinations are rejected before a job is
// created, each with a clear {"error": ...} body.
func TestDaemonAdaptiveValidation(t *testing.T) {
	ts := testDaemon(t, service.Config{Workers: 1})

	post := func(options string) (int, string) {
		body := `{"clients": [{"x": [[1]], "y": [0]}], "test": {"x": [[1]], "y": [0]}, "options": ` + options + `}`
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e struct {
			Error string `json:"error"`
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		json.Unmarshal(raw, &e)
		return resp.StatusCode, e.Error
	}

	for _, tc := range []struct {
		name    string
		options string
		want    string
	}{
		{"zero tolerance", `{"num_classes": 2, "monte_carlo_samples": 40, "tolerance": 0}`, "positive and finite"},
		{"negative tolerance", `{"num_classes": 2, "monte_carlo_samples": 40, "tolerance": -0.5}`, "positive and finite"},
		{"tolerance without budget", `{"num_classes": 2, "tolerance": 0.1}`, "requires a permutation budget"},
		{"max_permutations without tolerance", `{"num_classes": 2, "max_permutations": 40}`, "requires options.tolerance"},
		{"budget mismatch", `{"num_classes": 2, "monte_carlo_samples": 30, "max_permutations": 40, "tolerance": 0.1}`, "disagree"},
		{"negative max_permutations", `{"num_classes": 2, "max_permutations": -1}`, "max_permutations"},
	} {
		code, msg := post(tc.options)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
			continue
		}
		if !strings.Contains(msg, tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, msg, tc.want)
		}
	}

	// Matching explicit budgets are fine, and NaN/Inf tolerances never get
	// past encoding/json (they are not valid JSON numbers at all).
	code, msg := post(`{"num_classes": 2, "monte_carlo_samples": 40, "max_permutations": 40, "tolerance": 0.1}`)
	if code != http.StatusAccepted {
		t.Fatalf("matching budgets: %d (%s), want 202", code, msg)
	}
	if code, _ := post(`{"num_classes": 2, "monte_carlo_samples": 40, "tolerance": NaN}`); code != http.StatusBadRequest {
		t.Fatalf("NaN tolerance literal: %d, want 400", code)
	}
}
