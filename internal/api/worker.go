package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"comfedsv/internal/dispatch"
)

// Worker endpoints — the coordinator half of the distributed observation
// protocol. Registered only when a dispatcher is attached:
//
//	POST /v1/worker/register    announce a worker; returns lease/liveness windows
//	POST /v1/worker/heartbeat   refresh a worker's liveness
//	POST /v1/worker/deregister  graceful worker shutdown; revokes its leases
//	POST /v1/worker/lease       long-poll for the next shard task (204 = no work)
//	POST /v1/worker/complete    report a digest-verified shard result
//	POST /v1/worker/fail        report a worker-side failure for a lease
//
// Error codes: 409 for an unknown or already-revoked lease (the shard was
// re-leased; the result is discarded), 422 for a digest mismatch (a
// determinism violation — loud, never retried), 503 when shutting down.

// maxLeaseWait bounds one long-poll window server-side so abandoned
// connections cannot pin handler goroutines past it.
const maxLeaseWait = 2 * time.Minute

// defaultLeaseWait applies when the worker does not ask for a window.
const defaultLeaseWait = 30 * time.Second

// SetDispatcher attaches the shard coordinator and enables the
// /v1/worker endpoints plus the dispatch metrics families. Call before
// Handler.
func (s *Server) SetDispatcher(d *dispatch.Coordinator) { s.dispatch = d }

func (s *Server) workerRoutes(mux *http.ServeMux) {
	if s.dispatch == nil {
		return
	}
	mux.HandleFunc("POST /v1/worker/register", s.workerRegister)
	mux.HandleFunc("POST /v1/worker/heartbeat", s.workerRegister) // a heartbeat is an idempotent re-register
	mux.HandleFunc("POST /v1/worker/deregister", s.workerDeregister)
	mux.HandleFunc("POST /v1/worker/lease", s.workerLease)
	mux.HandleFunc("POST /v1/worker/complete", s.workerComplete)
	mux.HandleFunc("POST /v1/worker/fail", s.workerFail)
}

// decodeWorker decodes one worker-endpoint body strictly.
func decodeWorker(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

func (s *Server) workerRegister(w http.ResponseWriter, r *http.Request) {
	var req dispatch.RegisterRequest
	if !decodeWorker(w, r, &req) {
		return
	}
	if err := s.dispatch.Register(req.WorkerID); err != nil {
		if errors.Is(err, dispatch.ErrClosed) {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, dispatch.RegisterResponse{
		LeaseTTLSeconds:  s.dispatch.LeaseTTL().Seconds(),
		WorkerTTLSeconds: s.dispatch.WorkerTTL().Seconds(),
	})
}

func (s *Server) workerDeregister(w http.ResponseWriter, r *http.Request) {
	var req dispatch.RegisterRequest
	if !decodeWorker(w, r, &req) {
		return
	}
	s.dispatch.Deregister(req.WorkerID)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) workerLease(w http.ResponseWriter, r *http.Request) {
	var req dispatch.LeaseRequest
	if !decodeWorker(w, r, &req) {
		return
	}
	wait := time.Duration(req.WaitSeconds * float64(time.Second))
	if wait <= 0 {
		wait = defaultLeaseWait
	}
	if wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	// The poll ends at the window, the client disconnecting, or shutdown —
	// whichever comes first.
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	lease, err := s.dispatch.Lease(ctx, req.WorkerID)
	switch {
	case errors.Is(err, dispatch.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil && r.Context().Err() != nil:
		// Client went away mid-poll; the response is moot.
		writeError(w, http.StatusRequestTimeout, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	case lease == nil:
		w.WriteHeader(http.StatusNoContent)
	default:
		writeJSON(w, http.StatusOK, lease)
	}
}

func (s *Server) workerComplete(w http.ResponseWriter, r *http.Request) {
	var req dispatch.CompleteRequest
	if !decodeWorker(w, r, &req) {
		return
	}
	err := s.dispatch.Complete(req.LeaseID, req.Observations, req.Cells)
	var mismatch *dispatch.DigestMismatchError
	switch {
	case errors.Is(err, dispatch.ErrUnknownLease):
		// The lease was revoked (deadline, dead worker) and the shard
		// re-leased; this straggler's work is discarded.
		writeError(w, http.StatusConflict, err)
	case errors.As(err, &mismatch):
		writeError(w, http.StatusUnprocessableEntity, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}

func (s *Server) workerFail(w http.ResponseWriter, r *http.Request) {
	var req dispatch.FailRequest
	if !decodeWorker(w, r, &req) {
		return
	}
	switch err := s.dispatch.Fail(req.LeaseID, req.Error); {
	case errors.Is(err, dispatch.ErrUnknownLease):
		writeError(w, http.StatusConflict, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}

// writeDispatchMetrics renders the coordinator's lease and worker
// counters as comfedsvd_dispatch_* Prometheus families.
func (s *Server) writeDispatchMetrics(b interface{ WriteString(string) (int, error) }) {
	if s.dispatch == nil {
		return
	}
	st := s.dispatch.Stats()
	b.WriteString("# HELP comfedsvd_dispatch_workers_live Registered remote workers within the liveness window.\n# TYPE comfedsvd_dispatch_workers_live gauge\n")
	b.WriteString(fmt.Sprintf("comfedsvd_dispatch_workers_live %d\n", st.WorkersLive))
	b.WriteString("# HELP comfedsvd_dispatch_tasks_queued Shard tasks awaiting a lease.\n# TYPE comfedsvd_dispatch_tasks_queued gauge\n")
	b.WriteString(fmt.Sprintf("comfedsvd_dispatch_tasks_queued %d\n", st.TasksQueued))
	b.WriteString("# HELP comfedsvd_dispatch_leases_active Granted, unresolved shard leases.\n# TYPE comfedsvd_dispatch_leases_active gauge\n")
	b.WriteString(fmt.Sprintf("comfedsvd_dispatch_leases_active %d\n", st.LeasesActive))
	b.WriteString("# HELP comfedsvd_dispatch_leases_granted_total Shard leases granted to workers.\n# TYPE comfedsvd_dispatch_leases_granted_total counter\n")
	b.WriteString(fmt.Sprintf("comfedsvd_dispatch_leases_granted_total %d\n", st.LeasesGranted))
	b.WriteString("# HELP comfedsvd_dispatch_leases_completed_total Leases resolved by a digest-verified result.\n# TYPE comfedsvd_dispatch_leases_completed_total counter\n")
	b.WriteString(fmt.Sprintf("comfedsvd_dispatch_leases_completed_total %d\n", st.LeasesCompleted))
	b.WriteString("# HELP comfedsvd_dispatch_leases_failed_total Leases the worker reported as failed.\n# TYPE comfedsvd_dispatch_leases_failed_total counter\n")
	b.WriteString(fmt.Sprintf("comfedsvd_dispatch_leases_failed_total %d\n", st.LeasesFailed))
	b.WriteString("# HELP comfedsvd_dispatch_leases_expired_total Leases revoked by deadline expiry or worker loss.\n# TYPE comfedsvd_dispatch_leases_expired_total counter\n")
	b.WriteString(fmt.Sprintf("comfedsvd_dispatch_leases_expired_total %d\n", st.LeasesExpired))
	b.WriteString("# HELP comfedsvd_dispatch_digest_mismatches_total Determinism violations detected at the wire (disagreeing shard digests).\n# TYPE comfedsvd_dispatch_digest_mismatches_total counter\n")
	b.WriteString(fmt.Sprintf("comfedsvd_dispatch_digest_mismatches_total %d\n", st.DigestMismatches))
}
