package api

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"comfedsv/internal/service"
)

// promSample is one parsed Prometheus exposition sample.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseProm parses the subset of the text exposition format the daemon
// emits: `name value` and `name{k="v",...} value` lines, plus # comments.
func parseProm(t *testing.T, text string) ([]promSample, map[string]string) {
	t.Helper()
	var samples []promSample
	types := make(map[string]string) // family -> TYPE
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		metric, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		s := promSample{labels: make(map[string]string), value: val}
		if open := strings.IndexByte(metric, '{'); open >= 0 {
			if !strings.HasSuffix(metric, "}") {
				t.Fatalf("unbalanced braces: %q", line)
			}
			s.name = metric[:open]
			for _, pair := range strings.Split(metric[open+1:len(metric)-1], ",") {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 {
					t.Fatalf("malformed label %q in %q", pair, line)
				}
				v, err := strconv.Unquote(pair[eq+1:])
				if err != nil {
					t.Fatalf("malformed label value %q in %q: %v", pair, line, err)
				}
				s.labels[pair[:eq]] = v
			}
		} else {
			s.name = metric
		}
		samples = append(samples, s)
	}
	return samples, types
}

// labelsKey is a label set minus `le`, canonicalized for grouping the
// bucket series of one histogram child.
func labelsKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, labels[k])
	}
	return b.String()
}

// checkHistogram asserts one histogram family is well-formed for every
// label child: ascending le bounds with a terminal +Inf, cumulative
// non-decreasing bucket counts, and _sum/_count series whose count equals
// the +Inf bucket. It returns the children's _count values by labelsKey.
func checkHistogram(t *testing.T, family string, samples []promSample, types map[string]string) map[string]float64 {
	t.Helper()
	if types[family] != "histogram" {
		t.Fatalf("%s: TYPE = %q, want histogram", family, types[family])
	}
	type child struct {
		bounds []float64 // parsed le, +Inf as math.Inf
		counts []float64
		inf    float64
		hasInf bool
		sum    float64
		hasSum bool
		count  float64
		hasCnt bool
	}
	children := make(map[string]*child)
	get := func(labels map[string]string) *child {
		k := labelsKey(labels)
		c, ok := children[k]
		if !ok {
			c = &child{}
			children[k] = c
		}
		return c
	}
	for _, s := range samples {
		switch s.name {
		case family + "_bucket":
			c := get(s.labels)
			le := s.labels["le"]
			if le == "+Inf" {
				c.inf, c.hasInf = s.value, true
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("%s: bad le %q", family, le)
			}
			if c.hasInf {
				t.Fatalf("%s: finite bucket le=%q after +Inf", family, le)
			}
			c.bounds = append(c.bounds, bound)
			c.counts = append(c.counts, s.value)
		case family + "_sum":
			c := get(s.labels)
			c.sum, c.hasSum = s.value, true
		case family + "_count":
			c := get(s.labels)
			c.count, c.hasCnt = s.value, true
		}
	}
	if len(children) == 0 {
		t.Fatalf("%s: no series found", family)
	}
	counts := make(map[string]float64, len(children))
	for key, c := range children {
		if !c.hasInf {
			t.Fatalf("%s{%s}: no +Inf terminal bucket", family, key)
		}
		if !c.hasSum || !c.hasCnt {
			t.Fatalf("%s{%s}: missing _sum or _count", family, key)
		}
		for i := 1; i < len(c.bounds); i++ {
			if c.bounds[i] <= c.bounds[i-1] {
				t.Fatalf("%s{%s}: le bounds not ascending: %v", family, key, c.bounds)
			}
		}
		for i := 1; i < len(c.counts); i++ {
			if c.counts[i] < c.counts[i-1] {
				t.Fatalf("%s{%s}: cumulative buckets not monotone: %v", family, key, c.counts)
			}
		}
		if n := len(c.counts); n > 0 && c.inf < c.counts[n-1] {
			t.Fatalf("%s{%s}: +Inf bucket %v below last finite bucket %v", family, key, c.inf, c.counts[n-1])
		}
		if c.inf != c.count {
			t.Fatalf("%s{%s}: +Inf bucket %v != _count %v", family, key, c.inf, c.count)
		}
		if c.count > 0 && c.sum < 0 {
			t.Fatalf("%s{%s}: negative _sum %v", family, key, c.sum)
		}
		counts[key] = c.count
	}
	return counts
}

// TestMetricsHistogramExposition submits concurrent sharded jobs, then
// asserts /v1/metrics serves well-formed per-stage latency histograms:
// cumulative monotone buckets, terminal +Inf equal to _count, _sum
// present — for every stage child — plus the job-level histograms.
func TestMetricsHistogramExposition(t *testing.T) {
	ts := testDaemon(t, service.Config{Workers: 4})

	const jobs, shards = 5, 3
	payloads := make([][]byte, jobs)
	for i := range payloads {
		raw, _, _, _ := tinyJob(int64(40 + i))
		var body map[string]any
		if err := json.Unmarshal(raw, &body); err != nil {
			t.Fatal(err)
		}
		opts := body["options"].(map[string]any)
		opts["monte_carlo_samples"] = 30
		opts["shards"] = shards
		var err error
		payloads[i], err = json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for _, p := range payloads {
		wg.Add(1)
		go func(p []byte) {
			defer wg.Done()
			submitAndWait(t, ts.URL, p)
		}(p)
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	samples, types := parseProm(t, string(raw))

	taskCounts := checkHistogram(t, "comfedsvd_task_duration_seconds", samples, types)
	for _, stage := range []string{"prepare", "observe", "complete", "shapley"} {
		key := "stage=" + stage + ";"
		n, ok := taskCounts[key]
		if !ok {
			t.Fatalf("no task histogram for stage %q (have %v)", stage, taskCounts)
		}
		want := float64(jobs)
		if stage == "observe" {
			want = jobs * shards
		}
		if n != want {
			t.Fatalf("stage %q count = %v, want %v", stage, n, want)
		}
	}
	valCounts := checkHistogram(t, "comfedsvd_valuation_stage_duration_seconds", samples, types)
	for _, stage := range []string{"train", "fedsv", "observe", "complete", "shapley"} {
		if _, ok := valCounts["stage="+stage+";"]; !ok {
			t.Fatalf("no valuation-stage histogram for %q (have %v)", stage, valCounts)
		}
	}
	jobCounts := checkHistogram(t, "comfedsvd_job_duration_seconds", samples, types)
	if jobCounts[""] != jobs {
		t.Fatalf("job duration count = %v, want %d", jobCounts[""], jobs)
	}
	waitCounts := checkHistogram(t, "comfedsvd_job_queue_wait_seconds", samples, types)
	if waitCounts[""] != jobs {
		t.Fatalf("queue wait count = %v, want %d", waitCounts[""], jobs)
	}
}

// TestJobStatusTimingFields: job status JSON carries the lifecycle
// timestamps and the per-stage duration map.
func TestJobStatusTimingFields(t *testing.T) {
	ts := testDaemon(t, service.Config{Workers: 2})
	payload, _, _, _ := tinyJob(51)
	id := submitAndWait(t, ts.URL, payload)

	var st struct {
		SubmittedAt  string             `json:"submitted_at"`
		StartedAt    string             `json:"started_at"`
		FinishedAt   string             `json:"finished_at"`
		StageSeconds map[string]float64 `json:"stage_seconds"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
		t.Fatalf("GET status: %d", code)
	}
	if st.SubmittedAt == "" || st.StartedAt == "" || st.FinishedAt == "" {
		t.Fatalf("missing timestamps: %+v", st)
	}
	for _, stage := range []string{"prepare", "observe", "complete", "shapley"} {
		if _, ok := st.StageSeconds[stage]; !ok {
			t.Fatalf("stage_seconds missing %q: %v", stage, st.StageSeconds)
		}
	}
}

// logCapture records slog output for the middleware test.
type logCapture struct {
	mu      sync.Mutex
	records []map[string]any
	msgs    []string
}

func (h *logCapture) Enabled(context.Context, slog.Level) bool { return true }
func (h *logCapture) Handle(_ context.Context, r slog.Record) error {
	attrs := make(map[string]any)
	r.Attrs(func(a slog.Attr) bool {
		attrs[a.Key] = a.Value.Any()
		return true
	})
	h.mu.Lock()
	defer h.mu.Unlock()
	h.records = append(h.records, attrs)
	h.msgs = append(h.msgs, r.Message)
	return nil
}
func (h *logCapture) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *logCapture) WithGroup(string) slog.Handler      { return h }

// TestRequestLoggingMiddleware: with a logger set, every request emits one
// structured access-log record with method, path, and status.
func TestRequestLoggingMiddleware(t *testing.T) {
	mgr, err := service.NewManager(service.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cap := &logCapture{}
	srv := NewServer(mgr)
	srv.SetLogger(slog.New(cap))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	if code := getJSON(t, ts.URL+"/v1/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Fatalf("missing job: %d", code)
	}

	cap.mu.Lock()
	defer cap.mu.Unlock()
	var saw200, saw404 bool
	for i, msg := range cap.msgs {
		if msg != "request" {
			continue
		}
		attrs := cap.records[i]
		if attrs["method"] != "GET" || attrs["path"] == nil || attrs["duration_ms"] == nil {
			t.Fatalf("malformed access record: %v", attrs)
		}
		switch attrs["status"] {
		case int64(200):
			saw200 = true
		case int64(404):
			saw404 = true
		}
	}
	if !saw200 || !saw404 {
		t.Fatalf("missing access records (200=%v 404=%v): %v", saw200, saw404, cap.records)
	}
}
