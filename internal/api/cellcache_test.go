package api

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"comfedsv"
	"comfedsv/internal/dispatch"
	"comfedsv/internal/persist"
	"comfedsv/internal/service"
)

// cellMetric parses one unlabeled counter sample out of a Prometheus text
// exposition, failing if the family is missing, lacks its HELP/TYPE
// header, or does not parse — a minimal exposition-format parser so a
// malformed rendering cannot slip through a substring check.
func cellMetric(t *testing.T, text []byte, name string) float64 {
	t.Helper()
	var help, typ bool
	value := -1.0
	for _, line := range strings.Split(string(text), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "+name+" "):
			help = true
		case strings.HasPrefix(line, "# TYPE "+name+" counter"):
			typ = true
		case strings.HasPrefix(line, name+" "):
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
			if err != nil {
				t.Fatalf("metric %s sample %q does not parse: %v", name, line, err)
			}
			value = v
		}
	}
	if !help || !typ {
		t.Fatalf("metric %s missing HELP/TYPE header (help=%v type=%v)", name, help, typ)
	}
	if value < 0 {
		t.Fatalf("metric %s has no sample", name)
	}
	return value
}

func daemonMetrics(t *testing.T, base string) []byte {
	t.Helper()
	code, body := getBody(t, base+"/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/metrics: %d", code)
	}
	return body
}

// TestCellCacheMetricsExposition runs a run-backed job cold, restarts the
// daemon over the same run store, runs it warm, and checks the four
// comfedsvd_cellcache_* families through the exposition parser at both
// temperatures.
func TestCellCacheMetricsExposition(t *testing.T) {
	runsDir := t.TempDir()
	payload, _, _, _ := tinyJob(53)

	ts1 := testDaemon(t, service.Config{Workers: 2, RunStore: mustRunStore(t, runsDir)})
	runID := registerRun(t, ts1.URL, payload)
	id1 := submitAndWait(t, ts1.URL, mcJobBody(t, runID, 53))
	code, want := getBody(t, ts1.URL+"/v1/jobs/"+id1+"/report")
	if code != http.StatusOK {
		t.Fatalf("GET cold report: %d", code)
	}
	met1 := daemonMetrics(t, ts1.URL)
	if v := cellMetric(t, met1, "comfedsvd_cellcache_persisted_total"); v == 0 {
		t.Fatal("cold daemon persisted no cells")
	}
	if v := cellMetric(t, met1, "comfedsvd_cellcache_preloaded_total"); v != 0 {
		t.Fatalf("cold daemon preloaded %v cells, want 0", v)
	}
	if v := cellMetric(t, met1, "comfedsvd_cellcache_corrupt_total"); v != 0 {
		t.Fatalf("cold daemon quarantined %v sidecars, want 0", v)
	}

	// Restart: a fresh daemon over the same run store warm-starts from the
	// sidecar and serves the identical job byte-identically.
	ts2 := testDaemon(t, service.Config{Workers: 2, RunStore: mustRunStore(t, runsDir)})
	id2 := submitAndWait(t, ts2.URL, mcJobBody(t, runID, 53))
	code, got := getBody(t, ts2.URL+"/v1/jobs/"+id2+"/report")
	if code != http.StatusOK {
		t.Fatalf("GET warm report: %d", code)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("warm report over HTTP is not byte-identical:\n%s\nvs\n%s", got, want)
	}
	met2 := daemonMetrics(t, ts2.URL)
	if v := cellMetric(t, met2, "comfedsvd_cellcache_preloaded_total"); v == 0 {
		t.Fatal("restarted daemon preloaded no cells")
	}
	if v := cellMetric(t, met2, "comfedsvd_cellcache_hit_total"); v == 0 {
		t.Fatal("warm job served no cache hits")
	}
	if v := cellMetric(t, met2, "comfedsvd_cellcache_corrupt_total"); v != 0 {
		t.Fatalf("restart quarantined %v sidecars, want 0", v)
	}
}

// bigJob is a 22-client full-participation run. The width matters: with
// ClientsPerRound ≤ 20 the FedSV baseline enumerates every subset of
// each round's selection during Prepare — before observation dispatches —
// so a remote worker's observation cells are always already cached on
// the daemon and a worker delta can never contribute anything new. Above
// 20 selected clients FedSV degrades to its sampled estimator (a
// different seed stream than the observation plan), so the cells workers
// evaluate are genuinely absent from the daemon's evaluator and the
// absorb path becomes observable.
func bigJob(seed int64) []byte {
	mk := func(off float64) map[string]any {
		var xs [][]float64
		var ys []int
		for i := 0; i < 8; i++ {
			x := off + float64(i)*0.3
			label := 0
			if x > 1 {
				label = 1
			}
			xs = append(xs, []float64{x, 1 - x})
			ys = append(ys, label)
		}
		return map[string]any{"x": xs, "y": ys}
	}
	var cs []map[string]any
	for i := 0; i < 22; i++ {
		cs = append(cs, mk(-0.5+0.1*float64(i)))
	}
	raw, err := json.Marshal(map[string]any{
		"clients": cs,
		"test":    mk(0.25),
		"options": map[string]any{
			"num_classes":       2,
			"rounds":            2,
			"clients_per_round": 22,
			"seed":              seed,
		},
	})
	if err != nil {
		panic(err)
	}
	return raw
}

// bigMCJobBody is the sharded Monte-Carlo submission over bigJob's run.
func bigMCJobBody(t *testing.T, runID string, seed int64) []byte {
	t.Helper()
	raw, err := json.Marshal(map[string]any{
		"run_id": runID,
		"options": map[string]any{
			"num_classes":         2,
			"rounds":              2,
			"clients_per_round":   22,
			"seed":                seed,
			"monte_carlo_samples": 10,
			"shards":              3,
			"parallelism":         2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// runCellWorker is cmd/comfedsv-worker's warm-start loop in-process: it
// keys its trace cache by run ID alone, hydrates the evaluator from the
// shared store's cell sidecar, and ships each completion's new cells back
// with the observations.
// Closing ready signals that the worker is registered, so the test can
// submit knowing the shards will go remote instead of falling back local.
func runCellWorker(ctx context.Context, t *testing.T, base, id, runsDir string, ready chan<- struct{}) {
	runs, err := persist.NewRunStore(runsDir)
	if err != nil {
		t.Errorf("worker %s: opening run store: %v", id, err)
		return
	}
	cl := dispatch.NewClient(base, id)
	if _, err := cl.Register(ctx); err != nil {
		if ctx.Err() == nil {
			t.Errorf("worker %s: register: %v", id, err)
		}
		return
	}
	close(ready)
	trained := make(map[string]*comfedsv.TrainedRun)
	for ctx.Err() == nil {
		lease, err := cl.Lease(ctx, time.Second)
		if err != nil || lease == nil {
			continue
		}
		task := lease.Task
		tr := trained[task.RunID]
		if tr == nil {
			run, err := runs.LoadRun(task.RunID)
			if err != nil {
				cl.Fail(ctx, lease.ID, err.Error())
				continue
			}
			tr = comfedsv.NewTrainedRun(run)
			batches, err := runs.ReadCells(task.RunID)
			if err == nil {
				for _, b := range batches {
					if _, perr := tr.PreloadCells(b); perr != nil {
						break
					}
				}
			}
			trained[task.RunID] = tr
		}
		so, err := comfedsv.NewShardObserver(ctx, tr, task.Budget, task.Seed, 2)
		if err != nil {
			cl.Fail(ctx, lease.ID, err.Error())
			continue
		}
		obs, err := so.ObserveSlice(ctx, task.Lo, task.Hi)
		if err != nil {
			cl.Fail(ctx, lease.ID, err.Error())
			continue
		}
		if err := cl.Complete(ctx, lease.ID, obs, tr.ExportNewCells()); err != nil && ctx.Err() == nil {
			t.Errorf("worker %s: complete: %v", id, err)
		}
	}
}

// TestRemoteWorkerCellCacheWarmStart closes the distributed loop: a
// worker's evaluated cells travel back over the completion wire, the
// coordinator daemon persists them to the run's sidecar, and both a
// restarted daemon and a fresh worker warm-start from that sidecar — with
// the report byte-identical at every temperature.
func TestRemoteWorkerCellCacheWarmStart(t *testing.T) {
	runsDir := t.TempDir()
	const seed = 59
	payload := bigJob(seed)

	coord1 := dispatch.NewCoordinator(dispatch.Config{LeaseTTL: time.Minute, WorkerTTL: time.Hour})
	ts1 := dispatchDaemon(t, runsDir, coord1, service.Config{Workers: 2})
	runID := registerRun(t, ts1.URL, payload)

	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	ready1 := make(chan struct{})
	go runCellWorker(ctx1, t, ts1.URL, "w1", runsDir, ready1)
	<-ready1

	id1 := submitAndWait(t, ts1.URL, bigMCJobBody(t, runID, seed))
	code, want := getBody(t, ts1.URL+"/v1/jobs/"+id1+"/report")
	if code != http.StatusOK {
		t.Fatalf("GET cold report: %d", code)
	}
	met1 := daemonMetrics(t, ts1.URL)
	if v := cellMetric(t, met1, "comfedsvd_cellcache_persisted_total"); v == 0 {
		t.Fatal("worker-evaluated cells never reached the daemon's sidecar")
	}
	if v := cellMetric(t, met1, "comfedsvd_cellcache_preloaded_total"); v == 0 {
		t.Fatal("worker deltas were not absorbed into the daemon's evaluator")
	}
	cancel1()

	store, err := persist.NewRunStore(runsDir)
	if err != nil {
		t.Fatal(err)
	}
	if !store.HasCells(runID) {
		t.Fatal("no cell sidecar in the shared run store after the distributed job")
	}

	// Restart daemon and worker over the same store: observation runs
	// entirely warm on the worker, daemon stages warm from the sidecar.
	coord2 := dispatch.NewCoordinator(dispatch.Config{LeaseTTL: time.Minute, WorkerTTL: time.Hour})
	ts2 := dispatchDaemon(t, runsDir, coord2, service.Config{Workers: 2})
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	ready2 := make(chan struct{})
	go runCellWorker(ctx2, t, ts2.URL, "w2", runsDir, ready2)
	<-ready2

	id2 := submitAndWait(t, ts2.URL, bigMCJobBody(t, runID, seed))
	code, got := getBody(t, ts2.URL+"/v1/jobs/"+id2+"/report")
	if code != http.StatusOK {
		t.Fatalf("GET warm report: %d", code)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("warm distributed report is not byte-identical:\n%s\nvs\n%s", got, want)
	}
	met2 := daemonMetrics(t, ts2.URL)
	if v := cellMetric(t, met2, "comfedsvd_cellcache_preloaded_total"); v == 0 {
		t.Fatal("restarted daemon preloaded nothing from the shared sidecar")
	}
	if v := cellMetric(t, met2, "comfedsvd_cellcache_hit_total"); v == 0 {
		t.Fatal("warm distributed job served no cache hits")
	}
}
