package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"comfedsv"
	"comfedsv/internal/dispatch"
	"comfedsv/internal/persist"
	"comfedsv/internal/service"
)

// dispatchDaemon is comfedsvd with -dispatch: a Manager wired to a shard
// coordinator behind the real route table, sharing a run store with the
// workers.
func dispatchDaemon(t *testing.T, runsDir string, coord *dispatch.Coordinator, cfg service.Config) *httptest.Server {
	t.Helper()
	runs, err := persist.NewRunStore(runsDir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RunStore = runs
	cfg.Dispatcher = coord
	mgr, err := service.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(mgr)
	srv.SetDispatcher(coord)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		coord.Close()
	})
	return ts
}

// runWorker is cmd/comfedsv-worker's loop in-process: register, long-poll
// for leases, hydrate the trace from the shared run store, evaluate the
// leased permutation slice, and report the cells with their digest.
func runWorker(ctx context.Context, t *testing.T, base, id, runsDir string) {
	runs, err := persist.NewRunStore(runsDir)
	if err != nil {
		t.Errorf("worker %s: opening run store: %v", id, err)
		return
	}
	cl := dispatch.NewClient(base, id)
	if _, err := cl.Register(ctx); err != nil {
		if ctx.Err() == nil {
			t.Errorf("worker %s: register: %v", id, err)
		}
		return
	}
	observers := make(map[string]*comfedsv.ShardObserver)
	for ctx.Err() == nil {
		lease, err := cl.Lease(ctx, time.Second)
		if err != nil || lease == nil {
			continue
		}
		task := lease.Task
		key := fmt.Sprintf("%s/%d/%d", task.RunID, task.Budget, task.Seed)
		so := observers[key]
		if so == nil {
			run, err := runs.LoadRun(task.RunID)
			if err != nil {
				cl.Fail(ctx, lease.ID, err.Error())
				continue
			}
			so, err = comfedsv.NewShardObserver(ctx, comfedsv.NewTrainedRun(run), task.Budget, task.Seed, 2)
			if err != nil {
				cl.Fail(ctx, lease.ID, err.Error())
				continue
			}
			observers[key] = so
		}
		obs, err := so.ObserveSlice(ctx, task.Lo, task.Hi)
		if err != nil {
			cl.Fail(ctx, lease.ID, err.Error())
			continue
		}
		if err := cl.Complete(ctx, lease.ID, obs, nil); err != nil && ctx.Err() == nil {
			t.Errorf("worker %s: complete: %v", id, err)
		}
	}
}

// registerRun posts the training payload as a shared run and waits for it
// to become ready, returning its content-addressed ID.
func registerRun(t *testing.T, base string, payload []byte) string {
	t.Helper()
	var created struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, base+"/v1/runs", payload, &created); code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("POST /v1/runs: %d", code)
	}
	waitRunReady(t, base, created.ID)
	return created.ID
}

// mcJobBody is a run-backed Monte-Carlo submission with a sharded
// observation stage — the only remotable job shape.
func mcJobBody(t *testing.T, runID string, seed int64) []byte {
	t.Helper()
	raw, err := json.Marshal(map[string]any{
		"run_id": runID,
		"options": map[string]any{
			"num_classes":         2,
			"rounds":              4,
			"clients_per_round":   2,
			"seed":                seed,
			"monte_carlo_samples": 30,
			"shards":              3,
			"parallelism":         2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestDistributedObservationByteIdenticalWithWorkerLoss is the acceptance
// walkthrough of distributed observation: a run-backed Monte-Carlo job's
// shards are leased over the real HTTP surface to two workers, one of
// which is killed mid-shard (it takes a lease and goes silent); the lease
// expires, the shard is re-leased through the retry ladder to the healthy
// worker, every completion is digest-verified at the wire, and the final
// report is byte-identical to the same job executed entirely locally.
func TestDistributedObservationByteIdenticalWithWorkerLoss(t *testing.T) {
	payload, _, _, _ := tinyJob(37)
	const seed = 37

	// Baseline: same run, same job, no dispatcher — all shards local.
	localTS := testDaemon(t, service.Config{Workers: 2, RunStore: mustRunStore(t, t.TempDir())})
	localRun := registerRun(t, localTS.URL, payload)
	localID := submitAndWait(t, localTS.URL, mcJobBody(t, localRun, seed))
	code, want := getBody(t, localTS.URL+"/v1/jobs/"+localID+"/report")
	if code != http.StatusOK {
		t.Fatalf("GET local report: %d", code)
	}

	// Distributed daemon: short lease TTL so the killed worker's shard
	// re-leases quickly; quick retry ladder for the same reason.
	runsDir := t.TempDir()
	coord := dispatch.NewCoordinator(dispatch.Config{LeaseTTL: 400 * time.Millisecond, WorkerTTL: time.Hour})
	ts := dispatchDaemon(t, runsDir, coord, service.Config{
		Workers:        2,
		MaxTaskRetries: 5,
		RetryBaseDelay: 20 * time.Millisecond,
	})
	runID := registerRun(t, ts.URL, payload)
	if runID != localRun {
		t.Fatalf("content-addressed run IDs diverged: %s vs %s", runID, localRun)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The doomed worker registers first, so the job's shards go remote,
	// takes exactly one lease, and dies mid-shard without reporting.
	doomed := dispatch.NewClient(ts.URL, "doomed")
	if _, err := doomed.Register(ctx); err != nil {
		t.Fatalf("doomed register: %v", err)
	}

	var sub struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, ts.URL+"/v1/jobs", mcJobBody(t, runID, seed), &sub); code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %d", code)
	}

	var doomedLease *dispatch.Lease
	deadline := time.Now().Add(30 * time.Second)
	for doomedLease == nil {
		if time.Now().After(deadline) {
			t.Fatal("doomed worker never got a lease — shards were not dispatched remotely")
		}
		l, err := doomed.Lease(ctx, 2*time.Second)
		if err != nil {
			t.Fatalf("doomed lease poll: %v", err)
		}
		doomedLease = l
	}
	// Killed mid-shard: no Complete, no Fail, no further polls. The lease
	// deadline is now the only way the shard comes back.

	// The healthy worker picks up the remaining shards and, once the
	// doomed lease expires, the re-leased one.
	go runWorker(ctx, t, ts.URL, "healthy", runsDir)

	waitJobDone(t, ts.URL, sub.ID)
	code, got := getBody(t, ts.URL+"/v1/jobs/"+sub.ID+"/report")
	if code != http.StatusOK {
		t.Fatalf("GET distributed report: %d", code)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("distributed report differs from all-local execution:\n%s\nvs\n%s", got, want)
	}

	st := coord.Stats()
	if st.LeasesCompleted != 3 {
		t.Fatalf("LeasesCompleted = %d, want 3 (one per shard)", st.LeasesCompleted)
	}
	if st.LeasesExpired == 0 {
		t.Fatal("no lease expired — the worker-loss path never ran")
	}
	if st.DigestMismatches != 0 {
		t.Fatalf("DigestMismatches = %d, want 0", st.DigestMismatches)
	}

	// The straggler's late completion is rejected at the HTTP layer with a
	// 409 — its lease was revoked and the shard re-leased.
	straggler := &comfedsv.ShardObservations{Lo: doomedLease.Task.Lo, Hi: doomedLease.Task.Hi}
	straggler.Stamp()
	err := doomed.Complete(ctx, doomedLease.ID, straggler, nil)
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("straggler completion: %v, want 409 conflict", err)
	}

	// The dispatch metrics families are exported.
	code, metrics := getBody(t, ts.URL+"/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET metrics: %d", code)
	}
	for _, family := range []string{
		"comfedsvd_dispatch_workers_live",
		"comfedsvd_dispatch_leases_completed_total 3",
		"comfedsvd_dispatch_leases_expired_total",
		"comfedsvd_dispatch_digest_mismatches_total 0",
	} {
		if !strings.Contains(string(metrics), family) {
			t.Errorf("metrics missing %q", family)
		}
	}
}

// TestDistributedObservationManyWorkersByteIdentical pins N-worker
// determinism: the same job leased across three healthy workers reports
// byte-identically to the all-local baseline.
func TestDistributedObservationManyWorkersByteIdentical(t *testing.T) {
	payload, _, _, _ := tinyJob(41)
	const seed = 41

	localTS := testDaemon(t, service.Config{Workers: 2, RunStore: mustRunStore(t, t.TempDir())})
	localRun := registerRun(t, localTS.URL, payload)
	localID := submitAndWait(t, localTS.URL, mcJobBody(t, localRun, seed))
	code, want := getBody(t, localTS.URL+"/v1/jobs/"+localID+"/report")
	if code != http.StatusOK {
		t.Fatalf("GET local report: %d", code)
	}

	runsDir := t.TempDir()
	coord := dispatch.NewCoordinator(dispatch.Config{WorkerTTL: time.Hour})
	ts := dispatchDaemon(t, runsDir, coord, service.Config{Workers: 2})
	runID := registerRun(t, ts.URL, payload)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 3; i++ {
		go runWorker(ctx, t, ts.URL, fmt.Sprintf("w%d", i), runsDir)
	}
	// Wait until at least one worker registered so the shards go remote
	// rather than falling back to local execution.
	deadline := time.Now().Add(10 * time.Second)
	for !coord.HasLiveWorkers() {
		if time.Now().After(deadline) {
			t.Fatal("no worker registered")
		}
		time.Sleep(time.Millisecond)
	}

	id := submitAndWait(t, ts.URL, mcJobBody(t, runID, seed))
	code, got := getBody(t, ts.URL+"/v1/jobs/"+id+"/report")
	if code != http.StatusOK {
		t.Fatalf("GET distributed report: %d", code)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("3-worker report differs from all-local execution:\n%s\nvs\n%s", got, want)
	}
	if st := coord.Stats(); st.LeasesCompleted != 3 || st.DigestMismatches != 0 {
		t.Fatalf("stats after clean distributed run: %+v", st)
	}
}

func mustRunStore(t *testing.T, dir string) *persist.RunStore {
	t.Helper()
	rs, err := persist.NewRunStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func waitJobDone(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st service.Status
		if code := getJSON(t, base+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET status: %d", code)
		}
		if st.State.Terminal() {
			if st.State != service.StateDone {
				t.Fatalf("job ended %s: %s", st.State, st.Error)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("distributed job did not finish in time")
}
