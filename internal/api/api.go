// Package api exposes the service job engine over an HTTP JSON API — the
// wire surface of the comfedsvd daemon:
//
//	POST /v1/jobs             submit a valuation job (clients + options,
//	                          or "run_id" to value against a shared run)
//	GET  /v1/jobs             list all jobs
//	GET  /v1/jobs/{id}        job status, per-stage/per-shard progress
//	GET  /v1/jobs/{id}/report finished report (FedSV / ComFedSV values)
//	POST /v1/jobs/{id}/cancel cancel a queued or running job
//	DELETE /v1/jobs/{id}      delete a terminal job (409 while active)
//	POST /v1/runs             register (and train, if new) a shared run
//	GET  /v1/runs             list all shared runs
//	GET  /v1/runs/{id}        run status, refcount, cache hit/miss counters
//	DELETE /v1/runs/{id}      delete a run (409 while jobs reference it)
//	GET  /v1/healthz          liveness plus job/run/worker counts
//	GET  /v1/metrics          scheduler counters in Prometheus text format
//
// Every response body is JSON (except /v1/metrics, which is Prometheus
// text exposition); errors are {"error": "..."} with a meaningful status
// code (400 malformed, 404 unknown job/run, 409 report not ready, job
// still active, or run still referenced, 429 with Retry-After when the
// queue is full, 503 shutting down).
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"comfedsv"
	"comfedsv/internal/dispatch"
	"comfedsv/internal/service"
	"comfedsv/internal/telemetry"
)

// maxRequestBytes bounds a job submission body (feature matrices can be
// large, but unbounded reads are a trivial DoS).
const maxRequestBytes = 256 << 20

// Server routes HTTP traffic onto a service.Manager.
type Server struct {
	mgr      *service.Manager
	started  time.Time
	log      *slog.Logger
	dispatch *dispatch.Coordinator
}

// NewServer wraps a manager.
func NewServer(mgr *service.Manager) *Server {
	return &Server{mgr: mgr, started: time.Now()}
}

// SetLogger enables structured request logging: one record per completed
// request with method, path, status, duration, and response size. Call
// before Handler; a nil logger (the default) disables the middleware
// entirely.
func (s *Server) SetLogger(l *slog.Logger) { s.log = l }

// Handler returns the daemon's route table, wrapped in the request-logging
// middleware when a logger is set.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs", s.list)
	mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.report)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.cancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.deleteJob)
	mux.HandleFunc("POST /v1/runs", s.createRun)
	mux.HandleFunc("GET /v1/runs", s.listRuns)
	mux.HandleFunc("GET /v1/runs/{id}", s.runStatus)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.deleteRun)
	mux.HandleFunc("GET /v1/healthz", s.healthz)
	mux.HandleFunc("GET /v1/metrics", s.metrics)
	s.workerRoutes(mux)
	if s.log == nil {
		return mux
	}
	return s.logRequests(mux)
}

// statusRecorder captures the status code and body size a handler wrote,
// for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// logRequests is the access-log middleware: every completed request emits
// one structured record, at debug level since per-request records are
// chatty under load. Logging happens after the response is written, so a
// slow log sink delays the connection's reuse, never the response.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		s.log.Debug("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration_ms", time.Since(start).Milliseconds(),
			"bytes", rec.bytes,
		)
	})
}

// clientJSON is the wire form of one data owner's local dataset.
type clientJSON struct {
	X [][]float64 `json:"x"`
	Y []int       `json:"y"`
}

// optionsJSON overlays non-zero fields onto comfedsv.DefaultOptions, so
// clients only send what they want to change. NumClasses is mandatory.
type optionsJSON struct {
	NumClasses        int     `json:"num_classes"`
	Rounds            int     `json:"rounds,omitempty"`
	ClientsPerRound   int     `json:"clients_per_round,omitempty"`
	LearningRate      float64 `json:"learning_rate,omitempty"`
	Model             string  `json:"model,omitempty"` // "logreg" (default) or "mlp"
	HiddenUnits       int     `json:"hidden_units,omitempty"`
	Rank              int     `json:"rank,omitempty"`
	MonteCarloSamples int     `json:"monte_carlo_samples,omitempty"`
	// Parallelism is the per-task CPU budget for the valuation hot path
	// (ALS completion and Monte-Carlo observation). 0 or absent means the
	// daemon's default — a fair share of GOMAXPROCS across the worker
	// pool. The computed values do not depend on it.
	Parallelism int `json:"parallelism,omitempty"`
	// Shards is the number of observation shard tasks the job's
	// Monte-Carlo stage is split into on the scheduler. 0 or absent means
	// the daemon's default (-shards flag, 1 if unset). The computed values
	// do not depend on it.
	Shards int `json:"shards,omitempty"`
	// Tolerance, if present, switches the job to adaptive valuation:
	// sampling runs in waves and stops once no client's ComFedSV estimate
	// moved more than the tolerance between consecutive waves, with
	// monte_carlo_samples (or max_permutations) as the permutation budget.
	// A pointer so an explicit 0 — rejected as non-positive — is
	// distinguishable from an absent field (fixed-budget valuation).
	Tolerance *float64 `json:"tolerance,omitempty"`
	// MaxPermutations is an explicit permutation budget for adaptive
	// jobs — an alias for monte_carlo_samples that reads better next to
	// tolerance. Requires tolerance; setting both budgets to different
	// values is rejected.
	MaxPermutations int `json:"max_permutations,omitempty"`
	// Seed is a pointer so an explicit "seed": 0 is distinguishable from
	// an absent field (0 is a valid seed the library accepts).
	Seed *int64 `json:"seed,omitempty"`
}

func (o optionsJSON) toOptions() (comfedsv.Options, error) {
	return o.overlay(true)
}

// overlay validates the wire options and applies them over the defaults.
// requireClasses is false for run-backed jobs: their model (and so the
// class count) is fixed by the referenced run, and only the valuation
// fields matter.
func (o optionsJSON) overlay(requireClasses bool) (comfedsv.Options, error) {
	numClasses := o.NumClasses
	if !requireClasses && numClasses == 0 {
		numClasses = 2 // ignored downstream; keeps the defaults constructor happy
	}
	opts := comfedsv.DefaultOptions(numClasses)
	if numClasses < 2 {
		return opts, fmt.Errorf("options.num_classes must be at least 2, got %d", o.NumClasses)
	}
	// Zero means "use the default" (the fields are omitempty); negatives
	// are rejected rather than silently replaced by defaults.
	for name, v := range map[string]int{
		"rounds":              o.Rounds,
		"clients_per_round":   o.ClientsPerRound,
		"hidden_units":        o.HiddenUnits,
		"rank":                o.Rank,
		"monte_carlo_samples": o.MonteCarloSamples,
		"parallelism":         o.Parallelism,
		"shards":              o.Shards,
		"max_permutations":    o.MaxPermutations,
	} {
		if v < 0 {
			return opts, fmt.Errorf("options.%s must not be negative, got %d", name, v)
		}
	}
	if o.LearningRate < 0 {
		return opts, fmt.Errorf("options.learning_rate must not be negative, got %v", o.LearningRate)
	}
	if o.Tolerance != nil {
		tol := *o.Tolerance
		if math.IsNaN(tol) || math.IsInf(tol, 0) || tol <= 0 {
			return opts, fmt.Errorf("options.tolerance must be positive and finite, got %v", tol)
		}
		if o.MonteCarloSamples == 0 && o.MaxPermutations == 0 {
			return opts, errors.New("options.tolerance requires a permutation budget (monte_carlo_samples or max_permutations)")
		}
		if o.MonteCarloSamples > 0 && o.MaxPermutations > 0 && o.MonteCarloSamples != o.MaxPermutations {
			return opts, fmt.Errorf("options.monte_carlo_samples (%d) and options.max_permutations (%d) disagree", o.MonteCarloSamples, o.MaxPermutations)
		}
		opts.Tolerance = tol
	} else if o.MaxPermutations > 0 {
		return opts, errors.New("options.max_permutations requires options.tolerance (fixed-budget jobs use monte_carlo_samples)")
	}
	if o.MaxPermutations > 0 {
		opts.MaxPermutations = o.MaxPermutations
	}
	if o.Rounds > 0 {
		opts.Rounds = o.Rounds
	}
	if o.ClientsPerRound > 0 {
		opts.ClientsPerRound = o.ClientsPerRound
	}
	if o.LearningRate > 0 {
		opts.LearningRate = o.LearningRate
	}
	switch o.Model {
	case "", "logreg":
		opts.Model = comfedsv.LogisticRegression
	case "mlp":
		opts.Model = comfedsv.MLP
	default:
		return opts, fmt.Errorf("unknown model %q (want \"logreg\" or \"mlp\")", o.Model)
	}
	if o.HiddenUnits > 0 {
		opts.HiddenUnits = o.HiddenUnits
	}
	if o.Rank > 0 {
		opts.Rank = o.Rank
	}
	if o.MonteCarloSamples > 0 {
		opts.MonteCarloSamples = o.MonteCarloSamples
	}
	if o.Parallelism > 0 {
		opts.Parallelism = o.Parallelism
	}
	if o.Shards > 0 {
		opts.Shards = o.Shards
	}
	if o.Seed != nil {
		opts.Seed = *o.Seed
	}
	return opts, nil
}

// jobRequest is the body of POST /v1/jobs. Either Clients+Test (inline
// training) or RunID (value against a shared run) must be given, not both.
type jobRequest struct {
	RunID   string       `json:"run_id,omitempty"`
	Clients []clientJSON `json:"clients,omitempty"`
	Test    clientJSON   `json:"test,omitempty"`
	Options optionsJSON  `json:"options"`
}

// submitResponse is the body of a successful POST /v1/jobs.
type submitResponse struct {
	ID    string        `json:"id"`
	State service.State `json:"state"`
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, errors.New("unexpected trailing data after JSON body"))
		return
	}
	if req.RunID != "" && (len(req.Clients) > 0 || len(req.Test.X) > 0 || len(req.Test.Y) > 0) {
		writeError(w, http.StatusBadRequest, errors.New("run_id and inline clients/test are mutually exclusive"))
		return
	}
	if req.RunID == "" && len(req.Clients) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no clients"))
		return
	}
	opts, err := req.Options.overlay(req.RunID == "")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sr := service.Request{RunID: req.RunID, Options: opts}
	if req.RunID == "" {
		sr.Test = toClient(req.Test)
		for _, c := range req.Clients {
			sr.Clients = append(sr.Clients, toClient(c))
		}
	}
	id, err := s.mgr.Submit(sr)
	switch {
	case errors.Is(err, service.ErrRunNotFound):
		writeError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, service.ErrQueueFull):
		// Backpressure, not unavailability: the daemon is healthy, the
		// queue is momentarily full. 429 + Retry-After tells well-behaved
		// clients to back off and resubmit. The hint scales with queue
		// pressure; per-request jitter (up to +50%) spreads the herd so a
		// saturated deployment's rejected clients don't all come back in
		// the same second. Header randomness never feeds a report.
		retry := s.mgr.SubmitRetryAfter()
		retry += time.Duration(rand.Int64N(int64(retry)/2 + 1))
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retry.Seconds()))))
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, service.ErrShutdown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{ID: id, State: service.StateQueued})
}

// runRequest is the body of POST /v1/runs: the datasets plus the training
// half of the options. Valuation-only fields (rank, monte_carlo_samples,
// parallelism) are accepted but do not participate in the run's identity —
// jobs that differ only in them share the run.
type runRequest struct {
	Clients []clientJSON `json:"clients"`
	Test    clientJSON   `json:"test"`
	Options optionsJSON  `json:"options"`
}

// createRunResponse is the body of a successful POST /v1/runs.
type createRunResponse struct {
	ID      string           `json:"id"`
	State   service.RunState `json:"state"`
	Created bool             `json:"created"`
}

func (s *Server) createRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, errors.New("unexpected trailing data after JSON body"))
		return
	}
	if len(req.Clients) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no clients"))
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec := service.RunSpec{Test: toClient(req.Test), Options: opts}
	for _, c := range req.Clients {
		spec.Clients = append(spec.Clients, toClient(c))
	}
	st, created, err := s.mgr.CreateRun(spec)
	switch {
	case errors.Is(err, service.ErrShutdown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// 202 while the new run trains; re-registering an existing run is a
	// cheap idempotent 200.
	code := http.StatusOK
	if created {
		code = http.StatusAccepted
	}
	writeJSON(w, code, createRunResponse{ID: st.ID, State: st.State, Created: created})
}

func (s *Server) listRuns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"runs": s.mgr.Runs()})
}

func (s *Server) runStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.RunStatus(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) deleteRun(w http.ResponseWriter, r *http.Request) {
	switch err := s.mgr.DeleteRun(r.PathValue("id")); {
	case errors.Is(err, service.ErrRunNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, service.ErrRunBusy):
		writeError(w, http.StatusConflict, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}

func toClient(c clientJSON) comfedsv.Client { return comfedsv.Client{X: c.X, Y: c.Y} }

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.mgr.List()})
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) report(w http.ResponseWriter, r *http.Request) {
	rep, err := s.mgr.Report(r.PathValue("id"))
	switch {
	case errors.Is(err, service.ErrNotFound):
		writeError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, service.ErrFailed):
		// 410: the job is terminal and will never produce a report, so
		// clients polling for non-409 stop here.
		writeError(w, http.StatusGone, err)
		return
	case errors.Is(err, service.ErrNotDone):
		writeError(w, http.StatusConflict, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.mgr.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	st, err := s.mgr.Status(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// deleteJob removes a terminal job and its persisted report. Active jobs
// are a 409 — cancel first, then delete.
func (s *Server) deleteJob(w http.ResponseWriter, r *http.Request) {
	switch err := s.mgr.DeleteJob(r.PathValue("id")); {
	case errors.Is(err, service.ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, service.ErrJobActive):
		writeError(w, http.StatusConflict, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}

// metrics renders the scheduler counters in the Prometheus text exposition
// format (version 0.0.4) — job states, queue and task depths, executed
// stage tasks, TTL evictions, the per-run utility-cache ledgers, and the
// per-stage latency histograms (_bucket/_sum/_count series).
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	m := s.mgr.Metrics()
	var b strings.Builder

	b.WriteString("# HELP comfedsvd_jobs Number of jobs by lifecycle state.\n# TYPE comfedsvd_jobs gauge\n")
	for _, st := range []service.State{service.StateQueued, service.StateRunning, service.StateDone, service.StateFailed} {
		fmt.Fprintf(&b, "comfedsvd_jobs{state=%q} %d\n", string(st), m.Jobs[st])
	}

	b.WriteString("# HELP comfedsvd_runs Number of shared training runs by state.\n# TYPE comfedsvd_runs gauge\n")
	for _, st := range []service.RunState{service.RunTraining, service.RunReady, service.RunFailed} {
		fmt.Fprintf(&b, "comfedsvd_runs{state=%q} %d\n", string(st), m.Runs[st])
	}

	b.WriteString("# HELP comfedsvd_queue_depth Jobs waiting to start (bounded by -queue).\n# TYPE comfedsvd_queue_depth gauge\n")
	fmt.Fprintf(&b, "comfedsvd_queue_depth %d\n", m.QueuedJobs)
	b.WriteString("# HELP comfedsvd_ready_tasks Stage tasks eligible to run now.\n# TYPE comfedsvd_ready_tasks gauge\n")
	fmt.Fprintf(&b, "comfedsvd_ready_tasks %d\n", m.ReadyTasks)
	b.WriteString("# HELP comfedsvd_inflight_tasks Stage tasks executing on workers.\n# TYPE comfedsvd_inflight_tasks gauge\n")
	fmt.Fprintf(&b, "comfedsvd_inflight_tasks %d\n", m.InflightTasks)

	b.WriteString("# HELP comfedsvd_tasks_executed_total Completed stage tasks by pipeline stage.\n# TYPE comfedsvd_tasks_executed_total counter\n")
	stages := make([]string, 0, len(m.TasksExecuted))
	for stage := range m.TasksExecuted {
		stages = append(stages, stage)
	}
	sort.Strings(stages)
	for _, stage := range stages {
		fmt.Fprintf(&b, "comfedsvd_tasks_executed_total{stage=%q} %d\n", stage, m.TasksExecuted[stage])
	}
	b.WriteString("# HELP comfedsvd_shard_tasks_executed_total Observation shard tasks executed.\n# TYPE comfedsvd_shard_tasks_executed_total counter\n")
	fmt.Fprintf(&b, "comfedsvd_shard_tasks_executed_total %d\n", m.ShardTasksExecuted)
	b.WriteString("# HELP comfedsvd_jobs_evicted_total Terminal jobs evicted by the TTL janitor.\n# TYPE comfedsvd_jobs_evicted_total counter\n")
	fmt.Fprintf(&b, "comfedsvd_jobs_evicted_total %d\n", m.JobsEvicted)
	b.WriteString("# HELP comfedsvd_task_retries_total Transient task failures re-executed via backoff, by pipeline stage.\n# TYPE comfedsvd_task_retries_total counter\n")
	retryStages := make([]string, 0, len(m.TaskRetries))
	for stage := range m.TaskRetries {
		retryStages = append(retryStages, stage)
	}
	sort.Strings(retryStages)
	for _, stage := range retryStages {
		fmt.Fprintf(&b, "comfedsvd_task_retries_total{stage=%q} %d\n", stage, m.TaskRetries[stage])
	}
	b.WriteString("# HELP comfedsvd_jobs_recovered_total Jobs resumed from crash journals at daemon startup.\n# TYPE comfedsvd_jobs_recovered_total counter\n")
	fmt.Fprintf(&b, "comfedsvd_jobs_recovered_total %d\n", m.JobsRecovered)
	b.WriteString("# HELP comfedsvd_jobs_rejected_total Job submissions refused by the queue bound.\n# TYPE comfedsvd_jobs_rejected_total counter\n")
	fmt.Fprintf(&b, "comfedsvd_jobs_rejected_total %d\n", m.JobsRejected)
	b.WriteString("# HELP comfedsvd_observations_skipped_total Budgeted permutations adaptive jobs never sampled because their estimates converged early.\n# TYPE comfedsvd_observations_skipped_total counter\n")
	fmt.Fprintf(&b, "comfedsvd_observations_skipped_total %d\n", m.ObservationsSkipped)

	b.WriteString("# HELP comfedsvd_run_cache_hits_total Utility-cache lookups amortized by a run's shared memo table.\n# TYPE comfedsvd_run_cache_hits_total counter\n")
	for _, rc := range m.RunCaches {
		fmt.Fprintf(&b, "comfedsvd_run_cache_hits_total{run_id=%q} %d\n", rc.ID, rc.Hits)
	}
	b.WriteString("# HELP comfedsvd_run_cache_misses_total Distinct test-loss evaluations paid per run.\n# TYPE comfedsvd_run_cache_misses_total counter\n")
	for _, rc := range m.RunCaches {
		fmt.Fprintf(&b, "comfedsvd_run_cache_misses_total{run_id=%q} %d\n", rc.ID, rc.Misses)
	}

	b.WriteString("# HELP comfedsvd_cellcache_preloaded_total Utility cells warm-started into run evaluators from sidecars and worker deltas.\n# TYPE comfedsvd_cellcache_preloaded_total counter\n")
	fmt.Fprintf(&b, "comfedsvd_cellcache_preloaded_total %d\n", m.CellsPreloaded)
	b.WriteString("# HELP comfedsvd_cellcache_persisted_total Utility cells durably appended to run cell-cache sidecars.\n# TYPE comfedsvd_cellcache_persisted_total counter\n")
	fmt.Fprintf(&b, "comfedsvd_cellcache_persisted_total %d\n", m.CellsPersisted)
	b.WriteString("# HELP comfedsvd_cellcache_hit_total Utility-cache hits served by a preloaded cell (evaluations an earlier process or worker paid for).\n# TYPE comfedsvd_cellcache_hit_total counter\n")
	fmt.Fprintf(&b, "comfedsvd_cellcache_hit_total %d\n", m.CellsWarmHits)
	b.WriteString("# HELP comfedsvd_cellcache_corrupt_total Cell-cache sidecars quarantined as corrupt (runs degraded to a cold cache).\n# TYPE comfedsvd_cellcache_corrupt_total counter\n")
	fmt.Fprintf(&b, "comfedsvd_cellcache_corrupt_total %d\n", m.CellsCorrupt)

	telemetry.WritePrometheusFamily(&b, "comfedsvd_task_duration_seconds",
		"Wall-clock execution time of scheduler stage tasks, by pipeline stage.",
		"stage", m.TaskLatency)
	telemetry.WritePrometheusFamily(&b, "comfedsvd_valuation_stage_duration_seconds",
		"Wall-clock time of comfedsv pipeline stages (train and fedsv run inside the prepare task).",
		"stage", m.ValuationStageLatency)
	b.WriteString("# HELP comfedsvd_job_duration_seconds Submit-to-finish latency of completed jobs.\n# TYPE comfedsvd_job_duration_seconds histogram\n")
	m.JobDuration.WritePrometheus(&b, "comfedsvd_job_duration_seconds", "")
	b.WriteString("# HELP comfedsvd_job_queue_wait_seconds Submit-to-start queue wait of started jobs.\n# TYPE comfedsvd_job_queue_wait_seconds histogram\n")
	m.JobQueueWait.WritePrometheus(&b, "comfedsvd_job_queue_wait_seconds", "")

	s.writeDispatchMetrics(&b)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, b.String())
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	counts := s.mgr.Counts()
	runCounts := s.mgr.RunCounts()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
		"workers":        s.mgr.Workers(),
		"jobs": map[string]int{
			"queued":  counts[service.StateQueued],
			"running": counts[service.StateRunning],
			"done":    counts[service.StateDone],
			"failed":  counts[service.StateFailed],
		},
		"runs": map[string]int{
			"training": runCounts[service.RunTraining],
			"ready":    runCounts[service.RunReady],
			"failed":   runCounts[service.RunFailed],
		},
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	// Marshal before writing the header so an unencodable value (e.g. a
	// NaN loss in a report) becomes a clean 500 instead of a truncated 200.
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		body = []byte(fmt.Sprintf(`{"error": %q}`, "encoding response: "+err.Error()))
		code = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(body, '\n'))
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
