package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"comfedsv"
	"comfedsv/internal/service"
)

// testDaemon is comfedsvd in-process: a real Manager behind the real
// route table, served by httptest.
func testDaemon(t *testing.T, cfg service.Config) *httptest.Server {
	t.Helper()
	mgr, err := service.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mgr).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// tinyJob is a small deterministic submission: four separable 2-D clients,
// two classes, exact pipeline.
func tinyJob(seed int64) ([]byte, []comfedsv.Client, comfedsv.Client, comfedsv.Options) {
	mk := func(off float64) comfedsv.Client {
		var c comfedsv.Client
		for i := 0; i < 8; i++ {
			x := off + float64(i)*0.3
			label := 0
			if x > 1 {
				label = 1
			}
			c.X = append(c.X, []float64{x, 1 - x})
			c.Y = append(c.Y, label)
		}
		return c
	}
	clients := []comfedsv.Client{mk(-0.4), mk(0.1), mk(0.6), mk(1.1)}
	test := mk(0.25)
	opts := comfedsv.DefaultOptions(2)
	opts.Rounds = 4
	opts.ClientsPerRound = 2
	opts.Seed = seed

	body := map[string]any{
		"test": map[string]any{"x": test.X, "y": test.Y},
		"options": map[string]any{
			"num_classes":       2,
			"rounds":            4,
			"clients_per_round": 2,
			"seed":              seed,
		},
	}
	var cs []map[string]any
	for _, c := range clients {
		cs = append(cs, map[string]any{"x": c.X, "y": c.Y})
	}
	body["clients"] = cs
	raw, err := json.Marshal(body)
	if err != nil {
		panic(err)
	}
	return raw, clients, test, opts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp.StatusCode
}

// submitAndWait drives the full client flow: POST the job, poll status to
// completion, return the job ID.
func submitAndWait(t *testing.T, base string, payload []byte) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
	}
	if sub.ID == "" || sub.State != "queued" {
		t.Fatalf("submit response %+v", sub)
	}

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st service.Status
		if code := getJSON(t, base+"/v1/jobs/"+sub.ID, &st); code != http.StatusOK {
			t.Fatalf("GET status: %d", code)
		}
		if st.State.Terminal() {
			if st.State != service.StateDone {
				t.Fatalf("job ended %s: %s", st.State, st.Error)
			}
			return sub.ID
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return ""
}

func TestDaemonEndToEnd(t *testing.T) {
	ts := testDaemon(t, service.Config{Workers: 2})
	payload, clients, test, opts := tinyJob(11)

	id := submitAndWait(t, ts.URL, payload)

	var got comfedsv.Report
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/report", &got); code != http.StatusOK {
		t.Fatalf("GET report: %d", code)
	}
	want, err := comfedsv.Value(clients, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.FedSV, want.FedSV) {
		t.Fatalf("FedSV over HTTP %v, direct %v", got.FedSV, want.FedSV)
	}
	if !reflect.DeepEqual(got.ComFedSV, want.ComFedSV) {
		t.Fatalf("ComFedSV over HTTP %v, direct %v", got.ComFedSV, want.ComFedSV)
	}
	if got.UtilityCalls != want.UtilityCalls {
		t.Fatalf("UtilityCalls over HTTP %d, direct %d", got.UtilityCalls, want.UtilityCalls)
	}
}

func TestDaemonConcurrentJobs(t *testing.T) {
	ts := testDaemon(t, service.Config{Workers: 4})
	payload, clients, test, opts := tinyJob(13)
	want, err := comfedsv.Value(clients, test, opts)
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 4
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := submitAndWait(t, ts.URL, payload)
			var got comfedsv.Report
			if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/report", &got); code != http.StatusOK {
				errs <- fmt.Errorf("GET report: %d", code)
				return
			}
			if !reflect.DeepEqual(got.ComFedSV, want.ComFedSV) {
				errs <- fmt.Errorf("job %s: ComFedSV %v, want %v", id, got.ComFedSV, want.ComFedSV)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestDaemonValidation(t *testing.T) {
	ts := testDaemon(t, service.Config{Workers: 1})

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d, want 400", code)
	}
	if code := post(`{"clients": [], "test": {"x": [], "y": []}, "options": {"num_classes": 2}}`); code != http.StatusBadRequest {
		t.Fatalf("empty clients: %d, want 400", code)
	}
	if code := post(`{"clients": [{"x": [[1]], "y": [0]}], "test": {"x": [[1]], "y": [0]}, "options": {"num_classes": 2, "model": "transformer"}}`); code != http.StatusBadRequest {
		t.Fatalf("unknown model: %d, want 400", code)
	}
	if code := post(`{"bogus_field": 1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d, want 400", code)
	}
	if code := post(`{"clients": [{"x": [[1]], "y": [0]}], "test": {"x": [[1]], "y": [0]}, "options": {}}`); code != http.StatusBadRequest {
		t.Fatalf("missing num_classes: %d, want 400", code)
	}
	if code := post(`{"clients": [{"x": [[1]], "y": [0]}], "test": {"x": [[1]], "y": [0]}, "options": {"num_classes": 2, "rounds": -5}}`); code != http.StatusBadRequest {
		t.Fatalf("negative rounds: %d, want 400", code)
	}
	if code := post(`{"clients": [{"x": [[1]], "y": [0]}], "test": {"x": [[1]], "y": [0]}, "options": {"num_classes": 2, "parallelism": -1}}`); code != http.StatusBadRequest {
		t.Fatalf("negative parallelism: %d, want 400", code)
	}
	if code := post(`{"clients": [{"x": [[1]], "y": [0]}], "test": {"x": [[1]], "y": [0]}, "options": {"num_classes": 2}}{"oops": 1}`); code != http.StatusBadRequest {
		t.Fatalf("trailing data: %d, want 400", code)
	}

	if code := getJSON(t, ts.URL+"/v1/jobs/job-doesnotexist", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job status: %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/job-doesnotexist/report", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job report: %d, want 404", code)
	}
}

func TestDaemonReportBeforeDoneAndCancel(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ts := testDaemon(t, service.Config{
		Workers: 1,
		Value: func(ctx context.Context, _ []comfedsv.Client, _ comfedsv.Client, _ comfedsv.Options) (*comfedsv.Report, error) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-release:
				return &comfedsv.Report{FedSV: []float64{1}, ComFedSV: []float64{1}}, nil
			}
		},
	})

	payload, _, _, _ := tinyJob(1)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if code := getJSON(t, ts.URL+"/v1/jobs/"+sub.ID+"/report", nil); code != http.StatusConflict {
		t.Fatalf("report of unfinished job: %d, want 409", code)
	}

	resp, err = http.Post(ts.URL+"/v1/jobs/"+sub.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d, want 200", resp.StatusCode)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		var st service.Status
		getJSON(t, ts.URL+"/v1/jobs/"+sub.ID, &st)
		if st.State.Terminal() {
			if st.State != service.StateFailed {
				t.Fatalf("cancelled job ended %s", st.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled job never became terminal")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+sub.ID+"/report", nil); code != http.StatusGone {
		t.Fatalf("report of cancelled job: %d, want 410", code)
	}
}

func TestDaemonHealthAndList(t *testing.T) {
	ts := testDaemon(t, service.Config{Workers: 2})
	var health struct {
		Status  string         `json:"status"`
		Workers int            `json:"workers"`
		Jobs    map[string]int `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/v1/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if health.Status != "ok" || health.Workers != 2 {
		t.Fatalf("healthz = %+v", health)
	}

	payload, _, _, _ := tinyJob(5)
	id := submitAndWait(t, ts.URL, payload)

	var list struct {
		Jobs []service.Status `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs", &list); code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != id {
		t.Fatalf("list = %+v, want the one submitted job", list.Jobs)
	}
	if code := getJSON(t, ts.URL+"/v1/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if health.Jobs["done"] != 1 {
		t.Fatalf("healthz jobs = %v, want done=1", health.Jobs)
	}
}

// postJSON POSTs a body and decodes the JSON response.
func postJSON(t *testing.T, url string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// getBody fetches a URL and returns the raw response bytes — the tool for
// byte-identity assertions on reports.
func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// waitRunReady polls a run's status until it leaves the training state,
// failing the test if it ends up failed.
func waitRunReady(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st service.RunStatus
		if code := getJSON(t, base+"/v1/runs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET run status: %d", code)
		}
		switch st.State {
		case service.RunReady:
			return
		case service.RunFailed:
			t.Fatalf("run failed: %s", st.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("run never became ready")
}

// TestDaemonSharedRunEndToEnd is the acceptance walkthrough of the shared-
// run surface: register one run, submit two jobs against it plus their
// inline-config equivalents, and require (1) byte-identical report bodies
// between each run-backed job and its inline twin, (2) a nonzero
// cache-hit counter on the second run-backed job, and (3) run counters
// that show the amortization.
func TestDaemonSharedRunEndToEnd(t *testing.T) {
	ts := testDaemon(t, service.Config{Workers: 2})
	payload, _, _, _ := tinyJob(31)

	var created struct {
		ID      string `json:"id"`
		State   string `json:"state"`
		Created bool   `json:"created"`
	}
	if code := postJSON(t, ts.URL+"/v1/runs", payload, &created); code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs: %d", code)
	}
	if created.ID == "" || !created.Created || created.State != "training" {
		t.Fatalf("create response %+v", created)
	}
	// Idempotent re-registration: 200, same ID, no second training.
	var again struct {
		ID      string `json:"id"`
		Created bool   `json:"created"`
	}
	if code := postJSON(t, ts.URL+"/v1/runs", payload, &again); code != http.StatusOK {
		t.Fatalf("duplicate POST /v1/runs: %d", code)
	}
	if again.ID != created.ID || again.Created {
		t.Fatalf("duplicate create response %+v, want dedup onto %s", again, created.ID)
	}
	waitRunReady(t, ts.URL, created.ID)

	// The run-backed submission reuses the inline options minus the data.
	runJobBody := []byte(fmt.Sprintf(
		`{"run_id": %q, "options": {"num_classes": 2, "rounds": 4, "clients_per_round": 2, "seed": 31}}`,
		created.ID))

	type jobResult struct {
		id     string
		report []byte
		stats  *comfedsv.EvalStats
	}
	runJob := func(body []byte) jobResult {
		id := submitAndWait(t, ts.URL, body)
		code, rep := getBody(t, ts.URL+"/v1/jobs/"+id+"/report")
		if code != http.StatusOK {
			t.Fatalf("GET report: %d", code)
		}
		var st service.Status
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET status: %d", code)
		}
		return jobResult{id: id, report: rep, stats: st.CacheStats}
	}

	first := runJob(runJobBody)
	second := runJob(runJobBody)
	inline1 := runJob(payload)
	inline2 := runJob(payload)

	if !bytes.Equal(first.report, inline1.report) {
		t.Fatalf("first run-backed report differs from inline equivalent:\n%s\nvs\n%s", first.report, inline1.report)
	}
	if !bytes.Equal(second.report, inline2.report) {
		t.Fatalf("second run-backed report differs from inline equivalent:\n%s\nvs\n%s", second.report, inline2.report)
	}
	if first.stats == nil || first.stats.Misses == 0 {
		t.Fatalf("first run-backed job cache stats %+v, want misses on a cold cache", first.stats)
	}
	if second.stats == nil || second.stats.Hits == 0 || second.stats.Misses != 0 {
		t.Fatalf("second run-backed job cache stats %+v, want a nonzero hit counter and no misses", second.stats)
	}
	if inline1.stats != nil {
		t.Fatalf("inline job unexpectedly carries shared-cache stats %+v", inline1.stats)
	}

	var rs service.RunStatus
	if code := getJSON(t, ts.URL+"/v1/runs/"+created.ID, &rs); code != http.StatusOK {
		t.Fatalf("GET run status: %d", code)
	}
	if rs.CacheHits == 0 || rs.CacheMisses == 0 {
		t.Fatalf("run counters %+v, want nonzero hits and misses after two shared jobs", rs)
	}
	var list struct {
		Runs []service.RunStatus `json:"runs"`
	}
	if code := getJSON(t, ts.URL+"/v1/runs", &list); code != http.StatusOK {
		t.Fatalf("GET /v1/runs: %d", code)
	}
	if len(list.Runs) != 1 || list.Runs[0].ID != created.ID {
		t.Fatalf("run list %+v, want the one registered run", list.Runs)
	}

	var health struct {
		Runs map[string]int `json:"runs"`
	}
	if code := getJSON(t, ts.URL+"/v1/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if health.Runs["ready"] != 1 {
		t.Fatalf("healthz runs = %v, want ready=1", health.Runs)
	}
}

func TestDaemonRunValidationAndDelete(t *testing.T) {
	ts := testDaemon(t, service.Config{Workers: 1})

	if code := postJSON(t, ts.URL+"/v1/runs", []byte(`{"clients": [], "test": {"x": [], "y": []}, "options": {"num_classes": 2}}`), nil); code != http.StatusBadRequest {
		t.Fatalf("empty clients: %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/v1/runs", []byte(`{not json`), nil); code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/v1/runs/run-doesnotexist", nil); code != http.StatusNotFound {
		t.Fatalf("unknown run status: %d, want 404", code)
	}

	// Jobs referencing unknown runs are 404; mixing run_id with inline
	// data is 400; options without num_classes are fine for run-backed
	// jobs but still rejected inline.
	if code := postJSON(t, ts.URL+"/v1/jobs", []byte(`{"run_id": "run-doesnotexist", "options": {}}`), nil); code != http.StatusNotFound {
		t.Fatalf("job on unknown run: %d, want 404", code)
	}
	if code := postJSON(t, ts.URL+"/v1/jobs", []byte(`{"run_id": "run-x", "clients": [{"x": [[1]], "y": [0]}], "test": {"x": [[1]], "y": [0]}, "options": {"num_classes": 2}}`), nil); code != http.StatusBadRequest {
		t.Fatalf("run_id plus inline clients: %d, want 400", code)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/run-doesnotexist", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown run: %d, want 404", resp.StatusCode)
	}
}

// TestDaemonDeleteRunConflict pins the 409-while-referenced contract over
// HTTP: a run with an in-flight job refuses deletion, then deletes
// cleanly once the job finishes.
func TestDaemonDeleteRunConflict(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ts := testDaemon(t, service.Config{
		Workers: 1,
		ValueRun: func(ctx context.Context, tr *comfedsv.TrainedRun, opts comfedsv.Options) (*comfedsv.Report, comfedsv.EvalStats, error) {
			select {
			case <-ctx.Done():
				return nil, comfedsv.EvalStats{}, ctx.Err()
			case <-release:
				return &comfedsv.Report{FedSV: []float64{1}, ComFedSV: []float64{1}}, comfedsv.EvalStats{Hits: 1}, nil
			}
		},
	})
	payload, _, _, _ := tinyJob(33)
	var created struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, ts.URL+"/v1/runs", payload, &created); code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs: %d", code)
	}
	waitRunReady(t, ts.URL, created.ID)

	jobBody := []byte(fmt.Sprintf(`{"run_id": %q, "options": {"seed": 33}}`, created.ID))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(jobBody))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	del := func() int {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+created.ID, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del(); code != http.StatusConflict {
		t.Fatalf("DELETE while job in flight: %d, want 409", code)
	}

	release <- struct{}{}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st service.Status
		getJSON(t, ts.URL+"/v1/jobs/"+sub.ID, &st)
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code := del(); code != http.StatusNoContent {
		t.Fatalf("DELETE after jobs drained: %d, want 204", code)
	}
	if code := getJSON(t, ts.URL+"/v1/runs/"+created.ID, nil); code != http.StatusNotFound {
		t.Fatalf("deleted run status: %d, want 404", code)
	}
}

// TestDaemonShardsByteIdenticalEndToEnd is the HTTP-layer determinism
// acceptance test of the stage-graph scheduler: the same Monte-Carlo
// submission with shards 1, 2, and 8 must produce byte-identical report
// bodies, and the status must surface the per-shard accounting.
func TestDaemonShardsByteIdenticalEndToEnd(t *testing.T) {
	ts := testDaemon(t, service.Config{Workers: 3})

	submit := func(shards int) (string, []byte) {
		_, clients, test, _ := tinyJob(37)
		body := map[string]any{
			"test": map[string]any{"x": test.X, "y": test.Y},
			"options": map[string]any{
				"num_classes":         2,
				"rounds":              4,
				"clients_per_round":   2,
				"seed":                37,
				"monte_carlo_samples": 30,
				"shards":              shards,
				"parallelism":         2,
			},
		}
		var cs []map[string]any
		for _, c := range clients {
			cs = append(cs, map[string]any{"x": c.X, "y": c.Y})
		}
		body["clients"] = cs
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		id := submitAndWait(t, ts.URL, raw)
		code, rep := getBody(t, ts.URL+"/v1/jobs/"+id+"/report")
		if code != http.StatusOK {
			t.Fatalf("GET report: %d", code)
		}
		return id, rep
	}

	id1, want := submit(1)
	for _, shards := range []int{2, 8} {
		id, got := submit(shards)
		if !bytes.Equal(want, got) {
			t.Fatalf("shards=%d report differs from shards=1:\n%s\nvs\n%s", shards, got, want)
		}
		var st service.Status
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET status: %d", code)
		}
		if st.Shards != shards || st.ShardsDone != shards {
			t.Fatalf("shards=%d status accounting %d/%d", shards, st.ShardsDone, st.Shards)
		}
	}
	var st service.Status
	getJSON(t, ts.URL+"/v1/jobs/"+id1, &st)
	if st.Shards != 1 {
		t.Fatalf("shards=1 job reports %d shards", st.Shards)
	}

	// The shards knob is validated like the other counters.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		bytes.NewBufferString(`{"clients": [{"x": [[1]], "y": [0]}], "test": {"x": [[1]], "y": [0]}, "options": {"num_classes": 2, "shards": -1}}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative shards: %d, want 400", resp.StatusCode)
	}
}

// TestDaemonDeleteJob pins the DELETE /v1/jobs/{id} surface: 409 while the
// job runs, 204 once terminal, 404 afterwards and for unknown jobs.
func TestDaemonDeleteJob(t *testing.T) {
	release := make(chan struct{})
	ts := testDaemon(t, service.Config{
		Workers: 1,
		Value: func(ctx context.Context, _ []comfedsv.Client, _ comfedsv.Client, _ comfedsv.Options) (*comfedsv.Report, error) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-release:
				return &comfedsv.Report{FedSV: []float64{1}, ComFedSV: []float64{1}}, nil
			}
		},
	})

	del := func(id string) int {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del("job-doesnotexist"); code != http.StatusNotFound {
		t.Fatalf("DELETE unknown job: %d, want 404", code)
	}

	payload, _, _, _ := tinyJob(39)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		var st service.Status
		getJSON(t, ts.URL+"/v1/jobs/"+sub.ID, &st)
		if st.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if code := del(sub.ID); code != http.StatusConflict {
		t.Fatalf("DELETE running job: %d, want 409", code)
	}
	close(release)
	deadline = time.Now().Add(10 * time.Second)
	for {
		var st service.Status
		getJSON(t, ts.URL+"/v1/jobs/"+sub.ID, &st)
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(time.Millisecond)
	}
	if code := del(sub.ID); code != http.StatusNoContent {
		t.Fatalf("DELETE terminal job: %d, want 204", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+sub.ID, nil); code != http.StatusNotFound {
		t.Fatalf("status after delete: %d, want 404", code)
	}
	if code := del(sub.ID); code != http.StatusNotFound {
		t.Fatalf("second DELETE: %d, want 404", code)
	}
}

// TestDaemonMetricsEndpoint checks /v1/metrics renders Prometheus text
// with the scheduler counters after a sharded job ran.
func TestDaemonMetricsEndpoint(t *testing.T) {
	ts := testDaemon(t, service.Config{Workers: 2, DefaultShards: 2})
	_, clients, test, _ := tinyJob(43)
	body := map[string]any{
		"test": map[string]any{"x": test.X, "y": test.Y},
		"options": map[string]any{
			"num_classes":         2,
			"rounds":              4,
			"clients_per_round":   2,
			"seed":                43,
			"monte_carlo_samples": 20,
		},
	}
	var cs []map[string]any
	for _, c := range clients {
		cs = append(cs, map[string]any{"x": c.X, "y": c.Y})
	}
	body["clients"] = cs
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	submitAndWait(t, ts.URL, raw)

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q, want text/plain exposition", ct)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`comfedsvd_jobs{state="done"} 1`,
		`comfedsvd_jobs{state="failed"} 0`,
		`comfedsvd_queue_depth 0`,
		`comfedsvd_tasks_executed_total{stage="prepare"} 1`,
		`comfedsvd_tasks_executed_total{stage="observe"} 2`,
		`comfedsvd_tasks_executed_total{stage="complete"} 1`,
		`comfedsvd_tasks_executed_total{stage="shapley"} 1`,
		`comfedsvd_shard_tasks_executed_total 2`,
		`comfedsvd_jobs_evicted_total 0`,
		"# TYPE comfedsvd_task_retries_total counter",
		`comfedsvd_jobs_recovered_total 0`,
		`comfedsvd_jobs_rejected_total 0`,
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestDaemonParallelismOption checks the parallelism knob end to end: an
// explicit "parallelism" field reaches the pipeline's Options, and an
// absent one picks up the daemon's configured default.
func TestDaemonParallelismOption(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	cfg := service.Config{
		Workers:            1,
		DefaultParallelism: 3,
		Value: func(ctx context.Context, clients []comfedsv.Client, test comfedsv.Client, opts comfedsv.Options) (*comfedsv.Report, error) {
			mu.Lock()
			seen = append(seen, opts.Parallelism)
			mu.Unlock()
			return &comfedsv.Report{FedSV: []float64{0}, ComFedSV: []float64{0}}, nil
		},
	}
	ts := testDaemon(t, cfg)

	explicit := `{"clients": [{"x": [[1]], "y": [0]}], "test": {"x": [[1]], "y": [0]}, "options": {"num_classes": 2, "parallelism": 2}}`
	submitAndWait(t, ts.URL, []byte(explicit))
	defaulted := `{"clients": [{"x": [[1]], "y": [0]}], "test": {"x": [[1]], "y": [0]}, "options": {"num_classes": 2}}`
	submitAndWait(t, ts.URL, []byte(defaulted))

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0] != 2 || seen[1] != 3 {
		t.Fatalf("pipeline saw parallelism %v, want [2 3]", seen)
	}
}
