package mc

import (
	"fmt"
	"testing"

	"comfedsv/internal/rng"
)

// synthEntries samples a density-fraction of a random rank-`rank` matrix,
// the observation pattern the completion solver sees in production.
func synthEntries(rows, cols, rank int, density float64, seed int64) []Entry {
	g := rng.New(seed)
	w := randomFactor(rows, rank, 1, g)
	h := randomFactor(cols, rank, 1, g)
	var out []Entry
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if g.Float64() < density {
				v := 0.0
				for k := 0; k < rank; k++ {
					v += w.Row(i)[k] * h.Row(j)[k]
				}
				out = append(out, Entry{Row: i, Col: j, Val: v})
			}
		}
	}
	return out
}

// BenchmarkComplete measures the ALS solver on a realistic utility-matrix
// shape (T=60 rounds × 400 prefix columns, rank 5) across worker counts.
// Run with -benchmem: the workers-1 case demonstrates the allocation-lean
// ridge path (the seed ran this fixture at ~131 ms/op and 751,971
// allocs/op; see CHANGES.md PR 2), the sweep demonstrates multicore
// scaling on machines with spare cores.
func BenchmarkComplete(b *testing.B) {
	rows, cols := 60, 400
	obs := synthEntries(rows, cols, 5, 0.15, 42)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			cfg := DefaultConfig(5)
			cfg.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Complete(obs, rows, cols, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRidgeUpdate isolates the per-row ridge sub-solve, the innermost
// kernel of every ALS sweep. The seed allocated features/targets/Gram/
// Cholesky storage on every call; with a warm scratch it allocates nothing.
func BenchmarkRidgeUpdate(b *testing.B) {
	g := rng.New(7)
	opposite := randomFactor(400, 5, 1, g)
	entries := make([]Entry, 60)
	for i := range entries {
		entries[i] = Entry{Row: 0, Col: i * 6, Val: g.Normal(0, 1)}
	}
	dst := make([]float64, 5)
	sc := newALSScratch(5)
	// Warm the scratch so the steady-state zero-allocation path is measured.
	if err := ridgeUpdate(entries, opposite, dst, 0.01, true, sc); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ridgeUpdate(entries, opposite, dst, 0.01, true, sc); err != nil {
			b.Fatal(err)
		}
	}
}
