// Package mc implements factorization-based low-rank matrix completion:
//
//	minimize_{W,H}  Σ_{(t,S) observed} (U_{t,S} − w_tᵀ h_S)² + λ(‖W‖²_F + ‖H‖²_F)
//
// the problem (9)/(13) the paper solves to complete the utility matrix. The
// paper uses LIBPMF; this package provides an equivalent solver from
// scratch with two backends: alternating least squares (the default —
// deterministic, each factor row is a small ridge regression solved by
// Cholesky) and stochastic gradient descent (LIBPMF-style updates).
package mc

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"comfedsv/internal/mat"
	"comfedsv/internal/rng"
)

// Entry is one observed matrix cell.
type Entry struct {
	Row, Col int
	Val      float64
}

// Solver selects the optimization backend.
type Solver int

const (
	// ALS alternates exact ridge solves for the rows of W and H.
	ALS Solver = iota
	// SGD performs stochastic gradient passes over the observations.
	SGD
)

// String returns the solver name.
func (s Solver) String() string {
	switch s {
	case ALS:
		return "als"
	case SGD:
		return "sgd"
	default:
		return fmt.Sprintf("solver(%d)", int(s))
	}
}

// Config controls a completion run.
type Config struct {
	// Rank is the factorization rank r (the paper sweeps r in Fig. 3 and
	// bounds the useful range via Propositions 1–2).
	Rank int
	// Lambda is the L2 regularization weight λ.
	Lambda float64
	// MaxIter bounds the number of outer iterations (ALS sweeps or SGD epochs).
	MaxIter int
	// Tol stops early when the relative objective decrease falls below it.
	Tol float64
	// Solver selects ALS (default) or SGD.
	Solver Solver
	// WeightedReg scales the regularization of each factor row by its
	// number of observations (the ALS-WR scheme of Zhou et al.). This keeps
	// the effective shrinkage uniform when the observation pattern is very
	// skewed — exactly the situation of the utility matrix, where the
	// Everyone-Being-Heard round observes every column once but later
	// rounds observe only a few columns.
	WeightedReg bool
	// LearningRate is the SGD step size (ignored by ALS).
	LearningRate float64
	// Restarts is the number of random initializations tried; the fit with
	// the lowest objective wins. ALS is non-convex and an occasional
	// initialization lands in a poor local minimum; a handful of restarts
	// makes completion robust. Values below 1 mean 1.
	Restarts int
	// Seed drives factor initialization (and SGD order).
	Seed int64
	// Workers bounds the number of goroutines the solver may use; 0 means
	// GOMAXPROCS. ALS parallelizes across restarts and across factor rows
	// (row updates against a fixed opposite factor are independent and
	// write disjoint slices), so the result is bit-identical for every
	// worker count. SGD is inherently sequential and ignores Workers.
	Workers int
	// Warm, if non-nil, warm-starts the first attempt from prior factors —
	// typically the previous wave's fit in an adaptive valuation, or a
	// previous job's fit over the same run. The warm factors are copied,
	// never mutated; rows beyond the warm factors' shape (a problem that
	// grew new rows or columns) are drawn from the seeded RNG exactly as a
	// cold start draws them, and a rank mismatch falls back to a fully cold
	// first attempt. Remaining restarts stay cold, so a poor warm basin can
	// still lose to a fresh initialization. Warm-starting is deterministic:
	// the result is a pure function of the observations, the config, and
	// the warm factors.
	Warm *Warm
}

// Warm holds initial factors for a warm-started completion solve.
type Warm struct {
	// W is rows×rank, H is cols×rank — the shapes of a prior Result's
	// factors for the same (or a smaller) problem at the same rank.
	W, H *mat.Dense
}

// DefaultConfig returns the configuration used across the experiments.
func DefaultConfig(rank int) Config {
	return Config{
		Rank:         rank,
		Lambda:       0.01,
		MaxIter:      60,
		Tol:          1e-7,
		Solver:       ALS,
		WeightedReg:  true,
		LearningRate: 0.02,
		Restarts:     3,
		Seed:         7,
	}
}

// Result holds the fitted factors.
type Result struct {
	// W is rows×rank, H is cols×rank; the completed matrix is W Hᵀ.
	W, H *mat.Dense
	// Objective is the final value of the regularized objective.
	Objective float64
	// Iterations is the number of outer iterations performed.
	Iterations int
	// TrainRMSE is the root-mean-squared error on the observed entries.
	TrainRMSE float64
}

// Predict returns the completed value of cell (row, col).
func (r *Result) Predict(row, col int) float64 {
	return mat.Dot(r.W.Row(row), r.H.Row(col))
}

// Completed materializes the full completed matrix W Hᵀ.
func (r *Result) Completed() *mat.Dense {
	return mat.MulT(r.W, r.H)
}

// Complete fits a rank-cfg.Rank factorization of a rows×cols matrix from
// the observed entries, keeping the best of cfg.Restarts random
// initializations. Restarts run concurrently up to cfg.Workers; the winner
// (lowest objective, earliest attempt on ties) is the same one the serial
// loop would pick, so results do not depend on the worker count.
func Complete(obs []Entry, rows, cols int, cfg Config) (*Result, error) {
	if err := validate(obs, rows, cols, cfg); err != nil {
		return nil, err
	}
	restarts := cfg.Restarts
	if restarts < 1 {
		restarts = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	conc := restarts
	if conc > workers {
		conc = workers
	}
	// Divide the worker budget across concurrent restarts so total
	// goroutine pressure stays at cfg.Workers.
	inner := workers / conc
	if inner < 1 {
		inner = 1
	}

	// Only the first attempt is warm-started; later restarts stay cold so
	// the restart mechanism keeps its job of escaping a poor basin.
	warmFor := func(attempt int) *Warm {
		if attempt == 0 {
			return cfg.Warm
		}
		return nil
	}
	results := make([]*Result, restarts)
	errs := make([]error, restarts)
	if conc <= 1 {
		for attempt := 0; attempt < restarts; attempt++ {
			results[attempt], errs[attempt] = completeOnce(obs, rows, cols, cfg, cfg.Seed+int64(attempt), workers, warmFor(attempt))
		}
	} else {
		sem := make(chan struct{}, conc)
		var wg sync.WaitGroup
		for attempt := 0; attempt < restarts; attempt++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(attempt int) {
				defer wg.Done()
				defer func() { <-sem }()
				results[attempt], errs[attempt] = completeOnce(obs, rows, cols, cfg, cfg.Seed+int64(attempt), inner, warmFor(attempt))
			}(attempt)
		}
		wg.Wait()
	}

	var best *Result
	for attempt := 0; attempt < restarts; attempt++ {
		if errs[attempt] != nil {
			return nil, errs[attempt]
		}
		if best == nil || results[attempt].Objective < best.Objective {
			best = results[attempt]
		}
	}
	return best, nil
}

func completeOnce(obs []Entry, rows, cols int, cfg Config, seed int64, workers int, warm *Warm) (*Result, error) {
	g := rng.New(seed)
	scale := 1 / math.Sqrt(float64(cfg.Rank))
	if warm != nil && (warm.W == nil || warm.H == nil || warm.W.Cols() != cfg.Rank || warm.H.Cols() != cfg.Rank) {
		warm = nil // rank mismatch: the warm factors cannot seed this problem
	}
	var w, h *mat.Dense
	if warm != nil {
		w = warmFactor(rows, cfg.Rank, scale, g, warm.W)
		h = warmFactor(cols, cfg.Rank, scale, g, warm.H)
	} else {
		w = randomFactor(rows, cfg.Rank, scale, g)
		h = randomFactor(cols, cfg.Rank, scale, g)
	}

	switch cfg.Solver {
	case ALS:
		return completeALS(obs, w, h, cfg, workers)
	case SGD:
		return completeSGD(obs, w, h, cfg, g)
	default:
		return nil, fmt.Errorf("mc: unknown solver %v", cfg.Solver)
	}
}

func validate(obs []Entry, rows, cols int, cfg Config) error {
	if rows <= 0 || cols <= 0 {
		return fmt.Errorf("mc: non-positive shape %dx%d", rows, cols)
	}
	if cfg.Rank <= 0 {
		return fmt.Errorf("mc: rank must be positive, got %d", cfg.Rank)
	}
	if cfg.Lambda <= 0 {
		return fmt.Errorf("mc: lambda must be positive for a well-posed problem, got %v", cfg.Lambda)
	}
	if cfg.MaxIter <= 0 {
		return fmt.Errorf("mc: max iterations must be positive, got %d", cfg.MaxIter)
	}
	if len(obs) == 0 {
		return errors.New("mc: no observations")
	}
	for _, e := range obs {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return fmt.Errorf("mc: observation (%d,%d) outside %dx%d", e.Row, e.Col, rows, cols)
		}
	}
	return nil
}

func randomFactor(n, r int, scale float64, g *rng.RNG) *mat.Dense {
	m := mat.NewDense(n, r)
	d := m.Data()
	for i := range d {
		d[i] = g.Normal(0, scale)
	}
	return m
}

// warmFactor builds an n×r factor seeded from prior factors: overlapping
// rows are copied (the warm matrix is never aliased — ALS mutates its
// factors in place), rows beyond the warm shape are drawn from g like a
// cold start's.
func warmFactor(n, r int, scale float64, g *rng.RNG, warm *mat.Dense) *mat.Dense {
	m := mat.NewDense(n, r)
	copyRows := warm.Rows()
	if copyRows > n {
		copyRows = n
	}
	copy(m.Data()[:copyRows*r], warm.Data()[:copyRows*r])
	d := m.Data()[copyRows*r:]
	for i := range d {
		d[i] = g.Normal(0, scale)
	}
	return m
}

// objective returns the full regularized objective and the observed RMSE.
func objective(obs []Entry, w, h *mat.Dense, lambda float64) (obj, rmse float64) {
	var sse float64
	for _, e := range obs {
		d := e.Val - mat.Dot(w.Row(e.Row), h.Row(e.Col))
		sse += d * d
	}
	fw := w.FrobeniusNorm()
	fh := h.FrobeniusNorm()
	return sse + lambda*(fw*fw+fh*fh), math.Sqrt(sse / float64(len(obs)))
}

// alsScratch is the per-worker working storage of the ALS inner loop: the
// ridge system's feature/target views and the mat.RidgeScratch buffers. One
// scratch per worker removes every per-row allocation from the sweep.
type alsScratch struct {
	features [][]float64
	targets  []float64
	ridge    *mat.RidgeScratch
}

func newALSScratch(rank int) *alsScratch {
	return &alsScratch{ridge: mat.NewRidgeScratch(rank)}
}

func completeALS(obs []Entry, w, h *mat.Dense, cfg Config, workers int) (*Result, error) {
	rows, _ := w.Dims()
	cols, _ := h.Dims()
	byRow := make([][]Entry, rows)
	byCol := make([][]Entry, cols)
	for _, e := range obs {
		byRow[e.Row] = append(byRow[e.Row], e)
		byCol[e.Col] = append(byCol[e.Col], e)
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	scratches := make([]*alsScratch, workers)
	for i := range scratches {
		scratches[i] = newALSScratch(cfg.Rank)
	}

	prev := math.Inf(1)
	iters := 0
	for it := 0; it < cfg.MaxIter; it++ {
		iters = it + 1
		// Update each row of W against fixed H, then each row of H against
		// fixed W. Within one half-sweep every row update reads only the
		// fixed opposite factor and writes its own disjoint row slice, so
		// the rows can be solved on any worker in any order without
		// changing a single bit of the result.
		if err := updateFactor(byRow, h, w, cfg, true, workers, scratches); err != nil {
			return nil, err
		}
		if err := updateFactor(byCol, w, h, cfg, false, workers, scratches); err != nil {
			return nil, err
		}
		obj, _ := objective(obs, w, h, cfg.Lambda)
		if !math.IsInf(prev, 1) && prev-obj <= cfg.Tol*math.Max(1, math.Abs(prev)) {
			prev = obj
			break
		}
		prev = obj
	}
	obj, rmse := objective(obs, w, h, cfg.Lambda)
	return &Result{W: w, H: h, Objective: obj, Iterations: iters, TrainRMSE: rmse}, nil
}

// updateFactor solves the ridge sub-problem for every row of target against
// the fixed opposite factor, fanning the rows out over workers goroutines.
// groups[i] holds the observations of target row i.
func updateFactor(groups [][]Entry, opposite, target *mat.Dense, cfg Config, rowSide bool, workers int, scratches []*alsScratch) error {
	n := len(groups)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sc := scratches[0]
		for i := 0; i < n; i++ {
			if err := ridgeUpdate(groups[i], opposite, target.Row(i), effLambda(cfg, len(groups[i])), rowSide, sc); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			sc := scratches[wk]
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ridgeUpdate(groups[i], opposite, target.Row(i), effLambda(cfg, len(groups[i])), rowSide, sc); err != nil {
					errs[wk] = err
					return
				}
			}
		}(wk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// effLambda returns the regularization weight for a factor row with nobs
// observations: constant under plain ALS, nobs-proportional under ALS-WR.
func effLambda(cfg Config, nobs int) float64 {
	if cfg.WeightedReg && nobs > 0 {
		return cfg.Lambda * float64(nobs)
	}
	return cfg.Lambda
}

// ridgeUpdate solves the ridge sub-problem for one factor row in place,
// reusing the caller's scratch so the hot loop does not allocate.
// If rowSide is true, entries index the opposite factor by Col, else by Row.
// Rows with no observations are zeroed (the regularizer's minimizer).
func ridgeUpdate(entries []Entry, opposite *mat.Dense, dst []float64, lambda float64, rowSide bool, sc *alsScratch) error {
	if len(entries) == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return nil
	}
	if cap(sc.features) < len(entries) {
		sc.features = make([][]float64, len(entries))
		sc.targets = make([]float64, len(entries))
	}
	features := sc.features[:len(entries)]
	targets := sc.targets[:len(entries)]
	for i, e := range entries {
		if rowSide {
			features[i] = opposite.Row(e.Col)
		} else {
			features[i] = opposite.Row(e.Row)
		}
		targets[i] = e.Val
	}
	if err := mat.RidgeSolveInto(features, targets, lambda, dst, sc.ridge); err != nil {
		return fmt.Errorf("mc: ridge sub-problem: %w", err)
	}
	return nil
}

func completeSGD(obs []Entry, w, h *mat.Dense, cfg Config, g *rng.RNG) (*Result, error) {
	order := make([]int, len(obs))
	for i := range order {
		order[i] = i
	}
	// Per-entry regularization: λ scaled so the implicit objective matches
	// the ALS objective in expectation over an epoch.
	lam := cfg.Lambda / float64(len(obs))
	prev := math.Inf(1)
	iters := 0
	r := cfg.Rank
	for epoch := 0; epoch < cfg.MaxIter; epoch++ {
		iters = epoch + 1
		lr := cfg.LearningRate / (1 + 0.01*float64(epoch))
		g.Shuffle(order)
		for _, idx := range order {
			e := obs[idx]
			wr := w.Row(e.Row)
			hr := h.Row(e.Col)
			err := mat.Dot(wr, hr) - e.Val
			for k := 0; k < r; k++ {
				gw := err*hr[k] + lam*wr[k]
				gh := err*wr[k] + lam*hr[k]
				wr[k] -= lr * gw
				hr[k] -= lr * gh
			}
		}
		obj, _ := objective(obs, w, h, cfg.Lambda)
		if prev-obj <= cfg.Tol*math.Max(1, math.Abs(prev)) && epoch > 5 {
			prev = obj
			break
		}
		prev = obj
	}
	obj, rmse := objective(obs, w, h, cfg.Lambda)
	return &Result{W: w, H: h, Objective: obj, Iterations: iters, TrainRMSE: rmse}, nil
}

// RelativeError returns ‖U − WHᵀ‖_F / ‖U‖_F against a fully known matrix u
// (the quantity plotted in Fig. 3).
func RelativeError(u *mat.Dense, res *Result, colOfMask func(col int) (int, bool)) float64 {
	rows, cols := u.Dims()
	var num, den float64
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := u.At(i, j)
			den += v * v
			var pred float64
			if fc, ok := colOfMask(j); ok {
				pred = res.Predict(i, fc)
			}
			d := v - pred
			num += d * d
		}
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num) / math.Sqrt(den)
}
