package mc

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"comfedsv/internal/mat"
	"comfedsv/internal/rng"
)

// lowRankTruth builds an exactly rank-r matrix W Hᵀ.
func lowRankTruth(rows, cols, rank int, seed int64) *mat.Dense {
	g := rng.New(seed)
	w := mat.NewDense(rows, rank)
	h := mat.NewDense(cols, rank)
	for _, m := range []*mat.Dense{w, h} {
		d := m.Data()
		for i := range d {
			d[i] = g.Normal(0, 1)
		}
	}
	return mat.MulT(w, h)
}

func sample(truth *mat.Dense, density float64, seed int64) []Entry {
	g := rng.New(seed)
	rows, cols := truth.Dims()
	var obs []Entry
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if g.Float64() < density {
				obs = append(obs, Entry{Row: i, Col: j, Val: truth.At(i, j)})
			}
		}
	}
	return obs
}

func relErr(truth *mat.Dense, res *Result) float64 {
	rows, cols := truth.Dims()
	var num, den float64
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			d := truth.At(i, j) - res.Predict(i, j)
			num += d * d
			den += truth.At(i, j) * truth.At(i, j)
		}
	}
	return math.Sqrt(num / den)
}

func TestALSRecoversLowRank(t *testing.T) {
	truth := lowRankTruth(30, 80, 3, 1)
	obs := sample(truth, 0.4, 2)
	cfg := DefaultConfig(3)
	cfg.WeightedReg = false
	cfg.Lambda = 1e-3
	res, err := Complete(obs, 30, 80, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(truth, res); e > 0.05 {
		t.Fatalf("ALS relative error %v, want < 0.05", e)
	}
}

func TestSGDRecoversLowRank(t *testing.T) {
	truth := lowRankTruth(30, 60, 2, 3)
	obs := sample(truth, 0.5, 4)
	cfg := DefaultConfig(2)
	cfg.Solver = SGD
	cfg.MaxIter = 400
	cfg.LearningRate = 0.05
	cfg.Lambda = 1e-3
	res, err := Complete(obs, 30, 60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(truth, res); e > 0.15 {
		t.Fatalf("SGD relative error %v, want < 0.15", e)
	}
}

func TestALSWeightedRegRecovers(t *testing.T) {
	truth := lowRankTruth(20, 50, 2, 5)
	obs := sample(truth, 0.5, 6)
	cfg := DefaultConfig(2) // WeightedReg is the default
	res, err := Complete(obs, 20, 50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(truth, res); e > 0.1 {
		t.Fatalf("ALS-WR relative error %v, want < 0.1", e)
	}
}

func TestTrainRMSEDecreasesWithRank(t *testing.T) {
	// Fitting with the true rank must beat rank 1 on the observed entries.
	truth := lowRankTruth(20, 40, 4, 7)
	obs := sample(truth, 0.6, 8)
	get := func(rank int) float64 {
		cfg := DefaultConfig(rank)
		cfg.Lambda = 1e-4
		cfg.WeightedReg = false
		res, err := Complete(obs, 20, 40, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.TrainRMSE
	}
	if r1, r4 := get(1), get(4); r4 >= r1 {
		t.Fatalf("rank-4 RMSE %v should beat rank-1 %v on rank-4 truth", r4, r1)
	}
}

func TestObjectiveMonotone(t *testing.T) {
	// The final objective with more iterations never exceeds fewer.
	truth := lowRankTruth(15, 30, 2, 9)
	obs := sample(truth, 0.5, 10)
	run := func(iters int) float64 {
		cfg := DefaultConfig(2)
		cfg.MaxIter = iters
		cfg.Tol = 0 // force exactly iters sweeps
		res, err := Complete(obs, 15, 30, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Objective
	}
	if o5, o20 := run(5), run(20); o20 > o5+1e-9 {
		t.Fatalf("objective increased with iterations: %v → %v", o5, o20)
	}
}

func TestUnobservedRowZeroed(t *testing.T) {
	// A row with no observations must predict 0 everywhere (plain ALS).
	obs := []Entry{{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 2}}
	cfg := DefaultConfig(2)
	res, err := Complete(obs, 3, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if p := res.Predict(2, j); p != 0 {
			t.Fatalf("unobserved row predicted %v, want 0", p)
		}
	}
}

func TestValidation(t *testing.T) {
	obs := []Entry{{Row: 0, Col: 0, Val: 1}}
	cases := []struct {
		name string
		obs  []Entry
		rows int
		cols int
		mut  func(*Config)
	}{
		{"no observations", nil, 2, 2, nil},
		{"zero rank", obs, 2, 2, func(c *Config) { c.Rank = 0 }},
		{"zero lambda", obs, 2, 2, func(c *Config) { c.Lambda = 0 }},
		{"zero iters", obs, 2, 2, func(c *Config) { c.MaxIter = 0 }},
		{"bad shape", obs, 0, 2, nil},
		{"out of range", []Entry{{Row: 5, Col: 0, Val: 1}}, 2, 2, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(2)
			if tc.mut != nil {
				tc.mut(&cfg)
			}
			if _, err := Complete(tc.obs, tc.rows, tc.cols, cfg); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestUnknownSolverRejected(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Solver = Solver(99)
	if _, err := Complete([]Entry{{Row: 0, Col: 0, Val: 1}}, 1, 1, cfg); err == nil {
		t.Fatal("expected unknown-solver error")
	}
}

func TestSolverString(t *testing.T) {
	if ALS.String() != "als" || SGD.String() != "sgd" {
		t.Fatal("solver names wrong")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	truth := lowRankTruth(10, 20, 2, 11)
	obs := sample(truth, 0.5, 12)
	cfg := DefaultConfig(2)
	a, err := Complete(obs, 10, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Complete(obs, 10, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(a.W, b.W, 0) || !mat.Equal(a.H, b.H, 0) {
		t.Fatal("completion must be deterministic in the seed")
	}
}

func TestCompletedMatchesPredict(t *testing.T) {
	truth := lowRankTruth(8, 9, 2, 13)
	obs := sample(truth, 0.7, 14)
	res, err := Complete(obs, 8, 9, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Completed()
	for i := 0; i < 8; i++ {
		for j := 0; j < 9; j++ {
			if math.Abs(c.At(i, j)-res.Predict(i, j)) > 1e-12 {
				t.Fatal("Completed() and Predict() disagree")
			}
		}
	}
}

func TestRecoveryProperty(t *testing.T) {
	// Property: for random rank-2 matrices with 70% density, ALS achieves
	// substantial recovery. The bound is loose because ALS is non-convex
	// and an occasional seed lands in a worse local minimum.
	f := func(seed int64) bool {
		truth := lowRankTruth(12, 24, 2, seed)
		obs := sample(truth, 0.7, seed+1)
		if len(obs) < 100 {
			return true // too few observations sampled; skip
		}
		cfg := DefaultConfig(2)
		cfg.Lambda = 1e-3
		cfg.WeightedReg = false
		res, err := Complete(obs, 12, 24, cfg)
		if err != nil {
			return false
		}
		return relErr(truth, res) < 0.5
	}
	// Pin the generator: with time-based seeds the loose bound still
	// fails for the occasional unlucky input, making CI flaky.
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeErrorHelper(t *testing.T) {
	truth := mat.NewDenseData(1, 2, []float64{3, 4})
	res := &Result{W: mat.NewDenseData(1, 1, []float64{1}), H: mat.NewDenseData(1, 1, []float64{3})}
	// Column 0 maps to factor column 0; column 1 unmapped (predicts 0).
	got := RelativeError(truth, res, func(col int) (int, bool) {
		if col == 0 {
			return 0, true
		}
		return 0, false
	})
	// Error: (3-3)² + (4-0)² = 16; norm² = 25 → 4/5.
	if math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("RelativeError = %v, want 0.8", got)
	}
}

// TestCompleteDeterministicAcrossWorkers pins the parallel-ALS contract:
// every worker count produces the bit-identical factorization, because row
// updates against a fixed opposite factor are independent and the restart
// winner is chosen in attempt order.
func TestCompleteDeterministicAcrossWorkers(t *testing.T) {
	truth := lowRankTruth(12, 25, 3, 21)
	obs := sample(truth, 0.4, 22)
	cfg := DefaultConfig(3)

	cfg.Workers = 1
	base, err := Complete(obs, 12, 25, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7, runtime.GOMAXPROCS(0)} {
		cfg.Workers = workers
		got, err := Complete(obs, 12, 25, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !mat.Equal(base.W, got.W, 0) || !mat.Equal(base.H, got.H, 0) {
			t.Fatalf("workers=%d: factors differ from workers=1", workers)
		}
		if base.Objective != got.Objective || base.Iterations != got.Iterations || base.TrainRMSE != got.TrainRMSE {
			t.Fatalf("workers=%d: result metadata differs: %+v vs %+v", workers, base, got)
		}
	}
}

// cloneDense copies a matrix so a test can later prove the original was
// not mutated.
func cloneDense(m *mat.Dense) *mat.Dense {
	rows, cols := m.Dims()
	out := mat.NewDense(rows, cols)
	copy(out.Data(), m.Data())
	return out
}

// TestWarmStartConvergesFaster is the warm-starting contract: re-solving
// the same (slightly grown) problem from a prior fit must reach the ALS
// early-stopping tolerance in strictly fewer sweeps than a cold solve, and
// the fit must be at least as good.
func TestWarmStartConvergesFaster(t *testing.T) {
	truth := lowRankTruth(30, 80, 3, 11)
	cfg := DefaultConfig(3)
	cfg.Restarts = 1
	// Room to converge before the iteration cap, so the iteration counts
	// reflect convergence speed rather than both hitting MaxIter.
	cfg.MaxIter = 500
	cfg.Tol = 1e-6

	cold, err := Complete(sample(truth, 0.3, 12), 30, 80, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// A denser observation of the same matrix — the adaptive pipeline's
	// next wave — warm-started from the first fit.
	obs2 := sample(truth, 0.45, 12)
	coldCfg := cfg
	cold2, err := Complete(obs2, 30, 80, coldCfg)
	if err != nil {
		t.Fatal(err)
	}
	warmCfg := cfg
	warmCfg.Warm = &Warm{W: cold.W, H: cold.H}
	warm2, err := Complete(obs2, 30, 80, warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm2.Iterations >= cold2.Iterations {
		t.Fatalf("warm start took %d iterations, cold took %d — warm must be strictly faster", warm2.Iterations, cold2.Iterations)
	}
	if warm2.Objective > cold2.Objective*1.05 {
		t.Fatalf("warm objective %v much worse than cold %v", warm2.Objective, cold2.Objective)
	}
}

// TestWarmStartDeterministicAcrossWorkers pins warm-started completion to
// the determinism invariant: same inputs, any worker count, identical bits.
func TestWarmStartDeterministicAcrossWorkers(t *testing.T) {
	truth := lowRankTruth(20, 50, 3, 21)
	obs := sample(truth, 0.4, 22)
	cfg := DefaultConfig(3)
	base, err := Complete(sample(truth, 0.25, 23), 20, 50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Warm = &Warm{W: base.W, H: base.H}

	var want *Result
	for _, workers := range []int{1, 2, 7} {
		c := cfg
		c.Workers = workers
		res, err := Complete(obs, 20, 50, c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = res
			continue
		}
		for i, v := range res.W.Data() {
			if v != want.W.Data()[i] {
				t.Fatalf("workers=%d: W[%d] = %v, want %v", workers, i, v, want.W.Data()[i])
			}
		}
		for i, v := range res.H.Data() {
			if v != want.H.Data()[i] {
				t.Fatalf("workers=%d: H[%d] = %v, want %v", workers, i, v, want.H.Data()[i])
			}
		}
	}
}

// TestWarmStartDoesNotMutateWarmFactors: ALS mutates its working factors in
// place, so the warm input must be copied, not aliased.
func TestWarmStartDoesNotMutateWarmFactors(t *testing.T) {
	truth := lowRankTruth(15, 40, 2, 31)
	base, err := Complete(sample(truth, 0.3, 32), 15, 40, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	wCopy, hCopy := cloneDense(base.W), cloneDense(base.H)
	cfg := DefaultConfig(2)
	cfg.Warm = &Warm{W: base.W, H: base.H}
	if _, err := Complete(sample(truth, 0.5, 33), 15, 40, cfg); err != nil {
		t.Fatal(err)
	}
	for i, v := range base.W.Data() {
		if v != wCopy.Data()[i] {
			t.Fatalf("warm W was mutated at %d", i)
		}
	}
	for i, v := range base.H.Data() {
		if v != hCopy.Data()[i] {
			t.Fatalf("warm H was mutated at %d", i)
		}
	}
}

// TestWarmStartGrownAndMismatchedShapes: a problem that grew rows/columns
// copies the overlap and draws the rest from the seed; a rank mismatch
// falls back to a fully cold (and therefore bit-identical-to-cold) solve.
func TestWarmStartGrownAndMismatchedShapes(t *testing.T) {
	truth := lowRankTruth(25, 60, 3, 41)
	obs := sample(truth, 0.4, 42)
	var smallObs []Entry
	for _, e := range sample(truth, 0.3, 43) {
		if e.Row < 20 && e.Col < 45 {
			smallObs = append(smallObs, e)
		}
	}
	small, err := Complete(smallObs, 20, 45, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}

	grown := DefaultConfig(3)
	grown.Warm = &Warm{W: small.W, H: small.H}
	res, err := Complete(obs, 25, 60, grown)
	if err != nil {
		t.Fatalf("grown-shape warm start: %v", err)
	}
	if res.W.Rows() != 25 || res.H.Rows() != 60 {
		t.Fatalf("grown-shape result has shape %dx-/%dx-", res.W.Rows(), res.H.Rows())
	}

	cold := DefaultConfig(3)
	want, err := Complete(obs, 25, 60, cold)
	if err != nil {
		t.Fatal(err)
	}
	wrongRank, err := Complete(sample(truth, 0.3, 44), 25, 60, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	mismatch := DefaultConfig(3)
	mismatch.Warm = &Warm{W: wrongRank.W, H: wrongRank.H}
	got, err := Complete(obs, 25, 60, mismatch)
	if err != nil {
		t.Fatal(err)
	}
	if got.Objective != want.Objective || got.Iterations != want.Iterations {
		t.Fatalf("rank-mismatched warm start diverged from cold solve: obj %v vs %v, iters %d vs %d",
			got.Objective, want.Objective, got.Iterations, want.Iterations)
	}
}
