package mc

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"comfedsv/internal/mat"
	"comfedsv/internal/rng"
)

// lowRankTruth builds an exactly rank-r matrix W Hᵀ.
func lowRankTruth(rows, cols, rank int, seed int64) *mat.Dense {
	g := rng.New(seed)
	w := mat.NewDense(rows, rank)
	h := mat.NewDense(cols, rank)
	for _, m := range []*mat.Dense{w, h} {
		d := m.Data()
		for i := range d {
			d[i] = g.Normal(0, 1)
		}
	}
	return mat.MulT(w, h)
}

func sample(truth *mat.Dense, density float64, seed int64) []Entry {
	g := rng.New(seed)
	rows, cols := truth.Dims()
	var obs []Entry
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if g.Float64() < density {
				obs = append(obs, Entry{Row: i, Col: j, Val: truth.At(i, j)})
			}
		}
	}
	return obs
}

func relErr(truth *mat.Dense, res *Result) float64 {
	rows, cols := truth.Dims()
	var num, den float64
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			d := truth.At(i, j) - res.Predict(i, j)
			num += d * d
			den += truth.At(i, j) * truth.At(i, j)
		}
	}
	return math.Sqrt(num / den)
}

func TestALSRecoversLowRank(t *testing.T) {
	truth := lowRankTruth(30, 80, 3, 1)
	obs := sample(truth, 0.4, 2)
	cfg := DefaultConfig(3)
	cfg.WeightedReg = false
	cfg.Lambda = 1e-3
	res, err := Complete(obs, 30, 80, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(truth, res); e > 0.05 {
		t.Fatalf("ALS relative error %v, want < 0.05", e)
	}
}

func TestSGDRecoversLowRank(t *testing.T) {
	truth := lowRankTruth(30, 60, 2, 3)
	obs := sample(truth, 0.5, 4)
	cfg := DefaultConfig(2)
	cfg.Solver = SGD
	cfg.MaxIter = 400
	cfg.LearningRate = 0.05
	cfg.Lambda = 1e-3
	res, err := Complete(obs, 30, 60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(truth, res); e > 0.15 {
		t.Fatalf("SGD relative error %v, want < 0.15", e)
	}
}

func TestALSWeightedRegRecovers(t *testing.T) {
	truth := lowRankTruth(20, 50, 2, 5)
	obs := sample(truth, 0.5, 6)
	cfg := DefaultConfig(2) // WeightedReg is the default
	res, err := Complete(obs, 20, 50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(truth, res); e > 0.1 {
		t.Fatalf("ALS-WR relative error %v, want < 0.1", e)
	}
}

func TestTrainRMSEDecreasesWithRank(t *testing.T) {
	// Fitting with the true rank must beat rank 1 on the observed entries.
	truth := lowRankTruth(20, 40, 4, 7)
	obs := sample(truth, 0.6, 8)
	get := func(rank int) float64 {
		cfg := DefaultConfig(rank)
		cfg.Lambda = 1e-4
		cfg.WeightedReg = false
		res, err := Complete(obs, 20, 40, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.TrainRMSE
	}
	if r1, r4 := get(1), get(4); r4 >= r1 {
		t.Fatalf("rank-4 RMSE %v should beat rank-1 %v on rank-4 truth", r4, r1)
	}
}

func TestObjectiveMonotone(t *testing.T) {
	// The final objective with more iterations never exceeds fewer.
	truth := lowRankTruth(15, 30, 2, 9)
	obs := sample(truth, 0.5, 10)
	run := func(iters int) float64 {
		cfg := DefaultConfig(2)
		cfg.MaxIter = iters
		cfg.Tol = 0 // force exactly iters sweeps
		res, err := Complete(obs, 15, 30, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Objective
	}
	if o5, o20 := run(5), run(20); o20 > o5+1e-9 {
		t.Fatalf("objective increased with iterations: %v → %v", o5, o20)
	}
}

func TestUnobservedRowZeroed(t *testing.T) {
	// A row with no observations must predict 0 everywhere (plain ALS).
	obs := []Entry{{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 2}}
	cfg := DefaultConfig(2)
	res, err := Complete(obs, 3, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if p := res.Predict(2, j); p != 0 {
			t.Fatalf("unobserved row predicted %v, want 0", p)
		}
	}
}

func TestValidation(t *testing.T) {
	obs := []Entry{{Row: 0, Col: 0, Val: 1}}
	cases := []struct {
		name string
		obs  []Entry
		rows int
		cols int
		mut  func(*Config)
	}{
		{"no observations", nil, 2, 2, nil},
		{"zero rank", obs, 2, 2, func(c *Config) { c.Rank = 0 }},
		{"zero lambda", obs, 2, 2, func(c *Config) { c.Lambda = 0 }},
		{"zero iters", obs, 2, 2, func(c *Config) { c.MaxIter = 0 }},
		{"bad shape", obs, 0, 2, nil},
		{"out of range", []Entry{{Row: 5, Col: 0, Val: 1}}, 2, 2, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(2)
			if tc.mut != nil {
				tc.mut(&cfg)
			}
			if _, err := Complete(tc.obs, tc.rows, tc.cols, cfg); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestUnknownSolverRejected(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Solver = Solver(99)
	if _, err := Complete([]Entry{{Row: 0, Col: 0, Val: 1}}, 1, 1, cfg); err == nil {
		t.Fatal("expected unknown-solver error")
	}
}

func TestSolverString(t *testing.T) {
	if ALS.String() != "als" || SGD.String() != "sgd" {
		t.Fatal("solver names wrong")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	truth := lowRankTruth(10, 20, 2, 11)
	obs := sample(truth, 0.5, 12)
	cfg := DefaultConfig(2)
	a, err := Complete(obs, 10, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Complete(obs, 10, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(a.W, b.W, 0) || !mat.Equal(a.H, b.H, 0) {
		t.Fatal("completion must be deterministic in the seed")
	}
}

func TestCompletedMatchesPredict(t *testing.T) {
	truth := lowRankTruth(8, 9, 2, 13)
	obs := sample(truth, 0.7, 14)
	res, err := Complete(obs, 8, 9, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Completed()
	for i := 0; i < 8; i++ {
		for j := 0; j < 9; j++ {
			if math.Abs(c.At(i, j)-res.Predict(i, j)) > 1e-12 {
				t.Fatal("Completed() and Predict() disagree")
			}
		}
	}
}

func TestRecoveryProperty(t *testing.T) {
	// Property: for random rank-2 matrices with 70% density, ALS achieves
	// substantial recovery. The bound is loose because ALS is non-convex
	// and an occasional seed lands in a worse local minimum.
	f := func(seed int64) bool {
		truth := lowRankTruth(12, 24, 2, seed)
		obs := sample(truth, 0.7, seed+1)
		if len(obs) < 100 {
			return true // too few observations sampled; skip
		}
		cfg := DefaultConfig(2)
		cfg.Lambda = 1e-3
		cfg.WeightedReg = false
		res, err := Complete(obs, 12, 24, cfg)
		if err != nil {
			return false
		}
		return relErr(truth, res) < 0.5
	}
	// Pin the generator: with time-based seeds the loose bound still
	// fails for the occasional unlucky input, making CI flaky.
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeErrorHelper(t *testing.T) {
	truth := mat.NewDenseData(1, 2, []float64{3, 4})
	res := &Result{W: mat.NewDenseData(1, 1, []float64{1}), H: mat.NewDenseData(1, 1, []float64{3})}
	// Column 0 maps to factor column 0; column 1 unmapped (predicts 0).
	got := RelativeError(truth, res, func(col int) (int, bool) {
		if col == 0 {
			return 0, true
		}
		return 0, false
	})
	// Error: (3-3)² + (4-0)² = 16; norm² = 25 → 4/5.
	if math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("RelativeError = %v, want 0.8", got)
	}
}

// TestCompleteDeterministicAcrossWorkers pins the parallel-ALS contract:
// every worker count produces the bit-identical factorization, because row
// updates against a fixed opposite factor are independent and the restart
// winner is chosen in attempt order.
func TestCompleteDeterministicAcrossWorkers(t *testing.T) {
	truth := lowRankTruth(12, 25, 3, 21)
	obs := sample(truth, 0.4, 22)
	cfg := DefaultConfig(3)

	cfg.Workers = 1
	base, err := Complete(obs, 12, 25, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7, runtime.GOMAXPROCS(0)} {
		cfg.Workers = workers
		got, err := Complete(obs, 12, 25, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !mat.Equal(base.W, got.W, 0) || !mat.Equal(base.H, got.H, 0) {
			t.Fatalf("workers=%d: factors differ from workers=1", workers)
		}
		if base.Objective != got.Objective || base.Iterations != got.Iterations || base.TrainRMSE != got.TrainRMSE {
			t.Fatalf("workers=%d: result metadata differs: %+v vs %+v", workers, base, got)
		}
	}
}
