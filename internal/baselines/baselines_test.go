package baselines

import (
	"math"
	"testing"

	"comfedsv/internal/dataset"
	"comfedsv/internal/fl"
	"comfedsv/internal/model"
	"comfedsv/internal/rng"
	"comfedsv/internal/shapley"
	"comfedsv/internal/utility"
)

func testEvaluator(t *testing.T, clients, rounds, perRound int, seed int64) *utility.Evaluator {
	t.Helper()
	full := dataset.GenerateImages(dataset.MNISTLikeConfig(seed), clients*25+50)
	g := rng.New(seed + 1)
	train, test := dataset.TrainTestSplit(full, float64(50)/float64(full.Len()), g)
	parts := dataset.PartitionIID(train, clients, g)
	m := model.NewMLP(full.Dim(), 6, full.NumClasses)
	cfg := fl.DefaultConfig(rounds, perRound)
	cfg.LearningRate = 0.1
	cfg.Seed = seed + 2
	run, err := fl.TrainRun(cfg, m, parts, test)
	if err != nil {
		t.Fatal(err)
	}
	return utility.NewEvaluator(run)
}

func TestLeaveOneOutLength(t *testing.T) {
	e := testEvaluator(t, 5, 4, 2, 301)
	v := LeaveOneOut(e)
	if len(v) != 5 {
		t.Fatalf("length %d, want 5", len(v))
	}
}

func TestLeaveOneOutUnselectedZero(t *testing.T) {
	// One round, no full first round: unselected clients score exactly 0.
	full := dataset.GenerateImages(dataset.MNISTLikeConfig(303), 175)
	g := rng.New(304)
	train, test := dataset.TrainTestSplit(full, 50.0/175, g)
	parts := dataset.PartitionIID(train, 5, g)
	m := model.NewMLP(full.Dim(), 6, full.NumClasses)
	cfg := fl.DefaultConfig(1, 2)
	cfg.ForceFullFirstRound = false
	run, err := fl.TrainRun(cfg, m, parts, test)
	if err != nil {
		t.Fatal(err)
	}
	e := utility.NewEvaluator(run)
	v := LeaveOneOut(e)
	sel := map[int]bool{}
	for _, c := range run.Rounds[0].Selected {
		sel[c] = true
	}
	for i, x := range v {
		if !sel[i] && x != 0 {
			t.Fatalf("unselected client %d scored %v", i, x)
		}
	}
}

func TestLeaveOneOutMatchesManual(t *testing.T) {
	e := testEvaluator(t, 4, 2, 2, 305)
	v := LeaveOneOut(e)
	n := 4
	want := make([]float64, n)
	for tr, rd := range e.Run().Rounds {
		if len(rd.Selected) < 2 {
			continue
		}
		full := utility.FromMembers(n, rd.Selected)
		uFull := e.Utility(tr, full)
		for _, i := range rd.Selected {
			rest := full.Clone()
			rest.Remove(i)
			want[i] += uFull - e.Utility(tr, rest)
		}
	}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Fatalf("LOO mismatch at %d: %v vs %v", i, v[i], want[i])
		}
	}
}

func TestTMCShapleyApproximatesFedSV(t *testing.T) {
	// With no truncation and many samples, per-round TMC equals the exact
	// per-round Shapley over the selected set — i.e. FedSV.
	e := testEvaluator(t, 5, 3, 3, 307)
	exact := shapley.FedSV(e)
	got, err := TMCShapley(e, TMCConfig{Samples: 500, TruncationTol: 0, Seed: 308})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(exact[i]-got[i]) > 0.05*(1+math.Abs(exact[i])) {
			t.Fatalf("TMC %v too far from FedSV %v at client %d", got, exact, i)
		}
	}
}

func TestTMCTruncationReducesCalls(t *testing.T) {
	e1 := testEvaluator(t, 5, 3, 3, 309)
	if _, err := TMCShapley(e1, TMCConfig{Samples: 50, TruncationTol: 0, Seed: 310}); err != nil {
		t.Fatal(err)
	}
	fullCalls := e1.Calls()
	e2 := testEvaluator(t, 5, 3, 3, 309)
	if _, err := TMCShapley(e2, TMCConfig{Samples: 50, TruncationTol: 10, Seed: 310}); err != nil {
		t.Fatal(err)
	}
	if e2.Calls() >= fullCalls {
		t.Fatalf("aggressive truncation should cut calls: %d vs %d", e2.Calls(), fullCalls)
	}
}

func TestTMCValidation(t *testing.T) {
	e := testEvaluator(t, 3, 2, 2, 311)
	if _, err := TMCShapley(e, TMCConfig{Samples: 0}); err == nil {
		t.Fatal("expected error for zero samples")
	}
}

func TestGroupTestingBalancePerRound(t *testing.T) {
	// The anchoring forces Σᵢ v(i) = Σ_t U_t(I_t).
	e := testEvaluator(t, 5, 3, 3, 313)
	v, err := GroupTesting(e, DefaultGroupTestingConfig(314))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, x := range v {
		sum += x
	}
	var want float64
	n := e.Run().NumClients()
	for tr, rd := range e.Run().Rounds {
		if len(rd.Selected) >= 2 {
			want += e.Utility(tr, utility.FromMembers(n, rd.Selected))
		}
	}
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("group-testing balance: Σv = %v, want %v", sum, want)
	}
}

func TestGroupTestingRoughlyTracksFedSV(t *testing.T) {
	// With many tests the estimator should correlate with exact FedSV.
	e := testEvaluator(t, 5, 3, 3, 315)
	exact := shapley.FedSV(e)
	got, err := GroupTesting(e, GroupTestingConfig{Tests: 3000, Seed: 316})
	if err != nil {
		t.Fatal(err)
	}
	// With this many tests the estimate should be numerically close for
	// every client (exact argmax can flip between near-tied clients, so we
	// check distance, not ranking).
	for i := range exact {
		if math.Abs(exact[i]-got[i]) > 0.05*(1+math.Abs(exact[i])) {
			t.Logf("exact: %v", exact)
			t.Logf("gt:    %v", got)
			t.Fatalf("group-testing estimate too far from FedSV at client %d", i)
		}
	}
}

func TestGroupTestingValidation(t *testing.T) {
	e := testEvaluator(t, 3, 2, 2, 317)
	if _, err := GroupTesting(e, GroupTestingConfig{Tests: 0}); err == nil {
		t.Fatal("expected error for zero tests")
	}
}

func TestComputeDispatch(t *testing.T) {
	e := testEvaluator(t, 4, 2, 2, 319)
	for _, m := range AllMethods {
		v, err := Compute(m, e, 320)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(v) != 4 {
			t.Fatalf("%v: length %d", m, len(v))
		}
	}
	if _, err := Compute(Method(9), e, 1); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestMethodString(t *testing.T) {
	if LOO.String() != "leave-one-out" || TMC.String() != "tmc-shapley" || GT.String() != "group-testing" {
		t.Fatal("method names wrong")
	}
}
