// Package baselines implements the alternative data-valuation methods the
// paper positions ComFedSV against (Section II): leave-one-out influence
// (Wang et al. 2019), truncated Monte-Carlo data Shapley (Ghorbani & Zou
// 2019) adapted to per-round federated utilities, and the group-testing
// Shapley estimator (Jia et al. 2019). They operate on the same utility
// evaluator as FedSV/ComFedSV, so all methods are compared on identical
// training traces.
package baselines

import (
	"fmt"
	"math"

	"comfedsv/internal/rng"
	"comfedsv/internal/utility"
)

// LeaveOneOut computes the per-round leave-one-out influence of every
// client, the federated adaptation of influence-based valuation: for each
// round, a client's score is U_t(I_t) − U_t(I_t \ {i}) if it was selected
// (0 otherwise), summed over rounds. It needs only K+1 utility calls per
// round, making it the cheapest baseline.
func LeaveOneOut(e *utility.Evaluator) []float64 {
	n := e.Run().NumClients()
	values := make([]float64, n)
	for t, rd := range e.Run().Rounds {
		sel := rd.Selected
		if len(sel) < 2 {
			continue // removing the only participant leaves no coalition
		}
		full := utility.FromMembers(n, sel)
		uFull := e.Utility(t, full)
		for _, i := range sel {
			rest := full.Clone()
			rest.Remove(i)
			values[i] += uFull - e.Utility(t, rest)
		}
	}
	return values
}

// TMCConfig parameterizes the truncated Monte-Carlo Shapley estimator.
type TMCConfig struct {
	// Samples is the number of permutations per round.
	Samples int
	// TruncationTol stops a permutation scan once the running coalition's
	// utility is within this tolerance of the full selection's utility
	// (Ghorbani & Zou's "truncation" device; remaining marginals ≈ 0).
	TruncationTol float64
	// Seed drives the permutation sampling.
	Seed int64
}

// DefaultTMCConfig returns the settings used in the baseline comparison.
func DefaultTMCConfig(seed int64) TMCConfig {
	return TMCConfig{Samples: 30, TruncationTol: 1e-3, Seed: seed}
}

// TMCShapley computes truncated Monte-Carlo Shapley values per round over
// the selected clients, summed over rounds — data Shapley (Ghorbani & Zou)
// transplanted onto the paper's per-round utility. Unselected clients get
// zero in a round, as in FedSV.
func TMCShapley(e *utility.Evaluator, cfg TMCConfig) ([]float64, error) {
	if cfg.Samples <= 0 {
		return nil, fmt.Errorf("baselines: non-positive sample count %d", cfg.Samples)
	}
	n := e.Run().NumClients()
	g := rng.New(cfg.Seed)
	values := make([]float64, n)
	for t, rd := range e.Run().Rounds {
		sel := rd.Selected
		k := len(sel)
		if k == 0 {
			continue
		}
		full := utility.FromMembers(n, sel)
		uFull := e.Utility(t, full)
		inv := 1 / float64(cfg.Samples)
		for s := 0; s < cfg.Samples; s++ {
			order := g.Perm(k)
			prefix := utility.NewSet(n)
			prev := 0.0
			for _, pos := range order {
				client := sel[pos]
				// Truncation: once we are close to the full-coalition
				// utility, later marginal contributions are ≈ 0.
				if math.Abs(uFull-prev) < cfg.TruncationTol {
					break
				}
				prefix.Add(client)
				cur := e.Utility(t, prefix)
				values[client] += inv * (cur - prev)
				prev = cur
			}
		}
	}
	return values, nil
}

// GroupTestingConfig parameterizes the group-testing estimator.
type GroupTestingConfig struct {
	// Tests is the number of random coalition probes per round.
	Tests int
	// Seed drives coalition sampling.
	Seed int64
}

// DefaultGroupTestingConfig returns the settings used in the baseline
// comparison.
func DefaultGroupTestingConfig(seed int64) GroupTestingConfig {
	return GroupTestingConfig{Tests: 60, Seed: seed}
}

// GroupTesting estimates per-round Shapley differences with the
// group-testing reduction of Jia et al.: random coalitions S are drawn
// with the harmonic size distribution, and the difference of Shapley
// values between clients i and j is estimated from utilities of coalitions
// separating them. We recover individual values by anchoring to the
// full-coalition balance constraint Σᵢ v(i) = U(I_t), per round, over the
// selected clients.
func GroupTesting(e *utility.Evaluator, cfg GroupTestingConfig) ([]float64, error) {
	if cfg.Tests <= 0 {
		return nil, fmt.Errorf("baselines: non-positive test count %d", cfg.Tests)
	}
	n := e.Run().NumClients()
	g := rng.New(cfg.Seed)
	values := make([]float64, n)

	for t, rd := range e.Run().Rounds {
		sel := rd.Selected
		k := len(sel)
		if k < 2 {
			continue
		}
		// Z = 2·Σ_{s=1}^{k-1} 1/s; coalition size s drawn ∝ (1/s + 1/(k−s)).
		weights := make([]float64, k-1)
		var z float64
		for s := 1; s < k; s++ {
			weights[s-1] = 1/float64(s) + 1/float64(k-s)
			z += weights[s-1]
		}
		// Accumulate the group-testing statistic per client pair via the
		// per-client form: β_i = mean over tests of z·u(S)·1{i∈S}.
		beta := make([]float64, k)
		for test := 0; test < cfg.Tests; test++ {
			// Sample coalition size.
			u := g.Float64() * z
			size := 1
			for s := 1; s < k; s++ {
				u -= weights[s-1]
				if u <= 0 {
					size = s
					break
				}
				size = s
			}
			members := g.SampleWithoutReplacement(k, size)
			coal := utility.NewSet(n)
			for _, pos := range members {
				coal.Add(sel[pos])
			}
			val := e.Utility(t, coal)
			for _, pos := range members {
				beta[pos] += z * val / float64(cfg.Tests)
			}
		}
		// β_i − β_j estimates v(i) − v(j); anchor with the balance
		// constraint Σ v = U_t(I_t).
		uFull := e.Utility(t, utility.FromMembers(n, sel))
		var betaSum float64
		for _, b := range beta {
			betaSum += b
		}
		for pos, client := range sel {
			values[client] += beta[pos] - betaSum/float64(k) + uFull/float64(k)
		}
	}
	return values, nil
}

// Method labels a baseline for reporting.
type Method int

const (
	// LOO is leave-one-out influence.
	LOO Method = iota
	// TMC is truncated Monte-Carlo data Shapley.
	TMC
	// GT is group-testing Shapley.
	GT
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case LOO:
		return "leave-one-out"
	case TMC:
		return "tmc-shapley"
	case GT:
		return "group-testing"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Compute runs the requested baseline with default settings.
func Compute(m Method, e *utility.Evaluator, seed int64) ([]float64, error) {
	switch m {
	case LOO:
		return LeaveOneOut(e), nil
	case TMC:
		return TMCShapley(e, DefaultTMCConfig(seed))
	case GT:
		return GroupTesting(e, DefaultGroupTestingConfig(seed))
	default:
		return nil, fmt.Errorf("baselines: unknown method %v", m)
	}
}

// AllMethods lists the baselines in reporting order.
var AllMethods = []Method{LOO, TMC, GT}
