package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	h := NewHistogram(0.01, 0.1, 1)
	h.Observe(0.005) // bucket 0 (<= 0.01)
	h.Observe(0.01)  // bucket 0 (boundary is inclusive)
	h.Observe(0.05)  // bucket 1
	h.Observe(0.5)   // bucket 2
	h.Observe(3)     // +Inf bucket
	h.Observe(1000)  // +Inf bucket
	s := h.Snapshot()
	want := []uint64{2, 1, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("Counts = %v, want %v", s.Counts, want)
		}
	}
	if s.Count != 6 {
		t.Fatalf("Count = %d, want 6", s.Count)
	}
	wantSum := 0.005 + 0.01 + 0.05 + 0.5 + 3 + 1000
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Fatalf("Sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram() // DefBuckets
	for i := 0; i < 500; i++ {
		h.Observe(float64(i) * 0.001)
	}
	s := h.Snapshot()
	cum := s.Cumulative()
	if len(cum) != len(s.Bounds)+1 {
		t.Fatalf("len(cum) = %d, want %d", len(cum), len(s.Bounds)+1)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative not monotone at %d: %v", i, cum)
		}
	}
	if cum[len(cum)-1] != s.Count {
		t.Fatalf("+Inf cumulative = %d, want Count = %d", cum[len(cum)-1], s.Count)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(0.001, 1)
	h.ObserveDuration(1500 * time.Microsecond)
	s := h.Snapshot()
	if s.Counts[1] != 1 {
		t.Fatalf("Counts = %v, want 1.5ms in bucket 1", s.Counts)
	}
	if math.Abs(s.Sum-0.0015) > 1e-12 {
		t.Fatalf("Sum = %v, want 0.0015", s.Sum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveDuration(time.Duration(w*per+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("Count = %d, want %d", s.Count, workers*per)
	}
	n := int64(workers * per)
	wantSum := float64(n*(n-1)/2) * 1e-6 // sum of 0..n-1 microseconds
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Fatalf("Sum = %v, want %v", s.Sum, wantSum)
	}
	cum := s.Cumulative()
	if cum[len(cum)-1] != s.Count {
		t.Fatalf("+Inf cumulative %d != Count %d", cum[len(cum)-1], s.Count)
	}
}

func TestNewHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on unsorted bounds")
		}
	}()
	NewHistogram(1, 0.5)
}

func TestWritePrometheus(t *testing.T) {
	h := NewHistogram(0.01, 0.1)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(7)
	var b strings.Builder
	h.Snapshot().WritePrometheus(&b, "x_seconds", `stage="observe"`)
	want := `x_seconds_bucket{stage="observe",le="0.01"} 1
x_seconds_bucket{stage="observe",le="0.1"} 2
x_seconds_bucket{stage="observe",le="+Inf"} 3
x_seconds_sum{stage="observe"} 7.055
x_seconds_count{stage="observe"} 3
`
	if b.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWritePrometheusUnlabelled(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(0.5)
	var b strings.Builder
	h.Snapshot().WritePrometheus(&b, "y_seconds", "")
	want := `y_seconds_bucket{le="1"} 1
y_seconds_bucket{le="+Inf"} 1
y_seconds_sum 0.5
y_seconds_count 1
`
	if b.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWritePrometheusFamily(t *testing.T) {
	a, b := NewHistogram(1), NewHistogram(1)
	a.Observe(0.1)
	b.Observe(2)
	var out strings.Builder
	WritePrometheusFamily(&out, "fam_seconds", "Help text.", "stage", map[string]HistogramSnapshot{
		"zeta":  b.Snapshot(),
		"alpha": a.Snapshot(),
	})
	got := out.String()
	if !strings.HasPrefix(got, "# HELP fam_seconds Help text.\n# TYPE fam_seconds histogram\n") {
		t.Fatalf("missing header:\n%s", got)
	}
	// Sorted label order: alpha before zeta.
	if strings.Index(got, `stage="alpha"`) > strings.Index(got, `stage="zeta"`) {
		t.Fatalf("labels not sorted:\n%s", got)
	}
}
