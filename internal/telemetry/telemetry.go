// Package telemetry provides the lock-cheap operational instrumentation
// primitives behind the comfedsvd daemon's /v1/metrics endpoint: atomic
// counters and fixed-bucket latency histograms, plus a renderer for the
// Prometheus text exposition format (version 0.0.4).
//
// The package is deliberately tiny and dependency-free. Observation is a
// single atomic add per bucket plus one for the sum — safe to call from
// every scheduler worker concurrently and cheap enough for hot paths — and
// bucket bounds are fixed at construction, so there is no resizing, no
// locking, and no allocation after New. It is distinct from
// internal/metrics, which computes the paper's statistical metrics
// (Spearman, Jaccard, ...), not operational telemetry.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must not be negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// DefBuckets is the default latency bucket layout: upper bounds in
// seconds spanning sub-millisecond stage tasks through multi-minute
// trainings. The terminal +Inf bucket is implicit.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Histogram is a fixed-bucket latency histogram. Observations are
// classified into the bucket with the smallest upper bound >= value;
// values above every bound land in the implicit +Inf bucket. All methods
// are safe for concurrent use; Observe is wait-free (two atomic adds).
type Histogram struct {
	bounds []float64      // ascending upper bounds, +Inf excluded
	counts []atomic.Int64 // len(bounds)+1; the last slot is the +Inf bucket
	sum    atomic.Int64   // total observed time in nanoseconds
}

// NewHistogram returns a histogram over the given ascending upper bounds
// (seconds). With no bounds it uses DefBuckets. It panics on unsorted or
// duplicate bounds — bucket layouts are compile-time decisions, and a
// malformed layout would silently corrupt every exposition.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not strictly ascending: %v", bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation in seconds.
func (h *Histogram) Observe(seconds float64) {
	h.observe(seconds, int64(seconds*1e9))
}

// ObserveDuration records one observation from a duration, keeping the
// sum exact in integer nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.observe(d.Seconds(), d.Nanoseconds())
}

func (h *Histogram) observe(seconds float64, nanos int64) {
	// Linear scan: bucket counts are small (tens), the slice is contiguous,
	// and a branchy binary search saves nothing at this size.
	i := 0
	for i < len(h.bounds) && seconds > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(nanos)
}

// Snapshot captures the histogram's current state. Counts are read bucket
// by bucket without a global lock, so a snapshot taken while observations
// race may be off by in-flight increments — but Count is derived from the
// bucket reads themselves, so the rendered +Inf cumulative bucket always
// equals the rendered count, which is the invariant the Prometheus
// exposition format requires.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction; safe to share
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		c := uint64(h.counts[i].Load())
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = float64(h.sum.Load()) / 1e9
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, safe to
// retain, serialize, and render after the source keeps moving.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds in seconds, ascending, +Inf
	// excluded.
	Bounds []float64 `json:"bounds"`
	// Counts are per-bucket (non-cumulative) observation counts;
	// len(Counts) == len(Bounds)+1, the final entry being the +Inf bucket.
	Counts []uint64 `json:"counts"`
	// Count is the total number of observations (the sum of Counts).
	Count uint64 `json:"count"`
	// Sum is the total observed time in seconds.
	Sum float64 `json:"sum"`
}

// Cumulative returns the running bucket totals in bound order followed by
// the +Inf total — the `le`-labelled series of the Prometheus exposition.
// The result is non-decreasing and its last element equals Count.
func (s HistogramSnapshot) Cumulative() []uint64 {
	out := make([]uint64, len(s.Counts))
	var acc uint64
	for i, c := range s.Counts {
		acc += c
		out[i] = acc
	}
	return out
}

// formatBound renders a bucket bound the way Prometheus clients do:
// shortest round-trip decimal ("0.005", "2.5", "10").
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// WritePrometheus renders the snapshot as one Prometheus histogram series:
// cumulative `name_bucket{...,le="..."}` lines ending with le="+Inf",
// then `name_sum` and `name_count`. labels is a preformatted label list
// without braces (e.g. `stage="observe"`), empty for an unlabelled series.
// The caller writes the `# HELP`/`# TYPE` header once per family.
func (s HistogramSnapshot) WritePrometheus(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := s.Cumulative()
	for i, bound := range s.Bounds {
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatBound(bound), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum[len(cum)-1])
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, strconv.FormatFloat(s.Sum, 'g', -1, 64))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
}

// WritePrometheusFamily renders a labelled histogram family: one
// `# HELP`/`# TYPE` header, then each snapshot's series under
// `labelName="key"`, in sorted key order so the exposition is
// deterministic.
func WritePrometheusFamily(w io.Writer, name, help, labelName string, series map[string]HistogramSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		series[k].WritePrometheus(w, name, fmt.Sprintf("%s=%q", labelName, k))
	}
}
