// Package rng provides deterministic, splittable random-number utilities.
// Every experiment in the repository threads an explicit *rng.RNG so that
// each figure is exactly reproducible from its seed, and sub-streams can be
// derived for clients / trials without correlation between them.
package rng

import (
	"math/rand"
)

// RNG wraps math/rand.Rand with domain helpers used across the repository.
type RNG struct {
	r *rand.Rand
}

// New returns a deterministic RNG seeded with seed.
func New(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream. The mixing constant is an
// arbitrary large odd number (splitmix64-style) so that nearby labels give
// uncorrelated streams.
func (g *RNG) Split(label int64) *RNG {
	seed := g.r.Int63() ^ (label * int64(0x9E3779B97F4A7C15&0x7FFFFFFFFFFFFFFF))
	return New(seed)
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Normal returns a Gaussian sample with the given mean and standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// NormalVec fills a fresh length-n vector with N(mean, stddev²) samples.
func (g *RNG) NormalVec(n int, mean, stddev float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = g.Normal(mean, stddev)
	}
	return v
}

// Perm returns a uniformly random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle shuffles the first n integers of idx in place using Fisher-Yates.
func (g *RNG) Shuffle(idx []int) {
	g.r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
}

// SampleWithoutReplacement returns k distinct values drawn uniformly from
// [0,n). It panics if k > n.
func (g *RNG) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic("rng: sample size exceeds population")
	}
	perm := g.r.Perm(n)
	out := make([]int, k)
	copy(out, perm[:k])
	return out
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }
