package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give the same stream")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds produced %d/100 equal values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	g := New(7)
	c1 := g.Split(1)
	// Re-derive from a fresh parent: identical labels after identical
	// parent state give identical children.
	g2 := New(7)
	c2 := g2.Split(1)
	for i := 0; i < 50; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatal("Split must be deterministic")
		}
	}
}

func TestSplitDifferentLabels(t *testing.T) {
	g := New(7)
	c1 := g.Split(1)
	c2 := g.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("sibling streams matched %d/100 times", same)
	}
}

func TestNormalMoments(t *testing.T) {
	g := New(3)
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := g.Normal(2, 3)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.1 {
		t.Fatalf("sample mean %v, want ≈2", mean)
	}
	if math.Abs(variance-9) > 0.5 {
		t.Fatalf("sample variance %v, want ≈9", variance)
	}
}

func TestNormalVecLength(t *testing.T) {
	g := New(4)
	v := g.NormalVec(17, 0, 1)
	if len(v) != 17 {
		t.Fatalf("NormalVec length %d, want 17", len(v))
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		g := New(seed)
		n := 1 + int(seed%20+20)%20
		p := g.Perm(n)
		seen := make([]bool, n)
		for _, x := range p {
			if x < 0 || x >= n || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	g := New(5)
	s := g.SampleWithoutReplacement(10, 4)
	if len(s) != 4 {
		t.Fatalf("sample size %d, want 4", len(s))
	}
	seen := map[int]bool{}
	for _, x := range s {
		if x < 0 || x >= 10 || seen[x] {
			t.Fatalf("invalid sample %v", s)
		}
		seen[x] = true
	}
}

func TestSampleWithoutReplacementFull(t *testing.T) {
	g := New(5)
	s := g.SampleWithoutReplacement(4, 4)
	seen := map[int]bool{}
	for _, x := range s {
		seen[x] = true
	}
	if len(seen) != 4 {
		t.Fatalf("full sample must cover the population, got %v", s)
	}
}

func TestSampleTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).SampleWithoutReplacement(3, 4)
}

func TestBernoulliExtremes(t *testing.T) {
	g := New(6)
	for i := 0; i < 100; i++ {
		if g.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !g.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	g := New(8)
	idx := []int{0, 1, 2, 3, 4, 5}
	g.Shuffle(idx)
	seen := make([]bool, 6)
	for _, x := range idx {
		seen[x] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("element %d lost in shuffle", i)
		}
	}
}
