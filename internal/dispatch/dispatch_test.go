package dispatch

import (
	"context"
	"errors"
	"testing"
	"time"

	"comfedsv/internal/faultinject"
	"comfedsv/internal/shapley"
)

// transient mirrors the structural retry classifier shared with
// internal/service: any error in the chain exposing Transient() true.
func transient(err error) bool {
	for e := err; e != nil; e = errors.Unwrap(e) {
		if m, ok := e.(interface{ Transient() bool }); ok {
			return m.Transient()
		}
	}
	return false
}

// mkObs fabricates a digest-valid wire payload for a slice.
func mkObs(lo, hi int, cells ...shapley.ObservedCell) *shapley.ShardObservations {
	obs := &shapley.ShardObservations{Lo: lo, Hi: hi, Cells: cells}
	obs.Stamp()
	return obs
}

func testTask() Task {
	return Task{JobID: "job-1", RunID: "run-1", Shard: 0, Lo: 0, Hi: 4, Budget: 8, Seed: 7}
}

// execute runs Execute on a goroutine and returns the outcome channel.
func execute(c *Coordinator, task Task) chan outcome {
	ch := make(chan outcome, 1)
	go func() {
		obs, _, err := c.Execute(context.Background(), task)
		ch <- outcome{obs: obs, err: err}
	}()
	return ch
}

func waitOutcome(t *testing.T, ch chan outcome) outcome {
	t.Helper()
	select {
	case out := <-ch:
		return out
	case <-time.After(5 * time.Second):
		t.Fatal("Execute did not resolve")
		return outcome{}
	}
}

func TestLeaseLifecycle(t *testing.T) {
	c := NewCoordinator(Config{})
	defer c.Close()
	if err := c.Register("w1"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if !c.HasLiveWorkers() {
		t.Fatal("registered worker not live")
	}

	done := execute(c, testTask())
	lease, err := c.Lease(context.Background(), "w1")
	if err != nil {
		t.Fatalf("Lease: %v", err)
	}
	if lease.Task != testTask() {
		t.Fatalf("leased task = %+v, want %+v", lease.Task, testTask())
	}

	obs := mkObs(0, 4, shapley.ObservedCell{Round: 0, Col: 1, Value: 0.5})
	if err := c.Complete(lease.ID, obs, nil); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	out := waitOutcome(t, done)
	if out.err != nil {
		t.Fatalf("Execute: %v", out.err)
	}
	if out.obs.Digest != obs.Digest {
		t.Fatalf("Execute returned digest %s, want %s", out.obs.Digest, obs.Digest)
	}

	st := c.Stats()
	if st.LeasesGranted != 1 || st.LeasesCompleted != 1 || st.LeasesActive != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExecuteFailsFastWithoutWorkers(t *testing.T) {
	c := NewCoordinator(Config{})
	defer c.Close()
	_, _, err := c.Execute(context.Background(), testTask())
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("Execute without workers: %v, want ErrNoWorkers", err)
	}
	if !transient(err) {
		t.Fatal("ErrNoWorkers must be transient so the retry ladder falls back to local execution")
	}
}

func TestLeaseExpiryDeliversTransientLostLease(t *testing.T) {
	clock := faultinject.NewManualClock(time.Unix(0, 0))
	c := NewCoordinator(Config{LeaseTTL: time.Minute, WorkerTTL: time.Hour, Clock: clock})
	defer c.Close()
	if err := c.Register("w1"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	done := execute(c, testTask())
	lease, err := c.Lease(context.Background(), "w1")
	if err != nil {
		t.Fatalf("Lease: %v", err)
	}

	// Two timers park on the clock — Execute's fleet re-check and the
	// lease watchdog; wait for both before advancing so the expiry fires.
	waitWaiters(t, clock, 2)
	clock.Advance(time.Minute + time.Second)

	out := waitOutcome(t, done)
	var lost *LostLeaseError
	if !errors.As(out.err, &lost) {
		t.Fatalf("Execute after expiry: %v, want LostLeaseError", out.err)
	}
	if !transient(out.err) {
		t.Fatal("a lost lease must be transient so the shard is re-leased")
	}

	// The straggler's late completion is rejected, not merged.
	if err := c.Complete(lease.ID, mkObs(0, 4), nil); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("Complete on expired lease: %v, want ErrUnknownLease", err)
	}
	if st := c.Stats(); st.LeasesExpired != 1 {
		t.Fatalf("LeasesExpired = %d, want 1", st.LeasesExpired)
	}
}

func TestQueuedTaskWithdrawnWhenFleetDies(t *testing.T) {
	clock := faultinject.NewManualClock(time.Unix(0, 0))
	c := NewCoordinator(Config{WorkerTTL: 30 * time.Second, Clock: clock})
	defer c.Close()
	if err := c.Register("w1"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	// The task enqueues while w1 is live, but w1 never polls and expires
	// with the task still queued. The periodic fleet re-check must fail
	// the Execute with transient ErrNoWorkers instead of hanging forever
	// — the retry ladder then falls back to local execution.
	done := execute(c, testTask())
	waitWaiters(t, clock, 1)
	clock.Advance(31 * time.Second)
	out := waitOutcome(t, done)
	if !errors.Is(out.err, ErrNoWorkers) || !transient(out.err) {
		t.Fatalf("stranded Execute: %v, want transient ErrNoWorkers", out.err)
	}
	if st := c.Stats(); st.TasksQueued != 0 {
		t.Fatalf("TasksQueued = %d after withdrawal, want 0", st.TasksQueued)
	}
}

func TestDeregisterRevokesWorkerLeases(t *testing.T) {
	c := NewCoordinator(Config{})
	defer c.Close()
	if err := c.Register("w1"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	done := execute(c, testTask())
	if _, err := c.Lease(context.Background(), "w1"); err != nil {
		t.Fatalf("Lease: %v", err)
	}
	c.Deregister("w1")
	out := waitOutcome(t, done)
	var lost *LostLeaseError
	if !errors.As(out.err, &lost) || !transient(out.err) {
		t.Fatalf("Execute after deregister: %v, want transient LostLeaseError", out.err)
	}
	if c.HasLiveWorkers() {
		t.Fatal("deregistered worker still live")
	}
}

func TestWorkerLivenessExpiry(t *testing.T) {
	clock := faultinject.NewManualClock(time.Unix(0, 0))
	c := NewCoordinator(Config{WorkerTTL: 30 * time.Second, Clock: clock})
	defer c.Close()
	if err := c.Register("w1"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	clock.Advance(29 * time.Second)
	if !c.HasLiveWorkers() {
		t.Fatal("worker expired before its liveness window")
	}
	clock.Advance(2 * time.Second)
	if c.HasLiveWorkers() {
		t.Fatal("silent worker still live past WorkerTTL")
	}
	// A heartbeat resurrects it (idempotent re-register).
	if err := c.Heartbeat("w1"); err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	if !c.HasLiveWorkers() {
		t.Fatal("heartbeat did not re-register the worker")
	}
}

func TestReLeaseAfterWorkerFailureKeepsDigestPinned(t *testing.T) {
	c := NewCoordinator(Config{})
	defer c.Close()
	if err := c.Register("w1"); err != nil {
		t.Fatalf("Register: %v", err)
	}

	// First execution fails worker-side; the retry ladder (the test here)
	// re-executes the same task.
	done := execute(c, testTask())
	lease1, err := c.Lease(context.Background(), "w1")
	if err != nil {
		t.Fatalf("Lease: %v", err)
	}
	if err := c.Fail(lease1.ID, "boom"); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	out := waitOutcome(t, done)
	var werr *WorkerError
	if !errors.As(out.err, &werr) || !transient(out.err) {
		t.Fatalf("Execute after worker failure: %v, want transient WorkerError", out.err)
	}

	// Second execution completes; its digest is pinned.
	obs := mkObs(0, 4, shapley.ObservedCell{Round: 1, Col: 0, Value: -0.25})
	done = execute(c, testTask())
	lease2, err := c.Lease(context.Background(), "w1")
	if err != nil {
		t.Fatalf("Lease: %v", err)
	}
	if err := c.Complete(lease2.ID, obs, nil); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if out := waitOutcome(t, done); out.err != nil {
		t.Fatalf("Execute: %v", out.err)
	}

	// A third execution of the same task must re-derive the same digest.
	done = execute(c, testTask())
	lease3, err := c.Lease(context.Background(), "w1")
	if err != nil {
		t.Fatalf("Lease: %v", err)
	}
	bad := mkObs(0, 4, shapley.ObservedCell{Round: 1, Col: 0, Value: 0.75})
	err = c.Complete(lease3.ID, bad, nil)
	var mismatch *DigestMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("Complete with diverging digest: %v, want DigestMismatchError", err)
	}
	out = waitOutcome(t, done)
	if !errors.As(out.err, &mismatch) {
		t.Fatalf("Execute after mismatch: %v, want DigestMismatchError", out.err)
	}
	if transient(out.err) {
		t.Fatal("a determinism violation must NOT be transient — retrying cannot make both answers right")
	}
	if st := c.Stats(); st.DigestMismatches != 1 {
		t.Fatalf("DigestMismatches = %d, want 1", st.DigestMismatches)
	}
}

func TestVerifyDigestPinsJournaledDigest(t *testing.T) {
	c := NewCoordinator(Config{})
	defer c.Close()
	if err := c.Register("w1"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	obs := mkObs(0, 4, shapley.ObservedCell{Round: 0, Col: 0, Value: 1})

	// The scheduler pins a recovered job's journaled digest before
	// re-leasing its shard; a wire result must then match it.
	if err := c.VerifyDigest(testTask(), obs.Digest); err != nil {
		t.Fatalf("VerifyDigest pin: %v", err)
	}
	if err := c.VerifyDigest(testTask(), obs.Digest); err != nil {
		t.Fatalf("VerifyDigest re-check: %v", err)
	}
	var mismatch *DigestMismatchError
	if err := c.VerifyDigest(testTask(), "fnv64a:dead"); !errors.As(err, &mismatch) {
		t.Fatalf("VerifyDigest with diverging digest: %v, want DigestMismatchError", err)
	}

	done := execute(c, testTask())
	lease, err := c.Lease(context.Background(), "w1")
	if err != nil {
		t.Fatalf("Lease: %v", err)
	}
	bad := mkObs(0, 4, shapley.ObservedCell{Round: 0, Col: 0, Value: 2})
	if err := c.Complete(lease.ID, bad, nil); !errors.As(err, &mismatch) {
		t.Fatalf("Complete against journaled digest: %v, want DigestMismatchError", err)
	}
	if out := waitOutcome(t, done); !errors.As(out.err, &mismatch) {
		t.Fatalf("Execute: %v, want DigestMismatchError", out.err)
	}
}

func TestCompleteRejectsCorruptPayload(t *testing.T) {
	c := NewCoordinator(Config{})
	defer c.Close()
	if err := c.Register("w1"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	done := execute(c, testTask())
	lease, err := c.Lease(context.Background(), "w1")
	if err != nil {
		t.Fatalf("Lease: %v", err)
	}
	obs := mkObs(0, 4, shapley.ObservedCell{Round: 0, Col: 0, Value: 1})
	obs.Cells[0].Value = 99 // corrupt after stamping
	if err := c.Complete(lease.ID, obs, nil); err == nil {
		t.Fatal("Complete accepted a payload whose digest does not verify")
	}
	if st := c.Stats(); st.DigestMismatches != 1 {
		t.Fatalf("DigestMismatches = %d, want 1", st.DigestMismatches)
	}
	// The lease stays active — the worker may still Fail it properly.
	if err := c.Fail(lease.ID, "gave up"); err != nil {
		t.Fatalf("Fail after rejected payload: %v", err)
	}
	if out := waitOutcome(t, done); !transient(out.err) {
		t.Fatalf("Execute: %v, want transient worker failure", out.err)
	}
}

func TestLeaseLongPollWindowElapses(t *testing.T) {
	c := NewCoordinator(Config{})
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	lease, err := c.Lease(ctx, "w1")
	if err != nil || lease != nil {
		t.Fatalf("empty long-poll = (%v, %v), want (nil, nil)", lease, err)
	}
	// Polling counted as a heartbeat.
	if !c.HasLiveWorkers() {
		t.Fatal("polling worker not registered as live")
	}
}

func TestCloseFailsQueuedAndLeased(t *testing.T) {
	c := NewCoordinator(Config{})
	if err := c.Register("w1"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	leased := execute(c, testTask())
	lease, err := c.Lease(context.Background(), "w1")
	if err != nil {
		t.Fatalf("Lease: %v", err)
	}
	queued := execute(c, Task{JobID: "job-2", RunID: "run-1", Shard: 1, Lo: 4, Hi: 8, Budget: 8, Seed: 7})
	// Make sure the second Execute reached the queue before closing.
	waitQueued(t, c, 1)

	c.Close()
	if out := waitOutcome(t, leased); !errors.Is(out.err, ErrClosed) {
		t.Fatalf("leased Execute after Close: %v, want ErrClosed", out.err)
	}
	if out := waitOutcome(t, queued); !errors.Is(out.err, ErrClosed) {
		t.Fatalf("queued Execute after Close: %v, want ErrClosed", out.err)
	}
	if err := c.Complete(lease.ID, mkObs(0, 4), nil); err == nil {
		t.Fatal("Complete after Close succeeded")
	}
	if _, err := c.Lease(context.Background(), "w1"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Lease after Close: %v, want ErrClosed", err)
	}
}

func TestAbandonedExecuteRevokesLease(t *testing.T) {
	c := NewCoordinator(Config{})
	defer c.Close()
	if err := c.Register("w1"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Execute(ctx, testTask())
		done <- err
	}()
	lease, err := c.Lease(context.Background(), "w1")
	if err != nil {
		t.Fatalf("Lease: %v", err)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Execute: %v", err)
	}
	// The revocation lands asynchronously with the cancellation.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.Complete(lease.ID, mkObs(0, 4), nil); errors.Is(err, ErrUnknownLease) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("lease of an abandoned Execute was never revoked")
		}
		time.Sleep(time.Millisecond)
	}
}

// waitWaiters blocks until the manual clock has n parked timers.
func waitWaiters(t *testing.T, clock *faultinject.ManualClock, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for clock.Waiters() < n {
		if time.Now().After(deadline) {
			t.Fatalf("clock never reached %d waiters", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitQueued blocks until the coordinator has n queued tasks.
func waitQueued(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().TasksQueued < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d tasks", n)
		}
		time.Sleep(time.Millisecond)
	}
}
