// Package dispatch promotes the comfedsvd stage-graph scheduler into a
// shard coordinator: observation-shard tasks are leased to remote worker
// processes over a lean HTTP work-pull protocol instead of (or alongside)
// running on the local pool.
//
// The division of labor keeps determinism the pinned invariant:
//
//   - The Coordinator owns a lease table with deadlines and a worker
//     registry with heartbeats and liveness expiry. It never re-plans
//     work — a task is an exact permutation slice of a job whose plan is
//     a pure function of (trace, budget, seed), so any worker that
//     rebuilds the plan from the shared run store derives identical
//     observations.
//   - Workers long-poll for leases, hydrate the training trace from the
//     shared persist.RunStore via the content-addressed run ID, evaluate
//     their slice locally, and report the cells with their content
//     digest. The coordinator verifies the digest on import and compares
//     duplicate completions of re-leased tasks — a mismatch is a loud
//     determinism failure, never a silently different report.
//   - A lease lost to a dead or expired worker fails the waiting Execute
//     with a transient error, which rides the scheduler's existing
//     deterministic retry ladder back to a fresh lease (or to local
//     execution when no live workers remain).
//   - Completions may piggyback the worker's newly evaluated utility
//     cells (a utility.CellBatch). The coordinator carries the batch
//     opaquely — it cannot verify cells without the training trace — and
//     hands it to the waiting Execute, whose caller preloads and persists
//     it. Losing a delta (failed lease, straggler) is only a lost
//     optimization, never a correctness issue.
//
// The package is dependency-free beyond the standard library and the
// internal/shapley and internal/utility wire types, so service and api
// can both import it without cycles.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"comfedsv/internal/shapley"
	"comfedsv/internal/utility"
)

// Clock abstracts time for deterministic lease-expiry tests; it is
// structurally identical to the service scheduler's clock, so one
// injected fake drives both.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Task is one observation-shard lease payload: everything a worker needs
// to rebuild the job's observation plan from the shared run store and
// evaluate its permutation slice. Budget and Seed are the plan identity —
// permutation sampling and prefix-column registration are pure functions
// of (trace, Budget, Seed), so the worker's dense column indices match
// the coordinator's.
type Task struct {
	// JobID is the owning job (diagnostic; not needed to compute).
	JobID string `json:"job_id"`
	// RunID is the content-addressed training run in the shared RunStore.
	RunID string `json:"run_id"`
	// Shard is the job's shard index (diagnostic; the slice is authoritative).
	Shard int `json:"shard"`
	// Lo and Hi bound the half-open permutation slice to evaluate.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Budget is the job's resolved permutation budget.
	Budget int `json:"budget"`
	// Seed is the job's raw Options.Seed (the worker applies the same
	// internal derivation the coordinator's prepare stage does).
	Seed int64 `json:"seed"`
}

// key addresses a task for duplicate-completion digest comparison: two
// executions of the same slice of the same job must derive identical
// observations.
func (t Task) key() string {
	return fmt.Sprintf("%s/%d:%d-%d", t.JobID, t.Shard, t.Lo, t.Hi)
}

// Lease is one granted task lease. The worker must Complete or Fail it
// before Deadline; after that the coordinator revokes it and the shard
// is re-leased (or run locally) by the retry ladder.
type Lease struct {
	ID       string    `json:"id"`
	Task     Task      `json:"task"`
	Deadline time.Time `json:"deadline"`
}

// LostLeaseError reports a lease revoked before its result arrived —
// expired deadline, dead worker, or explicit deregistration. It is
// transient: the scheduler's retry ladder re-leases the shard
// deterministically.
type LostLeaseError struct {
	LeaseID string
	Reason  string
}

func (e *LostLeaseError) Error() string {
	return fmt.Sprintf("dispatch: lease %s lost: %s", e.LeaseID, e.Reason)
}

// Transient marks a lost lease as retryable to the scheduler's
// structural classifier.
func (e *LostLeaseError) Transient() bool { return true }

// WorkerError reports a failure the worker itself hit evaluating a lease
// (trace hydration, evaluation error). It is transient — a re-lease may
// land on a healthy worker, and the retry ladder's cap bounds the loop.
type WorkerError struct {
	LeaseID string
	Msg     string
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("dispatch: worker failed lease %s: %s", e.LeaseID, e.Msg)
}

func (e *WorkerError) Transient() bool { return true }

// DigestMismatchError reports two executions of one task deriving
// different observation digests — a determinism violation. It is NOT
// transient: retrying cannot make both answers right, so it fails loudly.
type DigestMismatchError struct {
	Key       string
	Got, Want string
}

func (e *DigestMismatchError) Error() string {
	return fmt.Sprintf("dispatch: task %s re-derived digest %s but an earlier execution recorded %s: determinism violation", e.Key, e.Got, e.Want)
}

// ErrNoWorkers fails an Execute fast when no live worker is registered.
// It is transient so the retry ladder re-evaluates remote eligibility —
// the scheduler falls back to local execution on the next attempt.
var ErrNoWorkers = &noWorkersError{}

type noWorkersError struct{}

func (*noWorkersError) Error() string   { return "dispatch: no live workers registered" }
func (*noWorkersError) Transient() bool { return true }

// ErrUnknownLease rejects a Complete/Fail/heartbeat for a lease the
// coordinator is not (or no longer) tracking as active.
var ErrUnknownLease = errors.New("dispatch: unknown or revoked lease")

// ErrClosed rejects calls after Close.
var ErrClosed = errors.New("dispatch: coordinator closed")

// Config parameterizes a Coordinator.
type Config struct {
	// LeaseTTL bounds how long a granted lease may stay un-completed
	// before the shard is revoked and re-leased. Zero means 2 minutes.
	LeaseTTL time.Duration
	// WorkerTTL bounds how long a silent worker (no heartbeat, poll, or
	// report) stays live. Zero means 30 seconds.
	WorkerTTL time.Duration
	// Clock injects time; nil means the real clock.
	Clock Clock
	// Logger receives lease lifecycle events; nil discards them.
	Logger *slog.Logger
}

// Stats is a point-in-time snapshot of coordinator counters, exported
// through /v1/metrics.
type Stats struct {
	// WorkersLive is the number of registered workers within liveness.
	WorkersLive int
	// TasksQueued is the number of tasks awaiting a lease.
	TasksQueued int
	// LeasesActive is the number of granted, unresolved leases.
	LeasesActive int
	// LeasesGranted counts all leases ever granted.
	LeasesGranted uint64
	// LeasesCompleted counts leases resolved by a verified result.
	LeasesCompleted uint64
	// LeasesFailed counts leases the worker reported as failed.
	LeasesFailed uint64
	// LeasesExpired counts leases revoked by deadline or worker loss.
	LeasesExpired uint64
	// DigestMismatches counts determinism violations detected at the
	// wire: duplicate completions disagreeing, or a result whose stamped
	// digest does not match its cells.
	DigestMismatches uint64
}

// outcome resolves one Execute.
type outcome struct {
	obs   *shapley.ShardObservations
	cells *utility.CellBatch // optional cache delta riding the completion
	err   error
}

// pending is one task awaiting or holding a lease.
type pending struct {
	task    Task
	done    chan outcome // buffered 1; delivered exactly once
	leaseID string       // "" while queued
}

// activeLease is one granted, unresolved lease.
type activeLease struct {
	lease   Lease
	entry   *pending
	worker  string
	expired chan struct{} // closed on resolve to stop the watchdog
}

// workerState tracks one registered worker's liveness.
type workerState struct {
	lastSeen time.Time
}

// Coordinator owns the lease table and worker registry. All methods are
// safe for concurrent use.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	queue   []*pending
	waiters []chan struct{} // parked Lease long-polls
	leases  map[string]*activeLease
	workers map[string]*workerState
	// digests pins the first verified digest of every completed task key
	// for the lifetime of the coordinator, so a straggler completion of a
	// re-leased shard is compared, not trusted.
	digests map[string]string
	closed  bool
	seq     uint64 // lease id counter

	granted    uint64
	completed  uint64
	failed     uint64
	expired    uint64
	mismatches uint64
}

// NewCoordinator returns a coordinator with the given config.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 2 * time.Minute
	}
	if cfg.WorkerTTL <= 0 {
		cfg.WorkerTTL = 30 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	return &Coordinator{
		cfg:     cfg,
		leases:  make(map[string]*activeLease),
		workers: make(map[string]*workerState),
		digests: make(map[string]string),
	}
}

// LeaseTTL returns the configured lease deadline window.
func (c *Coordinator) LeaseTTL() time.Duration { return c.cfg.LeaseTTL }

// WorkerTTL returns the configured worker liveness window.
func (c *Coordinator) WorkerTTL() time.Duration { return c.cfg.WorkerTTL }

func (c *Coordinator) logf(msg string, args ...any) {
	if c.cfg.Logger != nil {
		c.cfg.Logger.Info(msg, args...)
	}
}

// Register adds (or refreshes) a worker in the registry. Registration is
// idempotent; a re-registering worker simply refreshes its liveness.
func (c *Coordinator) Register(id string) error {
	if id == "" {
		return errors.New("dispatch: empty worker id")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if _, ok := c.workers[id]; !ok {
		c.logf("worker registered", "worker", id)
	}
	c.workers[id] = &workerState{lastSeen: c.cfg.Clock.Now()}
	return nil
}

// Heartbeat refreshes a worker's liveness. An unknown worker is
// re-registered — a coordinator restart must not strand live workers.
func (c *Coordinator) Heartbeat(id string) error { return c.Register(id) }

// Deregister removes a worker and revokes its outstanding leases
// immediately (graceful worker shutdown).
func (c *Coordinator) Deregister(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.workers, id)
	for _, al := range c.leases {
		if al.worker == id {
			c.revokeLocked(al, "worker deregistered")
		}
	}
}

// HasLiveWorkers reports whether any registered worker heartbeated
// within the liveness window — the scheduler's remote-eligibility check.
func (c *Coordinator) HasLiveWorkers() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveWorkersLocked() > 0
}

func (c *Coordinator) liveWorkersLocked() int {
	now := c.cfg.Clock.Now()
	n := 0
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) > c.cfg.WorkerTTL {
			// Liveness expiry is lazy: a silent worker is dropped the next
			// time anyone looks. Its leases keep their own deadlines.
			delete(c.workers, id)
			c.logf("worker expired", "worker", id)
			continue
		}
		n++
	}
	return n
}

// Execute queues one shard task for remote execution and blocks until a
// worker returns a digest-verified result, the lease chain fails, or ctx
// is done. Lost leases and worker-side failures return transient errors
// (the scheduler's retry ladder re-executes, re-evaluating remote
// eligibility); a digest mismatch returns a permanent determinism error.
// The returned CellBatch is the worker's unverified cache delta, nil
// when the completion carried none.
func (c *Coordinator) Execute(ctx context.Context, task Task) (*shapley.ShardObservations, *utility.CellBatch, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, nil, ErrClosed
	}
	if c.liveWorkersLocked() == 0 {
		c.mu.Unlock()
		return nil, nil, ErrNoWorkers
	}
	entry := &pending{task: task, done: make(chan outcome, 1)}
	c.queue = append(c.queue, entry)
	c.wakeLocked()
	c.mu.Unlock()

	for {
		select {
		case out := <-entry.done:
			return out.obs, out.cells, out.err
		case <-ctx.Done():
			c.abandon(entry)
			return nil, nil, ctx.Err()
		case <-c.cfg.Clock.After(c.cfg.WorkerTTL):
			// Re-check the fleet while queued: a task enqueued just before
			// the last worker died would otherwise wait forever — nobody
			// polls an empty registry. Leased entries keep their own
			// deadline watchdog.
			if c.withdrawIfStranded(entry) {
				return nil, nil, ErrNoWorkers
			}
		}
	}
}

// withdrawIfStranded removes entry from the queue iff it is still queued
// and no live worker remains to ever lease it, reporting whether it did.
func (c *Coordinator) withdrawIfStranded(entry *pending) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.liveWorkersLocked() > 0 {
		return false
	}
	for i, e := range c.queue {
		if e == entry {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return true
		}
	}
	return false
}

// abandon withdraws an Execute whose context ended: a queued entry is
// removed; a leased one has its lease revoked (the revocation outcome is
// discarded — nobody is waiting).
func (c *Coordinator) abandon(entry *pending) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, e := range c.queue {
		if e == entry {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
	if al, ok := c.leases[entry.leaseID]; ok && al.entry == entry {
		c.revokeLocked(al, "execute abandoned")
	}
}

// wakeLocked releases every parked Lease long-poll to re-check the queue.
func (c *Coordinator) wakeLocked() {
	for _, ch := range c.waiters {
		close(ch)
	}
	c.waiters = nil
}

// Lease grants the next queued task to the polling worker, blocking
// until one is available or ctx is done (the long-poll window). A nil
// lease with a nil error means the window elapsed with no work. Polling
// counts as a heartbeat.
func (c *Coordinator) Lease(ctx context.Context, workerID string) (*Lease, error) {
	if workerID == "" {
		return nil, errors.New("dispatch: empty worker id")
	}
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		c.workers[workerID] = &workerState{lastSeen: c.cfg.Clock.Now()}
		if len(c.queue) > 0 {
			entry := c.queue[0]
			c.queue = c.queue[1:]
			lease := c.grantLocked(entry, workerID)
			c.mu.Unlock()
			return lease, nil
		}
		ch := make(chan struct{})
		c.waiters = append(c.waiters, ch)
		c.mu.Unlock()

		select {
		case <-ch:
		case <-ctx.Done():
			c.dropWaiter(ch)
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return nil, nil
			}
			return nil, ctx.Err()
		}
	}
}

func (c *Coordinator) dropWaiter(ch chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, w := range c.waiters {
		if w == ch {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// grantLocked assigns entry to workerID under a fresh lease and starts
// its deadline watchdog.
func (c *Coordinator) grantLocked(entry *pending, workerID string) *Lease {
	c.seq++
	id := fmt.Sprintf("lease-%d", c.seq)
	al := &activeLease{
		lease: Lease{
			ID:       id,
			Task:     entry.task,
			Deadline: c.cfg.Clock.Now().Add(c.cfg.LeaseTTL),
		},
		entry:   entry,
		worker:  workerID,
		expired: make(chan struct{}),
	}
	entry.leaseID = id
	c.leases[id] = al
	c.granted++
	c.logf("lease granted", "lease", id, "worker", workerID, "job", entry.task.JobID, "shard", entry.task.Shard, "slice", fmt.Sprintf("[%d,%d)", entry.task.Lo, entry.task.Hi))
	ttl := c.cfg.LeaseTTL
	go func() {
		select {
		case <-c.cfg.Clock.After(ttl):
			c.expire(id)
		case <-al.expired:
		}
	}()
	return &al.lease
}

// expire revokes a lease whose deadline passed before a result arrived.
func (c *Coordinator) expire(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if al, ok := c.leases[id]; ok {
		c.revokeLocked(al, "deadline expired")
	}
}

// revokeLocked resolves a lease as lost: the waiting Execute receives a
// transient LostLeaseError and the retry ladder re-leases the shard.
func (c *Coordinator) revokeLocked(al *activeLease, reason string) {
	delete(c.leases, al.lease.ID)
	close(al.expired)
	c.expired++
	c.logf("lease revoked", "lease", al.lease.ID, "worker", al.worker, "reason", reason)
	al.entry.done <- outcome{err: &LostLeaseError{LeaseID: al.lease.ID, Reason: reason}}
}

// resolveLocked removes an active lease without delivering an outcome,
// returning its entry.
func (c *Coordinator) resolveLocked(id string) (*activeLease, bool) {
	al, ok := c.leases[id]
	if !ok {
		return nil, false
	}
	delete(c.leases, id)
	close(al.expired)
	return al, true
}

// Complete resolves a lease with a worker's result. The observations are
// digest-verified (stamped digest recomputed from the cells) and
// compared against any earlier verified execution of the same task — a
// disagreement is a loud determinism failure charged to this call, and
// the waiting Execute (if any) also fails permanently. A completion for
// an unknown or already-revoked lease returns ErrUnknownLease after the
// digest comparison, so a straggler worker still gets its answer checked.
// cells, if non-nil, is the worker's utility-cache delta; it is carried
// opaquely to the waiting Execute (the coordinator has no trace to
// verify it against — the service-side preload does).
func (c *Coordinator) Complete(leaseID string, obs *shapley.ShardObservations, cells *utility.CellBatch) error {
	if obs == nil {
		return errors.New("dispatch: nil observations")
	}
	if err := obs.Verify(); err != nil {
		c.mu.Lock()
		c.mismatches++
		c.mu.Unlock()
		return err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	al, active := c.resolveLocked(leaseID)
	var key string
	if active {
		key = al.entry.task.key()
	} else {
		// A revoked lease's task may since have completed via a re-lease;
		// find the pinned digest by scanning is impossible without the
		// task, so stragglers are only comparable while active. Unknown
		// lease, digest already self-verified: reject the report.
		return ErrUnknownLease
	}
	if want, ok := c.digests[key]; ok && want != obs.Digest {
		c.mismatches++
		err := &DigestMismatchError{Key: key, Got: obs.Digest, Want: want}
		al.entry.done <- outcome{err: err}
		return err
	}
	c.digests[key] = obs.Digest
	c.completed++
	c.logf("lease completed", "lease", leaseID, "worker", al.worker, "digest", obs.Digest)
	al.entry.done <- outcome{obs: obs, cells: cells}
	return nil
}

// Fail resolves a lease with a worker-reported error; the waiting
// Execute receives a transient WorkerError and the retry ladder decides
// whether to re-lease.
func (c *Coordinator) Fail(leaseID, msg string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	al, ok := c.resolveLocked(leaseID)
	if !ok {
		return ErrUnknownLease
	}
	c.failed++
	c.logf("lease failed", "lease", leaseID, "worker", al.worker, "error", msg)
	al.entry.done <- outcome{err: &WorkerError{LeaseID: leaseID, Msg: msg}}
	return nil
}

// VerifyDigest compares an externally journaled digest for a task
// against the coordinator's pinned one, pinning it if absent — the seam
// the scheduler uses to tie the lease table to the job journal's shard
// digests.
func (c *Coordinator) VerifyDigest(task Task, digest string) error {
	if digest == "" {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := task.key()
	if want, ok := c.digests[key]; ok && want != digest {
		c.mismatches++
		return &DigestMismatchError{Key: key, Got: digest, Want: want}
	}
	c.digests[key] = digest
	return nil
}

// Stats snapshots the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		WorkersLive:      c.liveWorkersLocked(),
		TasksQueued:      len(c.queue),
		LeasesActive:     len(c.leases),
		LeasesGranted:    c.granted,
		LeasesCompleted:  c.completed,
		LeasesFailed:     c.failed,
		LeasesExpired:    c.expired,
		DigestMismatches: c.mismatches,
	}
}

// Close shuts the coordinator down: queued and leased tasks fail with
// ErrClosed, parked long-polls return ErrClosed, and every subsequent
// call is rejected.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, e := range c.queue {
		e.done <- outcome{err: ErrClosed}
	}
	c.queue = nil
	for _, al := range c.leases {
		delete(c.leases, al.lease.ID)
		close(al.expired)
		al.entry.done <- outcome{err: ErrClosed}
	}
	c.wakeLocked()
}
