package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"comfedsv/internal/shapley"
	"comfedsv/internal/utility"
)

// Wire request/response bodies of the worker endpoints, shared by the
// coordinator's HTTP surface (internal/api) and the worker client so the
// two cannot drift.

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	WorkerID string `json:"worker_id"`
}

// RegisterResponse returns the coordinator's lease and liveness windows
// so the worker can pace its heartbeats and long-poll windows.
type RegisterResponse struct {
	LeaseTTLSeconds  float64 `json:"lease_ttl_seconds"`
	WorkerTTLSeconds float64 `json:"worker_ttl_seconds"`
}

// LeaseRequest long-polls for the next shard task. WaitSeconds bounds
// the poll; the coordinator responds 204 when it elapses with no work.
type LeaseRequest struct {
	WorkerID    string  `json:"worker_id"`
	WaitSeconds float64 `json:"wait_seconds,omitempty"`
}

// CompleteRequest reports one evaluated shard with its content digest,
// optionally piggybacking the worker's newly evaluated utility cells so
// the coordinator can warm the run's shared cache.
type CompleteRequest struct {
	LeaseID      string                     `json:"lease_id"`
	Observations *shapley.ShardObservations `json:"observations"`
	Cells        *utility.CellBatch         `json:"cells,omitempty"`
}

// FailRequest reports a worker-side failure evaluating a lease.
type FailRequest struct {
	LeaseID string `json:"lease_id"`
	Error   string `json:"error"`
}

// Client is the worker daemon's HTTP client for the coordinator's
// /v1/worker endpoints.
type Client struct {
	base     string
	workerID string
	hc       *http.Client
}

// NewClient returns a worker client for the coordinator at baseURL
// (scheme://host:port, no trailing path). The underlying http.Client has
// no global timeout — long-polls are bounded per call via context.
func NewClient(baseURL, workerID string) *Client {
	return &Client{
		base:     strings.TrimRight(baseURL, "/"),
		workerID: workerID,
		hc:       &http.Client{},
	}
}

// WorkerID returns the identity this client registers and polls under.
func (c *Client) WorkerID() string { return c.workerID }

// httpError is a non-2xx coordinator response.
type httpError struct {
	status int
	body   string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("dispatch: coordinator returned %d: %s", e.status, strings.TrimSpace(e.body))
}

// Transient reports whether the failure is worth retrying: server-side
// errors and backpressure are, client-usage errors are not.
func (e *httpError) Transient() bool {
	return e.status >= 500 || e.status == http.StatusTooManyRequests
}

// post sends one JSON request and decodes the response into out (when
// non-nil and the response is 200). A 204 returns (false, nil); a 200
// returns (true, nil).
func (c *Client) post(ctx context.Context, path string, in, out any) (bool, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return false, fmt.Errorf("dispatch: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return false, fmt.Errorf("dispatch: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, fmt.Errorf("dispatch: %w", err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNoContent:
		return false, nil
	case resp.StatusCode == http.StatusOK:
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return false, fmt.Errorf("dispatch: decoding response: %w", err)
			}
		}
		return true, nil
	default:
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return false, &httpError{status: resp.StatusCode, body: string(b)}
	}
}

// Register announces the worker and returns the coordinator's windows.
func (c *Client) Register(ctx context.Context) (*RegisterResponse, error) {
	var out RegisterResponse
	if _, err := c.post(ctx, "/v1/worker/register", RegisterRequest{WorkerID: c.workerID}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Heartbeat refreshes the worker's liveness.
func (c *Client) Heartbeat(ctx context.Context) error {
	_, err := c.post(ctx, "/v1/worker/heartbeat", RegisterRequest{WorkerID: c.workerID}, nil)
	return err
}

// Deregister removes the worker from the registry (graceful shutdown);
// its outstanding leases are revoked for immediate re-lease.
func (c *Client) Deregister(ctx context.Context) error {
	_, err := c.post(ctx, "/v1/worker/deregister", RegisterRequest{WorkerID: c.workerID}, nil)
	return err
}

// Lease long-polls for the next shard task for up to wait. A (nil, nil)
// return means the window elapsed with no work — poll again.
func (c *Client) Lease(ctx context.Context, wait time.Duration) (*Lease, error) {
	var lease Lease
	ok, err := c.post(ctx, "/v1/worker/lease", LeaseRequest{WorkerID: c.workerID, WaitSeconds: wait.Seconds()}, &lease)
	if err != nil || !ok {
		return nil, err
	}
	return &lease, nil
}

// Complete reports one evaluated shard, optionally with the worker's
// cell-cache delta.
func (c *Client) Complete(ctx context.Context, leaseID string, obs *shapley.ShardObservations, cells *utility.CellBatch) error {
	_, err := c.post(ctx, "/v1/worker/complete", CompleteRequest{LeaseID: leaseID, Observations: obs, Cells: cells}, nil)
	return err
}

// Fail reports a worker-side failure evaluating a lease.
func (c *Client) Fail(ctx context.Context, leaseID, msg string) error {
	_, err := c.post(ctx, "/v1/worker/fail", FailRequest{LeaseID: leaseID, Error: msg}, nil)
	return err
}
