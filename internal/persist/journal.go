package persist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"comfedsv/internal/faultinject"
)

// Journal record types and file suffixes.
const (
	journalSuffix = ".journal"
	corruptSuffix = ".journal.corrupt"

	// RecSubmit is a journal's first record: the full job request
	// (datasets or run reference plus effective options), everything a
	// restarted daemon needs to re-derive the job deterministically.
	RecSubmit = "submit"
	// RecTask records one completed stage task (prepare / observe /
	// complete / shapley) with its stage-specific payload.
	RecTask = "task"
	// RecFail records a terminal job failure, so a failed job survives a
	// restart as failed instead of silently re-running.
	RecFail = "fail"
)

// ErrCorruptJournal reports a journal whose decoded prefix is unusable: a
// complete (newline-terminated) record that does not parse, or a missing
// or malformed leading submit record. A torn trailing record with no
// newline is NOT corruption — that is exactly what a crash mid-append
// leaves behind, and recovery drops it and resumes from the last durable
// record.
var ErrCorruptJournal = errors.New("persist: corrupt job journal")

// JournalRecord is one append-only entry in a job's task journal.
type JournalRecord struct {
	Type string    `json:"type"`
	Time time.Time `json:"time,omitempty"`
	// Stage is the completed task's stage name for RecTask records.
	Stage string `json:"stage,omitempty"`
	// Shard is the observation shard index of an observe task record.
	Shard int `json:"shard,omitempty"`
	// Shards is the planned shard count on a prepare record, and the
	// number of additional wave shards on a complete record.
	Shards int `json:"shards,omitempty"`
	// Digest is the content hash of an observation shard's evaluated
	// cells — recovery re-executes the shard (observation is a pure
	// function of the journaled request) and verifies the re-derived
	// cells hash identically, turning any determinism violation into a
	// loud failure instead of a silently different report.
	Digest string `json:"digest,omitempty"`
	// Error is the failure reason on RecFail records.
	Error string `json:"error,omitempty"`
	// Request is the service-defined request payload on RecSubmit records.
	Request json.RawMessage `json:"request,omitempty"`
}

// Journal is one job's append-only task journal: each Append marshals a
// record to a single JSON line, writes it in one call, and fsyncs before
// returning, so every acknowledged record survives a crash and a torn
// write can only ever be the trailing line. A Journal is safe for
// concurrent use; the service serializes appends per task anyway.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	id   string
	hook faultinject.Hook
	dead error // non-nil after a simulated crash: appends are dropped
}

// OpenJournal opens (creating if needed) the append-only journal of job
// id. The hook, if non-nil, is consulted before and after every append —
// the crash-point seam of the chaos suites; pass nil in production.
func (s *JobStore) OpenJournal(id string, hook faultinject.Hook) (*Journal, error) {
	path, err := s.path(id, journalSuffix)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: opening journal: %w", err)
	}
	return &Journal{f: f, id: id, hook: hook}, nil
}

// Append durably appends one record: marshal, single write, fsync. After
// a simulated crash (the fault hook returned faultinject.ErrCrash) the
// journal is dead — the on-disk state is frozen as the dying process
// left it, and every subsequent Append returns the crash error without
// touching the file.
func (j *Journal) Append(rec JournalRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("persist: encoding journal record: %w", err)
	}
	line = append(line, '\n')

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead != nil {
		return j.dead
	}
	if err := j.fire(faultinject.OpJournalBefore, rec); err != nil {
		return err
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("persist: appending journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("persist: syncing journal: %w", err)
	}
	if err := j.fire(faultinject.OpJournalAfter, rec); err != nil {
		return err
	}
	return nil
}

// fire consults the fault hook at one journal point, latching a
// simulated crash. Callers hold j.mu.
func (j *Journal) fire(op string, rec JournalRecord) error {
	if j.hook == nil {
		return nil
	}
	stage := rec.Type
	if rec.Type == RecTask && rec.Stage != "" {
		// Task records expose the pipeline stage, the coordinate chaos
		// suites target crashes by; submit and fail records keep the
		// record type.
		stage = rec.Stage
	}
	err := j.hook(faultinject.Point{Op: op, Stage: stage, Shard: rec.Shard, JobID: j.id})
	if errors.Is(err, faultinject.ErrCrash) {
		j.dead = err
	}
	return err
}

// Close releases the journal's file handle. The file stays on disk;
// RemoveJournal deletes it.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ReadJournal decodes job id's journal. A torn trailing line (no
// terminating newline — a crash mid-append) is dropped silently; any
// complete line that fails to decode, or a non-empty journal whose first
// record is not a valid submit record, returns ErrCorruptJournal so the
// caller can quarantine the file. A journal with no durable records at
// all returns (nil, nil): that is a process that died before its first
// fsync — the job never durably existed — not corruption.
func (s *JobStore) ReadJournal(id string) ([]JournalRecord, error) {
	path, err := s.path(id, journalSuffix)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("persist: reading journal: %w", err)
	}
	// Only newline-terminated lines are durable records; a trailing
	// fragment is the torn write of a dying process, not corruption.
	if i := bytes.LastIndexByte(data, '\n'); i < 0 {
		data = nil
	} else {
		data = data[:i+1]
	}
	var recs []JournalRecord
	for lineNo, line := range bytes.Split(data, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec JournalRecord
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("%w: %s line %d: %v", ErrCorruptJournal, id, lineNo+1, err)
		}
		recs = append(recs, rec)
	}
	if len(recs) == 0 {
		return nil, nil
	}
	if recs[0].Type != RecSubmit || len(recs[0].Request) == 0 {
		return nil, fmt.Errorf("%w: %s does not start with a submit record", ErrCorruptJournal, id)
	}
	return recs, nil
}

// ListJournals returns the sorted IDs of every job with a journal on
// disk — the in-flight jobs a previous process left behind.
func (s *JobStore) ListJournals() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, journalSuffix) {
			continue
		}
		id := strings.TrimSuffix(name, journalSuffix)
		if ValidJobID(id) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// QuarantineJournal renames job id's journal to its .corrupt name so a
// damaged file stops being replayed on every startup but stays available
// for inspection, then fsyncs the directory — without the sync, a crash
// right after the rename can resurrect the corrupt journal and re-fail
// every subsequent startup. The hook, if non-nil, is consulted between
// the rename and the directory sync (faultinject.OpQuarantine — the
// crash window the resurrection chaos suite targets); pass nil in
// production. It returns the quarantine path.
func (s *JobStore) QuarantineJournal(id string, hook faultinject.Hook) (string, error) {
	path, err := s.path(id, journalSuffix)
	if err != nil {
		return "", err
	}
	dst, err := s.path(id, corruptSuffix)
	if err != nil {
		return "", err
	}
	if err := os.Rename(path, dst); err != nil {
		return "", fmt.Errorf("persist: quarantining journal: %w", err)
	}
	if hook != nil {
		if err := hook(faultinject.Point{Op: faultinject.OpQuarantine, Stage: "quarantine", Shard: -1, JobID: id}); err != nil {
			return "", err
		}
	}
	if err := syncDir(s.dir); err != nil {
		return "", err
	}
	return dst, nil
}

// RemoveJournal deletes job id's journal and fsyncs the directory so the
// deletion is durable — a resurrected journal would make a restarted
// daemon replay a job that already finished. A missing file is not an
// error.
func (s *JobStore) RemoveJournal(id string) error {
	path, err := s.path(id, journalSuffix)
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("persist: %w", err)
	}
	return syncDir(s.dir)
}

// HasJournal reports whether a journal exists for job id.
func (s *JobStore) HasJournal(id string) bool {
	path, err := s.path(id, journalSuffix)
	if err != nil {
		return false
	}
	_, err = os.Stat(path)
	return err == nil
}
