package persist

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"comfedsv/internal/dataset"
	"comfedsv/internal/fl"
	"comfedsv/internal/model"
	"comfedsv/internal/rng"
	"comfedsv/internal/shapley"
	"comfedsv/internal/utility"
)

func makeRun(t *testing.T) *fl.Run {
	t.Helper()
	full := dataset.GenerateImages(dataset.MNISTLikeConfig(401), 150)
	g := rng.New(402)
	train, test := dataset.TrainTestSplit(full, 40.0/150, g)
	parts := dataset.PartitionIID(train, 4, g)
	m := model.NewMLP(full.Dim(), 5, full.NumClasses)
	cfg := fl.DefaultConfig(3, 2)
	run, err := fl.TrainRun(cfg, m, parts, test)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestRunRoundTrip(t *testing.T) {
	run := makeRun(t)
	var buf bytes.Buffer
	if err := SaveRun(&buf, run); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumClients() != run.NumClients() {
		t.Fatalf("clients %d, want %d", loaded.NumClients(), run.NumClients())
	}
	if len(loaded.Rounds) != len(run.Rounds) {
		t.Fatalf("rounds %d, want %d", len(loaded.Rounds), len(run.Rounds))
	}
	// Valuations on the loaded run match the original exactly.
	a := shapley.FedSV(utility.NewEvaluator(run))
	b := shapley.FedSV(utility.NewEvaluator(loaded))
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("FedSV after round-trip differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunRoundTripAllModels(t *testing.T) {
	shapes := dataset.ImageShape{Height: 8, Width: 8, Channels: 1}
	models := []model.Model{
		model.NewLogisticRegression(64, 10),
		model.NewMLP(64, 5, 10),
		model.NewCNN(shapes, 2, 10),
	}
	full := dataset.GenerateImages(dataset.MNISTLikeConfig(403), 120)
	g := rng.New(404)
	train, test := dataset.TrainTestSplit(full, 40.0/120, g)
	parts := dataset.PartitionIID(train, 3, g)
	for _, m := range models {
		cfg := fl.DefaultConfig(2, 2)
		run, err := fl.TrainRun(cfg, m, parts, test)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := SaveRun(&buf, run); err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		loaded, err := LoadRun(&buf)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		if loaded.Model.NumParams() != m.NumParams() {
			t.Fatalf("%T: params %d, want %d", m, loaded.Model.NumParams(), m.NumParams())
		}
	}
}

func TestSpecForUnknownModel(t *testing.T) {
	if _, err := SpecFor(fakeModel{}); err == nil {
		t.Fatal("expected error for unknown model type")
	}
}

type fakeModel struct{}

func (fakeModel) NumParams() int                                 { return 0 }
func (fakeModel) InitParams(*rng.RNG) []float64                  { return nil }
func (fakeModel) Loss([]float64, *dataset.Dataset) float64       { return 0 }
func (fakeModel) Gradient([]float64, *dataset.Dataset) []float64 { return nil }
func (fakeModel) Predict(params []float64, x []float64) int      { return 0 }

func TestBuildUnknownKind(t *testing.T) {
	if _, err := (ModelSpec{Kind: "nope"}).Build(); err == nil {
		t.Fatal("expected error")
	}
	if _, err := (ModelSpec{Kind: "cnn"}).Build(); err == nil {
		t.Fatal("cnn without shape must fail")
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	cases := []struct {
		name string
		mut  func(string) string
	}{
		{"not json", func(s string) string { return "garbage" }},
		{"wrong version", func(s string) string { return strings.Replace(s, `"version":1`, `"version":9`, 1) }},
	}
	run := makeRun(t)
	var buf bytes.Buffer
	if err := SaveRun(&buf, run); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadRun(strings.NewReader(tc.mut(good))); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestLoadValidatesShapes(t *testing.T) {
	run := makeRun(t)
	// Truncate a local parameter vector: loading must fail.
	run.Rounds[1].Locals[0] = run.Rounds[1].Locals[0][:3]
	var buf bytes.Buffer
	if err := SaveRun(&buf, run); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRun(&buf); err == nil {
		t.Fatal("expected parameter-length validation error")
	}
}

func TestLoadValidatesSelection(t *testing.T) {
	run := makeRun(t)
	run.Rounds[0].Selected = []int{99}
	var buf bytes.Buffer
	if err := SaveRun(&buf, run); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRun(&buf); err == nil {
		t.Fatal("expected selection-index validation error")
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := &Report{Methods: map[string][]float64{
		"fedsv":    {1, 2, 3},
		"comfedsv": {1.1, 2.2, 2.9},
	}}
	var buf bytes.Buffer
	if err := SaveReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Methods) != 2 || loaded.Methods["fedsv"][1] != 2 {
		t.Fatalf("report round-trip lost data: %+v", loaded)
	}
}

func TestLoadReportRejectsGarbage(t *testing.T) {
	if _, err := LoadReport(strings.NewReader("{")); err == nil {
		t.Fatal("expected error")
	}
	if _, err := LoadReport(strings.NewReader(`{"version":3}`)); err == nil {
		t.Fatal("expected version error")
	}
}
