package persist

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"comfedsv/internal/dataset"
	"comfedsv/internal/fl"
	"comfedsv/internal/model"
	"comfedsv/internal/rng"
)

func storeRun(t *testing.T) *fl.Run {
	t.Helper()
	full := dataset.GenerateImages(dataset.MNISTLikeConfig(41), 4*15+30)
	g := rng.New(42)
	train, test := dataset.TrainTestSplit(full, float64(30)/float64(full.Len()), g)
	parts := dataset.PartitionIID(train, 4, g)
	m := model.NewLogisticRegression(full.Dim(), full.NumClasses)
	run, err := fl.TrainRun(fl.DefaultConfig(3, 2), m, parts, test)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestRunStoreRoundTrip(t *testing.T) {
	store, err := NewRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run := storeRun(t)

	const id = "run-0123456789abcdef"
	if store.HasRun(id) {
		t.Fatal("empty store claims to hold the run")
	}
	if err := store.SaveRun(id, run); err != nil {
		t.Fatal(err)
	}
	if !store.HasRun(id) {
		t.Fatal("saved run not found")
	}
	if _, err := store.ModTime(id); err != nil {
		t.Fatal(err)
	}

	loaded, err := store.LoadRun(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Final, run.Final) {
		t.Fatal("final model diverged across the round trip")
	}
	if len(loaded.Rounds) != len(run.Rounds) {
		t.Fatalf("loaded %d rounds, saved %d", len(loaded.Rounds), len(run.Rounds))
	}
	// The reloaded trace must evaluate identically — this is what makes a
	// recovered shared run byte-compatible with the original.
	if a, b := run.Utility(1, []int{0, 2}), loaded.Utility(1, []int{0, 2}); a != b {
		t.Fatalf("utility diverged across the round trip: %v vs %v", a, b)
	}

	ids, err := store.ListRuns()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != id {
		t.Fatalf("ListRuns = %v, want [%s]", ids, id)
	}

	if err := store.DeleteRun(id); err != nil {
		t.Fatal(err)
	}
	if store.HasRun(id) {
		t.Fatal("deleted run still present")
	}
	if err := store.DeleteRun(id); err != nil {
		t.Fatalf("double delete must be a no-op, got %v", err)
	}
}

func TestRunStoreRejectsInvalidIDs(t *testing.T) {
	store, err := NewRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run := storeRun(t)
	for _, id := range []string{"", ".hidden", "a/b", "x" + strings.Repeat("y", 200)} {
		if err := store.SaveRun(id, run); err == nil {
			t.Fatalf("SaveRun accepted invalid id %q", id)
		}
		if _, err := store.LoadRun(id); err == nil {
			t.Fatalf("LoadRun accepted invalid id %q", id)
		}
		if store.HasRun(id) {
			t.Fatalf("HasRun true for invalid id %q", id)
		}
	}
}

func TestRunStoreListSkipsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	store, err := NewRunStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveRun("run-real", storeRun(t)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"notes.txt", ".tmp-123", "x.report.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := store.ListRuns()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "run-real" {
		t.Fatalf("ListRuns = %v, want only run-real", ids)
	}
}
