package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"comfedsv/internal/faultinject"
	"comfedsv/internal/utility"
)

func cellBatch(t *testing.T, n int, cells ...utility.SnapshotCell) *utility.CellBatch {
	t.Helper()
	b := &utility.CellBatch{N: n, Cells: cells}
	b.Stamp()
	return b
}

func newCellStore(t *testing.T) *RunStore {
	t.Helper()
	store, err := NewRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func TestCellCacheRoundTrip(t *testing.T) {
	store := newCellStore(t)
	const id = "run-0123456789abcdef"
	if store.HasCells(id) {
		t.Fatal("empty store claims a sidecar")
	}
	if got, err := store.ReadCells(id); err != nil || got != nil {
		t.Fatalf("cold read = (%v, %v), want (nil, nil)", got, err)
	}
	b1 := cellBatch(t, 4, utility.SnapshotCell{Round: 0, Mask: 0b1, Value: 0.5})
	b2 := cellBatch(t, 4,
		utility.SnapshotCell{Round: 1, Mask: 0b11, Value: -0.25},
		utility.SnapshotCell{Round: 2, Mask: 0b101, Value: 1.5})
	if err := store.AppendCells(id, b1, "merge", nil); err != nil {
		t.Fatal(err)
	}
	if err := store.AppendCells(id, b2, "extract", nil); err != nil {
		t.Fatal(err)
	}
	if !store.HasCells(id) {
		t.Fatal("sidecar missing after append")
	}
	got, err := store.ReadCells(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[0].Cells) != 1 || len(got[1].Cells) != 2 {
		t.Fatalf("read back %d batches, want [1-cell, 2-cell]", len(got))
	}
	for i, b := range got {
		if err := b.Verify(); err != nil {
			t.Fatalf("batch %d failed digest verification after round trip: %v", i, err)
		}
	}
	if got[0].Cells[0].Value != 0.5 || got[1].Cells[1].Value != 1.5 {
		t.Fatal("cell values diverged across the round trip")
	}
}

func TestCellCacheEmptyAppendIsNoop(t *testing.T) {
	store := newCellStore(t)
	const id = "run-0123456789abcdef"
	if err := store.AppendCells(id, nil, "merge", nil); err != nil {
		t.Fatal(err)
	}
	if err := store.AppendCells(id, &utility.CellBatch{N: 4}, "merge", nil); err != nil {
		t.Fatal(err)
	}
	if store.HasCells(id) {
		t.Fatal("empty appends created a sidecar")
	}
}

func TestCellCacheRejectsBadRunID(t *testing.T) {
	store := newCellStore(t)
	b := cellBatch(t, 4, utility.SnapshotCell{Round: 0, Mask: 0b1, Value: 1})
	if err := store.AppendCells("../evil", b, "merge", nil); err == nil {
		t.Fatal("append accepted a path-traversal run id")
	}
	if _, err := store.ReadCells("../evil"); err == nil {
		t.Fatal("read accepted a path-traversal run id")
	}
}

func TestCellCacheTornTailDropped(t *testing.T) {
	store := newCellStore(t)
	const id = "run-0123456789abcdef"
	b := cellBatch(t, 4, utility.SnapshotCell{Round: 0, Mask: 0b1, Value: 0.5})
	if err := store.AppendCells(id, b, "merge", nil); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a trailing fragment with no newline.
	path := filepath.Join(store.Dir(), id+cellsSuffix)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"n":4,"cells":[{"round":1,`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := store.ReadCells(id)
	if err != nil {
		t.Fatalf("torn tail must not be corruption: %v", err)
	}
	if len(got) != 1 || len(got[0].Cells) != 1 {
		t.Fatalf("read %d batches, want the 1 durable batch", len(got))
	}
}

func TestCellCacheCompleteBadLineIsCorrupt(t *testing.T) {
	store := newCellStore(t)
	const id = "run-0123456789abcdef"
	b := cellBatch(t, 4, utility.SnapshotCell{Round: 0, Mask: 0b1, Value: 0.5})
	if err := store.AppendCells(id, b, "merge", nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(store.Dir(), id+cellsSuffix)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("not json at all\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := store.ReadCells(id); !errors.Is(err, ErrCorruptCellCache) {
		t.Fatalf("err = %v, want ErrCorruptCellCache", err)
	}

	// Quarantine: the sidecar moves aside, the cache reads cold again.
	dst, err := store.QuarantineCells(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dst); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
	if store.HasCells(id) {
		t.Fatal("sidecar still present after quarantine")
	}
	if got, err := store.ReadCells(id); err != nil || got != nil {
		t.Fatalf("post-quarantine read = (%v, %v), want cold (nil, nil)", got, err)
	}
	// A fresh append starts a clean sidecar.
	if err := store.AppendCells(id, b, "merge", nil); err != nil {
		t.Fatal(err)
	}
	if got, err := store.ReadCells(id); err != nil || len(got) != 1 {
		t.Fatalf("fresh sidecar read = (%d batches, %v), want 1 batch", len(got), err)
	}
}

func TestRemoveCellsAndDeleteRun(t *testing.T) {
	store := newCellStore(t)
	run := storeRun(t)
	const id = "run-0123456789abcdef"
	if err := store.SaveRun(id, run); err != nil {
		t.Fatal(err)
	}
	b := cellBatch(t, 4, utility.SnapshotCell{Round: 0, Mask: 0b1, Value: 0.5})
	if err := store.AppendCells(id, b, "merge", nil); err != nil {
		t.Fatal(err)
	}
	// Plant a quarantined copy too.
	if err := os.WriteFile(filepath.Join(store.Dir(), id+cellsCorruptSuffix), []byte("x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := store.DeleteRun(id); err != nil {
		t.Fatal(err)
	}
	if store.HasCells(id) {
		t.Fatal("DeleteRun left the sidecar behind")
	}
	if _, err := os.Stat(filepath.Join(store.Dir(), id+cellsCorruptSuffix)); !os.IsNotExist(err) {
		t.Fatal("DeleteRun left the quarantined copy behind")
	}
	// Removing again is not an error.
	if err := store.RemoveCells(id); err != nil {
		t.Fatal(err)
	}
}

func TestAppendCellsCrashBeforeLeavesNoBatch(t *testing.T) {
	store := newCellStore(t)
	const id = "run-0123456789abcdef"
	b := cellBatch(t, 4, utility.SnapshotCell{Round: 0, Mask: 0b1, Value: 0.5})
	hook := faultinject.CrashNth(faultinject.OpCellsBefore, "merge", 1)
	if err := store.AppendCells(id, b, "merge", hook); !errors.Is(err, faultinject.ErrCrash) {
		t.Fatalf("err = %v, want ErrCrash", err)
	}
	if store.HasCells(id) {
		t.Fatal("crash before the write still produced a sidecar")
	}
}

func TestAppendCellsCrashAfterKeepsBatch(t *testing.T) {
	store := newCellStore(t)
	const id = "run-0123456789abcdef"
	b := cellBatch(t, 4, utility.SnapshotCell{Round: 0, Mask: 0b1, Value: 0.5})
	hook := faultinject.CrashNth(faultinject.OpCellsAfter, "merge", 1)
	if err := store.AppendCells(id, b, "merge", hook); !errors.Is(err, faultinject.ErrCrash) {
		t.Fatalf("err = %v, want ErrCrash", err)
	}
	got, err := store.ReadCells(id)
	if err != nil || len(got) != 1 {
		t.Fatalf("crash after fsync lost the batch: (%d batches, %v)", len(got), err)
	}
}

func TestAppendCellsHookStages(t *testing.T) {
	store := newCellStore(t)
	const id = "run-0123456789abcdef"
	b := cellBatch(t, 4, utility.SnapshotCell{Round: 0, Mask: 0b1, Value: 0.5})
	var points []faultinject.Point
	hook := func(p faultinject.Point) error {
		points = append(points, p)
		return nil
	}
	if err := store.AppendCells(id, b, "extract", hook); err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(points))
	}
	if points[0].Op != faultinject.OpCellsBefore || points[1].Op != faultinject.OpCellsAfter {
		t.Fatalf("hook ops = %s, %s", points[0].Op, points[1].Op)
	}
	for _, p := range points {
		if p.Stage != "extract" || p.JobID != id || p.Shard != -1 {
			t.Fatalf("hook point %+v, want stage extract, job %s, shard -1", p, id)
		}
	}
}
