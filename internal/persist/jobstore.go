package persist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"comfedsv/internal/fl"
)

// JobStore persists per-job artifacts — training runs and valuation
// reports — under a directory, keyed by job ID. It is the disk-backed half
// of the comfedsvd result store: the service keeps finished reports in
// memory and mirrors them here so completed jobs survive restarts. Writes
// are atomic (temp file + rename), so a crashed writer never leaves a
// half-written artifact behind a valid name.
//
// A JobStore is safe for concurrent use by multiple goroutines as long as
// no two writers target the same job ID, which the service's one-worker-
// per-job discipline guarantees.
type JobStore struct {
	dir string
}

const (
	runSuffix    = ".run.json"
	reportSuffix = ".report.json"
)

// NewJobStore opens (creating if needed) a job store rooted at dir.
func NewJobStore(dir string) (*JobStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("persist: empty job store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating job store: %w", err)
	}
	return &JobStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *JobStore) Dir() string { return s.dir }

// ValidJobID reports whether id is usable as a job key: non-empty, at most
// 128 bytes, and limited to [A-Za-z0-9._-] with no leading dot — which
// keeps every key a single safe file-name component.
func ValidJobID(id string) bool {
	if id == "" || len(id) > 128 || id[0] == '.' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

func (s *JobStore) path(id, suffix string) (string, error) {
	if !ValidJobID(id) {
		return "", fmt.Errorf("persist: invalid job id %q", id)
	}
	return filepath.Join(s.dir, id+suffix), nil
}

// writeAtomic writes a file under dir via temp file + fsync + rename, so a
// crashed writer never leaves a half-written artifact behind a valid name.
// Shared by JobStore and RunStore.
func writeAtomic(dir, path string, write func(*os.File) error) error {
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	// Flush data before the rename: on common filesystems a rename can
	// survive a crash that the unsynced data does not, which would leave a
	// truncated artifact behind a valid name.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-completed rename or remove of an
// entry in it is durable. A failure is surfaced, never swallowed: an
// unsynced directory update can be undone by a crash, resurrecting a
// name the caller believes is gone or losing one it believes exists.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: opening directory for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("persist: syncing directory: %w", err)
	}
	return nil
}

// SaveJobRun persists the training trace of job id.
func (s *JobStore) SaveJobRun(id string, run *fl.Run) error {
	path, err := s.path(id, runSuffix)
	if err != nil {
		return err
	}
	return writeAtomic(s.dir, path, func(f *os.File) error { return SaveRun(f, run) })
}

// LoadJobRun reads the training trace of job id.
func (s *JobStore) LoadJobRun(id string) (*fl.Run, error) {
	path, err := s.path(id, runSuffix)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	return LoadRun(f)
}

// SaveJobReport persists a valuation report for job id. The report may be
// any JSON-encodable value; the service stores comfedsv.Report. Go's JSON
// encoder emits shortest-round-trip float literals, so valuations survive
// a save/load cycle bit-identical.
func (s *JobStore) SaveJobReport(id string, report any) error {
	path, err := s.path(id, reportSuffix)
	if err != nil {
		return err
	}
	return writeAtomic(s.dir, path, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return fmt.Errorf("persist: encoding report: %w", err)
		}
		return nil
	})
}

// LoadJobReport reads the report of job id into out.
func (s *JobStore) LoadJobReport(id string, out any) error {
	path, err := s.path(id, reportSuffix)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(out); err != nil {
		return fmt.Errorf("persist: decoding report: %w", err)
	}
	return nil
}

// ReportModTime returns the modification time of job id's stored report —
// a stand-in for submission/completion times when recovering jobs from a
// previous process.
func (s *JobStore) ReportModTime(id string) (time.Time, error) {
	path, err := s.path(id, reportSuffix)
	if err != nil {
		return time.Time{}, err
	}
	info, err := os.Stat(path)
	if err != nil {
		return time.Time{}, fmt.Errorf("persist: %w", err)
	}
	return info.ModTime(), nil
}

// HasJobReport reports whether a report exists for job id.
func (s *JobStore) HasJobReport(id string) bool {
	path, err := s.path(id, reportSuffix)
	if err != nil {
		return false
	}
	_, err = os.Stat(path)
	return err == nil
}

// ListJobReports returns the sorted IDs of all jobs with a stored report.
func (s *JobStore) ListJobReports() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, reportSuffix) {
			continue
		}
		id := strings.TrimSuffix(name, reportSuffix)
		if ValidJobID(id) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// DeleteJob removes every artifact stored for job id — trace, report,
// journal, and any quarantined journal. Missing artifacts are not an
// error.
func (s *JobStore) DeleteJob(id string) error {
	for _, suffix := range []string{runSuffix, reportSuffix, journalSuffix, corruptSuffix} {
		path, err := s.path(id, suffix)
		if err != nil {
			return err
		}
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("persist: %w", err)
		}
	}
	return syncDir(s.dir)
}
