package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"comfedsv/internal/fl"
)

// RunStore persists shared training runs under a directory, keyed by run
// ID. It is the disk half of the comfedsvd run registry: run IDs are
// content-addressed (a hash of the training spec, computed by the service
// layer), so the same spec always lands on the same file, a restarted
// daemon recovers every persisted run by scanning the directory, and
// re-registering an already-trained spec is a no-op. Writes are atomic and
// fsynced (temp file + sync + rename), so a crashed writer never leaves a
// truncated trace behind a valid name.
//
// A RunStore is safe for concurrent use as long as no two writers target
// the same run ID — which content addressing plus the service's
// train-once-per-ID discipline guarantees.
type RunStore struct {
	dir string
}

// NewRunStore opens (creating if needed) a run store rooted at dir.
func NewRunStore(dir string) (*RunStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("persist: empty run store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating run store: %w", err)
	}
	return &RunStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *RunStore) Dir() string { return s.dir }

// path validates the ID (run IDs obey the same single-file-component rules
// as job IDs) and returns the run file path.
func (s *RunStore) path(id string) (string, error) {
	if !ValidJobID(id) {
		return "", fmt.Errorf("persist: invalid run id %q", id)
	}
	return filepath.Join(s.dir, id+runSuffix), nil
}

// SaveRun persists the training trace under the given run ID.
func (s *RunStore) SaveRun(id string, run *fl.Run) error {
	path, err := s.path(id)
	if err != nil {
		return err
	}
	return writeAtomic(s.dir, path, func(f *os.File) error { return SaveRun(f, run) })
}

// LoadRun reads the training trace stored under the given run ID.
func (s *RunStore) LoadRun(id string) (*fl.Run, error) {
	path, err := s.path(id)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	return LoadRun(f)
}

// HasRun reports whether a trace exists for the given run ID.
func (s *RunStore) HasRun(id string) bool {
	path, err := s.path(id)
	if err != nil {
		return false
	}
	_, err = os.Stat(path)
	return err == nil
}

// ModTime returns the modification time of the stored trace — a stand-in
// for the training time when recovering runs from a previous process.
func (s *RunStore) ModTime(id string) (time.Time, error) {
	path, err := s.path(id)
	if err != nil {
		return time.Time{}, err
	}
	info, err := os.Stat(path)
	if err != nil {
		return time.Time{}, fmt.Errorf("persist: %w", err)
	}
	return info.ModTime(), nil
}

// ListRuns returns the sorted IDs of every stored run.
func (s *RunStore) ListRuns() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, runSuffix) {
			continue
		}
		id := strings.TrimSuffix(name, runSuffix)
		if ValidJobID(id) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// DeleteRun removes the stored trace along with the run's cell-cache
// sidecar and any quarantined copy — cached cells are meaningless without
// their trace. Missing files are not an error.
func (s *RunStore) DeleteRun(id string) error {
	path, err := s.path(id)
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("persist: %w", err)
	}
	return s.RemoveCells(id)
}
