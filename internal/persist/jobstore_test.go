package persist

import (
	"encoding/json"
	"reflect"
	"testing"
)

// reportPayload mirrors the fields of comfedsv.Report the service persists
// (the root package cannot be imported here without inverting the
// dependency direction, and the store is schema-agnostic by design).
type reportPayload struct {
	FedSV     []float64 `json:"fedsv"`
	ComFedSV  []float64 `json:"comfedsv"`
	FinalLoss float64   `json:"final_test_loss"`
	Calls     int       `json:"utility_calls"`
}

func TestJobStoreRunRoundTrip(t *testing.T) {
	store, err := NewJobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run := makeRun(t)
	if err := store.SaveJobRun("job-1", run); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.LoadJobRun("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run.Final, loaded.Final) {
		t.Fatal("final model changed across job-store round trip")
	}
	if len(loaded.Rounds) != len(run.Rounds) {
		t.Fatalf("loaded %d rounds, want %d", len(loaded.Rounds), len(run.Rounds))
	}
	for i := range run.Rounds {
		if !reflect.DeepEqual(run.Rounds[i].Locals, loaded.Rounds[i].Locals) {
			t.Fatalf("round %d locals changed across round trip", i)
		}
	}
}

func TestJobStoreReportRoundTripBitIdentical(t *testing.T) {
	store, err := NewJobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep := reportPayload{
		FedSV:     []float64{0.1, -0.25, 1.0 / 3.0, 1e-17},
		ComFedSV:  []float64{0.30000000000000004, 2.718281828459045},
		FinalLoss: 0.6931471805599453,
		Calls:     42,
	}
	if err := store.SaveJobReport("job-2", rep); err != nil {
		t.Fatal(err)
	}
	if !store.HasJobReport("job-2") {
		t.Fatal("HasJobReport = false after save")
	}
	var got reportPayload
	if err := store.LoadJobReport("job-2", &got); err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(rep)
	gotJSON, _ := json.Marshal(got)
	if string(want) != string(gotJSON) {
		t.Fatalf("report not byte-identical after round trip:\n save: %s\n load: %s", want, gotJSON)
	}
}

func TestJobStoreListAndDelete(t *testing.T) {
	store, err := NewJobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"b", "a", "c"} {
		if err := store.SaveJobReport(id, reportPayload{}); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := store.ListJobReports()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"a", "b", "c"}) {
		t.Fatalf("ListJobReports = %v, want sorted [a b c]", ids)
	}
	if err := store.DeleteJob("b"); err != nil {
		t.Fatal(err)
	}
	if store.HasJobReport("b") {
		t.Fatal("report survives DeleteJob")
	}
	if err := store.DeleteJob("b"); err != nil {
		t.Fatal("deleting a missing job must be a no-op, got", err)
	}
}

func TestJobStoreRejectsBadIDs(t *testing.T) {
	store, err := NewJobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "..", "../evil", "a/b", "a b", ".hidden", "job\x00"} {
		if ValidJobID(id) {
			t.Errorf("ValidJobID(%q) = true, want false", id)
		}
		if err := store.SaveJobReport(id, reportPayload{}); err == nil {
			t.Errorf("SaveJobReport accepted bad id %q", id)
		}
		if err := store.LoadJobReport(id, &reportPayload{}); err == nil {
			t.Errorf("LoadJobReport accepted bad id %q", id)
		}
	}
	for _, id := range []string{"job-1", "A.b_c-9"} {
		if !ValidJobID(id) {
			t.Errorf("ValidJobID(%q) = false, want true", id)
		}
	}
}
