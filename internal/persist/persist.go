// Package persist serializes federated training runs and valuation reports
// to JSON, so that valuation can run offline from a recorded trace: a
// server records the run once (cmd/fedsim -save) and analysts recompute
// FedSV / ComFedSV / baselines later without retraining
// (cmd/datavalue -run).
package persist

import (
	"encoding/json"
	"fmt"
	"io"

	"comfedsv/internal/dataset"
	"comfedsv/internal/fl"
	"comfedsv/internal/model"
)

// FormatVersion identifies the on-disk schema; bumped on breaking changes.
const FormatVersion = 1

// ModelSpec describes how to reconstruct a model.Model.
type ModelSpec struct {
	Kind    string              `json:"kind"` // "logreg", "mlp", or "cnn"
	Dim     int                 `json:"dim,omitempty"`
	Hidden  int                 `json:"hidden,omitempty"`
	Classes int                 `json:"classes"`
	Filters int                 `json:"filters,omitempty"`
	Shape   *dataset.ImageShape `json:"shape,omitempty"`
}

// SpecFor derives the spec of a known model type. It returns an error for
// model implementations this package cannot round-trip.
func SpecFor(m model.Model) (ModelSpec, error) {
	switch mm := m.(type) {
	case *model.LogisticRegression:
		return ModelSpec{Kind: "logreg", Dim: mm.Dim, Classes: mm.Classes}, nil
	case *model.MLP:
		return ModelSpec{Kind: "mlp", Dim: mm.Dim, Hidden: mm.Hidden, Classes: mm.Classes}, nil
	case *model.CNN:
		shape := mm.Shape
		return ModelSpec{Kind: "cnn", Filters: mm.Filters, Classes: mm.Classes, Shape: &shape}, nil
	default:
		return ModelSpec{}, fmt.Errorf("persist: unsupported model type %T", m)
	}
}

// Build reconstructs the model described by the spec.
func (s ModelSpec) Build() (model.Model, error) {
	switch s.Kind {
	case "logreg":
		return model.NewLogisticRegression(s.Dim, s.Classes), nil
	case "mlp":
		return model.NewMLP(s.Dim, s.Hidden, s.Classes), nil
	case "cnn":
		if s.Shape == nil {
			return nil, fmt.Errorf("persist: cnn spec without shape")
		}
		return model.NewCNN(*s.Shape, s.Filters, s.Classes), nil
	default:
		return nil, fmt.Errorf("persist: unknown model kind %q", s.Kind)
	}
}

// datasetFile is the JSON form of a dataset.
type datasetFile struct {
	X          [][]float64         `json:"x"`
	Y          []int               `json:"y"`
	NumClasses int                 `json:"num_classes"`
	Shape      *dataset.ImageShape `json:"shape,omitempty"`
}

func toDatasetFile(d *dataset.Dataset) datasetFile {
	return datasetFile{X: d.X, Y: d.Y, NumClasses: d.NumClasses, Shape: d.Shape}
}

func (f datasetFile) toDataset() (*dataset.Dataset, error) {
	d := &dataset.Dataset{X: f.X, Y: f.Y, NumClasses: f.NumClasses, Shape: f.Shape}
	if d.X == nil {
		d.X = [][]float64{}
	}
	if d.Y == nil {
		d.Y = []int{}
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("persist: invalid dataset: %w", err)
	}
	return d, nil
}

// roundFile is the JSON form of one recorded round.
type roundFile struct {
	Global       []float64   `json:"global"`
	Locals       [][]float64 `json:"locals"`
	Selected     []int       `json:"selected"`
	TestLoss     float64     `json:"test_loss"`
	LearningRate float64     `json:"learning_rate"`
}

// runFile is the JSON schema of a full training trace.
type runFile struct {
	Version int           `json:"version"`
	Model   ModelSpec     `json:"model"`
	Test    datasetFile   `json:"test"`
	Clients []datasetFile `json:"clients"`
	Rounds  []roundFile   `json:"rounds"`
	Final   []float64     `json:"final"`
}

// SaveRun writes the run as JSON.
func SaveRun(w io.Writer, run *fl.Run) error {
	spec, err := SpecFor(run.Model)
	if err != nil {
		return err
	}
	f := runFile{
		Version: FormatVersion,
		Model:   spec,
		Test:    toDatasetFile(run.Test),
		Final:   run.Final,
	}
	for _, c := range run.Clients {
		f.Clients = append(f.Clients, toDatasetFile(c))
	}
	for _, rd := range run.Rounds {
		f.Rounds = append(f.Rounds, roundFile{
			Global:       rd.Global,
			Locals:       rd.Locals,
			Selected:     rd.Selected,
			TestLoss:     rd.TestLoss,
			LearningRate: rd.LearningRate,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// LoadRun reads a run previously written by SaveRun and validates its
// internal consistency (parameter lengths, selection indices, shapes).
func LoadRun(r io.Reader) (*fl.Run, error) {
	var f runFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("persist: decoding run: %w", err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("persist: unsupported format version %d (want %d)", f.Version, FormatVersion)
	}
	m, err := f.Model.Build()
	if err != nil {
		return nil, err
	}
	test, err := f.Test.toDataset()
	if err != nil {
		return nil, fmt.Errorf("persist: test set: %w", err)
	}
	run := &fl.Run{Model: m, Test: test, Final: f.Final}
	for i, cf := range f.Clients {
		c, err := cf.toDataset()
		if err != nil {
			return nil, fmt.Errorf("persist: client %d: %w", i, err)
		}
		run.Clients = append(run.Clients, c)
	}
	n := len(run.Clients)
	p := m.NumParams()
	if len(f.Final) != p {
		return nil, fmt.Errorf("persist: final model has %d params, model wants %d", len(f.Final), p)
	}
	for t, rf := range f.Rounds {
		if len(rf.Global) != p {
			return nil, fmt.Errorf("persist: round %d global has %d params, want %d", t, len(rf.Global), p)
		}
		if len(rf.Locals) != n {
			return nil, fmt.Errorf("persist: round %d has %d locals, want %d", t, len(rf.Locals), n)
		}
		for i, l := range rf.Locals {
			if len(l) != p {
				return nil, fmt.Errorf("persist: round %d client %d has %d params, want %d", t, i, len(l), p)
			}
		}
		for _, s := range rf.Selected {
			if s < 0 || s >= n {
				return nil, fmt.Errorf("persist: round %d selects client %d of %d", t, s, n)
			}
		}
		run.Rounds = append(run.Rounds, fl.Round{
			Global:       rf.Global,
			Locals:       rf.Locals,
			Selected:     rf.Selected,
			TestLoss:     rf.TestLoss,
			LearningRate: rf.LearningRate,
		})
	}
	if len(run.Rounds) == 0 {
		return nil, fmt.Errorf("persist: run has no rounds")
	}
	return run, nil
}

// Report is the JSON form of a valuation report produced by cmd/datavalue.
type Report struct {
	Version int                  `json:"version"`
	Methods map[string][]float64 `json:"methods"`
}

// SaveReport writes a valuation report as JSON.
func SaveReport(w io.Writer, rep *Report) error {
	rep.Version = FormatVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// LoadReport reads a valuation report.
func LoadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("persist: decoding report: %w", err)
	}
	if rep.Version != FormatVersion {
		return nil, fmt.Errorf("persist: unsupported report version %d", rep.Version)
	}
	return &rep, nil
}
