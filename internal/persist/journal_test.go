package persist

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"comfedsv/internal/faultinject"
)

func newTestStore(t *testing.T) *JobStore {
	t.Helper()
	s, err := NewJobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func submitRec(t *testing.T) JournalRecord {
	t.Helper()
	req, err := json.Marshal(map[string]any{"run_id": "run-abc"})
	if err != nil {
		t.Fatal(err)
	}
	return JournalRecord{Type: RecSubmit, Request: req}
}

func TestJournalAppendReadRoundTrip(t *testing.T) {
	s := newTestStore(t)
	j, err := s.OpenJournal("job-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := []JournalRecord{
		submitRec(t),
		{Type: RecTask, Stage: "prepare", Shards: 4},
		{Type: RecTask, Stage: "observe", Shard: 2, Digest: "deadbeef"},
		{Type: RecTask, Stage: "complete", Shards: 2},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadJournal("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	if got[2].Stage != "observe" || got[2].Shard != 2 || got[2].Digest != "deadbeef" {
		t.Fatalf("observe record mangled: %+v", got[2])
	}
	if string(got[0].Request) != string(recs[0].Request) {
		t.Fatalf("submit payload mangled: %s", got[0].Request)
	}
}

func TestJournalTornTrailingWriteIsDropped(t *testing.T) {
	s := newTestStore(t)
	j, err := s.OpenJournal("job-torn", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(submitRec(t)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalRecord{Type: RecTask, Stage: "prepare", Shards: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Simulate a crash mid-append: a partial record with no newline.
	path := filepath.Join(s.Dir(), "job-torn.journal")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"task","st`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := s.ReadJournal("job-torn")
	if err != nil {
		t.Fatalf("torn tail must not be corruption: %v", err)
	}
	if len(got) != 2 || got[1].Stage != "prepare" {
		t.Fatalf("want the 2 durable records, got %+v", got)
	}
}

func TestJournalCompleteGarbageLineIsCorrupt(t *testing.T) {
	s := newTestStore(t)
	j, err := s.OpenJournal("job-bad", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(submitRec(t)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	path := filepath.Join(s.Dir(), "job-bad.journal")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Newline-terminated garbage is a durable-but-unreadable record:
	// corruption, not a torn tail.
	if _, err := f.WriteString("###garbage###\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := s.ReadJournal("job-bad"); !errors.Is(err, ErrCorruptJournal) {
		t.Fatalf("want ErrCorruptJournal, got %v", err)
	}
}

func TestJournalMissingSubmitIsCorrupt(t *testing.T) {
	s := newTestStore(t)
	j, err := s.OpenJournal("job-nosubmit", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalRecord{Type: RecTask, Stage: "prepare"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := s.ReadJournal("job-nosubmit"); !errors.Is(err, ErrCorruptJournal) {
		t.Fatalf("want ErrCorruptJournal for journal without submit, got %v", err)
	}
}

func TestJournalEmptyIsNotCorrupt(t *testing.T) {
	// A journal with no durable records is a process that died before its
	// first fsync — the job never durably existed. Recovery forgets it.
	s := newTestStore(t)
	j, err := s.OpenJournal("job-empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	recs, err := s.ReadJournal("job-empty")
	if err != nil || recs != nil {
		t.Fatalf("empty journal must read as (nil, nil), got %v, %v", recs, err)
	}
}

func TestQuarantineJournal(t *testing.T) {
	s := newTestStore(t)
	j, err := s.OpenJournal("job-q", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(submitRec(t)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	dst, err := s.QuarantineJournal("job-q", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(dst, ".journal.corrupt") {
		t.Fatalf("quarantine path %q lacks the .corrupt suffix", dst)
	}
	if s.HasJournal("job-q") {
		t.Fatal("quarantined journal still listed as live")
	}
	if _, err := os.Stat(dst); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	ids, err := s.ListJournals()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("quarantined journal must not be listed, got %v", ids)
	}
}

func TestListJournalsAndRemove(t *testing.T) {
	s := newTestStore(t)
	for _, id := range []string{"b-job", "a-job"} {
		j, err := s.OpenJournal(id, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(submitRec(t)); err != nil {
			t.Fatal(err)
		}
		j.Close()
	}
	ids, err := s.ListJournals()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "a-job" || ids[1] != "b-job" {
		t.Fatalf("ListJournals = %v, want sorted [a-job b-job]", ids)
	}
	if err := s.RemoveJournal("a-job"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveJournal("a-job"); err != nil {
		t.Fatalf("removing a missing journal must be a no-op, got %v", err)
	}
	if s.HasJournal("a-job") || !s.HasJournal("b-job") {
		t.Fatal("remove deleted the wrong journal")
	}
}

func TestJournalCrashBeforeAppendLosesRecord(t *testing.T) {
	s := newTestStore(t)
	hook := faultinject.CrashNth(faultinject.OpJournalBefore, "prepare", 1)
	j, err := s.OpenJournal("job-cb", hook)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(submitRec(t)); err != nil {
		t.Fatal(err)
	}
	err = j.Append(JournalRecord{Type: RecTask, Stage: "prepare", Shards: 1})
	if !errors.Is(err, faultinject.ErrCrash) {
		t.Fatalf("want ErrCrash, got %v", err)
	}
	// The journal is dead: further appends fail without touching disk.
	if err := j.Append(JournalRecord{Type: RecTask, Stage: "observe"}); !errors.Is(err, faultinject.ErrCrash) {
		t.Fatalf("dead journal accepted an append: %v", err)
	}
	j.Close()
	got, err := s.ReadJournal("job-cb")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Type != RecSubmit {
		t.Fatalf("crash-before must lose the record; journal holds %+v", got)
	}
}

func TestJournalCrashAfterAppendKeepsRecord(t *testing.T) {
	s := newTestStore(t)
	hook := faultinject.CrashNth(faultinject.OpJournalAfter, "prepare", 1)
	j, err := s.OpenJournal("job-ca", hook)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(submitRec(t)); err != nil {
		t.Fatal(err)
	}
	err = j.Append(JournalRecord{Type: RecTask, Stage: "prepare", Shards: 1})
	if !errors.Is(err, faultinject.ErrCrash) {
		t.Fatalf("want ErrCrash, got %v", err)
	}
	j.Close()
	got, err := s.ReadJournal("job-ca")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Stage != "prepare" {
		t.Fatalf("crash-after must keep the record; journal holds %+v", got)
	}
}

func TestDeleteJobRemovesJournalArtifacts(t *testing.T) {
	s := newTestStore(t)
	j, err := s.OpenJournal("job-del", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(submitRec(t)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := s.SaveJobReport("job-del", map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	// A quarantined sibling should go too.
	j2, err := s.OpenJournal("job-del2", nil)
	if err != nil {
		t.Fatal(err)
	}
	j2.Append(submitRec(t))
	j2.Close()
	if _, err := s.QuarantineJournal("job-del2", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteJob("job-del"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteJob("job-del2"); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("DeleteJob left artifacts behind: %v", names)
	}
}
