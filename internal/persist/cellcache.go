package persist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"comfedsv/internal/faultinject"
	"comfedsv/internal/utility"
)

// Cell-cache sidecar suffixes. Each run may carry a `<runID>.cells` file
// next to its trace: an append-only log of utility.CellBatch JSON lines,
// the durable half of the run-scoped utility-cell cache.
const (
	cellsSuffix        = ".cells"
	cellsCorruptSuffix = ".cells.corrupt"
)

// ErrCorruptCellCache reports a cell-cache sidecar whose decoded prefix is
// unusable: a complete (newline-terminated) batch line that does not
// parse. A torn trailing line with no newline is NOT corruption — that is
// exactly what a crash mid-append leaves behind, and a read drops it and
// returns the durable prefix. Digest mismatches inside a well-formed batch
// are the evaluator's to detect at preload time; either way the caller's
// remedy is QuarantineCells and a cold start, never a failed job.
var ErrCorruptCellCache = errors.New("persist: corrupt cell cache")

func (s *RunStore) cellsPath(id, suffix string) (string, error) {
	if !ValidJobID(id) {
		return "", fmt.Errorf("persist: invalid run id %q", id)
	}
	return filepath.Join(s.dir, id+suffix), nil
}

// AppendCells durably appends one batch of evaluated cells to run id's
// sidecar: marshal to a single JSON line, one write, fsync. The hook, if
// non-nil, is consulted before and after the write (faultinject
// OpCellsBefore / OpCellsAfter — the crash points of the sidecar chaos
// sweep) with the given stage naming the flush boundary; pass nil in
// production. An empty or nil batch is a no-op.
func (s *RunStore) AppendCells(id string, b *utility.CellBatch, stage string, hook faultinject.Hook) error {
	if b == nil || len(b.Cells) == 0 {
		return nil
	}
	path, err := s.cellsPath(id, cellsSuffix)
	if err != nil {
		return err
	}
	line, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("persist: encoding cell batch: %w", err)
	}
	line = append(line, '\n')
	if hook != nil {
		if err := hook(faultinject.Point{Op: faultinject.OpCellsBefore, Stage: stage, Shard: -1, JobID: id}); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("persist: opening cell cache: %w", err)
	}
	if _, err := f.Write(line); err != nil {
		f.Close()
		return fmt.Errorf("persist: appending cell batch: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: syncing cell cache: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: closing cell cache: %w", err)
	}
	if hook != nil {
		if err := hook(faultinject.Point{Op: faultinject.OpCellsAfter, Stage: stage, Shard: -1, JobID: id}); err != nil {
			return err
		}
	}
	return nil
}

// ReadCells decodes run id's cell-cache sidecar into its durable batches.
// A missing sidecar returns (nil, nil) — a cold cache, not an error. A
// torn trailing line (a crash mid-append) is dropped silently; any
// complete line that fails to decode returns ErrCorruptCellCache so the
// caller can quarantine the file and degrade to cold-cache evaluation.
// Batch digests are NOT verified here — the evaluator's Preload does that
// against the run it actually serves.
func (s *RunStore) ReadCells(id string) ([]*utility.CellBatch, error) {
	path, err := s.cellsPath(id, cellsSuffix)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("persist: reading cell cache: %w", err)
	}
	// Only newline-terminated lines are durable batches; a trailing
	// fragment is the torn write of a dying process, not corruption.
	if i := bytes.LastIndexByte(data, '\n'); i < 0 {
		data = nil
	} else {
		data = data[:i+1]
	}
	var batches []*utility.CellBatch
	for lineNo, line := range bytes.Split(data, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		b := new(utility.CellBatch)
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(b); err != nil {
			return nil, fmt.Errorf("%w: %s line %d: %v", ErrCorruptCellCache, id, lineNo+1, err)
		}
		batches = append(batches, b)
	}
	return batches, nil
}

// HasCells reports whether a cell-cache sidecar exists for run id.
func (s *RunStore) HasCells(id string) bool {
	path, err := s.cellsPath(id, cellsSuffix)
	if err != nil {
		return false
	}
	_, err = os.Stat(path)
	return err == nil
}

// QuarantineCells renames run id's sidecar to its .corrupt name so a
// damaged cache stops poisoning every warm start but stays available for
// inspection, then fsyncs the directory. The next writer starts a fresh
// sidecar; the next reader sees a cold cache. It returns the quarantine
// path.
func (s *RunStore) QuarantineCells(id string) (string, error) {
	path, err := s.cellsPath(id, cellsSuffix)
	if err != nil {
		return "", err
	}
	dst, err := s.cellsPath(id, cellsCorruptSuffix)
	if err != nil {
		return "", err
	}
	if err := os.Rename(path, dst); err != nil {
		return "", fmt.Errorf("persist: quarantining cell cache: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return "", err
	}
	return dst, nil
}

// RemoveCells deletes run id's sidecar and any quarantined copy. Missing
// files are not an error.
func (s *RunStore) RemoveCells(id string) error {
	for _, suffix := range []string{cellsSuffix, cellsCorruptSuffix} {
		path, err := s.cellsPath(id, suffix)
		if err != nil {
			return err
		}
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("persist: %w", err)
		}
	}
	return syncDir(s.dir)
}
