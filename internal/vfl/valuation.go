package vfl

import (
	"fmt"

	"comfedsv/internal/mc"
	"comfedsv/internal/rng"
	"comfedsv/internal/shapley"
)

// Config controls a vertical training + valuation run.
type Config struct {
	// Rounds is the number of coordinated gradient rounds T.
	Rounds int
	// PartiesPerRound is how many parties refresh their block per round
	// (the vertical analogue of client selection; the others keep stale
	// blocks, so the coordinator only observes utilities for coalitions of
	// refreshed parties).
	PartiesPerRound int
	// LearningRate is the gradient step size.
	LearningRate float64
	// Rank is the matrix-completion rank for ComFedSV.
	Rank int
	// Seed makes the run deterministic.
	Seed int64
}

// DefaultConfig returns a setting that converges on the bundled synthetic
// vertical tasks.
func DefaultConfig(rounds, partiesPerRound int) Config {
	return Config{
		Rounds:          rounds,
		PartiesPerRound: partiesPerRound,
		LearningRate:    0.5,
		Rank:            3,
		Seed:            1,
	}
}

// Report holds the vertical valuations.
type Report struct {
	// FedSV is the per-round Shapley value over refreshed parties only
	// (the direct transplant of Definition 2).
	FedSV []float64
	// ComFedSV is the completed variant: unobserved coalition utilities
	// are filled by low-rank completion before the Shapley computation.
	ComFedSV []float64
	// FinalTestLoss is the test loss of the final full model.
	FinalTestLoss float64
}

// Value trains the split model and values every party. The per-round
// utility of a coalition S is
//
//	U_t(S) = ℓ(model_t restricted to S ∪ {bias}) − ℓ(model_{t+1} restricted to S ∪ {bias})
//
// i.e. how much this round's refresh of S's blocks improved the part of
// the model the coalition is responsible for.
func Value(p *Problem, cfg Config) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	mParties := len(p.Parties)
	if mParties > 14 {
		return nil, fmt.Errorf("vfl: exact valuation over 2^%d coalitions is infeasible", mParties)
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("vfl: rounds must be positive, got %d", cfg.Rounds)
	}
	if cfg.PartiesPerRound <= 0 || cfg.PartiesPerRound > mParties {
		return nil, fmt.Errorf("vfl: parties per round %d out of range [1,%d]", cfg.PartiesPerRound, mParties)
	}
	g := rng.New(cfg.Seed)
	model := NewModel(p, g.Split(1))
	selRNG := g.Split(2)

	cols := 1 << uint(mParties)
	type cell struct {
		t   int
		col int
		val float64
	}
	var observed []cell
	fullUtil := make([][]float64, cfg.Rounds) // ground truth per round, by mask

	for t := 0; t < cfg.Rounds; t++ {
		before := model.Clone()
		model.Step(p, cfg.LearningRate)

		// Selection: which parties' refresh the coordinator "sees" this
		// round (round 0 is full, Assumption 1).
		var selected []int
		if t == 0 {
			for i := 0; i < mParties; i++ {
				selected = append(selected, i)
			}
		} else {
			selected = selRNG.SampleWithoutReplacement(mParties, cfg.PartiesPerRound)
		}
		selMask := uint64(0)
		for _, s := range selected {
			selMask |= 1 << uint(s)
		}

		// Utilities of every coalition (ground truth) and the observed
		// subset (coalitions of selected parties).
		fullUtil[t] = make([]float64, cols)
		active := make([]bool, mParties)
		for mask := uint64(1); mask < uint64(cols); mask++ {
			for i := 0; i < mParties; i++ {
				active[i] = mask&(1<<uint(i)) != 0
			}
			u := before.Loss(p, active) - model.Loss(p, active)
			fullUtil[t][mask] = u
			if mask&^selMask == 0 { // mask ⊆ selected
				observed = append(observed, cell{t: t, col: int(mask), val: u})
			}
		}
	}

	report := &Report{FinalTestLoss: model.Loss(p, nil)}

	// FedSV transplant: exact Shapley per round over the observed
	// coalition lattice (round 0 full, later rounds only the selected).
	report.FedSV = make([]float64, mParties)
	for t := range fullUtil {
		// Recover this round's selection from the observation pattern.
		selMask := uint64(0)
		for _, c := range observed {
			if c.t == t {
				selMask |= uint64(c.col)
			}
		}
		members := maskMembers(selMask, mParties)
		k := len(members)
		if k == 0 {
			continue
		}
		sub := shapley.Exact(k, func(local uint64) float64 {
			var global uint64
			for b, party := range members {
				if local&(1<<uint(b)) != 0 {
					global |= 1 << uint(party)
				}
			}
			return fullUtil[t][global]
		})
		for b, party := range members {
			report.FedSV[party] += sub[b]
		}
	}

	// ComFedSV transplant: complete the T×(2^M−1) coalition-utility matrix
	// from the observed cells, then take the Shapley value of the summed
	// completed utilities.
	entries := make([]mc.Entry, len(observed))
	for i, c := range observed {
		entries[i] = mc.Entry{Row: c.t, Col: c.col - 1, Val: c.val}
	}
	res, err := mc.Complete(entries, cfg.Rounds, cols-1, mc.DefaultConfig(cfg.Rank))
	if err != nil {
		return nil, fmt.Errorf("vfl: completing coalition utilities: %w", err)
	}
	summed := make([]float64, cols)
	for mask := 1; mask < cols; mask++ {
		var s float64
		for t := 0; t < cfg.Rounds; t++ {
			s += res.Predict(t, mask-1)
		}
		summed[mask] = s
	}
	report.ComFedSV = shapley.Exact(mParties, func(mask uint64) float64 { return summed[mask] })
	return report, nil
}

// GroundTruthShapley computes the exact Shapley value of the summed true
// coalition utilities; exported for tests and the example.
func GroundTruthShapley(p *Problem, cfg Config) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	mParties := len(p.Parties)
	g := rng.New(cfg.Seed)
	model := NewModel(p, g.Split(1))
	cols := 1 << uint(mParties)
	summed := make([]float64, cols)
	active := make([]bool, mParties)
	for t := 0; t < cfg.Rounds; t++ {
		before := model.Clone()
		model.Step(p, cfg.LearningRate)
		for mask := uint64(1); mask < uint64(cols); mask++ {
			for i := 0; i < mParties; i++ {
				active[i] = mask&(1<<uint(i)) != 0
			}
			summed[mask] += before.Loss(p, active) - model.Loss(p, active)
		}
	}
	return shapley.Exact(mParties, func(mask uint64) float64 { return summed[mask] }), nil
}

func maskMembers(mask uint64, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}
