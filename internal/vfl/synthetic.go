package vfl

import (
	"comfedsv/internal/rng"
)

// SyntheticConfig parameterizes the bundled vertical task: a logistic
// model over the concatenation of all parties' blocks, where each party's
// block carries a configurable amount of label signal. Parties with
// Informative[i] = 0 hold pure-noise features, so their valuations should
// be the lowest — the vertical analogue of the noisy-data experiment.
type SyntheticConfig struct {
	// BlockDims[i] is party i's feature width.
	BlockDims []int
	// Informative[i] in [0,1] scales the label signal in party i's block.
	Informative []float64
	NumClasses  int
	TrainN      int
	TestN       int
	Seed        int64
}

// DefaultSyntheticConfig builds four parties with decreasing signal.
func DefaultSyntheticConfig(seed int64) SyntheticConfig {
	return SyntheticConfig{
		BlockDims:   []int{8, 8, 8, 8},
		Informative: []float64{1.0, 0.7, 0.3, 0.0},
		NumClasses:  4,
		TrainN:      250,
		TestN:       120,
		Seed:        seed,
	}
}

// GenerateSynthetic builds the vertical problem: a shared latent class
// model generates per-block means; informative blocks carry scaled class
// signal, non-informative blocks carry pure noise.
func GenerateSynthetic(cfg SyntheticConfig) *Problem {
	g := rng.New(cfg.Seed)
	mParties := len(cfg.BlockDims)

	// Per-class prototypes per party block.
	prototypes := make([][][]float64, mParties)
	for pi, d := range cfg.BlockDims {
		prototypes[pi] = make([][]float64, cfg.NumClasses)
		for c := range prototypes[pi] {
			prototypes[pi][c] = g.NormalVec(d, 0, 1)
		}
	}

	p := &Problem{NumClasses: cfg.NumClasses}
	p.Parties = make([]Party, mParties)

	gen := func(n int, assignTo func(pi, row int, x []float64), labels *[]int, gg *rng.RNG) {
		for i := 0; i < n; i++ {
			y := gg.Intn(cfg.NumClasses)
			*labels = append(*labels, y)
			for pi, d := range cfg.BlockDims {
				x := make([]float64, d)
				signal := cfg.Informative[pi]
				proto := prototypes[pi][y]
				for j := range x {
					x[j] = signal*proto[j] + gg.Normal(0, 1)
				}
				assignTo(pi, i, x)
			}
		}
	}

	for pi := range p.Parties {
		p.Parties[pi].Train = make([][]float64, cfg.TrainN)
		p.Parties[pi].Test = make([][]float64, cfg.TestN)
	}
	gen(cfg.TrainN, func(pi, row int, x []float64) { p.Parties[pi].Train[row] = x }, &p.TrainY, g.Split(1))
	gen(cfg.TestN, func(pi, row int, x []float64) { p.Parties[pi].Test[row] = x }, &p.TestY, g.Split(2))
	return p
}

// SignalRanking returns party indices sorted by decreasing Informative
// weight — the true quality ranking for SpearmanAgainstSignal.
func (cfg SyntheticConfig) SignalRanking() []float64 {
	out := make([]float64, len(cfg.Informative))
	copy(out, cfg.Informative)
	return out
}
