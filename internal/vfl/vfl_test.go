package vfl

import (
	"math"
	"testing"

	"comfedsv/internal/metrics"
	"comfedsv/internal/rng"
)

func testProblem(t *testing.T, seed int64) (*Problem, SyntheticConfig) {
	t.Helper()
	cfg := DefaultSyntheticConfig(seed)
	cfg.TrainN = 150
	cfg.TestN = 80
	p := GenerateSynthetic(cfg)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p, cfg
}

func TestValidateCatchesProblems(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Problem)
	}{
		{"no parties", func(p *Problem) { p.Parties = nil }},
		{"one class", func(p *Problem) { p.NumClasses = 1 }},
		{"train rows mismatch", func(p *Problem) { p.Parties[0].Train = p.Parties[0].Train[:3] }},
		{"test rows mismatch", func(p *Problem) { p.Parties[1].Test = p.Parties[1].Test[:3] }},
		{"bad train label", func(p *Problem) { p.TrainY[0] = 99 }},
		{"bad test label", func(p *Problem) { p.TestY[0] = -1 }},
		{"ragged block", func(p *Problem) { p.Parties[0].Train[2] = []float64{1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, _ := testProblem(t, 1)
			tc.mut(q)
			if err := q.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	p, _ := testProblem(t, 2)
	g := rng.New(3)
	m := NewModel(p, g)
	before := m.Loss(p, nil)
	for i := 0; i < 30; i++ {
		m.Step(p, 0.5)
	}
	after := m.Loss(p, nil)
	if after >= before {
		t.Fatalf("vertical training did not reduce loss: %v → %v", before, after)
	}
	if after > 1.0 {
		t.Fatalf("final loss %v too high — split model broken", after)
	}
}

func TestRestrictedLossUsesOnlyActiveBlocks(t *testing.T) {
	p, _ := testProblem(t, 4)
	g := rng.New(5)
	m := NewModel(p, g)
	for i := 0; i < 20; i++ {
		m.Step(p, 0.5)
	}
	// Zeroing an inactive party's block must not change the restricted loss.
	active := []bool{true, true, false, false}
	before := m.Loss(p, active)
	for j := range m.Blocks[2] {
		m.Blocks[2][j] = 99
	}
	after := m.Loss(p, active)
	if math.Abs(before-after) > 1e-12 {
		t.Fatal("inactive blocks must not affect the restricted loss")
	}
}

func TestValueRanksInformativeParties(t *testing.T) {
	p, cfg := testProblem(t, 6)
	vcfg := DefaultConfig(12, 2)
	rep, err := Value(p, vcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.FedSV) != 4 || len(rep.ComFedSV) != 4 {
		t.Fatalf("valuation lengths %d/%d", len(rep.FedSV), len(rep.ComFedSV))
	}
	// ComFedSV should rank the fully informative party above the pure-noise
	// one, and correlate positively with the signal profile.
	if rep.ComFedSV[0] <= rep.ComFedSV[3] {
		t.Fatalf("informative party valued %v, noise party %v", rep.ComFedSV[0], rep.ComFedSV[3])
	}
	if rho := metrics.Spearman(rep.ComFedSV, cfg.SignalRanking()); rho <= 0 {
		t.Fatalf("ComFedSV anti-correlates with the signal profile: %v", rho)
	}
}

func TestValueMatchesGroundTruthUnderFullObservation(t *testing.T) {
	p, _ := testProblem(t, 7)
	vcfg := DefaultConfig(8, 4) // every party refreshed every round
	rep, err := Value(p, vcfg)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := GroundTruthShapley(p, vcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gt {
		if math.Abs(rep.FedSV[i]-gt[i]) > 1e-9 {
			t.Fatalf("full observation FedSV %v != ground truth %v", rep.FedSV, gt)
		}
	}
}

func TestValueValidation(t *testing.T) {
	p, _ := testProblem(t, 8)
	bad := DefaultConfig(0, 2)
	if _, err := Value(p, bad); err == nil {
		t.Fatal("expected error for zero rounds")
	}
	bad = DefaultConfig(3, 9)
	if _, err := Value(p, bad); err == nil {
		t.Fatal("expected error for too many parties per round")
	}
}

func TestValueDeterministic(t *testing.T) {
	p, _ := testProblem(t, 9)
	cfg := DefaultConfig(6, 2)
	a, err := Value(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Value(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.ComFedSV {
		if a.ComFedSV[i] != b.ComFedSV[i] {
			t.Fatal("vertical valuation must be deterministic")
		}
	}
}

func TestModelCloneIndependent(t *testing.T) {
	p, _ := testProblem(t, 10)
	m := NewModel(p, rng.New(11))
	c := m.Clone()
	c.Blocks[0][0] = 42
	c.Bias[0] = 42
	if m.Blocks[0][0] == 42 || m.Bias[0] == 42 {
		t.Fatal("Clone must not share storage")
	}
}
