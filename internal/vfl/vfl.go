// Package vfl implements the paper's stated future direction (Section
// VIII): extending ComFedSV-style valuation to *vertical* federated
// learning, where parties share sample IDs but hold disjoint feature
// blocks. A split multinomial logistic-regression model is trained
// cooperatively — each party owns the weight block for its features, the
// coordinator holds the labels and the bias — and the per-round utility of
// a party coalition is the test-loss decrease of the model restricted to
// that coalition's feature blocks. The resulting T×2^M utility matrix
// plugs into the same completion + Shapley pipeline as the horizontal case.
package vfl

import (
	"fmt"
	"math"

	"comfedsv/internal/mat"
	"comfedsv/internal/rng"
)

// Party is one vertical data owner: a block of feature columns for every
// training (and test) sample.
type Party struct {
	// Train[i] is the party's feature block of training sample i.
	Train [][]float64
	// Test[i] is the party's feature block of test sample i.
	Test [][]float64
}

// Dim returns the party's feature-block width.
func (p *Party) Dim() int {
	if len(p.Train) == 0 {
		return 0
	}
	return len(p.Train[0])
}

// Problem is a vertical federated learning task.
type Problem struct {
	Parties []Party
	// TrainY and TestY are the coordinator's labels.
	TrainY, TestY []int
	NumClasses    int
}

// Validate checks block and label consistency.
func (p *Problem) Validate() error {
	if len(p.Parties) == 0 {
		return fmt.Errorf("vfl: no parties")
	}
	if p.NumClasses < 2 {
		return fmt.Errorf("vfl: need at least 2 classes, got %d", p.NumClasses)
	}
	nTrain, nTest := len(p.TrainY), len(p.TestY)
	if nTrain == 0 || nTest == 0 {
		return fmt.Errorf("vfl: empty train (%d) or test (%d) labels", nTrain, nTest)
	}
	for i, party := range p.Parties {
		if len(party.Train) != nTrain {
			return fmt.Errorf("vfl: party %d has %d train rows, want %d", i, len(party.Train), nTrain)
		}
		if len(party.Test) != nTest {
			return fmt.Errorf("vfl: party %d has %d test rows, want %d", i, len(party.Test), nTest)
		}
		d := party.Dim()
		for r, row := range party.Train {
			if len(row) != d {
				return fmt.Errorf("vfl: party %d train row %d ragged", i, r)
			}
		}
		for r, row := range party.Test {
			if len(row) != d {
				return fmt.Errorf("vfl: party %d test row %d ragged", i, r)
			}
		}
	}
	for i, y := range p.TrainY {
		if y < 0 || y >= p.NumClasses {
			return fmt.Errorf("vfl: train label %d at %d out of range", y, i)
		}
	}
	for i, y := range p.TestY {
		if y < 0 || y >= p.NumClasses {
			return fmt.Errorf("vfl: test label %d at %d out of range", y, i)
		}
	}
	return nil
}

// Model is the split logistic-regression state: one weight block per party
// plus the coordinator's bias.
type Model struct {
	// Blocks[m] is Classes×Dim_m, stored row-major per class.
	Blocks [][]float64
	Bias   []float64
	// Dims[m] is party m's block width; Classes the label count.
	Dims    []int
	Classes int
	L2      float64
}

// NewModel initializes a split model for the problem.
func NewModel(p *Problem, g *rng.RNG) *Model {
	m := &Model{Classes: p.NumClasses, L2: 1e-3}
	for _, party := range p.Parties {
		d := party.Dim()
		m.Dims = append(m.Dims, d)
		m.Blocks = append(m.Blocks, g.NormalVec(p.NumClasses*d, 0, 0.01))
	}
	m.Bias = make([]float64, p.NumClasses)
	return m
}

// Clone deep-copies the model state.
func (m *Model) Clone() *Model {
	out := &Model{
		Bias:    mat.CopyVec(m.Bias),
		Dims:    append([]int(nil), m.Dims...),
		Classes: m.Classes,
		L2:      m.L2,
	}
	for _, b := range m.Blocks {
		out.Blocks = append(out.Blocks, mat.CopyVec(b))
	}
	return out
}

// logits computes class scores of sample row using only the parties whose
// index appears in active (nil means all). rows selects Train or Test
// blocks via the accessor.
func (m *Model) logits(p *Problem, sample int, test bool, active []bool, out []float64) {
	copy(out, m.Bias)
	for pi := range p.Parties {
		if active != nil && !active[pi] {
			continue
		}
		var x []float64
		if test {
			x = p.Parties[pi].Test[sample]
		} else {
			x = p.Parties[pi].Train[sample]
		}
		block := m.Blocks[pi]
		d := m.Dims[pi]
		for c := 0; c < m.Classes; c++ {
			out[c] += mat.Dot(block[c*d:(c+1)*d], x)
		}
	}
}

// Loss returns mean cross-entropy on the test set using only the active
// parties' blocks (nil = all), plus the L2 regularizer over active blocks.
func (m *Model) Loss(p *Problem, active []bool) float64 {
	logits := make([]float64, m.Classes)
	probs := make([]float64, m.Classes)
	var total float64
	for i := range p.TestY {
		m.logits(p, i, true, active, logits)
		mat.Softmax(probs, logits)
		total += -math.Log(math.Max(probs[p.TestY[i]], 1e-15))
	}
	total /= float64(len(p.TestY))
	var reg float64
	for pi, b := range m.Blocks {
		if active != nil && !active[pi] {
			continue
		}
		reg += mat.Dot(b, b)
	}
	return total + 0.5*m.L2*reg
}

// TrainLoss is Loss on the training split with all parties active.
func (m *Model) TrainLoss(p *Problem) float64 {
	logits := make([]float64, m.Classes)
	probs := make([]float64, m.Classes)
	var total float64
	for i := range p.TrainY {
		m.logits(p, i, false, nil, logits)
		mat.Softmax(probs, logits)
		total += -math.Log(math.Max(probs[p.TrainY[i]], 1e-15))
	}
	return total / float64(len(p.TrainY))
}

// Step performs one full-batch gradient step of the split model: the
// coordinator computes residuals from the pooled logits and each party
// updates its own block — the standard vertical-LR protocol where raw
// features never leave their owner.
func (m *Model) Step(p *Problem, lr float64) {
	n := len(p.TrainY)
	logits := make([]float64, m.Classes)
	probs := make([]float64, m.Classes)
	gradBias := make([]float64, m.Classes)
	gradBlocks := make([][]float64, len(m.Blocks))
	for pi := range gradBlocks {
		gradBlocks[pi] = make([]float64, len(m.Blocks[pi]))
	}
	for i := 0; i < n; i++ {
		m.logits(p, i, false, nil, logits)
		mat.Softmax(probs, logits)
		for c := 0; c < m.Classes; c++ {
			delta := probs[c]
			if c == p.TrainY[i] {
				delta -= 1
			}
			gradBias[c] += delta
			for pi := range p.Parties {
				x := p.Parties[pi].Train[i]
				d := m.Dims[pi]
				g := gradBlocks[pi][c*d : (c+1)*d]
				for j, xj := range x {
					g[j] += delta * xj
				}
			}
		}
	}
	inv := 1 / float64(n)
	for c := range gradBias {
		m.Bias[c] -= lr * gradBias[c] * inv
	}
	for pi := range m.Blocks {
		b := m.Blocks[pi]
		g := gradBlocks[pi]
		for j := range b {
			b[j] -= lr * (g[j]*inv + m.L2*b[j])
		}
	}
}
