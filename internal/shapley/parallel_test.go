package shapley

import (
	"runtime"
	"testing"
)

// TestMonteCarloDeterministicAcrossWorkers pins the contract the parallel
// observation stage and parallel ALS both promise: the full Monte-Carlo
// pipeline returns bit-identical estimates for every worker count, because
// observations are recorded in the serial order and the completion's row
// updates are order-independent.
func TestMonteCarloDeterministicAcrossWorkers(t *testing.T) {
	e := duplicatedEvaluator(t, 400)
	cfg := DefaultMonteCarloConfig(6, 3, 401)

	cfg.Workers = 1
	base, err := MonteCarlo(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseObs := base.Store.Observations()

	for _, workers := range []int{2, 5, runtime.GOMAXPROCS(0)} {
		cfg.Workers = workers
		// A fresh evaluator per run: the shared cache must not be the
		// reason results agree.
		got, err := MonteCarlo(duplicatedEvaluator(t, 400), cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got.Values) != len(base.Values) {
			t.Fatalf("workers=%d: %d values, want %d", workers, len(got.Values), len(base.Values))
		}
		for i := range base.Values {
			if base.Values[i] != got.Values[i] {
				t.Fatalf("workers=%d: value[%d] = %v, workers=1 gave %v", workers, i, got.Values[i], base.Values[i])
			}
		}
		gotObs := got.Store.Observations()
		if len(gotObs) != len(baseObs) {
			t.Fatalf("workers=%d: %d observations, want %d", workers, len(gotObs), len(baseObs))
		}
		for i := range baseObs {
			if baseObs[i] != gotObs[i] {
				t.Fatalf("workers=%d: observation %d = %+v, workers=1 recorded %+v", workers, i, gotObs[i], baseObs[i])
			}
		}
		if got.UnobservedColumns != base.UnobservedColumns {
			t.Fatalf("workers=%d: unobserved columns %d vs %d", workers, got.UnobservedColumns, base.UnobservedColumns)
		}
	}
}

// TestMonteCarloWorkersSeedCompletion checks that a MonteCarloConfig with
// only Workers set propagates the knob into the completion solve without
// overriding an explicit Completion.Workers.
func TestMonteCarloWorkersSeedCompletion(t *testing.T) {
	e := duplicatedEvaluator(t, 402)
	cfg := DefaultMonteCarloConfig(6, 3, 403)
	cfg.Workers = 2
	cfg.Completion.Workers = 1
	one, err := MonteCarlo(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Completion.Workers = 0 // inherits cfg.Workers
	two, err := MonteCarlo(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range one.Values {
		if one.Values[i] != two.Values[i] {
			t.Fatalf("value[%d] differs between explicit and inherited completion workers", i)
		}
	}
}
