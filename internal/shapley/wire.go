package shapley

import (
	"context"
	"fmt"
	"sort"
)

// ObservedCell is one evaluated utility-matrix entry in wire form: the
// round, the plan's dense prefix-column index, and the utility value. The
// column index is meaningful only between two plans built from the same
// (trace, budget, seed) — registration order is deterministic, so a worker
// that rebuilt the plan from the shared run derives identical indices.
type ObservedCell struct {
	Round int     `json:"round"`
	Col   int     `json:"col"`
	Value float64 `json:"value"`
}

// ShardObservations is the serialized result of one observation shard —
// the payload a remote worker ships back to the comfedsvd coordinator.
// Cells are canonically ordered (round, then column) and Digest is the
// same content hash ShardDigest computes for a locally executed shard, so
// the coordinator can verify a remote execution derived byte-identical
// observations before merging them.
type ShardObservations struct {
	// Lo and Hi echo the half-open permutation slice the cells were
	// derived from; an import checks them against the shard's planned
	// slice so a mis-addressed result fails loudly.
	Lo    int            `json:"lo"`
	Hi    int            `json:"hi"`
	Cells []ObservedCell `json:"cells"`
	// Digest is the content hash over Cells (coordinates + IEEE-754 value
	// bits in canonical order) — the same token the journal records.
	Digest string `json:"digest"`
}

// exportObservations converts a shard's evaluated-cell map to the
// canonical wire form, stamping the content digest.
func exportObservations(lo, hi int, vals map[obsCell]float64) *ShardObservations {
	cells := make([]ObservedCell, 0, len(vals))
	for k, v := range vals {
		cells = append(cells, ObservedCell{Round: k.round, Col: k.col, Value: v})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Round != cells[j].Round {
			return cells[i].Round < cells[j].Round
		}
		return cells[i].Col < cells[j].Col
	})
	return &ShardObservations{Lo: lo, Hi: hi, Cells: cells, Digest: shardDigest(vals)}
}

// toMap rebuilds the evaluated-cell map. A duplicated coordinate would
// make the recomputed digest disagree with the canonical export, so
// Verify catches it.
func (o *ShardObservations) toMap() map[obsCell]float64 {
	vals := make(map[obsCell]float64, len(o.Cells))
	for _, c := range o.Cells {
		vals[obsCell{round: c.Round, col: c.Col}] = c.Value
	}
	return vals
}

// Stamp recomputes the content digest from the cells and stamps it,
// making a hand-constructed ShardObservations pass Verify — for tests
// and tooling that fabricate wire payloads; plan exports stamp their
// digests during export.
func (o *ShardObservations) Stamp() { o.Digest = shardDigest(o.toMap()) }

// Verify recomputes the content digest from the cells and checks it
// against the stamped one, catching wire corruption, duplicated
// coordinates, and tampering in one pass.
func (o *ShardObservations) Verify() error {
	if got := shardDigest(o.toMap()); got != o.Digest {
		return fmt.Errorf("shapley: shard observations digest mismatch: recomputed %s, stamped %s", got, o.Digest)
	}
	return nil
}

// Budget returns the permutation budget the plan sampled — what a remote
// worker must pass to its own plan so column registration matches.
func (p *MonteCarloPlan) Budget() int { return len(p.perms) }

// ShardSlice returns the half-open permutation slice [lo, hi) owned by a
// planned shard — the coordinates a lease ships to a remote worker.
func (p *MonteCarloPlan) ShardSlice(shard int) (lo, hi int) { return p.shardRange(shard) }

// ShardSlice returns the half-open permutation slice [lo, hi) owned by a
// scheduled shard (the adaptive plan's slices address the same global
// permutation set as the fixed plan's).
func (p *AdaptivePlan) ShardSlice(shard int) (lo, hi int) {
	if shard < 0 || shard >= len(p.slices) {
		panic(fmt.Sprintf("shapley: adaptive observation shard %d out of [0,%d)", shard, len(p.slices)))
	}
	sl := p.slices[shard]
	return sl.lo, sl.hi
}

// ObserveSlice evaluates the prefix cells of an arbitrary permutation
// slice [lo, hi) and returns them in wire form, without mutating the
// plan's shard state — the worker-side entry point of distributed
// observation. The slice need not align with the plan's own shard
// boundaries, so one worker-side plan serves every lease of a job
// regardless of how the coordinator cut its waves.
func (p *MonteCarloPlan) ObserveSlice(ctx context.Context, lo, hi int) (*ShardObservations, error) {
	if lo < 0 || hi > len(p.perms) || lo >= hi {
		return nil, fmt.Errorf("shapley: observation slice [%d,%d) out of [0,%d)", lo, hi, len(p.perms))
	}
	vals, err := p.observeRange(ctx, lo, hi)
	if err != nil {
		return nil, err
	}
	return exportObservations(lo, hi, vals), nil
}

// ImportShard installs a remotely evaluated shard's observations as if
// ObserveShard had run locally: the slice coordinates must match the
// shard's planned range and the content digest must verify. After a
// successful import, ShardDigest(shard) returns the imported digest and
// Merge consumes the cells exactly as it would local ones.
func (p *MonteCarloPlan) ImportShard(shard int, obs *ShardObservations) error {
	lo, hi := p.shardRange(shard)
	return importShard(obs, lo, hi, p.t, p.store.NumColumns(), &p.shardVals[shard])
}

// ImportShard installs a remotely evaluated shard's observations on an
// adaptive plan; see MonteCarloPlan.ImportShard.
func (p *AdaptivePlan) ImportShard(shard int, obs *ShardObservations) error {
	lo, hi := p.ShardSlice(shard)
	return importShard(obs, lo, hi, p.base.t, p.base.store.NumColumns(), &p.shardVals[shard])
}

// importShard validates one wire-form shard result against its planned
// slice and the plan's dimensions, then installs the cell map.
func importShard(obs *ShardObservations, lo, hi, rounds, cols int, dst *map[obsCell]float64) error {
	if obs == nil {
		return fmt.Errorf("shapley: nil shard observations")
	}
	if obs.Lo != lo || obs.Hi != hi {
		return fmt.Errorf("shapley: shard observations cover permutations [%d,%d) but the planned slice is [%d,%d)", obs.Lo, obs.Hi, lo, hi)
	}
	for _, c := range obs.Cells {
		if c.Round < 0 || c.Round >= rounds || c.Col < 0 || c.Col >= cols {
			return fmt.Errorf("shapley: shard observation cell (%d,%d) outside plan dimensions %d×%d", c.Round, c.Col, rounds, cols)
		}
	}
	if err := obs.Verify(); err != nil {
		return err
	}
	*dst = obs.toMap()
	return nil
}
