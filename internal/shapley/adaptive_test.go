package shapley

import (
	"context"
	"math"
	"reflect"
	"sync"
	"testing"

	"comfedsv/internal/utility"
)

// adaptiveConfig is a small adaptive config exercised by the plan tests:
// budget 64 cuts into waves [16, 32, 64].
func adaptiveConfig(shards int, tol float64) AdaptiveConfig {
	cfg := AdaptiveConfig{MonteCarloConfig: DefaultMonteCarloConfig(6, 3, 51)}
	cfg.Samples = 64
	cfg.Shards = shards
	cfg.Tolerance = tol
	return cfg
}

// runAdaptive drives an adaptive plan the way the scheduler would:
// observe every pending shard (optionally concurrently), Advance, repeat
// until Advance returns 0, then Extract.
func runAdaptive(t *testing.T, cfg AdaptiveConfig, concurrent bool) (*AdaptivePlan, *MonteCarloResult) {
	t.Helper()
	ctx := context.Background()
	e := duplicatedEvaluator(t, 500)
	p, err := NewAdaptivePlan(ctx, e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	pending := p.Shards()
	for {
		if concurrent {
			var wg sync.WaitGroup
			errs := make([]error, pending)
			for i := 0; i < pending; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					errs[i] = p.ObserveShard(ctx, next+i)
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("shard %d: %v", next+i, err)
				}
			}
		} else {
			for i := 0; i < pending; i++ {
				if err := p.ObserveShard(ctx, next+i); err != nil {
					t.Fatalf("shard %d: %v", next+i, err)
				}
			}
		}
		next += pending
		more, err := p.Advance(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if more == 0 {
			break
		}
		pending = more
	}
	res, err := p.Extract(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return p, res
}

// TestWaveBounds pins the wave schedule as a pure function of the budget.
func TestWaveBounds(t *testing.T) {
	for _, tc := range []struct {
		budget int
		want   []int
	}{
		{400, []int{50, 100, 200, 400}},
		{64, []int{16, 32, 64}},
		{25, []int{16, 25}},
		{16, []int{16}},
		{10, []int{10}},
		{129, []int{16, 32, 64, 128, 129}},
	} {
		if got := waveBounds(tc.budget); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("waveBounds(%d) = %v, want %v", tc.budget, got, tc.want)
		}
	}
}

// TestAdaptiveShardAndConcurrencyInvariant pins the tentpole determinism
// guarantee for tolerance mode at the shapley layer: the stopping wave,
// the observation list, and the final values are identical for shard
// counts 1, 2, and 8, with shards run serially or concurrently.
func TestAdaptiveShardAndConcurrencyInvariant(t *testing.T) {
	const tol = 0.2
	basePlan, base := runAdaptive(t, adaptiveConfig(1, tol), false)
	if basePlan.Used() >= basePlan.Budget() {
		t.Fatalf("baseline adaptive run used the whole budget (%d) — tolerance too tight to test early stop", basePlan.Budget())
	}
	for _, shards := range []int{2, 8} {
		for _, concurrent := range []bool{false, true} {
			p, got := runAdaptive(t, adaptiveConfig(shards, tol), concurrent)
			if p.Used() != basePlan.Used() {
				t.Fatalf("shards=%d concurrent=%v stopped at %d permutations, want %d", shards, concurrent, p.Used(), basePlan.Used())
			}
			if !reflect.DeepEqual(got.Values, base.Values) {
				t.Fatalf("shards=%d concurrent=%v values diverge:\n%v\nvs\n%v", shards, concurrent, got.Values, base.Values)
			}
			if !reflect.DeepEqual(got.Store.Observations(), base.Store.Observations()) {
				t.Fatalf("shards=%d concurrent=%v observation list diverges", shards, concurrent)
			}
			if got.UnobservedColumns != base.UnobservedColumns {
				t.Fatalf("shards=%d concurrent=%v unobserved %d, want %d", shards, concurrent, got.UnobservedColumns, base.UnobservedColumns)
			}
		}
	}
}

// TestAdaptiveEarlyStopSavesObservationsWithinTolerance pins the perf
// contract: a loose tolerance stops before the budget, and the early
// estimates stay within that tolerance of the full-budget fixed run.
func TestAdaptiveEarlyStopSavesObservationsWithinTolerance(t *testing.T) {
	const tol = 0.2
	p, got := runAdaptive(t, adaptiveConfig(2, tol), false)
	if p.Used() >= p.Budget() {
		t.Fatalf("used %d of budget %d — no early stop", p.Used(), p.Budget())
	}
	stats := p.Waves()
	if len(stats) < 2 {
		t.Fatalf("expected at least two waves, got %v", stats)
	}
	last := stats[len(stats)-1]
	if last.MaxDelta < 0 || last.MaxDelta > tol {
		t.Fatalf("stopping wave MaxDelta = %v, want in (0, %v]", last.MaxDelta, tol)
	}
	if stats[0].MaxDelta != -1 {
		t.Fatalf("first wave MaxDelta = %v, want -1", stats[0].MaxDelta)
	}
	// Warm-started re-completions must converge in fewer sweeps than the
	// cold first wave.
	for _, ws := range stats[1:] {
		if ws.CompletionIterations >= stats[0].CompletionIterations {
			t.Logf("wave at %d samples took %d ALS iterations vs cold %d (not strictly fewer — acceptable but worth seeing)",
				ws.Samples, ws.CompletionIterations, stats[0].CompletionIterations)
		}
	}

	// Accuracy: the early-stopped estimates track the exhausted-budget
	// fixed pipeline within the requested tolerance.
	e := duplicatedEvaluator(t, 500)
	fixed, err := MonteCarlo(e, adaptiveConfig(1, tol).MonteCarloConfig)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Values {
		if d := math.Abs(got.Values[i] - fixed.Values[i]); d > tol {
			t.Fatalf("client %d adaptive estimate off by %v from full-budget value, tolerance %v", i, d, tol)
		}
	}
}

// TestAdaptiveTightToleranceExhaustsBudget pins the degradation path: a
// tolerance no wave can meet runs every wave and uses the whole budget. The
// observed cell *set* then equals the fixed-budget pipeline's — the same
// utility evaluations were paid for — though the list order is wave-major
// rather than the fixed pipeline's single full walk.
func TestAdaptiveTightToleranceExhaustsBudget(t *testing.T) {
	p, got := runAdaptive(t, adaptiveConfig(2, 1e-12), false)
	if p.Used() != p.Budget() {
		t.Fatalf("used %d, want full budget %d", p.Used(), p.Budget())
	}
	if len(p.Waves()) != 3 {
		t.Fatalf("expected 3 waves for budget 64, got %v", p.Waves())
	}
	e := duplicatedEvaluator(t, 500)
	fixed, err := MonteCarlo(e, adaptiveConfig(1, 1e-12).MonteCarloConfig)
	if err != nil {
		t.Fatal(err)
	}
	type cell struct {
		round, col int
	}
	set := func(obs []utility.Observation) map[cell]float64 {
		m := make(map[cell]float64, len(obs))
		for _, o := range obs {
			m[cell{o.Row, o.Col}] = o.Val
		}
		return m
	}
	if !reflect.DeepEqual(set(got.Store.Observations()), set(fixed.Store.Observations())) {
		t.Fatal("exhausted adaptive observed-cell set diverges from fixed pipeline")
	}
}

// TestAdaptiveToleranceValidation pins the constructor's input contract.
func TestAdaptiveToleranceValidation(t *testing.T) {
	e := duplicatedEvaluator(t, 500)
	for _, tol := range []float64{0, -0.1, math.NaN(), math.Inf(1)} {
		cfg := adaptiveConfig(1, tol)
		if _, err := NewAdaptivePlan(context.Background(), e, cfg); err == nil {
			t.Errorf("tolerance %v accepted, want error", tol)
		}
	}
	cfg := adaptiveConfig(1, 0.1)
	cfg.Samples = 0
	if _, err := NewAdaptivePlan(context.Background(), e, cfg); err == nil {
		t.Error("zero sample budget accepted, want error")
	}
}

// TestAdaptiveStageOrderErrors pins the stage contract: advancing past an
// unobserved shard, extracting before convergence, and advancing a
// finished plan are loud errors.
func TestAdaptiveStageOrderErrors(t *testing.T) {
	ctx := context.Background()
	e := duplicatedEvaluator(t, 500)
	p, err := NewAdaptivePlan(ctx, e, adaptiveConfig(2, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Advance(ctx); err == nil {
		t.Fatal("Advance before observing the wave must fail")
	}
	if _, err := p.Extract(ctx); err == nil {
		t.Fatal("Extract before the plan finished must fail")
	}
	for i := 0; i < p.Shards(); i++ {
		if err := p.ObserveShard(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	next := p.Shards()
	for {
		more, err := p.Advance(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if more == 0 {
			break
		}
		for i := 0; i < more; i++ {
			if err := p.ObserveShard(ctx, next+i); err != nil {
				t.Fatal(err)
			}
		}
		next += more
	}
	if _, err := p.Advance(ctx); err == nil {
		t.Fatal("Advance after the plan finished must fail")
	}
	if _, err := p.Extract(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveCancellationMidWave pins cooperative cancellation: a context
// cancelled between waves aborts the next stage with ctx.Err() instead of
// running to completion.
func TestAdaptiveCancellationMidWave(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := duplicatedEvaluator(t, 500)
	p, err := NewAdaptivePlan(ctx, e, adaptiveConfig(2, 1e-12))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Shards(); i++ {
		if err := p.ObserveShard(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	more, err := p.Advance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if more == 0 {
		t.Fatal("tight tolerance finished after one wave — cannot test mid-wave cancellation")
	}
	cancel()
	if err := p.ObserveShard(ctx, p.Shards()-1); err == nil {
		t.Fatal("ObserveShard after cancellation must fail")
	}
	if _, err := p.Advance(ctx); err == nil {
		t.Fatal("Advance after cancellation must fail")
	}
}
