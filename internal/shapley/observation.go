package shapley

import (
	"fmt"
	"math"
)

// ParticipationProbability returns p = m(N−m) / (N(N−1)), the probability
// that of two fixed clients exactly client i is in a uniform size-m
// selection out of N (Observation 1).
func ParticipationProbability(n, m int) float64 {
	if n < 2 || m < 0 || m > n {
		panic(fmt.Sprintf("shapley: participation probability with n=%d m=%d", n, m))
	}
	return float64(m) * float64(n-m) / (float64(n) * float64(n-1))
}

// UnfairnessProbability returns P_s from Observation 1: the probability
// that after T rounds the FedSV gap between two clients with identical data
// is at least s·δ. Reproducing the paper's stated expression,
//
//	P_s = Σ_{a=s}^{T} Σ_{b=0}^{⌊(T−a)/2⌋} C(T; b, T−a−2b, a+b) p^{2b+a} (1−p)^{T−2b−a},
//
// evaluated in log space for numerical robustness. This is the quantity
// plotted in Fig. 1.
func UnfairnessProbability(t, s int, p float64) float64 {
	if t <= 0 || s < 0 || s > t {
		panic(fmt.Sprintf("shapley: unfairness probability with T=%d s=%d", t, s))
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("shapley: probability p=%v out of [0,1]", p))
	}
	var total float64
	for a := s; a <= t; a++ {
		for b := 0; 2*b <= t-a; b++ {
			exp := 2*b + a
			rest := t - 2*b - a
			// Degenerate p values: only the all-"rest" term survives p=0;
			// only exp=t survives p=1.
			if p == 0 {
				if exp == 0 {
					total += 1
				}
				continue
			}
			if p == 1 {
				if rest == 0 {
					total += math.Exp(lnMultinomial(t, b, rest, a+b))
				}
				continue
			}
			lt := lnMultinomial(t, b, rest, a+b) +
				float64(exp)*math.Log(p) +
				float64(rest)*math.Log(1-p)
			total += math.Exp(lt)
		}
	}
	if total > 1 {
		total = 1
	}
	return total
}

// lnMultinomial returns ln( n! / (k1! k2! k3!) ) for k1+k2+k3 = n.
func lnMultinomial(n, k1, k2, k3 int) float64 {
	if k1+k2+k3 != n {
		panic(fmt.Sprintf("shapley: multinomial parts %d+%d+%d != %d", k1, k2, k3, n))
	}
	ln, _ := math.Lgamma(float64(n + 1))
	l1, _ := math.Lgamma(float64(k1 + 1))
	l2, _ := math.Lgamma(float64(k2 + 1))
	l3, _ := math.Lgamma(float64(k3 + 1))
	return ln - l1 - l2 - l3
}
