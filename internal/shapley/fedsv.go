package shapley

import (
	"context"
	"fmt"
	"math/bits"

	"comfedsv/internal/rng"
	"comfedsv/internal/utility"
)

// FedSV computes the federated Shapley value of Wang et al. (Definition 2):
// in every round, the exact Shapley value over the *selected* clients only;
// unselected clients receive zero for that round; the final value is the
// per-round sum. Exact per-round enumeration requires |I_t| ≤ 20.
func FedSV(e utility.Source) []float64 {
	values, err := FedSVCtx(context.Background(), e)
	if err != nil {
		// The background context never cancels, so this is the
		// infeasible-selection error — panic to preserve the historical
		// FedSV contract.
		panic(err)
	}
	return values
}

// FedSVCtx is FedSV with cooperative cancellation, checked before every
// marginal-contribution term (a round costs up to 2^|I_t| of them). Unlike
// FedSV it returns an error instead of panicking when a round's selection
// is too large to enumerate, so services can fail one job rather than the
// process.
func FedSVCtx(ctx context.Context, e utility.Source) ([]float64, error) {
	n := e.Run().NumClients()
	values := make([]float64, n)
	for t, rd := range e.Run().Rounds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sel := rd.Selected
		k := len(sel)
		if k > 20 {
			return nil, fmt.Errorf("shapley: exact FedSV with %d selected clients is infeasible; use FedSVMonteCarlo", k)
		}
		bt := newBinomTable(k)
		// u over bitmasks of positions within sel.
		u := func(mask uint64) float64 {
			if mask == 0 {
				return 0
			}
			s := utility.NewSet(n)
			for b := 0; b < k; b++ {
				if mask&(1<<uint(b)) != 0 {
					s.Add(sel[b])
				}
			}
			return e.Utility(t, s)
		}
		full := uint64(1)<<uint(k) - 1
		for pos, client := range sel {
			bit := uint64(1) << uint(pos)
			rest := full &^ bit
			var total float64
			for sub := uint64(0); ; sub = (sub - rest) & rest {
				// Per-subset check: one round over a large selection can
				// cost 2^k utility evaluations, far too long between
				// round-boundary checks.
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				size := bits.OnesCount64(sub)
				w := 1 / (float64(k) * bt.choose(k-1, size))
				total += w * (u(sub|bit) - u(sub))
				if sub == rest {
					break
				}
			}
			values[client] += total
		}
	}
	return values, nil
}

// FedSVMonteCarlo estimates FedSV with samples random permutations of the
// selected set per round — the estimator the paper's Section VII-D costs at
// O(T·K²·log K) utility calls. Required when |I_t| is too large for exact
// enumeration (e.g. the 100-client noisy-label experiment).
func FedSVMonteCarlo(e utility.Source, samples int, seed int64) []float64 {
	values, err := FedSVMonteCarloCtx(context.Background(), e, samples, seed)
	if err != nil {
		// The background context never cancels, so this is the bad sample
		// count — panic to preserve the historical contract.
		panic(err)
	}
	return values
}

// FedSVMonteCarloCtx is FedSVMonteCarlo with cooperative cancellation,
// checked once per sampled permutation, and an error instead of a panic for
// a non-positive sample count. The permutation stream is a pure function of
// the seed, so cancellation never changes the values a finished call
// returns.
func FedSVMonteCarloCtx(ctx context.Context, e utility.Source, samples int, seed int64) ([]float64, error) {
	if samples <= 0 {
		return nil, fmt.Errorf("shapley: non-positive sample count %d", samples)
	}
	n := e.Run().NumClients()
	g := rng.New(seed)
	values := make([]float64, n)
	for t, rd := range e.Run().Rounds {
		sel := rd.Selected
		k := len(sel)
		inv := 1 / float64(samples)
		for m := 0; m < samples; m++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			order := g.Perm(k)
			prefix := utility.NewSet(n)
			prev := 0.0
			for _, pos := range order {
				client := sel[pos]
				prefix.Add(client)
				cur := e.Utility(t, prefix)
				values[client] += inv * (cur - prev)
				prev = cur
			}
		}
	}
	return values, nil
}
