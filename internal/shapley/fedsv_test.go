package shapley

import (
	"context"
	"math"
	"testing"

	"comfedsv/internal/dataset"
	"comfedsv/internal/fl"
	"comfedsv/internal/model"
	"comfedsv/internal/rng"
	"comfedsv/internal/utility"
)

func testEvaluator(t *testing.T, clients, rounds, perRound int, seed int64) *utility.Evaluator {
	t.Helper()
	full := dataset.GenerateImages(dataset.MNISTLikeConfig(seed), clients*25+50)
	g := rng.New(seed + 1)
	train, test := dataset.TrainTestSplit(full, float64(50)/float64(full.Len()), g)
	parts := dataset.PartitionIID(train, clients, g)
	m := model.NewMLP(full.Dim(), 6, full.NumClasses)
	cfg := fl.DefaultConfig(rounds, perRound)
	cfg.LearningRate = 0.1
	cfg.Seed = seed + 2
	run, err := fl.TrainRun(cfg, m, parts, test)
	if err != nil {
		t.Fatal(err)
	}
	return utility.NewEvaluator(run)
}

func TestFedSVLength(t *testing.T) {
	e := testEvaluator(t, 5, 4, 2, 31)
	v := FedSV(e)
	if len(v) != 5 {
		t.Fatalf("FedSV length %d, want 5", len(v))
	}
}

func TestFedSVFullSelectionEqualsExactShapley(t *testing.T) {
	// With every client selected every round, FedSV is the exact Shapley
	// value of the per-round-summed utility (the classical SV).
	e := testEvaluator(t, 4, 3, 4, 33)
	v := FedSV(e)
	gt := GroundTruth(e)
	for i := range v {
		if math.Abs(v[i]-gt[i]) > 1e-9 {
			t.Fatalf("full-participation FedSV %v != ground truth %v", v, gt)
		}
	}
}

func TestFedSVUnselectedGetZeroPerRound(t *testing.T) {
	// With a single round (no forced full round) and K=2 of 5, the three
	// unselected clients must be valued exactly 0.
	full := dataset.GenerateImages(dataset.MNISTLikeConfig(35), 175)
	g := rng.New(36)
	train, test := dataset.TrainTestSplit(full, 50.0/175, g)
	parts := dataset.PartitionIID(train, 5, g)
	m := model.NewMLP(full.Dim(), 6, full.NumClasses)
	cfg := fl.DefaultConfig(1, 2)
	cfg.ForceFullFirstRound = false
	run, err := fl.TrainRun(cfg, m, parts, test)
	if err != nil {
		t.Fatal(err)
	}
	e := utility.NewEvaluator(run)
	v := FedSV(e)
	selected := map[int]bool{}
	for _, c := range run.Rounds[0].Selected {
		selected[c] = true
	}
	for i, x := range v {
		if !selected[i] && x != 0 {
			t.Fatalf("unselected client %d valued %v, want 0", i, x)
		}
	}
}

func TestFedSVPerRoundBalance(t *testing.T) {
	// Balance within each round: Σ_{i∈I_t} s_{t,i} = U_t(I_t). Summed over
	// rounds: Σᵢ sᵢ = Σ_t U_t(I_t).
	e := testEvaluator(t, 5, 4, 2, 37)
	v := FedSV(e)
	var sum float64
	for _, x := range v {
		sum += x
	}
	var want float64
	n := e.Run().NumClients()
	for tr, rd := range e.Run().Rounds {
		want += e.Utility(tr, utility.FromMembers(n, rd.Selected))
	}
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("FedSV balance: Σv = %v, want %v", sum, want)
	}
}

func TestFedSVMonteCarloApproximatesExact(t *testing.T) {
	e := testEvaluator(t, 5, 3, 3, 39)
	exact := FedSV(e)
	approx := FedSVMonteCarlo(e, 400, 40)
	for i := range exact {
		if math.Abs(exact[i]-approx[i]) > 0.05*(1+math.Abs(exact[i])) {
			t.Fatalf("MC FedSV %v too far from exact %v at client %d", approx, exact, i)
		}
	}
}

func TestFedSVMonteCarloCtxMatchesAndCancels(t *testing.T) {
	e := testEvaluator(t, 5, 3, 3, 39)
	want := FedSVMonteCarlo(e, 50, 40)
	got, err := FedSVMonteCarloCtx(context.Background(), e, 50, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("ctx variant diverges at client %d: %v vs %v", i, got[i], want[i])
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FedSVMonteCarloCtx(ctx, e, 50, 40); err != context.Canceled {
		t.Fatalf("cancelled FedSVMonteCarloCtx = %v, want context.Canceled", err)
	}
	if _, err := FedSVMonteCarloCtx(context.Background(), e, 0, 1); err == nil {
		t.Fatal("non-positive samples accepted")
	}
}

func TestFedSVMonteCarloBadSamplesPanics(t *testing.T) {
	e := testEvaluator(t, 3, 2, 2, 41)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FedSVMonteCarlo(e, 0, 1)
}

func TestFedSVDuplicatedClientsSameRoundSameValue(t *testing.T) {
	// When both duplicates are selected in the same round, that round's
	// contributions must be identical (the symmetric case FedSV handles).
	full := dataset.GenerateImages(dataset.MNISTLikeConfig(43), 150)
	g := rng.New(44)
	train, test := dataset.TrainTestSplit(full, 50.0/150, g)
	parts := dataset.PartitionIID(train, 4, g)
	parts[3] = parts[0].Clone()
	m := model.NewMLP(full.Dim(), 6, full.NumClasses)
	cfg := fl.DefaultConfig(1, 4) // one round, everyone selected
	run, err := fl.TrainRun(cfg, m, parts, test)
	if err != nil {
		t.Fatal(err)
	}
	v := FedSV(utility.NewEvaluator(run))
	if math.Abs(v[0]-v[3]) > 1e-9 {
		t.Fatalf("duplicates valued %v and %v in a full round", v[0], v[3])
	}
}
