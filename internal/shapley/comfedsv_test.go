package shapley

import (
	"math"
	"testing"

	"comfedsv/internal/mc"
	"comfedsv/internal/utility"
)

func TestGroundTruthBalance(t *testing.T) {
	e := testEvaluator(t, 4, 3, 2, 51)
	gt := GroundTruth(e)
	var sum float64
	for _, v := range gt {
		sum += v
	}
	// Balance: Σv = Σ_t U_t(full set).
	var want float64
	n := e.Run().NumClients()
	for tr := range e.Run().Rounds {
		want += e.Utility(tr, utility.FullSet(n))
	}
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("ground-truth balance: Σv = %v, want %v", sum, want)
	}
}

func TestComFedSVExactRuns(t *testing.T) {
	e := testEvaluator(t, 5, 4, 2, 53)
	res, err := ComFedSVExact(e, mc.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 5 {
		t.Fatalf("values length %d, want 5", len(res.Values))
	}
	if res.Completion == nil || res.Store == nil {
		t.Fatal("diagnostics missing")
	}
	if res.Store.NumColumns() != (1<<5)-1 {
		t.Fatalf("registered %d columns, want 31", res.Store.NumColumns())
	}
}

func TestComFedSVExactPerfectObservationMatchesGroundTruth(t *testing.T) {
	// With full participation every round, every cell is observed; the
	// completion interpolates the data exactly (tiny λ) and ComFedSV must
	// reproduce the ground truth closely.
	e := testEvaluator(t, 4, 3, 4, 55)
	cfg := mc.DefaultConfig(4)
	cfg.Lambda = 1e-8
	cfg.WeightedReg = false
	cfg.MaxIter = 300
	res, err := ComFedSVExact(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gt := GroundTruth(e)
	for i := range gt {
		if math.Abs(res.Values[i]-gt[i]) > 0.05*(1+math.Abs(gt[i])) {
			t.Fatalf("fully observed ComFedSV %v too far from ground truth %v", res.Values, gt)
		}
	}
}

func TestComFedSVExactTooManyClients(t *testing.T) {
	e := testEvaluator(t, 3, 2, 2, 57)
	_ = e
	// Construct a fake check: the guard triggers before any heavy work.
	if _, err := ComFedSVExact(bigEvaluator(t), mc.DefaultConfig(2)); err == nil {
		t.Fatal("expected infeasibility error for large N")
	}
}

// bigEvaluator returns an evaluator over 15 clients without running
// training for all of them (only the guard is exercised).
func bigEvaluator(t *testing.T) *utility.Evaluator {
	t.Helper()
	return testEvaluator(t, 15, 1, 2, 59)
}

func TestMonteCarloMatchesExactOnSmallN(t *testing.T) {
	e := testEvaluator(t, 5, 4, 2, 61)
	exact, err := ComFedSVExact(e, mc.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	mcRes, err := MonteCarlo(e, MonteCarloConfig{
		Samples:    600,
		Completion: mc.DefaultConfig(3),
		Seed:       62,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The estimators share the valuation target; rankings should agree on
	// the extremes. We check rough numeric agreement.
	for i := range exact.Values {
		if math.Abs(exact.Values[i]-mcRes.Values[i]) > 0.2*(1+math.Abs(exact.Values[i])) {
			t.Logf("exact: %v", exact.Values)
			t.Logf("mc:    %v", mcRes.Values)
			t.Fatalf("Monte-Carlo estimate too far from exact at client %d", i)
		}
	}
}

func TestMonteCarloAssumption1CoversColumns(t *testing.T) {
	e := testEvaluator(t, 6, 4, 2, 63)
	res, err := MonteCarlo(e, DefaultMonteCarloConfig(6, 3, 64))
	if err != nil {
		t.Fatal(err)
	}
	if res.UnobservedColumns != 0 {
		t.Fatalf("with a full first round every prefix must be observed; %d missing", res.UnobservedColumns)
	}
}

func TestMonteCarloWithoutAssumption1ReportsMissing(t *testing.T) {
	// Without the full first round, most long prefixes are never observed.
	full := bigEvaluatorNoFullRound(t)
	res, err := MonteCarlo(full, DefaultMonteCarloConfig(6, 3, 66))
	if err != nil {
		t.Fatal(err)
	}
	if res.UnobservedColumns == 0 {
		t.Fatal("expected unobserved prefix columns without Assumption 1")
	}
}

func bigEvaluatorNoFullRound(t *testing.T) *utility.Evaluator {
	t.Helper()
	e := testEvaluator(t, 6, 1, 2, 67) // reuse data plumbing
	run := e.Run()
	// Re-train without the forced full round.
	cfg := flConfigNoFull()
	run2, err := retrain(cfg, run)
	if err != nil {
		t.Fatal(err)
	}
	return utility.NewEvaluator(run2)
}

func TestMonteCarloBadSamples(t *testing.T) {
	e := testEvaluator(t, 4, 2, 2, 69)
	if _, err := MonteCarlo(e, MonteCarloConfig{Samples: 0, Completion: mc.DefaultConfig(2)}); err == nil {
		t.Fatal("expected error for zero samples")
	}
}

func TestDefaultMonteCarloConfigScales(t *testing.T) {
	small := DefaultMonteCarloConfig(10, 3, 1)
	large := DefaultMonteCarloConfig(100, 3, 1)
	if large.Samples <= small.Samples {
		t.Fatal("sample count must grow with N")
	}
	if small.Samples < 10 {
		t.Fatalf("sample count %d too small for N=10", small.Samples)
	}
}

func TestMonteCarloDuplicatesFairness(t *testing.T) {
	// The headline claim: with duplicated clients, ComFedSV values them
	// nearly equally even under partial participation.
	e := duplicatedEvaluator(t, 71)
	res, err := MonteCarlo(e, DefaultMonteCarloConfig(6, 3, 72))
	if err != nil {
		t.Fatal(err)
	}
	v := res.Values
	gap := math.Abs(v[0] - v[5])
	scale := math.Max(math.Abs(v[0]), math.Abs(v[5]))
	if scale > 1e-9 && gap/scale > 0.5 {
		t.Fatalf("duplicated clients valued %v and %v (relative gap %.2f)", v[0], v[5], gap/scale)
	}
}

func TestMonteCarloAntitheticMatchesPlain(t *testing.T) {
	// Antithetic sampling changes the permutation set but estimates the
	// same quantity; with enough samples both agree with the exact values.
	e := testEvaluator(t, 5, 4, 2, 73)
	exact, err := ComFedSVExact(e, mc.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	anti, err := MonteCarlo(e, MonteCarloConfig{
		Samples:    600,
		Completion: mc.DefaultConfig(3),
		Antithetic: true,
		Seed:       74,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact.Values {
		if diff := exact.Values[i] - anti.Values[i]; diff > 0.25*(1+abs(exact.Values[i])) || diff < -0.25*(1+abs(exact.Values[i])) {
			t.Fatalf("antithetic estimate %v too far from exact %v at %d", anti.Values, exact.Values, i)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
