package shapley

import (
	"testing"

	"comfedsv/internal/dataset"
	"comfedsv/internal/fl"
	"comfedsv/internal/model"
	"comfedsv/internal/rng"
	"comfedsv/internal/utility"
)

// flConfigNoFull returns a config with the Everyone-Being-Heard round
// disabled, used by the Assumption-1 ablation tests.
func flConfigNoFull() fl.Config {
	cfg := fl.DefaultConfig(4, 2)
	cfg.ForceFullFirstRound = false
	cfg.LearningRate = 0.1
	cfg.Seed = 99
	return cfg
}

// retrain re-runs FedAvg with a new config on the same data and model as a
// previous run.
func retrain(cfg fl.Config, run *fl.Run) (*fl.Run, error) {
	return fl.TrainRun(cfg, run.Model, run.Clients, run.Test)
}

// duplicatedEvaluator builds a 6-client run where client 5 holds exactly
// client 0's data.
func duplicatedEvaluator(t *testing.T, seed int64) *utility.Evaluator {
	t.Helper()
	full := dataset.GenerateImages(dataset.MNISTLikeConfig(seed), 230)
	g := rng.New(seed + 1)
	train, test := dataset.TrainTestSplit(full, 50.0/230, g)
	parts := dataset.PartitionIID(train, 6, g)
	parts[5] = parts[0].Clone()
	m := model.NewMLP(full.Dim(), 6, full.NumClasses)
	cfg := fl.DefaultConfig(5, 2)
	cfg.LearningRate = 0.1
	cfg.Seed = seed + 2
	run, err := fl.TrainRun(cfg, m, parts, test)
	if err != nil {
		t.Fatal(err)
	}
	return utility.NewEvaluator(run)
}
