package shapley

import (
	"context"
	"errors"
	"fmt"

	"comfedsv/internal/mat"
	"comfedsv/internal/mc"
	"comfedsv/internal/rng"
	"comfedsv/internal/utility"
)

// obsCell addresses one observed utility-matrix entry by round and dense
// column index (the column was registered during plan setup, so the index
// identifies the prefix subset without rebuilding a key).
type obsCell struct{ round, col int }

// MonteCarloPlan is Algorithm 1 split into independently schedulable
// stages, so a job scheduler can fan the expensive observation work out
// over a shared worker pool instead of binding one whole valuation to one
// worker:
//
//	setup (NewMonteCarloPlan)   sample permutations, register prefix columns
//	observe (ObserveShard × S)  disjoint permutation slices evaluate their
//	                            prefix cells through the shared source
//	merge (Merge)               record values into the store in the exact
//	                            serial-pipeline order
//	complete (Complete)         solve the reduced problem (13)
//	extract (Extract)           estimate ComFedSV via the permutation form (12)
//
// Determinism is the contract: for any shard count, any shard execution
// order, and any concurrency between shards, the merged observation list —
// and therefore the completion and the final values — is byte-identical to
// the single-shard serial pipeline's. Two mechanisms make that hold: cell
// values are deterministic memoized functions of the trace (overlapping
// cells across shards agree, and the source's in-flight dedup pays each
// test loss once), and Merge re-walks the full serial visit order rather
// than concatenating shard outputs.
//
// ObserveShard calls for distinct shards are safe to run concurrently; the
// other stages are serial checkpoints (Merge after every shard, Complete
// after Merge, Extract after Complete).
type MonteCarloPlan struct {
	src utility.Source
	cfg MonteCarloConfig
	n   int
	t   int

	perms      [][]int
	prefixCols [][]int
	selected   []utility.Set // per-round selection bitsets
	store      *utility.Store
	nshards    int

	shardVals  []map[obsCell]float64 // per-shard evaluated cells
	merged     bool
	completion *mc.Result
}

// NewMonteCarloPlan samples the permutations and registers every prefix
// column, returning a plan whose observation stage is split into
// cfg.Shards disjoint permutation slices (0 means 1; the count is clamped
// to the number of permutations so every shard owns at least one).
func NewMonteCarloPlan(ctx context.Context, e utility.Source, cfg MonteCarloConfig) (*MonteCarloPlan, error) {
	if cfg.Samples <= 0 {
		return nil, fmt.Errorf("shapley: non-positive Monte-Carlo sample count %d", cfg.Samples)
	}
	n := e.Run().NumClients()
	t := len(e.Run().Rounds)
	g := rng.New(cfg.Seed)

	perms := make([][]int, cfg.Samples)
	for m := range perms {
		if cfg.Antithetic && m%2 == 1 {
			prev := perms[m-1]
			rev := make([]int, n)
			for i, c := range prev {
				rev[n-1-i] = c
			}
			perms[m] = rev
			continue
		}
		perms[m] = g.Perm(n)
	}

	store := utility.NewStore(t, n)
	// Register every prefix column and remember its dense index per
	// permutation position: prefixCols[m][j] is the column of the first
	// j+1 elements of permutation m. Registration is the only store
	// mutation before Merge, so concurrent shards may read column sets
	// freely.
	prefixCols := make([][]int, cfg.Samples)
	for m, perm := range perms {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s := utility.NewSet(n)
		cols := make([]int, n)
		for j, c := range perm {
			s.Add(c)
			cols[j] = store.ColumnOf(s)
		}
		prefixCols[m] = cols
	}

	selected := make([]utility.Set, t)
	for round, rd := range e.Run().Rounds {
		selected[round] = utility.FromMembers(n, rd.Selected)
	}

	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	if shards > cfg.Samples {
		shards = cfg.Samples
	}
	return &MonteCarloPlan{
		src:        e,
		cfg:        cfg,
		n:          n,
		t:          t,
		perms:      perms,
		prefixCols: prefixCols,
		selected:   selected,
		store:      store,
		nshards:    shards,
		shardVals:  make([]map[obsCell]float64, shards),
	}, nil
}

// Shards returns the number of observation shards.
func (p *MonteCarloPlan) Shards() int { return p.nshards }

// shardRange returns the half-open permutation slice [lo, hi) owned by a
// shard: contiguous, disjoint, and covering all permutations.
func (p *MonteCarloPlan) shardRange(shard int) (lo, hi int) {
	if shard < 0 || shard >= p.nshards {
		panic(fmt.Sprintf("shapley: observation shard %d out of [0,%d)", shard, p.nshards))
	}
	m := len(p.perms)
	return shard * m / p.nshards, (shard + 1) * m / p.nshards
}

// walkPrefixes visits every (round, prefix-column) observation cell for
// permutations in [lo, hi), in the serial pipeline's visit order: rounds
// outermost, then permutations, then prefix positions until the first
// unselected element. Duplicate cells are visited again — callers dedup.
func (p *MonteCarloPlan) walkPrefixes(ctx context.Context, lo, hi int, visit func(round, col int)) error {
	for round := 0; round < p.t; round++ {
		sel := p.selected[round]
		for m := lo; m < hi; m++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			for j, c := range p.perms[m] {
				if !sel.Contains(c) {
					break
				}
				visit(round, p.prefixCols[m][j])
			}
		}
	}
	return nil
}

// ObserveShard collects the distinct prefix cells reachable from the
// shard's permutations and evaluates them through the plan's source on a
// bounded pool (cfg.Workers per shard). Distinct shards may run
// concurrently — even across plans sharing one evaluator — because the
// source memoizes and deduplicates in-flight evaluations; a cell two
// shards both reach is paid for once.
func (p *MonteCarloPlan) ObserveShard(ctx context.Context, shard int) error {
	lo, hi := p.shardRange(shard)
	vals, err := p.observeRange(ctx, lo, hi)
	if err != nil {
		return err
	}
	p.shardVals[shard] = vals
	return nil
}

// observeRange collects the distinct prefix cells reachable from the
// permutation slice [lo, hi) and evaluates them through the plan's
// source, returning the evaluated-cell map without touching any shard
// state. It backs the local observe stages of both plan kinds and the
// worker-side ObserveSlice.
func (p *MonteCarloPlan) observeRange(ctx context.Context, lo, hi int) (map[obsCell]float64, error) {
	seen := make(map[obsCell]bool)
	var keys []obsCell
	var cells []utility.Cell
	err := p.walkPrefixes(ctx, lo, hi, func(round, col int) {
		oc := obsCell{round: round, col: col}
		if seen[oc] {
			return
		}
		seen[oc] = true
		keys = append(keys, oc)
		cells = append(cells, utility.Cell{Round: round, Subset: p.store.ColumnSet(col)})
	})
	if err != nil {
		return nil, err
	}
	vals, err := p.src.UtilityBatchCtx(ctx, cells, p.cfg.Workers)
	if err != nil {
		return nil, err
	}
	shardVals := make(map[obsCell]float64, len(keys))
	for i, k := range keys {
		shardVals[k] = vals[i]
	}
	return shardVals, nil
}

// Merge records the shard-evaluated cells into the store by re-walking the
// full serial visit order, so the observation list is byte-identical to
// the single-shard pipeline's regardless of how many shards ran or in what
// order they finished. Every shard must have been observed first.
func (p *MonteCarloPlan) Merge(ctx context.Context) error {
	combined := make(map[obsCell]float64)
	for shard, vals := range p.shardVals {
		if vals == nil {
			return fmt.Errorf("shapley: observation shard %d/%d was not run before merge", shard, p.nshards)
		}
		// Overlapping cells across shards carry equal values (the source
		// is a deterministic memoized function of the trace), so the
		// union is well defined.
		for k, v := range vals {
			combined[k] = v
		}
	}
	var missing error
	err := p.walkPrefixes(ctx, 0, len(p.perms), func(round, col int) {
		v, ok := combined[obsCell{round: round, col: col}]
		if !ok && missing == nil {
			// Cannot happen while shardRange covers every permutation; a
			// loud failure beats silently observing a zero utility.
			missing = fmt.Errorf("shapley: merge visited cell (%d,%d) no shard evaluated", round, col)
		}
		// Store.Observe ignores duplicates, so the first serial-order
		// visit of each cell wins — exactly the serial pipeline's list.
		p.store.Observe(round, p.store.ColumnSet(col), v)
	})
	if err != nil {
		return err
	}
	if missing != nil {
		return missing
	}
	p.merged = true
	return nil
}

// Complete solves the reduced matrix-completion problem (13) over the
// merged observations.
func (p *MonteCarloPlan) Complete(ctx context.Context) error {
	if !p.merged {
		return errors.New("shapley: Complete before Merge")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	completion := p.cfg.Completion
	if completion.Workers == 0 {
		completion.Workers = p.cfg.Workers
	}
	res, err := mc.Complete(toEntries(p.store.Observations()), p.t, p.store.NumColumns(), completion)
	if err != nil {
		return fmt.Errorf("shapley: completing reduced utility matrix: %w", err)
	}
	p.completion = res
	return nil
}

// Extract estimates ComFedSV via the permutation form (12) from the
// completed factorization.
func (p *MonteCarloPlan) Extract(ctx context.Context) (*MonteCarloResult, error) {
	if p.completion == nil {
		return nil, errors.New("shapley: Extract before Complete")
	}
	res := p.completion

	// Count never-observed columns (diagnostic for Assumption 1).
	observed := make([]bool, p.store.NumColumns())
	for _, o := range p.store.Observations() {
		observed[o.Col] = true
	}
	missing := 0
	for _, ok := range observed {
		if !ok {
			missing++
		}
	}

	values, err := p.estimate(ctx, len(p.perms), res)
	if err != nil {
		return nil, err
	}
	return &MonteCarloResult{
		Values:            values,
		Completion:        res,
		Store:             p.store,
		UnobservedColumns: missing,
	}, nil
}

// estimate computes the per-client ComFedSV estimates ŝ_i of the
// permutation form (12) restricted to the first m sampled permutations:
// the average over those permutations of the summed completed marginal
// contributions. The empty prefix has utility 0. It is shared by the
// full-budget Extract (m = all permutations) and the adaptive plan's
// per-wave running estimates (m = permutations merged so far).
func (p *MonteCarloPlan) estimate(ctx context.Context, m int, res *mc.Result) ([]float64, error) {
	values := make([]float64, p.n)
	for i, perm := range p.perms[:m] {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cols := p.prefixCols[i]
		for round := 0; round < p.t; round++ {
			wt := res.W.Row(round)
			prev := 0.0
			for j, client := range perm {
				cur := mat.Dot(wt, res.H.Row(cols[j]))
				values[client] += cur - prev
				prev = cur
			}
		}
	}
	inv := 1 / float64(m)
	for i := range values {
		values[i] *= inv
	}
	return values, nil
}

// ExactPlan is the exact (non-sampled) Definition 4 pipeline split into
// the same schedulable stages as MonteCarloPlan. The observation region
// {U_{t,S} : S ⊆ I_t} has no permutation structure to shard, so it runs as
// a single observe stage.
type ExactPlan struct {
	src utility.Source
	cfg mc.Config
	n   int
	t   int

	store      *utility.Store
	observed   bool
	completion *mc.Result
}

// NewExactPlan registers every subset column in mask order (so column
// index == mask−1) and validates feasibility.
func NewExactPlan(e utility.Source, cfg mc.Config) (*ExactPlan, error) {
	n := e.Run().NumClients()
	if n > 14 {
		return nil, fmt.Errorf("shapley: exact ComFedSV over 2^%d columns is infeasible; use MonteCarlo", n)
	}
	t := len(e.Run().Rounds)
	store := utility.NewStore(t, n)
	for mask := uint64(1); mask < 1<<uint(n); mask++ {
		store.ColumnOf(utility.FromMask(n, mask))
	}
	return &ExactPlan{src: e, cfg: cfg, n: n, t: t, store: store}, nil
}

// Observe records the utilities of every subset of each round's selection.
func (p *ExactPlan) Observe(ctx context.Context) error {
	if err := utility.ObserveSelectedCtx(ctx, p.src, p.store); err != nil {
		return err
	}
	p.observed = true
	return nil
}

// Complete solves the full completion problem (9) over the observations.
func (p *ExactPlan) Complete(ctx context.Context) error {
	if !p.observed {
		return errors.New("shapley: Complete before Observe")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	res, err := mc.Complete(toEntries(p.store.Observations()), p.t, p.store.NumColumns(), p.cfg)
	if err != nil {
		return fmt.Errorf("shapley: completing utility matrix: %w", err)
	}
	p.completion = res
	return nil
}

// Extract takes the exact Shapley value of the completed, per-round-summed
// utility.
func (p *ExactPlan) Extract(ctx context.Context) (*ExactResult, error) {
	if p.completion == nil {
		return nil, errors.New("shapley: Extract before Complete")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := p.completion
	// Sum the completed per-round utilities: Û(S) = Σ_t w_tᵀ h_S.
	summed := make([]float64, 1<<uint(p.n))
	for mask := uint64(1); mask < 1<<uint(p.n); mask++ {
		col := int(mask) - 1
		var s float64
		for round := 0; round < p.t; round++ {
			s += res.Predict(round, col)
		}
		summed[mask] = s
	}
	values := Exact(p.n, func(mask uint64) float64 { return summed[mask] })
	return &ExactResult{Values: values, Completion: res, Store: p.store}, nil
}
