package shapley

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"comfedsv/internal/mc"
)

func TestCtxVariantsCancelled(t *testing.T) {
	e := testEvaluator(t, 5, 4, 2, 61)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := FedSVCtx(ctx, e); !errors.Is(err, context.Canceled) {
		t.Fatalf("FedSVCtx: %v, want context.Canceled", err)
	}
	if _, err := ComFedSVExactCtx(ctx, e, mc.DefaultConfig(3)); !errors.Is(err, context.Canceled) {
		t.Fatalf("ComFedSVExactCtx: %v, want context.Canceled", err)
	}
	cfg := DefaultMonteCarloConfig(5, 3, 7)
	if _, err := MonteCarloCtx(ctx, e, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("MonteCarloCtx: %v, want context.Canceled", err)
	}
}

// TestCtxVariantsMatchPlain checks the ctx plumbing leaves results
// bit-identical under a never-cancelled context.
func TestCtxVariantsMatchPlain(t *testing.T) {
	e := testEvaluator(t, 5, 4, 2, 62)
	ctx := context.Background()

	wantFed := FedSV(e)
	gotFed, err := FedSVCtx(ctx, e)
	if err != nil || !reflect.DeepEqual(wantFed, gotFed) {
		t.Fatalf("FedSVCtx diverges: %v / err %v", gotFed, err)
	}

	wantEx, err := ComFedSVExact(e, mc.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	gotEx, err := ComFedSVExactCtx(ctx, e, mc.DefaultConfig(3))
	if err != nil || !reflect.DeepEqual(wantEx.Values, gotEx.Values) {
		t.Fatalf("ComFedSVExactCtx diverges: err %v", err)
	}

	cfg := DefaultMonteCarloConfig(5, 3, 7)
	wantMC, err := MonteCarlo(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotMC, err := MonteCarloCtx(ctx, e, cfg)
	if err != nil || !reflect.DeepEqual(wantMC.Values, gotMC.Values) {
		t.Fatalf("MonteCarloCtx diverges: err %v", err)
	}
}
