// Package shapley implements the paper's valuation metrics: the classical
// (exact) Shapley value, the federated Shapley value FedSV of Wang et al.
// (Definition 2), the paper's completed federated Shapley value ComFedSV
// (Definition 4) with its Monte-Carlo estimator (Algorithm 1), and the
// Observation-1 unfairness probability (Fig. 1).
package shapley

import (
	"fmt"
	"math"
	"math/bits"
)

// binomTable caches ln C(n,k) rows up to the largest n requested.
type binomTable struct {
	lg [][]float64
}

func newBinomTable(n int) *binomTable {
	t := &binomTable{lg: make([][]float64, n+1)}
	for i := 0; i <= n; i++ {
		t.lg[i] = make([]float64, i+1)
		for k := 0; k <= i; k++ {
			t.lg[i][k] = lnChoose(i, k)
		}
	}
	return t
}

// choose returns C(n,k) as a float64.
func (t *binomTable) choose(n, k int) float64 {
	return math.Exp(t.lg[n][k])
}

func lnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// Exact computes the classical Shapley value (Eq. 5 with c = 1/N, the
// normalization used by the paper) for a utility function over subsets of
// n ≤ 20 players given as bitmasks. u(0) is the empty-coalition utility.
func Exact(n int, u func(mask uint64) float64) []float64 {
	if n <= 0 || n > 20 {
		panic(fmt.Sprintf("shapley: exact computation supports 1..20 players, got %d", n))
	}
	bt := newBinomTable(n)
	values := make([]float64, n)
	full := uint64(1)<<uint(n) - 1
	for i := 0; i < n; i++ {
		bit := uint64(1) << uint(i)
		rest := full &^ bit
		var total float64
		// Enumerate all subsets S of I\{i} including the empty set.
		for s := uint64(0); ; s = (s - rest) & rest {
			size := bits.OnesCount64(s)
			w := 1 / (float64(n) * bt.choose(n-1, size))
			total += w * (u(s|bit) - u(s))
			if s == rest {
				break
			}
		}
		values[i] = total
	}
	return values
}

// ExactOnPermutations computes the Shapley value of the same utility by
// averaging marginal contributions over all n! permutations. It is an
// O(n!·n) reference implementation used to cross-validate Exact in tests;
// practical only for n ≤ 8.
func ExactOnPermutations(n int, u func(mask uint64) float64) []float64 {
	if n <= 0 || n > 8 {
		panic(fmt.Sprintf("shapley: permutation enumeration supports 1..8 players, got %d", n))
	}
	values := make([]float64, n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	count := 0
	var visit func(k int)
	visit = func(k int) {
		if k == n {
			count++
			var mask uint64
			for _, p := range perm {
				bit := uint64(1) << uint(p)
				values[p] += u(mask|bit) - u(mask)
				mask |= bit
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			visit(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	visit(0)
	inv := 1 / float64(count)
	for i := range values {
		values[i] *= inv
	}
	return values
}
