package shapley

import (
	"context"
	"fmt"
	"math"

	"comfedsv/internal/mat"
	"comfedsv/internal/mc"
	"comfedsv/internal/rng"
	"comfedsv/internal/utility"
)

// GroundTruth computes the paper's "ground-truth" baseline: ComFedSV
// evaluated on the *fully observed* utility matrix, i.e. the exact Shapley
// value of the summed per-round utility U(S) = Σ_t U_t(S). Feasible only
// for small N (it evaluates all 2^N−1 coalitions in every round).
func GroundTruth(e utility.Source) []float64 {
	n := e.Run().NumClients()
	full := utility.FullMatrix(e)
	_, cols := full.Dims()
	summed := make([]float64, cols)
	for t := range e.Run().Rounds {
		row := full.Row(t)
		for j, v := range row {
			summed[j] += v
		}
	}
	return Exact(n, func(mask uint64) float64 { return summed[mask] })
}

// ExactResult is the outcome of the exact (non-sampled) ComFedSV pipeline.
type ExactResult struct {
	// Values are the ComFedSV valuations, one per client.
	Values []float64
	// Completion is the fitted low-rank factorization of problem (9).
	Completion *mc.Result
	// Store holds the observed entries {U_{t,S} : S ⊆ I_t} fed to (9).
	Store *utility.Store
}

// ComFedSVExact runs the paper's Definition 4 pipeline without sampling:
// observe all subsets of the selected clients per round, complete the full
// T×(2^N−1) utility matrix (problem 9), and take the exact Shapley value of
// the completed, per-round-summed utility. Feasible for N ≤ ~14.
func ComFedSVExact(e utility.Source, cfg mc.Config) (*ExactResult, error) {
	return ComFedSVExactCtx(context.Background(), e, cfg)
}

// ComFedSVExactCtx is ComFedSVExact with cooperative cancellation, checked
// at every observation-round boundary and between pipeline steps. The
// matrix-completion solve itself is not interruptible but is bounded by
// cfg.MaxIter.
func ComFedSVExactCtx(ctx context.Context, e utility.Source, cfg mc.Config) (*ExactResult, error) {
	n := e.Run().NumClients()
	if n > 14 {
		return nil, fmt.Errorf("shapley: exact ComFedSV over 2^%d columns is infeasible; use MonteCarlo", n)
	}
	t := len(e.Run().Rounds)
	store := utility.NewStore(t, n)
	// Register columns in mask order so column index == mask−1.
	for mask := uint64(1); mask < 1<<uint(n); mask++ {
		store.ColumnOf(utility.FromMask(n, mask))
	}
	if err := utility.ObserveSelectedCtx(ctx, e, store); err != nil {
		return nil, err
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := mc.Complete(toEntries(store.Observations()), t, store.NumColumns(), cfg)
	if err != nil {
		return nil, fmt.Errorf("shapley: completing utility matrix: %w", err)
	}

	// Sum the completed per-round utilities: Û(S) = Σ_t w_tᵀ h_S.
	summed := make([]float64, 1<<uint(n))
	for mask := uint64(1); mask < 1<<uint(n); mask++ {
		col := int(mask) - 1
		var s float64
		for round := 0; round < t; round++ {
			s += res.Predict(round, col)
		}
		summed[mask] = s
	}
	values := Exact(n, func(mask uint64) float64 { return summed[mask] })
	return &ExactResult{Values: values, Completion: res, Store: store}, nil
}

// MonteCarloConfig parameterizes Algorithm 1.
type MonteCarloConfig struct {
	// Samples is the number of Monte-Carlo permutations M. Maleki et al.
	// show M = O(N log N) suffices for bounded utilities.
	Samples int
	// Completion configures the reduced matrix-completion problem (13).
	Completion mc.Config
	// Antithetic samples permutations in reversed pairs (π, reverse π).
	// A player early in π is late in reverse(π), so the two marginal-
	// contribution estimates are negatively correlated and their average
	// has lower variance — a classical Monte-Carlo variance-reduction
	// device layered on Algorithm 1 (see BenchmarkAblationAntithetic).
	Antithetic bool
	// Seed drives permutation sampling.
	Seed int64
	// Workers bounds the number of concurrent utility evaluations in the
	// observation stage; 0 means GOMAXPROCS. It also seeds
	// Completion.Workers when that is left 0, so one knob parallelizes the
	// whole pipeline. The estimate is bit-identical for every worker
	// count: cells are evaluated by a deterministic pipeline and recorded
	// into the Store in the serial order.
	Workers int
}

// DefaultMonteCarloConfig returns M ≈ 2·N·ln(N) samples and the default
// completion settings at the given rank.
func DefaultMonteCarloConfig(n, rank int, seed int64) MonteCarloConfig {
	m := int(2*float64(n)*math.Log(math.Max(float64(n), 2))) + 1
	return MonteCarloConfig{Samples: m, Completion: mc.DefaultConfig(rank), Seed: seed}
}

// MonteCarloResult is the outcome of Algorithm 1.
type MonteCarloResult struct {
	// Values are the estimated ComFedSV valuations ŝ_i (Eq. 12).
	Values []float64
	// Completion is the fitted factorization of the reduced problem (13).
	Completion *mc.Result
	// Store holds the observed entries {U_{t,π_m(i)} : π_m(i) ⊆ I_t}.
	Store *utility.Store
	// UnobservedColumns counts permutation-prefix columns that were never
	// observed in any round. Under Assumption 1 (full first round) this is
	// always 0; without it the completion silently degrades — see the
	// Everyone-Being-Heard ablation.
	UnobservedColumns int
}

// MonteCarlo implements Algorithm 1: sample M permutations, observe the
// utilities of permutation prefixes contained in each round's selection,
// solve the reduced completion problem (13), and estimate ComFedSV via the
// permutation form (12).
func MonteCarlo(e utility.Source, cfg MonteCarloConfig) (*MonteCarloResult, error) {
	return MonteCarloCtx(context.Background(), e, cfg)
}

// MonteCarloCtx is MonteCarlo with cooperative cancellation, checked at
// every observation-round boundary (the utility-call hot loop), between
// pipeline steps, and per permutation during setup and estimation. The
// matrix-completion solve itself is not interruptible but is bounded by
// cfg.Completion.MaxIter.
func MonteCarloCtx(ctx context.Context, e utility.Source, cfg MonteCarloConfig) (*MonteCarloResult, error) {
	if cfg.Samples <= 0 {
		return nil, fmt.Errorf("shapley: non-positive Monte-Carlo sample count %d", cfg.Samples)
	}
	n := e.Run().NumClients()
	t := len(e.Run().Rounds)
	g := rng.New(cfg.Seed)

	perms := make([][]int, cfg.Samples)
	for m := range perms {
		if cfg.Antithetic && m%2 == 1 {
			prev := perms[m-1]
			rev := make([]int, n)
			for i, c := range prev {
				rev[n-1-i] = c
			}
			perms[m] = rev
			continue
		}
		perms[m] = g.Perm(n)
	}

	store := utility.NewStore(t, n)
	// Register every prefix column and remember its dense index per
	// permutation position: prefixCols[m][j] is the column of the first
	// j+1 elements of permutation m.
	prefixCols := make([][]int, cfg.Samples)
	for m, perm := range perms {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s := utility.NewSet(n)
		cols := make([]int, n)
		for j, c := range perm {
			s.Add(c)
			cols[j] = store.ColumnOf(s)
		}
		prefixCols[m] = cols
	}

	// Observation stage: the prefixes contained in each round's selection.
	// Walking the permutation in order, prefixes stop being subsets of I_t
	// at the first unselected element. The expensive test-loss evaluations
	// are fanned out over a bounded worker pool, so the stage is split in
	// three deterministic steps: collect the distinct (round, prefix)
	// cells in the exact order the serial walk visits them, evaluate them
	// concurrently through the shared evaluator cache, then record into
	// the store in that same serial order — the resulting observation list
	// is byte-identical to the serial pipeline's for any worker count.
	type obsCell struct{ round, col int }
	var cells []utility.Cell
	seen := make(map[obsCell]bool)
	for round, rd := range e.Run().Rounds {
		selected := utility.FromMembers(n, rd.Selected)
		for m, perm := range perms {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for j, c := range perm {
				if !selected.Contains(c) {
					break
				}
				// The prefix's column index was registered during setup;
				// it identifies the subset without rebuilding a key, and
				// the registered column set is the prefix itself.
				oc := obsCell{round: round, col: prefixCols[m][j]}
				if seen[oc] {
					continue
				}
				seen[oc] = true
				cells = append(cells, utility.Cell{Round: round, Subset: store.ColumnSet(oc.col)})
			}
		}
	}
	vals, err := e.UtilityBatchCtx(ctx, cells, cfg.Workers)
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		store.Observe(c.Round, c.Subset, vals[i])
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	completion := cfg.Completion
	if completion.Workers == 0 {
		completion.Workers = cfg.Workers
	}
	res, err := mc.Complete(toEntries(store.Observations()), t, store.NumColumns(), completion)
	if err != nil {
		return nil, fmt.Errorf("shapley: completing reduced utility matrix: %w", err)
	}

	// Count never-observed columns (diagnostic for Assumption 1).
	observed := make([]bool, store.NumColumns())
	for _, o := range store.Observations() {
		observed[o.Col] = true
	}
	missing := 0
	for _, ok := range observed {
		if !ok {
			missing++
		}
	}

	// Estimate ŝ_i per (12): average over permutations of the summed
	// completed marginal contributions. The empty prefix has utility 0.
	values := make([]float64, n)
	for m, perm := range perms {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cols := prefixCols[m]
		for round := 0; round < t; round++ {
			wt := res.W.Row(round)
			prev := 0.0
			for j, client := range perm {
				cur := mat.Dot(wt, res.H.Row(cols[j]))
				values[client] += cur - prev
				prev = cur
			}
		}
	}
	inv := 1 / float64(cfg.Samples)
	for i := range values {
		values[i] *= inv
	}
	return &MonteCarloResult{
		Values:            values,
		Completion:        res,
		Store:             store,
		UnobservedColumns: missing,
	}, nil
}

func toEntries(obs []utility.Observation) []mc.Entry {
	out := make([]mc.Entry, len(obs))
	for i, o := range obs {
		out[i] = mc.Entry{Row: o.Row, Col: o.Col, Val: o.Val}
	}
	return out
}
