package shapley

import (
	"context"
	"math"

	"comfedsv/internal/mc"
	"comfedsv/internal/utility"
)

// GroundTruth computes the paper's "ground-truth" baseline: ComFedSV
// evaluated on the *fully observed* utility matrix, i.e. the exact Shapley
// value of the summed per-round utility U(S) = Σ_t U_t(S). Feasible only
// for small N (it evaluates all 2^N−1 coalitions in every round).
func GroundTruth(e utility.Source) []float64 {
	n := e.Run().NumClients()
	full := utility.FullMatrix(e)
	_, cols := full.Dims()
	summed := make([]float64, cols)
	for t := range e.Run().Rounds {
		row := full.Row(t)
		for j, v := range row {
			summed[j] += v
		}
	}
	return Exact(n, func(mask uint64) float64 { return summed[mask] })
}

// ExactResult is the outcome of the exact (non-sampled) ComFedSV pipeline.
type ExactResult struct {
	// Values are the ComFedSV valuations, one per client.
	Values []float64
	// Completion is the fitted low-rank factorization of problem (9).
	Completion *mc.Result
	// Store holds the observed entries {U_{t,S} : S ⊆ I_t} fed to (9).
	Store *utility.Store
}

// ComFedSVExact runs the paper's Definition 4 pipeline without sampling:
// observe all subsets of the selected clients per round, complete the full
// T×(2^N−1) utility matrix (problem 9), and take the exact Shapley value of
// the completed, per-round-summed utility. Feasible for N ≤ ~14.
func ComFedSVExact(e utility.Source, cfg mc.Config) (*ExactResult, error) {
	return ComFedSVExactCtx(context.Background(), e, cfg)
}

// ComFedSVExactCtx is ComFedSVExact with cooperative cancellation, checked
// at every observation-round boundary and between pipeline steps. The
// matrix-completion solve itself is not interruptible but is bounded by
// cfg.MaxIter. It drives an ExactPlan's stages serially; schedulers that
// want to interleave the stages with other work use the plan directly.
func ComFedSVExactCtx(ctx context.Context, e utility.Source, cfg mc.Config) (*ExactResult, error) {
	p, err := NewExactPlan(e, cfg)
	if err != nil {
		return nil, err
	}
	if err := p.Observe(ctx); err != nil {
		return nil, err
	}
	if err := p.Complete(ctx); err != nil {
		return nil, err
	}
	return p.Extract(ctx)
}

// MonteCarloConfig parameterizes Algorithm 1.
type MonteCarloConfig struct {
	// Samples is the number of Monte-Carlo permutations M. Maleki et al.
	// show M = O(N log N) suffices for bounded utilities.
	Samples int
	// Completion configures the reduced matrix-completion problem (13).
	Completion mc.Config
	// Antithetic samples permutations in reversed pairs (π, reverse π).
	// A player early in π is late in reverse(π), so the two marginal-
	// contribution estimates are negatively correlated and their average
	// has lower variance — a classical Monte-Carlo variance-reduction
	// device layered on Algorithm 1 (see BenchmarkAblationAntithetic).
	Antithetic bool
	// Seed drives permutation sampling.
	Seed int64
	// Workers bounds the number of concurrent utility evaluations in the
	// observation stage (per shard); 0 means GOMAXPROCS. It also seeds
	// Completion.Workers when that is left 0, so one knob parallelizes the
	// whole pipeline. The estimate is bit-identical for every worker
	// count: cells are evaluated by a deterministic pipeline and recorded
	// into the Store in the serial order.
	Workers int
	// Shards splits the observation stage into that many disjoint
	// permutation slices (0 means 1). MonteCarloCtx runs them serially;
	// schedulers use MonteCarloPlan to run them concurrently. The estimate
	// is bit-identical for every shard count.
	Shards int
}

// DefaultMonteCarloConfig returns M ≈ 2·N·ln(N) samples and the default
// completion settings at the given rank.
func DefaultMonteCarloConfig(n, rank int, seed int64) MonteCarloConfig {
	m := int(2*float64(n)*math.Log(math.Max(float64(n), 2))) + 1
	return MonteCarloConfig{Samples: m, Completion: mc.DefaultConfig(rank), Seed: seed}
}

// MonteCarloResult is the outcome of Algorithm 1.
type MonteCarloResult struct {
	// Values are the estimated ComFedSV valuations ŝ_i (Eq. 12).
	Values []float64
	// Completion is the fitted factorization of the reduced problem (13).
	Completion *mc.Result
	// Store holds the observed entries {U_{t,π_m(i)} : π_m(i) ⊆ I_t}.
	Store *utility.Store
	// UnobservedColumns counts permutation-prefix columns that were never
	// observed in any round. Under Assumption 1 (full first round) this is
	// always 0; without it the completion silently degrades — see the
	// Everyone-Being-Heard ablation.
	UnobservedColumns int
}

// MonteCarlo implements Algorithm 1: sample M permutations, observe the
// utilities of permutation prefixes contained in each round's selection,
// solve the reduced completion problem (13), and estimate ComFedSV via the
// permutation form (12).
func MonteCarlo(e utility.Source, cfg MonteCarloConfig) (*MonteCarloResult, error) {
	return MonteCarloCtx(context.Background(), e, cfg)
}

// MonteCarloCtx is MonteCarlo with cooperative cancellation, checked at
// every observation boundary (the utility-call hot loop), between pipeline
// steps, and per permutation during setup and estimation. The matrix-
// completion solve itself is not interruptible but is bounded by
// cfg.Completion.MaxIter. It drives a MonteCarloPlan's stages serially —
// observation shards one after another — so the result is byte-identical
// to a scheduler running the same plan's shards concurrently.
func MonteCarloCtx(ctx context.Context, e utility.Source, cfg MonteCarloConfig) (*MonteCarloResult, error) {
	p, err := NewMonteCarloPlan(ctx, e, cfg)
	if err != nil {
		return nil, err
	}
	for shard := 0; shard < p.Shards(); shard++ {
		if err := p.ObserveShard(ctx, shard); err != nil {
			return nil, err
		}
	}
	if err := p.Merge(ctx); err != nil {
		return nil, err
	}
	if err := p.Complete(ctx); err != nil {
		return nil, err
	}
	return p.Extract(ctx)
}

func toEntries(obs []utility.Observation) []mc.Entry {
	out := make([]mc.Entry, len(obs))
	for i, o := range obs {
		out[i] = mc.Entry{Row: o.Row, Col: o.Col, Val: o.Val}
	}
	return out
}
