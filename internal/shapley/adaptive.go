package shapley

import (
	"context"
	"errors"
	"fmt"
	"math"

	"comfedsv/internal/mc"
	"comfedsv/internal/utility"
)

// AdaptiveConfig parameterizes the tolerance-driven variant of Algorithm 1:
// instead of exhausting a fixed permutation budget, sampling proceeds in
// waves and stops as soon as the per-client Shapley estimates stabilize.
type AdaptiveConfig struct {
	// MonteCarloConfig carries the usual knobs; Samples is the permutation
	// *budget* — the hard ceiling an adaptive run never exceeds, and the
	// sample count it degrades to when the estimates refuse to settle.
	MonteCarloConfig
	// Tolerance is the convergence threshold: after each wave the plan
	// recompletes the utility matrix and re-estimates every client's value
	// over all permutations merged so far, and sampling stops once the
	// largest absolute per-client change from the previous wave's estimate
	// is at most Tolerance. Must be positive and finite.
	Tolerance float64
}

// WaveStat describes one completed sampling wave of an adaptive plan.
type WaveStat struct {
	// Samples is the cumulative number of permutations merged after this
	// wave (the wave's convergence-check point).
	Samples int
	// Shards is how many observation shards the wave was split into.
	Shards int
	// CompletionIterations is the ALS sweep count of the wave's completion
	// solve — warm-started waves should need far fewer than the first.
	CompletionIterations int
	// MaxDelta is the largest absolute per-client change from the previous
	// wave's estimate, −1 for the first wave (nothing to compare against).
	MaxDelta float64
}

// AdaptivePlan is the wave-scheduled, tolerance-driven Monte-Carlo
// pipeline. It reuses MonteCarloPlan's full-budget machinery (sampled
// permutations, registered prefix columns, the observation store) and
// replaces the single fixed observation pass with a converge-don't-budget
// loop:
//
//	setup (NewAdaptivePlan)      sample the full budget of permutations,
//	                             register prefix columns, cut wave bounds
//	observe (ObserveShard × k)   the current wave's disjoint permutation
//	                             slices evaluate their prefix cells
//	advance (Advance)            merge the wave in serial order, solve the
//	                             completion (warm-started from the previous
//	                             wave's factors), re-estimate every client,
//	                             and apply the convergence rule — returning
//	                             either the next wave's shard count or 0
//	extract (Extract)            assemble the result from the stopping
//	                             wave's completion and estimates
//
// Determinism is the same pinned contract as MonteCarloPlan's, extended to
// the stopping decision: the wave boundaries are a pure function of the
// budget, the merged observation list is re-walked in serial order, the
// warm-started completions are pure functions of their inputs, and the
// convergence rule reads only the seed-determined merged estimates — so
// the wave at which sampling stops, and therefore the final values, are
// byte-identical for every shard count and every worker count.
//
// ObserveShard calls for the current wave's shards are safe to run
// concurrently; Advance must be called only after every shard it scheduled
// has returned, and is itself a serial checkpoint.
type AdaptivePlan struct {
	base *MonteCarloPlan
	tol  float64

	bounds []int // cumulative permutation counts per wave, last == budget
	wave   int   // index of the wave currently being observed

	slices    []waveSlice // global shard id → permutation slice
	shardVals []map[obsCell]float64

	est        []float64
	completion *mc.Result
	stats      []WaveStat
	finished   bool
	used       int
}

// waveSlice is one observation shard's permutation range within its wave.
type waveSlice struct{ wave, lo, hi int }

// NewAdaptivePlan samples the full permutation budget, registers every
// prefix column, and schedules the first wave. The returned plan's
// Shards() is the first wave's shard count.
func NewAdaptivePlan(ctx context.Context, e utility.Source, cfg AdaptiveConfig) (*AdaptivePlan, error) {
	if math.IsNaN(cfg.Tolerance) || math.IsInf(cfg.Tolerance, 0) || cfg.Tolerance <= 0 {
		return nil, fmt.Errorf("shapley: adaptive tolerance must be positive and finite, got %v", cfg.Tolerance)
	}
	base, err := NewMonteCarloPlan(ctx, e, cfg.MonteCarloConfig)
	if err != nil {
		return nil, err
	}
	p := &AdaptivePlan{
		base:   base,
		tol:    cfg.Tolerance,
		bounds: waveBounds(cfg.Samples),
	}
	p.scheduleWave(0)
	return p, nil
}

// waveBounds cuts a permutation budget into the cumulative check points of
// the adaptive schedule: the first wave is budget/8 (at least 16, at most
// the budget) and each later wave doubles the cumulative count until the
// budget is reached. Doubling keeps the number of completion solves
// logarithmic in the budget while the early check points stay cheap enough
// that a fast-converging job saves most of its observations. The bounds
// are a pure function of the budget — never of shard count, worker count,
// or anything observed at run time — which is what lets the stopping
// decision stay byte-identical across scheduling configurations.
func waveBounds(budget int) []int {
	first := budget / 8
	if first < 16 {
		first = 16
	}
	if first > budget {
		first = budget
	}
	bounds := []int{first}
	for last := first; last < budget; {
		last *= 2
		if last > budget {
			last = budget
		}
		bounds = append(bounds, last)
	}
	return bounds
}

// scheduleWave appends wave w's shard slices (contiguous, disjoint,
// covering the wave's permutations) and returns how many it added. The
// requested shard count is clamped to the wave's permutation count so
// every shard owns at least one permutation.
func (p *AdaptivePlan) scheduleWave(w int) int {
	lo := 0
	if w > 0 {
		lo = p.bounds[w-1]
	}
	hi := p.bounds[w]
	k := p.base.cfg.Shards
	if k <= 0 {
		k = 1
	}
	if k > hi-lo {
		k = hi - lo
	}
	for i := 0; i < k; i++ {
		p.slices = append(p.slices, waveSlice{
			wave: w,
			lo:   lo + i*(hi-lo)/k,
			hi:   lo + (i+1)*(hi-lo)/k,
		})
		p.shardVals = append(p.shardVals, nil)
	}
	return k
}

// Shards returns the number of observation shards scheduled so far (the
// first wave's count right after construction; Advance grows it).
func (p *AdaptivePlan) Shards() int { return len(p.slices) }

// Waves returns the per-wave statistics recorded by Advance so far.
func (p *AdaptivePlan) Waves() []WaveStat { return p.stats }

// Used returns the number of permutations the stopped plan consumed; valid
// after Advance has returned 0.
func (p *AdaptivePlan) Used() int { return p.used }

// Budget returns the permutation budget (the fixed-mode sample count an
// adaptive run is capped at).
func (p *AdaptivePlan) Budget() int { return len(p.base.perms) }

// ObserveShard collects and evaluates the distinct prefix cells reachable
// from one scheduled shard's permutation slice, exactly as the fixed
// plan's observe stage does. Shards of the current wave may run
// concurrently; a shard index the plan has not scheduled yet panics.
func (p *AdaptivePlan) ObserveShard(ctx context.Context, shard int) error {
	if shard < 0 || shard >= len(p.slices) {
		panic(fmt.Sprintf("shapley: adaptive observation shard %d out of [0,%d)", shard, len(p.slices)))
	}
	sl := p.slices[shard]
	vals, err := p.base.observeRange(ctx, sl.lo, sl.hi)
	if err != nil {
		return err
	}
	p.shardVals[shard] = vals
	return nil
}

// Advance is the wave checkpoint: it merges the current wave's shard
// observations into the store in deterministic serial order, solves the
// completion (warm-started from the previous wave's factors, so the
// re-solve converges in a fraction of the sweeps), re-estimates every
// client over all merged permutations, and applies the convergence rule.
// It returns the number of newly scheduled observation shards — 0 means
// the plan converged (or exhausted its budget) and Extract may run. Every
// shard scheduled so far must have been observed first.
func (p *AdaptivePlan) Advance(ctx context.Context) (more int, err error) {
	if p.finished {
		return 0, errors.New("shapley: Advance after the adaptive plan finished")
	}
	lo := 0
	if p.wave > 0 {
		lo = p.bounds[p.wave-1]
	}
	hi := p.bounds[p.wave]

	// Merge the wave: union its shard maps (overlapping cells carry equal
	// values — the source is a deterministic memoized function of the
	// trace), then record the wave's *new* cells by re-walking the wave's
	// permutation range in the serial pipeline's visit order. Cells already
	// observed by an earlier wave are ignored by the store, so the merged
	// observation list is identical to a serial pipeline that walked wave
	// after wave — regardless of shard count or completion order.
	combined := make(map[obsCell]float64)
	for shard, sl := range p.slices {
		if sl.wave != p.wave {
			continue
		}
		vals := p.shardVals[shard]
		if vals == nil {
			return 0, fmt.Errorf("shapley: adaptive shard %d (wave %d) was not run before Advance", shard, p.wave)
		}
		for k, v := range vals {
			combined[k] = v
		}
	}
	var missing error
	err = p.base.walkPrefixes(ctx, lo, hi, func(round, col int) {
		v, ok := combined[obsCell{round: round, col: col}]
		if !ok && missing == nil {
			missing = fmt.Errorf("shapley: adaptive merge visited cell (%d,%d) no shard evaluated", round, col)
		}
		p.base.store.Observe(round, p.base.store.ColumnSet(col), v)
	})
	if err != nil {
		return 0, err
	}
	if missing != nil {
		return 0, missing
	}

	// Re-complete over everything merged so far. The factor shapes are
	// fixed by the full-budget column registration, so the previous wave's
	// factors align row-for-row and warm-start the solve; a warm solve
	// needs no restarts — its job is refinement, not basin search.
	cc := p.base.cfg.Completion
	if cc.Workers == 0 {
		cc.Workers = p.base.cfg.Workers
	}
	if p.completion != nil {
		cc.Warm = &mc.Warm{W: p.completion.W, H: p.completion.H}
		cc.Restarts = 1
	}
	res, cerr := mc.Complete(toEntries(p.base.store.Observations()), p.base.t, p.base.store.NumColumns(), cc)
	if cerr != nil {
		return 0, fmt.Errorf("shapley: completing wave %d: %w", p.wave, cerr)
	}
	est, eerr := p.base.estimate(ctx, hi, res)
	if eerr != nil {
		return 0, eerr
	}

	// The convergence rule — a pure function of the merged estimates: stop
	// once no client's estimate moved more than the tolerance since the
	// previous wave. The first wave has nothing to compare against and
	// never stops (MaxDelta −1).
	delta := -1.0
	converged := false
	if p.wave > 0 {
		delta = 0
		for i, v := range est {
			if d := math.Abs(v - p.est[i]); d > delta {
				delta = d
			}
		}
		converged = delta <= p.tol
	}
	p.stats = append(p.stats, WaveStat{
		Samples:              hi,
		Shards:               p.waveShardCount(p.wave),
		CompletionIterations: res.Iterations,
		MaxDelta:             delta,
	})
	p.completion = res
	p.est = est

	if converged || p.wave == len(p.bounds)-1 {
		p.finished = true
		p.used = hi
		return 0, nil
	}
	p.wave++
	return p.scheduleWave(p.wave), nil
}

// waveShardCount returns how many shards wave w was split into.
func (p *AdaptivePlan) waveShardCount(w int) int {
	n := 0
	for _, sl := range p.slices {
		if sl.wave == w {
			n++
		}
	}
	return n
}

// Extract assembles the result from the stopping wave's completion and
// estimates. The unobserved-column diagnostic counts only columns
// reachable from the permutations actually used — columns registered for
// the unsampled remainder of the budget are not "missing", they were
// deliberately skipped.
func (p *AdaptivePlan) Extract(ctx context.Context) (*MonteCarloResult, error) {
	if !p.finished {
		return nil, errors.New("shapley: Extract before the adaptive plan finished")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	observed := make([]bool, p.base.store.NumColumns())
	for _, o := range p.base.store.Observations() {
		observed[o.Col] = true
	}
	reachable := make(map[int]bool)
	for _, cols := range p.base.prefixCols[:p.used] {
		for _, c := range cols {
			reachable[c] = true
		}
	}
	missing := 0
	for c := range reachable {
		if !observed[c] {
			missing++
		}
	}
	return &MonteCarloResult{
		Values:            p.est,
		Completion:        p.completion,
		Store:             p.base.store,
		UnobservedColumns: missing,
	}, nil
}
