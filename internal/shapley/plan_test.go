package shapley

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"comfedsv/internal/mc"
)

// planConfig is a small Monte-Carlo config exercised by every plan test.
func planConfig(shards int) MonteCarloConfig {
	cfg := DefaultMonteCarloConfig(6, 3, 51)
	cfg.Samples = 24
	cfg.Shards = shards
	return cfg
}

// TestMonteCarloShardCountInvariant pins the tentpole determinism
// guarantee at the shapley layer: the observation list, the completion,
// and the final values are identical for shard counts 1, 2, and 8.
func TestMonteCarloShardCountInvariant(t *testing.T) {
	e := duplicatedEvaluator(t, 500)
	base, err := MonteCarlo(e, planConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 8} {
		got, err := MonteCarlo(e, planConfig(shards))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(got.Values, base.Values) {
			t.Fatalf("shards=%d values diverge:\n%v\nvs\n%v", shards, got.Values, base.Values)
		}
		if !reflect.DeepEqual(got.Store.Observations(), base.Store.Observations()) {
			t.Fatalf("shards=%d observation list diverges from serial order", shards)
		}
		if got.UnobservedColumns != base.UnobservedColumns {
			t.Fatalf("shards=%d unobserved columns %d, want %d", shards, got.UnobservedColumns, base.UnobservedColumns)
		}
	}
}

// TestMonteCarloPlanShardOrderInvariant runs the shards of one plan in
// reverse and concurrently: Merge must still record the serial order, so
// the result matches the plain pipeline byte for byte.
func TestMonteCarloPlanShardOrderInvariant(t *testing.T) {
	e := duplicatedEvaluator(t, 501)
	want, err := MonteCarlo(e, planConfig(1))
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	// Reverse order.
	p, err := NewMonteCarloPlan(ctx, e, planConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	for shard := p.Shards() - 1; shard >= 0; shard-- {
		if err := p.ObserveShard(ctx, shard); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Merge(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.Complete(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := p.Extract(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Values, want.Values) {
		t.Fatal("reverse-order shard execution changed the values")
	}
	if !reflect.DeepEqual(got.Store.Observations(), want.Store.Observations()) {
		t.Fatal("reverse-order shard execution changed the observation list")
	}

	// Concurrent execution (meaningful under -race: shards share the
	// evaluator and read-only plan state).
	p2, err := NewMonteCarloPlan(ctx, e, planConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, p2.Shards())
	for shard := 0; shard < p2.Shards(); shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			errs[shard] = p2.ObserveShard(ctx, shard)
		}(shard)
	}
	wg.Wait()
	for shard, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
	}
	if err := p2.Merge(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p2.Complete(ctx); err != nil {
		t.Fatal(err)
	}
	got2, err := p2.Extract(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2.Values, want.Values) {
		t.Fatal("concurrent shard execution changed the values")
	}
	if !reflect.DeepEqual(got2.Store.Observations(), want.Store.Observations()) {
		t.Fatal("concurrent shard execution changed the observation list")
	}
}

// TestMonteCarloPlanStageOrderErrors pins the plan's stage contract:
// skipping a stage is a loud error, not silent corruption.
func TestMonteCarloPlanStageOrderErrors(t *testing.T) {
	e := duplicatedEvaluator(t, 502)
	ctx := context.Background()
	p, err := NewMonteCarloPlan(ctx, e, planConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Merge(ctx); err == nil {
		t.Fatal("Merge before observing every shard must fail")
	}
	if err := p.Complete(ctx); err == nil {
		t.Fatal("Complete before Merge must fail")
	}
	if _, err := p.Extract(ctx); err == nil {
		t.Fatal("Extract before Complete must fail")
	}
	if err := p.ObserveShard(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Merge(ctx); err == nil {
		t.Fatal("Merge with an unobserved shard must fail")
	}

	ep, err := NewExactPlan(e, mc.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Complete(ctx); err == nil {
		t.Fatal("exact Complete before Observe must fail")
	}
	if _, err := ep.Extract(ctx); err == nil {
		t.Fatal("exact Extract before Complete must fail")
	}
}

// TestMonteCarloShardClamp pins the shard-count clamp: more shards than
// permutations collapse to one shard per permutation, and the result still
// matches the serial pipeline.
func TestMonteCarloShardClamp(t *testing.T) {
	e := duplicatedEvaluator(t, 503)
	cfg := planConfig(0)
	cfg.Samples = 3
	p, err := NewMonteCarloPlan(context.Background(), e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 1 {
		t.Fatalf("Shards() = %d for Shards=0, want 1", p.Shards())
	}
	cfg.Shards = 64
	p, err = NewMonteCarloPlan(context.Background(), e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 3 {
		t.Fatalf("Shards() = %d for 64 shards over 3 permutations, want 3", p.Shards())
	}
	want, err := MonteCarlo(e, MonteCarloConfig{Samples: 3, Completion: mc.DefaultConfig(3), Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MonteCarlo(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Values, want.Values) {
		t.Fatal("over-sharded pipeline diverges from serial")
	}
}
