package shapley

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// shardDigest hashes one observation shard's evaluated cells into a short
// hex token. The walk order is canonical — cells sorted by (round, col),
// each contributing its coordinates and the raw IEEE-754 bits of its
// value — so the digest is a pure function of the shard's observation
// *content*, independent of map iteration order or evaluation timing.
//
// The comfedsvd journal records this digest when a shard completes; crash
// recovery re-executes the shard (observation is a deterministic function
// of the journaled request) and verifies the re-derived cells hash
// identically, turning any determinism violation into a loud failure
// instead of a silently different report.
func shardDigest(vals map[obsCell]float64) string {
	if vals == nil {
		return ""
	}
	keys := make([]obsCell, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].round != keys[j].round {
			return keys[i].round < keys[j].round
		}
		return keys[i].col < keys[j].col
	})
	h := fnv.New64a()
	var buf [24]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(buf[0:8], uint64(k.round))
		binary.LittleEndian.PutUint64(buf[8:16], uint64(k.col))
		binary.LittleEndian.PutUint64(buf[16:24], math.Float64bits(vals[k]))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// ShardDigest returns the content hash of an observed shard's evaluated
// cells, or "" if the shard has not been observed yet.
func (p *MonteCarloPlan) ShardDigest(shard int) string {
	if shard < 0 || shard >= len(p.shardVals) {
		return ""
	}
	return shardDigest(p.shardVals[shard])
}

// ShardDigest returns the content hash of an observed shard's evaluated
// cells, or "" if the shard has not been observed yet.
func (p *AdaptivePlan) ShardDigest(shard int) string {
	if shard < 0 || shard >= len(p.shardVals) {
		return ""
	}
	return shardDigest(p.shardVals[shard])
}
