package shapley

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParticipationProbability(t *testing.T) {
	// N=10, m=3: p = 3·7 / 90 = 7/30.
	if got, want := ParticipationProbability(10, 3), 7.0/30; math.Abs(got-want) > 1e-12 {
		t.Fatalf("p = %v, want %v", got, want)
	}
	// m=0 or m=N: the two clients can never be split.
	if ParticipationProbability(10, 0) != 0 {
		t.Fatal("p(m=0) must be 0")
	}
	if ParticipationProbability(10, 10) != 0 {
		t.Fatal("p(m=N) must be 0")
	}
}

func TestParticipationProbabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ParticipationProbability(1, 1)
}

func TestUnfairnessProbabilityBounds(t *testing.T) {
	// P_s is a probability, decreasing in s, with P at s=T+… bounded.
	f := func(seed int64) bool {
		tRounds := 2 + int(seed%9+9)%9
		p := math.Mod(math.Abs(float64(seed))/1e18, 0.5)
		prev := math.Inf(1)
		for s := 0; s <= tRounds; s++ {
			v := UnfairnessProbability(tRounds, s, p)
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			if v > prev+1e-12 {
				return false // must be non-increasing in s
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestUnfairnessProbabilityDegenerateP(t *testing.T) {
	// p = 0: the gap is always 0, so P_0 = 1 and P_s = 0 for s ≥ 1.
	if got := UnfairnessProbability(5, 0, 0); got != 1 {
		t.Fatalf("P_0(p=0) = %v, want 1", got)
	}
	if got := UnfairnessProbability(5, 1, 0); got != 0 {
		t.Fatalf("P_1(p=0) = %v, want 0", got)
	}
	// p = 1 (degenerate but accepted): only the all-split terms survive.
	if got := UnfairnessProbability(5, 5, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("P_T(p=1) = %v, want 1", got)
	}
}

func TestUnfairnessProbabilityIncreasesWithP(t *testing.T) {
	// More unequal selection (larger p) makes a gap ≥ s·δ more likely.
	for _, s := range []int{1, 2, 3} {
		a := UnfairnessProbability(10, s, 0.1)
		b := UnfairnessProbability(10, s, 0.25)
		if b < a {
			t.Fatalf("P_%d should grow with p: %v → %v", s, a, b)
		}
	}
}

func TestUnfairnessProbabilityMatchesMonteCarlo(t *testing.T) {
	// Simulate the Observation-1 process directly: per round, with
	// probability p the gap grows by +δ, with probability p it shrinks by
	// δ, otherwise unchanged — and compare P(|gap| ≥ s·δ).
	tRounds, p := 8, 0.2
	const trials = 200000
	rngState := uint64(12345)
	next := func() float64 {
		rngState = rngState*6364136223846793005 + 1442695040888963407
		return float64(rngState>>11) / float64(1<<53)
	}
	counts := make([]int, tRounds+1)
	for tr := 0; tr < trials; tr++ {
		gap := 0
		for r := 0; r < tRounds; r++ {
			u := next()
			switch {
			case u < p:
				gap++
			case u < 2*p:
				gap--
			}
		}
		if gap < 0 {
			gap = -gap
		}
		for s := 0; s <= gap && s <= tRounds; s++ {
			counts[s]++
		}
	}
	// The paper states "|sᵢ−sⱼ| ≥ sδ with probability at least P_s"; note
	// its expression carries (1−p) rather than (1−2p) for the no-change
	// mass, which inflates it relative to the exact process. We therefore
	// verify only the at-least direction: the simulated probability never
	// exceeds the formula by more than Monte-Carlo noise.
	for s := 1; s <= 3; s++ {
		sim := float64(counts[s]) / trials
		formula := UnfairnessProbability(tRounds, s, p)
		if formula < sim-0.02 {
			t.Fatalf("P_%d formula %v below simulated %v", s, formula, sim)
		}
	}
}

func TestUnfairnessProbabilityPanics(t *testing.T) {
	cases := []func(){
		func() { UnfairnessProbability(0, 0, 0.1) },
		func() { UnfairnessProbability(5, -1, 0.1) },
		func() { UnfairnessProbability(5, 6, 0.1) },
		func() { UnfairnessProbability(5, 1, -0.1) },
		func() { UnfairnessProbability(5, 1, 1.1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}
