package shapley

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

// cardinalityGame returns |S|²: a superadditive utility with known
// structure; all players are symmetric so all Shapley values are equal.
func cardinalityGame(mask uint64) float64 {
	c := float64(bits.OnesCount64(mask))
	return c * c
}

func TestExactSymmetricGame(t *testing.T) {
	n := 5
	v := Exact(n, cardinalityGame)
	// Balance: Σv = U(full) − U(∅) = 25.
	var sum float64
	for _, x := range v {
		sum += x
	}
	if math.Abs(sum-25) > 1e-9 {
		t.Fatalf("balance violated: Σv = %v, want 25", sum)
	}
	for i := 1; i < n; i++ {
		if math.Abs(v[i]-v[0]) > 1e-9 {
			t.Fatalf("symmetric players valued differently: %v", v)
		}
	}
}

func TestExactAdditiveGame(t *testing.T) {
	// U(S) = Σ_{i∈S} wᵢ is additive: v(i) = wᵢ exactly.
	w := []float64{3, -1, 2, 0.5}
	u := func(mask uint64) float64 {
		var s float64
		for i := range w {
			if mask&(1<<uint(i)) != 0 {
				s += w[i]
			}
		}
		return s
	}
	v := Exact(len(w), u)
	for i := range w {
		if math.Abs(v[i]-w[i]) > 1e-9 {
			t.Fatalf("additive game: v = %v, want %v", v, w)
		}
	}
}

func TestExactZeroElement(t *testing.T) {
	// Player 2 contributes nothing: U ignores its membership.
	u := func(mask uint64) float64 {
		return float64(bits.OnesCount64(mask &^ 0b100))
	}
	v := Exact(3, u)
	if math.Abs(v[2]) > 1e-12 {
		t.Fatalf("null player valued %v, want 0", v[2])
	}
}

func TestExactMatchesPermutationEnumeration(t *testing.T) {
	// Property: the subset formula agrees with the n! permutation average
	// on random games.
	f := func(seed int64) bool {
		n := 3 + int((seed%3+3))%3 // 3..5
		vals := make([]float64, 1<<uint(n))
		s := uint64(seed)
		for i := range vals {
			s = s*2862933555777941757 + 3037000493
			vals[i] = float64(int64(s>>20)) / float64(1<<43)
		}
		vals[0] = 0
		u := func(mask uint64) float64 { return vals[mask] }
		a := Exact(n, u)
		b := ExactOnPermutations(n, u)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestExactBalanceProperty(t *testing.T) {
	// Property: Σᵢ v(i) = U(full) − U(∅) for random games.
	f := func(seed int64) bool {
		n := 4
		vals := make([]float64, 1<<uint(n))
		s := uint64(seed)
		for i := range vals {
			s = s*6364136223846793005 + 1442695040888963407
			vals[i] = float64(int64(s>>20)) / float64(1<<43)
		}
		u := func(mask uint64) float64 { return vals[mask] }
		v := Exact(n, u)
		var sum float64
		for _, x := range v {
			sum += x
		}
		return math.Abs(sum-(vals[len(vals)-1]-vals[0])) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestExactSymmetryProperty(t *testing.T) {
	// Games that treat players 0 and 1 identically must value them equally.
	u := func(mask uint64) float64 {
		// Depends only on |S| and membership of player 2.
		c := float64(bits.OnesCount64(mask))
		if mask&0b100 != 0 {
			return c * 2
		}
		return c
	}
	v := Exact(3, u)
	if math.Abs(v[0]-v[1]) > 1e-12 {
		t.Fatalf("symmetric players 0,1 valued %v, %v", v[0], v[1])
	}
}

func TestExactBadNPanics(t *testing.T) {
	for _, n := range []int{0, -1, 21} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Exact(%d) should panic", n)
				}
			}()
			Exact(n, cardinalityGame)
		}()
	}
}

func TestExactOnPermutationsBadNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExactOnPermutations(9, cardinalityGame)
}

func TestSinglePlayer(t *testing.T) {
	u := func(mask uint64) float64 {
		if mask == 1 {
			return 4
		}
		return 0
	}
	v := Exact(1, u)
	if math.Abs(v[0]-4) > 1e-12 {
		t.Fatalf("single player value %v, want 4", v[0])
	}
}
