package model

import (
	"fmt"
	"math"

	"comfedsv/internal/dataset"
	"comfedsv/internal/mat"
	"comfedsv/internal/rng"
)

// CNN is the small convolutional classifier used for the image benchmarks:
// a single 3×3 valid convolution with Filters output channels, ReLU, 2×2
// average pooling with stride 2, and a dense softmax head. This is the
// "simple convolutional neural network" class of models from the paper's
// Fashion-MNIST experiments, scaled to the synthetic image stand-ins.
//
// Parameter layout (flat):
//
//	[convW (Filters×Channels×3×3) | convB (Filters) | denseW (Classes×P) | denseB (Classes)]
//
// where P = pooledH·pooledW·Filters.
type CNN struct {
	Shape   dataset.ImageShape
	Filters int
	Classes int
	L2      float64
}

const cnnKernel = 3

// NewCNN returns a CNN for the given image geometry. It panics if the
// images are too small for a 3×3 valid convolution followed by 2×2 pooling.
func NewCNN(shape dataset.ImageShape, filters, classes int) *CNN {
	m := &CNN{Shape: shape, Filters: filters, Classes: classes, L2: 1e-4}
	if m.convH() < 2 || m.convW() < 2 {
		panic(fmt.Sprintf("model: image %dx%d too small for CNN", shape.Height, shape.Width))
	}
	return m
}

func (m *CNN) convH() int   { return m.Shape.Height - cnnKernel + 1 }
func (m *CNN) convW() int   { return m.Shape.Width - cnnKernel + 1 }
func (m *CNN) pooledH() int { return m.convH() / 2 }
func (m *CNN) pooledW() int { return m.convW() / 2 }
func (m *CNN) pooledSize() int {
	return m.pooledH() * m.pooledW() * m.Filters
}
func (m *CNN) convWSize() int {
	return m.Filters * m.Shape.Channels * cnnKernel * cnnKernel
}

// NumParams returns the total flat parameter count.
func (m *CNN) NumParams() int {
	return m.convWSize() + m.Filters + m.Classes*m.pooledSize() + m.Classes
}

// InitParams uses He-style scaling for the conv filters (ReLU) and Xavier
// for the dense head.
func (m *CNN) InitParams(g *rng.RNG) []float64 {
	p := make([]float64, m.NumParams())
	cw, _, dw, _ := m.slices(p)
	fanIn := float64(m.Shape.Channels * cnnKernel * cnnKernel)
	sc := math.Sqrt(2 / fanIn)
	for i := range cw {
		cw[i] = g.Normal(0, sc)
	}
	sd := math.Sqrt(2 / float64(m.pooledSize()+m.Classes))
	for i := range dw {
		dw[i] = g.Normal(0, sd)
	}
	return p
}

func (m *CNN) slices(p []float64) (convW, convB, denseW, denseB []float64) {
	o := 0
	convW = p[o : o+m.convWSize()]
	o += m.convWSize()
	convB = p[o : o+m.Filters]
	o += m.Filters
	denseW = p[o : o+m.Classes*m.pooledSize()]
	o += m.Classes * m.pooledSize()
	denseB = p[o : o+m.Classes]
	return
}

// pixel indexes x as channel-major planes: x[ch*H*W + r*W + c].
func (m *CNN) pixel(x []float64, ch, r, c int) float64 {
	return x[ch*m.Shape.Height*m.Shape.Width+r*m.Shape.Width+c]
}

// cnnScratch holds per-example forward activations reused across the batch.
type cnnScratch struct {
	conv   []float64 // post-ReLU conv activations, filter-major planes
	pre    []float64 // pre-ReLU conv activations
	pooled []float64
	logits []float64
	probs  []float64
}

func (m *CNN) newScratch() *cnnScratch {
	return &cnnScratch{
		conv:   make([]float64, m.Filters*m.convH()*m.convW()),
		pre:    make([]float64, m.Filters*m.convH()*m.convW()),
		pooled: make([]float64, m.pooledSize()),
		logits: make([]float64, m.Classes),
		probs:  make([]float64, m.Classes),
	}
}

func (m *CNN) forward(p, x []float64, s *cnnScratch) {
	convW, convB, denseW, denseB := m.slices(p)
	ch, cw := m.convH(), m.convW()
	// Convolution + ReLU.
	for f := 0; f < m.Filters; f++ {
		fw := convW[f*m.Shape.Channels*cnnKernel*cnnKernel : (f+1)*m.Shape.Channels*cnnKernel*cnnKernel]
		for r := 0; r < ch; r++ {
			for c := 0; c < cw; c++ {
				sum := convB[f]
				for chn := 0; chn < m.Shape.Channels; chn++ {
					for kr := 0; kr < cnnKernel; kr++ {
						for kc := 0; kc < cnnKernel; kc++ {
							sum += fw[chn*cnnKernel*cnnKernel+kr*cnnKernel+kc] * m.pixel(x, chn, r+kr, c+kc)
						}
					}
				}
				idx := f*ch*cw + r*cw + c
				s.pre[idx] = sum
				if sum > 0 {
					s.conv[idx] = sum
				} else {
					s.conv[idx] = 0
				}
			}
		}
	}
	// 2×2 average pooling, stride 2.
	ph, pw := m.pooledH(), m.pooledW()
	for f := 0; f < m.Filters; f++ {
		for r := 0; r < ph; r++ {
			for c := 0; c < pw; c++ {
				base := f * ch * cw
				sum := s.conv[base+(2*r)*cw+2*c] +
					s.conv[base+(2*r)*cw+2*c+1] +
					s.conv[base+(2*r+1)*cw+2*c] +
					s.conv[base+(2*r+1)*cw+2*c+1]
				s.pooled[f*ph*pw+r*pw+c] = sum / 4
			}
		}
	}
	// Dense head.
	ps := m.pooledSize()
	for cls := 0; cls < m.Classes; cls++ {
		row := denseW[cls*ps : (cls+1)*ps]
		s.logits[cls] = mat.Dot(row, s.pooled) + denseB[cls]
	}
}

// Loss returns mean cross-entropy over d plus (L2/2)‖params‖².
func (m *CNN) Loss(params []float64, d *dataset.Dataset) float64 {
	m.checkDims(params, d)
	s := m.newScratch()
	var total float64
	for i, x := range d.X {
		m.forward(params, x, s)
		mat.Softmax(s.probs, s.logits)
		total += -math.Log(math.Max(s.probs[d.Y[i]], 1e-15))
	}
	n := float64(d.Len())
	if n == 0 {
		n = 1
	}
	return total/n + 0.5*m.L2*mat.Dot(params, params)
}

// Gradient returns the gradient of Loss at params via backpropagation
// through dense → pool → ReLU → conv.
func (m *CNN) Gradient(params []float64, d *dataset.Dataset) []float64 {
	m.checkDims(params, d)
	grad := make([]float64, m.NumParams())
	gcw, gcb, gdw, gdb := m.slices(grad)
	_, _, denseW, _ := m.slices(params)

	s := m.newScratch()
	ch, cw := m.convH(), m.convW()
	ph, pw := m.pooledH(), m.pooledW()
	ps := m.pooledSize()
	dPooled := make([]float64, ps)
	dConv := make([]float64, m.Filters*ch*cw)

	for i, x := range d.X {
		m.forward(params, x, s)
		mat.Softmax(s.probs, s.logits)

		for j := range dPooled {
			dPooled[j] = 0
		}
		for cls := 0; cls < m.Classes; cls++ {
			delta := s.probs[cls]
			if cls == d.Y[i] {
				delta -= 1
			}
			row := denseW[cls*ps : (cls+1)*ps]
			grow := gdw[cls*ps : (cls+1)*ps]
			for j := 0; j < ps; j++ {
				grow[j] += delta * s.pooled[j]
				dPooled[j] += delta * row[j]
			}
			gdb[cls] += delta
		}

		// Pool backward: each pooled cell spreads gradient/4 to its window,
		// then ReLU backward masks by pre-activation sign.
		for j := range dConv {
			dConv[j] = 0
		}
		for f := 0; f < m.Filters; f++ {
			base := f * ch * cw
			for r := 0; r < ph; r++ {
				for c := 0; c < pw; c++ {
					g4 := dPooled[f*ph*pw+r*pw+c] / 4
					for _, idx := range [4]int{
						base + (2*r)*cw + 2*c,
						base + (2*r)*cw + 2*c + 1,
						base + (2*r+1)*cw + 2*c,
						base + (2*r+1)*cw + 2*c + 1,
					} {
						if s.pre[idx] > 0 {
							dConv[idx] += g4
						}
					}
				}
			}
		}

		// Conv backward: accumulate filter and bias gradients.
		for f := 0; f < m.Filters; f++ {
			fw := gcw[f*m.Shape.Channels*cnnKernel*cnnKernel : (f+1)*m.Shape.Channels*cnnKernel*cnnKernel]
			base := f * ch * cw
			for r := 0; r < ch; r++ {
				for c := 0; c < cw; c++ {
					dc := dConv[base+r*cw+c]
					if dc == 0 {
						continue
					}
					gcb[f] += dc
					for chn := 0; chn < m.Shape.Channels; chn++ {
						for kr := 0; kr < cnnKernel; kr++ {
							for kc := 0; kc < cnnKernel; kc++ {
								fw[chn*cnnKernel*cnnKernel+kr*cnnKernel+kc] += dc * m.pixel(x, chn, r+kr, c+kc)
							}
						}
					}
				}
			}
		}
	}

	n := float64(d.Len())
	if n == 0 {
		n = 1
	}
	inv := 1 / n
	for i := range grad {
		grad[i] = grad[i]*inv + m.L2*params[i]
	}
	return grad
}

// Predict returns the argmax class of x.
func (m *CNN) Predict(params []float64, x []float64) int {
	s := m.newScratch()
	m.forward(params, x, s)
	return mat.ArgMax(s.logits)
}

func (m *CNN) checkDims(params []float64, d *dataset.Dataset) {
	if len(params) != m.NumParams() {
		panic(fmt.Sprintf("model: cnn params %d, want %d", len(params), m.NumParams()))
	}
	if d.Len() > 0 && d.Dim() != m.Shape.Size() {
		panic(fmt.Sprintf("model: cnn input %d, dataset dim %d", m.Shape.Size(), d.Dim()))
	}
}
