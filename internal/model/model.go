// Package model implements the learning models the paper trains with
// FedAvg: multinomial logistic regression (synthetic data), a one-hidden-
// layer MLP (MNIST), and a small convolutional network (Fashion-MNIST /
// CIFAR-10 stand-ins). Models are stateless: parameters travel as flat
// []float64 vectors, which is exactly the representation FedAvg averages
// and the utility matrix evaluates.
package model

import (
	"comfedsv/internal/dataset"
	"comfedsv/internal/rng"
)

// Model is a differentiable classifier over flat parameter vectors.
//
// Loss returns the mean regularized cross-entropy of params on d.
// Gradient returns ∇Loss as a fresh vector of length NumParams.
// Predict returns the predicted class of a single feature vector.
type Model interface {
	// NumParams returns the length of the flat parameter vector.
	NumParams() int
	// InitParams returns a freshly initialized parameter vector.
	InitParams(g *rng.RNG) []float64
	// Loss returns the mean loss of params over d.
	Loss(params []float64, d *dataset.Dataset) float64
	// Gradient returns the gradient of Loss at params over d.
	Gradient(params []float64, d *dataset.Dataset) []float64
	// Predict returns the most likely class of x under params.
	Predict(params []float64, x []float64) int
}

// Accuracy returns the fraction of examples of d that m classifies
// correctly under params.
func Accuracy(m Model, params []float64, d *dataset.Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	for i, x := range d.X {
		if m.Predict(params, x) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}
