package model

import (
	"fmt"
	"math"

	"comfedsv/internal/dataset"
	"comfedsv/internal/mat"
	"comfedsv/internal/rng"
)

// MLP is a one-hidden-layer perceptron with tanh activation and a softmax
// cross-entropy head — the "simple fully connected neural network" the
// paper trains on MNIST. tanh keeps the loss smooth, matching the setting
// of the paper's low-rankness analysis more closely than ReLU.
//
// Parameter layout (flat): [W1 (Hidden×Dim) | b1 (Hidden) | W2 (Classes×Hidden) | b2 (Classes)].
type MLP struct {
	Dim     int
	Hidden  int
	Classes int
	L2      float64
}

// NewMLP returns an MLP with the default regularization.
func NewMLP(dim, hidden, classes int) *MLP {
	return &MLP{Dim: dim, Hidden: hidden, Classes: classes, L2: 1e-4}
}

// NumParams returns Hidden*(Dim+1) + Classes*(Hidden+1).
func (m *MLP) NumParams() int {
	return m.Hidden*(m.Dim+1) + m.Classes*(m.Hidden+1)
}

// InitParams uses Xavier-style scaling so tanh units start in their linear
// regime.
func (m *MLP) InitParams(g *rng.RNG) []float64 {
	p := make([]float64, m.NumParams())
	s1 := math.Sqrt(2.0 / float64(m.Dim+m.Hidden))
	s2 := math.Sqrt(2.0 / float64(m.Hidden+m.Classes))
	w1, _, w2, _ := m.slices(p)
	for i := range w1 {
		w1[i] = g.Normal(0, s1)
	}
	for i := range w2 {
		w2[i] = g.Normal(0, s2)
	}
	return p
}

// slices carves the flat parameter vector into the four blocks.
func (m *MLP) slices(p []float64) (w1, b1, w2, b2 []float64) {
	o := 0
	w1 = p[o : o+m.Hidden*m.Dim]
	o += m.Hidden * m.Dim
	b1 = p[o : o+m.Hidden]
	o += m.Hidden
	w2 = p[o : o+m.Classes*m.Hidden]
	o += m.Classes * m.Hidden
	b2 = p[o : o+m.Classes]
	return
}

// forward computes hidden activations and logits for one example.
func (m *MLP) forward(p, x, hidden, logits []float64) {
	w1, b1, w2, b2 := m.slices(p)
	for h := 0; h < m.Hidden; h++ {
		row := w1[h*m.Dim : (h+1)*m.Dim]
		hidden[h] = math.Tanh(mat.Dot(row, x) + b1[h])
	}
	for c := 0; c < m.Classes; c++ {
		row := w2[c*m.Hidden : (c+1)*m.Hidden]
		logits[c] = mat.Dot(row, hidden) + b2[c]
	}
}

// Loss returns mean cross-entropy over d plus (L2/2)‖params‖².
func (m *MLP) Loss(params []float64, d *dataset.Dataset) float64 {
	m.checkDims(params, d)
	hidden := make([]float64, m.Hidden)
	logits := make([]float64, m.Classes)
	probs := make([]float64, m.Classes)
	var total float64
	for i, x := range d.X {
		m.forward(params, x, hidden, logits)
		mat.Softmax(probs, logits)
		total += -math.Log(math.Max(probs[d.Y[i]], 1e-15))
	}
	n := float64(d.Len())
	if n == 0 {
		n = 1
	}
	return total/n + 0.5*m.L2*mat.Dot(params, params)
}

// Gradient returns the gradient of Loss at params via backpropagation.
func (m *MLP) Gradient(params []float64, d *dataset.Dataset) []float64 {
	m.checkDims(params, d)
	grad := make([]float64, m.NumParams())
	gw1, gb1, gw2, gb2 := m.slices(grad)
	w1, _, w2, _ := m.slices(params)
	_ = w1

	hidden := make([]float64, m.Hidden)
	logits := make([]float64, m.Classes)
	probs := make([]float64, m.Classes)
	dHidden := make([]float64, m.Hidden)
	for i, x := range d.X {
		m.forward(params, x, hidden, logits)
		mat.Softmax(probs, logits)
		// Output layer: dL/dlogit_c = p_c - 1{c==y}.
		for h := range dHidden {
			dHidden[h] = 0
		}
		for c := 0; c < m.Classes; c++ {
			delta := probs[c]
			if c == d.Y[i] {
				delta -= 1
			}
			row := w2[c*m.Hidden : (c+1)*m.Hidden]
			grow := gw2[c*m.Hidden : (c+1)*m.Hidden]
			for h := 0; h < m.Hidden; h++ {
				grow[h] += delta * hidden[h]
				dHidden[h] += delta * row[h]
			}
			gb2[c] += delta
		}
		// Hidden layer: tanh' = 1 - tanh².
		for h := 0; h < m.Hidden; h++ {
			dPre := dHidden[h] * (1 - hidden[h]*hidden[h])
			if dPre == 0 {
				continue
			}
			grow := gw1[h*m.Dim : (h+1)*m.Dim]
			for j, xj := range x {
				grow[j] += dPre * xj
			}
			gb1[h] += dPre
		}
	}
	n := float64(d.Len())
	if n == 0 {
		n = 1
	}
	inv := 1 / n
	for i := range grad {
		grad[i] = grad[i]*inv + m.L2*params[i]
	}
	return grad
}

// Predict returns the argmax class of x.
func (m *MLP) Predict(params []float64, x []float64) int {
	hidden := make([]float64, m.Hidden)
	logits := make([]float64, m.Classes)
	m.forward(params, x, hidden, logits)
	return mat.ArgMax(logits)
}

func (m *MLP) checkDims(params []float64, d *dataset.Dataset) {
	if len(params) != m.NumParams() {
		panic(fmt.Sprintf("model: mlp params %d, want %d", len(params), m.NumParams()))
	}
	if d.Len() > 0 && d.Dim() != m.Dim {
		panic(fmt.Sprintf("model: mlp dim %d, dataset dim %d", m.Dim, d.Dim()))
	}
}
