package model

import (
	"math"
	"testing"

	"comfedsv/internal/dataset"
	"comfedsv/internal/mat"
	"comfedsv/internal/rng"
)

// gradCheck verifies the analytic gradient against central finite
// differences at a handful of coordinates.
func gradCheck(t *testing.T, m Model, d *dataset.Dataset, seed int64) {
	t.Helper()
	g := rng.New(seed)
	p := m.InitParams(g)
	grad := m.Gradient(p, d)
	if len(grad) != m.NumParams() {
		t.Fatalf("gradient length %d, want %d", len(grad), m.NumParams())
	}
	const eps = 1e-5
	idxs := []int{0, 1, len(p) / 3, len(p) / 2, len(p) - 1}
	for _, idx := range idxs {
		orig := p[idx]
		p[idx] = orig + eps
		lp := m.Loss(p, d)
		p[idx] = orig - eps
		lm := m.Loss(p, d)
		p[idx] = orig
		fd := (lp - lm) / (2 * eps)
		if math.Abs(fd-grad[idx]) > 1e-6*(1+math.Abs(fd)) {
			t.Fatalf("gradient mismatch at %d: analytic %v, finite-diff %v", idx, grad[idx], fd)
		}
	}
}

func synthData(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultSyntheticConfig(0, 0, 11)
	return dataset.GenerateSynthetic(cfg, []int{n})[0]
}

func imageData(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	return dataset.GenerateImages(dataset.MNISTLikeConfig(13), n)
}

func cifarData(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	return dataset.GenerateImages(dataset.CIFARLikeConfig(13), n)
}

func TestLogRegGradient(t *testing.T) {
	gradCheck(t, NewLogisticRegression(60, 10), synthData(t, 25), 1)
}

func TestMLPGradient(t *testing.T) {
	gradCheck(t, NewMLP(64, 8, 10), imageData(t, 25), 2)
}

func TestCNNGradient(t *testing.T) {
	d := imageData(t, 20)
	gradCheck(t, NewCNN(*d.Shape, 3, 10), d, 3)
}

func TestCNNGradientMultiChannel(t *testing.T) {
	d := cifarData(t, 15)
	gradCheck(t, NewCNN(*d.Shape, 2, 10), d, 4)
}

func TestLossDecreasesUnderGD(t *testing.T) {
	models := []struct {
		name string
		m    Model
		d    *dataset.Dataset
	}{
		{"logreg", NewLogisticRegression(60, 10), synthData(t, 60)},
		{"mlp", NewMLP(64, 8, 10), imageData(t, 60)},
		{"cnn", NewCNN(dataset.ImageShape{Height: 8, Width: 8, Channels: 1}, 3, 10), imageData(t, 60)},
	}
	for _, tc := range models {
		t.Run(tc.name, func(t *testing.T) {
			g := rng.New(5)
			p := tc.m.InitParams(g)
			before := tc.m.Loss(p, tc.d)
			for i := 0; i < 30; i++ {
				grad := tc.m.Gradient(p, tc.d)
				mat.Axpy(-0.1, grad, p)
			}
			after := tc.m.Loss(p, tc.d)
			if after >= before {
				t.Fatalf("loss did not decrease: %v → %v", before, after)
			}
		})
	}
}

func TestTrainingImprovesAccuracy(t *testing.T) {
	d := imageData(t, 120)
	m := NewMLP(64, 16, 10)
	g := rng.New(6)
	p := m.InitParams(g)
	start := Accuracy(m, p, d)
	for i := 0; i < 60; i++ {
		grad := m.Gradient(p, d)
		mat.Axpy(-0.2, grad, p)
	}
	end := Accuracy(m, p, d)
	if end < start+0.3 {
		t.Fatalf("accuracy should improve substantially: %v → %v", start, end)
	}
}

func TestLossNonNegativeAtOptimumScale(t *testing.T) {
	// Cross-entropy plus L2 is always positive.
	m := NewLogisticRegression(60, 10)
	d := synthData(t, 20)
	p := m.InitParams(rng.New(7))
	if l := m.Loss(p, d); l <= 0 {
		t.Fatalf("loss %v must be positive", l)
	}
}

func TestEmptyDatasetLossIsRegOnly(t *testing.T) {
	m := NewLogisticRegression(4, 3)
	p := make([]float64, m.NumParams())
	for i := range p {
		p[i] = 1
	}
	d := &dataset.Dataset{NumClasses: 3}
	want := 0.5 * m.L2 * float64(len(p))
	if got := m.Loss(p, d); math.Abs(got-want) > 1e-12 {
		t.Fatalf("empty-data loss %v, want regularizer %v", got, want)
	}
}

func TestPredictConsistentWithLoss(t *testing.T) {
	// After training to near-zero loss, predictions match labels.
	d := imageData(t, 40)
	m := NewMLP(64, 16, 10)
	p := m.InitParams(rng.New(8))
	for i := 0; i < 200; i++ {
		mat.Axpy(-0.3, m.Gradient(p, d), p)
	}
	if acc := Accuracy(m, p, d); acc < 0.9 {
		t.Fatalf("trained accuracy %v, want ≥ 0.9", acc)
	}
}

func TestParamDimensionPanics(t *testing.T) {
	m := NewLogisticRegression(4, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad parameter length")
		}
	}()
	m.Loss(make([]float64, 7), &dataset.Dataset{NumClasses: 3})
}

func TestCNNTooSmallImagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for image too small to convolve")
		}
	}()
	NewCNN(dataset.ImageShape{Height: 3, Width: 3, Channels: 1}, 2, 10)
}

func TestNumParams(t *testing.T) {
	lr := NewLogisticRegression(5, 3)
	if lr.NumParams() != 3*6 {
		t.Fatalf("logreg params %d, want 18", lr.NumParams())
	}
	mlp := NewMLP(5, 4, 3)
	if mlp.NumParams() != 4*6+3*5 {
		t.Fatalf("mlp params %d, want %d", mlp.NumParams(), 4*6+3*5)
	}
	cnn := NewCNN(dataset.ImageShape{Height: 8, Width: 8, Channels: 1}, 2, 3)
	// conv: 2*1*9 + 2 = 20; pooled: 3*3*2 = 18; dense: 3*18 + 3 = 57.
	if cnn.NumParams() != 20+57 {
		t.Fatalf("cnn params %d, want 77", cnn.NumParams())
	}
}

func TestAccuracyEmptyDataset(t *testing.T) {
	m := NewLogisticRegression(2, 2)
	p := make([]float64, m.NumParams())
	if got := Accuracy(m, p, &dataset.Dataset{NumClasses: 2}); got != 0 {
		t.Fatalf("empty accuracy %v, want 0", got)
	}
}

func TestInitParamsDeterministic(t *testing.T) {
	m := NewMLP(10, 4, 3)
	a := m.InitParams(rng.New(9))
	b := m.InitParams(rng.New(9))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("InitParams must be deterministic in the seed")
		}
	}
}
