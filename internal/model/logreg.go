package model

import (
	"fmt"
	"math"

	"comfedsv/internal/dataset"
	"comfedsv/internal/mat"
	"comfedsv/internal/rng"
)

// LogisticRegression is multinomial (softmax) logistic regression with L2
// regularization. With L2 > 0 its loss is strongly convex, Lipschitz on
// bounded domains and smooth — the function class for which Proposition 2
// of the paper guarantees an O(log T / ε) ε-rank of the utility matrix.
type LogisticRegression struct {
	Dim     int     // feature dimension
	Classes int     // number of classes
	L2      float64 // L2 regularization strength (λ/2 ‖w‖² added to the loss)
}

// NewLogisticRegression returns a logistic-regression model for the given
// geometry with the default regularization used across the experiments.
func NewLogisticRegression(dim, classes int) *LogisticRegression {
	return &LogisticRegression{Dim: dim, Classes: classes, L2: 1e-3}
}

// NumParams returns Classes*(Dim+1): a weight row plus bias per class.
func (m *LogisticRegression) NumParams() int { return m.Classes * (m.Dim + 1) }

// InitParams returns small Gaussian weights (zero init would also work for
// a convex model; small noise breaks ties deterministically given g).
func (m *LogisticRegression) InitParams(g *rng.RNG) []float64 {
	return g.NormalVec(m.NumParams(), 0, 0.01)
}

// weights returns the weight row and bias of class c as views into params.
func (m *LogisticRegression) weights(params []float64, c int) (w []float64, bias int) {
	base := c * (m.Dim + 1)
	return params[base : base+m.Dim], base + m.Dim
}

func (m *LogisticRegression) logits(params, x, out []float64) {
	for c := 0; c < m.Classes; c++ {
		w, b := m.weights(params, c)
		out[c] = mat.Dot(w, x) + params[b]
	}
}

// Loss returns mean cross-entropy over d plus (L2/2)‖params‖².
func (m *LogisticRegression) Loss(params []float64, d *dataset.Dataset) float64 {
	m.checkDims(params, d)
	logits := make([]float64, m.Classes)
	probs := make([]float64, m.Classes)
	var total float64
	for i, x := range d.X {
		m.logits(params, x, logits)
		mat.Softmax(probs, logits)
		total += -math.Log(math.Max(probs[d.Y[i]], 1e-15))
	}
	n := float64(d.Len())
	if n == 0 {
		n = 1
	}
	reg := 0.5 * m.L2 * mat.Dot(params, params)
	return total/n + reg
}

// Gradient returns the gradient of Loss at params.
func (m *LogisticRegression) Gradient(params []float64, d *dataset.Dataset) []float64 {
	m.checkDims(params, d)
	grad := make([]float64, m.NumParams())
	logits := make([]float64, m.Classes)
	probs := make([]float64, m.Classes)
	for i, x := range d.X {
		m.logits(params, x, logits)
		mat.Softmax(probs, logits)
		for c := 0; c < m.Classes; c++ {
			delta := probs[c]
			if c == d.Y[i] {
				delta -= 1
			}
			base := c * (m.Dim + 1)
			gw := grad[base : base+m.Dim]
			for j, xj := range x {
				gw[j] += delta * xj
			}
			grad[base+m.Dim] += delta
		}
	}
	n := float64(d.Len())
	if n == 0 {
		n = 1
	}
	inv := 1 / n
	for i := range grad {
		grad[i] = grad[i]*inv + m.L2*params[i]
	}
	return grad
}

// Predict returns the argmax class of x.
func (m *LogisticRegression) Predict(params []float64, x []float64) int {
	logits := make([]float64, m.Classes)
	m.logits(params, x, logits)
	return mat.ArgMax(logits)
}

func (m *LogisticRegression) checkDims(params []float64, d *dataset.Dataset) {
	if len(params) != m.NumParams() {
		panic(fmt.Sprintf("model: logreg params %d, want %d", len(params), m.NumParams()))
	}
	if d.Len() > 0 && d.Dim() != m.Dim {
		panic(fmt.Sprintf("model: logreg dim %d, dataset dim %d", m.Dim, d.Dim()))
	}
}
