package experiments

import (
	"fmt"

	"comfedsv/internal/dataset"
	"comfedsv/internal/fl"
	"comfedsv/internal/mc"
	"comfedsv/internal/metrics"
	"comfedsv/internal/rng"
	"comfedsv/internal/shapley"
	"comfedsv/internal/utility"
)

// NoisyDataConfig parameterizes the noisy-data detection experiment
// (Section VII-C1 / Fig. 6): starting from an IID split, client i receives
// Gaussian feature noise on NoiseStep·i of its examples, so the true
// quality ranking is 0 ≻ 1 ≻ … ≻ N−1.
type NoisyDataConfig struct {
	Kind             DatasetKind
	Trials           int
	Rounds           int
	ClientsPerRound  int
	NumClients       int
	SamplesPerClient int
	TestSamples      int
	NoiseStep        float64 // fraction of corrupted examples per client index (paper: 0.05)
	NoiseSigma       float64 // stddev of the added Gaussian noise
	Rank             int
	Seed             int64
}

// DefaultNoisyDataConfig mirrors the paper: 10 clients, 10 rounds, 3
// selected per round, client i with 5·i% noisy examples.
func DefaultNoisyDataConfig(kind DatasetKind) NoisyDataConfig {
	return NoisyDataConfig{
		Kind:             kind,
		Trials:           10,
		Rounds:           10,
		ClientsPerRound:  3,
		NumClients:       10,
		SamplesPerClient: 100,
		TestSamples:      200,
		NoiseStep:        0.05,
		NoiseSigma:       3.0,
		Rank:             5,
		Seed:             41,
	}
}

// NoisyDataResult reports the mean Spearman correlation between the true
// quality ranking and the ranking induced by each metric.
type NoisyDataResult struct {
	Kind               DatasetKind
	GroundTruthCorr    float64
	FedSVCorr          float64
	ComFedSVCorr       float64
	PerTrialFedSV      []float64
	PerTrialComFedSV   []float64
	PerTrialGroundTrue []float64
}

// NoisyData reproduces one dataset column of Fig. 6.
func NoisyData(cfg NoisyDataConfig) (*NoisyDataResult, error) {
	res := &NoisyDataResult{Kind: cfg.Kind}
	// True quality score: client 0 (no noise) is best, client N−1 worst.
	truth := make([]float64, cfg.NumClients)
	for i := range truth {
		truth[i] = -float64(i)
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		seed := cfg.Seed + int64(1000*trial)
		sc := Scenario{
			Kind:             cfg.Kind,
			NumClients:       cfg.NumClients,
			SamplesPerClient: cfg.SamplesPerClient,
			TestSamples:      cfg.TestSamples,
			NonIID:           false, // paper: start from the IID partition
			Seed:             seed,
		}
		clients, test, m := sc.Build()
		g := rng.New(seed + 7)
		for i, c := range clients {
			clients[i] = c.Clone()
			dataset.AddFeatureNoise(clients[i], cfg.NoiseStep*float64(i), cfg.NoiseSigma, g.Split(int64(i)))
		}

		// Data-quality detection wants the aggressive default schedule:
		// larger steps make per-client quality differences show up in the
		// utilities within the short 10-round horizon (the slow schedule
		// used by the fairness/completion experiments undertrains here).
		flCfg := fl.DefaultConfig(cfg.Rounds, cfg.ClientsPerRound)
		flCfg.Seed = seed + 1
		run, err := fl.TrainRun(flCfg, m, clients, test)
		if err != nil {
			return nil, fmt.Errorf("experiments: noisy-data trial %d: %w", trial, err)
		}
		eval := utility.NewEvaluator(run)

		gt := shapley.GroundTruth(eval)
		fedsv := shapley.FedSV(eval)
		com, err := shapley.ComFedSVExact(eval, mc.DefaultConfig(cfg.Rank))
		if err != nil {
			return nil, fmt.Errorf("experiments: noisy-data trial %d: %w", trial, err)
		}

		res.PerTrialGroundTrue = append(res.PerTrialGroundTrue, metrics.Spearman(gt, truth))
		res.PerTrialFedSV = append(res.PerTrialFedSV, metrics.Spearman(fedsv, truth))
		res.PerTrialComFedSV = append(res.PerTrialComFedSV, metrics.Spearman(com.Values, truth))
	}
	res.GroundTruthCorr = mean(res.PerTrialGroundTrue)
	res.FedSVCorr = mean(res.PerTrialFedSV)
	res.ComFedSVCorr = mean(res.PerTrialComFedSV)
	return res, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
