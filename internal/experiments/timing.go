package experiments

import (
	"fmt"
	"math"
	"time"

	"comfedsv/internal/fl"
	"comfedsv/internal/mc"
	"comfedsv/internal/shapley"
	"comfedsv/internal/utility"
)

// TimingConfig parameterizes the time-complexity comparison of
// Section VII-D / Fig. 8: the paper sweeps the number of clients at a fixed
// 30% participation rate and shows that time(FedSV)/time(ComFedSV)
// approaches the participation rate.
type TimingConfig struct {
	Kind             DatasetKind
	ClientCounts     []int
	Participation    float64
	Rounds           int
	SamplesPerClient int
	TestSamples      int
	Rank             int
	Seed             int64
}

// DefaultTimingConfig mirrors Fig. 8 at simulator scale.
func DefaultTimingConfig() TimingConfig {
	return TimingConfig{
		Kind:             Synthetic,
		ClientCounts:     []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
		Participation:    0.3,
		Rounds:           10,
		SamplesPerClient: 20,
		TestSamples:      100,
		Rank:             5,
		Seed:             61,
	}
}

// TimingPoint is one x-position of Fig. 8.
type TimingPoint struct {
	NumClients int
	// FedSVSeconds and ComFedSVSeconds are wall-clock valuation times.
	FedSVSeconds, ComFedSVSeconds float64
	// Ratio = FedSVSeconds / ComFedSVSeconds (the green curve; the paper
	// shows it approaching the participation rate K/N).
	Ratio float64
	// FedSVCalls and ComFedSVCalls count distinct utility evaluations —
	// the paper's cost model.
	FedSVCalls, ComFedSVCalls int
	// CallRatio = FedSVCalls / ComFedSVCalls.
	CallRatio float64
}

// Timing reproduces Fig. 8. The Monte-Carlo sample counts follow the
// paper's cost model: O(K log K) per-round permutations for FedSV and
// M = O(N log N) global permutations for ComFedSV.
func Timing(cfg TimingConfig) ([]TimingPoint, error) {
	out := make([]TimingPoint, 0, len(cfg.ClientCounts))
	for _, n := range cfg.ClientCounts {
		k := int(cfg.Participation * float64(n))
		if k < 1 {
			k = 1
		}
		seed := cfg.Seed + int64(n)
		sc := Scenario{
			Kind:             cfg.Kind,
			NumClients:       n,
			SamplesPerClient: cfg.SamplesPerClient,
			TestSamples:      cfg.TestSamples,
			NonIID:           true,
			Seed:             seed,
		}
		clients, test, m := sc.Build()
		flCfg := FLConfigFor(cfg.Kind, cfg.Rounds, k, seed+1)
		run, err := fl.TrainRun(flCfg, m, clients, test)
		if err != nil {
			return nil, fmt.Errorf("experiments: timing at N=%d: %w", n, err)
		}

		// FedSV with K·ln K permutation samples per round, so the total call
		// count is the paper's O(T·K²·log K) (Section VII-D).
		fedsvSamples := int(math.Ceil(float64(k)*math.Log(math.Max(float64(k), 2)))) + 1
		fedsvEval := utility.NewEvaluator(run)
		start := time.Now()
		shapley.FedSVMonteCarlo(fedsvEval, fedsvSamples, seed+2)
		fedsvSec := time.Since(start).Seconds()

		// ComFedSV with M = 2·N·ln N permutations (Algorithm 1).
		comEval := utility.NewEvaluator(run)
		mcCfg := shapley.MonteCarloConfig{
			Samples:    int(2*float64(n)*math.Log(float64(n))) + 1,
			Completion: mc.DefaultConfig(cfg.Rank),
			Seed:       seed + 3,
		}
		start = time.Now()
		if _, err := shapley.MonteCarlo(comEval, mcCfg); err != nil {
			return nil, fmt.Errorf("experiments: timing ComFedSV at N=%d: %w", n, err)
		}
		comSec := time.Since(start).Seconds()

		pt := TimingPoint{
			NumClients:      n,
			FedSVSeconds:    fedsvSec,
			ComFedSVSeconds: comSec,
			FedSVCalls:      fedsvEval.Calls(),
			ComFedSVCalls:   comEval.Calls(),
		}
		if comSec > 0 {
			pt.Ratio = fedsvSec / comSec
		}
		if comEval.Calls() > 0 {
			pt.CallRatio = float64(fedsvEval.Calls()) / float64(comEval.Calls())
		}
		out = append(out, pt)
	}
	return out, nil
}
