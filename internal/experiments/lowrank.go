package experiments

import (
	"fmt"

	"comfedsv/internal/fl"
	"comfedsv/internal/mat"
	"comfedsv/internal/mc"
	"comfedsv/internal/utility"
)

// LowRankConfig parameterizes the low-rankness study of Example 2 / Fig. 2:
// materialize the full utility matrix of a run and inspect its spectrum.
type LowRankConfig struct {
	Kind             DatasetKind
	Rounds           int
	ClientsPerRound  int
	NumClients       int
	SamplesPerClient int
	TestSamples      int
	NonIID           bool
	TopK             int // how many singular values to report (0 = all)
	Seed             int64
}

// DefaultLowRankConfig mirrors Example 2: 10 clients, 100 rounds, 3
// selected per round; the utility matrix is 100×2^10.
func DefaultLowRankConfig(kind DatasetKind) LowRankConfig {
	return LowRankConfig{
		Kind:             kind,
		Rounds:           100,
		ClientsPerRound:  3,
		NumClients:       10,
		SamplesPerClient: 40,
		TestSamples:      120,
		NonIID:           true,
		TopK:             20,
		Seed:             21,
	}
}

// LowRankResult reports the leading singular values of the utility matrix
// and its ε-rank at a few tolerances.
type LowRankResult struct {
	Kind           DatasetKind
	SingularValues []float64
	// EpsRanks[eps] is the spectral ε-rank surrogate (see mat.EpsRank).
	EpsRanks map[float64]int
	// MatrixRows and MatrixCols record the utility matrix shape.
	MatrixRows, MatrixCols int
}

// LowRank reproduces Example 2 / Fig. 2 for one dataset setting.
func LowRank(cfg LowRankConfig) (*LowRankResult, error) {
	eval, err := buildEvaluator(cfg.Kind, cfg.NumClients, cfg.SamplesPerClient, cfg.TestSamples,
		cfg.Rounds, cfg.ClientsPerRound, cfg.NonIID, cfg.Seed)
	if err != nil {
		return nil, err
	}
	full := utility.ParallelFullMatrix(eval.Run(), 0)
	sv := mat.SingularValues(full)
	if cfg.TopK > 0 && cfg.TopK < len(sv) {
		sv = sv[:cfg.TopK]
	}
	rows, cols := full.Dims()
	res := &LowRankResult{
		Kind:           cfg.Kind,
		SingularValues: sv,
		EpsRanks:       map[float64]int{},
		MatrixRows:     rows,
		MatrixCols:     cols,
	}
	for _, eps := range []float64{1e-1, 1e-2, 1e-3} {
		res.EpsRanks[eps] = mat.EpsRank(full, eps)
	}
	return res, nil
}

// RankImpactConfig parameterizes Example 3 / Fig. 3: the relative
// completion error ‖U − WHᵀ‖_F / ‖U‖_F as a function of the rank r.
type RankImpactConfig struct {
	Kind             DatasetKind
	Rounds           int
	ClientsPerRound  int
	NumClients       int
	SamplesPerClient int
	TestSamples      int
	NonIID           bool
	Ranks            []int
	Lambda           float64
	// WeightedReg selects ALS-WR regularization. Fig. 3 reproduces the
	// paper's LIBPMF behaviour with plain uniform regularization, which
	// exhibits the under/overfitting U-shape the paper discusses; the
	// valuation pipeline elsewhere defaults to ALS-WR (see DESIGN.md §5).
	WeightedReg bool
	Seed        int64
}

// DefaultRankImpactConfig mirrors Example 3 (MNIST, MLP, r ∈ {1..10}).
func DefaultRankImpactConfig() RankImpactConfig {
	ranks := make([]int, 10)
	for i := range ranks {
		ranks[i] = i + 1
	}
	return RankImpactConfig{
		Kind:             MNIST,
		Rounds:           100,
		ClientsPerRound:  3,
		NumClients:       10,
		SamplesPerClient: 40,
		TestSamples:      120,
		NonIID:           true,
		Ranks:            ranks,
		Lambda:           0.01,
		WeightedReg:      false,
		Seed:             31,
	}
}

// RankPoint is one point of the Fig. 3 curve.
type RankPoint struct {
	Rank          int
	RelativeError float64
	TrainRMSE     float64
}

// RankImpact reproduces Example 3 / Fig. 3: complete the partially observed
// utility matrix at several ranks and compare against the fully observed
// ground truth.
func RankImpact(cfg RankImpactConfig) ([]RankPoint, error) {
	eval, err := buildEvaluator(cfg.Kind, cfg.NumClients, cfg.SamplesPerClient, cfg.TestSamples,
		cfg.Rounds, cfg.ClientsPerRound, cfg.NonIID, cfg.Seed)
	if err != nil {
		return nil, err
	}
	n := eval.Run().NumClients()
	t := len(eval.Run().Rounds)

	full := utility.ParallelFullMatrix(eval.Run(), 0)
	store := utility.NewStore(t, n)
	for mask := uint64(1); mask < 1<<uint(n); mask++ {
		store.ColumnOf(utility.FromMask(n, mask))
	}
	utility.ObserveSelected(eval, store)
	entries := make([]mc.Entry, 0, store.NumObserved())
	for _, o := range store.Observations() {
		entries = append(entries, mc.Entry{Row: o.Row, Col: o.Col, Val: o.Val})
	}

	out := make([]RankPoint, 0, len(cfg.Ranks))
	for _, r := range cfg.Ranks {
		mcCfg := mc.DefaultConfig(r)
		mcCfg.Lambda = cfg.Lambda
		mcCfg.WeightedReg = cfg.WeightedReg
		res, err := mc.Complete(entries, t, store.NumColumns(), mcCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: completing at rank %d: %w", r, err)
		}
		relErr := mc.RelativeError(full, res, func(col int) (int, bool) {
			if col == 0 {
				return 0, false // empty-set column predicts 0
			}
			return col - 1, true // column index == mask−1 by registration order
		})
		out = append(out, RankPoint{Rank: r, RelativeError: relErr, TrainRMSE: res.TrainRMSE})
	}
	return out, nil
}

// buildEvaluator runs FedAvg on the scenario and wraps it in a memoized
// utility evaluator.
func buildEvaluator(kind DatasetKind, numClients, samplesPerClient, testSamples, rounds, perRound int, nonIID bool, seed int64) (*utility.Evaluator, error) {
	sc := Scenario{
		Kind:             kind,
		NumClients:       numClients,
		SamplesPerClient: samplesPerClient,
		TestSamples:      testSamples,
		NonIID:           nonIID,
		Seed:             seed,
	}
	clients, test, m := sc.Build()
	flCfg := FLConfigFor(kind, rounds, perRound, seed+1)
	run, err := fl.TrainRun(flCfg, m, clients, test)
	if err != nil {
		return nil, fmt.Errorf("experiments: training %v: %w", kind, err)
	}
	return utility.NewEvaluator(run), nil
}

// FLConfigFor returns the FedAvg configuration the experiments use for a
// dataset kind. The image tasks use a smaller learning rate so the test
// loss decreases gradually over the whole horizon — the regime in which
// successive utility-matrix rows are similar and the low-rank structure of
// Propositions 1–2 is pronounced (fast one-round convergence would
// concentrate all utility in round 0).
func FLConfigFor(kind DatasetKind, rounds, perRound int, seed int64) fl.Config {
	cfg := fl.DefaultConfig(rounds, perRound)
	cfg.Seed = seed
	switch kind {
	case Synthetic:
		cfg.LearningRate = 0.3
	default:
		cfg.LearningRate = 0.1
	}
	return cfg
}
