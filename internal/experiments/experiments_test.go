package experiments

import (
	"math"
	"testing"
)

// Quick configurations keep the integration tests fast while still running
// every experiment end to end.

func TestScenarioBuildAllKinds(t *testing.T) {
	for _, kind := range AllKinds {
		for _, nonIID := range []bool{false, true} {
			sc := Scenario{Kind: kind, NumClients: 4, SamplesPerClient: 20, TestSamples: 40, NonIID: nonIID, Seed: 1}
			clients, test, m := sc.Build()
			if len(clients) != 4 {
				t.Fatalf("%v: %d clients, want 4", kind, len(clients))
			}
			for i, c := range clients {
				if c.Len() == 0 {
					t.Fatalf("%v: client %d empty", kind, i)
				}
				if err := c.Validate(); err != nil {
					t.Fatalf("%v client %d: %v", kind, i, err)
				}
			}
			if test.Len() == 0 {
				t.Fatalf("%v: empty test set", kind)
			}
			if m.NumParams() == 0 {
				t.Fatalf("%v: model has no parameters", kind)
			}
		}
	}
}

func TestParseDatasetKind(t *testing.T) {
	for _, kind := range AllKinds {
		got, err := ParseDatasetKind(kind.String())
		if err != nil || got != kind {
			t.Fatalf("round-trip %v failed: %v %v", kind, got, err)
		}
	}
	if _, err := ParseDatasetKind("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestFig1SeriesShape(t *testing.T) {
	series := Fig1(10, []float64{0.1, 0.2})
	if len(series) != 2 {
		t.Fatalf("got %d series, want 2", len(series))
	}
	for _, s := range series {
		if len(s.Values) != 11 {
			t.Fatalf("series has %d points, want 11", len(s.Values))
		}
		if s.Values[0] < s.Values[10] {
			t.Fatal("P_s must decrease in s")
		}
	}
	if len(Fig1Defaults()) == 0 {
		t.Fatal("no default participation rates")
	}
}

func TestFairnessQuick(t *testing.T) {
	cfg := DefaultFairnessConfig(MNIST)
	cfg.Trials = 3
	cfg.Rounds = 5
	cfg.SamplesPerClient = 20
	cfg.TestSamples = 50
	res, err := Fairness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FedSVDiffs) != 3 || len(res.ComFedSVDiffs) != 3 {
		t.Fatalf("diff counts %d/%d, want 3/3", len(res.FedSVDiffs), len(res.ComFedSVDiffs))
	}
	for _, d := range append(append([]float64(nil), res.FedSVDiffs...), res.ComFedSVDiffs...) {
		if d < 0 || math.IsNaN(d) {
			t.Fatalf("invalid relative difference %v", d)
		}
	}
	// Exceeds is a fraction.
	if f := res.FedSVExceeds(0.5); f < 0 || f > 1 {
		t.Fatalf("exceed fraction %v", f)
	}
}

func TestFairnessTooFewClients(t *testing.T) {
	cfg := DefaultFairnessConfig(MNIST)
	cfg.NumClients = 1
	if _, err := Fairness(cfg); err == nil {
		t.Fatal("expected error for 1 client")
	}
}

func TestLowRankQuick(t *testing.T) {
	cfg := DefaultLowRankConfig(MNIST)
	cfg.Rounds = 8
	cfg.NumClients = 6
	cfg.SamplesPerClient = 20
	cfg.TestSamples = 40
	cfg.TopK = 5
	res, err := LowRank(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SingularValues) != 5 {
		t.Fatalf("got %d singular values, want 5", len(res.SingularValues))
	}
	if res.MatrixRows != 8 || res.MatrixCols != 64 {
		t.Fatalf("matrix %dx%d, want 8x64", res.MatrixRows, res.MatrixCols)
	}
	// Spectrum decays: σ1 should dominate σ5 by a wide margin (the paper's
	// low-rankness claim).
	if res.SingularValues[4] > 0.5*res.SingularValues[0] {
		t.Fatalf("utility matrix not low-rank: %v", res.SingularValues)
	}
}

func TestRankImpactQuick(t *testing.T) {
	cfg := DefaultRankImpactConfig()
	cfg.Rounds = 8
	cfg.NumClients = 6
	cfg.SamplesPerClient = 20
	cfg.TestSamples = 40
	cfg.Ranks = []int{1, 3}
	points, err := RankImpact(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	for _, p := range points {
		if p.RelativeError < 0 || math.IsNaN(p.RelativeError) {
			t.Fatalf("invalid relative error %v", p.RelativeError)
		}
		if p.RelativeError > 1.5 {
			t.Fatalf("completion much worse than predicting zero: %v", p.RelativeError)
		}
	}
}

func TestNoisyDataQuick(t *testing.T) {
	cfg := DefaultNoisyDataConfig(MNIST)
	cfg.Trials = 2
	cfg.Rounds = 6
	cfg.NumClients = 6
	cfg.SamplesPerClient = 30
	cfg.TestSamples = 50
	res, err := NoisyData(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{res.GroundTruthCorr, res.FedSVCorr, res.ComFedSVCorr} {
		if c < -1-1e-9 || c > 1+1e-9 || math.IsNaN(c) {
			t.Fatalf("correlation %v out of range", c)
		}
	}
	if len(res.PerTrialFedSV) != 2 {
		t.Fatalf("per-trial records %d, want 2", len(res.PerTrialFedSV))
	}
}

func TestNoisyLabelQuick(t *testing.T) {
	cfg := DefaultNoisyLabelConfig(MNIST)
	cfg.NumClients = 12
	cfg.NumNoisy = 3
	cfg.Rounds = 5
	cfg.SamplesPerClient = 15
	cfg.TestSamples = 40
	cfg.Participations = []float64{0.3}
	cfg.MCSamples = 40
	cfg.FedSVSamples = 3
	res, err := NoisyLabel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("got %d points, want 1", len(res.Points))
	}
	p := res.Points[0]
	for _, j := range []float64{p.FedSVJaccard, p.ComFedSVJaccard} {
		if j < 0 || j > 1 {
			t.Fatalf("Jaccard %v out of range", j)
		}
	}
}

func TestNoisyLabelValidation(t *testing.T) {
	cfg := DefaultNoisyLabelConfig(MNIST)
	cfg.NumNoisy = cfg.NumClients + 1
	if _, err := NoisyLabel(cfg); err == nil {
		t.Fatal("expected error for too many noisy clients")
	}
}

func TestTimingQuick(t *testing.T) {
	cfg := DefaultTimingConfig()
	cfg.ClientCounts = []int{6, 10}
	cfg.Rounds = 3
	cfg.SamplesPerClient = 10
	cfg.TestSamples = 30
	points, err := Timing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	for _, p := range points {
		if p.FedSVSeconds <= 0 || p.ComFedSVSeconds <= 0 {
			t.Fatalf("non-positive timings: %+v", p)
		}
		if p.FedSVCalls <= 0 || p.ComFedSVCalls <= 0 {
			t.Fatalf("non-positive call counts: %+v", p)
		}
		// The paper's point: FedSV is cheaper than ComFedSV in calls.
		if p.CallRatio >= 1 {
			t.Fatalf("FedSV should need fewer calls: ratio %v", p.CallRatio)
		}
	}
}

func TestEpsRankQuick(t *testing.T) {
	cfg := DefaultEpsRankConfig()
	cfg.RoundsSweep = []int{4, 8}
	cfg.NumClients = 5
	cfg.SamplesPerClient = 15
	cfg.TestSamples = 40
	points, err := EpsRank(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	for _, p := range points {
		if p.EpsRank < 0 || p.EpsRank > p.Rounds {
			t.Fatalf("eps-rank %d out of range for T=%d", p.EpsRank, p.Rounds)
		}
	}
}

func TestTheorem1Quick(t *testing.T) {
	cfg := DefaultTheorem1Config()
	cfg.Rounds = 5
	cfg.SamplesPerClient = 20
	cfg.TestSamples = 40
	res, err := Theorem1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("Theorem 1 bound must hold: gap %v > bound %v", res.SymmetryGap, res.Bound)
	}
	if res.GroundTruthGap > 1e-9 {
		t.Fatalf("ground-truth gap for duplicates must vanish, got %v", res.GroundTruthGap)
	}
	if res.Delta < 0 {
		t.Fatalf("negative completion tolerance %v", res.Delta)
	}
}

func TestFLConfigFor(t *testing.T) {
	a := FLConfigFor(Synthetic, 10, 3, 1)
	b := FLConfigFor(MNIST, 10, 3, 1)
	if a.LearningRate == b.LearningRate {
		t.Fatal("per-kind learning rates expected")
	}
	if a.Rounds != 10 || a.ClientsPerRound != 3 {
		t.Fatal("rounds/per-round not propagated")
	}
}

func TestBaselinesQuick(t *testing.T) {
	cfg := DefaultBaselinesConfig(MNIST)
	cfg.Trials = 1
	cfg.NumClients = 6
	cfg.Rounds = 5
	cfg.SamplesPerClient = 20
	cfg.TestSamples = 40
	res, err := Baselines(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range BaselineOrder {
		rho, ok := res.Correlations[name]
		if !ok {
			t.Fatalf("method %s missing from results", name)
		}
		if rho < -1-1e-9 || rho > 1+1e-9 {
			t.Fatalf("%s correlation %v out of range", name, rho)
		}
		if res.UtilityCalls[name] <= 0 {
			t.Fatalf("%s has no recorded cost", name)
		}
	}
	// Cost ordering sanity: ground truth is the most expensive, LOO cheapest.
	if res.UtilityCalls["ground-truth"] <= res.UtilityCalls["fedsv"] {
		t.Fatal("ground truth must cost more than FedSV")
	}
	if res.UtilityCalls["leave-one-out"] >= res.UtilityCalls["fedsv"] {
		t.Fatal("leave-one-out must be cheaper than exact FedSV")
	}
}
