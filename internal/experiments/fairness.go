package experiments

import (
	"fmt"

	"comfedsv/internal/fl"
	"comfedsv/internal/mc"
	"comfedsv/internal/metrics"
	"comfedsv/internal/shapley"
	"comfedsv/internal/utility"
)

// FairnessConfig parameterizes the duplicated-client fairness experiment
// (Example 1 and Fig. 5): client NumClients−1 is given exactly the data of
// client 0, and the experiment measures how differently the two are valued.
type FairnessConfig struct {
	Kind             DatasetKind
	Trials           int
	Rounds           int
	ClientsPerRound  int
	NumClients       int
	SamplesPerClient int
	TestSamples      int
	Rank             int
	NonIID           bool
	// ForceFullFirstRound keeps Assumption 1 (needed by ComFedSV). The
	// paper's Example 1 demonstrates FedSV unfairness on plain FedAvg
	// without the full round; set this false to reproduce that exact
	// setting (ComFedSV is then computed on the same degraded trace).
	ForceFullFirstRound bool
	Seed                int64
}

// DefaultFairnessConfig mirrors Example 1: 10 clients, client 9 duplicates
// client 0, 10 rounds, 3 selected per round, non-IID data.
func DefaultFairnessConfig(kind DatasetKind) FairnessConfig {
	return FairnessConfig{
		Kind:                kind,
		Trials:              30,
		Rounds:              10,
		ClientsPerRound:     3,
		NumClients:          10,
		SamplesPerClient:    40,
		TestSamples:         120,
		Rank:                5,
		NonIID:              true,
		ForceFullFirstRound: true,
		Seed:                11,
	}
}

// FairnessResult holds the per-trial relative differences d_{0,N−1}
// (Eq. 7) for both metrics — the samples behind the ECDFs of Fig. 5.
type FairnessResult struct {
	Kind          DatasetKind
	FedSVDiffs    []float64
	ComFedSVDiffs []float64
}

// FedSVExceeds returns the fraction of trials with d_{0,N−1} > threshold
// under FedSV (Example 1 reports ≈65% at threshold 0.5).
func (r *FairnessResult) FedSVExceeds(threshold float64) float64 {
	return exceeds(r.FedSVDiffs, threshold)
}

// ComFedSVExceeds returns the fraction of trials with d_{0,N−1} > threshold
// under ComFedSV.
func (r *FairnessResult) ComFedSVExceeds(threshold float64) float64 {
	return exceeds(r.ComFedSVDiffs, threshold)
}

func exceeds(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Fairness runs the duplicated-client experiment. Each trial uses a fresh
// data seed and selection seed; within a trial FedSV and ComFedSV see the
// identical training trace, as in the paper's protocol.
func Fairness(cfg FairnessConfig) (*FairnessResult, error) {
	if cfg.NumClients < 2 {
		return nil, fmt.Errorf("experiments: fairness needs at least 2 clients, got %d", cfg.NumClients)
	}
	res := &FairnessResult{Kind: cfg.Kind}
	dup := cfg.NumClients - 1
	for trial := 0; trial < cfg.Trials; trial++ {
		seed := cfg.Seed + int64(1000*trial)
		sc := Scenario{
			Kind:             cfg.Kind,
			NumClients:       cfg.NumClients,
			SamplesPerClient: cfg.SamplesPerClient,
			TestSamples:      cfg.TestSamples,
			NonIID:           cfg.NonIID,
			Seed:             seed,
		}
		clients, test, m := sc.Build()
		clients[dup] = clients[0].Clone() // identical local data (Example 1)

		flCfg := FLConfigFor(cfg.Kind, cfg.Rounds, cfg.ClientsPerRound, seed+1)
		flCfg.ForceFullFirstRound = cfg.ForceFullFirstRound
		run, err := fl.TrainRun(flCfg, m, clients, test)
		if err != nil {
			return nil, fmt.Errorf("experiments: fairness trial %d: %w", trial, err)
		}
		eval := utility.NewEvaluator(run)

		fedsv := shapley.FedSV(eval)
		com, err := shapley.ComFedSVExact(eval, mc.DefaultConfig(cfg.Rank))
		if err != nil {
			return nil, fmt.Errorf("experiments: fairness trial %d: %w", trial, err)
		}

		res.FedSVDiffs = append(res.FedSVDiffs, metrics.RelativeDifference(fedsv[0], fedsv[dup]))
		res.ComFedSVDiffs = append(res.ComFedSVDiffs, metrics.RelativeDifference(com.Values[0], com.Values[dup]))
	}
	return res, nil
}
