// Package experiments contains one entry point per table/figure of the
// paper's evaluation (Section VII), built on the fl / utility / mc /
// shapley substrates. Each function returns plain data structs; formatting
// lives in cmd/comfedsv and the benchmarks.
package experiments

import (
	"fmt"

	"comfedsv/internal/dataset"
	"comfedsv/internal/model"
	"comfedsv/internal/rng"
)

// DatasetKind selects one of the paper's four benchmark data settings.
type DatasetKind int

const (
	// Synthetic is the synthetic(α,β) generator of Li et al. used with
	// logistic regression.
	Synthetic DatasetKind = iota
	// MNIST is the MNIST stand-in used with an MLP.
	MNIST
	// FMNIST is the Fashion-MNIST stand-in used with a CNN.
	FMNIST
	// CIFAR is the CIFAR-10 stand-in used with a (small) CNN.
	CIFAR
)

// AllKinds lists the four dataset settings in the paper's order.
var AllKinds = []DatasetKind{Synthetic, MNIST, FMNIST, CIFAR}

// String returns the dataset name as used in the paper's figures.
func (k DatasetKind) String() string {
	switch k {
	case Synthetic:
		return "synthetic"
	case MNIST:
		return "mnist"
	case FMNIST:
		return "fmnist"
	case CIFAR:
		return "cifar10"
	default:
		return fmt.Sprintf("dataset(%d)", int(k))
	}
}

// ParseDatasetKind converts a name (as printed by String) back to a kind.
func ParseDatasetKind(name string) (DatasetKind, error) {
	for _, k := range AllKinds {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("experiments: unknown dataset %q", name)
}

// Scenario describes a federated data+model setting.
type Scenario struct {
	Kind             DatasetKind
	NumClients       int
	SamplesPerClient int
	TestSamples      int
	NonIID           bool
	Seed             int64
}

// Build materializes the scenario: per-client datasets, the server's test
// set, and the model the paper pairs with this dataset (logistic regression
// for synthetic, MLP for MNIST, CNN for FMNIST/CIFAR).
func (sc Scenario) Build() (clients []*dataset.Dataset, test *dataset.Dataset, m model.Model) {
	g := rng.New(sc.Seed)
	switch sc.Kind {
	case Synthetic:
		alpha, beta := 0.0, 0.0
		if sc.NonIID {
			alpha, beta = 1.0, 1.0
		}
		cfg := dataset.DefaultSyntheticConfig(alpha, beta, sc.Seed)
		// Each client contributes held-out samples to the server's test
		// set, so D_c is a mixture of the clients' own distributions (the
		// task FedAvg actually optimizes in Eq. 1).
		testPer := (sc.TestSamples + sc.NumClients - 1) / sc.NumClients
		sizes := make([]int, sc.NumClients)
		for i := range sizes {
			sizes[i] = sc.SamplesPerClient + testPer
		}
		all := dataset.GenerateSynthetic(cfg, sizes)
		clients = make([]*dataset.Dataset, sc.NumClients)
		heldOut := make([]*dataset.Dataset, sc.NumClients)
		for i, d := range all {
			idx := make([]int, sc.SamplesPerClient)
			for j := range idx {
				idx[j] = j
			}
			clients[i] = d.Subset(idx)
			rest := make([]int, testPer)
			for j := range rest {
				rest[j] = sc.SamplesPerClient + j
			}
			heldOut[i] = d.Subset(rest)
		}
		test = dataset.Concat(heldOut...)
		test.Shuffle(g.Split(3))
		// Standardize features pooled across all parties (the usual
		// preprocessing for logistic regression; see dataset.Standardize).
		pooled := append(append([]*dataset.Dataset(nil), clients...), test)
		dataset.Standardize(pooled...)
		m = model.NewLogisticRegression(cfg.Dim, cfg.NumClasses)
	case MNIST, FMNIST, CIFAR:
		var icfg dataset.ImageConfig
		switch sc.Kind {
		case MNIST:
			icfg = dataset.MNISTLikeConfig(sc.Seed)
		case FMNIST:
			icfg = dataset.FMNISTLikeConfig(sc.Seed)
		default:
			icfg = dataset.CIFARLikeConfig(sc.Seed)
		}
		total := sc.NumClients*sc.SamplesPerClient + sc.TestSamples
		full := dataset.GenerateImages(icfg, total)
		train, testSet := dataset.TrainTestSplit(full, float64(sc.TestSamples)/float64(total), g.Split(1))
		test = testSet
		if sc.NonIID {
			clients = dataset.PartitionNonIID(train, sc.NumClients, g.Split(2))
		} else {
			clients = dataset.PartitionIID(train, sc.NumClients, g.Split(2))
		}
		switch sc.Kind {
		case MNIST:
			m = model.NewMLP(icfg.Shape.Size(), 16, icfg.NumClasses)
		default:
			m = model.NewCNN(icfg.Shape, 4, icfg.NumClasses)
		}
	default:
		panic(fmt.Sprintf("experiments: unknown dataset kind %d", sc.Kind))
	}
	return clients, test, m
}
