package experiments

import (
	"fmt"
	"math"

	"comfedsv/internal/fl"
	"comfedsv/internal/mat"
	"comfedsv/internal/mc"
	"comfedsv/internal/shapley"
	"comfedsv/internal/utility"
)

// EpsRankConfig parameterizes the empirical check of Propositions 1–2: for
// a Lipschitz, smooth, strongly convex objective (regularized logistic
// regression) the ε-rank of the utility matrix should grow like
// O(log T / ε) in the number of rounds T.
type EpsRankConfig struct {
	RoundsSweep      []int
	Eps              float64
	NumClients       int
	ClientsPerRound  int
	SamplesPerClient int
	TestSamples      int
	Seed             int64
}

// DefaultEpsRankConfig sweeps T over a doubling range at N = 8.
func DefaultEpsRankConfig() EpsRankConfig {
	return EpsRankConfig{
		RoundsSweep:      []int{25, 50, 100, 200},
		Eps:              1e-3,
		NumClients:       8,
		ClientsPerRound:  3,
		SamplesPerClient: 30,
		TestSamples:      100,
		Seed:             71,
	}
}

// EpsRankPoint is one T-position of the sweep.
type EpsRankPoint struct {
	Rounds  int
	EpsRank int
	// LogT is ln(Rounds), the predicted growth term.
	LogT float64
}

// EpsRank runs the Propositions 1–2 sweep on strongly convex logistic
// regression.
func EpsRank(cfg EpsRankConfig) ([]EpsRankPoint, error) {
	out := make([]EpsRankPoint, 0, len(cfg.RoundsSweep))
	for _, t := range cfg.RoundsSweep {
		eval, err := buildEvaluator(Synthetic, cfg.NumClients, cfg.SamplesPerClient, cfg.TestSamples,
			t, cfg.ClientsPerRound, true, cfg.Seed)
		if err != nil {
			return nil, err
		}
		full := utility.FullMatrix(eval)
		out = append(out, EpsRankPoint{
			Rounds:  t,
			EpsRank: mat.EpsRank(full, cfg.Eps),
			LogT:    math.Log(float64(t)),
		})
	}
	return out, nil
}

// Theorem1Config parameterizes the empirical check of Theorem 1: with a
// duplicated-client pair, the ComFedSV gap must be bounded by 4δ/N where
// δ = ‖U − WHᵀ‖₁ is the completion tolerance.
type Theorem1Config struct {
	Kind             DatasetKind
	NumClients       int
	Rounds           int
	ClientsPerRound  int
	SamplesPerClient int
	TestSamples      int
	Rank             int
	Seed             int64
}

// DefaultTheorem1Config uses a small universe so the full matrix is cheap.
func DefaultTheorem1Config() Theorem1Config {
	return Theorem1Config{
		Kind:             Synthetic,
		NumClients:       6,
		Rounds:           8,
		ClientsPerRound:  2,
		SamplesPerClient: 30,
		TestSamples:      100,
		Rank:             4,
		Seed:             81,
	}
}

// Theorem1Result reports the measured quantities of the bound.
type Theorem1Result struct {
	// Delta is the measured completion tolerance δ = ‖U − WHᵀ‖₁.
	Delta float64
	// Bound is 4δ/N.
	Bound float64
	// SymmetryGap is |s_0 − s_{N−1}| for the duplicated pair under ComFedSV.
	SymmetryGap float64
	// GroundTruthGap is the same gap on the fully observed matrix (exactly
	// 0 up to floating-point noise, since duplicates have equal columns).
	GroundTruthGap float64
	// Holds reports SymmetryGap ≤ Bound.
	Holds bool
}

// Theorem1 measures the fairness bound of Theorem 1 on a duplicated-client
// run.
func Theorem1(cfg Theorem1Config) (*Theorem1Result, error) {
	sc := Scenario{
		Kind:             cfg.Kind,
		NumClients:       cfg.NumClients,
		SamplesPerClient: cfg.SamplesPerClient,
		TestSamples:      cfg.TestSamples,
		NonIID:           true,
		Seed:             cfg.Seed,
	}
	clients, test, m := sc.Build()
	dup := cfg.NumClients - 1
	clients[dup] = clients[0].Clone()

	flCfg := FLConfigFor(cfg.Kind, cfg.Rounds, cfg.ClientsPerRound, cfg.Seed+1)
	run, err := fl.TrainRun(flCfg, m, clients, test)
	if err != nil {
		return nil, fmt.Errorf("experiments: theorem1: %w", err)
	}
	eval := utility.NewEvaluator(run)

	com, err := shapley.ComFedSVExact(eval, mc.DefaultConfig(cfg.Rank))
	if err != nil {
		return nil, fmt.Errorf("experiments: theorem1: %w", err)
	}
	gt := shapley.GroundTruth(eval)

	// δ = ‖U − WHᵀ‖₁ over the full matrix (empty column excluded: both
	// sides are 0 there by convention).
	full := utility.FullMatrix(eval)
	t := len(run.Rounds)
	n := cfg.NumClients
	var delta float64
	for mask := uint64(1); mask < 1<<uint(n); mask++ {
		var colSum float64
		for round := 0; round < t; round++ {
			colSum += math.Abs(full.At(round, int(mask)) - com.Completion.Predict(round, int(mask)-1))
		}
		if colSum > delta {
			delta = colSum
		}
	}

	res := &Theorem1Result{
		Delta:          delta,
		Bound:          4 * delta / float64(n),
		SymmetryGap:    math.Abs(com.Values[0] - com.Values[dup]),
		GroundTruthGap: math.Abs(gt[0] - gt[dup]),
	}
	res.Holds = res.SymmetryGap <= res.Bound+1e-12
	return res, nil
}
