package experiments

import (
	"comfedsv/internal/shapley"
)

// Fig1Series is one curve of Fig. 1: the unfairness probability P_s of
// FedSV as a function of s for one participation probability p.
type Fig1Series struct {
	P      float64
	S      []int
	Values []float64
}

// Fig1 reproduces Fig. 1: P_s for s = 0..T for each participation
// probability. The paper plots curves for several p derived from
// (N, m) combinations; we accept p directly.
func Fig1(t int, ps []float64) []Fig1Series {
	out := make([]Fig1Series, len(ps))
	for i, p := range ps {
		series := Fig1Series{P: p, S: make([]int, t+1), Values: make([]float64, t+1)}
		for s := 0; s <= t; s++ {
			series.S[s] = s
			series.Values[s] = shapley.UnfairnessProbability(t, s, p)
		}
		out[i] = series
	}
	return out
}

// Fig1Defaults returns the participation probabilities used for the
// default rendering: p for (N=10, m∈{1,…,5}).
func Fig1Defaults() []float64 {
	ms := []int{1, 2, 3, 4, 5}
	ps := make([]float64, len(ms))
	for i, m := range ms {
		ps[i] = shapley.ParticipationProbability(10, m)
	}
	return ps
}
