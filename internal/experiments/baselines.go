package experiments

import (
	"fmt"

	"comfedsv/internal/baselines"
	"comfedsv/internal/dataset"
	"comfedsv/internal/fl"
	"comfedsv/internal/mc"
	"comfedsv/internal/metrics"
	"comfedsv/internal/rng"
	"comfedsv/internal/shapley"
	"comfedsv/internal/utility"
)

// BaselinesConfig parameterizes the extension experiment: the Fig. 6
// noisy-data detection protocol scored for every valuation method in the
// repository — ground truth, FedSV, ComFedSV, and the three non-Shapley /
// estimator baselines from the paper's related-work section.
type BaselinesConfig struct {
	Kind             DatasetKind
	Trials           int
	Rounds           int
	ClientsPerRound  int
	NumClients       int
	SamplesPerClient int
	TestSamples      int
	NoiseStep        float64
	NoiseSigma       float64
	Rank             int
	Seed             int64
}

// DefaultBaselinesConfig mirrors the Fig. 6 defaults.
func DefaultBaselinesConfig(kind DatasetKind) BaselinesConfig {
	return BaselinesConfig{
		Kind:             kind,
		Trials:           5,
		Rounds:           10,
		ClientsPerRound:  3,
		NumClients:       10,
		SamplesPerClient: 100,
		TestSamples:      200,
		NoiseStep:        0.05,
		NoiseSigma:       3.0,
		Rank:             5,
		Seed:             91,
	}
}

// BaselinesResult maps each method name to its mean Spearman correlation
// with the true quality ranking.
type BaselinesResult struct {
	Kind         DatasetKind
	Correlations map[string]float64
	// UtilityCalls maps each method to its mean distinct-evaluation count,
	// the paper's cost model.
	UtilityCalls map[string]float64
}

// Baselines runs the extension comparison.
func Baselines(cfg BaselinesConfig) (*BaselinesResult, error) {
	truth := make([]float64, cfg.NumClients)
	for i := range truth {
		truth[i] = -float64(i)
	}
	sums := map[string]float64{}
	calls := map[string]float64{}
	record := func(name string, values []float64, cost int) {
		sums[name] += metrics.Spearman(values, truth)
		calls[name] += float64(cost)
	}

	for trial := 0; trial < cfg.Trials; trial++ {
		seed := cfg.Seed + int64(1000*trial)
		sc := Scenario{
			Kind:             cfg.Kind,
			NumClients:       cfg.NumClients,
			SamplesPerClient: cfg.SamplesPerClient,
			TestSamples:      cfg.TestSamples,
			NonIID:           false,
			Seed:             seed,
		}
		clients, test, m := sc.Build()
		g := rng.New(seed + 7)
		for i, c := range clients {
			clients[i] = c.Clone()
			dataset.AddFeatureNoise(clients[i], cfg.NoiseStep*float64(i), cfg.NoiseSigma, g.Split(int64(i)))
		}
		// Data-quality detection wants the aggressive default schedule:
		// larger steps make per-client quality differences show up in the
		// utilities within the short 10-round horizon (the slow schedule
		// used by the fairness/completion experiments undertrains here).
		flCfg := fl.DefaultConfig(cfg.Rounds, cfg.ClientsPerRound)
		flCfg.Seed = seed + 1
		run, err := fl.TrainRun(flCfg, m, clients, test)
		if err != nil {
			return nil, fmt.Errorf("experiments: baselines trial %d: %w", trial, err)
		}

		// Each method gets its own evaluator so cost accounting is clean.
		gtEval := utility.NewEvaluator(run)
		record("ground-truth", shapley.GroundTruth(gtEval), gtEval.Calls())

		fedEval := utility.NewEvaluator(run)
		record("fedsv", shapley.FedSV(fedEval), fedEval.Calls())

		comEval := utility.NewEvaluator(run)
		com, err := shapley.ComFedSVExact(comEval, mc.DefaultConfig(cfg.Rank))
		if err != nil {
			return nil, fmt.Errorf("experiments: baselines trial %d: %w", trial, err)
		}
		record("comfedsv", com.Values, comEval.Calls())

		for _, method := range baselines.AllMethods {
			e := utility.NewEvaluator(run)
			v, err := baselines.Compute(method, e, seed+2)
			if err != nil {
				return nil, fmt.Errorf("experiments: baselines trial %d %v: %w", trial, method, err)
			}
			record(method.String(), v, e.Calls())
		}
	}

	res := &BaselinesResult{
		Kind:         cfg.Kind,
		Correlations: map[string]float64{},
		UtilityCalls: map[string]float64{},
	}
	for name, s := range sums {
		res.Correlations[name] = s / float64(cfg.Trials)
		res.UtilityCalls[name] = calls[name] / float64(cfg.Trials)
	}
	return res, nil
}

// BaselineOrder is the reporting order for the comparison table.
var BaselineOrder = []string{"ground-truth", "fedsv", "comfedsv", "leave-one-out", "tmc-shapley", "group-testing"}
