package experiments

import (
	"fmt"
	"math"

	"comfedsv/internal/dataset"
	"comfedsv/internal/fl"
	"comfedsv/internal/mc"
	"comfedsv/internal/metrics"
	"comfedsv/internal/rng"
	"comfedsv/internal/shapley"
	"comfedsv/internal/utility"
)

// NoisyLabelConfig parameterizes the noisy-label detection experiment
// (Section VII-C2 / Fig. 7): NumNoisy of NumClients clients have
// FlipFraction of their labels flipped; the experiment sweeps the
// per-round participation fraction and measures the Jaccard coefficient
// between the noisy set and the bottom-NumNoisy valuations.
type NoisyLabelConfig struct {
	Kind             DatasetKind
	Rounds           int
	NumClients       int
	NumNoisy         int
	FlipFraction     float64
	SamplesPerClient int
	TestSamples      int
	Participations   []float64 // paper: {0.10, 0.20, 0.30, 0.40, 0.50}
	Rank             int
	// MCSamples is the number of Monte-Carlo permutations for ComFedSV
	// (Algorithm 1); 0 picks 2·N·ln N.
	MCSamples int
	// FedSVSamples is the per-round permutation count for the FedSV
	// Monte-Carlo estimator; 0 picks ⌈ln K·K⌉ / K ≈ ln K per-round samples.
	FedSVSamples int
	Seed         int64
}

// DefaultNoisyLabelConfig mirrors the paper's setting scaled to a
// simulator-friendly size: 100 clients, 10 noisy with 30% flips. Rounds
// default to 30 (the paper uses 100; the Jaccard ordering stabilizes much
// earlier on the synthetic stand-ins).
func DefaultNoisyLabelConfig(kind DatasetKind) NoisyLabelConfig {
	return NoisyLabelConfig{
		Kind:             kind,
		Rounds:           30,
		NumClients:       100,
		NumNoisy:         10,
		FlipFraction:     0.3,
		SamplesPerClient: 20,
		TestSamples:      100,
		Participations:   []float64{0.1, 0.2, 0.3, 0.4, 0.5},
		Rank:             5,
		Seed:             51,
	}
}

// NoisyLabelPoint is one x-position of Fig. 7.
type NoisyLabelPoint struct {
	Participation   float64
	FedSVJaccard    float64
	ComFedSVJaccard float64
}

// NoisyLabelResult holds the Fig. 7 series for one dataset.
type NoisyLabelResult struct {
	Kind   DatasetKind
	Points []NoisyLabelPoint
	// Noisy is the index set of label-corrupted clients.
	Noisy []int
}

// NoisyLabel reproduces one dataset panel of Fig. 7.
func NoisyLabel(cfg NoisyLabelConfig) (*NoisyLabelResult, error) {
	if cfg.NumNoisy <= 0 || cfg.NumNoisy > cfg.NumClients {
		return nil, fmt.Errorf("experiments: %d noisy of %d clients", cfg.NumNoisy, cfg.NumClients)
	}
	res := &NoisyLabelResult{Kind: cfg.Kind}
	for i := 0; i < cfg.NumNoisy; i++ {
		res.Noisy = append(res.Noisy, i)
	}
	for _, part := range cfg.Participations {
		k := int(part * float64(cfg.NumClients))
		if k < 1 {
			k = 1
		}
		seed := cfg.Seed + int64(1e6*part)

		sc := Scenario{
			Kind:             cfg.Kind,
			NumClients:       cfg.NumClients,
			SamplesPerClient: cfg.SamplesPerClient,
			TestSamples:      cfg.TestSamples,
			NonIID:           false, // paper: IID split, then corruption
			Seed:             seed,
		}
		clients, test, m := sc.Build()
		g := rng.New(seed + 7)
		for _, i := range res.Noisy {
			clients[i] = clients[i].Clone()
			dataset.FlipLabels(clients[i], cfg.FlipFraction, g.Split(int64(i)))
		}

		flCfg := FLConfigFor(cfg.Kind, cfg.Rounds, k, seed+1)
		run, err := fl.TrainRun(flCfg, m, clients, test)
		if err != nil {
			return nil, fmt.Errorf("experiments: noisy-label at %.0f%%: %w", 100*part, err)
		}

		// FedSV (Monte-Carlo; exact enumeration is infeasible at K ≥ 10).
		fedsvSamples := cfg.FedSVSamples
		if fedsvSamples <= 0 {
			fedsvSamples = int(math.Ceil(math.Log(math.Max(float64(k), 2)))) + 1
		}
		fedsvEval := utility.NewEvaluator(run)
		fedsv := shapley.FedSVMonteCarlo(fedsvEval, fedsvSamples, seed+2)

		// ComFedSV (Algorithm 1).
		mcSamples := cfg.MCSamples
		if mcSamples <= 0 {
			mcSamples = int(2*float64(cfg.NumClients)*math.Log(float64(cfg.NumClients))) + 1
		}
		comEval := utility.NewEvaluator(run)
		mcCfg := shapley.MonteCarloConfig{
			Samples:    mcSamples,
			Completion: mc.DefaultConfig(cfg.Rank),
			Seed:       seed + 3,
		}
		com, err := shapley.MonteCarlo(comEval, mcCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: noisy-label ComFedSV at %.0f%%: %w", 100*part, err)
		}

		res.Points = append(res.Points, NoisyLabelPoint{
			Participation:   part,
			FedSVJaccard:    metrics.Jaccard(res.Noisy, metrics.BottomK(fedsv, cfg.NumNoisy)),
			ComFedSVJaccard: metrics.Jaccard(res.Noisy, metrics.BottomK(com.Values, cfg.NumNoisy)),
		})
	}
	return res, nil
}
