package mat

import (
	"testing"
)

// spdFixture builds a well-conditioned SPD matrix AᵀA + I and a rhs.
func spdFixture(n int) (*Dense, []float64) {
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, float64((i*7+j*3)%5)-2)
		}
	}
	spd := Mul(a.T(), a)
	for i := 0; i < n; i++ {
		spd.Add(i, i, 1)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i) - 1.5
	}
	return spd, b
}

func TestCholeskyIntoMatchesCholesky(t *testing.T) {
	for _, n := range []int{1, 2, 5, 9} {
		spd, _ := spdFixture(n)
		want, err := Cholesky(spd)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := NewDense(n, n)
		// Poison the destination to prove stale contents are overwritten.
		for i := range got.data {
			got.data[i] = 1e9
		}
		if err := CholeskyInto(got, spd); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range want.data {
			if want.data[i] != got.data[i] {
				t.Fatalf("n=%d: factor differs at %d: %v vs %v", n, i, want.data[i], got.data[i])
			}
		}
	}
}

func TestCholeskyIntoRejectsIndefinite(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, -1)
	a.Set(1, 1, 1)
	if err := CholeskyInto(NewDense(2, 2), a); err != ErrNotPositiveDefinite {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskySolveIntoMatchesCholeskySolve(t *testing.T) {
	spd, b := spdFixture(6)
	l, err := Cholesky(spd)
	if err != nil {
		t.Fatal(err)
	}
	want := CholeskySolve(l, b)
	x := make([]float64, 6)
	y := make([]float64, 6)
	CholeskySolveInto(l, b, x, y)
	for i := range want {
		if want[i] != x[i] {
			t.Fatalf("solution differs at %d: %v vs %v", i, want[i], x[i])
		}
	}
}

func ridgeFixture(rows, r int) ([][]float64, []float64) {
	features := make([][]float64, rows)
	targets := make([]float64, rows)
	for i := range features {
		f := make([]float64, r)
		for j := range f {
			f[j] = float64((i*5+j*11)%7) - 3
		}
		features[i] = f
		targets[i] = float64(i%4) - 1.5
	}
	return features, targets
}

func TestRidgeSolveIntoMatchesRidgeSolve(t *testing.T) {
	for _, r := range []int{1, 3, 5} {
		features, targets := ridgeFixture(12, r)
		want, err := RidgeSolve(features, targets, 0.1)
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		dst := make([]float64, r)
		if err := RidgeSolveInto(features, targets, 0.1, dst, NewRidgeScratch(r)); err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		for i := range want {
			if want[i] != dst[i] {
				t.Fatalf("r=%d: solution differs at %d: %v vs %v", r, i, want[i], dst[i])
			}
		}
	}
}

// TestRidgeScratchReuseAcrossRanks drives one scratch through shrinking and
// growing ranks; every solve must still match the allocating path.
func TestRidgeScratchReuseAcrossRanks(t *testing.T) {
	s := NewRidgeScratch(2)
	for _, r := range []int{4, 2, 4, 1, 6} {
		features, targets := ridgeFixture(10, r)
		want, err := RidgeSolve(features, targets, 0.05)
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		dst := make([]float64, r)
		if err := RidgeSolveInto(features, targets, 0.05, dst, s); err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		for i := range want {
			if want[i] != dst[i] {
				t.Fatalf("r=%d: solution differs at %d: %v vs %v", r, i, want[i], dst[i])
			}
		}
	}
}

func TestRidgeSolveIntoNoObservations(t *testing.T) {
	if err := RidgeSolveInto(nil, nil, 0.1, nil, NewRidgeScratch(1)); err != ErrRidgeNoObservations {
		t.Fatalf("err = %v, want ErrRidgeNoObservations", err)
	}
}

// TestRidgeSolveIntoZeroAlloc pins the hot-path contract: a warm scratch
// solves without allocating at all.
func TestRidgeSolveIntoZeroAlloc(t *testing.T) {
	features, targets := ridgeFixture(15, 5)
	s := NewRidgeScratch(5)
	dst := make([]float64, 5)
	allocs := testing.AllocsPerRun(50, func() {
		if err := RidgeSolveInto(features, targets, 0.1, dst, s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("RidgeSolveInto allocated %v times per run, want 0", allocs)
	}
}
