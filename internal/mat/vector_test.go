package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v, want 0", got)
	}
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy result %v, want [7 9]", y)
	}
}

func TestAxpyTo(t *testing.T) {
	dst := make([]float64, 2)
	AxpyTo(dst, 2, []float64{1, 2}, []float64{10, 20})
	if dst[0] != 12 || dst[1] != 24 {
		t.Fatalf("AxpyTo result %v, want [12 24]", dst)
	}
}

func TestVecOps(t *testing.T) {
	a := []float64{1, 2}
	AddVec(a, []float64{3, 4})
	if a[0] != 4 || a[1] != 6 {
		t.Fatalf("AddVec = %v", a)
	}
	SubVec(a, []float64{1, 1})
	if a[0] != 3 || a[1] != 5 {
		t.Fatalf("SubVec = %v", a)
	}
	ScaleVec(2, a)
	if a[0] != 6 || a[1] != 10 {
		t.Fatalf("ScaleVec = %v", a)
	}
}

func TestCopyVecIndependence(t *testing.T) {
	a := []float64{1, 2}
	b := CopyVec(a)
	b[0] = 9
	if a[0] != 1 {
		t.Fatal("CopyVec must not alias")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestMeanVecs(t *testing.T) {
	got := MeanVecs([][]float64{{1, 2}, {3, 4}})
	if got[0] != 2 || got[1] != 3 {
		t.Fatalf("MeanVecs = %v, want [2 3]", got)
	}
}

func TestMeanVecsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MeanVecs(nil)
}

func TestArgMax(t *testing.T) {
	cases := []struct {
		in   []float64
		want int
	}{
		{[]float64{1, 3, 2}, 1},
		{[]float64{5}, 0},
		{[]float64{2, 2, 2}, 0}, // first wins ties
		{nil, -1},
		{[]float64{-3, -1, -2}, 1},
	}
	for _, tc := range cases {
		if got := ArgMax(tc.in); got != tc.want {
			t.Fatalf("ArgMax(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestSoftmaxProperties(t *testing.T) {
	// Property: softmax sums to 1, entries in (0,1], shift-invariant,
	// and stable under large logits.
	f := func(a, b, c float64) bool {
		logits := []float64{clampT(a), clampT(b), clampT(c)}
		out := make([]float64, 3)
		Softmax(out, logits)
		var sum float64
		for _, p := range out {
			if p <= 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			return false
		}
		// Shift invariance.
		shifted := []float64{logits[0] + 100, logits[1] + 100, logits[2] + 100}
		out2 := make([]float64, 3)
		Softmax(out2, shifted)
		for i := range out {
			if math.Abs(out[i]-out2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxExtremeLogits(t *testing.T) {
	out := make([]float64, 2)
	Softmax(out, []float64{1000, -1000})
	if math.Abs(out[0]-1) > 1e-12 || out[1] > 1e-12 {
		t.Fatalf("Softmax extreme = %v", out)
	}
}

func clampT(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 50)
}

func TestMeanVecsInto(t *testing.T) {
	vecs := [][]float64{{1, 2, 3}, {4, 5, 7}, {0.1, 0.2, 0.3}}
	want := MeanVecs(vecs)
	got := MeanVecsInto(nil, vecs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("elem %d: MeanVecsInto %v != MeanVecs %v (must be bit-identical)", i, got[i], want[i])
		}
	}
	// Reuse a dirty, over-sized buffer: same result, same backing array.
	buf := []float64{9, 9, 9, 9, 9}
	got2 := MeanVecsInto(buf, vecs)
	if &got2[0] != &buf[0] {
		t.Fatal("MeanVecsInto reallocated despite sufficient capacity")
	}
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("reused buffer elem %d: %v != %v", i, got2[i], want[i])
		}
	}
	if allocs := testing.AllocsPerRun(20, func() { buf = MeanVecsInto(buf, vecs) }); allocs != 0 {
		t.Fatalf("MeanVecsInto with warm buffer allocated %v times per run, want 0", allocs)
	}
}

func TestMeanVecsIntoEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MeanVecsInto(nil, nil)
}
