package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDense(t *testing.T) {
	m := NewDense(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims() = (%d,%d), want (3,4)", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("fresh matrix not zero at (%d,%d)", i, j)
			}
		}
	}
}

func TestSetAtAdd(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 3.5)
	if got := m.At(0, 1); got != 3.5 {
		t.Fatalf("At(0,1) = %v, want 3.5", got)
	}
	m.Add(0, 1, 1.5)
	if got := m.At(0, 1); got != 5 {
		t.Fatalf("after Add, At(0,1) = %v, want 5", got)
	}
}

func TestIndexPanics(t *testing.T) {
	m := NewDense(2, 2)
	cases := []struct {
		name string
		f    func()
	}{
		{"At row", func() { m.At(2, 0) }},
		{"At col", func() { m.At(0, 2) }},
		{"At negative", func() { m.At(-1, 0) }},
		{"Set out of range", func() { m.Set(5, 5, 1) }},
		{"Row out of range", func() { m.Row(3) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.f()
		})
	}
}

func TestRowIsView(t *testing.T) {
	m := NewDense(2, 3)
	row := m.Row(1)
	row[2] = 9
	if m.At(1, 2) != 9 {
		t.Fatal("Row must be a view into the matrix")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestTranspose(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	if r, c := tr.Dims(); r != 3 || c != 2 {
		t.Fatalf("T dims (%d,%d), want (3,2)", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := Mul(a, b)
	want := NewDenseData(2, 2, []float64{58, 64, 139, 154})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("Mul = %+v, want %+v", got, want)
	}
}

func TestMulTMatchesMulTranspose(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, -2, 3, 0.5, 5, -6})
	b := NewDenseData(4, 3, []float64{1, 0, 2, -1, 1, 0, 3, 2, 1, 0, 0, 1})
	if !Equal(MulT(a, b), Mul(a, b.T()), 1e-12) {
		t.Fatal("MulT(a,b) != Mul(a, bᵀ)")
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestScaleAddSub(t *testing.T) {
	a := NewDenseData(1, 3, []float64{1, 2, 3})
	b := NewDenseData(1, 3, []float64{4, 5, 6})
	a.Scale(2)
	a.AddMat(b)
	want := NewDenseData(1, 3, []float64{6, 9, 12})
	if !Equal(a, want, 0) {
		t.Fatalf("scale+add = %v, want %v", a.Data(), want.Data())
	}
	a.SubMat(b)
	want2 := NewDenseData(1, 3, []float64{2, 4, 6})
	if !Equal(a, want2, 0) {
		t.Fatalf("sub = %v, want %v", a.Data(), want2.Data())
	}
}

func TestNorms(t *testing.T) {
	m := NewDenseData(2, 2, []float64{3, -4, 0, 0})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Frobenius = %v, want 5", got)
	}
	if got := m.MaxNorm(); got != 4 {
		t.Fatalf("MaxNorm = %v, want 4", got)
	}
	// Column sums of |.|: col0 = 3, col1 = 4.
	if got := m.ColSumNorm(); got != 4 {
		t.Fatalf("ColSumNorm = %v, want 4", got)
	}
}

func TestCholeskySolveIdentity(t *testing.T) {
	a := Identity(4)
	b := []float64{1, 2, 3, 4}
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-12 {
			t.Fatalf("identity solve x[%d] = %v, want %v", i, x[i], b[i])
		}
	}
}

func TestCholeskyKnown(t *testing.T) {
	// a = L Lᵀ with L = [[2,0],[1,3]] → a = [[4,2],[2,10]].
	a := NewDenseData(2, 2, []float64{4, 2, 2, 10})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := NewDenseData(2, 2, []float64{2, 0, 1, 3})
	if !Equal(l, want, 1e-12) {
		t.Fatalf("Cholesky = %+v, want %+v", l, want)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected ErrNotPositiveDefinite")
	}
}

func TestSolveSPDRandomized(t *testing.T) {
	// Property: for random SPD a (built as BᵀB + I) and random x,
	// SolveSPD(a, a·x) ≈ x.
	f := func(seed int64) bool {
		r := newTestRand(seed)
		n := 1 + int(abs64(seed))%6
		b := NewDense(n, n)
		for i := range b.data {
			b.data[i] = r()
		}
		a := Mul(b.T(), b)
		for i := 0; i < n; i++ {
			a.Add(i, i, 1)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r()
		}
		rhs := make([]float64, n)
		for i := 0; i < n; i++ {
			rhs[i] = Dot(a.Row(i), x)
		}
		got, err := SolveSPD(a, rhs)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRidgeSolveShrinksTowardZero(t *testing.T) {
	features := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	targets := []float64{1, 2, 3}
	small, err := RidgeSolve(features, targets, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RidgeSolve(features, targets, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if Norm2(big) >= Norm2(small) {
		t.Fatalf("large lambda must shrink: ‖big‖=%v ‖small‖=%v", Norm2(big), Norm2(small))
	}
	if Norm2(big) > 1e-3 {
		t.Fatalf("huge lambda should give near-zero solution, got %v", big)
	}
}

func TestRidgeSolveExactFit(t *testing.T) {
	// With tiny lambda and consistent equations, ridge recovers the truth.
	w := []float64{2, -1}
	features := [][]float64{{1, 0}, {0, 1}, {2, 3}, {1, 1}}
	targets := make([]float64, len(features))
	for i, f := range features {
		targets[i] = Dot(f, w)
	}
	got, err := RidgeSolve(features, targets, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if math.Abs(got[i]-w[i]) > 1e-6 {
			t.Fatalf("ridge fit = %v, want %v", got, w)
		}
	}
}

func TestRidgeSolveNoObservations(t *testing.T) {
	if _, err := RidgeSolve(nil, nil, 1); err == nil {
		t.Fatal("expected error for empty system")
	}
}

// newTestRand returns a deterministic pseudo-random generator in [-1,1].
func newTestRand(seed int64) func() float64 {
	state := uint64(seed)*2862933555777941757 + 3037000493
	return func() float64 {
		state = state*2862933555777941757 + 3037000493
		return float64(int64(state>>11))/float64(1<<52) - 1
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		if x == math.MinInt64 {
			return math.MaxInt64
		}
		return -x
	}
	return x
}
