package mat

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics on length mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// AxpyTo stores a*x + y into dst. All slices must share a length.
func AxpyTo(dst []float64, a float64, x, y []float64) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic("mat: axpy length mismatch")
	}
	for i := range dst {
		dst[i] = a*x[i] + y[i]
	}
}

// Axpy adds a*x to y in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: axpy length mismatch")
	}
	for i := range y {
		y[i] += a * x[i]
	}
}

// ScaleVec multiplies v by a in place.
func ScaleVec(a float64, v []float64) {
	for i := range v {
		v[i] *= a
	}
}

// AddVec adds b to a in place.
func AddVec(a, b []float64) {
	if len(a) != len(b) {
		panic("mat: add length mismatch")
	}
	for i := range a {
		a[i] += b[i]
	}
}

// SubVec subtracts b from a in place.
func SubVec(a, b []float64) {
	if len(a) != len(b) {
		panic("mat: sub length mismatch")
	}
	for i := range a {
		a[i] -= b[i]
	}
}

// CopyVec returns a copy of v.
func CopyVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Mean returns the arithmetic mean of v; it returns 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// MeanVecs returns the element-wise mean of the given vectors.
// It panics if vecs is empty or ragged.
func MeanVecs(vecs [][]float64) []float64 {
	if len(vecs) == 0 {
		panic("mat: mean of no vectors")
	}
	n := len(vecs[0])
	out := make([]float64, n)
	for _, v := range vecs {
		if len(v) != n {
			panic("mat: ragged vectors in mean")
		}
		for i, x := range v {
			out[i] += x
		}
	}
	inv := 1 / float64(len(vecs))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// MeanVecsInto computes the element-wise mean of the given vectors into a
// caller-owned buffer, growing it only when its capacity is insufficient,
// and returns the (possibly re-sliced) buffer. The accumulation order —
// sum the vectors in input order, then scale by 1/len — is exactly
// MeanVecs's, so the result is bit-identical to MeanVecs(vecs); callers
// that reuse the buffer pay zero allocations on the memoized-utility hot
// path. It panics if vecs is empty or ragged.
func MeanVecsInto(dst []float64, vecs [][]float64) []float64 {
	if len(vecs) == 0 {
		panic("mat: mean of no vectors")
	}
	n := len(vecs[0])
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	for _, v := range vecs {
		if len(v) != n {
			panic("mat: ragged vectors in mean")
		}
		for i, x := range v {
			dst[i] += x
		}
	}
	inv := 1 / float64(len(vecs))
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}

// ArgMax returns the index of the maximum element of v (first one on ties);
// it returns -1 for an empty slice.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best, bi := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, bi = x, i+1
		}
	}
	return bi
}

// Softmax writes the softmax of logits into dst (which may alias logits).
// It uses the max-subtraction trick for numerical stability.
func Softmax(dst, logits []float64) {
	if len(dst) != len(logits) {
		panic("mat: softmax length mismatch")
	}
	mx := logits[0]
	for _, x := range logits[1:] {
		if x > mx {
			mx = x
		}
	}
	var sum float64
	for i, x := range logits {
		e := math.Exp(x - mx)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}
