package mat

import (
	"fmt"
	"math"
	"sort"
)

// SymEigen computes all eigenvalues (and optionally eigenvectors) of the
// symmetric matrix a using the cyclic Jacobi rotation method. Eigenvalues
// are returned in descending order. If wantVectors is true, the i-th column
// of the returned matrix is the eigenvector for eigenvalue i.
//
// Jacobi is quadratically convergent and unconditionally stable, which is
// exactly what we want for the modest matrix sizes (≤ a few hundred) used
// when analyzing utility-matrix spectra (Fig. 2 of the paper).
func SymEigen(a *Dense, wantVectors bool) (eigenvalues []float64, eigenvectors *Dense) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: eigen of non-square %dx%d", a.rows, a.cols))
	}
	n := a.rows
	w := a.Clone() // working copy, will converge to diagonal
	var v *Dense
	if wantVectors {
		v = Identity(n)
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off < 1e-14*(1+w.FrobeniusNorm()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				// Compute the Jacobi rotation that annihilates w[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(w, p, q, c, s)
				if wantVectors {
					rotateCols(v, p, q, c, s)
				}
			}
		}
	}

	eigenvalues = make([]float64, n)
	order := make([]int, n)
	for i := 0; i < n; i++ {
		eigenvalues[i] = w.At(i, i)
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return eigenvalues[order[i]] > eigenvalues[order[j]] })
	sorted := make([]float64, n)
	for i, o := range order {
		sorted[i] = eigenvalues[o]
	}
	if wantVectors {
		perm := NewDense(n, n)
		for j, o := range order {
			for i := 0; i < n; i++ {
				perm.Set(i, j, v.At(i, o))
			}
		}
		return sorted, perm
	}
	return sorted, nil
}

// rotate applies the two-sided Jacobi rotation J(p,q,θ)ᵀ A J(p,q,θ) in place.
func rotate(a *Dense, p, q int, c, s float64) {
	n := a.rows
	for k := 0; k < n; k++ {
		akp, akq := a.At(k, p), a.At(k, q)
		a.Set(k, p, c*akp-s*akq)
		a.Set(k, q, s*akp+c*akq)
	}
	for k := 0; k < n; k++ {
		apk, aqk := a.At(p, k), a.At(q, k)
		a.Set(p, k, c*apk-s*aqk)
		a.Set(q, k, s*apk+c*aqk)
	}
}

// rotateCols applies the rotation to columns p and q of v (accumulating
// eigenvectors).
func rotateCols(v *Dense, p, q int, c, s float64) {
	for k := 0; k < v.rows; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

func offDiagNorm(a *Dense) float64 {
	var s float64
	n := a.rows
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				s += a.At(i, j) * a.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// SingularValues returns the singular values of a in descending order.
// They are computed as the square roots of the eigenvalues of the smaller
// of a aᵀ and aᵀ a, which is numerically adequate for the well-conditioned
// spectra analyzed in the paper (singular values spanning ~8 orders of
// magnitude) and avoids implementing a full bidiagonal SVD.
func SingularValues(a *Dense) []float64 {
	var gram *Dense
	var n int
	if a.rows <= a.cols {
		gram = MulT(a, a) // a aᵀ, rows×rows
		n = a.rows
	} else {
		gram = Mul(a.T(), a) // aᵀ a, cols×cols
		n = a.cols
	}
	vals, _ := SymEigen(gram, false)
	out := make([]float64, n)
	for i, v := range vals {
		if v < 0 {
			v = 0 // clamp tiny negative eigenvalues from roundoff
		}
		out[i] = math.Sqrt(v)
	}
	return out
}

// EpsRank returns the numerical ε-rank of a, following Definition 3 of the
// paper approximated via the spectrum: the smallest k such that the best
// rank-k approximation (truncated SVD) has max-norm error ≤ ε is bounded by
// the smallest k with σ_{k+1} ≤ ε; we report that spectral surrogate, which
// is the quantity plotted in the paper's low-rankness discussion.
func EpsRank(a *Dense, eps float64) int {
	sv := SingularValues(a)
	for k, s := range sv {
		if s <= eps {
			return k
		}
	}
	return len(sv)
}
