// Package mat provides the dense linear-algebra substrate used throughout
// the repository: matrices, vectors, factorizations (Cholesky), a symmetric
// Jacobi eigensolver, and singular-value computation. It is deliberately
// small and allocation-conscious; all experiments in the paper operate on
// matrices with at most a few thousand rows, so a straightforward dense
// implementation is both sufficient and easy to audit.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zero-initialized rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseData wraps data (length must be rows*cols) without copying.
func NewDenseData(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// Dims returns the number of rows and columns.
func (m *Dense) Dims() (rows, cols int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Data returns the backing slice (row-major).
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Scale multiplies every element by a, in place.
func (m *Dense) Scale(a float64) {
	for i := range m.data {
		m.data[i] *= a
	}
}

// AddMat adds b to m element-wise, in place. It panics on shape mismatch.
func (m *Dense) AddMat(b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: add shape mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	for i := range m.data {
		m.data[i] += b.data[i]
	}
}

// SubMat subtracts b from m element-wise, in place. It panics on shape mismatch.
func (m *Dense) SubMat(b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: sub shape mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	for i := range m.data {
		m.data[i] -= b.data[i]
	}
}

// Mul returns the matrix product a*b.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: mul shape mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulT returns a * bᵀ without materializing the transpose.
func MulT(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: mulT shape mismatch %dx%d * (%dx%d)ᵀ", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.rows)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		for j := 0; j < b.rows; j++ {
			brow := b.data[j*b.cols : (j+1)*b.cols]
			out.data[i*out.cols+j] = Dot(arow, brow)
		}
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxNorm returns the maximum absolute entry of m (the ‖·‖max norm used in
// the ε-rank definition, Definition 3 of the paper).
func (m *Dense) MaxNorm() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// ColSumNorm returns the maximum absolute column sum (the induced 1-norm
// used in Definition 5 of the paper).
func (m *Dense) ColSumNorm() float64 {
	sums := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			sums[j] += math.Abs(v)
		}
	}
	var mx float64
	for _, s := range sums {
		if s > mx {
			mx = s
		}
	}
	return mx
}

// Equal reports whether a and b have the same shape and entries within tol.
func Equal(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with a = L Lᵀ.
// a must be symmetric positive definite; only the lower triangle is read.
// CholeskyInto is the allocation-free variant.
func Cholesky(a *Dense) (*Dense, error) {
	l := NewDense(a.rows, a.cols)
	if err := CholeskyInto(l, a); err != nil {
		return nil, err
	}
	return l, nil
}

// CholeskySolve solves a x = b given the Cholesky factor l of a,
// overwriting and returning a new solution vector. CholeskySolveInto is the
// allocation-free variant.
func CholeskySolve(l *Dense, b []float64) []float64 {
	n := l.rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: cholesky solve dimension %d != %d", len(b), n))
	}
	x := make([]float64, n)
	y := make([]float64, n)
	CholeskySolveInto(l, b, x, y)
	return x
}

// SolveSPD solves a x = b for symmetric positive definite a.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return CholeskySolve(l, b), nil
}

// RidgeSolve solves (AᵀA + λI) x = Aᵀ b for the rows of A given as a slice
// of feature vectors. RidgeSolveInto is the allocation-free variant used on
// the ALS hot path.
func RidgeSolve(features [][]float64, targets []float64, lambda float64) ([]float64, error) {
	if len(features) == 0 {
		return nil, ErrRidgeNoObservations
	}
	dst := make([]float64, len(features[0]))
	if err := RidgeSolveInto(features, targets, lambda, dst, NewRidgeScratch(len(dst))); err != nil {
		return nil, err
	}
	return dst, nil
}
