package mat

import (
	"errors"
	"fmt"
	"math"
)

// This file holds the allocation-free kernel variants behind Cholesky,
// CholeskySolve, and RidgeSolve. The ALS matrix-completion solver calls a
// small ridge solve once per factor row per sweep — hundreds of thousands of
// times per completion — so these kernels accumulate the Gram matrix in
// place, factor in place, and substitute in place, with slice-based inner
// loops instead of bounds-checked At/Set. The allocating wrappers in
// dense.go delegate here; both produce bit-identical results (the summation
// order is unchanged).

// CholeskyInto computes the lower-triangular factor L with a = L Lᵀ into l,
// which must be a square matrix of a's shape (its prior contents are
// overwritten, including the strict upper triangle, which is zeroed). Only
// a's lower triangle is read. It returns ErrNotPositiveDefinite when a is
// not (numerically) symmetric positive definite.
func CholeskyInto(l, a *Dense) error {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: cholesky of non-square %dx%d", a.rows, a.cols))
	}
	if l.rows != a.rows || l.cols != a.cols {
		panic(fmt.Sprintf("mat: cholesky destination %dx%d for %dx%d input", l.rows, l.cols, a.rows, a.cols))
	}
	n := a.rows
	ld := l.data
	for i := range ld {
		ld[i] = 0
	}
	for j := 0; j < n; j++ {
		lj := ld[j*n : j*n+n]
		d := a.data[j*n+j]
		for k := 0; k < j; k++ {
			d -= lj[k] * lj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		lj[j] = ljj
		for i := j + 1; i < n; i++ {
			li := ld[i*n : i*n+n]
			s := a.data[i*n+j]
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			li[j] = s / ljj
		}
	}
	return nil
}

// CholeskySolveInto solves a x = b given the Cholesky factor l of a,
// writing the solution into x and using y as forward-substitution scratch.
// b, x, and y must all have length n; x may alias b, y must not alias
// either.
func CholeskySolveInto(l *Dense, b, x, y []float64) {
	n := l.rows
	if len(b) != n || len(x) != n || len(y) != n {
		panic(fmt.Sprintf("mat: cholesky solve dimensions %d/%d/%d != %d", len(b), len(x), len(y), n))
	}
	ld := l.data
	// Forward substitution: L y = b.
	for i := 0; i < n; i++ {
		li := ld[i*n : i*n+n]
		s := b[i]
		for k := 0; k < i; k++ {
			s -= li[k] * y[k]
		}
		y[i] = s / li[i]
	}
	// Back substitution: Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= ld[k*n+i] * x[k]
		}
		x[i] = s / ld[i*n+i]
	}
}

// RidgeScratch holds the working storage of RidgeSolveInto so a caller
// solving many same-rank ridge systems (one per factor row per ALS sweep)
// allocates once per worker instead of once per solve. The zero value is
// usable; buffers grow on demand and are reused across ranks.
type RidgeScratch struct {
	gram *Dense
	chol *Dense
	rhs  []float64
	y    []float64
}

// NewRidgeScratch returns scratch pre-sized for rank-r solves.
func NewRidgeScratch(r int) *RidgeScratch {
	s := &RidgeScratch{}
	s.reset(r)
	return s
}

// reset sizes the buffers for rank r and zeroes the accumulators.
func (s *RidgeScratch) reset(r int) {
	if s.gram == nil || s.gram.rows < r {
		s.gram = NewDense(r, r)
		s.chol = NewDense(r, r)
		s.rhs = make([]float64, r)
		s.y = make([]float64, r)
		return
	}
	if s.gram.rows > r {
		// Reshape the existing backing arrays down to r×r so row strides
		// match the smaller rank.
		s.gram = NewDenseData(r, r, s.gram.data[:r*r])
		s.chol = NewDenseData(r, r, s.chol.data[:r*r])
		s.rhs = s.rhs[:r]
		s.y = s.y[:r]
	}
	for i := range s.gram.data {
		s.gram.data[i] = 0
	}
	for i := range s.rhs {
		s.rhs[i] = 0
	}
}

// ErrRidgeNoObservations is returned by the ridge solvers when called with
// an empty system.
var ErrRidgeNoObservations = errors.New("mat: ridge with no observations")

// RidgeSolveInto solves (AᵀA + λI) x = Aᵀ b into dst (length must equal the
// feature dimension) without allocating: the Gram matrix, Cholesky factor,
// and substitution buffers live in s. It is the allocation-free core of
// RidgeSolve and the workhorse of the parallel ALS solver, where each
// worker owns one scratch.
func RidgeSolveInto(features [][]float64, targets []float64, lambda float64, dst []float64, s *RidgeScratch) error {
	if len(features) != len(targets) {
		panic(fmt.Sprintf("mat: ridge rows %d != targets %d", len(features), len(targets)))
	}
	if len(features) == 0 {
		return ErrRidgeNoObservations
	}
	r := len(features[0])
	if len(dst) != r {
		panic(fmt.Sprintf("mat: ridge destination %d != rank %d", len(dst), r))
	}
	s.reset(r)
	gd := s.gram.data
	rhs := s.rhs
	for row, f := range features {
		if len(f) != r {
			panic("mat: ragged feature rows")
		}
		t := targets[row]
		for i := 0; i < r; i++ {
			fi := f[i]
			rhs[i] += fi * t
			gi := gd[i*r : i*r+r]
			for j := 0; j < r; j++ {
				gi[j] += fi * f[j]
			}
		}
	}
	for i := 0; i < r; i++ {
		gd[i*r+i] += lambda
	}
	if err := CholeskyInto(s.chol, s.gram); err != nil {
		return err
	}
	CholeskySolveInto(s.chol, rhs, dst, s.y)
	return nil
}
