package mat

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	a := NewDense(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, 1)
	a.Set(2, 2, 2)
	vals, _ := SymEigen(a, false)
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-10 {
			t.Fatalf("eigenvalues = %v, want %v", vals, want)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewDenseData(2, 2, []float64{2, 1, 1, 2})
	vals, vecs := SymEigen(a, true)
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues = %v, want [3 1]", vals)
	}
	// Check A v = λ v for each eigenvector column.
	for j := 0; j < 2; j++ {
		for i := 0; i < 2; i++ {
			av := a.At(i, 0)*vecs.At(0, j) + a.At(i, 1)*vecs.At(1, j)
			if math.Abs(av-vals[j]*vecs.At(i, j)) > 1e-9 {
				t.Fatalf("A v != λ v for eigenpair %d", j)
			}
		}
	}
}

func TestSymEigenTraceAndOrthogonality(t *testing.T) {
	// Property: eigenvalues sum to the trace; eigenvectors are orthonormal.
	f := func(seed int64) bool {
		r := newTestRand(seed)
		n := 2 + int(abs64(seed))%5
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := r()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		var trace float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		vals, vecs := SymEigen(a, true)
		var sum float64
		for _, v := range vals {
			sum += v
		}
		if math.Abs(sum-trace) > 1e-8 {
			return false
		}
		// Orthonormal columns: vecsᵀ vecs = I.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var d float64
				for k := 0; k < n; k++ {
					d += vecs.At(k, i) * vecs.At(k, j)
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(d-want) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSingularValuesKnown(t *testing.T) {
	// diag(3, 2) stacked with zeros has singular values 3, 2.
	a := NewDenseData(3, 2, []float64{3, 0, 0, 2, 0, 0})
	sv := SingularValues(a)
	if len(sv) != 2 || math.Abs(sv[0]-3) > 1e-9 || math.Abs(sv[1]-2) > 1e-9 {
		t.Fatalf("singular values = %v, want [3 2]", sv)
	}
}

func TestSingularValuesRankOne(t *testing.T) {
	// Outer product u vᵀ has one nonzero singular value ‖u‖‖v‖.
	u := []float64{1, 2, 2}
	v := []float64{3, 4}
	a := NewDense(3, 2)
	for i := range u {
		for j := range v {
			a.Set(i, j, u[i]*v[j])
		}
	}
	sv := SingularValues(a)
	want := Norm2(u) * Norm2(v) // 3 * 5 = 15
	if math.Abs(sv[0]-want) > 1e-9 {
		t.Fatalf("σ1 = %v, want %v", sv[0], want)
	}
	if sv[1] > 1e-9 {
		t.Fatalf("σ2 = %v, want 0", sv[1])
	}
}

func TestSingularValuesMatchFrobenius(t *testing.T) {
	// Property: Σσᵢ² = ‖A‖F² and σ values are non-negative, descending.
	f := func(seed int64) bool {
		r := newTestRand(seed)
		rows := 2 + int(abs64(seed))%4
		cols := 2 + int(abs64(seed/7))%6
		a := NewDense(rows, cols)
		for i := range a.data {
			a.data[i] = r()
		}
		sv := SingularValues(a)
		if !sort.SliceIsSorted(sv, func(i, j int) bool { return sv[i] > sv[j] }) {
			return false
		}
		var sum float64
		for _, s := range sv {
			if s < 0 {
				return false
			}
			sum += s * s
		}
		fn := a.FrobeniusNorm()
		return math.Abs(sum-fn*fn) < 1e-8*(1+fn*fn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEpsRank(t *testing.T) {
	// Rank-1 matrix: eps-rank 1 for eps below σ1, 0 at eps ≥ σ1.
	a := NewDense(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, 1) // σ1 = 3
		}
	}
	if got := EpsRank(a, 0.5); got != 1 {
		t.Fatalf("EpsRank(0.5) = %d, want 1", got)
	}
	if got := EpsRank(a, 4); got != 0 {
		t.Fatalf("EpsRank(4) = %d, want 0", got)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(3)[%d][%d] = %v", i, j, id.At(i, j))
			}
		}
	}
}
