package dataset

import (
	"testing"
	"testing/quick"

	"comfedsv/internal/rng"
)

func labeled(n, classes int) *Dataset {
	d := &Dataset{NumClasses: classes}
	for i := 0; i < n; i++ {
		d.X = append(d.X, []float64{float64(i)})
		d.Y = append(d.Y, i%classes)
	}
	return d
}

// coverCheck verifies parts are disjoint and cover d exactly, using the
// unique feature values as identifiers.
func coverCheck(t *testing.T, d *Dataset, parts []*Dataset) {
	t.Helper()
	seen := map[float64]bool{}
	total := 0
	for _, p := range parts {
		total += p.Len()
		for _, x := range p.X {
			if seen[x[0]] {
				t.Fatalf("example %v assigned twice", x[0])
			}
			seen[x[0]] = true
		}
	}
	if total != d.Len() {
		t.Fatalf("partition covers %d of %d examples", total, d.Len())
	}
}

func TestPartitionIIDCovers(t *testing.T) {
	d := labeled(103, 10)
	parts := PartitionIID(d, 7, rng.New(1))
	if len(parts) != 7 {
		t.Fatalf("got %d parts, want 7", len(parts))
	}
	coverCheck(t, d, parts)
	// Sizes are balanced within 1.
	for _, p := range parts {
		if p.Len() < 103/7 || p.Len() > 103/7+1 {
			t.Fatalf("unbalanced IID part of size %d", p.Len())
		}
	}
}

func TestPartitionIIDProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := rng.New(seed)
		n := 20 + int(seed%50+50)%50
		clients := 2 + int(seed%5+5)%5
		d := labeled(n, 10)
		parts := PartitionIID(d, clients, g)
		total := 0
		for _, p := range parts {
			total += p.Len()
		}
		return total == n && len(parts) == clients
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionNonIIDCoversAndSkews(t *testing.T) {
	d := labeled(400, 10)
	parts := PartitionNonIID(d, 10, rng.New(2))
	coverCheck(t, d, parts)
	// Two-shard scheme: most clients should see few classes (≤ 4 allowing
	// shard-boundary spill), never all 10.
	for i, p := range parts {
		classes := 0
		for _, c := range p.ClassCounts() {
			if c > 0 {
				classes++
			}
		}
		if classes > 4 {
			t.Fatalf("client %d sees %d classes; non-IID shards should be label-skewed", i, classes)
		}
	}
}

func TestPartitionNonIIDTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PartitionNonIID(labeled(3, 2), 5, rng.New(1))
}

func TestPartitionBadClientCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PartitionIID(labeled(10, 2), 0, rng.New(1))
}

func TestTrainTestSplit(t *testing.T) {
	d := labeled(100, 10)
	train, test := TrainTestSplit(d, 0.2, rng.New(3))
	if test.Len() != 20 || train.Len() != 80 {
		t.Fatalf("split sizes %d/%d, want 80/20", train.Len(), test.Len())
	}
	coverCheck(t, d, []*Dataset{train, test})
}

func TestTrainTestSplitBadFractionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TrainTestSplit(labeled(10, 2), 1.0, rng.New(1))
}

func TestAddFeatureNoiseCorruptsRequestedFraction(t *testing.T) {
	d := labeled(100, 10)
	orig := d.Clone()
	rows := AddFeatureNoise(d, 0.3, 1.0, rng.New(4))
	if len(rows) != 30 {
		t.Fatalf("corrupted %d rows, want 30", len(rows))
	}
	changed := 0
	for i := range d.X {
		if d.X[i][0] != orig.X[i][0] {
			changed++
		}
	}
	if changed != 30 {
		t.Fatalf("%d rows changed, want 30", changed)
	}
}

func TestAddFeatureNoiseCopyOnWrite(t *testing.T) {
	d := labeled(10, 2)
	shared := d.Subset([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}) // shares rows
	AddFeatureNoise(shared, 1.0, 1.0, rng.New(5))
	for i := range d.X {
		if d.X[i][0] != float64(i) {
			t.Fatal("noise on a subset must not mutate the parent's rows")
		}
	}
}

func TestFlipLabelsAlwaysChanges(t *testing.T) {
	d := labeled(100, 10)
	orig := append([]int(nil), d.Y...)
	rows := FlipLabels(d, 0.5, rng.New(6))
	if len(rows) != 50 {
		t.Fatalf("flipped %d rows, want 50", len(rows))
	}
	for _, r := range rows {
		if d.Y[r] == orig[r] {
			t.Fatalf("row %d label unchanged after flip", r)
		}
		if d.Y[r] < 0 || d.Y[r] >= d.NumClasses {
			t.Fatalf("row %d flipped to invalid label %d", r, d.Y[r])
		}
	}
}

func TestFlipLabelsTwoClassesPanicsBelow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d := labeled(10, 2)
	d.NumClasses = 1
	d.Y = make([]int, 10)
	FlipLabels(d, 0.5, rng.New(1))
}

func TestBadFractionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AddFeatureNoise(labeled(10, 2), 1.5, 1, rng.New(1))
}

func TestStandardize(t *testing.T) {
	a := &Dataset{X: [][]float64{{10, 0}, {20, 0}}, Y: []int{0, 1}, NumClasses: 2}
	b := &Dataset{X: [][]float64{{30, 0}, {40, 0}}, Y: []int{0, 1}, NumClasses: 2}
	Standardize(a, b)
	// Pooled first coordinate {10,20,30,40}: mean 25, sd sqrt(125).
	var mean, sq float64
	for _, d := range []*Dataset{a, b} {
		for _, x := range d.X {
			mean += x[0]
			sq += x[0] * x[0]
		}
	}
	mean /= 4
	if mean > 1e-12 || mean < -1e-12 {
		t.Fatalf("standardized mean %v, want 0", mean)
	}
	if v := sq/4 - mean*mean; v < 0.99 || v > 1.01 {
		t.Fatalf("standardized variance %v, want 1", v)
	}
	// Constant coordinate must survive (centered, not divided by 0).
	for _, d := range []*Dataset{a, b} {
		for _, x := range d.X {
			if x[1] != 0 {
				t.Fatalf("constant coordinate became %v", x[1])
			}
		}
	}
}

func TestStandardizeEmptyNoop(t *testing.T) {
	Standardize() // must not panic
	d := &Dataset{NumClasses: 2}
	Standardize(d)
}
