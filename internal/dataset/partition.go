package dataset

import (
	"fmt"
	"sort"

	"comfedsv/internal/rng"
)

// PartitionIID splits d uniformly at random into numClients local datasets
// of (nearly) equal size. Every example is assigned to exactly one client.
func PartitionIID(d *Dataset, numClients int, g *rng.RNG) []*Dataset {
	if numClients <= 0 {
		panic(fmt.Sprintf("dataset: non-positive client count %d", numClients))
	}
	idx := g.Perm(d.Len())
	return splitIndices(d, idx, numClients)
}

// PartitionNonIID implements the two-class shard scheme of the original
// FedAvg paper (McMahan et al. 2017), which the paper adopts for its
// non-IID setting: examples are sorted by label, cut into 2·numClients
// shards, and each client receives two shards — so most clients see only
// (about) two classes.
func PartitionNonIID(d *Dataset, numClients int, g *rng.RNG) []*Dataset {
	if numClients <= 0 {
		panic(fmt.Sprintf("dataset: non-positive client count %d", numClients))
	}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	// Stable sort by label so shards are label-homogeneous.
	sort.SliceStable(idx, func(a, b int) bool { return d.Y[idx[a]] < d.Y[idx[b]] })

	numShards := 2 * numClients
	shardSize := d.Len() / numShards
	if shardSize == 0 {
		panic(fmt.Sprintf("dataset: %d examples cannot fill %d shards", d.Len(), numShards))
	}
	shardOrder := g.Perm(numShards)
	out := make([]*Dataset, numClients)
	for c := 0; c < numClients; c++ {
		var rows []int
		for s := 0; s < 2; s++ {
			shard := shardOrder[2*c+s]
			lo := shard * shardSize
			hi := lo + shardSize
			if shard == numShards-1 {
				hi = d.Len() // last shard absorbs the remainder
			}
			rows = append(rows, idx[lo:hi]...)
		}
		out[c] = d.Subset(rows)
	}
	return out
}

func splitIndices(d *Dataset, idx []int, numClients int) []*Dataset {
	out := make([]*Dataset, numClients)
	n := len(idx)
	base := n / numClients
	rem := n % numClients
	pos := 0
	for c := 0; c < numClients; c++ {
		size := base
		if c < rem {
			size++
		}
		out[c] = d.Subset(idx[pos : pos+size])
		pos += size
	}
	return out
}

// TrainTestSplit shuffles d and splits off testFraction of it as a test set.
func TrainTestSplit(d *Dataset, testFraction float64, g *rng.RNG) (train, test *Dataset) {
	if testFraction < 0 || testFraction >= 1 {
		panic(fmt.Sprintf("dataset: test fraction %v out of [0,1)", testFraction))
	}
	idx := g.Perm(d.Len())
	nTest := int(float64(d.Len()) * testFraction)
	return d.Subset(idx[nTest:]), d.Subset(idx[:nTest])
}
