// Package dataset provides the data substrate for the federated-learning
// experiments: the synthetic(α,β) generator of Li et al. (2018) used by the
// paper, synthetic image datasets standing in for MNIST / Fashion-MNIST /
// CIFAR-10 (the module is offline, see DESIGN.md §2), IID and non-IID
// partitioners, and the data/label corruption used by the data-quality
// experiments (Figs. 6 and 7).
package dataset

import (
	"fmt"

	"comfedsv/internal/rng"
)

// Dataset is a labeled classification dataset with dense features.
type Dataset struct {
	// X[i] is the feature vector of example i.
	X [][]float64
	// Y[i] is the class label of example i, in [0, NumClasses).
	Y []int
	// NumClasses is the number of distinct classes.
	NumClasses int
	// Shape optionally records an image geometry (height, width, channels)
	// for convolutional models; Shape == nil means flat features.
	Shape *ImageShape
}

// ImageShape records the geometry of image-like features.
type ImageShape struct {
	Height, Width, Channels int
}

// Size returns the number of pixels per channel-plane times channels.
func (s ImageShape) Size() int { return s.Height * s.Width * s.Channels }

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.X) }

// Dim returns the feature dimension (0 for an empty dataset).
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Validate checks internal consistency and returns a descriptive error on
// the first violation found.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("dataset: %d feature rows but %d labels", len(d.X), len(d.Y))
	}
	if d.NumClasses <= 0 {
		return fmt.Errorf("dataset: non-positive class count %d", d.NumClasses)
	}
	dim := d.Dim()
	for i, x := range d.X {
		if len(x) != dim {
			return fmt.Errorf("dataset: row %d has dim %d, want %d", i, len(x), dim)
		}
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.NumClasses {
			return fmt.Errorf("dataset: label %d at row %d out of range [0,%d)", y, i, d.NumClasses)
		}
	}
	if d.Shape != nil && d.Shape.Size() != dim {
		return fmt.Errorf("dataset: shape %+v size %d != dim %d", *d.Shape, d.Shape.Size(), dim)
	}
	return nil
}

// Clone returns a deep copy of d.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		X:          make([][]float64, len(d.X)),
		Y:          make([]int, len(d.Y)),
		NumClasses: d.NumClasses,
	}
	for i, x := range d.X {
		out.X[i] = append([]float64(nil), x...)
	}
	copy(out.Y, d.Y)
	if d.Shape != nil {
		s := *d.Shape
		out.Shape = &s
	}
	return out
}

// Subset returns a dataset view containing the rows in idx. Feature vectors
// are shared, not copied; corrupt a Clone if you need isolation.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		X:          make([][]float64, len(idx)),
		Y:          make([]int, len(idx)),
		NumClasses: d.NumClasses,
		Shape:      d.Shape,
	}
	for i, j := range idx {
		out.X[i] = d.X[j]
		out.Y[i] = d.Y[j]
	}
	return out
}

// Concat returns a new dataset holding all examples of the inputs in order.
// All inputs must agree on NumClasses and dimension.
func Concat(parts ...*Dataset) *Dataset {
	if len(parts) == 0 {
		panic("dataset: concat of nothing")
	}
	out := &Dataset{NumClasses: parts[0].NumClasses, Shape: parts[0].Shape}
	for _, p := range parts {
		if p.NumClasses != out.NumClasses {
			panic("dataset: concat class-count mismatch")
		}
		out.X = append(out.X, p.X...)
		out.Y = append(out.Y, p.Y...)
	}
	return out
}

// ClassCounts returns a histogram of labels.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses)
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}

// Shuffle permutes the examples in place using g.
func (d *Dataset) Shuffle(g *rng.RNG) {
	for i := d.Len() - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	}
}
