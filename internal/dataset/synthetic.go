package dataset

import (
	"math"

	"comfedsv/internal/mat"
	"comfedsv/internal/rng"
)

// SyntheticConfig parameterizes the synthetic(α,β) generator of Li et al.
// ("Federated Optimization in Heterogeneous Networks", 2018), the setup the
// paper uses for its synthetic experiments (Section VII-A). α controls how
// much the true local models differ across clients; β controls how much the
// local data distributions differ. α = β = 0 is the IID setting, α = β = 1
// the non-IID setting used in the paper.
type SyntheticConfig struct {
	Alpha      float64 // model heterogeneity
	Beta       float64 // data heterogeneity
	Dim        int     // feature dimension (paper uses 60)
	NumClasses int     // number of classes (paper uses 10)
	Seed       int64
}

// DefaultSyntheticConfig mirrors the dimensions used by Li et al.
func DefaultSyntheticConfig(alpha, beta float64, seed int64) SyntheticConfig {
	return SyntheticConfig{Alpha: alpha, Beta: beta, Dim: 60, NumClasses: 10, Seed: seed}
}

// GenerateSynthetic produces one local dataset per entry of sizes, following
// the synthetic(α,β) recipe:
//
//	for client k: u_k ~ N(0, α), B_k ~ N(0, β)
//	  model  W_k ~ N(u_k, 1)^{C×d}, b_k ~ N(u_k, 1)^C
//	  means  v_k ~ N(B_k, 1)^d, covariance Σ = diag(j^{-1.2})
//	  x ~ N(v_k, Σ), y = argmax softmax(W_k x + b_k)
func GenerateSynthetic(cfg SyntheticConfig, sizes []int) []*Dataset {
	g := rng.New(cfg.Seed)
	out := make([]*Dataset, len(sizes))
	// Diagonal covariance Σ_jj = j^{-1.2}, j starting at 1.
	sigma := make([]float64, cfg.Dim)
	for j := range sigma {
		sigma[j] = math.Pow(float64(j+1), -1.2)
	}
	// In the IID setting (α = β = 0) all clients share one label model and
	// one feature distribution, as in Li et al.'s synthetic_iid.
	iid := cfg.Alpha == 0 && cfg.Beta == 0
	shared := g.Split(-1)
	var sharedW [][]float64
	var sharedBias, sharedV []float64
	if iid {
		sharedW = make([][]float64, cfg.NumClasses)
		for c := range sharedW {
			sharedW[c] = shared.NormalVec(cfg.Dim, 0, 1)
		}
		sharedBias = shared.NormalVec(cfg.NumClasses, 0, 1)
		sharedV = shared.NormalVec(cfg.Dim, 0, 1)
	}
	for k, n := range sizes {
		ck := g.Split(int64(k))
		w, bias, vk := sharedW, sharedBias, sharedV
		if !iid {
			uk := ck.Normal(0, math.Sqrt(cfg.Alpha))
			bk := ck.Normal(0, math.Sqrt(cfg.Beta))
			w = make([][]float64, cfg.NumClasses)
			for c := range w {
				w[c] = ck.NormalVec(cfg.Dim, uk, 1)
			}
			bias = ck.NormalVec(cfg.NumClasses, uk, 1)
			vk = ck.NormalVec(cfg.Dim, bk, 1)
		}

		d := &Dataset{
			X:          make([][]float64, n),
			Y:          make([]int, n),
			NumClasses: cfg.NumClasses,
		}
		logits := make([]float64, cfg.NumClasses)
		for i := 0; i < n; i++ {
			x := make([]float64, cfg.Dim)
			for j := range x {
				x[j] = ck.Normal(vk[j], math.Sqrt(sigma[j]))
			}
			for c := range logits {
				logits[c] = mat.Dot(w[c], x) + bias[c]
			}
			d.X[i] = x
			d.Y[i] = mat.ArgMax(logits)
		}
		out[k] = d
	}
	return out
}

// ImageConfig parameterizes the synthetic image generators that stand in
// for the real benchmark datasets (the module is offline; see DESIGN.md §2).
// Each class has a fixed random prototype image; samples are the prototype
// plus Gaussian pixel noise. Separation controls how far apart prototypes
// are relative to the noise, i.e. how learnable the task is.
type ImageConfig struct {
	Shape      ImageShape
	NumClasses int
	Separation float64 // prototype scale relative to unit pixel noise
	Noise      float64 // per-pixel sample noise stddev
	Seed       int64
}

// MNISTLikeConfig is the stand-in for MNIST: 10 classes of small grayscale
// images with high class separation (MNIST is an easy task: the paper's MLP
// reaches 98% accuracy).
func MNISTLikeConfig(seed int64) ImageConfig {
	return ImageConfig{
		Shape:      ImageShape{Height: 8, Width: 8, Channels: 1},
		NumClasses: 10,
		Separation: 2.0,
		Noise:      0.7,
		Seed:       seed,
	}
}

// FMNISTLikeConfig is the stand-in for Fashion-MNIST: same geometry as
// MNIST but lower class separation (Fashion-MNIST is harder than MNIST).
func FMNISTLikeConfig(seed int64) ImageConfig {
	return ImageConfig{
		Shape:      ImageShape{Height: 8, Width: 8, Channels: 1},
		NumClasses: 10,
		Separation: 1.4,
		Noise:      0.8,
		Seed:       seed,
	}
}

// CIFARLikeConfig is the stand-in for CIFAR-10: 3-channel images with low
// separation (CIFAR-10 is the hardest of the paper's benchmarks).
func CIFARLikeConfig(seed int64) ImageConfig {
	return ImageConfig{
		Shape:      ImageShape{Height: 8, Width: 8, Channels: 3},
		NumClasses: 10,
		Separation: 1.0,
		Noise:      1.0,
		Seed:       seed,
	}
}

// GenerateImages produces n examples from the class-conditional Gaussian
// image model described in ImageConfig. Labels are balanced round-robin so
// every class is represented.
func GenerateImages(cfg ImageConfig, n int) *Dataset {
	g := rng.New(cfg.Seed)
	dim := cfg.Shape.Size()
	prototypes := make([][]float64, cfg.NumClasses)
	for c := range prototypes {
		prototypes[c] = g.NormalVec(dim, 0, cfg.Separation)
	}
	shape := cfg.Shape
	d := &Dataset{
		X:          make([][]float64, n),
		Y:          make([]int, n),
		NumClasses: cfg.NumClasses,
		Shape:      &shape,
	}
	for i := 0; i < n; i++ {
		c := i % cfg.NumClasses
		x := make([]float64, dim)
		proto := prototypes[c]
		for j := range x {
			x[j] = proto[j] + g.Normal(0, cfg.Noise)
		}
		d.X[i] = x
		d.Y[i] = c
	}
	d.Shuffle(g)
	return d
}
