package dataset

import "math"

// Standardize z-scores every feature across the union of the given
// datasets: each coordinate is shifted to zero mean and scaled to unit
// variance (constant coordinates are left centered). All datasets are
// rewritten in place with fresh feature slices.
//
// Standardization is the usual preprocessing for the paper's logistic-
// regression workloads; it also matters for the data-quality experiments,
// where additive feature noise must perturb the *informative* part of the
// features rather than being dwarfed by a large shared mean.
func Standardize(sets ...*Dataset) {
	var dim, total int
	for _, d := range sets {
		if d.Len() == 0 {
			continue
		}
		dim = d.Dim()
		total += d.Len()
	}
	if total == 0 {
		return
	}
	mean := make([]float64, dim)
	for _, d := range sets {
		for _, x := range d.X {
			for j, v := range x {
				mean[j] += v
			}
		}
	}
	for j := range mean {
		mean[j] /= float64(total)
	}
	variance := make([]float64, dim)
	for _, d := range sets {
		for _, x := range d.X {
			for j, v := range x {
				dv := v - mean[j]
				variance[j] += dv * dv
			}
		}
	}
	scale := make([]float64, dim)
	for j := range scale {
		sd := math.Sqrt(variance[j] / float64(total))
		if sd > 1e-12 {
			scale[j] = 1 / sd
		} else {
			scale[j] = 1
		}
	}
	for _, d := range sets {
		for i, x := range d.X {
			nx := make([]float64, dim)
			for j, v := range x {
				nx[j] = (v - mean[j]) * scale[j]
			}
			d.X[i] = nx
		}
	}
}
