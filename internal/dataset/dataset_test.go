package dataset

import (
	"testing"

	"comfedsv/internal/rng"
)

func tiny() *Dataset {
	return &Dataset{
		X:          [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}},
		Y:          []int{0, 1, 0, 1},
		NumClasses: 2,
	}
}

func TestValidateOK(t *testing.T) {
	if err := tiny().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Dataset)
	}{
		{"length mismatch", func(d *Dataset) { d.Y = d.Y[:2] }},
		{"bad class count", func(d *Dataset) { d.NumClasses = 0 }},
		{"ragged rows", func(d *Dataset) { d.X[1] = []float64{1} }},
		{"label out of range", func(d *Dataset) { d.Y[0] = 5 }},
		{"negative label", func(d *Dataset) { d.Y[0] = -1 }},
		{"shape mismatch", func(d *Dataset) { d.Shape = &ImageShape{Height: 3, Width: 3, Channels: 1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := tiny()
			tc.mut(d)
			if err := d.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := tiny()
	c := d.Clone()
	c.X[0][0] = 99
	c.Y[0] = 1
	if d.X[0][0] == 99 || d.Y[0] == 1 {
		t.Fatal("Clone must deep-copy features and labels")
	}
}

func TestSubset(t *testing.T) {
	d := tiny()
	s := d.Subset([]int{2, 0})
	if s.Len() != 2 || s.X[0][0] != 5 || s.X[1][0] != 1 {
		t.Fatalf("Subset rows wrong: %+v", s.X)
	}
	if s.Y[0] != 0 || s.Y[1] != 0 {
		t.Fatalf("Subset labels wrong: %v", s.Y)
	}
}

func TestConcat(t *testing.T) {
	a, b := tiny(), tiny()
	c := Concat(a, b)
	if c.Len() != 8 {
		t.Fatalf("Concat length %d, want 8", c.Len())
	}
	if c.NumClasses != 2 {
		t.Fatalf("Concat classes %d, want 2", c.NumClasses)
	}
}

func TestConcatClassMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := tiny()
	b.NumClasses = 3
	Concat(tiny(), b)
}

func TestClassCounts(t *testing.T) {
	counts := tiny().ClassCounts()
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("ClassCounts = %v, want [2 2]", counts)
	}
}

func TestShufflePreservesPairs(t *testing.T) {
	d := &Dataset{NumClasses: 10}
	for i := 0; i < 50; i++ {
		d.X = append(d.X, []float64{float64(i)})
		d.Y = append(d.Y, i%10)
	}
	d.Shuffle(rng.New(1))
	for i, x := range d.X {
		if int(x[0])%10 != d.Y[i] {
			t.Fatal("Shuffle must keep feature-label pairs together")
		}
	}
}

func TestGenerateSyntheticShapes(t *testing.T) {
	cfg := DefaultSyntheticConfig(1, 1, 3)
	sets := GenerateSynthetic(cfg, []int{10, 20, 0})
	if len(sets) != 3 {
		t.Fatalf("got %d datasets, want 3", len(sets))
	}
	if sets[0].Len() != 10 || sets[1].Len() != 20 || sets[2].Len() != 0 {
		t.Fatal("dataset sizes do not match request")
	}
	for _, d := range sets[:2] {
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		if d.Dim() != cfg.Dim {
			t.Fatalf("dim %d, want %d", d.Dim(), cfg.Dim)
		}
	}
}

func TestGenerateSyntheticDeterministic(t *testing.T) {
	cfg := DefaultSyntheticConfig(1, 1, 7)
	a := GenerateSynthetic(cfg, []int{5})
	b := GenerateSynthetic(cfg, []int{5})
	for i := range a[0].X {
		if a[0].Y[i] != b[0].Y[i] {
			t.Fatal("generator must be deterministic in the seed")
		}
		for j := range a[0].X[i] {
			if a[0].X[i][j] != b[0].X[i][j] {
				t.Fatal("generator must be deterministic in the seed")
			}
		}
	}
}

func TestGenerateSyntheticIIDShares(t *testing.T) {
	// α=β=0: two clients' label models coincide, so a logistic fit on one
	// should roughly transfer — we verify the cheaper proxy that both
	// clients' class histograms are similar and labels span classes.
	cfg := DefaultSyntheticConfig(0, 0, 5)
	sets := GenerateSynthetic(cfg, []int{300, 300})
	c0, c1 := sets[0].ClassCounts(), sets[1].ClassCounts()
	for c := range c0 {
		diff := c0[c] - c1[c]
		if diff < 0 {
			diff = -diff
		}
		if diff > 100 {
			t.Fatalf("IID clients should have similar class mixes: %v vs %v", c0, c1)
		}
	}
}

func TestGenerateImages(t *testing.T) {
	cfg := MNISTLikeConfig(3)
	d := GenerateImages(cfg, 100)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 100 {
		t.Fatalf("length %d, want 100", d.Len())
	}
	if d.Shape == nil || d.Shape.Size() != d.Dim() {
		t.Fatal("image dataset must carry a consistent shape")
	}
	counts := d.ClassCounts()
	for c, n := range counts {
		if n != 10 {
			t.Fatalf("balanced generator gave %d of class %d, want 10", n, c)
		}
	}
}

func TestImageConfigsDiffer(t *testing.T) {
	m := MNISTLikeConfig(1)
	f := FMNISTLikeConfig(1)
	c := CIFARLikeConfig(1)
	if m.Separation <= f.Separation || f.Separation <= c.Separation {
		t.Fatal("difficulty ordering must be MNIST < FMNIST < CIFAR")
	}
	if c.Shape.Channels != 3 {
		t.Fatal("CIFAR stand-in must have 3 channels")
	}
}
