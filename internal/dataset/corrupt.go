package dataset

import (
	"fmt"

	"comfedsv/internal/rng"
)

// AddFeatureNoise adds N(0, sigma²) noise to the features of a uniformly
// chosen fraction of the examples of d, in place (clone first if the
// original must survive). It returns the indices of corrupted examples.
// This is the corruption used by the noisy-data detection experiment
// (Fig. 6): client i receives fraction 0.05·i.
func AddFeatureNoise(d *Dataset, fraction, sigma float64, g *rng.RNG) []int {
	checkFraction(fraction)
	n := int(fraction * float64(d.Len()))
	rows := g.SampleWithoutReplacement(d.Len(), n)
	for _, i := range rows {
		x := append([]float64(nil), d.X[i]...) // copy-on-write: rows may be shared
		for j := range x {
			x[j] += g.Normal(0, sigma)
		}
		d.X[i] = x
	}
	return rows
}

// FlipLabels replaces the labels of a uniformly chosen fraction of the
// examples with a uniformly random *different* class, in place. It returns
// the indices of flipped examples. This is the corruption used by the
// noisy-label detection experiment (Fig. 7): 10 of 100 clients get 30%
// flipped labels.
func FlipLabels(d *Dataset, fraction float64, g *rng.RNG) []int {
	checkFraction(fraction)
	if d.NumClasses < 2 {
		panic("dataset: cannot flip labels with fewer than two classes")
	}
	n := int(fraction * float64(d.Len()))
	rows := g.SampleWithoutReplacement(d.Len(), n)
	for _, i := range rows {
		old := d.Y[i]
		nu := g.Intn(d.NumClasses - 1)
		if nu >= old {
			nu++ // skip the original class so the flip is always a change
		}
		d.Y[i] = nu
	}
	return rows
}

func checkFraction(f float64) {
	if f < 0 || f > 1 {
		panic(fmt.Sprintf("dataset: fraction %v out of [0,1]", f))
	}
}
