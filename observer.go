package comfedsv

import (
	"context"
	"fmt"

	"comfedsv/internal/shapley"
)

// ShardObservations is the wire form of one observation shard's evaluated
// utility cells — the payload a comfedsv-worker ships back to the
// comfedsvd coordinator, carrying the same content digest the job journal
// records for locally executed shards.
type ShardObservations = shapley.ShardObservations

// ObservedCell is one evaluated utility-matrix entry in wire form.
type ObservedCell = shapley.ObservedCell

// ShardObserver is the worker-side half of distributed observation: a
// Monte-Carlo observation plan rebuilt from a trained run plus the
// coordinator's (budget, seed) lease parameters, able to evaluate any
// permutation slice of the job. Permutation sampling and prefix-column
// registration are pure functions of (trace, budget, seed), so the
// worker's dense column indices — and therefore its observation digests —
// match the coordinator's exactly.
//
// A ShardObserver only observes. It never merges, completes, or extracts;
// those stages stay on the coordinator, which verifies each imported
// shard's digest before merging.
type ShardObserver struct {
	plan *shapley.MonteCarloPlan
}

// NewShardObserver rebuilds the observation plan of a job from its
// trained run and the lease parameters: budget is the job's resolved
// permutation budget and seed its raw Options.Seed (the observer applies
// the same internal derivation the coordinator's Prepare does).
// parallelism bounds the evaluation pool per slice, and may differ from
// the coordinator's without perturbing results. Exact (non-sampled) jobs
// have no permutation structure to lease, so budget must be positive.
func NewShardObserver(ctx context.Context, tr *TrainedRun, budget int, seed int64, parallelism int) (*ShardObserver, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("comfedsv: shard observer requires a positive permutation budget, got %d", budget)
	}
	plan, err := shapley.NewMonteCarloPlan(ctx, tr.eval.NewSession(), shapley.MonteCarloConfig{
		Samples: budget,
		Seed:    seed + 1,
		Workers: parallelism,
	})
	if err != nil {
		return nil, err
	}
	return &ShardObserver{plan: plan}, nil
}

// Budget returns the permutation budget the observer was built with.
func (o *ShardObserver) Budget() int { return o.plan.Budget() }

// ObserveSlice evaluates the prefix cells of the permutation slice
// [lo, hi) and returns them in wire form with their content digest.
// Distinct slices are safe to evaluate concurrently.
func (o *ShardObserver) ObserveSlice(ctx context.Context, lo, hi int) (*ShardObservations, error) {
	return o.plan.ObserveSlice(ctx, lo, hi)
}
