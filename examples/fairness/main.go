// Fairness: reproduce Example 1 of the paper — two clients with identical
// data can receive wildly different FedSV valuations under random client
// selection, while ComFedSV values them nearly equally.
//
// Run with: go run ./examples/fairness
package main

import (
	"fmt"
	"log"

	"comfedsv/internal/experiments"
	"comfedsv/internal/metrics"
)

func main() {
	cfg := experiments.DefaultFairnessConfig(experiments.MNIST)
	cfg.Trials = 20

	fmt.Printf("duplicating client 0's data into client %d; %d trials of T=%d rounds, K=%d selected\n",
		cfg.NumClients-1, cfg.Trials, cfg.Rounds, cfg.ClientsPerRound)

	res, err := experiments.Fairness(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ntrial\td_FedSV\td_ComFedSV   (relative valuation gap between the duplicates, Eq. 7)")
	for i := range res.FedSVDiffs {
		fmt.Printf("%d\t%.3f\t%.3f\n", i, res.FedSVDiffs[i], res.ComFedSVDiffs[i])
	}

	fmt.Printf("\nP(d_FedSV    > 0.5) = %.2f   (the paper reports ≈ 0.65 on real MNIST)\n", res.FedSVExceeds(0.5))
	fmt.Printf("P(d_ComFedSV > 0.5) = %.2f\n", res.ComFedSVExceeds(0.5))

	fedsv := metrics.NewECDF(res.FedSVDiffs)
	com := metrics.NewECDF(res.ComFedSVDiffs)
	fmt.Println("\nempirical CDF (Fig. 5): P(d ≤ t)")
	fmt.Println("t\tFedSV\tComFedSV")
	for _, t := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		fmt.Printf("%.2f\t%.3f\t%.3f\n", t, fedsv.At(t), com.At(t))
	}
}
