// Noisy-label detection at scale: reproduce the Fig. 7 scenario — 10 of
// many clients have a large fraction of flipped labels, and a marketplace
// operator wants to find them from the valuations alone. At this client
// count the exact pipeline is infeasible, so the example exercises the
// Monte-Carlo estimator (Algorithm 1 of the paper).
//
// Run with: go run ./examples/noisylabel
package main

import (
	"fmt"
	"log"

	"comfedsv/internal/experiments"
)

func main() {
	cfg := experiments.DefaultNoisyLabelConfig(experiments.Synthetic)
	// Scaled-down defaults so the example completes in about a minute;
	// raise NumClients to 100 to match the paper's setting exactly.
	cfg.NumClients = 40
	cfg.NumNoisy = 4
	cfg.Rounds = 12
	cfg.MCSamples = 150
	cfg.Participations = []float64{0.1, 0.3, 0.5}

	fmt.Printf("%d clients, %d of them with %.0f%% flipped labels; sweeping participation\n\n",
		cfg.NumClients, cfg.NumNoisy, 100*cfg.FlipFraction)

	res, err := experiments.NoisyLabel(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("noisy clients: %v\n\n", res.Noisy)
	fmt.Println("participation\tJaccard(FedSV)\tJaccard(ComFedSV)   (bottom-valued vs truly noisy)")
	for _, p := range res.Points {
		fmt.Printf("%.0f%%\t\t%.3f\t\t%.3f\n", 100*p.Participation, p.FedSVJaccard, p.ComFedSVJaccard)
	}
	fmt.Println("\nBoth metrics generally improve with participation (the paper's Fig. 7 trend).")
	fmt.Println("At this scaled-down round budget the Monte-Carlo completion is noisy, so the")
	fmt.Println("two metrics trade places between cells; see EXPERIMENTS.md for the full-scale")
	fmt.Println("numbers and the recorded deviation from the paper's ordering.")
}
