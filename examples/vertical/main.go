// Vertical federated valuation: the paper's stated future direction
// (Section VIII), implemented as an extension. Four parties hold disjoint
// feature blocks of the same samples with decreasing label signal; the
// split logistic model is trained cooperatively, and ComFedSV-style
// valuation over *parties* recovers the signal ranking.
//
// Run with: go run ./examples/vertical
package main

import (
	"fmt"
	"log"

	"comfedsv/internal/metrics"
	"comfedsv/internal/vfl"
)

func main() {
	cfg := vfl.DefaultSyntheticConfig(1)
	problem := vfl.GenerateSynthetic(cfg)

	fmt.Println("four vertical parties; per-block label signal:", cfg.Informative)

	vcfg := vfl.DefaultConfig(15, 2) // 15 rounds, 2 parties refreshed per round
	report, err := vfl.Value(problem, vcfg)
	if err != nil {
		log.Fatal(err)
	}
	gt, err := vfl.GroundTruthShapley(problem, vcfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("final test loss: %.4f\n\n", report.FinalTestLoss)
	fmt.Println("party\tsignal\tFedSV\t\tComFedSV\tground truth")
	for i := range report.FedSV {
		fmt.Printf("%d\t%.1f\t%+.5f\t%+.5f\t%+.5f\n",
			i, cfg.Informative[i], report.FedSV[i], report.ComFedSV[i], gt[i])
	}
	fmt.Printf("\nSpearman(ComFedSV, signal) = %.3f\n",
		metrics.Spearman(report.ComFedSV, cfg.SignalRanking()))
	fmt.Printf("Spearman(FedSV,    signal) = %.3f\n",
		metrics.Spearman(report.FedSV, cfg.SignalRanking()))
}
