// Noisy-data detection: reproduce the Fig. 6 scenario — client i receives
// Gaussian feature noise on 5·i% of its examples, and the valuation metrics
// are scored by how well they rank clients by data quality.
//
// Run with: go run ./examples/noisydata
package main

import (
	"fmt"
	"log"

	"comfedsv/internal/experiments"
)

func main() {
	cfg := experiments.DefaultNoisyDataConfig(experiments.MNIST)
	cfg.Trials = 5

	fmt.Printf("%d clients; client i has %.0f·i%% of its examples corrupted with N(0, %.1f²) noise\n",
		cfg.NumClients, 100*cfg.NoiseStep, cfg.NoiseSigma)
	fmt.Printf("training %d rounds, %d clients selected per round, %d trials\n\n",
		cfg.Rounds, cfg.ClientsPerRound, cfg.Trials)

	res, err := experiments.NoisyData(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Spearman rank correlation with the true quality ranking (higher is better):")
	fmt.Printf("  ground truth (full utility matrix): %.3f\n", res.GroundTruthCorr)
	fmt.Printf("  FedSV (observed entries only):      %.3f\n", res.FedSVCorr)
	fmt.Printf("  ComFedSV (completed matrix):        %.3f\n", res.ComFedSVCorr)
	fmt.Println("\nThe paper's claim (Fig. 6): ComFedSV tracks the ground truth closely and")
	fmt.Println("outperforms FedSV, because completion restores the credit of clients that")
	fmt.Println("random selection left unobserved.")
}
