// Quickstart: value ten data owners in a federated training run with both
// FedSV and ComFedSV through the public API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"comfedsv"
	"comfedsv/internal/dataset"
	"comfedsv/internal/rng"
)

func main() {
	// Build ten clients from the MNIST-like generator: in a real
	// deployment each Client would hold a data owner's private examples.
	const (
		numClients = 10
		perClient  = 40
		numTest    = 120
	)
	full := dataset.GenerateImages(dataset.MNISTLikeConfig(1), numClients*perClient+numTest)
	g := rng.New(2)
	train, test := dataset.TrainTestSplit(full, float64(numTest)/float64(full.Len()), g)
	parts := dataset.PartitionIID(train, numClients, g)

	clients := make([]comfedsv.Client, numClients)
	for i, p := range parts {
		clients[i] = comfedsv.Client{X: p.X, Y: p.Y}
	}

	opts := comfedsv.DefaultOptions(10)
	opts.Rounds = 15
	opts.ClientsPerRound = 3
	opts.Model = comfedsv.MLP
	opts.LearningRate = 0.1

	report, err := comfedsv.Value(clients, comfedsv.Client{X: test.X, Y: test.Y}, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("final model: loss %.4f, accuracy %.1f%%\n", report.FinalTestLoss, 100*report.FinalAccuracy)
	fmt.Printf("utility matrix density observed: %.3f (completion RMSE %.5f)\n",
		report.ObservedDensity, report.CompletionRMSE)
	fmt.Println("\nclient\tFedSV\t\tComFedSV")
	for i := range clients {
		fmt.Printf("%d\t%+.5f\t%+.5f\n", i, report.FedSV[i], report.ComFedSV[i])
	}
}
