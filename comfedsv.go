// Package comfedsv is a Go implementation of ComFedSV — the Completed
// Federated Shapley Value of Fan et al., "Improving Fairness for Data
// Valuation in Horizontal Federated Learning" (ICDE 2022) — together with
// every substrate it needs: a FedAvg training engine, from-scratch models,
// the utility matrix, low-rank matrix completion, and the FedSV baseline of
// Wang et al.
//
// The package exposes a small façade over the internal pipeline:
//
//	report, err := comfedsv.Value(clients, test, comfedsv.Options{...})
//
// trains a federated model on the clients' data and returns FedSV and
// ComFedSV valuations for every client. See examples/ for runnable
// scenarios and cmd/comfedsv for the experiment harness that regenerates
// every figure of the paper.
package comfedsv

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"comfedsv/internal/dataset"
	"comfedsv/internal/fl"
	"comfedsv/internal/model"
	"comfedsv/internal/shapley"
	"comfedsv/internal/utility"
)

// Client is one data owner's local dataset: X[i] is a feature vector and
// Y[i] its class label in [0, NumClasses) of the enclosing call.
type Client struct {
	X [][]float64
	Y []int
}

// ModelKind selects the classifier trained by FedAvg.
type ModelKind int

const (
	// LogisticRegression is multinomial logistic regression — the strongly
	// convex setting of the paper's theory (Propositions 1–2).
	LogisticRegression ModelKind = iota
	// MLP is a one-hidden-layer perceptron.
	MLP
)

// Options configures the valuation pipeline. The zero value is not valid;
// start from DefaultOptions.
type Options struct {
	// NumClasses is the number of label classes across all clients.
	NumClasses int
	// Rounds is the number of FedAvg rounds T.
	Rounds int
	// ClientsPerRound is the per-round selection size K.
	ClientsPerRound int
	// LearningRate is the initial FedAvg learning rate.
	LearningRate float64
	// Model selects the classifier.
	Model ModelKind
	// HiddenUnits sizes the MLP hidden layer (ignored for logistic regression).
	HiddenUnits int
	// Rank is the matrix-completion rank r.
	Rank int
	// MonteCarloSamples, if positive, uses Algorithm 1 with that many
	// permutations; zero uses the exact pipeline (requires ≤ 14 clients).
	// When Tolerance is set it is the adaptive run's permutation *budget* —
	// the ceiling sampling never exceeds.
	MonteCarloSamples int
	// Tolerance, if positive, switches the Monte-Carlo pipeline to
	// adaptive (tolerance-driven) valuation: permutations are sampled in
	// doubling waves and the run stops as soon as no client's ComFedSV
	// estimate moved more than Tolerance between consecutive waves,
	// instead of exhausting the full budget. Requires a positive
	// permutation budget (MonteCarloSamples or MaxPermutations). The
	// stopping decision is a pure function of the seed and the merged
	// estimates, so adaptive reports stay byte-identical across
	// Parallelism and Shards settings. Zero keeps the fixed-budget
	// pipeline; negative, NaN, or infinite values are rejected.
	Tolerance float64
	// MaxPermutations, if positive, is an explicit permutation budget for
	// adaptive valuation — an alias for MonteCarloSamples that reads
	// better next to Tolerance. Setting it without Tolerance, or setting
	// both it and MonteCarloSamples to different values, is rejected.
	MaxPermutations int
	// Seed makes the run deterministic.
	Seed int64
	// Parallelism bounds the number of CPU-bound goroutines one valuation
	// may use for its hot path — the ALS completion solves (factor rows
	// and restarts) and the Monte-Carlo observation stage's test-loss
	// evaluations. 0 means GOMAXPROCS. The computed values are
	// bit-identical for every setting; only wall-clock time changes.
	Parallelism int
	// Shards splits the Monte-Carlo observation stage into that many
	// independently schedulable shards, each owning a disjoint slice of
	// the sampled permutations (0 means 1; clamped to the sample count).
	// The one-shot Value path runs them serially; the comfedsvd scheduler
	// runs them as separate tasks on its shared worker pool so one large
	// valuation no longer monopolizes a worker. The computed values are
	// bit-identical for every setting.
	Shards int
	// OnProgress, if non-nil, receives pipeline progress updates. Shard
	// observation events may be delivered concurrently when a scheduler
	// runs shards in parallel, so the callback must be safe for concurrent
	// use and cheap; it does not affect the computed values.
	OnProgress func(Progress) `json:"-"`
	// OnStageTime, if non-nil, receives the wall-clock duration of every
	// completed pipeline stage execution — the telemetry hook the comfedsvd
	// daemon feeds its per-stage latency histograms from. Observation-shard
	// events may be delivered concurrently when a scheduler runs shards in
	// parallel, so the callback must be safe for concurrent use and cheap;
	// it only observes and never affects the computed values.
	OnStageTime func(StageTiming) `json:"-"`
}

// StageTiming reports one completed pipeline-stage execution to
// Options.OnStageTime.
type StageTiming struct {
	// Stage is one of StageTrain, StageFedSV, StageObserve, StageComplete,
	// StageShapley.
	Stage string
	// Shard is the observation shard index for StageObserve events, -1 for
	// every other stage.
	Shard int
	// Duration is the stage execution's wall-clock time.
	Duration time.Duration
}

// Progress describes how far a valuation run has advanced. During the
// StageTrain stage Done counts completed FedAvg rounds out of Total, and
// during StageObserve it counts completed observation shards; the
// remaining stages report Done = 0 on entry and Done = Total = 1 when
// complete.
type Progress struct {
	// Stage is one of StageTrain, StageFedSV, StageObserve, StageComplete,
	// StageShapley.
	Stage string `json:"stage"`
	// Done is the number of completed units within the stage.
	Done int `json:"done"`
	// Total is the number of units in the stage.
	Total int `json:"total"`
}

// Valuation pipeline stages reported through Options.OnProgress, in
// execution order: FedAvg training, the FedSV baseline, the ComFedSV
// observation shards, the matrix-completion solve, and the Shapley
// extraction.
const (
	StageTrain    = "train"
	StageFedSV    = "fedsv"
	StageObserve  = "observe"
	StageComplete = "complete"
	StageShapley  = "shapley"
)

// DefaultOptions returns a configuration suitable for tens of clients.
func DefaultOptions(numClasses int) Options {
	return Options{
		NumClasses:      numClasses,
		Rounds:          20,
		ClientsPerRound: 3,
		LearningRate:    0.5,
		Model:           LogisticRegression,
		HiddenUnits:     16,
		Rank:            5,
		Seed:            1,
	}
}

// Report is the outcome of a valuation run. The JSON encoding is the wire
// and on-disk format used by the comfedsvd service.
type Report struct {
	// FedSV holds the federated Shapley values (Wang et al., Definition 2),
	// computed by exact per-round enumeration when every round selects at
	// most 20 clients and otherwise by the paper's seeded sampled-permutation
	// estimator — deterministic either way.
	FedSV []float64 `json:"fedsv"`
	// ComFedSV holds the completed federated Shapley values (Definition 4).
	ComFedSV []float64 `json:"comfedsv"`
	// FinalTestLoss is the test loss of the final global model.
	FinalTestLoss float64 `json:"final_test_loss"`
	// FinalAccuracy is the test accuracy of the final global model.
	FinalAccuracy float64 `json:"final_accuracy"`
	// ObservedDensity is the fraction of utility-matrix cells observed
	// before completion.
	ObservedDensity float64 `json:"observed_density"`
	// CompletionRMSE is the observed-entry RMSE of the fitted factorization.
	CompletionRMSE float64 `json:"completion_rmse"`
	// UtilityCalls counts the distinct test-loss evaluations performed.
	UtilityCalls int `json:"utility_calls"`
	// ObservationsUsed is the number of sampled permutations an adaptive
	// (tolerance-driven) run merged before its estimates converged. Zero
	// (omitted) for fixed-budget and exact runs, which always consume
	// their whole plan.
	ObservationsUsed int `json:"observations_used,omitempty"`
	// ObservationsBudget is the permutation budget the adaptive run was
	// capped at — what a fixed-budget run with the same options would have
	// consumed. Zero (omitted) outside adaptive mode.
	ObservationsBudget int `json:"observations_budget,omitempty"`
}

// Value trains a federated model on the clients' data and values every
// client with both FedSV and ComFedSV. The test client holds the central
// server's held-out evaluation data D_c.
func Value(clients []Client, test Client, opts Options) (*Report, error) {
	return ValueCtx(context.Background(), clients, test, opts)
}

// ValueCtx is Value with cooperative cancellation: the context is checked
// at every FedAvg round boundary, at every valuation round/permutation
// boundary, and between pipeline stages, and a cancelled call returns
// ctx.Err(). A context that is never cancelled yields exactly Value's
// result.
//
// ValueCtx drives the same staged Valuation the comfedsvd scheduler
// executes task by task, just serially in one goroutine — that shared code
// path is what makes service reports byte-identical to direct calls.
func ValueCtx(ctx context.Context, clients []Client, test Client, opts Options) (*Report, error) {
	tr, err := TrainCtx(ctx, clients, test, opts)
	if err != nil {
		return nil, err
	}
	// The run is private to this call, so the session's distinct-cell
	// count is exactly the evaluation bill a standalone evaluator pays.
	return NewValuation(tr, opts).Run(ctx)
}

// TrainedRun is a completed FedAvg training trace bundled with a shared,
// goroutine-safe evaluator over its utility matrix. It is the unit the
// comfedsvd run registry shares across valuation jobs: training happens
// once, and every ValueRunCtx call against the same TrainedRun reuses the
// memo table, amortizing the test-loss evaluations that dominate valuation
// cost (Section VII-D).
type TrainedRun struct {
	run  *fl.Run
	eval *utility.Evaluator

	// Final-model metrics are deterministic functions of the trace;
	// computing them once per run (not once per valuation) keeps repeated
	// valuations from paying full test-set passes the shared cache exists
	// to amortize.
	metricsOnce sync.Once
	finalLoss   float64
	finalAcc    float64
}

// finalMetrics returns the final global model's test loss and accuracy,
// computed on first use and shared by every valuation over this run.
func (tr *TrainedRun) finalMetrics() (loss, acc float64) {
	tr.metricsOnce.Do(func() {
		tr.finalLoss = tr.run.Model.Loss(tr.run.Final, tr.run.Test)
		tr.finalAcc = model.Accuracy(tr.run.Model, tr.run.Final, tr.run.Test)
	})
	return tr.finalLoss, tr.finalAcc
}

// NewTrainedRun wraps an existing training trace (e.g. one loaded from a
// persist.RunStore) with a fresh shared evaluator.
func NewTrainedRun(run *fl.Run) *TrainedRun {
	return &TrainedRun{run: run, eval: utility.NewEvaluator(run)}
}

// Run returns the underlying training trace (for persistence).
func (tr *TrainedRun) Run() *fl.Run { return tr.run }

// NumClients returns the number of participating clients.
func (tr *TrainedRun) NumClients() int { return tr.run.NumClients() }

// NumRounds returns the number of recorded FedAvg rounds.
func (tr *TrainedRun) NumRounds() int { return len(tr.run.Rounds) }

// CacheStats returns the shared evaluator's cumulative hit/miss ledger
// across every valuation that used this run.
func (tr *TrainedRun) CacheStats() EvalStats {
	return EvalStats{Hits: tr.eval.Hits(), Misses: tr.eval.Calls()}
}

// EvalStats is a utility-cache ledger: Misses counts distinct test-loss
// evaluations paid for, Hits counts lookups served from the memo table.
type EvalStats struct {
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
}

// CellBatch is a canonical, digest-stamped batch of memoized utility cells
// — the unit of the persistent run-scoped cell cache. Re-exported so the
// service, the dispatch wire, and the worker daemon speak one type.
type CellBatch = utility.CellBatch

// PreloadCells installs previously exported cells into the shared
// evaluator's memo table, warm-starting every valuation over this run. The
// batch is digest-verified and bounds-checked before anything is
// installed; a bad batch changes nothing and returns an error so the
// caller can quarantine its source. Preloaded cells do not count as cache
// misses, so report bytes are unaffected — a warm start only skips
// test-loss evaluations that would have produced the same values. It
// returns the number of newly installed cells.
func (tr *TrainedRun) PreloadCells(b *CellBatch) (int, error) {
	return tr.eval.Preload(b)
}

// ExportNewCells drains and returns the cells this process evaluated since
// the last drain (excluding preloaded ones) as a stamped canonical batch,
// or nil if nothing new was evaluated — what a service flush persists and
// a worker ships with its shard completions.
func (tr *TrainedRun) ExportNewCells() *CellBatch {
	return tr.eval.ExportNew()
}

// CellCacheStats returns the persistent-cache ledger of the shared
// evaluator: how many cells were preloaded from elsewhere and how many
// lookups those cells served (test-loss evaluations a warm start avoided).
func (tr *TrainedRun) CellCacheStats() (preloaded, warmHits int) {
	return tr.eval.Preloaded(), tr.eval.WarmHits()
}

// Train runs only the FedAvg training stage of Value and returns the
// trace ready for (repeated) valuation.
func Train(clients []Client, test Client, opts Options) (*TrainedRun, error) {
	return TrainCtx(context.Background(), clients, test, opts)
}

// TrainCtx is Train with cooperative cancellation, checked at every FedAvg
// round boundary. Only the training-relevant Options fields matter here
// (NumClasses, Rounds, ClientsPerRound, LearningRate, Model, HiddenUnits,
// Seed); valuation fields like Rank and MonteCarloSamples are read later
// by ValueRunCtx, which is what lets jobs with different valuation
// settings share one trace.
func TrainCtx(ctx context.Context, clients []Client, test Client, opts Options) (*TrainedRun, error) {
	if len(clients) == 0 {
		return nil, errors.New("comfedsv: no clients")
	}
	if opts.NumClasses < 2 {
		return nil, fmt.Errorf("comfedsv: need at least 2 classes, got %d", opts.NumClasses)
	}
	locals := make([]*dataset.Dataset, len(clients))
	var dim int
	for i, c := range clients {
		d, err := toDataset(c, opts.NumClasses)
		if err != nil {
			return nil, fmt.Errorf("comfedsv: client %d: %w", i, err)
		}
		if i == 0 {
			dim = d.Dim()
		} else if d.Dim() != dim {
			return nil, fmt.Errorf("comfedsv: client %d has dim %d, want %d", i, d.Dim(), dim)
		}
		locals[i] = d
	}
	testSet, err := toDataset(test, opts.NumClasses)
	if err != nil {
		return nil, fmt.Errorf("comfedsv: test set: %w", err)
	}
	if testSet.Len() == 0 {
		return nil, errors.New("comfedsv: empty test set")
	}
	if testSet.Dim() != dim {
		return nil, fmt.Errorf("comfedsv: test set dim %d, clients dim %d", testSet.Dim(), dim)
	}

	var m model.Model
	switch opts.Model {
	case LogisticRegression:
		m = model.NewLogisticRegression(dim, opts.NumClasses)
	case MLP:
		hidden := opts.HiddenUnits
		if hidden <= 0 {
			hidden = 16
		}
		m = model.NewMLP(dim, hidden, opts.NumClasses)
	default:
		return nil, fmt.Errorf("comfedsv: unknown model kind %d", opts.Model)
	}

	flCfg := fl.Config{
		Rounds:              opts.Rounds,
		ClientsPerRound:     opts.ClientsPerRound,
		LearningRate:        opts.LearningRate,
		LRDecay:             0.01,
		LocalSteps:          1,
		ForceFullFirstRound: true,
		Seed:                opts.Seed,
	}
	progress := func(p Progress) {
		if opts.OnProgress != nil {
			opts.OnProgress(p)
		}
	}
	flCfg.Progress = func(done, total int) {
		progress(Progress{Stage: StageTrain, Done: done, Total: total})
	}
	progress(Progress{Stage: StageTrain, Done: 0, Total: flCfg.Rounds})
	start := time.Now()
	run, err := fl.TrainRunCtx(ctx, flCfg, m, locals, testSet)
	if err != nil {
		return nil, stageErr(ctx, "training", err)
	}
	if opts.OnStageTime != nil {
		opts.OnStageTime(StageTiming{Stage: StageTrain, Shard: -1, Duration: time.Since(start)})
	}
	return NewTrainedRun(run), nil
}

// ValueRun values every client against a precomputed training run.
func ValueRun(tr *TrainedRun, opts Options) (*Report, EvalStats, error) {
	return ValueRunCtx(context.Background(), tr, opts)
}

// ValueRunCtx runs the valuation stages of ValueCtx against a precomputed
// TrainedRun, sharing its evaluator cache with every other valuation over
// the same run. Only the valuation-relevant Options fields are read
// (Rank, MonteCarloSamples, Seed, Parallelism, OnProgress), and they are
// validated exactly as the inline path validates them. The returned
// report is byte-identical (under JSON encoding) to a ValueCtx call whose
// training options produced this run: the computed values are
// deterministic memoized functions of the trace, and UtilityCalls counts
// the distinct cells *this* valuation requested, not what the shared
// cache happened to hold. The returned EvalStats splits those cells into
// shared-cache hits and fresh evaluations.
func ValueRunCtx(ctx context.Context, tr *TrainedRun, opts Options) (*Report, EvalStats, error) {
	v := NewValuation(tr, opts)
	report, err := v.Run(ctx)
	if err != nil {
		return nil, EvalStats{}, err
	}
	return report, v.Stats(), nil
}

// stageErr converts a pipeline-stage failure into the caller-visible
// error: cancellation wins over the stage's own error.
func stageErr(ctx context.Context, stage string, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	return fmt.Errorf("comfedsv: %s: %w", stage, err)
}

func toDataset(c Client, numClasses int) (*dataset.Dataset, error) {
	d := &dataset.Dataset{X: c.X, Y: c.Y, NumClasses: numClasses}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// ShapleyValues computes the classical (exact) Shapley value of an
// arbitrary cooperative game over n ≤ 20 players; u receives a bitmask of
// coalition members. Exposed for downstream users who want the game-theory
// core without the federated pipeline.
func ShapleyValues(n int, u func(coalition uint64) float64) []float64 {
	return shapley.Exact(n, u)
}
