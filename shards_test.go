package comfedsv

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
)

// TestReportByteIdenticalAcrossShards is the facade-level determinism
// guarantee of the sharded observation stage: the same seed and submission
// must serialize to the byte-identical report for shard counts 1, 2, and
// 8, inline and run-backed alike.
func TestReportByteIdenticalAcrossShards(t *testing.T) {
	clients, test := makeClients(t, 6, 20, 40, 311)
	base := DefaultOptions(10)
	base.Rounds = 5
	base.ClientsPerRound = 2
	base.Model = MLP
	base.HiddenUnits = 6
	base.LearningRate = 0.1
	base.MonteCarloSamples = 25

	encode := func(shards int) []byte {
		opts := base
		opts.Shards = shards
		rep, err := ValueCtx(context.Background(), clients, test, opts)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		body, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return body
	}

	want := encode(1)
	for _, s := range []int{2, 8} {
		if got := encode(s); !bytes.Equal(want, got) {
			t.Fatalf("shards=%d report differs from shards=1:\n%s\nvs\n%s", s, got, want)
		}
	}

	// Run-backed over a warm shared cache: every shard count must still
	// produce the identical bytes, with shards layered on parallelism.
	tr, err := TrainCtx(context.Background(), clients, test, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{1, 2, 8} {
		opts := base
		opts.Shards = s
		opts.Parallelism = 3
		rep, _, err := ValueRunCtx(context.Background(), tr, opts)
		if err != nil {
			t.Fatalf("run-backed shards=%d: %v", s, err)
		}
		body, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, body) {
			t.Fatalf("run-backed shards=%d report differs from inline shards=1:\n%s\nvs\n%s", s, body, want)
		}
	}

	// The exact pipeline ignores sharding (one observation stage) but must
	// accept the knob unchanged.
	exact := base
	exact.MonteCarloSamples = 0
	want = encode(1)
	exact.Shards = 8
	rep, err := ValueCtx(context.Background(), clients, test, exact)
	if err != nil {
		t.Fatal(err)
	}
	exact.Shards = 1
	rep1, err := ValueCtx(context.Background(), clients, test, exact)
	if err != nil {
		t.Fatal(err)
	}
	b8, _ := json.Marshal(rep)
	b1, _ := json.Marshal(rep1)
	if !bytes.Equal(b1, b8) {
		t.Fatalf("exact pipeline: shards=8 report differs from shards=1:\n%s\nvs\n%s", b8, b1)
	}
}

// TestValuationConcurrentShardsMatchSerial drives the staged Valuation the
// way the scheduler does — shards on separate goroutines — and requires
// the byte-identical report (run with -race to hammer the shared plan and
// session state).
func TestValuationConcurrentShardsMatchSerial(t *testing.T) {
	clients, test := makeClients(t, 6, 20, 40, 313)
	opts := DefaultOptions(10)
	opts.Rounds = 5
	opts.ClientsPerRound = 2
	opts.LearningRate = 0.1
	opts.MonteCarloSamples = 25
	opts.Shards = 4
	opts.Parallelism = 2

	want, err := ValueCtx(context.Background(), clients, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantBody, _ := json.Marshal(want)

	tr, err := TrainCtx(context.Background(), clients, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	v := NewValuation(tr, opts)
	shards, err := v.Prepare(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, shards)
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = v.ObserveShard(context.Background(), i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	if more, err := v.Complete(context.Background()); err != nil {
		t.Fatal(err)
	} else if more != 0 {
		t.Fatalf("fixed-budget Complete scheduled %d more shards, want 0", more)
	}
	got, err := v.Extract(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gotBody, _ := json.Marshal(got)
	if !bytes.Equal(wantBody, gotBody) {
		t.Fatalf("concurrent-shard valuation differs from serial:\n%s\nvs\n%s", gotBody, wantBody)
	}
	stats := v.Stats()
	if stats.Hits+stats.Misses != got.UtilityCalls {
		t.Fatalf("session ledger %+v does not sum to %d utility calls", stats, got.UtilityCalls)
	}
}
