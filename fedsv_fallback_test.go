package comfedsv

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// wideClients builds n separable 2-D clients — enough of them that the
// warm-up round's full-participation selection exceeds the exact-FedSV
// enumeration limit of 20.
func wideClients(n int) ([]Client, Client) {
	mk := func(off float64) Client {
		var c Client
		for i := 0; i < 6; i++ {
			x := off + float64(i)*0.3
			label := 0
			if x > 1 {
				label = 1
			}
			c.X = append(c.X, []float64{x, 1 - x})
			c.Y = append(c.Y, label)
		}
		return c
	}
	var cs []Client
	for i := 0; i < n; i++ {
		cs = append(cs, mk(-0.5+float64(i)*0.07))
	}
	return cs, mk(0.25)
}

// TestFedSVFallbackBeyondEnumerationLimit pins the large-federation path:
// a Monte-Carlo job whose warm-up round selects all 22 clients used to
// fail outright ("exact FedSV ... is infeasible"); now the baseline
// degrades to the paper's sampled-permutation estimator and the job
// succeeds — deterministically, so the report stays byte-identical across
// shard and parallelism settings, in fixed and tolerance mode alike.
func TestFedSVFallbackBeyondEnumerationLimit(t *testing.T) {
	clients, test := wideClients(22)
	opts := DefaultOptions(2)
	opts.Rounds = 3
	opts.ClientsPerRound = 2
	opts.Seed = 29
	opts.MonteCarloSamples = 24

	encode := func(opts Options) []byte {
		rep, err := ValueCtx(context.Background(), clients, test, opts)
		if err != nil {
			t.Fatalf("shards=%d parallelism=%d tol=%v: %v", opts.Shards, opts.Parallelism, opts.Tolerance, err)
		}
		if len(rep.FedSV) != 22 || len(rep.ComFedSV) != 22 {
			t.Fatalf("value lengths %d/%d, want 22", len(rep.FedSV), len(rep.ComFedSV))
		}
		body, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	want := encode(opts)
	for _, tc := range []struct{ shards, parallelism int }{{4, 1}, {1, 3}} {
		o := opts
		o.Shards = tc.shards
		o.Parallelism = tc.parallelism
		if got := encode(o); !bytes.Equal(want, got) {
			t.Fatalf("shards=%d parallelism=%d report differs:\n%s\nvs\n%s", tc.shards, tc.parallelism, got, want)
		}
	}

	adaptive := opts
	adaptive.Tolerance = 100
	wantAdaptive := encode(adaptive)
	adaptive.Shards = 4
	adaptive.Parallelism = 3
	if got := encode(adaptive); !bytes.Equal(wantAdaptive, got) {
		t.Fatalf("adaptive fallback report differs across shards:\n%s\nvs\n%s", got, wantAdaptive)
	}
}
