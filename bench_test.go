package comfedsv

// One benchmark per paper table/figure (see DESIGN.md §3 for the index)
// plus ablation benches for the design choices DESIGN.md §5 calls out.
// Each bench runs a CI-sized version of the experiment and logs the series
// it regenerates (visible with `go test -bench . -v`); the full-scale
// figures are produced by `cmd/comfedsv`.

import (
	"context"
	"fmt"
	"testing"

	"comfedsv/internal/dataset"
	"comfedsv/internal/experiments"
	"comfedsv/internal/fl"
	"comfedsv/internal/mc"
	"comfedsv/internal/metrics"
	"comfedsv/internal/model"
	"comfedsv/internal/rng"
	"comfedsv/internal/shapley"
	"comfedsv/internal/utility"
	"comfedsv/internal/vfl"
)

// BenchmarkFig1UnfairnessProbability regenerates Fig. 1: P_s curves for
// the default participation probabilities.
func BenchmarkFig1UnfairnessProbability(b *testing.B) {
	var series []experiments.Fig1Series
	for i := 0; i < b.N; i++ {
		series = experiments.Fig1(10, experiments.Fig1Defaults())
	}
	logOnce(b, func() {
		for _, s := range series {
			b.Logf("p=%.3f: P_0=%.3f P_2=%.3f P_5=%.3f", s.P, s.Values[0], s.Values[2], s.Values[5])
		}
	})
}

// BenchmarkExample1FedSVUnfairness regenerates Example 1: the probability
// that duplicated clients differ by more than 50% under FedSV.
func BenchmarkExample1FedSVUnfairness(b *testing.B) {
	cfg := experiments.DefaultFairnessConfig(experiments.MNIST)
	cfg.Trials = 3
	cfg.SamplesPerClient = 20
	cfg.TestSamples = 50
	cfg.ForceFullFirstRound = false
	var res *experiments.FairnessResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fairness(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.FedSVExceeds(0.5), "P(dFedSV>0.5)")
}

// BenchmarkFig2LowRankSpectrum regenerates Fig. 2: the utility-matrix
// spectrum on the MNIST stand-in.
func BenchmarkFig2LowRankSpectrum(b *testing.B) {
	cfg := experiments.DefaultLowRankConfig(experiments.MNIST)
	cfg.Rounds = 12
	cfg.NumClients = 8
	cfg.SamplesPerClient = 20
	cfg.TestSamples = 50
	var res *experiments.LowRankResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.LowRank(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SingularValues[4]/res.SingularValues[0], "sigma5/sigma1")
}

// BenchmarkFig3RankImpact regenerates Fig. 3: completion error vs rank.
func BenchmarkFig3RankImpact(b *testing.B) {
	cfg := experiments.DefaultRankImpactConfig()
	cfg.Rounds = 12
	cfg.NumClients = 8
	cfg.SamplesPerClient = 20
	cfg.TestSamples = 50
	cfg.Ranks = []int{1, 3, 5}
	var points []experiments.RankPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.RankImpact(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	logOnce(b, func() {
		for _, p := range points {
			b.Logf("r=%d relErr=%.4f", p.Rank, p.RelativeError)
		}
	})
}

// BenchmarkFig5FairnessCDF regenerates Fig. 5: the ECDF comparison of the
// duplicated-pair relative difference under both metrics.
func BenchmarkFig5FairnessCDF(b *testing.B) {
	cfg := experiments.DefaultFairnessConfig(experiments.MNIST)
	cfg.Trials = 3
	cfg.SamplesPerClient = 20
	cfg.TestSamples = 50
	var res *experiments.FairnessResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fairness(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.FedSVExceeds(0.5), "P(dFedSV>0.5)")
	b.ReportMetric(res.ComFedSVExceeds(0.5), "P(dComFedSV>0.5)")
}

// BenchmarkFig6NoisyData regenerates Fig. 6: Spearman correlation of each
// metric with the true data-quality ranking.
func BenchmarkFig6NoisyData(b *testing.B) {
	cfg := experiments.DefaultNoisyDataConfig(experiments.MNIST)
	cfg.Trials = 2
	cfg.NumClients = 6
	cfg.Rounds = 6
	cfg.SamplesPerClient = 40
	cfg.TestSamples = 60
	var res *experiments.NoisyDataResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.NoisyData(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GroundTruthCorr, "rho-truth")
	b.ReportMetric(res.FedSVCorr, "rho-fedsv")
	b.ReportMetric(res.ComFedSVCorr, "rho-comfedsv")
}

// BenchmarkFig7NoisyLabel regenerates Fig. 7: Jaccard coefficient between
// the noisy-label clients and the bottom-valued clients.
func BenchmarkFig7NoisyLabel(b *testing.B) {
	cfg := experiments.DefaultNoisyLabelConfig(experiments.MNIST)
	cfg.NumClients = 12
	cfg.NumNoisy = 3
	cfg.Rounds = 5
	cfg.SamplesPerClient = 15
	cfg.TestSamples = 40
	cfg.Participations = []float64{0.3}
	cfg.MCSamples = 40
	cfg.FedSVSamples = 3
	var res *experiments.NoisyLabelResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.NoisyLabel(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Points[0].FedSVJaccard, "jaccard-fedsv")
	b.ReportMetric(res.Points[0].ComFedSVJaccard, "jaccard-comfedsv")
}

// BenchmarkFig8Timing regenerates Fig. 8: the FedSV/ComFedSV cost ratio.
func BenchmarkFig8Timing(b *testing.B) {
	cfg := experiments.DefaultTimingConfig()
	cfg.ClientCounts = []int{10}
	cfg.Rounds = 3
	cfg.SamplesPerClient = 10
	cfg.TestSamples = 30
	var points []experiments.TimingPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.Timing(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points[0].CallRatio, "call-ratio")
}

// BenchmarkEpsRankSweep regenerates the Propositions 1–2 check: ε-rank
// growth with T.
func BenchmarkEpsRankSweep(b *testing.B) {
	cfg := experiments.DefaultEpsRankConfig()
	cfg.RoundsSweep = []int{5, 10}
	cfg.NumClients = 5
	cfg.SamplesPerClient = 15
	cfg.TestSamples = 40
	var points []experiments.EpsRankPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.EpsRank(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	logOnce(b, func() {
		for _, p := range points {
			b.Logf("T=%d eps-rank=%d", p.Rounds, p.EpsRank)
		}
	})
}

// BenchmarkTheorem1Bound regenerates the Theorem 1 empirical check.
func BenchmarkTheorem1Bound(b *testing.B) {
	cfg := experiments.DefaultTheorem1Config()
	cfg.Rounds = 5
	cfg.SamplesPerClient = 20
	cfg.TestSamples = 40
	var res *experiments.Theorem1Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Theorem1(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SymmetryGap, "symmetry-gap")
	b.ReportMetric(res.Bound, "bound")
}

// --- Ablation benches (DESIGN.md §5) ---

func benchEvaluator(b *testing.B, clients, rounds, perRound int) *utility.Evaluator {
	b.Helper()
	full := dataset.GenerateImages(dataset.MNISTLikeConfig(201), clients*25+50)
	g := rng.New(202)
	train, test := dataset.TrainTestSplit(full, float64(50)/float64(full.Len()), g)
	parts := dataset.PartitionIID(train, clients, g)
	m := model.NewMLP(full.Dim(), 6, full.NumClasses)
	cfg := fl.DefaultConfig(rounds, perRound)
	cfg.LearningRate = 0.1
	run, err := fl.TrainRun(cfg, m, parts, test)
	if err != nil {
		b.Fatal(err)
	}
	return utility.NewEvaluator(run)
}

// BenchmarkAblationSolverALS and ...SGD compare the two completion
// backends on the same observations.
func BenchmarkAblationSolverALS(b *testing.B) { benchSolver(b, mc.ALS) }

// BenchmarkAblationSolverSGD is the SGD side of the solver ablation.
func BenchmarkAblationSolverSGD(b *testing.B) { benchSolver(b, mc.SGD) }

func benchSolver(b *testing.B, solver mc.Solver) {
	e := benchEvaluator(b, 6, 6, 2)
	cfg := mc.DefaultConfig(3)
	cfg.Solver = solver
	if solver == mc.SGD {
		cfg.MaxIter = 200
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shapley.ComFedSVExact(e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWeightedRegOn/Off measure the ALS-WR design choice.
func BenchmarkAblationWeightedRegOn(b *testing.B) { benchWeightedReg(b, true) }

// BenchmarkAblationWeightedRegOff is the plain-ALS side of the ablation.
func BenchmarkAblationWeightedRegOff(b *testing.B) { benchWeightedReg(b, false) }

func benchWeightedReg(b *testing.B, wr bool) {
	e := benchEvaluator(b, 6, 6, 2)
	gt := shapley.GroundTruth(e)
	cfg := mc.DefaultConfig(3)
	cfg.WeightedReg = wr
	var res *shapley.ExactResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = shapley.ComFedSVExact(e, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(corr(res.Values, gt), "rho-vs-truth")
}

// BenchmarkAblationMCSamples sweeps the Monte-Carlo sample count
// (accuracy/time tradeoff of Algorithm 1).
func BenchmarkAblationMCSamples(b *testing.B) {
	e := benchEvaluator(b, 6, 5, 2)
	for _, samples := range []int{20, 80, 320} {
		b.Run(byItoa(samples), func(b *testing.B) {
			cfg := shapley.MonteCarloConfig{Samples: samples, Completion: mc.DefaultConfig(3), Seed: 203}
			for i := 0; i < b.N; i++ {
				if _, err := shapley.MonteCarlo(e, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEBH measures Algorithm 1 with and without the
// Everyone-Being-Heard round (Assumption 1): the unobserved-column count
// is the failure signal.
func BenchmarkAblationEBH(b *testing.B) {
	for _, ebh := range []bool{true, false} {
		name := "with-full-round"
		if !ebh {
			name = "without-full-round"
		}
		b.Run(name, func(b *testing.B) {
			full := dataset.GenerateImages(dataset.MNISTLikeConfig(205), 200)
			g := rng.New(206)
			train, test := dataset.TrainTestSplit(full, 50.0/200, g)
			parts := dataset.PartitionIID(train, 6, g)
			m := model.NewMLP(full.Dim(), 6, full.NumClasses)
			cfg := fl.DefaultConfig(5, 2)
			cfg.LearningRate = 0.1
			cfg.ForceFullFirstRound = ebh
			run, err := fl.TrainRun(cfg, m, parts, test)
			if err != nil {
				b.Fatal(err)
			}
			e := utility.NewEvaluator(run)
			var res *shapley.MonteCarloResult
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = shapley.MonteCarlo(e, shapley.DefaultMonteCarloConfig(6, 3, 207))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.UnobservedColumns), "unobserved-columns")
		})
	}
}

// BenchmarkUtilityEvaluation measures the cost of one utility-matrix cell.
func BenchmarkUtilityEvaluation(b *testing.B) {
	e := benchEvaluator(b, 8, 4, 3)
	s := utility.FromMembers(8, []int{0, 2, 4, 6})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rotate rounds so memoization does not trivialize the loop.
		_ = e.Utility(i%4, s)
	}
}

// BenchmarkFedAvgRound measures one full FedAvg round (all local updates).
func BenchmarkFedAvgRound(b *testing.B) {
	full := dataset.GenerateImages(dataset.MNISTLikeConfig(208), 300)
	g := rng.New(209)
	train, test := dataset.TrainTestSplit(full, 50.0/300, g)
	parts := dataset.PartitionIID(train, 10, g)
	m := model.NewMLP(full.Dim(), 8, full.NumClasses)
	cfg := fl.DefaultConfig(1, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fl.TrainRun(cfg, m, parts, test); err != nil {
			b.Fatal(err)
		}
	}
}

func corr(a, b []float64) float64 {
	return metrics.Spearman(a, b)
}

func byItoa(n int) string {
	return fmt.Sprintf("samples-%d", n)
}

func logOnce(b *testing.B, f func()) {
	b.Helper()
	f()
}

// BenchmarkBaselinesComparison regenerates the extension experiment: all
// valuation methods scored on the noisy-data detection protocol.
func BenchmarkBaselinesComparison(b *testing.B) {
	cfg := experiments.DefaultBaselinesConfig(experiments.MNIST)
	cfg.Trials = 1
	cfg.NumClients = 6
	cfg.Rounds = 5
	cfg.SamplesPerClient = 20
	cfg.TestSamples = 40
	var res *experiments.BaselinesResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Baselines(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Correlations["comfedsv"], "rho-comfedsv")
	b.ReportMetric(res.Correlations["fedsv"], "rho-fedsv")
}

// BenchmarkVerticalValuation measures the vertical-FL extension pipeline
// (future-work direction of the paper, DESIGN.md §1).
func BenchmarkVerticalValuation(b *testing.B) {
	cfg := vfl.DefaultSyntheticConfig(1)
	cfg.TrainN = 120
	cfg.TestN = 60
	problem := vfl.GenerateSynthetic(cfg)
	vcfg := vfl.DefaultConfig(6, 2)
	var rep *vfl.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = vfl.Value(problem, vcfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(corr(rep.ComFedSV, cfg.SignalRanking()), "rho-vs-signal")
}

// BenchmarkAblationAntithetic compares plain and antithetic permutation
// sampling in Algorithm 1 by the variance of the resulting estimates
// across seeds.
func BenchmarkAblationAntithetic(b *testing.B) {
	e := benchEvaluator(b, 6, 5, 2)
	for _, anti := range []bool{false, true} {
		name := "plain"
		if anti {
			name = "antithetic"
		}
		b.Run(name, func(b *testing.B) {
			var spread float64
			for i := 0; i < b.N; i++ {
				// Estimate client 0's value across 4 seeds and report the range.
				lo, hi := 1e18, -1e18
				for s := int64(0); s < 4; s++ {
					cfg := shapley.MonteCarloConfig{
						Samples:    40,
						Completion: mc.DefaultConfig(3),
						Antithetic: anti,
						Seed:       300 + s,
					}
					res, err := shapley.MonteCarlo(e, cfg)
					if err != nil {
						b.Fatal(err)
					}
					v := res.Values[0]
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
				spread = hi - lo
			}
			b.ReportMetric(spread, "seed-spread")
		})
	}
}

// --- Hot-path benchmarks (run with -benchmem; see README "Performance &
// tuning"; the ALS-completion counterpart lives in internal/mc) ---

// BenchmarkMCObservation isolates the Monte-Carlo observation stage: the
// permutation-prefix test-loss evaluations that dominate Algorithm 1's cost
// (Section VII-D). Each iteration starts from a cold evaluator cache so the
// measured work is the distinct-cell evaluations, fanned out over the
// worker pool.
func BenchmarkMCObservation(b *testing.B) {
	e := benchEvaluator(b, 8, 6, 3)
	run := e.Run()
	g := rng.New(77)
	var cells []utility.Cell
	for round := 0; round < 6; round++ {
		for m := 0; m < 24; m++ {
			perm := g.Perm(8)
			s := utility.NewSet(8)
			for _, c := range perm[:1+m%4] {
				s.Add(c)
			}
			cells = append(cells, utility.Cell{Round: round, Subset: s})
		}
	}
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cold := utility.NewEvaluator(run)
				if _, err := cold.UtilityBatchCtx(ctx, cells, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
