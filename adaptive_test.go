package comfedsv

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// adaptiveOptions returns a small tolerance-mode configuration: budget 40
// cuts into waves [16, 32, 40], and the loose tolerance stops the run at
// the second wave bound.
func adaptiveOptions(seed int64) Options {
	opts := DefaultOptions(10)
	opts.Rounds = 5
	opts.ClientsPerRound = 2
	opts.Model = MLP
	opts.HiddenUnits = 6
	opts.LearningRate = 0.1
	opts.MonteCarloSamples = 40
	opts.Tolerance = 100
	opts.Seed = seed
	return opts
}

// TestAdaptiveReportByteIdenticalAcrossShards is the facade-level
// determinism guarantee for tolerance mode: the stopping wave and the
// serialized report are byte-identical for shard counts 1, 2, and 8 and
// parallelism 1 and 4, inline and run-backed alike.
func TestAdaptiveReportByteIdenticalAcrossShards(t *testing.T) {
	clients, test := makeClients(t, 6, 20, 40, 311)
	base := adaptiveOptions(311)

	encode := func(shards, parallelism int) []byte {
		opts := base
		opts.Shards = shards
		opts.Parallelism = parallelism
		rep, err := ValueCtx(context.Background(), clients, test, opts)
		if err != nil {
			t.Fatalf("shards=%d parallelism=%d: %v", shards, parallelism, err)
		}
		if rep.ObservationsBudget != base.MonteCarloSamples {
			t.Fatalf("observations budget %d, want %d", rep.ObservationsBudget, base.MonteCarloSamples)
		}
		if rep.ObservationsUsed <= 0 || rep.ObservationsUsed >= rep.ObservationsBudget {
			t.Fatalf("observations used %d, want an early stop within budget %d", rep.ObservationsUsed, rep.ObservationsBudget)
		}
		body, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	want := encode(1, 1)
	for _, shards := range []int{2, 8} {
		for _, parallelism := range []int{1, 4} {
			if got := encode(shards, parallelism); !bytes.Equal(want, got) {
				t.Fatalf("shards=%d parallelism=%d adaptive report differs:\n%s\nvs\n%s", shards, parallelism, got, want)
			}
		}
	}

	// Run-backed over a warm shared cache must not change a byte either.
	tr, err := TrainCtx(context.Background(), clients, test, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 8} {
		opts := base
		opts.Shards = shards
		opts.Parallelism = 3
		rep, _, err := ValueRunCtx(context.Background(), tr, opts)
		if err != nil {
			t.Fatalf("run-backed shards=%d: %v", shards, err)
		}
		body, _ := json.Marshal(rep)
		if !bytes.Equal(want, body) {
			t.Fatalf("run-backed shards=%d adaptive report differs from inline:\n%s\nvs\n%s", shards, body, want)
		}
	}
}

// TestAdaptiveValuationConcurrentWavesMatchSerial drives the staged
// adaptive Valuation the way the scheduler does — each wave's shards on
// separate goroutines — and requires the byte-identical report (run with
// -race to hammer the shared plan and session state).
func TestAdaptiveValuationConcurrentWavesMatchSerial(t *testing.T) {
	clients, test := makeClients(t, 6, 20, 40, 313)
	opts := adaptiveOptions(313)
	opts.Shards = 4
	opts.Parallelism = 2

	want, err := ValueCtx(context.Background(), clients, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantBody, _ := json.Marshal(want)

	tr, err := TrainCtx(context.Background(), clients, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	v := NewValuation(tr, opts)
	pending, err := v.Prepare(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for pending > 0 {
		var wg sync.WaitGroup
		errs := make([]error, pending)
		for i := 0; i < pending; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = v.ObserveShard(context.Background(), next+i)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("shard %d: %v", next+i, err)
			}
		}
		next += pending
		pending, err = v.Complete(context.Background())
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := v.Extract(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gotBody, _ := json.Marshal(got)
	if !bytes.Equal(wantBody, gotBody) {
		t.Fatalf("concurrent adaptive valuation differs from serial:\n%s\nvs\n%s", gotBody, wantBody)
	}
}

// TestAdaptiveOptionValidation pins the facade's knob contract: the
// contradictory and malformed combinations fail loudly before any
// training-trace work, and MaxPermutations works as the budget alias.
func TestAdaptiveOptionValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Options)
		want string
	}{
		{"negative max permutations", func(o *Options) { o.MaxPermutations = -1 }, "negative MaxPermutations"},
		{"max permutations without tolerance", func(o *Options) { o.Tolerance = 0; o.MaxPermutations = 40 }, "requires Tolerance"},
		{"budget mismatch", func(o *Options) { o.MaxPermutations = 30 }, "disagree"},
		{"tolerance without budget", func(o *Options) { o.MonteCarloSamples = 0 }, "positive permutation budget"},
		{"negative tolerance", func(o *Options) { o.Tolerance = -0.5 }, "positive and finite"},
		{"nan tolerance", func(o *Options) { o.Tolerance = math.NaN() }, "positive and finite"},
		{"inf tolerance", func(o *Options) { o.Tolerance = math.Inf(1) }, "positive and finite"},
	} {
		opts := adaptiveOptions(1)
		tc.mut(&opts)
		_, _, err := valuationBudget(opts)
		if err == nil {
			t.Errorf("%s: accepted, want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// MaxPermutations alone (with Tolerance) is the budget.
	opts := adaptiveOptions(1)
	opts.MonteCarloSamples = 0
	opts.MaxPermutations = 40
	budget, adaptive, err := valuationBudget(opts)
	if err != nil || !adaptive || budget != 40 {
		t.Fatalf("MaxPermutations-only budget = (%d, %v, %v), want (40, true, nil)", budget, adaptive, err)
	}
	// Matching explicit values are accepted.
	opts.MonteCarloSamples = 40
	if _, _, err := valuationBudget(opts); err != nil {
		t.Fatalf("matching budgets rejected: %v", err)
	}
	// Fixed-budget and exact submissions are untouched.
	opts = adaptiveOptions(1)
	opts.Tolerance = 0
	budget, adaptive, err = valuationBudget(opts)
	if err != nil || adaptive || budget != 40 {
		t.Fatalf("fixed budget = (%d, %v, %v), want (40, false, nil)", budget, adaptive, err)
	}
}

// TestAdaptiveCancellationMidWave pins cooperative cancellation at the
// facade: cancelling between waves makes the next stage return ctx.Err().
func TestAdaptiveCancellationMidWave(t *testing.T) {
	clients, test := makeClients(t, 6, 20, 40, 317)
	opts := adaptiveOptions(317)
	opts.Tolerance = 1e-12 // never converges: always a next wave to cancel

	tr, err := TrainCtx(context.Background(), clients, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	v := NewValuation(tr, opts)
	ctx, cancel := context.WithCancel(context.Background())
	pending, err := v.Prepare(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pending; i++ {
		if err := v.ObserveShard(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	more, err := v.Complete(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if more == 0 {
		t.Fatal("tolerance 1e-12 converged after one wave — cannot test mid-wave cancellation")
	}
	cancel()
	if err := v.ObserveShard(ctx, pending); err != context.Canceled {
		t.Fatalf("ObserveShard after cancel = %v, want context.Canceled", err)
	}
	if _, err := v.Complete(ctx); err != context.Canceled {
		t.Fatalf("Complete after cancel = %v, want context.Canceled", err)
	}
}
