package comfedsv

import (
	"math"
	"math/bits"
	"testing"

	"comfedsv/internal/dataset"
	"comfedsv/internal/rng"
)

// makeClients builds n public-API clients from the MNIST-like generator,
// returning the clients, the server test set, and the class count.
func makeClients(t *testing.T, n, perClient, testSamples int, seed int64) ([]Client, Client) {
	t.Helper()
	full := dataset.GenerateImages(dataset.MNISTLikeConfig(seed), n*perClient+testSamples)
	g := rng.New(seed + 1)
	train, test := dataset.TrainTestSplit(full, float64(testSamples)/float64(full.Len()), g)
	parts := dataset.PartitionIID(train, n, g)
	clients := make([]Client, n)
	for i, p := range parts {
		clients[i] = Client{X: p.X, Y: p.Y}
	}
	return clients, Client{X: test.X, Y: test.Y}
}

func TestValueEndToEnd(t *testing.T) {
	clients, test := makeClients(t, 5, 25, 50, 101)
	opts := DefaultOptions(10)
	opts.Rounds = 6
	opts.ClientsPerRound = 2
	opts.Model = MLP
	opts.HiddenUnits = 6
	opts.LearningRate = 0.1
	report, err := Value(clients, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.FedSV) != 5 || len(report.ComFedSV) != 5 {
		t.Fatalf("valuation lengths %d/%d, want 5/5", len(report.FedSV), len(report.ComFedSV))
	}
	if report.FinalTestLoss <= 0 {
		t.Fatalf("final test loss %v", report.FinalTestLoss)
	}
	if report.FinalAccuracy <= 0.2 {
		t.Fatalf("final accuracy %v too low — training broken", report.FinalAccuracy)
	}
	if report.ObservedDensity <= 0 || report.ObservedDensity > 1 {
		t.Fatalf("density %v out of range", report.ObservedDensity)
	}
	if report.UtilityCalls <= 0 {
		t.Fatal("no utility calls recorded")
	}
}

func TestValueMonteCarloPath(t *testing.T) {
	clients, test := makeClients(t, 6, 20, 40, 103)
	opts := DefaultOptions(10)
	opts.Rounds = 5
	opts.ClientsPerRound = 2
	opts.Model = MLP
	opts.HiddenUnits = 6
	opts.LearningRate = 0.1
	opts.MonteCarloSamples = 60
	report, err := Value(clients, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.ComFedSV) != 6 {
		t.Fatalf("got %d values, want 6", len(report.ComFedSV))
	}
}

func TestValueLogisticRegression(t *testing.T) {
	clients, test := makeClients(t, 4, 20, 40, 105)
	opts := DefaultOptions(10)
	opts.Rounds = 4
	opts.ClientsPerRound = 2
	opts.LearningRate = 0.1
	report, err := Value(clients, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.FedSV) != 4 {
		t.Fatal("logreg path broken")
	}
}

func TestValueInputValidation(t *testing.T) {
	clients, test := makeClients(t, 3, 10, 20, 107)
	opts := DefaultOptions(10)
	opts.Rounds = 3
	opts.ClientsPerRound = 2

	t.Run("no clients", func(t *testing.T) {
		if _, err := Value(nil, test, opts); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("bad classes", func(t *testing.T) {
		bad := opts
		bad.NumClasses = 1
		if _, err := Value(clients, test, bad); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("dim mismatch", func(t *testing.T) {
		mixed := append([]Client(nil), clients...)
		mixed[1] = Client{X: [][]float64{{1, 2}}, Y: []int{0}}
		if _, err := Value(mixed, test, opts); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("empty test", func(t *testing.T) {
		if _, err := Value(clients, Client{}, opts); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("label out of range", func(t *testing.T) {
		badClients := append([]Client(nil), clients...)
		ys := append([]int(nil), badClients[0].Y...)
		ys[0] = 99
		badClients[0] = Client{X: badClients[0].X, Y: ys}
		if _, err := Value(badClients, test, opts); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("unknown model", func(t *testing.T) {
		bad := opts
		bad.Model = ModelKind(42)
		if _, err := Value(clients, test, bad); err == nil {
			t.Fatal("expected error")
		}
	})
}

func TestValueDuplicateFairness(t *testing.T) {
	// Integration check of the headline property through the public API:
	// duplicated clients receive nearly equal ComFedSV.
	clients, test := makeClients(t, 6, 25, 50, 109)
	clients[5] = Client{X: clients[0].X, Y: clients[0].Y}
	opts := DefaultOptions(10)
	opts.Rounds = 6
	opts.ClientsPerRound = 2
	opts.Model = MLP
	opts.HiddenUnits = 6
	opts.LearningRate = 0.1
	report, err := Value(clients, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	gap := math.Abs(report.ComFedSV[0] - report.ComFedSV[5])
	scale := math.Max(math.Abs(report.ComFedSV[0]), math.Abs(report.ComFedSV[5]))
	if scale > 1e-9 && gap/scale > 0.6 {
		t.Fatalf("duplicates valued %v vs %v", report.ComFedSV[0], report.ComFedSV[5])
	}
}

func TestShapleyValuesFacade(t *testing.T) {
	// Additive game through the public helper.
	v := ShapleyValues(3, func(c uint64) float64 {
		return float64(bits.OnesCount64(c))
	})
	for _, x := range v {
		if math.Abs(x-1) > 1e-9 {
			t.Fatalf("additive unit game values %v, want all 1", v)
		}
	}
}

func TestValueDeterministic(t *testing.T) {
	clients, test := makeClients(t, 4, 15, 30, 111)
	opts := DefaultOptions(10)
	opts.Rounds = 3
	opts.ClientsPerRound = 2
	opts.LearningRate = 0.1
	a, err := Value(clients, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Value(clients, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.ComFedSV {
		if a.ComFedSV[i] != b.ComFedSV[i] || a.FedSV[i] != b.FedSV[i] {
			t.Fatal("Value must be deterministic in the seed")
		}
	}
}
