// Command benchjson runs the repo's perf-anchor benchmarks and emits one
// machine-readable JSON document, the format committed as BENCH_XXXX.json
// snapshots (see README "Observability"). Five scenarios cover the cost
// centers of the valuation pipeline:
//
//   - als_completion: the ALS matrix-completion solver on the realistic
//     60×400 rank-5 utility-matrix shape (internal/mc's hot path),
//   - observation_throughput: cold-cache permutation-prefix test-loss
//     evaluation fanned out over a worker pool (Algorithm 1's dominant
//     cost),
//   - mixed_load_small_job_latency: time-to-first-report for a small job
//     submitted behind a large sharded job on a one-worker scheduler (the
//     quantity the stage-graph scheduler exists to bound),
//   - adaptive_valuation: a tolerance-driven run against the fixed-budget
//     baseline on the same large job — utility-call savings from early
//     stopping plus the worst-case value deviation it costs. The counts
//     and deviations are deterministic, so the scenario fails loudly if
//     the run stops late or drifts past the tolerance.
//   - warm_cache_valuation: one run-backed job valued cold on a fresh
//     manager, then again on a restarted manager warm-started from the
//     run's persistent cell sidecar. Reports must stay byte-identical
//     and the warm hit rate must clear 90%, so a cache regression fails
//     the bench instead of skewing it.
//
// The first two run once per -cpu entry with GOMAXPROCS pinned, so a
// single document records the scaling curve. Numbers are comparable only
// across snapshots taken on the same hardware; each document records
// NumCPU so a reader can tell when the host could not exercise a
// multicore claim.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"comfedsv"
	"comfedsv/internal/dataset"
	"comfedsv/internal/fl"
	"comfedsv/internal/mc"
	"comfedsv/internal/model"
	"comfedsv/internal/persist"
	"comfedsv/internal/rng"
	"comfedsv/internal/service"
	"comfedsv/internal/utility"
)

type benchResult struct {
	Name        string             `json:"name"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Workers     int                `json:"workers,omitempty"`
	Iterations  int                `json:"iterations"`
	NsPerOp     int64              `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type document struct {
	Schema      string        `json:"schema"`
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	NumCPU      int           `json:"num_cpu"`
	Quick       bool          `json:"quick,omitempty"`
	Note        string        `json:"note"`
	Benchmarks  []benchResult `json:"benchmarks"`
}

func main() {
	var (
		out   = flag.String("out", "", "write the JSON document here (empty = stdout)")
		cpus  = flag.String("cpu", "1,2,4", "comma-separated GOMAXPROCS values to sweep")
		quick = flag.Bool("quick", false, "CI-sized fixtures: smaller matrices and jobs, one repetition")
	)
	flag.Parse()

	var cpuList []int
	for _, s := range strings.Split(*cpus, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "benchjson: bad -cpu entry %q\n", s)
			os.Exit(2)
		}
		cpuList = append(cpuList, n)
	}

	doc := document{
		Schema:      "comfedsv-bench/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Quick:       *quick,
		Note: "Perf anchor for the ComFedSV valuation pipeline. ns_per_op values are " +
			"comparable only across documents generated on the same hardware; when " +
			"num_cpu < gomaxprocs the host cannot exercise multicore scaling and the " +
			"sweep measures scheduling overhead only.",
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	// --- als_completion ---
	rows, cols := 60, 400
	if *quick {
		rows, cols = 30, 160
	}
	obs := synthEntries(rows, cols, 5, 0.15, 42)
	for _, cpu := range cpuList {
		runtime.GOMAXPROCS(cpu)
		cfg := mc.DefaultConfig(5)
		cfg.Workers = cpu
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mc.Complete(obs, rows, cols, cfg); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		if benchErr != nil {
			fail(fmt.Errorf("als_completion: %w", benchErr))
		}
		doc.Benchmarks = append(doc.Benchmarks, toResult("als_completion", cpu, cpu, r))
		fmt.Fprintf(os.Stderr, "als_completion gomaxprocs=%d: %v\n", cpu, r)
	}

	// --- observation_throughput ---
	clients, rounds, perRound, cellsPerRound := 8, 6, 3, 24
	if *quick {
		clients, rounds, perRound, cellsPerRound = 6, 4, 2, 8
	}
	eval, err := buildEvaluator(clients, rounds, perRound)
	if err != nil {
		fail(fmt.Errorf("observation fixture: %w", err))
	}
	run := eval.Run()
	cells := observationCells(clients, rounds, cellsPerRound)
	ctx := context.Background()
	for _, cpu := range cpuList {
		runtime.GOMAXPROCS(cpu)
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// A cold evaluator per iteration: the measured work is the
				// distinct-cell test-loss evaluations, not memo-table hits.
				cold := utility.NewEvaluator(run)
				if _, err := cold.UtilityBatchCtx(ctx, cells, cpu); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		if benchErr != nil {
			fail(fmt.Errorf("observation_throughput: %w", benchErr))
		}
		res := toResult("observation_throughput", cpu, cpu, r)
		res.Extra = map[string]float64{"cells": float64(len(cells))}
		doc.Benchmarks = append(doc.Benchmarks, res)
		fmt.Fprintf(os.Stderr, "observation_throughput gomaxprocs=%d: %v\n", cpu, r)
	}

	// --- mixed_load_small_job_latency ---
	// Timed manually rather than via testing.Benchmark: each repetition
	// carries an expensive unmeasured big job, so iteration count must be
	// bounded, not benchtime-driven.
	reps := 3
	bigSamples, bigShards := 400, 8
	if *quick {
		reps, bigSamples, bigShards = 1, 100, 4
	}
	for _, cpu := range cpuList {
		runtime.GOMAXPROCS(cpu)
		var total time.Duration
		for i := 0; i < reps; i++ {
			lat, err := mixedLoadOnce(bigSamples, bigShards)
			if err != nil {
				fail(fmt.Errorf("mixed_load: %w", err))
			}
			total += lat
		}
		mean := total / time.Duration(reps)
		doc.Benchmarks = append(doc.Benchmarks, benchResult{
			Name:       "mixed_load_small_job_latency",
			GOMAXPROCS: cpu,
			Workers:    1,
			Iterations: reps,
			NsPerOp:    mean.Nanoseconds(),
			Extra: map[string]float64{
				"big_job_mc_samples": float64(bigSamples),
				"big_job_shards":     float64(bigShards),
			},
		})
		fmt.Fprintf(os.Stderr, "mixed_load_small_job_latency gomaxprocs=%d: %v/op (%d reps)\n", cpu, mean, reps)
	}

	// --- adaptive_valuation ---
	// One large job, two modes, same seed: fixed budget exhausts every
	// sampled permutation; tolerance mode stops at the first wave whose
	// estimates moved less than the tolerance. Utility calls (distinct
	// test-loss evaluations) are the paper's cost unit, so the savings
	// fraction — not wall time — is the headline number. Both counts and
	// the deviation are deterministic, host-independent quantities.
	// 24 clients puts the full-participation warm-up round past the exact
	// FedSV enumeration limit, so the baseline uses the sampled estimator
	// and the job's utility bill is dominated by Monte-Carlo observation
	// cells — the regime where early stopping pays.
	aClients, aRounds, aBudget, aTol, aReps := 24, 10, 400, 0.05, 3
	if *quick {
		aClients, aRounds, aBudget, aTol, aReps = 22, 5, 64, 0.1, 1
	}
	{
		cpu := cpuList[len(cpuList)-1]
		runtime.GOMAXPROCS(cpu)
		cls, test, opts := adaptiveFixture(aClients, aRounds, aBudget)
		opts.Parallelism = cpu

		fixedStart := time.Now()
		fixedRep, err := comfedsv.ValueCtx(ctx, cls, test, opts)
		if err != nil {
			fail(fmt.Errorf("adaptive_valuation fixed baseline: %w", err))
		}
		fixedDur := time.Since(fixedStart)

		adOpts := opts
		adOpts.Tolerance = aTol
		var total time.Duration
		var adRep *comfedsv.Report
		for i := 0; i < aReps; i++ {
			start := time.Now()
			adRep, err = comfedsv.ValueCtx(ctx, cls, test, adOpts)
			if err != nil {
				fail(fmt.Errorf("adaptive_valuation: %w", err))
			}
			total += time.Since(start)
		}

		if adRep.ObservationsUsed >= adRep.ObservationsBudget {
			fail(fmt.Errorf("adaptive_valuation: no early stop (used %d of %d); tolerance %v too tight for this fixture",
				adRep.ObservationsUsed, adRep.ObservationsBudget, aTol))
		}
		savings := 1 - float64(adRep.UtilityCalls)/float64(fixedRep.UtilityCalls)
		var maxDev float64
		for i, v := range adRep.ComFedSV {
			if d := abs(v - fixedRep.ComFedSV[i]); d > maxDev {
				maxDev = d
			}
		}
		if maxDev > aTol {
			fail(fmt.Errorf("adaptive_valuation: values drifted %v past tolerance %v", maxDev, aTol))
		}
		if !*quick && savings < 0.30 {
			fail(fmt.Errorf("adaptive_valuation: utility-call savings %.1f%% below the 30%% bar (fixed %d, adaptive %d)",
				savings*100, fixedRep.UtilityCalls, adRep.UtilityCalls))
		}
		doc.Benchmarks = append(doc.Benchmarks, benchResult{
			Name:       "adaptive_valuation",
			GOMAXPROCS: cpu,
			Workers:    cpu,
			Iterations: aReps,
			NsPerOp:    (total / time.Duration(aReps)).Nanoseconds(),
			Extra: map[string]float64{
				"fixed_ns_per_op":        float64(fixedDur.Nanoseconds()),
				"utility_calls_fixed":    float64(fixedRep.UtilityCalls),
				"utility_calls_adaptive": float64(adRep.UtilityCalls),
				"utility_call_savings":   savings,
				"observations_used":      float64(adRep.ObservationsUsed),
				"observations_budget":    float64(adRep.ObservationsBudget),
				"tolerance":              aTol,
				"max_value_deviation":    maxDev,
			},
		})
		fmt.Fprintf(os.Stderr, "adaptive_valuation gomaxprocs=%d: %v/op, utility calls %d -> %d (%.1f%% saved), max deviation %.4g (tol %v)\n",
			cpu, total/time.Duration(aReps), fixedRep.UtilityCalls, adRep.UtilityCalls, savings*100, maxDev, aTol)
	}

	// --- warm_cache_valuation ---
	// The persistent utility-cell cache across a daemon restart: one
	// run-backed Monte-Carlo job runs cold on a fresh manager (cells flush
	// to the run's sidecar), then the manager is torn down and a new one
	// over the same store serves the identical job warm. Cold and warm
	// wall-clocks are both recorded; the self-checks are deterministic —
	// the warm report must be byte-identical and the warm hit rate must
	// clear 90% (it is 100% by construction: a restarted daemon preloads
	// every cell the cold job evaluated).
	wClients, wRounds, wSamples, wShards, wReps := 24, 10, 200, 4, 3
	if *quick {
		wClients, wRounds, wSamples, wShards, wReps = 12, 5, 48, 2, 1
	}
	{
		cpu := cpuList[len(cpuList)-1]
		runtime.GOMAXPROCS(cpu)
		dir, err := os.MkdirTemp("", "comfedsv-bench-cells-")
		if err != nil {
			fail(fmt.Errorf("warm_cache_valuation: %w", err))
		}
		defer os.RemoveAll(dir)
		req := mixedRequest(91, wClients, wSamples, wRounds, wShards)
		req.Options.Parallelism = cpu
		spec := service.RunSpec{Clients: req.Clients, Test: req.Test, Options: req.Options}

		coldDur, coldRep, coldMetrics, err := warmCacheJob(dir, cpu, spec, req)
		if err != nil {
			fail(fmt.Errorf("warm_cache_valuation cold: %w", err))
		}
		if coldMetrics.CellsPersisted == 0 {
			fail(fmt.Errorf("warm_cache_valuation: cold job persisted no cells"))
		}
		if coldMetrics.CellsPreloaded != 0 {
			fail(fmt.Errorf("warm_cache_valuation: cold job preloaded %d cells from an empty store", coldMetrics.CellsPreloaded))
		}

		var warmTotal time.Duration
		var warmMetrics service.Metrics
		for i := 0; i < wReps; i++ {
			warmDur, warmRep, met, err := warmCacheJob(dir, cpu, spec, req)
			if err != nil {
				fail(fmt.Errorf("warm_cache_valuation warm: %w", err))
			}
			if !jsonEqual(coldRep, warmRep) {
				fail(fmt.Errorf("warm_cache_valuation: warm report is not byte-identical to the cold one"))
			}
			warmTotal += warmDur
			warmMetrics = met
		}
		warmMean := warmTotal / time.Duration(wReps)
		if warmMetrics.CellsPreloaded == 0 {
			fail(fmt.Errorf("warm_cache_valuation: restarted manager preloaded no cells"))
		}
		var warmMisses int64
		for _, rc := range warmMetrics.RunCaches {
			warmMisses += int64(rc.Misses)
		}
		hitRate := float64(warmMetrics.CellsWarmHits) / float64(warmMetrics.CellsWarmHits+warmMisses)
		if hitRate < 0.90 {
			fail(fmt.Errorf("warm_cache_valuation: warm hit rate %.1f%% below the 90%% bar (%d warm hits, %d misses)",
				hitRate*100, warmMetrics.CellsWarmHits, warmMisses))
		}
		doc.Benchmarks = append(doc.Benchmarks, benchResult{
			Name:       "warm_cache_valuation",
			GOMAXPROCS: cpu,
			Workers:    cpu,
			Iterations: wReps,
			NsPerOp:    warmMean.Nanoseconds(),
			Extra: map[string]float64{
				"cold_ns_per_op":  float64(coldDur.Nanoseconds()),
				"cells_persisted": float64(coldMetrics.CellsPersisted),
				"cells_preloaded": float64(warmMetrics.CellsPreloaded),
				"warm_hits":       float64(warmMetrics.CellsWarmHits),
				"warm_misses":     float64(warmMisses),
				"warm_hit_rate":   hitRate,
				"speedup":         float64(coldDur.Nanoseconds()) / float64(warmMean.Nanoseconds()),
			},
		})
		fmt.Fprintf(os.Stderr, "warm_cache_valuation gomaxprocs=%d: cold %v, warm %v/op (%d reps), hit rate %.1f%% (%d hits / %d misses), %.1fx\n",
			cpu, coldDur, warmMean, wReps, hitRate*100, warmMetrics.CellsWarmHits, warmMisses,
			float64(coldDur.Nanoseconds())/float64(warmMean.Nanoseconds()))
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(doc.Benchmarks))
}

func toResult(name string, cpu, workers int, r testing.BenchmarkResult) benchResult {
	return benchResult{
		Name:        name,
		GOMAXPROCS:  cpu,
		Workers:     workers,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// synthEntries samples a density-fraction of a random rank-`rank` matrix —
// the observation pattern the completion solver sees in production, the
// same fixture shape as internal/mc's BenchmarkComplete.
func synthEntries(rows, cols, rank int, density float64, seed int64) []mc.Entry {
	g := rng.New(seed)
	w := make([][]float64, rows)
	for i := range w {
		w[i] = make([]float64, rank)
		for k := range w[i] {
			w[i][k] = g.Normal(0, 1)
		}
	}
	h := make([][]float64, cols)
	for j := range h {
		h[j] = make([]float64, rank)
		for k := range h[j] {
			h[j][k] = g.Normal(0, 1)
		}
	}
	var out []mc.Entry
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if g.Float64() < density {
				v := 0.0
				for k := 0; k < rank; k++ {
					v += w[i][k] * h[j][k]
				}
				out = append(out, mc.Entry{Row: i, Col: j, Val: v})
			}
		}
	}
	return out
}

// buildEvaluator trains a small federated run and wraps it in a utility
// evaluator, mirroring the root package's benchmark fixture.
func buildEvaluator(clients, rounds, perRound int) (*utility.Evaluator, error) {
	full := dataset.GenerateImages(dataset.MNISTLikeConfig(201), clients*25+50)
	g := rng.New(202)
	train, test := dataset.TrainTestSplit(full, 50.0/float64(full.Len()), g)
	parts := dataset.PartitionIID(train, clients, g)
	m := model.NewMLP(full.Dim(), 6, full.NumClasses)
	cfg := fl.DefaultConfig(rounds, perRound)
	cfg.LearningRate = 0.1
	run, err := fl.TrainRun(cfg, m, parts, test)
	if err != nil {
		return nil, err
	}
	return utility.NewEvaluator(run), nil
}

// observationCells builds a deterministic batch of permutation-prefix
// utility-matrix cells across rounds.
func observationCells(clients, rounds, perRound int) []utility.Cell {
	g := rng.New(77)
	var cells []utility.Cell
	for round := 0; round < rounds; round++ {
		for m := 0; m < perRound; m++ {
			perm := g.Perm(clients)
			s := utility.NewSet(clients)
			for _, c := range perm[:1+m%4] {
				s.Add(c)
			}
			cells = append(cells, utility.Cell{Round: round, Subset: s})
		}
	}
	return cells
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// adaptiveFixture builds the adaptive_valuation job: `clients` separable
// 2-D clients, `rounds` training rounds, `samples` sampled permutations.
func adaptiveFixture(clients, rounds, samples int) ([]comfedsv.Client, comfedsv.Client, comfedsv.Options) {
	mk := func(off float64, points int) comfedsv.Client {
		var c comfedsv.Client
		for i := 0; i < points; i++ {
			x := off + float64(i)*0.17
			label := 0
			if x > 1 {
				label = 1
			}
			c.X = append(c.X, []float64{x, 1 - x})
			c.Y = append(c.Y, label)
		}
		return c
	}
	var cs []comfedsv.Client
	for i := 0; i < clients; i++ {
		cs = append(cs, mk(-0.5+float64(i)*0.15, 24))
	}
	opts := comfedsv.DefaultOptions(2)
	opts.Rounds = rounds
	opts.ClientsPerRound = 3
	opts.Seed = 83
	opts.MonteCarloSamples = samples
	return cs, mk(0.25, 32), opts
}

// mixedRequest builds a deterministic valuation request scaled by client
// count, Monte-Carlo samples, rounds, and shards.
func mixedRequest(seed int64, clients, samples, rounds, shards int) service.Request {
	mk := func(off float64, points int) comfedsv.Client {
		var c comfedsv.Client
		for i := 0; i < points; i++ {
			x := off + float64(i)*0.17
			label := 0
			if x > 1 {
				label = 1
			}
			c.X = append(c.X, []float64{x, 1 - x})
			c.Y = append(c.Y, label)
		}
		return c
	}
	var cs []comfedsv.Client
	for i := 0; i < clients; i++ {
		cs = append(cs, mk(-0.5+float64(i)*0.2, 24))
	}
	opts := comfedsv.DefaultOptions(2)
	opts.Rounds = rounds
	opts.ClientsPerRound = 3
	opts.Seed = seed
	opts.MonteCarloSamples = samples
	opts.Shards = shards
	return service.Request{Clients: cs, Test: mk(0.25, 32), Options: opts}
}

// warmCacheJob boots a manager over the run store at dir, ensures the
// spec's shared run exists (training once, on the first call), runs the
// run-backed job to completion, and returns the submit→done duration,
// the report, and the manager's final metrics. Each call is one full
// daemon lifecycle, so a second call over the same dir measures a
// restarted daemon warm-starting from the cell sidecar.
func warmCacheJob(dir string, workers int, spec service.RunSpec, req service.Request) (time.Duration, *comfedsv.Report, service.Metrics, error) {
	var zero service.Metrics
	store, err := persist.NewRunStore(dir)
	if err != nil {
		return 0, nil, zero, err
	}
	m, err := service.NewManager(service.Config{Workers: workers, RunStore: store})
	if err != nil {
		return 0, nil, zero, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()
	if _, _, err := m.CreateRun(spec); err != nil {
		return 0, nil, zero, err
	}
	runID := service.RunIDForSpec(spec)
	for {
		st, err := m.RunStatus(runID)
		if err != nil {
			return 0, nil, zero, err
		}
		if st.State == service.RunFailed {
			return 0, nil, zero, fmt.Errorf("run failed: %s", st.Error)
		}
		if st.State == service.RunReady {
			break
		}
		time.Sleep(500 * time.Microsecond)
	}
	req.Clients, req.Test = nil, comfedsv.Client{}
	req.RunID = runID
	start := time.Now()
	id, err := m.Submit(req)
	if err != nil {
		return 0, nil, zero, err
	}
	for {
		st, err := m.Status(id)
		if err != nil {
			return 0, nil, zero, err
		}
		if st.State.Terminal() {
			if st.State != service.StateDone {
				return 0, nil, zero, fmt.Errorf("job finished %s (%s)", st.State, st.Error)
			}
			break
		}
		time.Sleep(500 * time.Microsecond)
	}
	dur := time.Since(start)
	rep, err := m.Report(id)
	if err != nil {
		return 0, nil, zero, err
	}
	return dur, rep, m.Metrics(), nil
}

// jsonEqual compares two reports by their canonical JSON encoding — the
// byte-identity contract the cache promises at the HTTP boundary.
func jsonEqual(a, b *comfedsv.Report) bool {
	ja, errA := json.Marshal(a)
	jb, errB := json.Marshal(b)
	return errA == nil && errB == nil && string(ja) == string(jb)
}

// mixedLoadOnce runs one big-job-then-small-job pair on a one-worker
// scheduler and returns the small job's submit→report latency. The big job
// is cancelled once the small job finishes, so a repetition's cost is
// bounded by the measured quantity, not the big job's full runtime.
func mixedLoadOnce(bigSamples, bigShards int) (time.Duration, error) {
	m, err := service.NewManager(service.Config{Workers: 1})
	if err != nil {
		return 0, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()
	idBig, err := m.Submit(mixedRequest(61, 12, bigSamples, 10, bigShards))
	if err != nil {
		return 0, err
	}
	start := time.Now()
	idSmall, err := m.Submit(mixedRequest(62, 4, 0, 4, 1))
	if err != nil {
		return 0, err
	}
	for {
		st, err := m.Status(idSmall)
		if err != nil {
			return 0, err
		}
		if st.State.Terminal() {
			if st.State != service.StateDone {
				return 0, fmt.Errorf("small job finished %s (%s)", st.State, st.Error)
			}
			break
		}
		time.Sleep(500 * time.Microsecond)
	}
	lat := time.Since(start)
	m.Cancel(idBig)
	return lat, nil
}
